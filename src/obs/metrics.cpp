#include "obs/metrics.hpp"

#include <cmath>

namespace skyran::obs {

namespace {

std::atomic<bool> g_enabled{false};

/// fetch_add for atomic<double> via CAS: C++20 has the member, but a CAS
/// loop keeps us portable across older libstdc++ floating-point atomics.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

int Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN -> underflow bucket
  const int e = std::ilogb(v);  // floor(log2(v)) for finite positive v
  const int b = e + kExponentOffset;
  if (b < 1) return 0;
  if (b > kBuckets - 1) return kBuckets - 1;
  return b;
}

double Histogram::bucket_lower_bound(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, b - kExponentOffset);
}

void Histogram::observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::bucket_counts() const {
  std::array<std::uint64_t, kBuckets> out{};
  for (int b = 0; b < kBuckets; ++b)
    out[static_cast<std::size_t>(b)] =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const std::array<std::uint64_t, kBuckets> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  // Rank of the q-th observation (1-based, ceil), then walk the buckets.
  const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (seen >= target) {
      // Geometric midpoint of the bucket (its width is a factor of two);
      // clamping to the observed extrema keeps the estimate inside the data.
      const double lo = bucket_lower_bound(b);
      double v = b == 0 ? min() : lo * std::sqrt(2.0);
      if (v < min()) v = min();
      if (v > max()) v = max();
      return v;
    }
  }
  return max();
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: telemetry may be dumped from destructors of other
  // statics (bench::ObsEnvSession writes after main), so the registry must
  // outlive every static regardless of construction order.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>())
              .first->second;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.push_back({name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.push_back({name, g->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.p50 = h->quantile(0.50);
    s.p90 = h->quantile(0.90);
    s.p99 = h->quantile(0.99);
    out.histograms.push_back(std::move(s));
  }
  return out;
}

}  // namespace skyran::obs
