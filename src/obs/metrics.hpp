// Process-wide metrics substrate for the epoch hot paths: named counters,
// gauges, and log-bucket histograms registered in a singleton
// MetricsRegistry. Recording is lock-free (relaxed atomics; registration
// takes a mutex once per call site), safe from inside parallel_for bodies,
// and NEVER feeds back into simulation state — instrumentation on or off,
// simulation outputs are bit-identical (enforced by tests/test_obs.cpp).
//
// Instrumentation is off by default: every SKYRAN_* macro in obs/obs.hpp
// first checks the process-wide enabled() flag (one relaxed atomic load) and
// does nothing when it is clear. Naming conventions and the exported JSON
// schema are documented in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skyran::obs {

/// Process-wide instrumentation switch. Off (false) by default: all obs
/// macros reduce to one relaxed atomic load.
bool enabled();
void set_enabled(bool on);

/// Monotonic event count. add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed log2-bucket histogram: bounded memory, thread-safe observe() with
/// per-bucket atomics, deterministic layout. Bucket b (1 <= b < kBuckets-1)
/// holds values in [2^(b-33), 2^(b-32)); bucket 0 collects everything below
/// (including zero and negatives), the last bucket everything above. The
/// span 2^-32 .. 2^62 covers every unit the codebase records (fractions,
/// meters, dB, iteration counts, microseconds).
class Histogram {
 public:
  static constexpr int kBuckets = 96;
  static constexpr int kExponentOffset = 33;  ///< bucket 1 starts at 2^-32

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest observed value; 0 when empty.
  double min() const;
  double max() const;
  double mean() const;
  /// Approximate quantile from the bucket counts: the geometric midpoint of
  /// the bucket containing the q-th observation, clamped into [min, max].
  /// Accurate to the bucket's factor-of-two width. q in [0, 1]; 0 when empty.
  double quantile(double q) const;

  std::array<std::uint64_t, kBuckets> bucket_counts() const;
  /// Inclusive lower edge of bucket b (0 for the underflow bucket).
  static double bucket_lower_bound(int b);
  /// Index of the bucket that observe(v) lands in.
  static int bucket_of(double v);

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of one metric, for the exporters.
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0;
  double p50 = 0.0, p90 = 0.0, p99 = 0.0;
};
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

/// Name -> metric map with pointer stability: a reference returned by
/// counter()/gauge()/histogram() stays valid for the process lifetime (the
/// obs macros cache it in a function-local static), so reset_values() zeroes
/// metrics in place and never removes them. Lookup takes a mutex; call sites
/// that record repeatedly should hold on to the reference.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zero every registered metric, preserving registrations (and therefore
  /// every cached reference). Use between runs or test cases.
  void reset_values();

  /// Sorted-by-name copy of every metric's current value.
  MetricsSnapshot snapshot() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace skyran::obs
