#include "obs/trace.hpp"

#include <functional>
#include <thread>

#include "obs/metrics.hpp"

namespace skyran::obs {

namespace {

std::atomic<int> g_current_epoch{0};
thread_local int tl_span_depth = 0;

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

void set_current_epoch(int epoch) { g_current_epoch.store(epoch, std::memory_order_relaxed); }
int current_epoch() { return g_current_epoch.load(std::memory_order_relaxed); }

TraceJournal::TraceJournal() : origin_(std::chrono::steady_clock::now()) {}

TraceJournal& TraceJournal::instance() {
  // Intentionally leaked, same as MetricsRegistry::instance(): spans and the
  // export path must stay valid during static destruction.
  static TraceJournal* journal = new TraceJournal();
  return *journal;
}

double TraceJournal::now_us() const {
  const std::chrono::duration<double, std::micro> dt =
      std::chrono::steady_clock::now() - origin_;
  return dt.count();
}

void TraceJournal::record(TraceEvent event) {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= kCapacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceJournal::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::size_t TraceJournal::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void TraceJournal::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
  events_.shrink_to_fit();
  dropped_.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(std::string_view name) : active_(enabled()) {
  if (!active_) return;
  name_ = name;
  depth_ = tl_span_depth++;
  start_ = std::chrono::steady_clock::now();
  start_us_ = TraceJournal::instance().now_us();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  --tl_span_depth;
  const std::chrono::duration<double, std::micro> dt =
      std::chrono::steady_clock::now() - start_;
  TraceEvent e;
  e.name = name_;
  e.epoch = current_epoch();
  e.depth = depth_;
  e.thread_id = this_thread_id();
  e.start_us = start_us_;
  e.duration_us = dt.count();
  MetricsRegistry::instance().histogram("span." + name_ + ".us").observe(e.duration_us);
  TraceJournal::instance().record(std::move(e));
}

}  // namespace skyran::obs
