// Scoped trace spans for the epoch pipeline: a TraceSpan measures the wall
// time between its construction and destruction and records one TraceEvent
// into the process-wide TraceJournal, tagged with the current epoch label,
// the recording thread, and the span's nesting depth on that thread. Span
// durations additionally feed the `span.<name>.us` histogram in the
// MetricsRegistry so the summary exporter can show timing stats without
// replaying the journal. All of it is inert (one relaxed atomic load) while
// obs::enabled() is false.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace skyran::obs {

/// One completed span. Times are microseconds since the journal's epoch
/// (process-wide steady-clock origin captured at first use).
struct TraceEvent {
  std::string name;
  int epoch = 0;             ///< current_epoch() when the span opened
  int depth = 0;             ///< nesting depth on the recording thread (0 = root)
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id of the recorder
  double start_us = 0.0;
  double duration_us = 0.0;
};

/// Label spans with the epoch they belong to (SkyRan::run_epoch sets this;
/// 0 = outside any epoch). Process-wide: with several SkyRan instances
/// interleaving epochs on different threads the label reflects the most
/// recent setter — see docs/OBSERVABILITY.md, "Limitations".
void set_current_epoch(int epoch);
int current_epoch();

/// Bounded, thread-safe, in-memory journal of completed spans. Recording
/// beyond the capacity drops the event and counts it; clear() frees the
/// events and resets the drop count.
class TraceJournal {
 public:
  static constexpr std::size_t kCapacity = 1 << 18;

  static TraceJournal& instance();

  void record(TraceEvent event);
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void clear();

  /// Microseconds elapsed since the journal's steady-clock origin.
  double now_us() const;

 private:
  TraceJournal();

  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// RAII scoped timer. Construct with a name (the obs macro passes a string
/// literal); destruction records the event. A span constructed while
/// instrumentation is disabled stays inert even if instrumentation is
/// enabled before it closes (and vice versa), so toggling mid-span never
/// produces a half-measured event.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  int depth_ = 0;
  std::string name_;
  double start_us_ = 0.0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace skyran::obs
