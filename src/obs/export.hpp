// Exporters for the observability subsystem: machine-readable JSON lines
// (one object per line: a meta header, one line per metric, one line per
// trace span — schema in docs/OBSERVABILITY.md) and a human-readable
// summary (aligned metric tables plus a per-epoch span breakdown). Both
// read the process-wide MetricsRegistry and TraceJournal; neither mutates
// them, so a run can be exported to several sinks.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace skyran::obs {

/// Version stamped into the meta line; bump when the line layout changes.
inline constexpr int kJsonSchemaVersion = 1;

/// Write the full telemetry state as JSON lines:
///   {"type":"meta","schema":1,"spans":N,"spans_dropped":D}
///   {"type":"counter","name":...,"value":...}
///   {"type":"gauge","name":...,"value":...}
///   {"type":"histogram","name":...,"count":...,"sum":...,"min":...,
///    "max":...,"mean":...,"p50":...,"p90":...,"p99":...}
///   {"type":"span","name":...,"epoch":...,"depth":...,"thread":...,
///    "start_us":...,"dur_us":...}
void write_json_lines(std::ostream& os);

/// Human-readable summary: counters and gauges as name/value tables,
/// histograms with count/mean/p50/p90/max, and span totals (count, total
/// ms, mean ms) sorted by total time descending.
void write_summary(std::ostream& os);

/// Minimal JSON string escaping (quotes, backslash, control characters).
std::string json_escape(std::string_view s);

/// Render a double for JSON: shortest round-trippable-ish form via %.9g;
/// non-finite values (never produced by the registry, but defensively)
/// become 0.
std::string json_number(double v);

}  // namespace skyran::obs
