// Umbrella header + recording macros for the observability subsystem.
//
// All instrumentation in the codebase goes through these macros. Contract:
//  - `name` must be a string literal (the macros cache the registry lookup
//    in a function-local static, so the name must be the same on every
//    execution of the call site).
//  - With instrumentation disabled (the default), each macro costs one
//    relaxed atomic load and never touches the registry or journal;
//    simulation outputs are bit-identical with instrumentation on or off
//    because recording never feeds back into simulation state.
//  - Compiling with -DSKYRAN_OBS_DISABLED removes the macro bodies
//    entirely (true zero overhead) at the price of losing --metrics-out /
//    --trace at runtime; the default build keeps them.
//
// Naming conventions and the exported schema: docs/OBSERVABILITY.md.
#pragma once

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(SKYRAN_OBS_DISABLED)

#define SKYRAN_COUNTER_ADD(name, delta) ((void)0)
#define SKYRAN_COUNTER_INC(name) ((void)0)
#define SKYRAN_GAUGE_SET(name, value) ((void)0)
#define SKYRAN_HISTOGRAM_OBSERVE(name, value) ((void)0)
#define SKYRAN_TRACE_SPAN(name) ((void)0)

#else

#define SKYRAN_OBS_CONCAT_IMPL(a, b) a##b
#define SKYRAN_OBS_CONCAT(a, b) SKYRAN_OBS_CONCAT_IMPL(a, b)

#define SKYRAN_COUNTER_ADD(name, delta)                                         \
  do {                                                                          \
    if (::skyran::obs::enabled()) {                                             \
      static ::skyran::obs::Counter& skyran_obs_counter =                       \
          ::skyran::obs::MetricsRegistry::instance().counter(name);             \
      skyran_obs_counter.add(static_cast<std::uint64_t>(delta));                \
    }                                                                           \
  } while (0)

#define SKYRAN_COUNTER_INC(name) SKYRAN_COUNTER_ADD(name, 1)

#define SKYRAN_GAUGE_SET(name, value)                                           \
  do {                                                                          \
    if (::skyran::obs::enabled()) {                                             \
      static ::skyran::obs::Gauge& skyran_obs_gauge =                           \
          ::skyran::obs::MetricsRegistry::instance().gauge(name);               \
      skyran_obs_gauge.set(static_cast<double>(value));                         \
    }                                                                           \
  } while (0)

#define SKYRAN_HISTOGRAM_OBSERVE(name, value)                                   \
  do {                                                                          \
    if (::skyran::obs::enabled()) {                                             \
      static ::skyran::obs::Histogram& skyran_obs_histogram =                   \
          ::skyran::obs::MetricsRegistry::instance().histogram(name);           \
      skyran_obs_histogram.observe(static_cast<double>(value));                 \
    }                                                                           \
  } while (0)

/// Declares a scoped timer named after the enclosing block; records one
/// journal event (and a `span.<name>.us` histogram sample) at scope exit.
#define SKYRAN_TRACE_SPAN(name) \
  const ::skyran::obs::TraceSpan SKYRAN_OBS_CONCAT(skyran_obs_span_, __LINE__)(name)

#endif  // SKYRAN_OBS_DISABLED
