#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace skyran::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_json_lines(std::ostream& os) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const std::vector<TraceEvent> spans = TraceJournal::instance().events();

  os << "{\"type\":\"meta\",\"schema\":" << kJsonSchemaVersion
     << ",\"spans\":" << spans.size()
     << ",\"spans_dropped\":" << TraceJournal::instance().dropped() << "}\n";

  for (const CounterSnapshot& c : snap.counters)
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(c.name)
       << "\",\"value\":" << c.value << "}\n";

  for (const GaugeSnapshot& g : snap.gauges)
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(g.name)
       << "\",\"value\":" << json_number(g.value) << "}\n";

  for (const HistogramSnapshot& h : snap.histograms)
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
       << "\",\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
       << ",\"min\":" << json_number(h.min) << ",\"max\":" << json_number(h.max)
       << ",\"mean\":" << json_number(h.mean) << ",\"p50\":" << json_number(h.p50)
       << ",\"p90\":" << json_number(h.p90) << ",\"p99\":" << json_number(h.p99)
       << "}\n";

  for (const TraceEvent& e : spans)
    os << "{\"type\":\"span\",\"name\":\"" << json_escape(e.name)
       << "\",\"epoch\":" << e.epoch << ",\"depth\":" << e.depth
       << ",\"thread\":" << e.thread_id << ",\"start_us\":" << json_number(e.start_us)
       << ",\"dur_us\":" << json_number(e.duration_us) << "}\n";
}

namespace {

/// Pad `s` to `width` (left-aligned).
std::string pad(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

std::string fmt(double v, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace

void write_summary(std::ostream& os) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  const std::vector<TraceEvent> spans = TraceJournal::instance().events();

  std::size_t name_w = 24;
  for (const auto& c : snap.counters) name_w = std::max(name_w, c.name.size());
  for (const auto& g : snap.gauges) name_w = std::max(name_w, g.name.size());
  for (const auto& h : snap.histograms) name_w = std::max(name_w, h.name.size());
  name_w += 2;

  if (!snap.counters.empty()) {
    os << "== counters ==\n";
    for (const auto& c : snap.counters)
      os << "  " << pad(c.name, name_w) << c.value << "\n";
  }
  if (!snap.gauges.empty()) {
    os << "== gauges ==\n";
    for (const auto& g : snap.gauges)
      os << "  " << pad(g.name, name_w) << fmt(g.value, 4) << "\n";
  }
  if (!snap.histograms.empty()) {
    os << "== histograms ==\n";
    os << "  " << pad("name", name_w) << pad("count", 10) << pad("mean", 12)
       << pad("p50", 12) << pad("p90", 12) << pad("max", 12) << "\n";
    for (const auto& h : snap.histograms) {
      // Span-duration histograms are redundant with the span table below.
      if (h.name.rfind("span.", 0) == 0) continue;
      os << "  " << pad(h.name, name_w) << pad(std::to_string(h.count), 10)
         << pad(fmt(h.mean, 3), 12) << pad(fmt(h.p50, 3), 12) << pad(fmt(h.p90, 3), 12)
         << pad(fmt(h.max, 3), 12) << "\n";
    }
  }

  if (!spans.empty()) {
    struct SpanAgg {
      std::uint64_t count = 0;
      double total_us = 0.0;
    };
    std::map<std::string, SpanAgg> agg;
    for (const TraceEvent& e : spans) {
      SpanAgg& a = agg[e.name];
      ++a.count;
      a.total_us += e.duration_us;
    }
    std::vector<std::pair<std::string, SpanAgg>> rows(agg.begin(), agg.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.total_us > b.second.total_us;
    });
    os << "== spans (" << spans.size() << " events";
    if (TraceJournal::instance().dropped() > 0)
      os << ", " << TraceJournal::instance().dropped() << " dropped";
    os << ") ==\n";
    os << "  " << pad("name", name_w) << pad("count", 10) << pad("total_ms", 12)
       << pad("mean_ms", 12) << "\n";
    for (const auto& [name, a] : rows)
      os << "  " << pad(name, name_w) << pad(std::to_string(a.count), 10)
         << pad(fmt(a.total_us / 1e3, 3), 12)
         << pad(fmt(a.total_us / 1e3 / static_cast<double>(a.count), 3), 12) << "\n";
  }
}

}  // namespace skyran::obs
