// ChannelModel: the path-loss oracle between a UAV position and a UE
// position. The ground-truth implementation (ray trace + correlated
// shadowing) plays the role of the physical world in our experiments; the
// FSPL implementation is the paper's model-based strawman (Fig. 4) and the
// seed for unexplored REM cells (Sec 3.5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "geo/vec.hpp"
#include "rf/raytrace.hpp"
#include "rf/shadowing.hpp"
#include "terrain/terrain.hpp"

namespace skyran::rf {

/// Abstract path-loss model between two points.
class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// Total path loss a->b (transmit minus receive power between isotropic
  /// antennas), dB. Symmetric.
  virtual double path_loss_db(geo::Vec3 a, geo::Vec3 b) const = 0;

  /// Path loss from each of the `n` positions in `a` to the fixed point
  /// `b`, written to `out`. The default is a scalar loop over path_loss_db
  /// with the same argument order (bit-identical to calling it per point);
  /// analytic models override it with a kernels-layer batch evaluation. REM
  /// seeding sweeps call this once per raster row of candidate UAV
  /// positions instead of once per cell.
  virtual void path_loss_db_row(const geo::Vec3* a, std::size_t n, geo::Vec3 b,
                                double* out) const {
    for (std::size_t i = 0; i < n; ++i) out[i] = path_loss_db(a[i], b);
  }

  /// Carrier frequency, Hz.
  virtual double frequency_hz() const = 0;
};

/// Pure free-space model (no terrain knowledge).
class FsplChannel final : public ChannelModel {
 public:
  explicit FsplChannel(double frequency_hz);
  double path_loss_db(geo::Vec3 a, geo::Vec3 b) const override;
  void path_loss_db_row(const geo::Vec3* a, std::size_t n, geo::Vec3 b,
                        double* out) const override;
  double frequency_hz() const override { return frequency_hz_; }

 private:
  double frequency_hz_;
};

/// Tuning knobs for the ray-traced ground-truth channel.
struct RayTraceChannelParams {
  double frequency_hz = 2.6e9;  ///< LTE band 7 mid-band
  ObstructionLossParams obstruction{};
  double shadowing_sigma_db = 4.0;
  double shadowing_correlation_m = 30.0;
  /// Extra shadowing applied when the direct ray is obstructed (NLOS links
  /// fluctuate more than LOS ones).
  double nlos_extra_sigma_db = 2.5;
  /// When true, NLOS excess loss is min(penetration, single-knife-edge
  /// diffraction): in deep shadow the roof-diffracted field dominates the
  /// through-building one. Off by default (the evaluation is calibrated
  /// against the capped penetration model); see bench/ablation_diffraction.
  bool use_knife_edge = false;
};

/// Terrain-aware ground-truth channel: FSPL + obstruction loss + correlated
/// shadowing. Deterministic in (terrain, params, seed).
class RayTraceChannel final : public ChannelModel {
 public:
  RayTraceChannel(std::shared_ptr<const terrain::Terrain> terrain,
                  RayTraceChannelParams params, std::uint64_t seed);

  double path_loss_db(geo::Vec3 a, geo::Vec3 b) const override;
  double frequency_hz() const override { return params_.frequency_hz; }

  /// True when a->b has an unobstructed direct ray.
  bool line_of_sight(geo::Vec3 a, geo::Vec3 b) const;

  const terrain::Terrain& terrain() const { return *terrain_; }
  const RayTraceChannelParams& params() const { return params_; }

 private:
  std::shared_ptr<const terrain::Terrain> terrain_;
  RayTraceChannelParams params_;
  ShadowingField los_shadowing_;
  ShadowingField nlos_shadowing_;
};

}  // namespace skyran::rf
