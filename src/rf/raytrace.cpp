#include "rf/raytrace.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::rf {

RayObstruction trace_ray(const terrain::Terrain& t, geo::Vec3 a, geo::Vec3 b, double step_m) {
  RayObstruction out;
  const geo::Vec3 d = b - a;
  out.total_length_m = d.norm();
  if (out.total_length_m <= 0.0) return out;
  if (step_m <= 0.0) step_m = std::max(0.25, t.cell_size() * 0.5);

  const int steps = std::max(1, static_cast<int>(std::ceil(out.total_length_m / step_m)));
  const double dl = out.total_length_m / steps;
  // Sample at segment midpoints so endpoint cells contribute half steps and
  // the endpoints themselves (antenna positions) are never counted.
  for (int i = 0; i < steps; ++i) {
    const double s = (i + 0.5) / steps;
    const geo::Vec3 p = a + d * s;
    const geo::Vec2 xy = t.area().clamp(p.xy());
    const terrain::TerrainCell& cell = t.cells().value_at(xy);
    if (p.z < cell.ground) {
      out.below_ground = true;
      continue;
    }
    if (cell.clutter == terrain::Clutter::kOpen || cell.clutter == terrain::Clutter::kWater)
      continue;
    if (p.z < cell.ground + cell.clutter_height) {
      if (cell.clutter == terrain::Clutter::kBuilding)
        out.building_length_m += dl;
      else
        out.foliage_length_m += dl;
    }
  }
  return out;
}

double knife_edge_loss_db(const terrain::Terrain& t, geo::Vec3 a, geo::Vec3 b,
                          double frequency_hz, double step_m) {
  expects(frequency_hz > 0.0, "knife_edge_loss_db: frequency must be positive");
  const geo::Vec3 d = b - a;
  const double total = d.norm();
  if (total <= 0.0) return 0.0;
  if (step_m <= 0.0) step_m = std::max(0.5, t.cell_size() * 0.5);
  const double wavelength = 299'792'458.0 / frequency_hz;

  // Dominant edge: the sample maximizing the Fresnel parameter v.
  const int steps = std::max(2, static_cast<int>(std::ceil(total / step_m)));
  double v_max = -1e9;
  for (int i = 1; i < steps; ++i) {
    const double s = static_cast<double>(i) / steps;
    const geo::Vec3 p = a + d * s;
    const double surface = t.surface_height(t.area().clamp(p.xy()));
    const double h = surface - p.z;  // height of the edge above the ray
    const double d1 = s * total;
    const double d2 = total - d1;
    const double v = h * std::sqrt(2.0 * (d1 + d2) / (wavelength * d1 * d2));
    v_max = std::max(v_max, v);
  }
  if (v_max <= -0.78) return 0.0;
  const double t1 = v_max - 0.1;
  return 6.9 + 20.0 * std::log10(std::sqrt(t1 * t1 + 1.0) + t1);
}

double obstruction_loss_db(const RayObstruction& ray, const ObstructionLossParams& params) {
  double loss = ray.building_length_m * params.building_db_per_m +
                ray.foliage_length_m * params.foliage_db_per_m;
  if (ray.below_ground) loss = std::max(loss, params.below_ground_db);
  return std::min(loss, params.max_excess_db);
}

}  // namespace skyran::rf
