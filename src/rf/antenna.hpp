// Antenna gain patterns. The SkyRAN payload carries a 5 dBi omni LTE antenna
// (Sec 4.1): omnidirectional in azimuth with a dipole-like elevation rolloff
// (less gain straight down, which matters for a UAV directly overhead).
#pragma once

#include "geo/vec.hpp"

namespace skyran::rf {

class Antenna {
 public:
  /// `peak_gain_dbi`: boresight (horizon) gain.
  /// `vertical_rolloff_db`: gain reduction at zenith/nadir relative to the
  /// horizon; intermediate angles follow a cosine-squared taper.
  explicit Antenna(double peak_gain_dbi = 5.0, double vertical_rolloff_db = 8.0)
      : peak_gain_dbi_(peak_gain_dbi), vertical_rolloff_db_(vertical_rolloff_db) {}

  /// Gain toward `target` from an antenna at `position`, dBi.
  double gain_dbi(geo::Vec3 position, geo::Vec3 target) const;

  double peak_gain_dbi() const { return peak_gain_dbi_; }

 private:
  double peak_gain_dbi_;
  double vertical_rolloff_db_;
};

}  // namespace skyran::rf
