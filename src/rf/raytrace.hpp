// Terrain-aware ray marching. This is the channel model the paper itself uses
// for its scale-up study (Sec 5.1): trace the direct ray from the UAV to the
// UE, determine which portion is obstructed by terrain features, and charge
// free-space attenuation on the clear portion plus per-material bulk loss on
// the obstructed portion.
#pragma once

#include <memory>

#include "geo/vec.hpp"
#include "terrain/terrain.hpp"

namespace skyran::rf {

/// Result of tracing one ray against the terrain.
struct RayObstruction {
  double total_length_m = 0.0;     ///< straight-line ray length
  double building_length_m = 0.0;  ///< portion inside buildings
  double foliage_length_m = 0.0;   ///< portion inside foliage
  bool below_ground = false;       ///< ray dips under the ground surface

  bool line_of_sight() const {
    return !below_ground && building_length_m == 0.0 && foliage_length_m == 0.0;
  }
};

/// March the segment a->b through the terrain raster and measure how much of
/// it passes through each obstruction class. `step_m` controls the sampling
/// pitch along the ray (defaults to half the raster cell size when <= 0).
RayObstruction trace_ray(const terrain::Terrain& t, geo::Vec3 a, geo::Vec3 b,
                         double step_m = 0.0);

/// Parameters mapping an obstruction measurement to excess loss.
struct ObstructionLossParams {
  double building_db_per_m = 1.8;
  double foliage_db_per_m = 0.45;
  /// Excess loss is capped here: beyond this, diffracted/multipath energy
  /// dominates the through-path (keeps deep-NLOS cells finite, as observed
  /// in real urban measurements).
  double max_excess_db = 65.0;
  /// Flat penalty once the direct ray is below ground (pure diffraction).
  double below_ground_db = 65.0;
};

/// Excess (non-free-space) loss in dB for an obstruction measurement.
double obstruction_loss_db(const RayObstruction& ray, const ObstructionLossParams& params);

/// Single knife-edge diffraction loss (ITU-R P.526): find the dominant
/// obstruction along a->b (the point maximizing the Fresnel parameter v) and
/// return the Lee approximation of the diffraction loss,
///   L = 6.9 + 20 log10(sqrt((v-0.1)^2 + 1) + v - 0.1)   for v > -0.78,
/// else 0. In deep shadow the field that actually arrives is usually the
/// roof-diffracted one, so the effective NLOS excess is
/// min(penetration loss, knife-edge loss).
double knife_edge_loss_db(const terrain::Terrain& t, geo::Vec3 a, geo::Vec3 b,
                          double frequency_hz, double step_m = 0.0);

}  // namespace skyran::rf
