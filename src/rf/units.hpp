// RF unit conversions and the thermal-noise floor. All powers are dBm, all
// gains/losses dB, all frequencies Hz unless a suffix says otherwise.
#pragma once

#include <cmath>

namespace skyran::rf {

/// Speed of light, m/s.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Thermal noise density at ~290 K, dBm/Hz.
inline constexpr double kThermalNoiseDbmPerHz = -174.0;

inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double lin) { return 10.0 * std::log10(lin); }

inline double dbm_to_milliwatt(double dbm) { return db_to_linear(dbm); }
inline double milliwatt_to_dbm(double mw) { return linear_to_db(mw); }

/// Noise floor of a receiver with the given bandwidth and noise figure, dBm.
inline double noise_floor_dbm(double bandwidth_hz, double noise_figure_db) {
  return kThermalNoiseDbmPerHz + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

}  // namespace skyran::rf
