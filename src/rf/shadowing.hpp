// Spatially-correlated log-normal shadow fading. Real REMs exhibit smooth
// dB-scale fluctuation beyond deterministic obstruction loss; we synthesize
// it with a fractal noise field over the midpoint of the link so that nearby
// UAV positions see correlated shadowing (which is what makes gradient-guided
// probing meaningful).
#pragma once

#include <cstdint>

#include "geo/noise.hpp"
#include "geo/vec.hpp"

namespace skyran::rf {

class ShadowingField {
 public:
  /// `sigma_db`: standard deviation of the shadowing term.
  /// `correlation_m`: decorrelation length of the field.
  ShadowingField(std::uint64_t seed, double sigma_db, double correlation_m);

  /// Shadowing loss (may be negative = constructive) for the link a->b, dB.
  /// Deterministic in (seed, a, b).
  double loss_db(geo::Vec3 a, geo::Vec3 b) const;

  double sigma_db() const { return sigma_db_; }

 private:
  geo::ValueNoise noise_;
  double sigma_db_;
};

}  // namespace skyran::rf
