// Link budget: converts a path loss into SNR/RSS at the receiver. Defaults
// follow the SkyRAN payload (Sec 4.1): USRP B210 front end with an 18 dB
// PA/LNA chain and a 5 dBi antenna at the UAV; a handset UE at 23 dBm.
#pragma once

#include "rf/units.hpp"

namespace skyran::rf {

struct LinkBudget {
  double tx_power_dbm = 23.0;     ///< UE uplink max power (3GPP class 3)
  double tx_antenna_gain_dbi = 0.0;
  double rx_antenna_gain_dbi = 5.0;   ///< UAV LTE antenna
  double rx_amplifier_gain_db = 18.0; ///< payload LNA chain
  double bandwidth_hz = 10e6;
  double noise_figure_db = 7.0;
  /// Co-channel interference plus implementation margin added to the noise
  /// floor. Band-7 deployments near macro coverage see a raised effective
  /// floor; this also folds in EVM/quantization losses of the SDR front end.
  double interference_margin_db = 13.0;

  /// Received signal strength for a given path loss, dBm (before the LNA;
  /// the LNA boosts signal and noise alike so it cancels in SNR but is kept
  /// for reporting raw RSS).
  double rss_dbm(double path_loss_db) const {
    return tx_power_dbm + tx_antenna_gain_dbi + rx_antenna_gain_dbi - path_loss_db;
  }

  /// Effective noise-plus-interference floor, dBm.
  double effective_floor_dbm() const {
    return noise_floor_dbm(bandwidth_hz, noise_figure_db) + interference_margin_db;
  }

  /// Signal-to-noise(-plus-interference) ratio for a given path loss, dB.
  double snr_db(double path_loss_db) const {
    return rss_dbm(path_loss_db) - effective_floor_dbm();
  }

  /// Path loss that would produce the given SNR, dB (inverse of snr_db).
  double path_loss_for_snr_db(double snr_db_value) const {
    return tx_power_dbm + tx_antenna_gain_dbi + rx_antenna_gain_dbi -
           effective_floor_dbm() - snr_db_value;
  }
};

}  // namespace skyran::rf
