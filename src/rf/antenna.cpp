#include "rf/antenna.hpp"

#include <algorithm>
#include <cmath>

namespace skyran::rf {

double Antenna::gain_dbi(geo::Vec3 position, geo::Vec3 target) const {
  const geo::Vec3 d = target - position;
  const double r = d.norm();
  if (r <= 0.0) return peak_gain_dbi_;
  // sin(elevation-from-horizon) = |dz| / r; the taper is max at zenith/nadir.
  const double s = std::abs(d.z) / r;
  return peak_gain_dbi_ - vertical_rolloff_db_ * s * s;
}

}  // namespace skyran::rf
