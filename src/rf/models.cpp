#include "rf/models.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"
#include "kernels/kernels.hpp"
#include "rf/units.hpp"

namespace skyran::rf {

// The kernels layer owns the path-loss formula (it cannot depend on rf);
// this layer keeps its own constant for unit documentation, so pin them.
static_assert(kSpeedOfLight == kernels::kSpeedOfLightMps,
              "rf and kernels speed-of-light constants diverged");

double fspl_db(double distance_m, double frequency_hz) {
  expects(frequency_hz > 0.0, "fspl_db: frequency must be positive");
  return kernels::fspl_db_one(distance_m, frequency_hz);
}

double log_distance_db(double distance_m, double frequency_hz, double exponent,
                       double reference_m) {
  expects(exponent > 0.0, "log_distance_db: exponent must be positive");
  expects(reference_m > 0.0, "log_distance_db: reference distance must be positive");
  kernels::log_distance_db(&distance_m, &distance_m, 1, frequency_hz, exponent, reference_m);
  return distance_m;
}

}  // namespace skyran::rf
