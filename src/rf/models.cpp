#include "rf/models.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"
#include "rf/units.hpp"

namespace skyran::rf {

double fspl_db(double distance_m, double frequency_hz) {
  expects(frequency_hz > 0.0, "fspl_db: frequency must be positive");
  const double d = std::max(distance_m, 1.0);
  return 20.0 * std::log10(4.0 * M_PI * d * frequency_hz / kSpeedOfLight);
}

double log_distance_db(double distance_m, double frequency_hz, double exponent,
                       double reference_m) {
  expects(exponent > 0.0, "log_distance_db: exponent must be positive");
  expects(reference_m > 0.0, "log_distance_db: reference distance must be positive");
  const double d = std::max(distance_m, reference_m);
  return fspl_db(reference_m, frequency_hz) + 10.0 * exponent * std::log10(d / reference_m);
}

}  // namespace skyran::rf
