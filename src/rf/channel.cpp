#include "rf/channel.hpp"

#include "geo/contract.hpp"
#include "kernels/kernels.hpp"
#include "rf/models.hpp"

namespace skyran::rf {

FsplChannel::FsplChannel(double frequency_hz) : frequency_hz_(frequency_hz) {
  expects(frequency_hz > 0.0, "FsplChannel: frequency must be positive");
}

double FsplChannel::path_loss_db(geo::Vec3 a, geo::Vec3 b) const {
  return fspl_db(a.dist(b), frequency_hz_);
}

void FsplChannel::path_loss_db_row(const geo::Vec3* a, std::size_t n, geo::Vec3 b,
                                   double* out) const {
  // Distances gather into `out` in place, then one fused kernels-layer pass
  // turns them into path loss (SIMD log10 when available; scalar level is
  // bit-identical to the per-point path).
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i].dist(b);
  kernels::fspl_db(out, out, n, frequency_hz_);
}

RayTraceChannel::RayTraceChannel(std::shared_ptr<const terrain::Terrain> terrain,
                                 RayTraceChannelParams params, std::uint64_t seed)
    : terrain_(std::move(terrain)),
      params_(params),
      los_shadowing_(seed ^ 0x105ULL, params.shadowing_sigma_db, params.shadowing_correlation_m),
      nlos_shadowing_(seed ^ 0x4105ULL, params.shadowing_sigma_db + params.nlos_extra_sigma_db,
                      params.shadowing_correlation_m * 0.6) {
  expects(terrain_ != nullptr, "RayTraceChannel: terrain must not be null");
  expects(params.frequency_hz > 0.0, "RayTraceChannel: frequency must be positive");
}

double RayTraceChannel::path_loss_db(geo::Vec3 a, geo::Vec3 b) const {
  const RayObstruction ray = trace_ray(*terrain_, a, b);
  const double fspl = fspl_db(ray.total_length_m, params_.frequency_hz);
  double excess = obstruction_loss_db(ray, params_.obstruction);
  if (params_.use_knife_edge && !ray.line_of_sight()) {
    // Whichever field is stronger arrives: through-material or diffracted.
    excess = std::min(excess, knife_edge_loss_db(*terrain_, a, b, params_.frequency_hz));
  }
  const double shadow =
      ray.line_of_sight() ? los_shadowing_.loss_db(a, b) : nlos_shadowing_.loss_db(a, b);
  return fspl + excess + shadow;
}

bool RayTraceChannel::line_of_sight(geo::Vec3 a, geo::Vec3 b) const {
  return trace_ray(*terrain_, a, b).line_of_sight();
}

}  // namespace skyran::rf
