// Closed-form propagation models: free-space path loss (the paper's baseline
// REM seed, Sec 3.5) and a log-distance generalization.
#pragma once

namespace skyran::rf {

/// Free-space path loss between isotropic antennas, dB.
/// `distance_m` is clamped below at 1 m to keep the model finite.
double fspl_db(double distance_m, double frequency_hz);

/// Log-distance path loss: FSPL at `reference_m` plus 10*n*log10(d/d0).
double log_distance_db(double distance_m, double frequency_hz, double exponent,
                       double reference_m = 1.0);

}  // namespace skyran::rf
