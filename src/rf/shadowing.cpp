#include "rf/shadowing.hpp"

#include "geo/contract.hpp"

namespace skyran::rf {

ShadowingField::ShadowingField(std::uint64_t seed, double sigma_db, double correlation_m)
    : noise_(seed, correlation_m, 4), sigma_db_(sigma_db) {
  expects(sigma_db >= 0.0, "ShadowingField: sigma must be non-negative");
}

double ShadowingField::loss_db(geo::Vec3 a, geo::Vec3 b) const {
  // Key the field on the link midpoint plus a mild dependence on the
  // endpoint separation so that links sharing a midpoint but differing in
  // geometry decorrelate slowly. The fractal sample is approximately
  // zero-mean with unit-ish spread; scale by sigma.
  const geo::Vec2 mid = ((a + b) * 0.5).xy();
  const double stretch = (b - a).norm() * 0.05;
  const geo::Vec2 key{mid.x + stretch, mid.y - stretch};
  return 1.8 * sigma_db_ * noise_.sample(key);
}

}  // namespace skyran::rf
