#include "rem/planner.hpp"

#include <algorithm>

#include "geo/contract.hpp"
#include "obs/obs.hpp"
#include "rem/bank.hpp"
#include "rem/gradient.hpp"
#include "rem/kmeans.hpp"
#include "rem/tsp.hpp"
#include "uav/trajectory.hpp"

namespace skyran::rem {

namespace {

// Steps 6.2-6.4, shared by the per-REM and bank entry points: gradient map,
// median partition, K-sweep, information-to-cost tour selection.
// `probe_fallbacks` are the clamped UE ground positions, used only when the
// gradient map is degenerate (perfectly flat estimate).
PlannedTrajectory plan_from_aggregate(const geo::Grid2D<double>& aggregate,
                                      const std::vector<geo::Vec2>& probe_fallbacks,
                                      const std::vector<TrajectoryHistory>& history,
                                      geo::Vec2 start, const PlannerConfig& config) {
  const geo::Grid2D<double> grad = gradient_map(aggregate);
  const std::vector<geo::CellIndex> hot = high_gradient_cells(grad);

  std::vector<WeightedPoint> points;
  points.reserve(hot.size());
  for (geo::CellIndex c : hot) points.push_back({grad.center_of(c), grad.at(c)});
  if (points.empty()) {
    for (geo::Vec2 p : probe_fallbacks) points.push_back({p, 1.0});
  }

  PlannedTrajectory best;
  bool have_best = false;
  for (int k = config.k_min; k <= config.k_max; ++k) {
    const KMeansResult clusters = kmeans(points, k, config.seed + static_cast<std::uint64_t>(k));
    geo::Path tour = plan_tour(start, clusters.centroids);
    if (config.budget_m > 0.0) tour = uav::truncate_to_budget(tour, config.budget_m);
    const double cost = tour.length();
    if (cost <= 0.0) continue;
    const double gain = average_info_gain(tour, history, config.info);
    const double ratio = gain / cost;
    if (!have_best || ratio > best.info_to_cost) {
      best.path = std::move(tour);
      best.k = k;
      best.info_gain = gain;
      best.cost_m = cost;
      best.info_to_cost = ratio;
      have_best = true;
    }
  }
  expects(have_best, "plan_measurement_trajectory: no feasible tour");
  best.high_gradient_cells = hot.size();
  SKYRAN_COUNTER_INC("rem.planner.plans");
  SKYRAN_HISTOGRAM_OBSERVE("rem.planner.tour_length_m", best.cost_m);
  SKYRAN_HISTOGRAM_OBSERVE("rem.planner.info_gain", best.info_gain);
  SKYRAN_HISTOGRAM_OBSERVE("rem.planner.info_to_cost", best.info_to_cost);
  SKYRAN_HISTOGRAM_OBSERVE("rem.planner.k_selected", best.k);
  SKYRAN_HISTOGRAM_OBSERVE("rem.planner.high_gradient_cells", best.high_gradient_cells);
  return best;
}

}  // namespace

PlannedTrajectory plan_measurement_trajectory(std::span<const Rem> rems,
                                              const std::vector<TrajectoryHistory>& history,
                                              geo::Vec2 start, const PlannerConfig& config) {
  expects(!rems.empty(), "plan_measurement_trajectory: need at least one REM");
  expects(history.size() == rems.size(),
          "plan_measurement_trajectory: history size must match REM count");
  expects(config.k_min >= 1 && config.k_max >= config.k_min,
          "plan_measurement_trajectory: invalid K range");
  SKYRAN_TRACE_SPAN("rem.plan_trajectory");

  // Step 6.1: aggregate REM = cell-wise sum of per-UE estimates.
  geo::Grid2D<double> aggregate = rems.front().estimate(config.idw);
  for (std::size_t i = 1; i < rems.size(); ++i) {
    const geo::Grid2D<double> est = rems[i].estimate(config.idw);
    expects(aggregate.same_geometry(est), "plan_measurement_trajectory: REM geometry mismatch");
    for (std::size_t j = 0; j < est.raw().size(); ++j) aggregate.raw()[j] += est.raw()[j];
  }

  std::vector<geo::Vec2> probe_fallbacks;
  probe_fallbacks.reserve(rems.size());
  for (const Rem& r : rems) probe_fallbacks.push_back(r.area().clamp(r.ue_position().xy()));

  return plan_from_aggregate(aggregate, probe_fallbacks, history, start, config);
}

PlannedTrajectory plan_measurement_trajectory(const RemBank& bank,
                                              const std::vector<TrajectoryHistory>& history,
                                              geo::Vec2 start, const PlannerConfig& config) {
  expects(bank.ue_count() > 0, "plan_measurement_trajectory: need at least one REM");
  expects(history.size() == bank.ue_count(),
          "plan_measurement_trajectory: history size must match REM count");
  expects(config.k_min >= 1 && config.k_max >= config.k_min,
          "plan_measurement_trajectory: invalid K range");
  expects(bank.estimates_current(),
          "plan_measurement_trajectory: bank estimates are stale; call estimate_all first");
  SKYRAN_TRACE_SPAN("rem.plan_trajectory");

  // Step 6.1 on the cached slabs: same accumulation order as the per-REM
  // overload, so the aggregate is bit-identical when the estimates are.
  geo::Grid2D<double> aggregate = bank.estimate_grid(0);
  for (std::size_t i = 1; i < bank.ue_count(); ++i) {
    const geo::FieldView<const double> est = bank.estimate(i);
    for (std::size_t j = 0; j < est.size(); ++j) aggregate.raw()[j] += est[j];
  }

  std::vector<geo::Vec2> probe_fallbacks;
  probe_fallbacks.reserve(bank.ue_count());
  for (std::size_t i = 0; i < bank.ue_count(); ++i)
    probe_fallbacks.push_back(bank.area().clamp(bank.ue_position(i).xy()));

  return plan_from_aggregate(aggregate, probe_fallbacks, history, start, config);
}

}  // namespace skyran::rem
