#include "rem/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"

namespace skyran::rem {

namespace {

using ConstView = geo::FieldView<const double>;

// Grid2D callers funnel through the view implementations; a view is two
// pointers and the geometry, so this adapter costs one small allocation.
std::vector<ConstView> as_views(std::span<const geo::Grid2D<double>> maps) {
  std::vector<ConstView> out;
  out.reserve(maps.size());
  for (const geo::Grid2D<double>& m : maps) out.push_back(geo::view_of(m));
  return out;
}

}  // namespace

geo::Grid2D<double> min_snr_map(std::span<const ConstView> per_ue_maps) {
  expects(!per_ue_maps.empty(), "min_snr_map: need at least one REM");
  geo::Grid2D<double> out(per_ue_maps.front().area(), per_ue_maps.front().cell_size(), 0.0);
  for (std::size_t i = 1; i < per_ue_maps.size(); ++i)
    expects(per_ue_maps[i].same_geometry(out), "min_snr_map: geometry mismatch");
  core::parallel_for(out.raw().size(), [&](std::size_t j) {
    double v = per_ue_maps.front()[j];
    for (std::size_t i = 1; i < per_ue_maps.size(); ++i)
      v = std::min(v, per_ue_maps[i][j]);
    out.raw()[j] = v;
  });
  return out;
}

geo::Grid2D<double> min_snr_map(std::span<const geo::Grid2D<double>> per_ue_maps) {
  const std::vector<ConstView> views = as_views(per_ue_maps);
  return min_snr_map(std::span<const ConstView>(views));
}

geo::Grid2D<double> mean_snr_map(std::span<const ConstView> per_ue_maps,
                                 std::span<const double> weights) {
  expects(!per_ue_maps.empty(), "mean_snr_map: need at least one REM");
  expects(weights.empty() || weights.size() == per_ue_maps.size(),
          "mean_snr_map: weight count must match REM count");
  geo::Grid2D<double> out(per_ue_maps.front().area(), per_ue_maps.front().cell_size(), 0.0);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < per_ue_maps.size(); ++i) {
    expects(per_ue_maps[i].same_geometry(out), "mean_snr_map: geometry mismatch");
    const double w = weights.empty() ? 1.0 : weights[i];
    expects(w >= 0.0, "mean_snr_map: weights must be non-negative");
    weight_sum += w;
  }
  expects(weight_sum > 0.0, "mean_snr_map: weights must not all be zero");
  // Per-cell accumulation in UE order: the same FP addition order as a
  // map-by-map serial sweep, so the result is unchanged.
  core::parallel_for(out.raw().size(), [&](std::size_t j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < per_ue_maps.size(); ++i)
      acc += (weights.empty() ? 1.0 : weights[i]) * per_ue_maps[i][j];
    out.raw()[j] = acc / weight_sum;
  });
  return out;
}

geo::Grid2D<double> mean_snr_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                 std::span<const double> weights) {
  const std::vector<ConstView> views = as_views(per_ue_maps);
  return mean_snr_map(std::span<const ConstView>(views), weights);
}

geo::Grid2D<double> coverage_map(std::span<const ConstView> per_ue_maps,
                                 double threshold_db) {
  expects(!per_ue_maps.empty(), "coverage_map: need at least one REM");
  geo::Grid2D<double> out(per_ue_maps.front().area(), per_ue_maps.front().cell_size(), 0.0);
  for (const ConstView& m : per_ue_maps)
    expects(m.same_geometry(out), "coverage_map: geometry mismatch");
  core::parallel_for(out.raw().size(), [&](std::size_t j) {
    double served = 0.0;
    for (const ConstView& m : per_ue_maps)
      if (m[j] >= threshold_db) served += 1.0;
    out.raw()[j] = served / static_cast<double>(per_ue_maps.size());
  });
  return out;
}

geo::Grid2D<double> coverage_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                 double threshold_db) {
  const std::vector<ConstView> views = as_views(per_ue_maps);
  return coverage_map(std::span<const ConstView>(views), threshold_db);
}

namespace {

geo::Grid2D<double> objective_map(std::span<const ConstView> per_ue_maps,
                                  PlacementObjective objective,
                                  std::span<const double> weights) {
  switch (objective) {
    case PlacementObjective::kMaxMin:
      return min_snr_map(per_ue_maps);
    case PlacementObjective::kMaxCoverage: {
      // Coverage plateaus everywhere several UEs are served: break ties
      // with a small mean-SNR term so the argmax stays meaningful.
      geo::Grid2D<double> cov = coverage_map(per_ue_maps);
      const geo::Grid2D<double> mean = mean_snr_map(per_ue_maps);
      for (std::size_t j = 0; j < cov.raw().size(); ++j)
        cov.raw()[j] += 1e-4 * mean.raw()[j];
      return cov;
    }
    case PlacementObjective::kMaxMean:
    case PlacementObjective::kMaxWeighted:
      break;
  }
  return mean_snr_map(per_ue_maps, objective == PlacementObjective::kMaxWeighted
                                       ? weights
                                       : std::span<const double>{});
}

Placement argmax_placement(const geo::Grid2D<double>& map) {
  // Chunked argmax: strict `>` within a chunk and across the chunk-ordered
  // combine keeps the lowest flat index on ties — exactly the serial sweep.
  struct Best {
    double v = -std::numeric_limits<double>::infinity();
    std::size_t index = 0;
  };
  const auto& raw = map.raw();
  const Best best = core::parallel_reduce(
      raw.size(), 0, Best{},
      [&](std::size_t begin, std::size_t end) {
        Best b;
        b.index = begin;
        for (std::size_t j = begin; j < end; ++j) {
          if (raw[j] > b.v) {
            b.v = raw[j];
            b.index = j;
          }
        }
        return b;
      },
      [](Best a, const Best& b) { return b.v > a.v ? b : a; });

  Placement out;
  out.objective_snr_db = best.v;
  const int nx = map.nx();
  out.position = map.center_of({static_cast<int>(best.index % static_cast<std::size_t>(nx)),
                                static_cast<int>(best.index / static_cast<std::size_t>(nx))});
  return out;
}

}  // namespace

Placement choose_placement(std::span<const ConstView> per_ue_maps,
                           PlacementObjective objective, std::span<const double> weights) {
  return argmax_placement(objective_map(per_ue_maps, objective, weights));
}

Placement choose_placement(std::span<const geo::Grid2D<double>> per_ue_maps,
                           PlacementObjective objective, std::span<const double> weights) {
  const std::vector<ConstView> views = as_views(per_ue_maps);
  return choose_placement(std::span<const ConstView>(views), objective, weights);
}

Placement choose_placement_feasible(std::span<const ConstView> per_ue_maps,
                                    const terrain::Terrain& t, double altitude_m,
                                    PlacementObjective objective,
                                    std::span<const double> weights, double clearance_m) {
  geo::Grid2D<double> map = objective_map(per_ue_maps, objective, weights);
  mask_infeasible_cells(map, t, altitude_m, clearance_m);
  return argmax_placement(map);
}

Placement choose_placement_feasible(std::span<const geo::Grid2D<double>> per_ue_maps,
                                    const terrain::Terrain& t, double altitude_m,
                                    PlacementObjective objective,
                                    std::span<const double> weights, double clearance_m) {
  const std::vector<ConstView> views = as_views(per_ue_maps);
  return choose_placement_feasible(std::span<const ConstView>(views), t, altitude_m, objective,
                                   weights, clearance_m);
}

void mask_infeasible_cells(geo::Grid2D<double>& objective, const terrain::Terrain& t,
                           double altitude_m, double clearance_m) {
  auto& raw = objective.raw();
  const int nx = objective.nx();
  core::parallel_for(raw.size(), [&](std::size_t j) {
    const geo::CellIndex c{static_cast<int>(j % static_cast<std::size_t>(nx)),
                           static_cast<int>(j / static_cast<std::size_t>(nx))};
    if (t.surface_height(objective.center_of(c)) + clearance_m > altitude_m) raw[j] = -1e9;
  });
}

AltitudeSearchResult find_optimal_altitude(const rf::ChannelModel& channel, geo::Vec2 xy,
                                           std::span<const geo::Vec3> ue_positions,
                                           double start_altitude_m, double min_altitude_m,
                                           double step_m, int patience) {
  expects(!ue_positions.empty(), "find_optimal_altitude: need at least one UE");
  expects(start_altitude_m > min_altitude_m, "find_optimal_altitude: start must exceed min");
  expects(step_m > 0.0, "find_optimal_altitude: step must be positive");

  // Average each probe over a small circle of hover positions: a single
  // point would be dominated by local shadow fading.
  const auto mean_loss = [&](double alt) {
    constexpr int kProbePoints = 6;
    constexpr double kProbeRadius = 20.0;
    double sum = 0.0;
    for (int i = 0; i < kProbePoints; ++i) {
      const double ang = 2.0 * M_PI * i / kProbePoints;
      const geo::Vec2 at = xy + geo::Vec2{std::cos(ang), std::sin(ang)} * kProbeRadius;
      for (const geo::Vec3& ue : ue_positions)
        sum += channel.path_loss_db(geo::Vec3{at, alt}, ue);
    }
    return sum / static_cast<double>(ue_positions.size() * kProbePoints);
  };

  AltitudeSearchResult best;
  best.altitude_m = start_altitude_m;
  best.mean_path_loss_db = mean_loss(start_altitude_m);
  best.probes = 1;
  int worse_streak = 0;
  for (double alt = start_altitude_m - step_m; alt >= min_altitude_m; alt -= step_m) {
    const double loss = mean_loss(alt);
    ++best.probes;
    if (loss < best.mean_path_loss_db) {
      best.mean_path_loss_db = loss;
      best.altitude_m = alt;
      worse_streak = 0;
    } else if (++worse_streak >= patience) {
      break;  // path loss has turned around: shadowing dominates below
    }
  }
  return best;
}

}  // namespace skyran::rem
