#include "rem/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/contract.hpp"

namespace skyran::rem {

geo::Grid2D<double> min_snr_map(std::span<const geo::Grid2D<double>> per_ue_maps) {
  expects(!per_ue_maps.empty(), "min_snr_map: need at least one REM");
  geo::Grid2D<double> out = per_ue_maps.front();
  for (std::size_t i = 1; i < per_ue_maps.size(); ++i) {
    expects(out.same_geometry(per_ue_maps[i]), "min_snr_map: geometry mismatch");
    const auto& raw = per_ue_maps[i].raw();
    for (std::size_t j = 0; j < raw.size(); ++j) out.raw()[j] = std::min(out.raw()[j], raw[j]);
  }
  return out;
}

geo::Grid2D<double> mean_snr_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                 std::span<const double> weights) {
  expects(!per_ue_maps.empty(), "mean_snr_map: need at least one REM");
  expects(weights.empty() || weights.size() == per_ue_maps.size(),
          "mean_snr_map: weight count must match REM count");
  geo::Grid2D<double> out(per_ue_maps.front().area(), per_ue_maps.front().cell_size(), 0.0);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < per_ue_maps.size(); ++i) {
    expects(out.same_geometry(per_ue_maps[i]), "mean_snr_map: geometry mismatch");
    const double w = weights.empty() ? 1.0 : weights[i];
    expects(w >= 0.0, "mean_snr_map: weights must be non-negative");
    weight_sum += w;
    const auto& raw = per_ue_maps[i].raw();
    for (std::size_t j = 0; j < raw.size(); ++j) out.raw()[j] += w * raw[j];
  }
  expects(weight_sum > 0.0, "mean_snr_map: weights must not all be zero");
  for (double& v : out.raw()) v /= weight_sum;
  return out;
}

geo::Grid2D<double> coverage_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                 double threshold_db) {
  expects(!per_ue_maps.empty(), "coverage_map: need at least one REM");
  geo::Grid2D<double> out(per_ue_maps.front().area(), per_ue_maps.front().cell_size(), 0.0);
  for (const geo::Grid2D<double>& m : per_ue_maps) {
    expects(out.same_geometry(m), "coverage_map: geometry mismatch");
    for (std::size_t j = 0; j < m.raw().size(); ++j)
      if (m.raw()[j] >= threshold_db) out.raw()[j] += 1.0;
  }
  for (double& v : out.raw()) v /= static_cast<double>(per_ue_maps.size());
  return out;
}

namespace {

geo::Grid2D<double> objective_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                  PlacementObjective objective,
                                  std::span<const double> weights) {
  switch (objective) {
    case PlacementObjective::kMaxMin:
      return min_snr_map(per_ue_maps);
    case PlacementObjective::kMaxCoverage: {
      // Coverage plateaus everywhere several UEs are served: break ties
      // with a small mean-SNR term so the argmax stays meaningful.
      geo::Grid2D<double> cov = coverage_map(per_ue_maps);
      const geo::Grid2D<double> mean = mean_snr_map(per_ue_maps);
      for (std::size_t j = 0; j < cov.raw().size(); ++j)
        cov.raw()[j] += 1e-4 * mean.raw()[j];
      return cov;
    }
    case PlacementObjective::kMaxMean:
    case PlacementObjective::kMaxWeighted:
      break;
  }
  return mean_snr_map(per_ue_maps, objective == PlacementObjective::kMaxWeighted
                                       ? weights
                                       : std::span<const double>{});
}

Placement argmax_placement(const geo::Grid2D<double>& map) {
  Placement best;
  double best_v = -std::numeric_limits<double>::infinity();
  map.for_each([&](geo::CellIndex c, const double& v) {
    if (v > best_v) {
      best_v = v;
      best.position = map.center_of(c);
    }
  });
  best.objective_snr_db = best_v;
  return best;
}

}  // namespace

Placement choose_placement(std::span<const geo::Grid2D<double>> per_ue_maps,
                           PlacementObjective objective, std::span<const double> weights) {
  return argmax_placement(objective_map(per_ue_maps, objective, weights));
}

Placement choose_placement_feasible(std::span<const geo::Grid2D<double>> per_ue_maps,
                                    const terrain::Terrain& t, double altitude_m,
                                    PlacementObjective objective,
                                    std::span<const double> weights, double clearance_m) {
  geo::Grid2D<double> map = objective_map(per_ue_maps, objective, weights);
  mask_infeasible_cells(map, t, altitude_m, clearance_m);
  return argmax_placement(map);
}

void mask_infeasible_cells(geo::Grid2D<double>& objective, const terrain::Terrain& t,
                           double altitude_m, double clearance_m) {
  objective.for_each([&](geo::CellIndex c, double& v) {
    if (t.surface_height(objective.center_of(c)) + clearance_m > altitude_m) v = -1e9;
  });
}

AltitudeSearchResult find_optimal_altitude(const rf::ChannelModel& channel, geo::Vec2 xy,
                                           std::span<const geo::Vec3> ue_positions,
                                           double start_altitude_m, double min_altitude_m,
                                           double step_m, int patience) {
  expects(!ue_positions.empty(), "find_optimal_altitude: need at least one UE");
  expects(start_altitude_m > min_altitude_m, "find_optimal_altitude: start must exceed min");
  expects(step_m > 0.0, "find_optimal_altitude: step must be positive");

  // Average each probe over a small circle of hover positions: a single
  // point would be dominated by local shadow fading.
  const auto mean_loss = [&](double alt) {
    constexpr int kProbePoints = 6;
    constexpr double kProbeRadius = 20.0;
    double sum = 0.0;
    for (int i = 0; i < kProbePoints; ++i) {
      const double ang = 2.0 * M_PI * i / kProbePoints;
      const geo::Vec2 at = xy + geo::Vec2{std::cos(ang), std::sin(ang)} * kProbeRadius;
      for (const geo::Vec3& ue : ue_positions)
        sum += channel.path_loss_db(geo::Vec3{at, alt}, ue);
    }
    return sum / static_cast<double>(ue_positions.size() * kProbePoints);
  };

  AltitudeSearchResult best;
  best.altitude_m = start_altitude_m;
  best.mean_path_loss_db = mean_loss(start_altitude_m);
  best.probes = 1;
  int worse_streak = 0;
  for (double alt = start_altitude_m - step_m; alt >= min_altitude_m; alt -= step_m) {
    const double loss = mean_loss(alt);
    ++best.probes;
    if (loss < best.mean_path_loss_db) {
      best.mean_path_loss_db = loss;
      best.altitude_m = alt;
      worse_streak = 0;
    } else if (++worse_streak >= patience) {
      break;  // path loss has turned around: shadowing dominates below
    }
  }
  return best;
}

}  // namespace skyran::rem
