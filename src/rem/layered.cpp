#include "rem/layered.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/contract.hpp"

namespace skyran::rem {

LayeredRem::LayeredRem(geo::Rect area, double cell_size, std::vector<double> altitudes_m,
                       geo::Vec3 ue_position)
    : altitudes_(std::move(altitudes_m)) {
  expects(!altitudes_.empty(), "LayeredRem: need at least one altitude");
  expects(std::is_sorted(altitudes_.begin(), altitudes_.end()) &&
              std::adjacent_find(altitudes_.begin(), altitudes_.end()) == altitudes_.end(),
          "LayeredRem: altitudes must be strictly increasing");
  layers_.reserve(altitudes_.size());
  for (const double a : altitudes_) layers_.emplace_back(area, cell_size, a, ue_position);
}

Rem& LayeredRem::layer(std::size_t i) {
  expects(i < layers_.size(), "LayeredRem::layer: index out of range");
  return layers_[i];
}

const Rem& LayeredRem::layer(std::size_t i) const {
  expects(i < layers_.size(), "LayeredRem::layer: index out of range");
  return layers_[i];
}

std::size_t LayeredRem::nearest_layer(double altitude_m) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < altitudes_.size(); ++i) {
    const double d = std::abs(altitudes_[i] - altitude_m);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

geo::Grid2D<double> LayeredRem::estimate_at(double altitude_m, const IdwParams& params) const {
  // Clamp outside the ladder.
  if (altitude_m <= altitudes_.front()) return layers_.front().estimate(params);
  if (altitude_m >= altitudes_.back()) return layers_.back().estimate(params);
  // Bracketing layers.
  std::size_t hi = 1;
  while (altitudes_[hi] < altitude_m) ++hi;
  const std::size_t lo = hi - 1;
  const double t = (altitude_m - altitudes_[lo]) / (altitudes_[hi] - altitudes_[lo]);
  geo::Grid2D<double> a = layers_[lo].estimate(params);
  const geo::Grid2D<double> b = layers_[hi].estimate(params);
  for (std::size_t i = 0; i < a.raw().size(); ++i)
    a.raw()[i] = (1.0 - t) * a.raw()[i] + t * b.raw()[i];
  return a;
}

Placement3D choose_placement_3d(std::span<const LayeredRem> stacks, const terrain::Terrain& t,
                                PlacementObjective objective, const IdwParams& params) {
  expects(!stacks.empty(), "choose_placement_3d: need at least one UE stack");
  const std::vector<double>& ladder = stacks.front().altitudes_m();
  for (const LayeredRem& s : stacks)
    expects(s.altitudes_m() == ladder, "choose_placement_3d: altitude ladders must match");

  Placement3D best;
  double best_v = -std::numeric_limits<double>::infinity();
  for (std::size_t li = 0; li < ladder.size(); ++li) {
    std::vector<geo::Grid2D<double>> maps;
    maps.reserve(stacks.size());
    for (const LayeredRem& s : stacks) maps.push_back(s.layer(li).estimate(params));
    // Feed the placement search through the view path (the maps stay alive
    // in this scope, so non-owning views are safe).
    std::vector<geo::FieldView<const double>> views;
    views.reserve(maps.size());
    for (const geo::Grid2D<double>& m : maps) views.push_back(geo::view_of(m));
    const Placement p = choose_placement_feasible(views, t, ladder[li], objective);
    if (p.objective_snr_db > best_v) {
      best_v = p.objective_snr_db;
      best.position = p.position;
      best.altitude_m = ladder[li];
      best.objective_snr_db = p.objective_snr_db;
    }
  }
  return best;
}

}  // namespace skyran::rem
