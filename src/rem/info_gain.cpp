#include "rem/info_gain.hpp"

#include <algorithm>

#include "geo/contract.hpp"

namespace skyran::rem {

double info_gain_for_ue(const geo::Path& candidate, const TrajectoryHistory& history,
                        const InfoGainParams& params) {
  expects(!candidate.empty(), "info_gain_for_ue: empty candidate path");
  if (history.empty()) return params.i_max;
  double gain = params.i_max;
  for (const geo::Path& prior : history) {
    if (prior.empty()) continue;
    gain = std::min(gain, candidate.mean_distance_to(prior, params.sample_spacing_m));
  }
  return gain;
}

double average_info_gain(const geo::Path& candidate,
                         const std::vector<TrajectoryHistory>& per_ue_history,
                         const InfoGainParams& params) {
  expects(!per_ue_history.empty(), "average_info_gain: need at least one UE");
  double sum = 0.0;
  for (const TrajectoryHistory& h : per_ue_history)
    sum += info_gain_for_ue(candidate, h, params);
  return sum / static_cast<double>(per_ue_history.size());
}

double info_to_cost_ratio(const geo::Path& candidate,
                          const std::vector<TrajectoryHistory>& per_ue_history,
                          const InfoGainParams& params) {
  const double cost = candidate.length();
  if (cost <= 0.0) return 0.0;
  return average_info_gain(candidate, per_ue_history, params) / cost;
}

}  // namespace skyran::rem
