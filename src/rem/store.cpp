#include "rem/store.hpp"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "geo/binio.hpp"
#include "geo/contract.hpp"
#include "rem/bank.hpp"

namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'R'};
// v1 was the bare field stream (truncation-detectable only); v2 wraps the
// same payload in the shared geo::binio CRC envelope so any byte flip —
// not just a short read — is rejected. v1 streams are no longer accepted.
constexpr std::uint32_t kVersion = 2;

}  // namespace

namespace skyran::rem {

RemStore::RemStore(double reuse_radius_m)
    : reuse_radius_m_(reuse_radius_m), index_(std::max(reuse_radius_m, 1e-9)) {
  expects(reuse_radius_m > 0.0, "RemStore: reuse radius must be positive");
}

void RemStore::put(Rem rem) {
  // Replaces the earliest-inserted entry within R (first_within returns the
  // minimum id), matching the historical linear scan over entries_.
  if (const std::optional<std::size_t> hit =
          index_.first_within(rem.ue_position().xy(), reuse_radius_m_)) {
    const geo::Vec2 old_pos = entries_[*hit].ue_position().xy();
    index_.move(*hit, old_pos, rem.ue_position().xy());
    entries_[*hit] = std::move(rem);
    return;
  }
  index_.insert(rem.ue_position().xy(), entries_.size());
  entries_.push_back(std::move(rem));
}

const Rem* RemStore::find_near(geo::Vec2 position) const {
  // nearest_within breaks distance ties on the lower id, matching the
  // strict-< improvement rule of the historical scan (earliest entry wins).
  const std::optional<std::size_t> hit = index_.nearest_within(position, reuse_radius_m_);
  return hit ? &entries_[*hit] : nullptr;
}

void RemStore::save(std::ostream& os) const {
  geo::BinWriter w;
  w.pod(reuse_radius_m_);
  w.pod(static_cast<std::uint32_t>(entries_.size()));
  for (const Rem& r : entries_) {
    w.pod(r.area().min.x);
    w.pod(r.area().min.y);
    w.pod(r.area().max.x);
    w.pod(r.area().max.y);
    w.pod(r.cell_size());
    w.pod(r.altitude_m());
    w.pod(r.ue_position().x);
    w.pod(r.ue_position().y);
    w.pod(r.ue_position().z);
    w.pod(static_cast<std::uint32_t>(r.measured_cells()));
    const auto& grid = r.background();  // geometry reference
    grid.for_each([&](geo::CellIndex c, const double&) {
      const int n = r.measurement_count(c);
      if (n == 0) return;
      w.pod(static_cast<std::int32_t>(c.ix));
      w.pod(static_cast<std::int32_t>(c.iy));
      w.pod(*r.measured_snr(c) * n);  // sum
      w.pod(static_cast<std::int32_t>(n));
    });
    // Background raster + provenance (new in v2). v1 dropped these, which
    // made a reloaded store seed the next epoch's REMs from a different
    // fallback than the live store — fatal for bit-identical resume.
    w.pod(static_cast<std::uint8_t>(r.background_source()));
    if (r.has_background())
      grid.for_each([&](geo::CellIndex, const double& v) { w.pod(v); });
  }
  geo::write_envelope(os, kMagic, kVersion, w);
  if (!os) throw std::runtime_error("RemStore::save: write failed");
}

RemStore RemStore::load(std::istream& is) {
  const geo::Envelope env = geo::read_envelope(is, kMagic, kVersion, kVersion, "RemStore::load");
  geo::BinReader r(env.payload);
  RemStore store(r.pod<double>());
  const auto n_entries = r.pod<std::uint32_t>();
  for (std::uint32_t e = 0; e < n_entries; ++e) {
    const double min_x = r.pod<double>();
    const double min_y = r.pod<double>();
    const double max_x = r.pod<double>();
    const double max_y = r.pod<double>();
    const double cell = r.pod<double>();
    const double altitude = r.pod<double>();
    const double ux = r.pod<double>();
    const double uy = r.pod<double>();
    const double uz = r.pod<double>();
    const auto n_cells = r.pod<std::uint32_t>();
    Rem rem(geo::Rect{{min_x, min_y}, {max_x, max_y}}, cell, altitude, {ux, uy, uz});
    for (std::uint32_t i = 0; i < n_cells; ++i) {
      const auto ix = r.pod<std::int32_t>();
      const auto iy = r.pod<std::int32_t>();
      const double sum = r.pod<double>();
      const auto count = r.pod<std::int32_t>();
      rem.restore_measurement({ix, iy}, sum, count);
    }
    const auto source_raw = r.pod<std::uint8_t>();
    if (source_raw > static_cast<std::uint8_t>(Rem::BackgroundSource::kPrior))
      throw geo::BinCorruptError("RemStore::load: bad background source tag");
    const auto source = static_cast<Rem::BackgroundSource>(source_raw);
    if (source != Rem::BackgroundSource::kNone) {
      geo::Grid2D<double> background(rem.area(), rem.cell_size());
      background.for_each([&](geo::CellIndex, double& v) { v = r.pod<double>(); });
      rem.restore_background(background, source);
    }
    store.index_.insert(rem.ue_position().xy(), store.entries_.size());
    store.entries_.push_back(std::move(rem));
  }
  if (!r.done())
    throw geo::BinCorruptError("RemStore::load: trailing bytes after last entry");
  return store;
}

Rem RemStore::make_for_ue(geo::Rect area, double cell_size, double altitude_m,
                          geo::Vec3 ue_position, const rf::ChannelModel& fallback_model,
                          const rf::LinkBudget& budget, const IdwParams& idw) const {
  Rem rem(area, cell_size, altitude_m, ue_position);
  if (const Rem* prior = find_near(ue_position.xy())) {
    rem.seed_from(*prior, idw);
  } else {
    rem.seed_from_model(fallback_model, budget);
  }
  return rem;
}

void RemStore::seed_bank_ue(RemBank& bank, std::size_t ue,
                            const rf::ChannelModel& fallback_model,
                            const rf::LinkBudget& budget, const IdwParams& idw) const {
  if (const Rem* prior = find_near(bank.ue_position(ue).xy())) {
    bank.seed_from(ue, *prior, idw);
  } else {
    bank.seed_from_model(ue, fallback_model, budget);
  }
}

void RemStore::put_from_bank(const RemBank& bank, std::size_t ue) {
  put(bank.extract_rem(ue));
}

}  // namespace skyran::rem
