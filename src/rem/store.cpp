#include "rem/store.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "geo/contract.hpp"
#include "rem/bank.hpp"

namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("RemStore::load: truncated input");
  return v;
}

}  // namespace

namespace skyran::rem {

RemStore::RemStore(double reuse_radius_m)
    : reuse_radius_m_(reuse_radius_m), index_(std::max(reuse_radius_m, 1e-9)) {
  expects(reuse_radius_m > 0.0, "RemStore: reuse radius must be positive");
}

void RemStore::put(Rem rem) {
  // Replaces the earliest-inserted entry within R (first_within returns the
  // minimum id), matching the historical linear scan over entries_.
  if (const std::optional<std::size_t> hit =
          index_.first_within(rem.ue_position().xy(), reuse_radius_m_)) {
    const geo::Vec2 old_pos = entries_[*hit].ue_position().xy();
    index_.move(*hit, old_pos, rem.ue_position().xy());
    entries_[*hit] = std::move(rem);
    return;
  }
  index_.insert(rem.ue_position().xy(), entries_.size());
  entries_.push_back(std::move(rem));
}

const Rem* RemStore::find_near(geo::Vec2 position) const {
  // nearest_within breaks distance ties on the lower id, matching the
  // strict-< improvement rule of the historical scan (earliest entry wins).
  const std::optional<std::size_t> hit = index_.nearest_within(position, reuse_radius_m_);
  return hit ? &entries_[*hit] : nullptr;
}

void RemStore::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, reuse_radius_m_);
  write_pod(os, static_cast<std::uint32_t>(entries_.size()));
  for (const Rem& r : entries_) {
    write_pod(os, r.area().min.x);
    write_pod(os, r.area().min.y);
    write_pod(os, r.area().max.x);
    write_pod(os, r.area().max.y);
    write_pod(os, r.cell_size());
    write_pod(os, r.altitude_m());
    write_pod(os, r.ue_position().x);
    write_pod(os, r.ue_position().y);
    write_pod(os, r.ue_position().z);
    write_pod(os, static_cast<std::uint32_t>(r.measured_cells()));
    const auto& grid = r.background();  // geometry reference
    grid.for_each([&](geo::CellIndex c, const double&) {
      const int n = r.measurement_count(c);
      if (n == 0) return;
      write_pod(os, static_cast<std::int32_t>(c.ix));
      write_pod(os, static_cast<std::int32_t>(c.iy));
      write_pod(os, *r.measured_snr(c) * n);  // sum
      write_pod(os, static_cast<std::int32_t>(n));
    });
  }
  if (!os) throw std::runtime_error("RemStore::save: write failed");
}

RemStore RemStore::load(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("RemStore::load: bad magic");
  if (read_pod<std::uint32_t>(is) != kVersion)
    throw std::runtime_error("RemStore::load: unsupported version");
  RemStore store(read_pod<double>(is));
  const auto n_entries = read_pod<std::uint32_t>(is);
  for (std::uint32_t e = 0; e < n_entries; ++e) {
    const double min_x = read_pod<double>(is);
    const double min_y = read_pod<double>(is);
    const double max_x = read_pod<double>(is);
    const double max_y = read_pod<double>(is);
    const double cell = read_pod<double>(is);
    const double altitude = read_pod<double>(is);
    const double ux = read_pod<double>(is);
    const double uy = read_pod<double>(is);
    const double uz = read_pod<double>(is);
    const auto n_cells = read_pod<std::uint32_t>(is);
    Rem rem(geo::Rect{{min_x, min_y}, {max_x, max_y}}, cell, altitude, {ux, uy, uz});
    for (std::uint32_t i = 0; i < n_cells; ++i) {
      const auto ix = read_pod<std::int32_t>(is);
      const auto iy = read_pod<std::int32_t>(is);
      const double sum = read_pod<double>(is);
      const auto count = read_pod<std::int32_t>(is);
      rem.restore_measurement({ix, iy}, sum, count);
    }
    store.index_.insert(rem.ue_position().xy(), store.entries_.size());
    store.entries_.push_back(std::move(rem));
  }
  return store;
}

Rem RemStore::make_for_ue(geo::Rect area, double cell_size, double altitude_m,
                          geo::Vec3 ue_position, const rf::ChannelModel& fallback_model,
                          const rf::LinkBudget& budget, const IdwParams& idw) const {
  Rem rem(area, cell_size, altitude_m, ue_position);
  if (const Rem* prior = find_near(ue_position.xy())) {
    rem.seed_from(*prior, idw);
  } else {
    rem.seed_from_model(fallback_model, budget);
  }
  return rem;
}

void RemStore::seed_bank_ue(RemBank& bank, std::size_t ue,
                            const rf::ChannelModel& fallback_model,
                            const rf::LinkBudget& budget, const IdwParams& idw) const {
  if (const Rem* prior = find_near(bank.ue_position(ue).xy())) {
    bank.seed_from(ue, *prior, idw);
  } else {
    bank.seed_from_model(ue, fallback_model, budget);
  }
}

void RemStore::put_from_bank(const RemBank& bank, std::size_t ue) {
  put(bank.extract_rem(ue));
}

}  // namespace skyran::rem
