#include "rem/rem.hpp"

#include <cmath>

#include <atomic>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "geo/stats.hpp"
#include "obs/obs.hpp"
#include "rem/idw.hpp"

namespace skyran::rem {

Rem::Rem(geo::Rect area, double cell_size, double altitude_m, geo::Vec3 ue_position)
    : sums_(area, cell_size, 0.0),
      counts_(area, cell_size, 0),
      background_(area, cell_size, 0.0),
      altitude_m_(altitude_m),
      ue_position_(ue_position) {
  expects(altitude_m > 0.0, "Rem: altitude must be positive");
}

void Rem::add_measurement(geo::Vec2 at, double snr_db) {
  expects(area().contains(at), "Rem::add_measurement: position outside area");
  const geo::CellIndex c = sums_.cell_of(at);
  if (counts_.at(c) == 0) ++measured_count_;
  sums_.at(c) += snr_db;
  counts_.at(c) += 1;
}

void Rem::restore_measurement(geo::CellIndex c, double snr_sum_db, int count) {
  expects(count >= 1, "Rem::restore_measurement: count must be >= 1");
  if (counts_.at(c) == 0) ++measured_count_;
  sums_.at(c) = snr_sum_db;
  counts_.at(c) = count;
}

void Rem::restore_background(const geo::Grid2D<double>& background, BackgroundSource source) {
  expects(background_.same_geometry(background),
          "Rem::restore_background: geometry mismatch");
  background_ = background;
  background_source_ = source;
}

double Rem::measured_fraction() const {
  return static_cast<double>(measured_count_) / static_cast<double>(counts_.size());
}

std::optional<double> Rem::measured_snr(geo::CellIndex c) const {
  const int n = counts_.at(c);
  if (n == 0) return std::nullopt;
  return sums_.at(c) / n;
}

void Rem::seed_from_model(const rf::ChannelModel& model, const rf::LinkBudget& budget) {
  // Row-batched through the channel's path_loss_db_row: bit-identical to the
  // historical per-cell for_each sweep (same row-major order and argument
  // order), but analytic channels evaluate each row in one kernels pass.
  const int nx = background_.nx();
  const int ny = background_.ny();
  std::vector<geo::Vec3> row(static_cast<std::size_t>(nx));
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix)
      row[static_cast<std::size_t>(ix)] =
          geo::Vec3{background_.center_of({ix, iy}), altitude_m_};
    double* out =
        background_.raw().data() + static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx);
    model.path_loss_db_row(row.data(), row.size(), ue_position_, out);
    for (int ix = 0; ix < nx; ++ix) out[ix] = budget.snr_db(out[ix]);
  }
  background_source_ = BackgroundSource::kModel;
}

void Rem::seed_from(const Rem& prior, const IdwParams& params) {
  expects(background_.same_geometry(prior.background_),
          "Rem::seed_from: geometry mismatch with prior REM");
  background_ = prior.estimate(params);
  // A prior seeded purely from a model carries no measurement information:
  // keep treating it as a model background.
  background_source_ = prior.measured_cells() > 0 ||
                               prior.background_source_ == BackgroundSource::kPrior
                           ? BackgroundSource::kPrior
                           : prior.background_source_;
}

geo::Grid2D<double> Rem::estimate(const IdwParams& params) const {
  SKYRAN_TRACE_SPAN("rem.estimate");
  // Gather measured cells as IDW samples.
  std::vector<IdwSample> samples;
  samples.reserve(measured_count_);
  counts_.for_each([&](geo::CellIndex c, const int& n) {
    if (n > 0) samples.push_back({counts_.center_of(c), sums_.at(c) / n});
  });
  const IdwInterpolator idw(std::move(samples), area());

  const bool blend_prior = background_source_ == BackgroundSource::kPrior &&
                           params.background_blend_m > 0.0;
  geo::Grid2D<double> out(area(), cell_size(), 0.0);
  auto& raw = out.raw();
  const int nx = out.nx();
  // Cell-provenance tallies (measured / IDW-interpolated / background
  // fallback), accumulated with relaxed atomics only when instrumentation is
  // on; the estimate itself never depends on them.
  const bool tally = obs::enabled();
  std::atomic<std::uint64_t> idw_cells{0}, background_cells{0}, empty_cells{0};
  // Each cell is estimated independently: the sweep runs on the thread pool
  // and is bit-for-bit identical for any worker count.
  core::parallel_for(raw.size(), [&](std::size_t i) {
    const geo::CellIndex c{static_cast<int>(i % static_cast<std::size_t>(nx)),
                           static_cast<int>(i / static_cast<std::size_t>(nx))};
    double& v = raw[i];
    if (const std::optional<double> m = measured_snr(c)) {
      v = *m;
      return;
    }
    const auto interp = idw.estimate_with_distance(out.center_of(c), params.k_neighbors,
                                                   params.power, params.max_radius_m);
    if (interp && blend_prior) {
      // Temporal aggregation: fresh measurements dominate near the tour,
      // the prior epoch's map dominates far from it.
      const double w = std::exp(-interp->nearest_m / params.background_blend_m);
      v = w * interp->value + (1.0 - w) * background_.at(c);
      if (tally) idw_cells.fetch_add(1, std::memory_order_relaxed);
    } else if (interp) {
      v = interp->value;
      if (tally) idw_cells.fetch_add(1, std::memory_order_relaxed);
    } else if (has_background()) {
      v = background_.at(c);
      if (tally) background_cells.fetch_add(1, std::memory_order_relaxed);
    } else {
      v = 0.0;  // no information at all
      if (tally) empty_cells.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (tally) {
    SKYRAN_COUNTER_ADD("rem.fill.cells_measured", measured_count_);
    SKYRAN_COUNTER_ADD("rem.fill.cells_idw", idw_cells.load(std::memory_order_relaxed));
    SKYRAN_COUNTER_ADD("rem.fill.cells_background",
                       background_cells.load(std::memory_order_relaxed));
    SKYRAN_COUNTER_ADD("rem.fill.cells_empty", empty_cells.load(std::memory_order_relaxed));
    SKYRAN_HISTOGRAM_OBSERVE("rem.fill.measured_fraction", measured_fraction());
  }
  return out;
}

double median_abs_error_db(const geo::Grid2D<double>& estimate,
                           const geo::Grid2D<double>& ground_truth) {
  expects(estimate.same_geometry(ground_truth), "median_abs_error_db: geometry mismatch");
  std::vector<double> errs;
  errs.reserve(estimate.size());
  estimate.for_each([&](geo::CellIndex c, const double& v) {
    errs.push_back(std::abs(v - ground_truth.at(c)));
  });
  return geo::median(errs);
}

}  // namespace skyran::rem
