// Shared rasterize-over-interpolator helper: IDW and kriging both expose a
// "one estimate per cell center, parallel across cells" full-map raster; the
// loop lives here once so the two stay structurally identical (and any
// future interpolator gets the same determinism contract for free).
#pragma once

#include <cstddef>
#include <optional>

#include "core/thread_pool.hpp"
#include "geo/grid.hpp"
#include "geo/rect.hpp"

namespace skyran::rem {

/// Fill a grid over `area` by evaluating `estimate_at(center) ->
/// std::optional<double>` at every cell center on the global thread pool;
/// cells where the interpolator has nothing in range take `fallback`.
/// Bit-for-bit identical for any worker count (cells are independent).
template <typename EstimateAt>
geo::Grid2D<double> rasterize_estimates(geo::Rect area, double cell_size, double fallback,
                                        EstimateAt&& estimate_at) {
  geo::Grid2D<double> out(area, cell_size, fallback);
  auto& raw = out.raw();
  const int nx = out.nx();
  core::parallel_for(raw.size(), [&](std::size_t i) {
    const geo::CellIndex c{static_cast<int>(i % static_cast<std::size_t>(nx)),
                           static_cast<int>(i / static_cast<std::size_t>(nx))};
    raw[i] = estimate_at(out.center_of(c)).value_or(fallback);
  });
  return out;
}

}  // namespace skyran::rem
