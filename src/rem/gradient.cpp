#include "rem/gradient.hpp"

#include <algorithm>
#include <cmath>

#include "geo/stats.hpp"

namespace skyran::rem {

geo::Grid2D<double> gradient_map(const geo::Grid2D<double>& snr) {
  geo::Grid2D<double> out(snr.area(), snr.cell_size(), 0.0);
  out.for_each([&](geo::CellIndex c, double& g) {
    const double v = snr.at(c);
    double best = 0.0;
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const geo::CellIndex n{c.ix + dx, c.iy + dy};
        if (!snr.in_bounds(n)) continue;
        best = std::max(best, std::abs(v - snr.at_unchecked(n)));
      }
    }
    g = best;
  });
  return out;
}

double gradient_median(const geo::Grid2D<double>& gradient) {
  return geo::median(gradient.raw());
}

std::vector<geo::CellIndex> high_gradient_cells(const geo::Grid2D<double>& gradient) {
  const double threshold = gradient_median(gradient);
  std::vector<geo::CellIndex> out;
  gradient.for_each([&](geo::CellIndex c, const double& g) {
    if (g > threshold) out.push_back(c);
  });
  return out;
}

}  // namespace skyran::rem
