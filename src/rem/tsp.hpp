// Open traveling-salesman tours through cluster heads (paper Step 6.4). A
// measurement flight starts wherever the UAV currently hovers and need not
// return, so we solve the open-path TSP: nearest-neighbor construction
// followed by 2-opt improvement.
#pragma once

#include <vector>

#include "geo/path.hpp"
#include "geo/vec.hpp"

namespace skyran::rem {

/// Order `nodes` into a short open tour starting at `start` (the start point
/// itself is prepended to the returned path). Deterministic.
geo::Path plan_tour(geo::Vec2 start, std::vector<geo::Vec2> nodes);

/// Total length of visiting `nodes` in the given order from `start`.
double tour_length(geo::Vec2 start, const std::vector<geo::Vec2>& nodes);

}  // namespace skyran::rem
