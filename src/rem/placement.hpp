// UAV placement from REMs (paper Sec 3.4): build the min-SNR map across all
// per-UE REMs and pick the cell maximizing it (max-min SNR), plus alternate
// objectives and the optimal-altitude descent search of Step 5.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "geo/field_view.hpp"
#include "geo/grid.hpp"
#include "geo/vec.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"
#include "terrain/terrain.hpp"

namespace skyran::rem {

/// Placement objectives supported by SkyRAN (Sec 7 "Placement objective").
enum class PlacementObjective {
  kMaxMin,       ///< maximize the minimum per-UE SNR (default)
  kMaxMean,      ///< maximize the mean per-UE SNR
  kMaxWeighted,  ///< maximize a weighted mean of per-UE SNRs
  kMaxCoverage,  ///< maximize the number of UEs above a service SNR threshold
};

/// Service threshold used by the kMaxCoverage objective (roughly CQI >= 4:
/// a usable LTE bearer).
inline constexpr double kCoverageSnrThresholdDb = 0.0;

/// Fraction of UEs whose SNR from `position_cell` clears `threshold_db`.
/// Computed cell-wise over the per-UE maps. The FieldView overloads are the
/// primary implementations (rem::RemBank serves its cached estimate slabs as
/// views without copying); the Grid2D overloads wrap owning rasters.
geo::Grid2D<double> coverage_map(std::span<const geo::FieldView<const double>> per_ue_maps,
                                 double threshold_db = kCoverageSnrThresholdDb);
geo::Grid2D<double> coverage_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                 double threshold_db = kCoverageSnrThresholdDb);

struct Placement {
  geo::Vec2 position;
  double objective_snr_db = 0.0;  ///< objective value at the chosen cell
};

/// Cell-wise minimum across per-UE SNR maps; all maps must share geometry.
geo::Grid2D<double> min_snr_map(std::span<const geo::FieldView<const double>> per_ue_maps);
geo::Grid2D<double> min_snr_map(std::span<const geo::Grid2D<double>> per_ue_maps);

/// Cell-wise (optionally weighted) mean across per-UE SNR maps.
geo::Grid2D<double> mean_snr_map(std::span<const geo::FieldView<const double>> per_ue_maps,
                                 std::span<const double> weights = {});
geo::Grid2D<double> mean_snr_map(std::span<const geo::Grid2D<double>> per_ue_maps,
                                 std::span<const double> weights = {});

/// Optimal position under the chosen objective.
Placement choose_placement(std::span<const geo::FieldView<const double>> per_ue_maps,
                           PlacementObjective objective = PlacementObjective::kMaxMin,
                           std::span<const double> weights = {});
Placement choose_placement(std::span<const geo::Grid2D<double>> per_ue_maps,
                           PlacementObjective objective = PlacementObjective::kMaxMin,
                           std::span<const double> weights = {});

/// Disqualify hover cells the UAV cannot physically occupy: the surface
/// (ground + clutter) must clear `altitude_m` by at least `clearance_m`.
/// Infeasible cells are set to a huge negative objective value.
void mask_infeasible_cells(geo::Grid2D<double>& objective, const terrain::Terrain& t,
                           double altitude_m, double clearance_m = 10.0);

/// choose_placement restricted to cells the UAV can physically hover in.
Placement choose_placement_feasible(std::span<const geo::FieldView<const double>> per_ue_maps,
                                    const terrain::Terrain& t, double altitude_m,
                                    PlacementObjective objective = PlacementObjective::kMaxMin,
                                    std::span<const double> weights = {},
                                    double clearance_m = 10.0);
Placement choose_placement_feasible(std::span<const geo::Grid2D<double>> per_ue_maps,
                                    const terrain::Terrain& t, double altitude_m,
                                    PlacementObjective objective = PlacementObjective::kMaxMin,
                                    std::span<const double> weights = {},
                                    double clearance_m = 10.0);

/// Optimal-altitude search (paper Step 5): starting at `start_altitude_m`
/// above `xy`, descend in `step_m` decrements while the mean path loss to
/// the UEs keeps decreasing; stop after `patience` consecutive increases
/// (or at `min_altitude_m`) and return the best altitude seen.
struct AltitudeSearchResult {
  double altitude_m = 0.0;
  double mean_path_loss_db = 0.0;
  int probes = 0;  ///< number of hover-and-measure stops
};

AltitudeSearchResult find_optimal_altitude(const rf::ChannelModel& channel, geo::Vec2 xy,
                                           std::span<const geo::Vec3> ue_positions,
                                           double start_altitude_m = 120.0,
                                           double min_altitude_m = 20.0, double step_m = 10.0,
                                           int patience = 2);

}  // namespace skyran::rem
