#include "rem/kriging.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "geo/contract.hpp"
#include "rem/rasterize.hpp"

namespace skyran::rem {

double Variogram::operator()(double distance_m) const {
  if (distance_m <= 0.0) return 0.0;
  return nugget + sill * (1.0 - std::exp(-distance_m / range_m));
}

Variogram fit_variogram(const std::vector<IdwSample>& samples, double max_lag_m, int bins) {
  expects(max_lag_m > 0.0, "fit_variogram: max lag must be positive");
  expects(bins >= 3, "fit_variogram: need at least 3 bins");
  Variogram v;  // defaults double as the fallback
  if (samples.size() < 20) return v;

  // Empirical semivariance per distance bin. Pair count is capped by
  // subsampling so fitting stays O(n) for big sample sets.
  std::vector<double> gamma(static_cast<std::size_t>(bins), 0.0);
  std::vector<int> count(static_cast<std::size_t>(bins), 0);
  const std::size_t stride = std::max<std::size_t>(1, samples.size() * samples.size() / 200000);
  std::size_t pair_idx = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      if (pair_idx++ % stride != 0) continue;
      const double h = samples[i].position.dist(samples[j].position);
      if (h >= max_lag_m) continue;
      const auto b = static_cast<std::size_t>(h / max_lag_m * bins);
      const double d = samples[i].value - samples[j].value;
      gamma[b] += 0.5 * d * d;
      ++count[b];
    }
  }

  std::vector<double> lag, semi;
  for (int b = 0; b < bins; ++b) {
    if (count[static_cast<std::size_t>(b)] < 5) continue;
    lag.push_back((b + 0.5) * max_lag_m / bins);
    semi.push_back(gamma[static_cast<std::size_t>(b)] / count[static_cast<std::size_t>(b)]);
  }
  if (lag.size() < 3) return v;

  // Grid-search the range; nugget/sill follow by least squares against
  // the basis {1, 1 - exp(-h/range)}.
  double best_sse = std::numeric_limits<double>::infinity();
  for (double range = max_lag_m / 10.0; range <= max_lag_m; range += max_lag_m / 10.0) {
    double s_bb = 0.0, s_b1 = 0.0, s_11 = static_cast<double>(lag.size());
    double s_yb = 0.0, s_y1 = 0.0;
    for (std::size_t i = 0; i < lag.size(); ++i) {
      const double b = 1.0 - std::exp(-lag[i] / range);
      s_bb += b * b;
      s_b1 += b;
      s_yb += semi[i] * b;
      s_y1 += semi[i];
    }
    const double det = s_bb * s_11 - s_b1 * s_b1;
    if (std::abs(det) < 1e-12) continue;
    const double sill = (s_yb * s_11 - s_y1 * s_b1) / det;
    const double nugget = (s_y1 - sill * s_b1) / s_11;
    if (sill <= 0.0) continue;
    double sse = 0.0;
    for (std::size_t i = 0; i < lag.size(); ++i) {
      const double fit = std::max(0.0, nugget) + sill * (1.0 - std::exp(-lag[i] / range));
      sse += (fit - semi[i]) * (fit - semi[i]);
    }
    if (sse < best_sse) {
      best_sse = sse;
      v.range_m = range;
      v.sill = sill;
      v.nugget = std::max(0.0, nugget);
    }
  }
  return v;
}

KrigingInterpolator::KrigingInterpolator(std::vector<IdwSample> samples, geo::Rect area,
                                         Variogram variogram, double bucket_m)
    : samples_(samples), index_(std::move(samples), area, bucket_m), variogram_(variogram) {}

std::optional<double> KrigingInterpolator::estimate(geo::Vec2 p, int k,
                                                    double max_radius_m) const {
  const std::vector<IdwInterpolator::Neighbor> nb = index_.nearest(p, k, max_radius_m);
  if (nb.empty()) return std::nullopt;
  if (nb.front().distance_m < 1e-6)
    return samples_[static_cast<std::size_t>(nb.front().index)].value;
  const int n = static_cast<int>(nb.size());
  if (n == 1) return samples_[static_cast<std::size_t>(nb.front().index)].value;

  // Ordinary kriging system: [Gamma 1; 1^T 0] [w; mu] = [gamma0; 1].
  const int m = n + 1;
  std::vector<double> a(static_cast<std::size_t>(m * m), 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < n; ++i) {
    const geo::Vec2 pi = samples_[static_cast<std::size_t>(nb[i].index)].position;
    for (int j = 0; j < n; ++j) {
      const geo::Vec2 pj = samples_[static_cast<std::size_t>(nb[j].index)].position;
      a[static_cast<std::size_t>(i * m + j)] = variogram_(pi.dist(pj));
    }
    a[static_cast<std::size_t>(i * m + n)] = 1.0;
    a[static_cast<std::size_t>(n * m + i)] = 1.0;
    rhs[static_cast<std::size_t>(i)] = variogram_(nb[i].distance_m);
  }
  rhs[static_cast<std::size_t>(n)] = 1.0;

  // Gaussian elimination with partial pivoting on the (n+1) system.
  for (int col = 0; col < m; ++col) {
    int pivot = col;
    for (int r = col + 1; r < m; ++r)
      if (std::abs(a[static_cast<std::size_t>(r * m + col)]) >
          std::abs(a[static_cast<std::size_t>(pivot * m + col)]))
        pivot = r;
    if (std::abs(a[static_cast<std::size_t>(pivot * m + col)]) < 1e-10) {
      // Degenerate geometry (e.g. collinear duplicates): fall back to the
      // nearest sample.
      return samples_[static_cast<std::size_t>(nb.front().index)].value;
    }
    if (pivot != col) {
      for (int c = 0; c < m; ++c)
        std::swap(a[static_cast<std::size_t>(col * m + c)],
                  a[static_cast<std::size_t>(pivot * m + c)]);
      std::swap(rhs[static_cast<std::size_t>(col)], rhs[static_cast<std::size_t>(pivot)]);
    }
    for (int r = col + 1; r < m; ++r) {
      const double f = a[static_cast<std::size_t>(r * m + col)] /
                       a[static_cast<std::size_t>(col * m + col)];
      for (int c = col; c < m; ++c)
        a[static_cast<std::size_t>(r * m + c)] -= f * a[static_cast<std::size_t>(col * m + c)];
      rhs[static_cast<std::size_t>(r)] -= f * rhs[static_cast<std::size_t>(col)];
    }
  }
  std::vector<double> w(static_cast<std::size_t>(m), 0.0);
  for (int r = m - 1; r >= 0; --r) {
    double s = rhs[static_cast<std::size_t>(r)];
    for (int c = r + 1; c < m; ++c)
      s -= a[static_cast<std::size_t>(r * m + c)] * w[static_cast<std::size_t>(c)];
    w[static_cast<std::size_t>(r)] = s / a[static_cast<std::size_t>(r * m + r)];
  }

  double est = 0.0;
  for (int i = 0; i < n; ++i)
    est += w[static_cast<std::size_t>(i)] * samples_[static_cast<std::size_t>(nb[i].index)].value;
  return est;
}

geo::Grid2D<double> KrigingInterpolator::estimate_grid(double cell_size, int k,
                                                       double max_radius_m,
                                                       double fallback) const {
  return rasterize_estimates(index_.area(), cell_size, fallback, [&](geo::Vec2 center) {
    return estimate(center, k, max_radius_m);
  });
}

}  // namespace skyran::rem
