// Radio Environment Maps (paper Sec 3.3): a per-UE 2-D grid over the
// operating area at the target altitude, each cell holding the SNR from that
// UAV position to the UE. Cells along flown trajectories hold measured
// averages; the rest are estimated by IDW interpolation over measurements,
// falling back to a model-seeded background (FSPL for brand-new UEs, or a
// reused historical REM, Sec 3.5).
#pragma once

#include <optional>

#include "geo/grid.hpp"
#include "geo/rect.hpp"
#include "geo/vec.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"

namespace skyran::rem {

/// IDW interpolation parameters (paper uses inverse-square weighting). By
/// default interpolation uses the k nearest measurements regardless of
/// distance, so any measurement flight informs the whole map; a finite
/// `max_radius_m` makes far cells fall back to the model background instead.
struct IdwParams {
  int k_neighbors = 8;         ///< measured cells consulted per estimate
  double power = 2.0;          ///< inverse-distance exponent
  double max_radius_m = 1e9;   ///< beyond this, fall back to the background
  /// When the background came from a PRIOR REM (temporal aggregation,
  /// Sec 3.5), interpolation and background are blended with weight
  /// exp(-d / background_blend_m) on the interpolation, d being the distance
  /// to the nearest fresh measurement: fresh data wins nearby, the prior
  /// map wins far from this epoch's tour. Model (FSPL) backgrounds are NOT
  /// blended - they only fill in when nothing has been measured at all.
  double background_blend_m = 60.0;
};

class Rem {
 public:
  /// REM for the UE at `ue_position`, covering `area` at `altitude_m`.
  Rem(geo::Rect area, double cell_size, double altitude_m, geo::Vec3 ue_position);

  /// Record one SNR report taken at UAV ground-position `at` (the UAV is at
  /// the REM altitude). Reports within a cell are averaged (Sec 3.3.3).
  void add_measurement(geo::Vec2 at, double snr_db);

  /// Seed every cell's background with `model` SNR predictions through
  /// `budget` (used for brand-new UEs, Sec 3.5). Does not mark cells measured.
  void seed_from_model(const rf::ChannelModel& model, const rf::LinkBudget& budget);

  /// Seed the background from another REM's estimate (historical reuse).
  /// Grids must share geometry.
  void seed_from(const Rem& prior, const IdwParams& params = {});

  /// Number of cells with at least one measurement.
  std::size_t measured_cells() const { return measured_count_; }
  double measured_fraction() const;
  bool is_measured(geo::CellIndex c) const { return counts_.at(c) > 0; }

  /// Measured mean SNR of a cell; nullopt when unmeasured.
  std::optional<double> measured_snr(geo::CellIndex c) const;

  /// Number of raw reports accumulated in a cell (0 = unmeasured).
  int measurement_count(geo::CellIndex c) const { return counts_.at(c); }

  /// Restore a cell's accumulator verbatim (deserialization); replaces any
  /// existing content of the cell.
  void restore_measurement(geo::CellIndex c, double snr_sum_db, int count);

  /// Where the background values came from.
  enum class BackgroundSource { kNone, kModel, kPrior };

  /// Restore the background raster and its provenance verbatim (used by
  /// rem::RemBank to materialize a Rem from its slabs). Geometry must match.
  void restore_background(const geo::Grid2D<double>& background, BackgroundSource source);

  /// Full-map estimate: measured mean where available, IDW over measured
  /// cells elsewhere, background where no measurement is in range.
  geo::Grid2D<double> estimate(const IdwParams& params = {}) const;

  const geo::Rect& area() const { return sums_.area(); }
  double cell_size() const { return sums_.cell_size(); }
  double altitude_m() const { return altitude_m_; }
  const geo::Vec3& ue_position() const { return ue_position_; }
  void set_ue_position(geo::Vec3 p) { ue_position_ = p; }

  const geo::Grid2D<double>& background() const { return background_; }
  bool has_background() const { return background_source_ != BackgroundSource::kNone; }
  BackgroundSource background_source() const { return background_source_; }

 private:
  geo::Grid2D<double> sums_;
  geo::Grid2D<int> counts_;
  geo::Grid2D<double> background_;
  BackgroundSource background_source_ = BackgroundSource::kNone;
  double altitude_m_;
  geo::Vec3 ue_position_;
  std::size_t measured_count_ = 0;
};

/// Median absolute difference between two SNR maps (the paper's "median REM
/// accuracy (dB)" metric). Grids must share geometry.
double median_abs_error_db(const geo::Grid2D<double>& estimate,
                           const geo::Grid2D<double>& ground_truth);

}  // namespace skyran::rem
