// REM store with positional reuse (paper Sec 3.5): REMs are keyed by the UE
// *position* they were measured for, not the UE identity. When a UE appears
// within radius R of a stored position, that REM seeds its estimate; only
// genuinely new positions fall back to the FSPL model.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "geo/point_index.hpp"
#include "rem/rem.hpp"

namespace skyran::rem {

class RemBank;

class RemStore {
 public:
  /// `reuse_radius_m`: the paper's R (10 m, chosen from Fig. 9).
  explicit RemStore(double reuse_radius_m = 10.0);

  /// Store (or merge) a REM measured for `rem.ue_position()`. If an entry
  /// within R already exists, the new REM replaces it (it is fresher).
  void put(Rem rem);

  /// Closest stored REM within R of `position`, if any.
  const Rem* find_near(geo::Vec2 position) const;

  /// Build the working REM for a UE at `position`: a fresh REM whose
  /// background is seeded from the nearest stored REM within R when one
  /// exists, else from `fallback_model`. The caller adds measurements to it.
  Rem make_for_ue(geo::Rect area, double cell_size, double altitude_m, geo::Vec3 ue_position,
                  const rf::ChannelModel& fallback_model, const rf::LinkBudget& budget,
                  const IdwParams& idw = {}) const;

  /// Bank-resident equivalent of make_for_ue: seed `bank`'s UE `ue` from the
  /// nearest stored REM within R when one exists, else from `fallback_model`.
  void seed_bank_ue(RemBank& bank, std::size_t ue, const rf::ChannelModel& fallback_model,
                    const rf::LinkBudget& budget, const IdwParams& idw = {}) const;

  /// Bank-resident equivalent of put(): persist `bank`'s UE `ue`.
  void put_from_bank(const RemBank& bank, std::size_t ue);

  std::size_t size() const { return entries_.size(); }
  double reuse_radius_m() const { return reuse_radius_m_; }
  const std::vector<Rem>& entries() const { return entries_; }

  /// Persist the store (measured means only; backgrounds are re-derivable)
  /// so the next mission over the same area starts warm. Versioned binary.
  void save(std::ostream& os) const;
  static RemStore load(std::istream& is);

 private:
  double reuse_radius_m_;
  std::vector<Rem> entries_;
  /// Entries bucketed by UE position; ids are indices into entries_. Kept in
  /// lockstep by put()/load() so lookups are O(points-in-3x3-buckets) instead
  /// of a scan over every stored REM.
  geo::PointIndex index_;
};

}  // namespace skyran::rem
