// Weighted spatial k-means (paper Step 6.3): clusters high-gradient cells so
// that one representative "cluster head" per spatial group can anchor the
// measurement tour. Lloyd's algorithm with k-means++ seeding; deterministic
// in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec.hpp"

namespace skyran::rem {

struct WeightedPoint {
  geo::Vec2 position;
  double weight = 1.0;
};

struct KMeansResult {
  std::vector<geo::Vec2> centroids;     ///< k cluster heads
  std::vector<int> assignment;          ///< per-point cluster id
  double inertia = 0.0;                 ///< weighted sum of squared distances
  int iterations = 0;
};

/// Cluster `points` into `k` groups. If k >= points.size(), each point
/// becomes its own centroid. Throws for k < 1 or empty input.
KMeansResult kmeans(const std::vector<WeightedPoint>& points, int k, std::uint64_t seed,
                    int max_iterations = 50);

}  // namespace skyran::rem
