// RemBank: the shared-geometry structure-of-arrays REM engine (paper
// Secs 3.3/3.5). All per-UE REMs of one epoch share the operating area, cell
// size and altitude, so the bank stores them as contiguous N_ue x nx x ny
// slabs (sums, counts, background, cached estimate) instead of N independent
// rem::Rem objects. On top of the layout win, the bank tracks which cells a
// measurement flight invalidated and re-interpolates ONLY those in
// estimate_all() — multi-round epochs stop paying full-raster IDW per round
// while staying bit-identical to the per-UE Rem::estimate path (enforced by
// tests/test_rem_bank.cpp, serial and parallel).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/field_view.hpp"
#include "geo/grid.hpp"
#include "geo/rect.hpp"
#include "geo/vec.hpp"
#include "rem/rem.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"

namespace skyran::rem {

class RemBank {
 public:
  /// Bank over `area` at `altitude_m` with square `cell_size` cells; UEs are
  /// appended with add_ue().
  RemBank(geo::Rect area, double cell_size, double altitude_m);

  /// Append a UE (returns its index). Its maps start empty with no
  /// background; seed via seed_from_model / seed_from.
  std::size_t add_ue(geo::Vec3 ue_position);

  std::size_t ue_count() const { return ue_pos_.size(); }
  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t cells_per_ue() const { return cells_; }
  const geo::Rect& area() const { return area_; }
  double cell_size() const { return cell_size_; }
  double altitude_m() const { return altitude_m_; }
  const geo::Vec3& ue_position(std::size_t ue) const;

  /// Record one SNR report for `ue` taken at UAV ground-position `at`;
  /// same averaging semantics as Rem::add_measurement, plus dirty tracking.
  void add_measurement(std::size_t ue, geo::Vec2 at, double snr_db);

  /// Seed `ue`'s background from the channel model (brand-new UEs).
  void seed_from_model(std::size_t ue, const rf::ChannelModel& model,
                       const rf::LinkBudget& budget);

  /// Seed `ue`'s background from a stored REM's estimate (positional reuse,
  /// Sec 3.5); same provenance rule as Rem::seed_from.
  void seed_from(std::size_t ue, const Rem& prior, const IdwParams& params = {});

  std::size_t measured_cells(std::size_t ue) const;
  Rem::BackgroundSource background_source(std::size_t ue) const;

  /// Refresh the cached estimate slab: re-interpolates only cells
  /// invalidated since the last call (deposited cells, plus every cell whose
  /// stored influence radius reaches a fresh deposit), parallelized over
  /// (ue x row) chunks on the global thread pool. Results are bit-for-bit
  /// identical to running Rem::estimate per UE on the same accumulated
  /// state, for any worker count. Changing `params` between calls forces a
  /// full recompute (the cache is parameter-specific).
  void estimate_all(const IdwParams& params = {});

  /// True when the cached estimates reflect every deposit/seed so far (i.e.
  /// estimate_all ran and nothing changed since).
  bool estimates_current() const { return estimated_once_ && !dirty_any_; }

  /// Non-owning view of `ue`'s cached estimate; valid until the bank is
  /// mutated or destroyed. Requires estimates_current().
  geo::FieldView<const double> estimate(std::size_t ue) const;
  /// Views for every UE, in UE order (placement/planner input).
  std::vector<geo::FieldView<const double>> estimate_views() const;
  /// Owning copy of `ue`'s cached estimate.
  geo::Grid2D<double> estimate_grid(std::size_t ue) const;

  /// Non-owning view of `ue`'s background raster.
  geo::FieldView<const double> background(std::size_t ue) const;

  /// Materialize `ue` as a standalone rem::Rem, bit-identical to the object
  /// the legacy per-UE flow would have built (store persistence / handoff).
  Rem extract_rem(std::size_t ue) const;

  /// Tallies from the last estimate_all() call.
  struct EstimateStats {
    std::size_t cells_total = 0;
    std::size_t cells_reestimated = 0;  ///< dirty: recomputed this call
    std::size_t cells_cached = 0;       ///< clean: served from the cache slab
    double dirty_fraction() const {
      return cells_total == 0
                 ? 0.0
                 : static_cast<double>(cells_reestimated) / static_cast<double>(cells_total);
    }
  };
  const EstimateStats& last_estimate_stats() const { return stats_; }

 private:
  std::size_t flat(std::size_t ue, geo::CellIndex c) const {
    return ue * cells_ + static_cast<std::size_t>(c.iy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(c.ix);
  }
  geo::CellIndex cell_of(geo::Vec2 p) const;
  geo::Vec2 center_of(geo::CellIndex c) const;

  geo::Rect area_;
  double cell_size_;
  double altitude_m_;
  int nx_ = 0;
  int ny_ = 0;
  std::size_t cells_ = 0;

  // Structure-of-arrays slabs, each ue_count() * cells_per_ue() long,
  // UE-major then row-major (same flat order as Grid2D).
  std::vector<double> sums_;
  std::vector<int> counts_;
  std::vector<double> background_;
  std::vector<double> estimate_;
  /// Per-cell invalidation radius from the last interpolation of that cell:
  /// a fresh sample farther than this cannot change the cell's estimate
  /// (measured cells use 0 — only a direct deposit changes their mean).
  std::vector<double> influence_;
  /// Cell deposited into since the last estimate_all (dirty by definition).
  std::vector<std::uint8_t> pending_;

  // Per-UE state.
  std::vector<geo::Vec3> ue_pos_;
  std::vector<Rem::BackgroundSource> source_;
  std::vector<std::size_t> measured_count_;
  /// Everything stale for this UE (new UE, reseeded background, or changed
  /// interpolation parameters): next estimate_all recomputes all its cells.
  std::vector<std::uint8_t> full_pending_;
  /// Flat cell indices (within the UE's slab) deposited into since the last
  /// estimate_all; their centers are the fresh sample positions.
  std::vector<std::vector<std::size_t>> fresh_cells_;

  bool estimated_once_ = false;
  bool dirty_any_ = false;
  IdwParams last_params_{};
  EstimateStats stats_{};
};

}  // namespace skyran::rem
