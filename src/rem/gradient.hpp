// SNR gradient maps (paper Step 6.2): per cell, the greatest absolute SNR
// difference to its directly adjacent neighbors. High-gradient cells mark
// terrain-driven SNR fluctuation worth measuring.
#pragma once

#include <vector>

#include "geo/grid.hpp"

namespace skyran::rem {

/// Gradient map over the 8-neighborhood of each cell.
geo::Grid2D<double> gradient_map(const geo::Grid2D<double>& snr);

/// Cells whose gradient strictly exceeds the map's median gradient
/// (paper Step 6.3's high/low partition).
std::vector<geo::CellIndex> high_gradient_cells(const geo::Grid2D<double>& gradient);

/// Median of all gradient values.
double gradient_median(const geo::Grid2D<double>& gradient);

}  // namespace skyran::rem
