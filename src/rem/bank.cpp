#include "rem/bank.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "obs/obs.hpp"
#include "rem/idw.hpp"

namespace skyran::rem {

RemBank::RemBank(geo::Rect area, double cell_size, double altitude_m)
    : area_(area), cell_size_(cell_size), altitude_m_(altitude_m) {
  expects(cell_size > 0.0, "RemBank: cell size must be positive");
  expects(area.width() > 0.0 && area.height() > 0.0, "RemBank: area must be non-empty");
  expects(altitude_m > 0.0, "RemBank: altitude must be positive");
  // Same layout formula as Grid2D so views and extracted Rems line up
  // cell-for-cell with standalone grids over the same area.
  nx_ = std::max(static_cast<int>(std::ceil(area.width() / cell_size - 1e-9)), 1);
  ny_ = std::max(static_cast<int>(std::ceil(area.height() / cell_size - 1e-9)), 1);
  cells_ = static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
}

std::size_t RemBank::add_ue(geo::Vec3 ue_position) {
  const std::size_t ue = ue_pos_.size();
  ue_pos_.push_back(ue_position);
  source_.push_back(Rem::BackgroundSource::kNone);
  measured_count_.push_back(0);
  full_pending_.push_back(1);
  fresh_cells_.emplace_back();
  sums_.resize(sums_.size() + cells_, 0.0);
  counts_.resize(counts_.size() + cells_, 0);
  background_.resize(background_.size() + cells_, 0.0);
  estimate_.resize(estimate_.size() + cells_, 0.0);
  influence_.resize(influence_.size() + cells_, 0.0);
  pending_.resize(pending_.size() + cells_, 0);
  dirty_any_ = true;
  return ue;
}

const geo::Vec3& RemBank::ue_position(std::size_t ue) const {
  expects(ue < ue_count(), "RemBank::ue_position: UE out of range");
  return ue_pos_[ue];
}

geo::CellIndex RemBank::cell_of(geo::Vec2 p) const {
  expects(area_.contains(p), "RemBank::cell_of: point outside area");
  int ix = static_cast<int>((p.x - area_.min.x) / cell_size_);
  int iy = static_cast<int>((p.y - area_.min.y) / cell_size_);
  ix = std::min(ix, nx_ - 1);
  iy = std::min(iy, ny_ - 1);
  return {ix, iy};
}

geo::Vec2 RemBank::center_of(geo::CellIndex c) const {
  return {area_.min.x + (c.ix + 0.5) * cell_size_,
          area_.min.y + (c.iy + 0.5) * cell_size_};
}

void RemBank::add_measurement(std::size_t ue, geo::Vec2 at, double snr_db) {
  expects(ue < ue_count(), "RemBank::add_measurement: UE out of range");
  expects(area_.contains(at), "RemBank::add_measurement: position outside area");
  const std::size_t f = flat(ue, cell_of(at));
  if (counts_[f] == 0) ++measured_count_[ue];
  sums_[f] += snr_db;
  counts_[f] += 1;
  // Any deposit changes the cell's mean, so downstream interpolations that
  // consulted this sample are stale too; the pending flag dedups the list.
  if (!pending_[f]) {
    pending_[f] = 1;
    fresh_cells_[ue].push_back(f - ue * cells_);
  }
  dirty_any_ = true;
}

void RemBank::seed_from_model(std::size_t ue, const rf::ChannelModel& model,
                              const rf::LinkBudget& budget) {
  expects(ue < ue_count(), "RemBank::seed_from_model: UE out of range");
  double* bg = background_.data() + ue * cells_;
  // Same serial row-major sweep as Rem::seed_from_model (bit-identical):
  // each row of candidate UAV positions goes through the channel's batched
  // row evaluation, then the link budget per cell.
  std::vector<geo::Vec3> row(static_cast<std::size_t>(nx_));
  for (int iy = 0; iy < ny_; ++iy) {
    for (int ix = 0; ix < nx_; ++ix)
      row[static_cast<std::size_t>(ix)] = geo::Vec3{center_of({ix, iy}), altitude_m_};
    double* out = bg + static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx_);
    model.path_loss_db_row(row.data(), row.size(), ue_pos_[ue], out);
    for (int ix = 0; ix < nx_; ++ix)
      out[static_cast<std::size_t>(ix)] = budget.snr_db(out[static_cast<std::size_t>(ix)]);
  }
  source_[ue] = Rem::BackgroundSource::kModel;
  full_pending_[ue] = 1;
  dirty_any_ = true;
}

void RemBank::seed_from(std::size_t ue, const Rem& prior, const IdwParams& params) {
  expects(ue < ue_count(), "RemBank::seed_from: UE out of range");
  const geo::Grid2D<double> est = prior.estimate(params);
  expects(est.nx() == nx_ && est.ny() == ny_,
          "RemBank::seed_from: geometry mismatch with prior REM");
  std::copy(est.raw().begin(), est.raw().end(), background_.begin() + ue * cells_);
  // Same provenance rule as Rem::seed_from: a prior seeded purely from a
  // model carries no measurement information.
  source_[ue] = prior.measured_cells() > 0 ||
                        prior.background_source() == Rem::BackgroundSource::kPrior
                    ? Rem::BackgroundSource::kPrior
                    : prior.background_source();
  full_pending_[ue] = 1;
  dirty_any_ = true;
}

std::size_t RemBank::measured_cells(std::size_t ue) const {
  expects(ue < ue_count(), "RemBank::measured_cells: UE out of range");
  return measured_count_[ue];
}

Rem::BackgroundSource RemBank::background_source(std::size_t ue) const {
  expects(ue < ue_count(), "RemBank::background_source: UE out of range");
  return source_[ue];
}

void RemBank::estimate_all(const IdwParams& params) {
  SKYRAN_TRACE_SPAN("rem.bank.estimate_all");
  const std::size_t n_ue = ue_count();
  // The cached slab is parameter-specific: changing IDW parameters changes
  // every interpolated cell, so everything goes stale.
  const bool params_changed =
      !estimated_once_ || params.k_neighbors != last_params_.k_neighbors ||
      params.power != last_params_.power ||
      params.max_radius_m != last_params_.max_radius_m ||
      params.background_blend_m != last_params_.background_blend_m;

  // Per-UE interpolation context, built serially. Samples are gathered in
  // flat (row-major ascending) order — the same order Rem::estimate's
  // for_each produces — so neighbor tie-breaking is bit-identical.
  std::vector<std::optional<IdwInterpolator>> idw(n_ue);
  std::vector<std::optional<IdwInterpolator>> fresh(n_ue);
  std::vector<geo::Vec2> fresh_lo(n_ue), fresh_hi(n_ue);
  std::vector<std::uint8_t> ue_full(n_ue, 0);
  std::vector<std::uint8_t> ue_blend(n_ue, 0);
  // Coarse Chebyshev distance (in tiles of kTileCells × kTileCells cells)
  // from every tile to the nearest tile holding a fresh deposit. Two cell
  // centers whose tiles are d >= 1 apart differ by at least (d-1)*kTileCells+1
  // cell indices on one axis, so their distance is at least that many cell
  // sizes: one integer lookup proves most clean cells clean without the
  // exact ring search. Conservative only — never marks an affected cell clean.
  constexpr int kTileCells = 4;
  const int ntx = (nx_ + kTileCells - 1) / kTileCells;
  const int nty = (ny_ + kTileCells - 1) / kTileCells;
  std::vector<std::vector<int>> tile_dist(n_ue);
  for (std::size_t ue = 0; ue < n_ue; ++ue) {
    const double* sums = sums_.data() + ue * cells_;
    const int* counts = counts_.data() + ue * cells_;
    std::vector<IdwSample> samples;
    samples.reserve(measured_count_[ue]);
    for (std::size_t i = 0; i < cells_; ++i) {
      if (counts[i] == 0) continue;
      const geo::CellIndex c{static_cast<int>(i % static_cast<std::size_t>(nx_)),
                             static_cast<int>(i / static_cast<std::size_t>(nx_))};
      samples.push_back({center_of(c), sums[i] / counts[i]});
    }
    idw[ue].emplace(std::move(samples), area_);
    ue_full[ue] = params_changed || full_pending_[ue] ? 1 : 0;
    ue_blend[ue] = source_[ue] == Rem::BackgroundSource::kPrior &&
                           params.background_blend_m > 0.0
                       ? 1
                       : 0;
    if (ue_full[ue] || fresh_cells_[ue].empty()) continue;
    // Index of this round's deposits, for the influence-radius dirty test,
    // plus their bounding box as a cheap first-stage reject.
    std::vector<IdwSample> fresh_samples;
    fresh_samples.reserve(fresh_cells_[ue].size());
    geo::Vec2 lo{std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
    geo::Vec2 hi{-std::numeric_limits<double>::infinity(),
                 -std::numeric_limits<double>::infinity()};
    for (std::size_t i : fresh_cells_[ue]) {
      const geo::CellIndex c{static_cast<int>(i % static_cast<std::size_t>(nx_)),
                             static_cast<int>(i / static_cast<std::size_t>(nx_))};
      const geo::Vec2 p = center_of(c);
      lo = {std::min(lo.x, p.x), std::min(lo.y, p.y)};
      hi = {std::max(hi.x, p.x), std::max(hi.y, p.y)};
      fresh_samples.push_back({p, 0.0});
    }
    fresh[ue].emplace(std::move(fresh_samples), area_);
    fresh_lo[ue] = lo;
    fresh_hi[ue] = hi;
    // Multi-source 8-neighbor BFS: exact Chebyshev tile distance.
    std::vector<int>& dist = tile_dist[ue];
    dist.assign(static_cast<std::size_t>(ntx) * static_cast<std::size_t>(nty), -1);
    std::vector<int> queue;
    queue.reserve(dist.size());
    for (std::size_t i : fresh_cells_[ue]) {
      const int tx = static_cast<int>(i % static_cast<std::size_t>(nx_)) / kTileCells;
      const int ty = static_cast<int>(i / static_cast<std::size_t>(nx_)) / kTileCells;
      const int t = ty * ntx + tx;
      if (dist[static_cast<std::size_t>(t)] < 0) {
        dist[static_cast<std::size_t>(t)] = 0;
        queue.push_back(t);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int t = queue[head];
      const int tx = t % ntx;
      const int ty = t / ntx;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int qx = tx + dx;
          const int qy = ty + dy;
          if (qx < 0 || qx >= ntx || qy < 0 || qy >= nty) continue;
          const std::size_t q = static_cast<std::size_t>(qy * ntx + qx);
          if (dist[q] < 0) {
            dist[q] = dist[static_cast<std::size_t>(t)] + 1;
            queue.push_back(qy * ntx + qx);
          }
        }
      }
    }
  }

  // One flat sweep over (ue, tile) pairs on the pool — tiles are the same
  // kTileCells × kTileCells blocks the dirty-distance BFS runs on, so the
  // tile-distance lower bound is one lookup per work item instead of one per
  // cell. Each cell is still decided and recomputed independently, so chunk
  // boundaries cannot change results.
  const std::size_t n_tiles = static_cast<std::size_t>(ntx) * static_cast<std::size_t>(nty);
  std::atomic<std::size_t> reestimated_total{0};
  core::parallel_for(n_ue * n_tiles, [&](std::size_t item) {
    const std::size_t ue = item / n_tiles;
    const std::size_t t = item % n_tiles;
    const int tx = static_cast<int>(t % static_cast<std::size_t>(ntx));
    const int ty = static_cast<int>(t / static_cast<std::size_t>(ntx));
    const int x0 = tx * kTileCells;
    const int x1 = std::min(nx_, x0 + kTileCells);
    const int y0 = ty * kTileCells;
    const int y1 = std::min(ny_, y0 + kTileCells);
    const bool full = ue_full[ue] != 0;
    const bool blend = ue_blend[ue] != 0;
    const bool has_bg = source_[ue] != Rem::BackgroundSource::kNone;
    const bool has_fresh = fresh[ue].has_value();
    // Hoisted per tile: the Chebyshev lower bound on the distance from any
    // cell of this tile to the nearest fresh deposit.
    const int d = has_fresh ? tile_dist[ue][t] : 0;
    const double tile_lb = d <= 0 ? 0.0 : ((d - 1) * kTileCells + 1) * cell_size_;
    std::size_t tile_reestimated = 0;
    for (int iy = y0; iy < y1; ++iy) {
      const std::size_t base = ue * cells_ +
                               static_cast<std::size_t>(iy) * static_cast<std::size_t>(nx_);
      for (int ix = x0; ix < x1; ++ix) {
        const std::size_t f = base + static_cast<std::size_t>(ix);
        bool dirty = full || pending_[f] != 0;
        if (!dirty && has_fresh && counts_[f] == 0 && influence_[f] > 0.0) {
          const double r = influence_[f];
          if (r >= tile_lb) {
            const geo::Vec2 p = center_of({ix, iy});
            // Bounding-box reject before the exact ring search.
            const double dx = std::max({fresh_lo[ue].x - p.x, 0.0, p.x - fresh_hi[ue].x});
            const double dy = std::max({fresh_lo[ue].y - p.y, 0.0, p.y - fresh_hi[ue].y});
            if (dx * dx + dy * dy <= r * r) dirty = fresh[ue]->any_within(p, r);
          }
        }
        if (!dirty) continue;
        ++tile_reestimated;
        if (counts_[f] > 0) {
          estimate_[f] = sums_[f] / counts_[f];
          influence_[f] = 0.0;  // only a direct deposit can change a mean
          continue;
        }
        const geo::Vec2 p = center_of({ix, iy});
        const IdwInterpolator::InfluenceEstimate inf = idw[ue]->estimate_with_influence(
            p, params.k_neighbors, params.power, params.max_radius_m);
        influence_[f] = inf.influence_m;
        if (inf.estimate && blend) {
          const double w = std::exp(-inf.estimate->nearest_m / params.background_blend_m);
          estimate_[f] = w * inf.estimate->value + (1.0 - w) * background_[f];
        } else if (inf.estimate) {
          estimate_[f] = inf.estimate->value;
        } else if (has_bg) {
          estimate_[f] = background_[f];
        } else {
          estimate_[f] = 0.0;
        }
      }
    }
    reestimated_total.fetch_add(tile_reestimated, std::memory_order_relaxed);
  });

  for (std::size_t ue = 0; ue < n_ue; ++ue) {
    for (std::size_t i : fresh_cells_[ue]) pending_[ue * cells_ + i] = 0;
    fresh_cells_[ue].clear();
    full_pending_[ue] = 0;
    // Keep the legacy per-REM fill metric alive: one estimate_all refreshes
    // every UE's map, like one Rem::estimate per UE used to.
    SKYRAN_HISTOGRAM_OBSERVE(
        "rem.fill.measured_fraction",
        static_cast<double>(measured_count_[ue]) / static_cast<double>(cells_));
  }
  estimated_once_ = true;
  dirty_any_ = false;
  last_params_ = params;

  stats_.cells_total = n_ue * cells_;
  stats_.cells_reestimated = reestimated_total.load(std::memory_order_relaxed);
  stats_.cells_cached = stats_.cells_total - stats_.cells_reestimated;
  SKYRAN_COUNTER_ADD("rem.bank.cells_reestimated", stats_.cells_reestimated);
  SKYRAN_COUNTER_ADD("rem.bank.cells_cached", stats_.cells_cached);
  SKYRAN_GAUGE_SET("rem.bank.dirty_fraction", stats_.dirty_fraction());
}

geo::FieldView<const double> RemBank::estimate(std::size_t ue) const {
  expects(ue < ue_count(), "RemBank::estimate: UE out of range");
  expects(estimates_current(), "RemBank::estimate: call estimate_all() first");
  return {estimate_.data() + ue * cells_, area_, cell_size_, nx_, ny_};
}

std::vector<geo::FieldView<const double>> RemBank::estimate_views() const {
  std::vector<geo::FieldView<const double>> out;
  out.reserve(ue_count());
  for (std::size_t ue = 0; ue < ue_count(); ++ue) out.push_back(estimate(ue));
  return out;
}

geo::Grid2D<double> RemBank::estimate_grid(std::size_t ue) const {
  return estimate(ue).to_grid();
}

geo::FieldView<const double> RemBank::background(std::size_t ue) const {
  expects(ue < ue_count(), "RemBank::background: UE out of range");
  return {background_.data() + ue * cells_, area_, cell_size_, nx_, ny_};
}

Rem RemBank::extract_rem(std::size_t ue) const {
  expects(ue < ue_count(), "RemBank::extract_rem: UE out of range");
  Rem out(area_, cell_size_, altitude_m_, ue_pos_[ue]);
  const double* sums = sums_.data() + ue * cells_;
  const int* counts = counts_.data() + ue * cells_;
  for (std::size_t i = 0; i < cells_; ++i) {
    if (counts[i] == 0) continue;
    const geo::CellIndex c{static_cast<int>(i % static_cast<std::size_t>(nx_)),
                           static_cast<int>(i / static_cast<std::size_t>(nx_))};
    out.restore_measurement(c, sums[i], counts[i]);
  }
  if (source_[ue] != Rem::BackgroundSource::kNone) {
    geo::Grid2D<double> bg(area_, cell_size_, 0.0);
    std::copy(background_.begin() + ue * cells_,
              background_.begin() + (ue + 1) * cells_, bg.raw().begin());
    out.restore_background(bg, source_[ue]);
  }
  return out;
}

}  // namespace skyran::rem
