// Measurement-trajectory planner (paper Step 6, Fig. 11): aggregate the
// current per-UE REM estimates, compute the gradient map, keep cells above
// the median gradient, cluster them with k-means for each K in
// [k_min, k_max], connect each K's cluster heads with a TSP tour, and pick
// the tour with the best information-gain-to-cost ratio.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/path.hpp"
#include "rem/info_gain.hpp"
#include "rem/rem.hpp"

namespace skyran::rem {

struct PlannerConfig {
  int k_min = 4;
  int k_max = 12;
  InfoGainParams info{};
  IdwParams idw{};
  /// Optional hard cap on the tour length (measurement budget); 0 = none.
  double budget_m = 0.0;
  std::uint64_t seed = 7;
};

struct PlannedTrajectory {
  geo::Path path;
  int k = 0;                   ///< cluster count of the winning tour
  double info_gain = 0.0;      ///< average info gain (meters)
  double cost_m = 0.0;         ///< tour length
  double info_to_cost = 0.0;
  std::size_t high_gradient_cells = 0;
};

/// Plan the next measurement tour.
/// `rems` holds the current (possibly sparse) per-UE REMs; `history` the
/// trajectories already flown per UE (same order); `start` is the UAV's
/// current ground position.
PlannedTrajectory plan_measurement_trajectory(std::span<const Rem> rems,
                                              const std::vector<TrajectoryHistory>& history,
                                              geo::Vec2 start, const PlannerConfig& config);

class RemBank;

/// Same, reading the per-UE estimates from a RemBank's cached slabs instead
/// of re-running full-map estimation. Requires bank.estimates_current()
/// (call RemBank::estimate_all with config.idw first); produces bit-identical
/// tours to the per-REM overload on equivalent state.
PlannedTrajectory plan_measurement_trajectory(const RemBank& bank,
                                              const std::vector<TrajectoryHistory>& history,
                                              geo::Vec2 start, const PlannerConfig& config);

}  // namespace skyran::rem
