// Layered (3-D) REMs. The paper deliberately avoids full 3-D REMs - probing
// O(N^3) airspace is prohibitive and maps at nearby altitudes are highly
// correlated (Sec 3.3.1) - and fixes one operating altitude instead. This
// module implements the road not taken: per-UE REMs stacked at several
// altitudes with interpolation in between, and placement that searches over
// (x, y, z). bench/ablation_3d_placement quantifies what the single-altitude
// simplification costs.
#pragma once

#include <span>
#include <vector>

#include "rem/placement.hpp"
#include "rem/rem.hpp"

namespace skyran::rem {

/// A stack of per-altitude REMs for one UE.
class LayeredRem {
 public:
  /// `altitudes_m` must be strictly increasing.
  LayeredRem(geo::Rect area, double cell_size, std::vector<double> altitudes_m,
             geo::Vec3 ue_position);

  std::size_t layer_count() const { return layers_.size(); }
  const std::vector<double>& altitudes_m() const { return altitudes_; }
  Rem& layer(std::size_t i);
  const Rem& layer(std::size_t i) const;

  /// Layer index whose altitude is nearest to `altitude_m`.
  std::size_t nearest_layer(double altitude_m) const;

  /// Full-map estimate at an arbitrary altitude: linear interpolation
  /// between the two bracketing layers' estimates (clamped at the ends).
  geo::Grid2D<double> estimate_at(double altitude_m, const IdwParams& params = {}) const;

  const geo::Vec3& ue_position() const { return layers_.front().ue_position(); }

 private:
  std::vector<double> altitudes_;
  std::vector<Rem> layers_;
};

struct Placement3D {
  geo::Vec2 position;
  double altitude_m = 0.0;
  double objective_snr_db = 0.0;
};

/// Search (x, y, layer altitude) for the best placement under `objective`;
/// feasibility-masked per altitude. All stacks must share geometry and the
/// same altitude ladder.
Placement3D choose_placement_3d(std::span<const LayeredRem> stacks,
                                const terrain::Terrain& t,
                                PlacementObjective objective = PlacementObjective::kMaxMin,
                                const IdwParams& params = {});

}  // namespace skyran::rem
