// Ordinary kriging interpolation. The paper (footnote 3) chooses IDW over
// kriging/Gaussian-process regression citing marginal accuracy gains at much
// higher cost; this module implements local ordinary kriging with an
// exponential variogram so that claim can be measured (see
// bench/ablation_interpolation.cpp).
#pragma once

#include <optional>
#include <vector>

#include "geo/rect.hpp"
#include "rem/idw.hpp"

namespace skyran::rem {

/// Exponential variogram gamma(h) = nugget + sill * (1 - exp(-h / range)).
struct Variogram {
  double nugget = 0.5;   ///< measurement noise floor (dB^2)
  double sill = 30.0;    ///< variance at full decorrelation (dB^2)
  double range_m = 40.0; ///< decorrelation length

  double operator()(double distance_m) const;
};

/// Fit an exponential variogram to scattered samples by the classical
/// method-of-moments: bin pairwise squared differences by distance and
/// least-squares the curve through the empirical semivariances. Falls back
/// to the default parameters when there are too few pairs.
Variogram fit_variogram(const std::vector<IdwSample>& samples, double max_lag_m = 120.0,
                        int bins = 12);

class KrigingInterpolator {
 public:
  /// Local ordinary kriging over `samples`: each query solves the kriging
  /// system on its `k` nearest neighbors (small dense solve per query).
  KrigingInterpolator(std::vector<IdwSample> samples, geo::Rect area, Variogram variogram,
                      double bucket_m = 16.0);

  /// Kriged estimate at `p` using the `k` nearest samples within
  /// `max_radius_m`. nullopt when no sample is in range.
  std::optional<double> estimate(geo::Vec2 p, int k = 8, double max_radius_m = 1e9) const;

  /// Full-raster kriged estimate over the interpolator's area: one dense
  /// solve per cell center, parallelized across cells on the global thread
  /// pool. Cells with no sample in range take `fallback`. Bit-for-bit
  /// identical for any worker count (cells are independent).
  geo::Grid2D<double> estimate_grid(double cell_size, int k = 8, double max_radius_m = 1e9,
                                    double fallback = 0.0) const;

  const Variogram& variogram() const { return variogram_; }
  std::size_t sample_count() const { return index_.sample_count(); }

 private:
  std::vector<IdwSample> samples_;
  IdwInterpolator index_;  ///< reused for neighbor search
  Variogram variogram_;
};

}  // namespace skyran::rem
