#include "rem/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "kernels/kernels.hpp"
#include "obs/obs.hpp"

namespace skyran::rem {

namespace {

// SoA mirror of an AoS Vec2 sequence for the kernels-layer batch primitives.
struct SoA2 {
  std::vector<double> x;
  std::vector<double> y;

  explicit SoA2(std::size_t n) : x(n), y(n) {}

  void set(std::size_t i, geo::Vec2 p) {
    x[i] = p.x;
    y[i] = p.y;
  }
};

}  // namespace

KMeansResult kmeans(const std::vector<WeightedPoint>& points, int k, std::uint64_t seed,
                    int max_iterations) {
  expects(!points.empty(), "kmeans: empty input");
  expects(k >= 1, "kmeans: k must be >= 1");
  k = std::min<int>(k, static_cast<int>(points.size()));

  std::mt19937_64 rng(seed);

  // Point coordinates in SoA form, built once: the seeding distance sweep
  // and the assignment sweep both run through the kernels layer.
  SoA2 pts(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) pts.set(i, points[i].position);

  // k-means++ seeding: first center weighted-uniform, then proportional to
  // weighted squared distance from the chosen set.
  std::vector<geo::Vec2> centers;
  centers.reserve(static_cast<std::size_t>(k));
  {
    std::vector<double> cdf(points.size());
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      total += std::max(points[i].weight, 1e-12);
      cdf[i] = total;
    }
    std::uniform_real_distribution<double> pick(0.0, total);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), pick(rng));
    centers.push_back(points[static_cast<std::size_t>(it - cdf.begin())].position);
  }
  std::vector<double> best_d2(points.size());
  SoA2 ctr(static_cast<std::size_t>(k));
  while (static_cast<int>(centers.size()) < k) {
    for (std::size_t c = 0; c < centers.size(); ++c) ctr.set(c, centers[c]);
    kernels::min_dist2(pts.x.data(), pts.y.data(), points.size(), ctr.x.data(), ctr.y.data(),
                       centers.size(), best_d2.data());
    std::vector<double> cdf(points.size());
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      total += std::max(points[i].weight, 1e-12) * best_d2[i];
      cdf[i] = total;
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one.
      centers.push_back(points.front().position);
      continue;
    }
    std::uniform_real_distribution<double> pick(0.0, total);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), pick(rng));
    centers.push_back(points[static_cast<std::size_t>(it - cdf.begin())].position);
  }

  // Per-centroid accumulator of one chunk of the update sweep. Partials are
  // combined in chunk order (chunk boundaries depend only on the point
  // count), so the centroids are bit-for-bit independent of thread count.
  struct CentroidSums {
    std::vector<geo::Vec2> sums;
    std::vector<double> weights;
  };

  KMeansResult result;
  result.assignment.assign(points.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assignment sweep: each chunk hands its slice of the SoA arrays to the
    // kernels-layer argmin (EXACT at every SIMD level: centers scanned in
    // index order with strict-less update, so ties keep the lowest index).
    // `changed` is an OR over chunks, which is order-insensitive. Reduced as
    // int (0/1) because parallel_reduce forbids bool: vector<bool> partials
    // would share words across chunks and race.
    for (std::size_t c = 0; c < centers.size(); ++c) ctr.set(c, centers[c]);
    const bool changed =
        core::parallel_reduce(
            points.size(), 0, 0,
            [&](std::size_t begin, std::size_t end) {
              return kernels::kmeans_assign(pts.x.data() + begin, pts.y.data() + begin,
                                            end - begin, ctr.x.data(), ctr.y.data(),
                                            centers.size(), result.assignment.data() + begin);
            },
            [](int a, int b) { return a | b; }) != 0;

    // Update sweep: recompute weighted centroids from per-chunk partials.
    CentroidSums identity{std::vector<geo::Vec2>(centers.size()),
                          std::vector<double>(centers.size(), 0.0)};
    const CentroidSums acc = core::parallel_reduce(
        points.size(), 0, identity,
        [&](std::size_t begin, std::size_t end) {
          CentroidSums part{std::vector<geo::Vec2>(centers.size()),
                            std::vector<double>(centers.size(), 0.0)};
          for (std::size_t i = begin; i < end; ++i) {
            const auto a = static_cast<std::size_t>(result.assignment[i]);
            part.sums[a] += points[i].position * points[i].weight;
            part.weights[a] += points[i].weight;
          }
          return part;
        },
        [](CentroidSums a, const CentroidSums& b) {
          for (std::size_t c = 0; c < a.sums.size(); ++c) {
            a.sums[c] += b.sums[c];
            a.weights[c] += b.weights[c];
          }
          return a;
        });
    for (std::size_t c = 0; c < centers.size(); ++c)
      if (acc.weights[c] > 0.0) centers[c] = acc.sums[c] / acc.weights[c];
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
  }

  result.inertia = core::parallel_reduce(
      points.size(), 0, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double part = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const auto a = static_cast<std::size_t>(result.assignment[i]);
          part += points[i].weight * (points[i].position - centers[a]).norm2();
        }
        return part;
      },
      [](double a, double b) { return a + b; });
  result.centroids = std::move(centers);
  SKYRAN_COUNTER_INC("rem.kmeans.runs");
  SKYRAN_HISTOGRAM_OBSERVE("rem.kmeans.iterations", result.iterations);
  SKYRAN_HISTOGRAM_OBSERVE("rem.kmeans.points", points.size());
  return result;
}

}  // namespace skyran::rem
