#include "rem/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "obs/obs.hpp"

namespace skyran::rem {

namespace {

double dist2_to_nearest(const geo::Vec2& p, const std::vector<geo::Vec2>& centers) {
  double best = std::numeric_limits<double>::infinity();
  for (const geo::Vec2& c : centers) best = std::min(best, (p - c).norm2());
  return best;
}

int nearest_center(const geo::Vec2& p, const std::vector<geo::Vec2>& centers) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const double d = (p - centers[i]).norm2();
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

KMeansResult kmeans(const std::vector<WeightedPoint>& points, int k, std::uint64_t seed,
                    int max_iterations) {
  expects(!points.empty(), "kmeans: empty input");
  expects(k >= 1, "kmeans: k must be >= 1");
  k = std::min<int>(k, static_cast<int>(points.size()));

  std::mt19937_64 rng(seed);

  // k-means++ seeding: first center weighted-uniform, then proportional to
  // weighted squared distance from the chosen set.
  std::vector<geo::Vec2> centers;
  centers.reserve(static_cast<std::size_t>(k));
  {
    std::vector<double> cdf(points.size());
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      total += std::max(points[i].weight, 1e-12);
      cdf[i] = total;
    }
    std::uniform_real_distribution<double> pick(0.0, total);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), pick(rng));
    centers.push_back(points[static_cast<std::size_t>(it - cdf.begin())].position);
  }
  while (static_cast<int>(centers.size()) < k) {
    std::vector<double> cdf(points.size());
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      total += std::max(points[i].weight, 1e-12) * dist2_to_nearest(points[i].position, centers);
      cdf[i] = total;
    }
    if (total <= 0.0) {
      // All points coincide with existing centers; duplicate one.
      centers.push_back(points.front().position);
      continue;
    }
    std::uniform_real_distribution<double> pick(0.0, total);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), pick(rng));
    centers.push_back(points[static_cast<std::size_t>(it - cdf.begin())].position);
  }

  // Per-centroid accumulator of one chunk of the update sweep. Partials are
  // combined in chunk order (chunk boundaries depend only on the point
  // count), so the centroids are bit-for-bit independent of thread count.
  struct CentroidSums {
    std::vector<geo::Vec2> sums;
    std::vector<double> weights;
  };

  KMeansResult result;
  result.assignment.assign(points.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    // Assignment sweep: each point is independent; `changed` is an OR over
    // chunks, which is order-insensitive. Reduced as int (0/1) because
    // parallel_reduce forbids bool: vector<bool> partials would share words
    // across chunks and race.
    const bool changed = core::parallel_reduce(
                             points.size(), 0, 0,
                             [&](std::size_t begin, std::size_t end) {
                               int chunk_changed = 0;
                               for (std::size_t i = begin; i < end; ++i) {
                                 const int a = nearest_center(points[i].position, centers);
                                 if (a != result.assignment[i]) {
                                   result.assignment[i] = a;
                                   chunk_changed = 1;
                                 }
                               }
                               return chunk_changed;
                             },
                             [](int a, int b) { return a | b; }) != 0;

    // Update sweep: recompute weighted centroids from per-chunk partials.
    CentroidSums identity{std::vector<geo::Vec2>(centers.size()),
                          std::vector<double>(centers.size(), 0.0)};
    const CentroidSums acc = core::parallel_reduce(
        points.size(), 0, identity,
        [&](std::size_t begin, std::size_t end) {
          CentroidSums part{std::vector<geo::Vec2>(centers.size()),
                            std::vector<double>(centers.size(), 0.0)};
          for (std::size_t i = begin; i < end; ++i) {
            const auto a = static_cast<std::size_t>(result.assignment[i]);
            part.sums[a] += points[i].position * points[i].weight;
            part.weights[a] += points[i].weight;
          }
          return part;
        },
        [](CentroidSums a, const CentroidSums& b) {
          for (std::size_t c = 0; c < a.sums.size(); ++c) {
            a.sums[c] += b.sums[c];
            a.weights[c] += b.weights[c];
          }
          return a;
        });
    for (std::size_t c = 0; c < centers.size(); ++c)
      if (acc.weights[c] > 0.0) centers[c] = acc.sums[c] / acc.weights[c];
    result.iterations = iter + 1;
    if (!changed && iter > 0) break;
  }

  result.inertia = core::parallel_reduce(
      points.size(), 0, 0.0,
      [&](std::size_t begin, std::size_t end) {
        double part = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          const auto a = static_cast<std::size_t>(result.assignment[i]);
          part += points[i].weight * (points[i].position - centers[a]).norm2();
        }
        return part;
      },
      [](double a, double b) { return a + b; });
  result.centroids = std::move(centers);
  SKYRAN_COUNTER_INC("rem.kmeans.runs");
  SKYRAN_HISTOGRAM_OBSERVE("rem.kmeans.iterations", result.iterations);
  SKYRAN_HISTOGRAM_OBSERVE("rem.kmeans.points", points.size());
  return result;
}

}  // namespace skyran::rem
