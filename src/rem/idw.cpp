#include "rem/idw.hpp"

#include <algorithm>
#include <cmath>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"

namespace skyran::rem {

IdwInterpolator::IdwInterpolator(std::vector<IdwSample> samples, geo::Rect area, double bucket_m)
    : samples_(std::move(samples)), buckets_(area, bucket_m) {
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const geo::Vec2 p = area.clamp(samples_[i].position);
    buckets_.value_at(p).push_back(static_cast<int>(i));
  }
}

std::optional<double> IdwInterpolator::estimate(geo::Vec2 p, int k, double power,
                                                double max_radius_m) const {
  const auto r = estimate_with_distance(p, k, power, max_radius_m);
  if (!r) return std::nullopt;
  return r->value;
}

std::vector<IdwInterpolator::Neighbor> IdwInterpolator::nearest(geo::Vec2 p, int k,
                                                                double max_radius_m) const {
  expects(k >= 1, "IdwInterpolator::nearest: k must be >= 1");
  std::vector<Neighbor> out;
  if (samples_.empty()) return out;

  const geo::Vec2 q = buckets_.area().clamp(p);
  const geo::CellIndex center = buckets_.cell_of(q);
  // Never search more rings than the bucket grid spans (covers the
  // unbounded-radius configuration).
  const int grid_span = std::max(buckets_.nx(), buckets_.ny()) + 1;
  const int max_ring = static_cast<int>(std::min<double>(
      grid_span, std::ceil(max_radius_m / buckets_.cell_size()) + 1.0));

  struct Found {
    double dist2;
    int index;
  };
  std::vector<Found> found;

  // Ring search: expand square rings of buckets until we have k candidates
  // whose distance is certainly not beaten by unexplored rings.
  for (int ring = 0; ring <= max_ring; ++ring) {
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring shell only
        const geo::CellIndex c{center.ix + dx, center.iy + dy};
        if (!buckets_.in_bounds(c)) continue;
        for (int idx : buckets_.at(c)) {
          const IdwSample& s = samples_[static_cast<std::size_t>(idx)];
          const double d2 = (s.position - p).norm2();
          if (d2 <= max_radius_m * max_radius_m) found.push_back({d2, idx});
        }
      }
    }
    if (static_cast<int>(found.size()) >= k) {
      // Any sample in a farther ring is at least (ring * bucket) away from
      // the query's bucket boundary; once the k-th best is closer, stop.
      std::nth_element(found.begin(), found.begin() + (k - 1), found.end(),
                       [](const Found& a, const Found& b) { return a.dist2 < b.dist2; });
      const double kth = std::sqrt(found[static_cast<std::size_t>(k - 1)].dist2);
      const double safe = ring * buckets_.cell_size();
      if (kth <= safe) break;
    }
  }
  const int use = std::min<int>(k, static_cast<int>(found.size()));
  std::partial_sort(found.begin(), found.begin() + use, found.end(),
                    [](const Found& a, const Found& b) { return a.dist2 < b.dist2; });
  out.reserve(static_cast<std::size_t>(use));
  for (int i = 0; i < use; ++i)
    out.push_back({found[static_cast<std::size_t>(i)].index,
                   std::sqrt(found[static_cast<std::size_t>(i)].dist2)});
  return out;
}

std::optional<IdwInterpolator::EstimateWithDistance> IdwInterpolator::estimate_with_distance(
    geo::Vec2 p, int k, double power, double max_radius_m) const {
  expects(power > 0.0, "IdwInterpolator::estimate: power must be positive");
  const std::vector<Neighbor> neighbors = nearest(p, k, max_radius_m);
  if (neighbors.empty()) return std::nullopt;

  double wsum = 0.0;
  double vsum = 0.0;
  for (const Neighbor& n : neighbors) {
    const double v = samples_[static_cast<std::size_t>(n.index)].value;
    if (n.distance_m < 1e-6) return EstimateWithDistance{v, n.distance_m};  // exact hit
    const double w = 1.0 / std::pow(n.distance_m, power);
    wsum += w;
    vsum += w * v;
  }
  return EstimateWithDistance{vsum / wsum, neighbors.front().distance_m};
}

geo::Grid2D<double> IdwInterpolator::estimate_grid(double cell_size, int k, double power,
                                                   double max_radius_m,
                                                   double fallback) const {
  geo::Grid2D<double> out(buckets_.area(), cell_size, fallback);
  auto& raw = out.raw();
  const int nx = out.nx();
  core::parallel_for(raw.size(), [&](std::size_t i) {
    const geo::CellIndex c{static_cast<int>(i % static_cast<std::size_t>(nx)),
                           static_cast<int>(i / static_cast<std::size_t>(nx))};
    raw[i] = estimate(out.center_of(c), k, power, max_radius_m).value_or(fallback);
  });
  return out;
}

}  // namespace skyran::rem
