#include "rem/idw.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "geo/contract.hpp"
#include "kernels/kernels.hpp"
#include "rem/rasterize.hpp"

namespace skyran::rem {

IdwInterpolator::IdwInterpolator(std::vector<IdwSample> samples, geo::Rect area, double bucket_m)
    : samples_(std::move(samples)), buckets_(area, bucket_m) {
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const geo::Vec2 p = area.clamp(samples_[i].position);
    buckets_.value_at(p).push_back(static_cast<int>(i));
  }
}

std::optional<double> IdwInterpolator::estimate(geo::Vec2 p, int k, double power,
                                                double max_radius_m) const {
  const auto r = estimate_with_distance(p, k, power, max_radius_m);
  if (!r) return std::nullopt;
  return r->value;
}

std::vector<IdwInterpolator::Neighbor> IdwInterpolator::nearest(geo::Vec2 p, int k,
                                                                double max_radius_m) const {
  return nearest_impl(p, k, max_radius_m, nullptr);
}

std::vector<IdwInterpolator::Neighbor> IdwInterpolator::nearest_impl(geo::Vec2 p, int k,
                                                                     double max_radius_m,
                                                                     int* rings_scanned) const {
  expects(k >= 1, "IdwInterpolator::nearest: k must be >= 1");
  std::vector<Neighbor> out;
  if (rings_scanned != nullptr) *rings_scanned = 0;
  if (samples_.empty()) return out;

  const geo::Vec2 q = buckets_.area().clamp(p);
  const geo::CellIndex center = buckets_.cell_of(q);
  // Never search more rings than the bucket grid spans (covers the
  // unbounded-radius configuration).
  const int grid_span = std::max(buckets_.nx(), buckets_.ny()) + 1;
  const int max_ring = static_cast<int>(std::min<double>(
      grid_span, std::ceil(max_radius_m / buckets_.cell_size()) + 1.0));

  struct Found {
    double dist2;
    int index;
  };
  std::vector<Found> found;

  // Ring search: expand square rings of buckets until we have k candidates
  // whose distance is certainly not beaten by unexplored rings.
  for (int ring = 0; ring <= max_ring; ++ring) {
    if (rings_scanned != nullptr) *rings_scanned = ring;
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring shell only
        const geo::CellIndex c{center.ix + dx, center.iy + dy};
        if (!buckets_.in_bounds(c)) continue;
        for (int idx : buckets_.at(c)) {
          const IdwSample& s = samples_[static_cast<std::size_t>(idx)];
          const double d2 = (s.position - p).norm2();
          if (d2 <= max_radius_m * max_radius_m) found.push_back({d2, idx});
        }
      }
    }
    if (static_cast<int>(found.size()) >= k) {
      // Any sample in a farther ring is at least (ring * bucket) away from
      // the query's bucket boundary; once the k-th best is closer, stop.
      std::nth_element(found.begin(), found.begin() + (k - 1), found.end(),
                       [](const Found& a, const Found& b) { return a.dist2 < b.dist2; });
      const double kth = std::sqrt(found[static_cast<std::size_t>(k - 1)].dist2);
      const double safe = ring * buckets_.cell_size();
      if (kth <= safe) break;
    }
  }
  const int use = std::min<int>(k, static_cast<int>(found.size()));
  std::partial_sort(found.begin(), found.begin() + use, found.end(),
                    [](const Found& a, const Found& b) { return a.dist2 < b.dist2; });
  out.reserve(static_cast<std::size_t>(use));
  for (int i = 0; i < use; ++i)
    out.push_back({found[static_cast<std::size_t>(i)].index,
                   std::sqrt(found[static_cast<std::size_t>(i)].dist2)});
  return out;
}

std::optional<IdwInterpolator::EstimateWithDistance> IdwInterpolator::weigh(
    const std::vector<IdwSample>& samples, const std::vector<Neighbor>& neighbors,
    double power) {
  if (neighbors.empty()) return std::nullopt;
  // Gather to SoA and hand the accumulation to the kernels layer. The
  // exact-hit shortcut keeps its historical first-in-order semantics: any
  // neighbor closer than 1e-6 m wins before any weight is accumulated.
  constexpr std::size_t kStack = 32;
  double dist_stack[kStack];
  double val_stack[kStack];
  std::vector<double> heap;
  double* dist = dist_stack;
  double* val = val_stack;
  if (neighbors.size() > kStack) {
    heap.resize(2 * neighbors.size());
    dist = heap.data();
    val = heap.data() + neighbors.size();
  }
  std::size_t n = 0;
  for (const Neighbor& nb : neighbors) {
    const double v = samples[static_cast<std::size_t>(nb.index)].value;
    if (nb.distance_m < 1e-6) return EstimateWithDistance{v, nb.distance_m};  // exact hit
    dist[n] = nb.distance_m;
    val[n] = v;
    ++n;
  }
  const kernels::IdwAccum acc = kernels::idw_weigh(dist, val, n, power);
  return EstimateWithDistance{acc.vsum / acc.wsum, neighbors.front().distance_m};
}

std::optional<IdwInterpolator::EstimateWithDistance> IdwInterpolator::estimate_with_distance(
    geo::Vec2 p, int k, double power, double max_radius_m) const {
  expects(power > 0.0, "IdwInterpolator::estimate: power must be positive");
  return weigh(samples_, nearest(p, k, max_radius_m), power);
}

IdwInterpolator::InfluenceEstimate IdwInterpolator::estimate_with_influence(
    geo::Vec2 p, int k, double power, double max_radius_m) const {
  expects(power > 0.0, "IdwInterpolator::estimate: power must be positive");
  int rings = 0;
  InfluenceEstimate out;
  out.estimate = weigh(samples_, nearest_impl(p, k, max_radius_m, &rings), power);
  if (samples_.empty()) {
    // No scan happened: any future sample within max_radius_m can affect the
    // query (there was nothing to stop the ring search early).
    out.influence_m = max_radius_m;
    return out;
  }
  // Every candidate the search saw lives in a bucket within Chebyshev
  // distance `rings` of the (clamped) query's bucket, i.e. within
  // (rings + 1) * bucket * sqrt(2) meters of the clamped query (per-axis
  // separation is at most (rings + 1) buckets). Queries at partial edge
  // cells can sit slightly outside the area, so the clamp offset is added to
  // express the bound from the original point. A sample beyond that bound
  // was never scanned, and one beyond max_radius_m never enters the
  // candidate list, so the tighter of the two bounds the query. The small
  // epsilon absorbs floating-point slack in the caller's distance test;
  // widening the radius only ever over-marks.
  const geo::Vec2 q = buckets_.area().clamp(p);
  const double scanned_m = (rings + 1) * buckets_.cell_size() * std::numbers::sqrt2 +
                           (p - q).norm() + 1e-6;
  out.influence_m = std::min(scanned_m, max_radius_m);
  return out;
}

bool IdwInterpolator::any_within(geo::Vec2 p, double radius_m) const {
  if (samples_.empty() || radius_m < 0.0) return false;
  const geo::Vec2 q = buckets_.area().clamp(p);
  const geo::CellIndex center = buckets_.cell_of(q);
  const int grid_span = std::max(buckets_.nx(), buckets_.ny()) + 1;
  const int max_ring = static_cast<int>(std::min<double>(
      grid_span, std::ceil(radius_m / buckets_.cell_size()) + 1.0));
  const double r2 = radius_m * radius_m;
  for (int ring = 0; ring <= max_ring; ++ring) {
    for (int dy = -ring; dy <= ring; ++dy) {
      for (int dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;  // ring shell only
        const geo::CellIndex c{center.ix + dx, center.iy + dy};
        if (!buckets_.in_bounds(c)) continue;
        for (int idx : buckets_.at(c)) {
          if ((samples_[static_cast<std::size_t>(idx)].position - p).norm2() <= r2)
            return true;
        }
      }
    }
  }
  return false;
}

geo::Grid2D<double> IdwInterpolator::estimate_grid(double cell_size, int k, double power,
                                                   double max_radius_m,
                                                   double fallback) const {
  return rasterize_estimates(buckets_.area(), cell_size, fallback, [&](geo::Vec2 center) {
    return estimate(center, k, power, max_radius_m);
  });
}

}  // namespace skyran::rem
