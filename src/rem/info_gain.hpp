// Trajectory information gain (paper Step 6.4): how much *new* RF knowledge
// a candidate measurement tour adds for each UE, quantified as that tour's
// distance from everything already flown for the UE. New UEs (empty history)
// get a large fixed gain Imax.
#pragma once

#include <vector>

#include "geo/path.hpp"

namespace skyran::rem {

/// All trajectories flown for one UE in prior epochs.
using TrajectoryHistory = std::vector<geo::Path>;

struct InfoGainParams {
  double i_max = 250.0;        ///< gain assigned to a UE with no history, m
  double sample_spacing_m = 8.0;  ///< candidate-path sampling pitch
};

/// Gain of `candidate` for one UE: the minimum over historical trajectories
/// of the mean distance from candidate sample points to that trajectory
/// (i_max when the history is empty), clamped to i_max.
double info_gain_for_ue(const geo::Path& candidate, const TrajectoryHistory& history,
                        const InfoGainParams& params = {});

/// Mean gain over all UEs (paper's "average information gain").
double average_info_gain(const geo::Path& candidate,
                         const std::vector<TrajectoryHistory>& per_ue_history,
                         const InfoGainParams& params = {});

/// Information-to-cost ratio: average gain divided by tour length.
double info_to_cost_ratio(const geo::Path& candidate,
                          const std::vector<TrajectoryHistory>& per_ue_history,
                          const InfoGainParams& params = {});

}  // namespace skyran::rem
