// Inverse Distance Weighting interpolation over scattered samples on a grid
// (paper Sec 3.3.3, footnote 3: IDW chosen over kriging/GPR for its cost).
// Queries use a bucketed ring search so interpolating a full map stays fast.
#pragma once

#include <optional>
#include <vector>

#include "geo/grid.hpp"
#include "geo/vec.hpp"

namespace skyran::rem {

struct IdwSample {
  geo::Vec2 position;
  double value = 0.0;
};

class IdwInterpolator {
 public:
  /// Build a spatial index over `samples` within `area`. `bucket_m` is the
  /// index cell size (search granularity, not the output grid).
  IdwInterpolator(std::vector<IdwSample> samples, geo::Rect area, double bucket_m = 16.0);

  /// IDW estimate at `p` from the `k` nearest samples within `max_radius_m`,
  /// weighting by distance^-power. nullopt when no sample is in range.
  std::optional<double> estimate(geo::Vec2 p, int k, double power, double max_radius_m) const;

  struct EstimateWithDistance {
    double value = 0.0;
    double nearest_m = 0.0;  ///< distance to the closest contributing sample
  };

  /// Like estimate(), additionally reporting how far the closest sample is
  /// (callers blend against a prior background using this distance).
  std::optional<EstimateWithDistance> estimate_with_distance(geo::Vec2 p, int k, double power,
                                                             double max_radius_m) const;

  struct InfluenceEstimate {
    std::optional<EstimateWithDistance> estimate;  ///< nullopt = nothing in range
    /// Invalidation bound for incremental re-estimation: adding or changing
    /// samples strictly farther than this from `p` cannot alter what this
    /// query returned — they lie outside both the bucket rings the search
    /// scanned and the query radius, so the candidate sequence the selection
    /// saw (content *and* order) is unchanged. Conservative (over-marking a
    /// cell dirty merely recomputes the identical value).
    double influence_m = 0.0;
  };

  /// estimate_with_distance() plus the influence radius of the query; the
  /// REM bank stores the radius per cell to decide which cells a fresh
  /// measurement invalidates (see rem::RemBank::estimate_all).
  InfluenceEstimate estimate_with_influence(geo::Vec2 p, int k, double power,
                                            double max_radius_m) const;

  /// True when any sample lies within `radius_m` of `p` (inclusive).
  /// Early-exits on the first hit; used for dirty-cell tests against small
  /// fresh-measurement indexes.
  bool any_within(geo::Vec2 p, double radius_m) const;

  /// Full-raster estimate over the interpolator's area: one estimate() per
  /// cell center, parallelized across cells on the global thread pool.
  /// Cells with no sample in range take `fallback`. Bit-for-bit identical
  /// for any worker count (cells are independent).
  geo::Grid2D<double> estimate_grid(double cell_size, int k, double power,
                                    double max_radius_m, double fallback = 0.0) const;

  struct Neighbor {
    int index = 0;       ///< into samples()
    double distance_m = 0.0;
  };

  /// The (at most) `k` nearest samples within `max_radius_m` of `p`, nearest
  /// first. Shared spatial index for every interpolator built on top.
  std::vector<Neighbor> nearest(geo::Vec2 p, int k, double max_radius_m) const;

  const std::vector<IdwSample>& samples() const { return samples_; }
  std::size_t sample_count() const { return samples_.size(); }
  const geo::Rect& area() const { return buckets_.area(); }

 private:
  /// Ring search behind nearest(); when `rings_scanned` is non-null it
  /// receives the outermost bucket ring the search visited (the influence
  /// bound derives from it).
  std::vector<Neighbor> nearest_impl(geo::Vec2 p, int k, double max_radius_m,
                                     int* rings_scanned) const;
  /// Shared weighting step over a neighbor list (exact-hit shortcut + IDW).
  static std::optional<EstimateWithDistance> weigh(const std::vector<IdwSample>& samples,
                                                   const std::vector<Neighbor>& neighbors,
                                                   double power);

  std::vector<IdwSample> samples_;
  geo::Grid2D<std::vector<int>> buckets_;
};

}  // namespace skyran::rem
