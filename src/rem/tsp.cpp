#include "rem/tsp.hpp"

#include <algorithm>
#include <limits>

#include "geo/contract.hpp"
#include "obs/obs.hpp"

namespace skyran::rem {

double tour_length(geo::Vec2 start, const std::vector<geo::Vec2>& nodes) {
  double total = 0.0;
  geo::Vec2 cur = start;
  for (const geo::Vec2& n : nodes) {
    total += cur.dist(n);
    cur = n;
  }
  return total;
}

geo::Path plan_tour(geo::Vec2 start, std::vector<geo::Vec2> nodes) {
  if (nodes.empty()) return geo::Path({start});

  // Nearest-neighbor construction.
  std::vector<geo::Vec2> order;
  order.reserve(nodes.size());
  geo::Vec2 cur = start;
  std::vector<bool> used(nodes.size(), false);
  for (std::size_t step = 0; step < nodes.size(); ++step) {
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (used[i]) continue;
      const double d = cur.dist(nodes[i]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(i);
      }
    }
    used[static_cast<std::size_t>(best)] = true;
    order.push_back(nodes[static_cast<std::size_t>(best)]);
    cur = order.back();
  }

  // 2-opt on the open path: reversing order[i..j] changes only the edges
  // into i and out of j.
  auto point = [&](int idx) -> geo::Vec2 { return idx < 0 ? start : order[static_cast<std::size_t>(idx)]; };
  const int n = static_cast<int>(order.size());
  bool improved = true;
  int rounds = 0;
  while (improved && rounds < 40) {
    improved = false;
    ++rounds;
    for (int i = 0; i < n - 1; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double before = point(i - 1).dist(point(i)) +
                              (j + 1 < n ? point(j).dist(point(j + 1)) : 0.0);
        const double after = point(i - 1).dist(point(j)) +
                             (j + 1 < n ? point(i).dist(point(j + 1)) : 0.0);
        if (after + 1e-9 < before) {
          std::reverse(order.begin() + i, order.begin() + j + 1);
          improved = true;
        }
      }
    }
  }

  SKYRAN_COUNTER_INC("rem.tsp.tours");
  SKYRAN_HISTOGRAM_OBSERVE("rem.tsp.two_opt_rounds", rounds);
  SKYRAN_HISTOGRAM_OBSERVE("rem.tsp.nodes", order.size());

  std::vector<geo::Vec2> pts;
  pts.reserve(order.size() + 1);
  pts.push_back(start);
  pts.insert(pts.end(), order.begin(), order.end());
  return geo::Path(std::move(pts));
}

}  // namespace skyran::rem
