// UeLocalizer: the complete Step 1-4 block of the SkyRAN epoch (Fig. 10).
// Plans the short random localization flight, runs the GPS-ToF pipeline per
// UE and multilaterates each UE's position.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "localization/multilateration.hpp"
#include "localization/pipeline.hpp"
#include "rf/channel.hpp"
#include "terrain/terrain.hpp"

namespace skyran::localization {

struct LocalizerConfig {
  RangingConfig ranging{};
  MultilaterationOptions solver{};
  double flight_length_m = 30.0;  ///< error flattens ~20-30 m (paper Fig. 19)
  /// Leg length of the random walk; two to three legs per flight keeps the
  /// spatial aperture (what localization geometry cares about) close to the
  /// flown length.
  double flight_leg_m = 9.0;
  double flight_altitude_m = 60.0;
  double cruise_mps = uav::kDefaultCruiseMps;
  double gps_sigma_m = 1.5;
  /// Optional GPS outage model (Gilbert): probability of losing lock per
  /// 50 Hz sample and mean outage length in samples. 0 = never.
  double gps_outage_probability = 0.0;
  double gps_outage_mean_samples = 10.0;
};

struct UeLocationEstimate {
  geo::Vec2 position;
  double offset_m = 0.0;
  double rms_residual_m = 0.0;
  bool valid = false;  ///< false when too few SRS reports decoded
};

struct LocalizationRun {
  std::vector<UeLocationEstimate> estimates;  ///< one per input UE
  double flight_length_m = 0.0;
  double flight_duration_s = 0.0;
};

class UeLocalizer {
 public:
  /// `channel` is the ground-truth propagation world (also the LOS oracle).
  UeLocalizer(const rf::RayTraceChannel& channel, rf::LinkBudget budget,
              LocalizerConfig config);

  /// Localize every UE in `true_ue_positions` with one random flight
  /// starting at `start`. Deterministic in `seed`. `faults`, when non-null,
  /// injects scripted ranging degradation (SRS loss / SNR sag / GPS outage);
  /// affected UEs come back with valid = false instead of failing the run.
  LocalizationRun localize(geo::Vec2 start, std::vector<geo::Vec3> true_ue_positions,
                           std::uint64_t seed, RangingFaultModel* faults = nullptr) const;

  const LocalizerConfig& config() const { return config_; }

 private:
  const rf::RayTraceChannel& channel_;
  rf::LinkBudget budget_;
  LocalizerConfig config_;
};

}  // namespace skyran::localization
