// Offset-incorporated multilateration (paper Sec 3.2.3): solve for the UE
// ground position u and a constant range offset b minimizing robust
// residuals  r_i = |p_i - u| + b - d_i  over all GPS-ToF tuples, via
// Gauss-Newton iterations with Huber weights and multi-start initialization
// (the paper's "least-squares formulation with gradient-descent iteration,
// robust to noisy UAV measurements").
#pragma once

#include <cstdint>
#include <span>

#include "geo/rect.hpp"
#include "localization/tuples.hpp"

namespace skyran::localization {

struct MultilaterationOptions {
  int max_iterations = 60;
  double convergence_m = 1e-4;  ///< stop when the update step is below this
  double huber_delta_m = 8.0;  ///< residuals beyond this are down-weighted
  int restarts = 6;             ///< multi-start count (first start = centroid)
  std::uint64_t seed = 1;       ///< seeds the random restarts
};

struct MultilaterationResult {
  geo::Vec2 position;        ///< estimated UE ground position
  double offset_m = 0.0;     ///< estimated constant range offset b
  double rms_residual_m = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Solve for a single UE's position with the offset b as a free unknown.
///
/// CAUTION: with a short flight aperture (e.g. the paper's 20 m) relative to
/// the UE range, (x, y, b) is nearly unidentifiable for a single UE - the
/// offset absorbs radial displacement. Use multilaterate_joint, which shares
/// the (physically constant) processing-delay offset across all UEs, for the
/// short localization flights of Sec 3.2.
MultilaterationResult multilaterate(std::span<const GpsTofTuple> tuples,
                                    geo::Rect search_area, double ue_altitude_m,
                                    const MultilaterationOptions& options = {});

/// Solve for a single UE's position with a KNOWN offset (well-conditioned:
/// grid init + Gauss-Newton over (x, y) only).
MultilaterationResult multilaterate_fixed_offset(std::span<const GpsTofTuple> tuples,
                                                 geo::Rect search_area, double ue_altitude_m,
                                                 double offset_m,
                                                 const MultilaterationOptions& options = {});

struct JointMultilaterationResult {
  std::vector<MultilaterationResult> per_ue;
  double shared_offset_m = 0.0;
  double total_cost_m = 0.0;  ///< robust (median-|residual|) cost summed over UEs
};

struct JointOptions {
  MultilaterationOptions per_ue{};
  double offset_min_m = -30.0;
  double offset_max_m = 150.0;
  double coarse_step_m = 8.0;
  double fine_step_m = 1.0;
  /// Bench-calibration prior on the processing-delay offset. The payload's
  /// ToF processing delay is a constant of the hardware/software chain that
  /// is calibrated once on the ground; in flight it may drift, so the solver
  /// treats the calibration as a Gaussian prior that the SRS data refines.
  /// Without it, a short flight aperture leaves the offset unidentifiable
  /// (wavefront curvature over a 20 m aperture is ~1 m at typical ranges,
  /// below the ToF noise). Set `offset_prior_sigma_m` <= 0 to disable.
  double offset_prior_m = 40.0;
  double offset_prior_sigma_m = 12.0;
};

/// Joint localization of all UEs with one shared constant range offset
/// (the onboard ToF processing delay, constant for the system, Sec 3.2.3).
/// A 1-D search over the offset wraps per-UE fixed-offset fits; sharing the
/// offset across UEs in different directions breaks the radial degeneracy a
/// short flight leaves per UE.
JointMultilaterationResult multilaterate_joint(
    std::span<const GpsTofSeries> per_ue_tuples, geo::Rect search_area,
    std::span<const double> ue_altitudes_m, const JointOptions& options = {});

}  // namespace skyran::localization
