#include "localization/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/contract.hpp"
#include "rf/units.hpp"

namespace skyran::localization {

std::vector<geo::Vec3> default_macro_sites(geo::Rect area, int count, double height_m) {
  expects(count >= 1, "default_macro_sites: need at least one site");
  // Sites ring the area (macro towers are rarely inside a small hotspot).
  std::vector<geo::Vec3> sites;
  const geo::Vec2 c = area.center();
  const double r = 0.75 * std::max(area.width(), area.height());
  for (int i = 0; i < count; ++i) {
    const double ang = 2.0 * M_PI * i / count + 0.4;
    sites.push_back({c.x + r * std::cos(ang), c.y + r * std::sin(ang), height_m});
  }
  return sites;
}

geo::Vec2 ecid_localize(geo::Vec3 serving_site, geo::Vec3 ue_true, geo::Rect area,
                        const EcidConfig& config, std::mt19937_64& rng) {
  std::normal_distribution<double> noise(0.0, config.ta_noise_m);
  const double range = serving_site.dist(ue_true) + noise(rng);
  // Quantize to the TA step and pick an unknown azimuth: with one omni cell
  // that's all E-CID knows.
  const double quantized =
      std::max(0.0, std::round(range / kTimingAdvanceStepM) * kTimingAdvanceStepM);
  std::uniform_real_distribution<double> azimuth(0.0, 2.0 * M_PI);
  const double a = azimuth(rng);
  const geo::Vec2 guess{serving_site.x + quantized * std::cos(a),
                        serving_site.y + quantized * std::sin(a)};
  return area.clamp(guess);
}

FingerprintDatabase::FingerprintDatabase(const rf::ChannelModel& channel,
                                         const rf::LinkBudget& budget,
                                         std::vector<geo::Vec3> sites, geo::Rect area,
                                         const FingerprintConfig& config, std::uint64_t seed)
    : channel_(channel), budget_(budget), sites_(std::move(sites)), config_(config) {
  expects(!sites_.empty(), "FingerprintDatabase: need at least one site");
  expects(config.grid_m > 0.0, "FingerprintDatabase: grid must be positive");
  std::mt19937_64 rng(seed);
  for (double y = area.min.y + config.grid_m / 2.0; y < area.max.y; y += config.grid_m) {
    for (double x = area.min.x + config.grid_m / 2.0; x < area.max.x; x += config.grid_m) {
      Entry e;
      e.position = {x, y};
      e.rss_dbm = measure(geo::Vec3{e.position, 1.5}, config.train_noise_db, rng);
      entries_.push_back(std::move(e));
    }
  }
}

std::vector<double> FingerprintDatabase::measure(geo::Vec3 ue, double noise_db,
                                                 std::mt19937_64& rng) const {
  std::normal_distribution<double> noise(0.0, noise_db);
  std::vector<double> rss;
  rss.reserve(sites_.size());
  for (const geo::Vec3& site : sites_)
    rss.push_back(budget_.rss_dbm(channel_.path_loss_db(site, ue)) + noise(rng));
  return rss;
}

geo::Vec2 FingerprintDatabase::localize(geo::Vec3 ue_true, std::mt19937_64& rng) const {
  const std::vector<double> query = measure(ue_true, config_.query_noise_db, rng);
  // Weighted k-NN in RSS space.
  struct Scored {
    double d2;
    geo::Vec2 position;
  };
  std::vector<Scored> scored;
  scored.reserve(entries_.size());
  for (const Entry& e : entries_) {
    double d2 = 0.0;
    for (std::size_t s = 0; s < query.size(); ++s)
      d2 += (query[s] - e.rss_dbm[s]) * (query[s] - e.rss_dbm[s]);
    scored.push_back({d2, e.position});
  }
  const int k = std::min<int>(config_.k_neighbors, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const Scored& a, const Scored& b) { return a.d2 < b.d2; });
  geo::Vec2 sum{};
  double wsum = 0.0;
  for (int i = 0; i < k; ++i) {
    const double w = 1.0 / (1.0 + scored[static_cast<std::size_t>(i)].d2);
    sum += scored[static_cast<std::size_t>(i)].position * w;
    wsum += w;
  }
  return sum / wsum;
}

geo::Vec2 tdoa_localize(const std::vector<geo::Vec3>& sites, geo::Vec3 ue_true, geo::Rect area,
                        const TdoaConfig& config, std::mt19937_64& rng) {
  expects(sites.size() >= 3, "tdoa_localize: need at least 3 sites");
  // Observed arrival times: true ToF + per-site clock error + noise.
  std::normal_distribution<double> sync(0.0, config.sync_error_ns * 1e-9);
  std::normal_distribution<double> toa(0.0, config.toa_noise_ns * 1e-9);
  std::vector<double> arrival(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    arrival[i] = sites[i].dist(ue_true) / rf::kSpeedOfLight + sync(rng) + toa(rng);

  // Grid search on the squared TDoA residuals relative to site 0.
  geo::Vec2 best = area.center();
  double best_cost = std::numeric_limits<double>::infinity();
  for (int gy = 0; gy < config.grid; ++gy) {
    for (int gx = 0; gx < config.grid; ++gx) {
      const geo::Vec2 p{area.min.x + (gx + 0.5) / config.grid * area.width(),
                        area.min.y + (gy + 0.5) / config.grid * area.height()};
      const geo::Vec3 cand{p, ue_true.z};
      double cost = 0.0;
      const double d0 = sites[0].dist(cand);
      for (std::size_t i = 1; i < sites.size(); ++i) {
        const double model = (sites[i].dist(cand) - d0) / rf::kSpeedOfLight;
        const double obs = arrival[i] - arrival[0];
        cost += (model - obs) * (model - obs);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = p;
      }
    }
  }
  return best;
}

}  // namespace skyran::localization
