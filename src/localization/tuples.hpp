// GPS-ToF tuples: the paper's localization primitive (Sec 3.2.2). Each tuple
// pairs a (noisy) UAV GPS fix with the mean of the SRS ToF ranges measured
// between that fix and the next, expressed as a distance that still contains
// the unknown constant processing offset.
#pragma once

#include <vector>

#include "geo/vec.hpp"

namespace skyran::localization {

struct GpsTofTuple {
  double time_s = 0.0;
  geo::Vec3 uav_position;   ///< GPS-reported UAV position
  double range_m = 0.0;     ///< ToF distance = true range + offset + noise
};

using GpsTofSeries = std::vector<GpsTofTuple>;

}  // namespace skyran::localization
