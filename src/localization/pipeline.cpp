#include "localization/pipeline.hpp"

#include <cmath>

#include "geo/contract.hpp"
#include "rf/units.hpp"

namespace skyran::localization {

GpsTofSeries collect_gps_tof(const std::vector<uav::FlightSample>& flight, geo::Vec3 ue_position,
                             const rf::ChannelModel& channel, const LosOracle& los,
                             const rf::LinkBudget& budget, uav::GpsSensor& gps,
                             const RangingConfig& config, std::mt19937_64& rng) {
  expects(flight.size() >= 2, "collect_gps_tof: need at least two flight samples");
  expects(config.srs_rate_hz >= config.gps_rate_hz,
          "collect_gps_tof: SRS must report at least as fast as GPS");

  const lte::SrsSymbol tx = lte::make_srs_symbol(config.srs);
  const lte::TofEstimator estimator(config.srs, config.k_factor);
  const int srs_per_gps =
      std::max(1, static_cast<int>(std::round(config.srs_rate_hz / config.gps_rate_hz)));

  GpsTofSeries out;
  out.reserve(flight.size());
  for (std::size_t i = 0; i + 1 < flight.size(); ++i) {
    const uav::FlightSample& a = flight[i];
    const uav::FlightSample& b = flight[i + 1];

    double tof_distance_sum = 0.0;
    int tof_count = 0;
    for (int m = 0; m < srs_per_gps; ++m) {
      // UAV keeps moving between SRS reports: interpolate the true position.
      const double frac = static_cast<double>(m) / srs_per_gps;
      const geo::Vec3 uav_true = a.position + (b.position - a.position) * frac;
      const double true_range = uav_true.dist(ue_position);

      const double path_loss = channel.path_loss_db(uav_true, ue_position);
      const double snr_db = budget.snr_db(path_loss);
      if (snr_db < config.min_snr_db) continue;  // decoder lost the symbol

      lte::SrsChannelParams ch;
      ch.delay_s = (true_range + config.processing_offset_m) / rf::kSpeedOfLight;
      ch.snr_db = snr_db;
      if (!los.line_of_sight(uav_true, ue_position)) {
        ch.taps = lte::make_nlos_taps(config.nlos_taps, config.nlos_mean_excess_ns * 1e-9,
                                      config.nlos_first_tap_power_db,
                                      config.nlos_tap_decay_db, rng);
      }
      const lte::SrsSymbol rx = lte::apply_srs_channel(tx, ch, rng);
      tof_distance_sum += estimator.estimate(rx).distance_m;
      ++tof_count;
    }
    if (tof_count == 0) continue;

    const uav::GpsFix fix = gps.sample(a.position, a.time_s);
    if (!fix.valid) continue;  // outage: a ToF without a position is useless
    out.push_back({fix.time_s, fix.position, tof_distance_sum / tof_count});
  }
  return out;
}

}  // namespace skyran::localization
