#include "localization/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"
#include "obs/obs.hpp"
#include "rf/units.hpp"

namespace skyran::localization {

GpsTofSeries collect_gps_tof(const std::vector<uav::FlightSample>& flight, geo::Vec3 ue_position,
                             const rf::ChannelModel& channel, const LosOracle& los,
                             const rf::LinkBudget& budget, uav::GpsSensor& gps,
                             const RangingConfig& config, std::mt19937_64& rng,
                             RangingFaultModel* faults) {
  expects(config.srs_rate_hz >= config.gps_rate_hz,
          "collect_gps_tof: SRS must report at least as fast as GPS");
  // An empty or single-point flight has zero measurement intervals. Bail out
  // before the interval count below: `flight.size() - 1` on a std::size_t
  // would underflow an empty flight to ~2^64 intervals. Depot-swapped UAVs
  // (scenario campaigns) legitimately produce zero-length flights.
  if (flight.size() < 2) return {};

  const lte::SrsSymbol tx = lte::make_srs_symbol(config.srs);
  const lte::TofEstimator estimator(config.srs, config.k_factor, 0.0, 0.6, true,
                                    config.min_peak_to_side_db);
  const int srs_per_gps =
      std::max(1, static_cast<int>(std::round(config.srs_rate_hz / config.gps_rate_hz)));

  // The flight is processed in bounded batches of GPS intervals so peak
  // memory stays capped (each buffered symbol is fft_size complex doubles; a
  // whole long flight would be hundreds of MB). Three phases per batch keep
  // the output bit-identical to a fully serial sweep: (1) synthesize the
  // batch's received symbols in flight order (the channel/noise RNG stream is
  // strictly sequential), (2) cross-correlate the batch in parallel (each
  // symbol's estimate is independent of the others, so batch boundaries
  // cannot change it), (3) aggregate per GPS interval in interval order,
  // consuming the GPS sensor serially. Phases never overlap across batches,
  // so every RNG/sensor draw happens in the same order as the serial sweep.
  constexpr std::size_t kBatchSymbolBudget = 512;
  const std::size_t batch_intervals =
      std::max<std::size_t>(1, kBatchSymbolBudget / static_cast<std::size_t>(srs_per_gps));
  const std::size_t n_intervals = flight.size() - 1;

  SKYRAN_TRACE_SPAN("loc.collect_gps_tof");
  std::uint64_t dropped_low_snr = 0;
  std::uint64_t gps_outages = 0;
  std::uint64_t fault_symbols_lost = 0;
  std::uint64_t fault_gps_outages = 0;
  std::uint64_t gated_low_quality = 0;
  GpsTofSeries out;
  out.reserve(flight.size());
  std::vector<lte::SrsSymbol> received;
  std::vector<std::size_t> received_interval;  // interval index relative to `base`
  for (std::size_t base = 0; base < n_intervals; base += batch_intervals) {
    const std::size_t last = std::min(n_intervals, base + batch_intervals);
    received.clear();
    received_interval.clear();
    for (std::size_t i = base; i < last; ++i) {
      const uav::FlightSample& a = flight[i];
      const uav::FlightSample& b = flight[i + 1];
      for (int m = 0; m < srs_per_gps; ++m) {
        // UAV keeps moving between SRS reports: interpolate the true position.
        const double frac = static_cast<double>(m) / srs_per_gps;
        const geo::Vec3 uav_true = a.position + (b.position - a.position) * frac;
        const double true_range = uav_true.dist(ue_position);
        const double symbol_time_s = a.time_s + frac * (b.time_s - a.time_s);

        if (faults != nullptr && faults->srs_symbol_lost(symbol_time_s)) {
          ++fault_symbols_lost;
          continue;
        }
        const double path_loss = channel.path_loss_db(uav_true, ue_position);
        double snr_db = budget.snr_db(path_loss);
        if (faults != nullptr) snr_db -= faults->srs_snr_sag_db(symbol_time_s);
        if (snr_db < config.min_snr_db) {  // decoder lost the symbol
          ++dropped_low_snr;
          continue;
        }

        lte::SrsChannelParams ch;
        ch.delay_s = (true_range + config.processing_offset_m) / rf::kSpeedOfLight;
        ch.snr_db = snr_db;
        if (!los.line_of_sight(uav_true, ue_position)) {
          ch.taps = lte::make_nlos_taps(config.nlos_taps, config.nlos_mean_excess_ns * 1e-9,
                                        config.nlos_first_tap_power_db,
                                        config.nlos_tap_decay_db, rng);
        }
        received.push_back(lte::apply_srs_channel(tx, ch, rng));
        received_interval.push_back(i - base);
      }
    }

    const std::vector<lte::TofEstimate> estimates = estimator.estimate_batch(received);

    std::vector<double> distance_sums(last - base, 0.0);
    std::vector<int> tof_counts(last - base, 0);
    for (std::size_t s = 0; s < estimates.size(); ++s) {
      if (!estimates[s].quality_ok) {  // gate: flat/noisy correlation peak
        ++gated_low_quality;
        continue;
      }
      distance_sums[received_interval[s]] += estimates[s].distance_m;
      ++tof_counts[received_interval[s]];
    }

    for (std::size_t i = base; i < last; ++i) {
      if (tof_counts[i - base] == 0) continue;
      const uav::FlightSample& a = flight[i];
      if (faults != nullptr && faults->gps_forced_outage(a.time_s) && !gps.in_outage()) {
        // Scripted outage window: drive the sensor's own outage machinery so
        // the fix below follows the exact last-valid-position semantics.
        gps.force_outage_for(1);
        ++fault_gps_outages;
      }
      const uav::GpsFix fix = gps.sample(a.position, a.time_s);
      if (!fix.valid) {  // outage: a ToF without a position is useless
        ++gps_outages;
        continue;
      }
      out.push_back({fix.time_s, fix.position, distance_sums[i - base] / tof_counts[i - base]});
    }
  }
  SKYRAN_COUNTER_ADD("loc.srs.dropped_low_snr", dropped_low_snr);
  SKYRAN_COUNTER_ADD("loc.gps.outages", gps_outages);
  SKYRAN_COUNTER_ADD("loc.tof.gated_low_quality", gated_low_quality);
  SKYRAN_COUNTER_ADD("fault.srs.symbols_lost", fault_symbols_lost);
  SKYRAN_COUNTER_ADD("fault.gps.forced_outages", fault_gps_outages);
  SKYRAN_COUNTER_ADD("loc.tuples.collected", out.size());
  SKYRAN_HISTOGRAM_OBSERVE("loc.tuples.per_flight", out.size());
  return out;
}

}  // namespace skyran::localization
