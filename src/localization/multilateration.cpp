#include "localization/multilateration.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <random>

#include "geo/contract.hpp"
#include "geo/stats.hpp"
#include "obs/obs.hpp"

namespace skyran::localization {

namespace {

struct FitState {
  geo::Vec2 u;
  double b = 0.0;
};

double huber_weight(double r, double delta) {
  const double ar = std::abs(r);
  return ar <= delta ? 1.0 : delta / ar;
}

double rms_residual(std::span<const GpsTofTuple> tuples, const FitState& s, double ue_z) {
  double sq = 0.0;
  for (const GpsTofTuple& t : tuples) {
    const double r = t.uav_position.dist(geo::Vec3{s.u, ue_z}) + s.b - t.range_m;
    sq += r * r;
  }
  return std::sqrt(sq / static_cast<double>(tuples.size()));
}

/// Robust per-UE cost: median absolute residual (insensitive to NLOS
/// outlier tuples).
double median_abs_residual(std::span<const GpsTofTuple> tuples, const FitState& s,
                           double ue_z) {
  std::vector<double> abs_r;
  abs_r.reserve(tuples.size());
  for (const GpsTofTuple& t : tuples)
    abs_r.push_back(
        std::abs(t.uav_position.dist(geo::Vec3{s.u, ue_z}) + s.b - t.range_m));
  return geo::median(abs_r);
}

/// Median of (range - distance) over tuples: the L1-optimal constant offset
/// for a candidate position.
double median_excess(std::span<const GpsTofTuple> tuples, geo::Vec2 u, double ue_z) {
  std::vector<double> excess;
  excess.reserve(tuples.size());
  for (const GpsTofTuple& t : tuples)
    excess.push_back(t.range_m - t.uav_position.dist(geo::Vec3{u, ue_z}));
  std::nth_element(excess.begin(), excess.begin() + excess.size() / 2, excess.end());
  return excess[excess.size() / 2];
}

/// Solve the n x n system A x = b in place by Gaussian elimination with
/// partial pivoting (n <= 3 here). Returns false when singular.
template <int N>
bool solve_dense(std::array<std::array<double, N>, N> a, std::array<double, N> b,
                 std::array<double, N>& x) {
  for (int col = 0; col < N; ++col) {
    int pivot = col;
    for (int r = col + 1; r < N; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (int r = col + 1; r < N; ++r) {
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < N; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (int r = N - 1; r >= 0; --r) {
    double s = b[r];
    for (int c = r + 1; c < N; ++c) s -= a[r][c] * x[c];
    x[r] = s / a[r][r];
  }
  return true;
}

/// Gauss-Newton with Huber weights from one start. When `fit_offset` is
/// false, b stays fixed and only (x, y) is solved (2x2 system).
MultilaterationResult fit_from(std::span<const GpsTofTuple> tuples, FitState s, geo::Rect area,
                               double ue_z, bool fit_offset,
                               const MultilaterationOptions& opt) {
  MultilaterationResult out;
  for (int it = 0; it < opt.max_iterations; ++it) {
    std::array<std::array<double, 3>, 3> jtj{};
    std::array<double, 3> jtr{};
    for (const GpsTofTuple& t : tuples) {
      const geo::Vec3 ue{s.u, ue_z};
      const double dist = std::max(1e-6, t.uav_position.dist(ue));
      const double r = dist + s.b - t.range_m;
      const double w = huber_weight(r, opt.huber_delta_m);
      const std::array<double, 3> j{(s.u.x - t.uav_position.x) / dist,
                                    (s.u.y - t.uav_position.y) / dist, 1.0};
      const int dims = fit_offset ? 3 : 2;
      for (int a = 0; a < dims; ++a) {
        for (int c = 0; c < dims; ++c) jtj[a][c] += w * j[a] * j[c];
        jtr[a] += w * j[a] * r;
      }
    }

    double step_norm = 0.0;
    if (fit_offset) {
      for (int a = 0; a < 3; ++a) jtj[a][a] += 1e-6;  // Levenberg damping
      std::array<double, 3> step{};
      if (!solve_dense<3>(jtj, jtr, step)) break;
      s.u.x -= step[0];
      s.u.y -= step[1];
      s.b -= step[2];
      step_norm = std::sqrt(step[0] * step[0] + step[1] * step[1] + step[2] * step[2]);
    } else {
      std::array<std::array<double, 2>, 2> a2{{{jtj[0][0] + 1e-6, jtj[0][1]},
                                               {jtj[1][0], jtj[1][1] + 1e-6}}};
      std::array<double, 2> b2{jtr[0], jtr[1]};
      std::array<double, 2> step{};
      if (!solve_dense<2>(a2, b2, step)) break;
      s.u.x -= step[0];
      s.u.y -= step[1];
      step_norm = std::sqrt(step[0] * step[0] + step[1] * step[1]);
    }
    s.u = area.clamp(s.u);
    out.iterations = it + 1;
    if (step_norm < opt.convergence_m) {
      out.converged = true;
      break;
    }
  }
  out.position = s.u;
  out.offset_m = s.b;
  out.rms_residual_m = rms_residual(tuples, s, ue_z);
  return out;
}

/// Grid of candidate starts over the search area, scored by robust cost.
std::vector<FitState> grid_starts(std::span<const GpsTofTuple> tuples, geo::Rect area,
                                  double ue_z, std::optional<double> fixed_b,
                                  std::size_t keep) {
  struct Scored {
    FitState state;
    double cost;
  };
  std::vector<Scored> scored;
  constexpr int kGrid = 15;
  scored.reserve(kGrid * kGrid);
  for (int gy = 0; gy < kGrid; ++gy) {
    for (int gx = 0; gx < kGrid; ++gx) {
      FitState s;
      s.u = {area.min.x + (gx + 0.5) / kGrid * area.width(),
             area.min.y + (gy + 0.5) / kGrid * area.height()};
      s.b = fixed_b ? *fixed_b : median_excess(tuples, s.u, ue_z);
      scored.push_back({s, median_abs_residual(tuples, s, ue_z)});
    }
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.cost < b.cost; });
  std::vector<FitState> out;
  for (std::size_t i = 0; i < std::min(keep, scored.size()); ++i)
    out.push_back(scored[i].state);
  return out;
}

MultilaterationResult best_fit(std::span<const GpsTofTuple> tuples, geo::Rect area,
                               double ue_z, std::optional<double> fixed_b,
                               const MultilaterationOptions& options) {
  expects(tuples.size() >= 4, "multilaterate: need at least 4 GPS-ToF tuples");
  expects(options.restarts >= 1, "multilaterate: need at least one start");
  const std::vector<FitState> starts =
      grid_starts(tuples, area, ue_z, fixed_b, static_cast<std::size_t>(options.restarts));

  MultilaterationResult best;
  bool have_best = false;
  double best_cost = 0.0;
  for (const FitState& s : starts) {
    const MultilaterationResult candidate =
        fit_from(tuples, s, area, ue_z, !fixed_b.has_value(), options);
    const double cost = median_abs_residual(
        tuples, FitState{candidate.position, candidate.offset_m}, ue_z);
    if (!have_best || cost < best_cost) {
      best = candidate;
      best_cost = cost;
      have_best = true;
    }
  }
  return best;
}

}  // namespace

MultilaterationResult multilaterate(std::span<const GpsTofTuple> tuples, geo::Rect search_area,
                                    double ue_altitude_m,
                                    const MultilaterationOptions& options) {
  return best_fit(tuples, search_area, ue_altitude_m, std::nullopt, options);
}

MultilaterationResult multilaterate_fixed_offset(std::span<const GpsTofTuple> tuples,
                                                 geo::Rect search_area, double ue_altitude_m,
                                                 double offset_m,
                                                 const MultilaterationOptions& options) {
  return best_fit(tuples, search_area, ue_altitude_m, offset_m, options);
}

JointMultilaterationResult multilaterate_joint(std::span<const GpsTofSeries> per_ue_tuples,
                                               geo::Rect search_area,
                                               std::span<const double> ue_altitudes_m,
                                               const JointOptions& options) {
  expects(!per_ue_tuples.empty(), "multilaterate_joint: need at least one UE");
  expects(per_ue_tuples.size() == ue_altitudes_m.size(),
          "multilaterate_joint: one altitude per UE required");
  expects(options.coarse_step_m > 0.0 && options.fine_step_m > 0.0,
          "multilaterate_joint: steps must be positive");
  expects(options.offset_max_m > options.offset_min_m,
          "multilaterate_joint: empty offset range");
  SKYRAN_TRACE_SPAN("loc.mlat.joint");

  // Per (UE, grid candidate): robust statistics of excess = range - distance.
  // For any shared offset b, the candidate's misfit is approximately
  // sqrt(spread^2 + (b - median_excess)^2); scanning b over these cached
  // statistics is O(#UE x #grid) per step instead of a full re-fit.
  constexpr int kGrid = 17;
  struct CandStat {
    double median_excess = 0.0;
    double mad = 0.0;  // median absolute deviation around the median
  };
  std::vector<std::vector<CandStat>> stats(per_ue_tuples.size());
  std::vector<bool> usable(per_ue_tuples.size(), false);
  std::size_t n_usable = 0;
  std::vector<double> scratch;
  for (std::size_t u = 0; u < per_ue_tuples.size(); ++u) {
    if (per_ue_tuples[u].size() < 4) continue;
    usable[u] = true;
    ++n_usable;
    stats[u].resize(kGrid * kGrid);
    for (int gy = 0; gy < kGrid; ++gy) {
      for (int gx = 0; gx < kGrid; ++gx) {
        const geo::Vec2 p{search_area.min.x + (gx + 0.5) / kGrid * search_area.width(),
                          search_area.min.y + (gy + 0.5) / kGrid * search_area.height()};
        scratch.clear();
        for (const GpsTofTuple& t : per_ue_tuples[u])
          scratch.push_back(t.range_m -
                            t.uav_position.dist(geo::Vec3{p, ue_altitudes_m[u]}));
        const double med = geo::median(scratch);
        for (double& v : scratch) v = std::abs(v - med);
        stats[u][gy * kGrid + gx] = {med, geo::median(scratch)};
      }
    }
  }
  expects(n_usable > 0, "multilaterate_joint: no UE has enough tuples");

  const auto cost_for_offset = [&](double b) {
    double total = 0.0;
    for (std::size_t u = 0; u < per_ue_tuples.size(); ++u) {
      if (!usable[u]) continue;
      double best = std::numeric_limits<double>::infinity();
      for (const CandStat& s : stats[u]) {
        const double miss = b - s.median_excess;
        best = std::min(best, std::sqrt(s.mad * s.mad + miss * miss));
      }
      total += best;
    }
    if (options.offset_prior_sigma_m > 0.0) {
      const double z = (b - options.offset_prior_m) / options.offset_prior_sigma_m;
      total += static_cast<double>(n_usable) * 0.5 * z * z;
    }
    return total;
  };

  double best_b = options.offset_min_m;
  double best_cost = cost_for_offset(best_b);
  for (double b = options.offset_min_m; b <= options.offset_max_m;
       b += options.fine_step_m) {
    const double c = cost_for_offset(b);
    if (c < best_cost) {
      best_cost = c;
      best_b = b;
    }
  }

  // Final per-UE fits at the chosen shared offset.
  JointMultilaterationResult out;
  out.shared_offset_m = best_b;
  out.total_cost_m = best_cost;
  for (std::size_t u = 0; u < per_ue_tuples.size(); ++u) {
    if (!usable[u]) {
      out.per_ue.push_back(MultilaterationResult{});
      continue;
    }
    out.per_ue.push_back(multilaterate_fixed_offset(per_ue_tuples[u], search_area,
                                                    ue_altitudes_m[u], best_b,
                                                    options.per_ue));
    SKYRAN_HISTOGRAM_OBSERVE("loc.mlat.iterations", out.per_ue.back().iterations);
  }
  return out;
}

}  // namespace skyran::localization
