// End-to-end ranging pipeline (paper Fig. 10 steps 1-3): fly a trajectory,
// receive 100 Hz SRS per UE, estimate per-symbol ToF by correlation, average
// the M ToF values between consecutive 50 Hz GPS fixes, and emit GPS-ToF
// tuples. The SRS channel is driven by the ground-truth propagation model:
// LOS links get clean AWGN symbols, NLOS links get multipath echoes, which
// reproduces the paper's 5 ns (LOS) vs 25 ns (NLOS) ToF noise.
#pragma once

#include <cstdint>
#include <random>

#include "localization/tuples.hpp"
#include "lte/ranging.hpp"
#include "lte/srs_channel.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"
#include "uav/flight.hpp"
#include "uav/gps.hpp"

namespace skyran::localization {

struct RangingConfig {
  lte::SrsConfig srs{};
  int k_factor = 4;  ///< SRS upsampling factor (paper uses 4)
  /// Constant onboard processing delay expressed as distance; unknown to the
  /// solver (it estimates it as the offset `b`).
  double processing_offset_m = 40.0;
  double srs_rate_hz = 100.0;
  double gps_rate_hz = 50.0;
  /// SRS reports below this SNR are discarded. The correlator enjoys the
  /// sequence's processing gain (~25 dB for 288 REs), so ranging works well
  /// below the data-decode threshold.
  double min_snr_db = -10.0;
  /// Correlation quality gate: per-symbol ToF estimates whose
  /// peak-to-sidelobe ratio falls below this many dB are dropped before the
  /// per-interval average (they carry no delay information, only bias). 0
  /// disables the gate, which keeps the legacy zero-fault path bit-identical.
  double min_peak_to_side_db = 0.0;
  /// NLOS echo profile parameters (echoes below the direct path; they widen
  /// the ToF spread to the ~25 ns the paper reports without biasing the
  /// median, matching Fig. 17's environment-independent ranging accuracy).
  int nlos_taps = 3;
  double nlos_mean_excess_ns = 50.0;
  double nlos_first_tap_power_db = -4.0;
  double nlos_tap_decay_db = 4.0;
};

/// Whether a UE is reachable by a direct ray from a UAV position; feeds the
/// multipath decision. Provided by RayTraceChannel in practice.
class LosOracle {
 public:
  virtual ~LosOracle() = default;
  virtual bool line_of_sight(geo::Vec3 uav, geo::Vec3 ue) const = 0;
};

/// Scripted degradation applied to the ranging pipeline (fault injection).
/// Implemented by sim::FaultInjector; defined here (like LosOracle) so the
/// localization layer stays independent of the simulation layer. Times are
/// seconds of epoch flight time (the localization flight starts at t = 0).
class RangingFaultModel {
 public:
  virtual ~RangingFaultModel() = default;
  /// The SRS symbol transmitted at time `t` never reaches the correlator
  /// (deep fade / interference burst). May draw from the injector's RNG, so
  /// callers must query symbols in flight order.
  virtual bool srs_symbol_lost(double t) = 0;
  /// dB subtracted from the received SRS SNR at time `t`.
  virtual double srs_snr_sag_db(double t) const = 0;
  /// True while a scripted GPS outage window covers time `t`.
  virtual bool gps_forced_outage(double t) const = 0;
};

/// LosOracle over a ray-traced channel.
class ChannelLosOracle final : public LosOracle {
 public:
  explicit ChannelLosOracle(const rf::RayTraceChannel& channel) : channel_(channel) {}
  bool line_of_sight(geo::Vec3 uav, geo::Vec3 ue) const override {
    return channel_.line_of_sight(uav, ue);
  }

 private:
  const rf::RayTraceChannel& channel_;
};

/// Collect GPS-ToF tuples for one UE over a flown trajectory.
///
/// `flight` must be sampled at the GPS rate (uav::fly with dt = 1/gps_rate).
/// A flight with fewer than two samples has no measurement interval and
/// yields an empty series — legitimate for a UAV that spent the whole epoch
/// at the depot (battery swap) or had its tour truncated to nothing.
/// `channel` provides true path losses (for SRS SNR); `los` drives the
/// multipath profile; `gps` adds receiver position noise. `faults`, when
/// non-null, injects scripted SRS loss / SNR sag / GPS outage windows; the
/// pipeline degrades by dropping the affected tuples (never by aborting).
GpsTofSeries collect_gps_tof(const std::vector<uav::FlightSample>& flight, geo::Vec3 ue_position,
                             const rf::ChannelModel& channel, const LosOracle& los,
                             const rf::LinkBudget& budget, uav::GpsSensor& gps,
                             const RangingConfig& config, std::mt19937_64& rng,
                             RangingFaultModel* faults = nullptr);

}  // namespace skyran::localization
