// Baseline UE localization techniques from the paper's related-work
// comparison (Sec 2.4, Sec 6): macro-cell methods achieve 40-100+ m, an
// order of magnitude worse than SkyRAN's flight-aperture multilateration.
//
//  - E-CID: serving-cell identity plus LTE Timing Advance. With a single
//    omni cell the azimuth is unknown: the estimate collapses to a point on
//    the TA ring (TA quantization is 16 Ts ~ 78 m).
//  - RSS fingerprinting: an offline war-driving database of per-tower RSS
//    vectors on a coarse grid, matched online by weighted k-NN.
//  - UL-TDoA: hyperbolic positioning across several macro eNodeBs whose
//    clocks are only loosely synchronized (the paper: "assume features such
//    as clock synchronization across macro cells" that UAV RANs lack).
//
// All three run against the same ground-truth channel as SkyRAN so the
// comparison in bench/ablation_localization_baselines.cpp is apples to
// apples.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "rf/channel.hpp"
#include "rf/link.hpp"
#include "geo/rect.hpp"

namespace skyran::localization {

/// LTE Timing Advance granularity (16 Ts at 30.72 MHz) expressed as
/// one-way distance.
inline constexpr double kTimingAdvanceStepM = 78.12;

/// Fixed macro sites placed around the operating area.
std::vector<geo::Vec3> default_macro_sites(geo::Rect area, int count = 3,
                                           double height_m = 30.0);

struct EcidConfig {
  double ta_noise_m = 30.0;  ///< TA estimation noise before quantization
};

/// E-CID with a single serving cell: range from quantized TA, azimuth
/// unknown (drawn uniformly). Returns the position estimate.
geo::Vec2 ecid_localize(geo::Vec3 serving_site, geo::Vec3 ue_true, geo::Rect area,
                        const EcidConfig& config, std::mt19937_64& rng);

struct FingerprintConfig {
  double grid_m = 20.0;        ///< war-driving grid pitch
  double train_noise_db = 3.0; ///< shadow/noise when the database was built
  double query_noise_db = 3.0; ///< noise on the online measurement
  int k_neighbors = 4;
};

/// RSS fingerprint database over `area` for the given macro sites.
class FingerprintDatabase {
 public:
  FingerprintDatabase(const rf::ChannelModel& channel, const rf::LinkBudget& budget,
                      std::vector<geo::Vec3> sites, geo::Rect area,
                      const FingerprintConfig& config, std::uint64_t seed);

  /// Localize a UE from its (noisy) per-site RSS vector.
  geo::Vec2 localize(geo::Vec3 ue_true, std::mt19937_64& rng) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    geo::Vec2 position;
    std::vector<double> rss_dbm;
  };
  std::vector<double> measure(geo::Vec3 ue, double noise_db, std::mt19937_64& rng) const;

  const rf::ChannelModel& channel_;
  rf::LinkBudget budget_;
  std::vector<geo::Vec3> sites_;
  FingerprintConfig config_;
  std::vector<Entry> entries_;
};

struct TdoaConfig {
  double sync_error_ns = 100.0;  ///< inter-site clock error (1 sigma)
  double toa_noise_ns = 30.0;    ///< per-measurement ToA noise
  int grid = 40;                 ///< hyperbolic grid-search resolution
};

/// UL-TDoA across macro sites: grid search minimizing squared range-
/// difference residuals.
geo::Vec2 tdoa_localize(const std::vector<geo::Vec3>& sites, geo::Vec3 ue_true,
                        geo::Rect area, const TdoaConfig& config, std::mt19937_64& rng);

}  // namespace skyran::localization
