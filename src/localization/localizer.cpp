#include "localization/localizer.hpp"

#include "geo/contract.hpp"
#include "obs/obs.hpp"
#include "uav/trajectory.hpp"

namespace skyran::localization {

UeLocalizer::UeLocalizer(const rf::RayTraceChannel& channel, rf::LinkBudget budget,
                         LocalizerConfig config)
    : channel_(channel), budget_(budget), config_(config) {
  expects(config.flight_length_m > 0.0, "UeLocalizer: flight length must be positive");
}

LocalizationRun UeLocalizer::localize(geo::Vec2 start, std::vector<geo::Vec3> true_ue_positions,
                                      std::uint64_t seed, RangingFaultModel* faults) const {
  const geo::Rect area = channel_.terrain().area();
  expects(area.contains(start), "UeLocalizer::localize: start must be inside the area");
  SKYRAN_TRACE_SPAN("loc.localize");

  const geo::Path track = uav::random_walk(area.inflated(-5.0), area.inflated(-5.0).clamp(start),
                                           config_.flight_length_m, config_.flight_leg_m, seed);
  const uav::FlightPlan plan =
      uav::FlightPlan::at_altitude(track, config_.flight_altitude_m, config_.cruise_mps);
  const std::vector<uav::FlightSample> samples =
      uav::fly(plan, 1.0 / config_.ranging.gps_rate_hz);

  const ChannelLosOracle los(channel_);
  LocalizationRun run;
  run.flight_length_m = plan.length_m();
  run.flight_duration_s = plan.duration_s();
  run.estimates.reserve(true_ue_positions.size());

  // Collect GPS-ToF tuples for every UE over the same flight, then solve all
  // UEs jointly: the ToF processing offset is one constant of the payload,
  // and sharing it across UEs breaks the per-UE radial degeneracy that a
  // short flight aperture leaves.
  std::mt19937_64 rng(seed ^ 0x10ca112eULL);
  std::vector<GpsTofSeries> per_ue_tuples;
  std::vector<double> ue_altitudes;
  per_ue_tuples.reserve(true_ue_positions.size());
  ue_altitudes.reserve(true_ue_positions.size());
  for (std::size_t i = 0; i < true_ue_positions.size(); ++i) {
    uav::GpsSensor gps(seed ^ (0x9125ULL + i), config_.gps_sigma_m);
    if (config_.gps_outage_probability > 0.0)
      gps.set_outage_model(config_.gps_outage_probability, config_.gps_outage_mean_samples);
    per_ue_tuples.push_back(collect_gps_tof(samples, true_ue_positions[i], channel_, los,
                                            budget_, gps, config_.ranging, rng, faults));
    ue_altitudes.push_back(true_ue_positions[i].z);
  }

  JointOptions joint;
  joint.per_ue = config_.solver;
  joint.per_ue.seed = seed ^ 0x51ab5ULL;
  // Degraded path: when no UE kept enough tuples (total SRS loss, a GPS
  // outage covering the flight, the quality gate rejecting everything), the
  // joint solver has nothing to share an offset over. Skip it and report
  // every UE as not localized rather than tripping its contract.
  std::size_t usable_ues = 0;
  for (const GpsTofSeries& t : per_ue_tuples)
    if (t.size() >= 4) ++usable_ues;
  JointMultilaterationResult fit;
  fit.per_ue.resize(true_ue_positions.size());
  if (usable_ues > 0) {
    fit = multilaterate_joint(per_ue_tuples, area, ue_altitudes, joint);
  } else {
    SKYRAN_COUNTER_INC("fault.loc.no_usable_ue");
  }

  for (std::size_t i = 0; i < true_ue_positions.size(); ++i) {
    UeLocationEstimate est;
    if (usable_ues > 0 && per_ue_tuples[i].size() >= 4) {
      est.position = fit.per_ue[i].position;
      est.offset_m = fit.per_ue[i].offset_m;
      est.rms_residual_m = fit.per_ue[i].rms_residual_m;
      est.valid = true;
      SKYRAN_COUNTER_INC("loc.ue.localized");
      SKYRAN_HISTOGRAM_OBSERVE("loc.mlat.rms_residual_m", est.rms_residual_m);
    } else {
      SKYRAN_COUNTER_INC("loc.ue.undecodable");
    }
    run.estimates.push_back(est);
  }
  SKYRAN_GAUGE_SET("loc.mlat.shared_offset_m", fit.shared_offset_m);
  return run;
}

}  // namespace skyran::localization
