// Baseline placement schemes from the paper's evaluation (Sec 4.2):
// UNIFORM - no UE locations; zigzag measurement sweep, REM-based placement.
// CENTROID - UE locations only; hover over their centroid, no REMs.
// RANDOM - neither; hover at a random position (lower bound).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rem/placement.hpp"
#include "rem/rem.hpp"
#include "sim/measurement.hpp"
#include "sim/world.hpp"

namespace skyran::sim {

struct SchemeResult {
  geo::Vec2 position;          ///< chosen UAV ground position
  double altitude_m = 0.0;
  double flight_length_m = 0.0;  ///< measurement overhead spent
  std::vector<rem::Rem> rems;    ///< constructed REMs (empty for non-REM schemes)
};

struct UniformConfig {
  double altitude_m = 60.0;
  double budget_m = 1000.0;      ///< measurement budget (trajectory length)
  double zigzag_spacing_m = 40.0;
  double rem_cell_m = 5.0;       ///< REM raster used by the scheme
  MeasurementConfig measurement{};
  rem::IdwParams idw{8, 2.0, 1e9};  ///< unlimited radius: no location prior
  rem::PlacementObjective objective = rem::PlacementObjective::kMaxMin;
};

/// Zigzag sweep from the SW corner truncated to the budget, REM estimation,
/// max-min placement.
SchemeResult run_uniform(const World& world, const UniformConfig& config, std::uint64_t seed);

/// Hover over the centroid of the (estimated) UE positions.
SchemeResult run_centroid(std::span<const geo::Vec2> ue_positions, double altitude_m,
                          geo::Rect area);

/// Hover at a uniformly random position.
SchemeResult run_random(const World& world, double altitude_m, std::uint64_t seed);

}  // namespace skyran::sim
