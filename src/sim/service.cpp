#include "sim/service.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"
#include "lte/amc.hpp"

namespace skyran::sim {

namespace {

constexpr double kTtiMs = 1.0;

/// Per-UE simulation state across TTIs.
struct UeState {
  std::uint32_t rnti = 0;
  Traffic traffic;
  double backlog_bits = 0.0;
  double arrival_accumulator = 0.0;  ///< fractional CBR arrivals
  double reported_snr_db = 0.0;      ///< what the scheduler believes
  double offered_bits = 0.0;
  double served_bits = 0.0;
  int scheduled_ttis = 0;
  int failed_ttis = 0;
  double queue_delay_sum_ms = 0.0;  ///< backlog-weighted (Little's law)
  double backlog_sum_bits = 0.0;
};

ServiceReport run_service(const World& world,
                          const std::function<geo::Vec3(double)>& position_at,
                          double duration_s, const std::vector<Traffic>& traffic,
                          const ServiceConfig& config, std::mt19937_64& rng) {
  expects(!world.ue_positions().empty(), "run_service: no UEs");
  expects(traffic.size() == world.ue_positions().size(),
          "run_service: one traffic model per UE");
  expects(config.duration_s > 0.0 || duration_s > 0.0, "run_service: duration must be positive");
  expects(config.cqi_period_ms >= kTtiMs, "run_service: CQI period below one TTI");

  std::vector<UeState> ues(traffic.size());
  for (std::size_t i = 0; i < ues.size(); ++i) {
    ues[i].rnti = static_cast<std::uint32_t>(61 + i);
    ues[i].traffic = traffic[i];
  }

  lte::Scheduler scheduler(world.carrier(), config.policy);
  std::normal_distribution<double> unit(0.0, 1.0);
  const int ttis = static_cast<int>(duration_s * 1000.0);
  const int cqi_every = std::max(1, static_cast<int>(config.cqi_period_ms / kTtiMs));
  const double wavelength = rf::kSpeedOfLight / world.channel().frequency_hz();

  double staleness_sum = 0.0;
  std::size_t staleness_n = 0;
  std::vector<double> fade_state(ues.size(), 0.0);
  geo::Vec3 prev_pos = position_at(0.0);

  for (int t = 0; t < ttis; ++t) {
    const double now_s = t * kTtiMs / 1000.0;
    const geo::Vec3 uav = position_at(now_s);

    // AR(1) fast fading with motion-dependent coherence: flying at speed v
    // decorrelates the multipath every lambda/(2v) seconds (Doppler), a
    // hovering cell only drifts slowly.
    const double speed = uav.dist(prev_pos) / (kTtiMs / 1000.0);
    prev_pos = uav;
    const double coherence_s =
        speed > 0.05 ? std::min(config.hover_coherence_s, wavelength / (2.0 * speed))
                     : config.hover_coherence_s;
    const double rho = std::exp(-(kTtiMs / 1000.0) / std::max(1e-4, coherence_s));
    for (double& f : fade_state)
      f = rho * f + std::sqrt(std::max(0.0, 1.0 - rho * rho)) *
                        config.fading_sigma_db * unit(rng);

    // Traffic arrivals.
    for (UeState& ue : ues) {
      switch (ue.traffic.kind) {
        case Traffic::Kind::kFullBuffer:
          ue.backlog_bits = 1e12;
          break;
        case Traffic::Kind::kCbr: {
          ue.arrival_accumulator += ue.traffic.rate_bps * kTtiMs / 1000.0;
          ue.backlog_bits += ue.arrival_accumulator;
          ue.offered_bits += ue.arrival_accumulator;
          ue.arrival_accumulator = 0.0;
          break;
        }
        case Traffic::Kind::kPoisson: {
          const double mean_packets =
              ue.traffic.rate_bps * (kTtiMs / 1000.0) / ue.traffic.packet_bits;
          std::poisson_distribution<int> arrivals(mean_packets);
          const double bits = arrivals(rng) * ue.traffic.packet_bits;
          ue.backlog_bits += bits;
          ue.offered_bits += bits;
          break;
        }
      }
    }

    // True channel this TTI, and (possibly stale) CQI state.
    std::vector<double> true_snr(ues.size());
    std::vector<lte::UeChannelState> sched_in(ues.size());
    for (std::size_t i = 0; i < ues.size(); ++i) {
      true_snr[i] = world.snr_db(uav, world.ue_positions()[i]) + fade_state[i];
      if (t % cqi_every == 0) ues[i].reported_snr_db = true_snr[i];
      staleness_sum += std::abs(true_snr[i] - ues[i].reported_snr_db);
      ++staleness_n;
      sched_in[i] = {ues[i].rnti, ues[i].reported_snr_db, ues[i].backlog_bits > 0.0};
    }

    const std::vector<lte::UeAllocation> alloc = scheduler.schedule_tti(sched_in);
    for (std::size_t i = 0; i < ues.size(); ++i) {
      UeState& ue = ues[i];
      ue.backlog_sum_bits +=
          ue.traffic.kind == Traffic::Kind::kFullBuffer ? 0.0 : ue.backlog_bits;
      if (alloc[i].prb == 0 || alloc[i].bits <= 0.0) continue;
      ++ue.scheduled_ttis;
      // The MCS came from the reported SNR; it survives only when the true
      // channel supports it (HARQ otherwise).
      const int chosen_cqi = lte::snr_to_cqi(ue.reported_snr_db - config.bler_margin_db);
      const int true_cqi = lte::snr_to_cqi(true_snr[i]);
      if (chosen_cqi > true_cqi) {
        ++ue.failed_ttis;
        continue;  // transport block lost this TTI
      }
      const double bits = std::min(alloc[i].bits, ue.backlog_bits);
      ue.served_bits += bits;
      if (ue.traffic.kind != Traffic::Kind::kFullBuffer) ue.backlog_bits -= bits;
    }
  }

  ServiceReport report;
  report.ttis = ttis;
  report.mean_cqi_staleness_db =
      staleness_n > 0 ? staleness_sum / static_cast<double>(staleness_n) : 0.0;
  double total = 0.0;
  for (const UeState& ue : ues) {
    UeServiceStats s;
    s.rnti = ue.rnti;
    s.offered_bits = ue.offered_bits;
    s.served_bits = ue.served_bits;
    s.throughput_bps = ue.served_bits / (ttis * kTtiMs / 1000.0);
    s.harq_failure_rate =
        ue.scheduled_ttis > 0
            ? static_cast<double>(ue.failed_ttis) / static_cast<double>(ue.scheduled_ttis)
            : 0.0;
    s.mean_backlog_bits = ue.backlog_sum_bits / ttis;
    // Little's law: mean delay = mean backlog / arrival rate.
    if (ue.traffic.kind != Traffic::Kind::kFullBuffer && ue.traffic.rate_bps > 0.0)
      s.mean_queue_delay_ms = 1000.0 * s.mean_backlog_bits / ue.traffic.rate_bps;
    total += s.throughput_bps;
    report.per_ue.push_back(s);
  }
  report.aggregate_throughput_bps = total;
  return report;
}

}  // namespace

ServiceReport run_service_hovering(const World& world, geo::Vec3 uav_position,
                                   const std::vector<Traffic>& traffic,
                                   const ServiceConfig& config, std::mt19937_64& rng) {
  return run_service(
      world, [&](double) { return uav_position; }, config.duration_s, traffic, config, rng);
}

ServiceReport run_service_flying(const World& world, const uav::FlightPlan& plan,
                                 const std::vector<Traffic>& traffic,
                                 const ServiceConfig& config, std::mt19937_64& rng) {
  expects(!plan.waypoints.empty(), "run_service_flying: empty plan");
  const double duration = std::min(config.duration_s, plan.duration_s());
  return run_service(
      world,
      [&](double t) { return uav::plan_point_at(plan, t * plan.speed_mps); }, duration,
      traffic, config, rng);
}

}  // namespace skyran::sim
