#include "sim/ground_truth.hpp"

#include "geo/contract.hpp"

namespace skyran::sim {

geo::Grid2D<double> ground_truth_rem(const World& world, geo::Vec3 ue, double altitude_m,
                                     double cell_size_m) {
  geo::Grid2D<double> out(world.area(), cell_size_m, 0.0);
  out.for_each([&](geo::CellIndex c, double& v) {
    v = world.snr_db(geo::Vec3{out.center_of(c), altitude_m}, ue);
  });
  return out;
}

GroundTruth compute_ground_truth(const World& world, double altitude_m, double cell_size_m,
                                 rem::PlacementObjective objective) {
  expects(!world.ue_positions().empty(), "compute_ground_truth: no UEs deployed");
  GroundTruth truth;
  truth.altitude_m = altitude_m;
  truth.per_ue_rems.reserve(world.ue_positions().size());
  for (const geo::Vec3& ue : world.ue_positions())
    truth.per_ue_rems.push_back(ground_truth_rem(world, ue, altitude_m, cell_size_m));
  truth.optimal = rem::choose_placement_feasible(truth.per_ue_rems, world.terrain(),
                                                 altitude_m, objective);

  // Mean-throughput map over the same grid (the paper's Fig. 1 metric).
  geo::Grid2D<double> tput(world.area(), cell_size_m, 0.0);
  tput.for_each([&](geo::CellIndex c, double& v) {
    double sum = 0.0;
    for (const geo::Grid2D<double>& snr : truth.per_ue_rems)
      sum += lte::throughput_bps(snr.at(c), world.carrier());
    v = sum / static_cast<double>(truth.per_ue_rems.size());
  });
  rem::mask_infeasible_cells(tput, world.terrain(), altitude_m);
  truth.max_mean_throughput_bps = 0.0;
  tput.for_each([&](geo::CellIndex c, const double& v) {
    if (v > truth.max_mean_throughput_bps) {
      truth.max_mean_throughput_bps = v;
      truth.max_mean_position = tput.center_of(c);
    }
  });
  truth.optimal_mean_throughput_bps =
      world.mean_throughput_bps(geo::Vec3{truth.optimal.position, altitude_m});
  return truth;
}

double relative_throughput(const World& world, const GroundTruth& truth, geo::Vec2 position) {
  const double tput =
      world.mean_throughput_bps(geo::Vec3{position, truth.altitude_m});
  // Degenerate worlds where even the optimum serves nothing: any placement
  // is as good as the optimum.
  if (truth.optimal_mean_throughput_bps <= 0.0) return 1.0;
  return tput / truth.optimal_mean_throughput_bps;
}

}  // namespace skyran::sim
