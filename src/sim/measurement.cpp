#include "sim/measurement.hpp"

#include "geo/contract.hpp"
#include "obs/obs.hpp"

namespace skyran::sim {

std::size_t run_measurement_flight(const World& world, const uav::FlightPlan& plan,
                                   std::span<rem::Rem> rems, const MeasurementConfig& config,
                                   std::mt19937_64& rng) {
  expects(rems.size() == world.ue_positions().size(),
          "run_measurement_flight: one REM per world UE required");
  return run_measurement_flight(world, plan, rems, world.ue_positions(), config, rng);
}

std::size_t run_measurement_flight(const World& world, const uav::FlightPlan& plan,
                                   std::span<rem::Rem> rems, std::span<const geo::Vec3> ues,
                                   const MeasurementConfig& config, std::mt19937_64& rng) {
  expects(!rems.empty(), "run_measurement_flight: no REMs to update");
  expects(rems.size() == ues.size(), "run_measurement_flight: one REM per UE required");
  expects(config.report_rate_hz > 0.0, "run_measurement_flight: report rate must be positive");

  const std::vector<uav::FlightSample> samples = uav::fly(plan, 1.0 / config.report_rate_hz);
  std::normal_distribution<double> fading(0.0, config.fading_sigma_db);

  std::size_t reports = 0;
  for (const uav::FlightSample& s : samples) {
    const geo::Vec2 ground = world.area().clamp(s.position.xy());
    for (std::size_t i = 0; i < rems.size(); ++i) {
      const double snr = world.snr_db(s.position, ues[i]) + fading(rng);
      rems[i].add_measurement(ground, snr);
    }
    ++reports;
  }
  return reports;
}

std::size_t run_measurement_flight(const World& world, const uav::FlightPlan& plan,
                                   rem::RemBank& bank, const MeasurementConfig& config,
                                   std::mt19937_64& rng, FaultInjector* faults,
                                   double start_time_s) {
  expects(bank.ue_count() == world.ue_positions().size(),
          "run_measurement_flight: one bank UE per world UE required");
  expects(bank.ue_count() > 0, "run_measurement_flight: no REMs to update");
  expects(config.report_rate_hz > 0.0, "run_measurement_flight: report rate must be positive");

  const bool inject = faults != nullptr && faults->active();
  const std::span<const geo::Vec3> ues = world.ue_positions();
  const std::vector<uav::FlightSample> samples =
      uav::fly(plan, 1.0 / config.report_rate_hz, start_time_s);
  std::normal_distribution<double> fading(0.0, config.fading_sigma_db);

  std::uint64_t backhaul_dropped = 0;
  std::uint64_t wind_drifted = 0;
  std::size_t reports = 0;
  for (const uav::FlightSample& s : samples) {
    geo::Vec3 at = s.position;
    double sag_db = 0.0;
    bool deliverable = true;
    if (inject) {
      const geo::Vec2 drift = faults->wind_offset_m(s.time_s);
      if (drift.x != 0.0 || drift.y != 0.0) {
        at += geo::Vec3{drift.x, drift.y, 0.0};
        ++wind_drifted;
      }
      sag_db = faults->srs_snr_sag_db(s.time_s);
      deliverable = !faults->backhaul_down(s.time_s);
    }
    const geo::Vec2 ground = world.area().clamp(at.xy());
    for (std::size_t i = 0; i < bank.ue_count(); ++i) {
      const double snr = world.snr_db(at, ues[i]) + fading(rng) - sag_db;
      if (!deliverable) {  // backhaul outage: the report never reaches the REM
        ++backhaul_dropped;
        continue;
      }
      bank.add_measurement(i, ground, snr);
    }
    ++reports;
  }
  if (inject) {
    SKYRAN_COUNTER_ADD("fault.backhaul.reports_dropped", backhaul_dropped);
    SKYRAN_COUNTER_ADD("fault.wind.drifted_reports", wind_drifted);
  }
  return reports;
}

}  // namespace skyran::sim
