// TTI-level LTE service simulation: what the UEs actually experience while
// the UAV serves (hovering) or probes (moving). The eNodeB schedules on the
// SNR it knew at the last CQI report; when the UAV moves, that knowledge is
// stale - overshooting MCS costs HARQ failures, undershooting wastes
// capacity - which is exactly why the paper limits probing time (Sec 2.5).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <vector>

#include "lte/scheduler.hpp"
#include "sim/world.hpp"
#include "uav/flight.hpp"

namespace skyran::sim {

/// Per-UE downlink traffic.
struct Traffic {
  enum class Kind {
    kFullBuffer,  ///< always backlogged
    kCbr,         ///< constant-bit-rate arrivals (rate_bps)
    kPoisson,     ///< Poisson packet arrivals (rate_bps, packet_bits)
  };
  Kind kind = Kind::kFullBuffer;
  double rate_bps = 2e6;
  double packet_bits = 12000.0;  ///< 1500 B packets
};

struct ServiceConfig {
  lte::SchedulerPolicy policy = lte::SchedulerPolicy::kRoundRobin;
  double duration_s = 4.0;
  /// CQI reporting period and application delay: the scheduler always works
  /// with channel state this old.
  double cqi_period_ms = 5.0;
  /// Fast-fading magnitude. The fading process is AR(1) with a coherence
  /// time set by motion: lambda/(2*speed) when flying (classic Doppler
  /// decorrelation - ~7 ms at 30 km/h and 2.6 GHz) and
  /// `hover_coherence_s` when hovering. This is precisely why probing
  /// motion breaks the CQI loop (Sec 2.5).
  double fading_sigma_db = 1.8;
  double hover_coherence_s = 0.2;
  /// An MCS chosen for `margin_db` more SNR than the channel truly has
  /// fails (HARQ loss). 0 = exact threshold.
  double bler_margin_db = 0.0;
};

struct UeServiceStats {
  std::uint32_t rnti = 0;
  double offered_bits = 0.0;
  double served_bits = 0.0;
  double throughput_bps = 0.0;
  double harq_failure_rate = 0.0;  ///< failed TTIs / scheduled TTIs
  double mean_queue_delay_ms = 0.0;  ///< CBR/Poisson only; 0 for full buffer
  double mean_backlog_bits = 0.0;
};

struct ServiceReport {
  std::vector<UeServiceStats> per_ue;
  double aggregate_throughput_bps = 0.0;
  double mean_cqi_staleness_db = 0.0;  ///< mean |true - reported| SNR gap
  int ttis = 0;
};

/// Serve the world's UEs for `config.duration_s` from a hovering UAV.
ServiceReport run_service_hovering(const World& world, geo::Vec3 uav_position,
                                   const std::vector<Traffic>& traffic,
                                   const ServiceConfig& config, std::mt19937_64& rng);

/// Serve while flying `plan` (service continues during a measurement
/// flight); the plan's duration bounds the simulated time.
ServiceReport run_service_flying(const World& world, const uav::FlightPlan& plan,
                                 const std::vector<Traffic>& traffic,
                                 const ServiceConfig& config, std::mt19937_64& rng);

}  // namespace skyran::sim
