#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSrsSymbolLoss: return "srs_symbol_loss";
    case FaultKind::kSrsSnrSag: return "srs_snr_sag";
    case FaultKind::kGpsOutage: return "gps_outage";
    case FaultKind::kBatterySag: return "battery_sag";
    case FaultKind::kWindDrift: return "wind_drift";
    case FaultKind::kBackhaulOutage: return "backhaul_outage";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t epoch_salt)
    : plan_(std::move(plan)),
      rng_(plan_.seed ^ (0x9e3779b97f4a7c15ULL * (epoch_salt + 1))),
      active_(!plan_.empty()) {
  for (const FaultWindow& w : plan_.windows) {
    expects(w.start_s >= 0.0 && w.end_s >= w.start_s,
            "FaultPlan: window must satisfy 0 <= start <= end");
    expects(std::isfinite(w.magnitude) && w.magnitude >= 0.0,
            "FaultPlan: magnitude must be finite and >= 0");
    if (w.kind == FaultKind::kSrsSymbolLoss || w.kind == FaultKind::kBatterySag)
      expects(w.magnitude <= 1.0, "FaultPlan: probability/fraction magnitude must be <= 1");
  }
}

bool FaultInjector::srs_symbol_lost(double t) {
  if (!active_) return false;
  double loss_p = 0.0;
  for (const FaultWindow& w : plan_.windows)
    if (w.kind == FaultKind::kSrsSymbolLoss && w.contains(t))
      loss_p = std::max(loss_p, w.magnitude);
  if (loss_p <= 0.0) return false;
  std::uniform_real_distribution<double> u01(0.0, 1.0);
  return u01(rng_) < loss_p;
}

double FaultInjector::srs_snr_sag_db(double t) const {
  if (!active_) return 0.0;
  double sag = 0.0;
  for (const FaultWindow& w : plan_.windows)
    if (w.kind == FaultKind::kSrsSnrSag && w.cell < 0 && w.contains(t)) sag += w.magnitude;
  return sag;
}

double FaultInjector::cell_snr_sag_db(double t, std::int32_t cell) const {
  if (!active_) return 0.0;
  double sag = 0.0;
  for (const FaultWindow& w : plan_.windows)
    if (w.kind == FaultKind::kSrsSnrSag && (w.cell < 0 || w.cell == cell) && w.contains(t))
      sag += w.magnitude;
  return sag;
}

bool FaultInjector::gps_forced_outage(double t) const {
  if (!active_) return false;
  for (const FaultWindow& w : plan_.windows)
    if (w.kind == FaultKind::kGpsOutage && w.contains(t)) return true;
  return false;
}

double FaultInjector::battery_sag_fraction(double t) const {
  if (!active_) return 0.0;
  double sag = 0.0;
  for (const FaultWindow& w : plan_.windows)
    if (w.kind == FaultKind::kBatterySag && w.start_s <= t) sag += w.magnitude;
  return std::min(sag, 1.0);
}

geo::Vec2 FaultInjector::wind_offset_m(double t) const {
  geo::Vec2 offset{};
  if (!active_) return offset;
  for (const FaultWindow& w : plan_.windows) {
    if (w.kind != FaultKind::kWindDrift) continue;
    const double overlap = std::min(t, w.end_s) - w.start_s;
    if (overlap <= 0.0) continue;
    offset += geo::Vec2{std::cos(w.heading_rad), std::sin(w.heading_rad)} *
              (w.magnitude * overlap);
  }
  return offset;
}

bool FaultInjector::backhaul_down(double t) const {
  if (!active_) return false;
  for (const FaultWindow& w : plan_.windows)
    if (w.kind == FaultKind::kBackhaulOutage && w.contains(t)) return true;
  return false;
}

}  // namespace skyran::sim
