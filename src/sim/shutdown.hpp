// Graceful-shutdown support for long-running drivers (examples, campaign
// tools). A SIGINT/SIGTERM only sets an async-signal-safe flag; the driver
// polls `shutdown_requested()` at its epoch boundaries and performs the
// orderly exit itself — write a final checkpoint, flush telemetry — instead
// of dying mid-state with everything lost.
#pragma once

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace skyran::sim {

namespace detail {
inline volatile std::sig_atomic_t g_shutdown_flag = 0;
inline void shutdown_signal_handler(int) { g_shutdown_flag = 1; }
}  // namespace detail

/// Route SIGINT and SIGTERM to the shutdown flag. Call once at startup.
inline void install_shutdown_handlers() {
  std::signal(SIGINT, detail::shutdown_signal_handler);
  std::signal(SIGTERM, detail::shutdown_signal_handler);
}

/// True once a SIGINT/SIGTERM has arrived. Poll between epochs.
inline bool shutdown_requested() { return detail::g_shutdown_flag != 0; }

/// For tests: reset the flag as if no signal had arrived.
inline void reset_shutdown_flag() { detail::g_shutdown_flag = 0; }

/// Turn telemetry on when SKYRAN_METRICS_OUT names a file (same contract as
/// the bench binaries). Returns true when enabled.
inline bool init_metrics_from_env() {
  if (std::getenv("SKYRAN_METRICS_OUT") == nullptr) return false;
  obs::set_enabled(true);
  return true;
}

/// Flush accumulated telemetry to $SKYRAN_METRICS_OUT (JSON lines) if set.
/// Safe to call unconditionally and more than once (last write wins).
inline void flush_metrics() {
  const char* path = std::getenv("SKYRAN_METRICS_OUT");
  if (path == nullptr || *path == '\0') return;
  std::ofstream os(path);
  if (os) obs::write_json_lines(os);
}

}  // namespace skyran::sim
