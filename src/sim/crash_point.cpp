#include "sim/crash_point.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>

#if defined(_WIN32)
#include <process.h>
#endif

namespace skyran::sim {

namespace {

struct CrashState {
  bool armed = false;
  std::string name;
  int target_hit = 1;
  int visits = 0;
};

CrashState& state() {
  static CrashState s = [] {
    // Environment arming lets a driver kill a spawned process without any
    // code changes: SKYRAN_CRASH_AT=<point> [SKYRAN_CRASH_HIT=<n>].
    CrashState init;
    if (const char* at = std::getenv("SKYRAN_CRASH_AT"); at != nullptr && *at != '\0') {
      init.armed = true;
      init.name = at;
      if (const char* hit = std::getenv("SKYRAN_CRASH_HIT"))
        init.target_hit = std::max(1, std::atoi(hit));
    }
    return init;
  }();
  return s;
}

[[noreturn]] void die() {
  // SIGKILL cannot be caught: the process vanishes mid-instruction, exactly
  // like an OOM kill. _Exit is the fallback for platforms without raise().
#if defined(SIGKILL)
  std::raise(SIGKILL);
#endif
  std::_Exit(137);
}

}  // namespace

void crash_point(const char* name) {
  CrashState& s = state();
  if (!s.armed) return;
  if (std::strcmp(name, s.name.c_str()) != 0) return;
  if (++s.visits >= s.target_hit) die();
}

void arm_crash_point(std::string name, int hit) {
  CrashState& s = state();
  s.armed = true;
  s.name = std::move(name);
  s.target_hit = hit < 1 ? 1 : hit;
  s.visits = 0;
}

void disarm_crash_points() { state() = CrashState{}; }

int crash_point_visits() { return state().visits; }

}  // namespace skyran::sim
