#include "sim/world.hpp"

#include <algorithm>
#include <limits>

#include "geo/contract.hpp"

namespace skyran::sim {

namespace {
std::shared_ptr<const terrain::Terrain> build_terrain(const WorldConfig& config) {
  return std::make_shared<const terrain::Terrain>(
      terrain::make_terrain(config.terrain_kind, config.seed, config.cell_size_m));
}
}  // namespace

World::World(const WorldConfig& config) : World(build_terrain(config), config) {}

World::World(std::shared_ptr<const terrain::Terrain> terrain, const WorldConfig& config)
    : terrain_(std::move(terrain)),
      channel_(terrain_, config.channel, config.seed ^ 0xc4a1ULL),
      budget_(config.budget),
      carrier_(config.carrier) {
  expects(terrain_ != nullptr, "World: terrain must not be null");
}

double World::snr_db(geo::Vec3 uav, geo::Vec3 ue) const {
  return budget_.snr_db(channel_.path_loss_db(uav, ue));
}

double World::link_throughput_bps(geo::Vec3 uav, geo::Vec3 ue) const {
  return lte::throughput_bps(snr_db(uav, ue), carrier_);
}

double World::mean_throughput_bps(geo::Vec3 uav) const {
  expects(!ues_.empty(), "World::mean_throughput_bps: no UEs deployed");
  double sum = 0.0;
  for (const geo::Vec3& ue : ues_) sum += link_throughput_bps(uav, ue);
  return sum / static_cast<double>(ues_.size());
}

double World::min_snr_db(geo::Vec3 uav) const {
  expects(!ues_.empty(), "World::min_snr_db: no UEs deployed");
  double best = std::numeric_limits<double>::infinity();
  for (const geo::Vec3& ue : ues_) best = std::min(best, snr_db(uav, ue));
  return best;
}

}  // namespace skyran::sim
