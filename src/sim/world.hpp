// World: terrain + ground-truth channel + link budget + UE population. This
// is the "physical reality" every scheme (SkyRAN, Uniform, Centroid) operates
// against; schemes may only learn about it through simulated measurements.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lte/amc.hpp"
#include "lte/sampling.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"
#include "terrain/synth.hpp"
#include "terrain/terrain.hpp"

namespace skyran::sim {

struct WorldConfig {
  terrain::TerrainKind terrain_kind = terrain::TerrainKind::kCampus;
  std::uint64_t seed = 1;
  double cell_size_m = 1.0;
  rf::RayTraceChannelParams channel{};
  rf::LinkBudget budget{};
  lte::BandwidthConfig carrier = lte::bandwidth_config(10.0);
};

class World {
 public:
  explicit World(const WorldConfig& config);

  /// World over a caller-supplied terrain (e.g. LiDAR-rasterized).
  World(std::shared_ptr<const terrain::Terrain> terrain, const WorldConfig& config);

  const terrain::Terrain& terrain() const { return *terrain_; }
  std::shared_ptr<const terrain::Terrain> terrain_ptr() const { return terrain_; }
  const rf::RayTraceChannel& channel() const { return channel_; }
  const rf::LinkBudget& budget() const { return budget_; }
  const lte::BandwidthConfig& carrier() const { return carrier_; }
  const geo::Rect& area() const { return terrain_->area(); }

  std::vector<geo::Vec3>& ue_positions() { return ues_; }
  const std::vector<geo::Vec3>& ue_positions() const { return ues_; }

  /// Ground-truth SNR of the UAV->UE link, dB.
  double snr_db(geo::Vec3 uav, geo::Vec3 ue) const;

  /// Ground-truth full-bandwidth throughput of the link, bit/s.
  double link_throughput_bps(geo::Vec3 uav, geo::Vec3 ue) const;

  /// Mean per-UE throughput from a UAV position over all current UEs, bit/s
  /// (the paper's "average throughput" metric).
  double mean_throughput_bps(geo::Vec3 uav) const;

  /// Minimum per-UE SNR from a UAV position (the max-min objective input).
  double min_snr_db(geo::Vec3 uav) const;

 private:
  std::shared_ptr<const terrain::Terrain> terrain_;
  rf::RayTraceChannel channel_;
  rf::LinkBudget budget_;
  lte::BandwidthConfig carrier_;
  std::vector<geo::Vec3> ues_;
};

}  // namespace skyran::sim
