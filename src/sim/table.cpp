#include "sim/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace skyran::sim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "  ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << (c < row.size() ? row[c] : "");
    }
    os << '\n';
  };
  print_row(headers_);
  os << "  ";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(widths[c], '-') << "  ";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

void write_csv_cell(std::ostream& os, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    os << cell;
    return;
  }
  os << '"';
  for (const char c : cell) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ',';
      write_csv_cell(os, c < row.size() ? row[c] : std::string{});
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace skyran::sim
