// Fault injection for the epoch pipeline. A FaultPlan is a deterministic,
// seeded schedule of fault windows over epoch flight time; a FaultInjector
// evaluates it while the epoch runs. Every fault class has a defined
// degraded behavior downstream (tuple dropping, partial REM deposits,
// localization fallback) instead of a crash or silent garbage — SkyRAN's
// premise is a RAN that keeps serving while the platform is flaky
// (paper Secs 3.3/3.6).
//
// Time base: seconds of epoch flight time. t = 0 is the start of the
// localization flight; measurement tours follow at the epoch's running
// flight-time cursor. An empty plan is a strict no-op: no RNG draws, no
// arithmetic changes, bit-identical output to a build without the subsystem.
#pragma once

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "geo/vec.hpp"
#include "localization/pipeline.hpp"

namespace skyran::sim {

enum class FaultKind {
  kSrsSymbolLoss,   ///< magnitude: probability in [0,1] each SRS symbol is lost
  kSrsSnrSag,       ///< magnitude: dB subtracted from the received SRS SNR
  kGpsOutage,       ///< GPS fixes are invalid for the whole window
  kBatterySag,      ///< magnitude: fraction of capacity lost when the window opens
  kWindDrift,       ///< magnitude: drift speed m/s along heading_rad
  kBackhaulOutage,  ///< measurement SNR reports are lost inside the window
};

const char* to_string(FaultKind kind);

struct FaultWindow {
  FaultKind kind = FaultKind::kSrsSymbolLoss;
  double start_s = 0.0;
  double end_s = std::numeric_limits<double>::infinity();
  double magnitude = 0.0;
  double heading_rad = 0.0;  ///< wind direction (kWindDrift only)
  /// Fleet cell index this window is scoped to; -1 (default) hits every
  /// cell and the single-UAV pipeline. A scoped window is invisible to
  /// srs_snr_sag_db() and only surfaces through cell_snr_sag_db().
  std::int32_t cell = -1;

  bool contains(double t) const { return t >= start_s && t < end_s; }
};

/// A scripted schedule of fault windows. Deterministic: the same plan, seed
/// and epoch produce the same injected faults on every run and any worker
/// count (the only randomness, per-symbol SRS loss, is drawn in the serial
/// synthesis phase of the ranging pipeline).
struct FaultPlan {
  std::vector<FaultWindow> windows;
  std::uint64_t seed = 0;

  bool empty() const { return windows.empty(); }

  /// Fluent helper: append a window and return *this for chaining.
  FaultPlan& add(FaultWindow w) {
    windows.push_back(w);
    return *this;
  }
};

/// Evaluates a FaultPlan during one epoch. Default-constructed (or built
/// from an empty plan) it reports active() == false and every query is a
/// constant pass-through; callers gate all fault work on active() so the
/// zero-fault hot path stays untouched.
class FaultInjector final : public localization::RangingFaultModel {
 public:
  FaultInjector() = default;

  /// `epoch_salt` (typically the epoch number) decorrelates the per-symbol
  /// loss stream across epochs while staying deterministic per (plan, epoch).
  explicit FaultInjector(FaultPlan plan, std::uint64_t epoch_salt = 0);

  bool active() const { return active_; }
  const FaultPlan& plan() const { return plan_; }

  // localization::RangingFaultModel
  bool srs_symbol_lost(double t) override;
  double srs_snr_sag_db(double t) const override;
  bool gps_forced_outage(double t) const override;

  /// SNR sag seen by fleet cell `cell` at time `t`: the sum of kSrsSnrSag
  /// windows that are either unscoped (window.cell < 0) or scoped to this
  /// cell. The single-UAV srs_snr_sag_db() only sums unscoped windows.
  double cell_snr_sag_db(double t, std::int32_t cell) const;

  /// Cumulative capacity fraction sagged by battery windows whose start has
  /// passed by time `t` (each window fires once, at its start).
  double battery_sag_fraction(double t) const;

  /// Integrated wind displacement at time `t`: every wind window drifts the
  /// airframe at `magnitude` m/s along `heading_rad` while it is open.
  geo::Vec2 wind_offset_m(double t) const;

  /// True while a backhaul outage window covers `t` (measurement SNR reports
  /// cannot reach the REM).
  bool backhaul_down(double t) const;

 private:
  FaultPlan plan_;
  std::mt19937_64 rng_{0};
  bool active_ = false;
};

}  // namespace skyran::sim
