// Ground-truth evaluation: exhaustive REMs (what the paper collects with
// dedicated zigzag flights, Fig. 15) and the true optimal UAV position they
// imply. Every "relative throughput" number in the benches divides by the
// optimum computed here.
#pragma once

#include <vector>

#include "geo/grid.hpp"
#include "rem/placement.hpp"
#include "sim/world.hpp"

namespace skyran::sim {

/// Exhaustive ground-truth SNR map for one UE at `altitude_m`, sampled at
/// `cell_size_m` (which may be coarser than the world raster for speed).
geo::Grid2D<double> ground_truth_rem(const World& world, geo::Vec3 ue, double altitude_m,
                                     double cell_size_m);

struct GroundTruth {
  std::vector<geo::Grid2D<double>> per_ue_rems;
  /// The paper's "true optimal UAV operating point" (Sec 4.2): the placement
  /// the scheme's own objective (max-min SNR) would pick given PERFECT REMs.
  /// Relative throughput divides by the mean throughput here, so it measures
  /// how well a scheme's estimated REMs reproduce the perfect-REM placement.
  rem::Placement optimal;
  double optimal_mean_throughput_bps = 0.0;  ///< mean throughput at `optimal`
  /// For reference (Fig. 1): the feasible cell maximizing mean throughput.
  geo::Vec2 max_mean_position;
  double max_mean_throughput_bps = 0.0;
  double altitude_m = 0.0;
};

/// Compute ground truth for all current UEs.
GroundTruth compute_ground_truth(const World& world, double altitude_m, double cell_size_m,
                                 rem::PlacementObjective objective = rem::PlacementObjective::kMaxMin);

/// Mean-per-UE throughput at `position` divided by the ground-truth optimum.
double relative_throughput(const World& world, const GroundTruth& truth, geo::Vec2 position);

}  // namespace skyran::sim
