// Measurement-flight execution (paper Step 7): fly a plan while the eNodeB
// PHY reports per-UE SNR at 100 Hz; each report lands in the REM cell under
// the UAV. Reports carry fast-fading jitter on top of the ground-truth
// channel, so REM cell averages converge with dwell time like real ones.
#pragma once

#include <random>
#include <span>
#include <vector>

#include "rem/bank.hpp"
#include "rem/rem.hpp"
#include "sim/faults.hpp"
#include "sim/world.hpp"
#include "uav/flight.hpp"

namespace skyran::sim {

struct MeasurementConfig {
  double report_rate_hz = 100.0;   ///< PHY SNR report rate (Sec 3.3.3)
  double fading_sigma_db = 1.8;    ///< per-report fast-fading jitter
};

/// Fly `plan` and deposit SNR reports into each UE's REM (REM i belongs to
/// world UE i). Returns the number of reports per UE.
std::size_t run_measurement_flight(const World& world, const uav::FlightPlan& plan,
                                   std::span<rem::Rem> rems, const MeasurementConfig& config,
                                   std::mt19937_64& rng);

/// Same, but for an explicit UE subset (REM i belongs to `ues[i]`); used by
/// multi-UAV operation where each UAV probes only its own cluster of UEs.
std::size_t run_measurement_flight(const World& world, const uav::FlightPlan& plan,
                                   std::span<rem::Rem> rems,
                                   std::span<const geo::Vec3> ues,
                                   const MeasurementConfig& config, std::mt19937_64& rng);

/// Bank-resident variant: deposits land in `bank`'s slabs (bank UE i is
/// world UE i) and mark the touched cells dirty for the next
/// RemBank::estimate_all. Draws from `rng` in exactly the same order as the
/// per-REM overloads, so simulations stay trajectory-identical.
///
/// `faults` (optional) injects scripted degradation into the flight: wind
/// windows drift the airframe off the planned track (reports are measured
/// and deposited where the UAV actually is), SNR-sag windows degrade every
/// report, and backhaul windows drop reports outright. `start_time_s` places
/// the flight on the epoch flight-time axis the fault windows are scripted
/// in. With `faults == nullptr` (or an inactive injector) the behavior and
/// RNG stream are bit-identical to the plain overload.
std::size_t run_measurement_flight(const World& world, const uav::FlightPlan& plan,
                                   rem::RemBank& bank, const MeasurementConfig& config,
                                   std::mt19937_64& rng, FaultInjector* faults = nullptr,
                                   double start_time_s = 0.0);

}  // namespace skyran::sim
