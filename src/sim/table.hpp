// Fixed-width table printing for bench output: every figure-reproduction
// binary prints the same rows/series the paper reports through this helper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace skyran::sim {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; cells beyond the header count are dropped, missing cells
  /// print empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines),
  /// for downstream plotting.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section banner ("== Figure 20: ... ==").
void print_banner(std::ostream& os, const std::string& title);

}  // namespace skyran::sim
