// Crash points: named process-kill hooks for the crash-recovery harness.
// The epoch state machine and the checkpoint writer call
// `sim::crash_point("name")` at their phase boundaries; a disarmed hook is
// one branch on a bool. When armed (programmatically after a fork, or via
// the SKYRAN_CRASH_AT / SKYRAN_CRASH_HIT environment variables), the N-th
// visit to the named point raises SIGKILL on the process — no destructors,
// no stream flushes, no atexit — which is exactly the failure the
// checkpoint subsystem must survive.
//
// Known points (see docs/ARCHITECTURE.md, "Checkpoint & recovery"):
//   epoch.localize / epoch.estimate / epoch.place / epoch.serve
//     after the matching run_epoch phase completes;
//   epoch.steer      end of a fleet::Fleet epoch, after the steering step;
//   hour.tick        end of a scenario::Campaign hour, after the hour's
//                    report row is appended;
//   ckpt.mid_write   halfway through writing a checkpoint's temp file;
//   ckpt.pre_rename  temp file complete + fsynced, before the atomic rename.
#pragma once

#include <string>

namespace skyran::sim {

/// Phase-boundary hook. SIGKILLs the process when `name` is the armed crash
/// point and this is its `hit`-th visit; otherwise a cheap no-op.
void crash_point(const char* name);

/// Arm `name` to fire on its `hit`-th visit (1-based). Replaces any prior
/// arming and resets the visit counter. Intended for harness children right
/// after fork(); the parent stays disarmed.
void arm_crash_point(std::string name, int hit = 1);

/// Disarm and reset. Safe to call when nothing is armed.
void disarm_crash_points();

/// Visits recorded for the currently armed point (0 when disarmed).
int crash_point_visits();

}  // namespace skyran::sim
