#include "sim/baselines.hpp"

#include <random>

#include "geo/contract.hpp"
#include "uav/trajectory.hpp"

namespace skyran::sim {

SchemeResult run_uniform(const World& world, const UniformConfig& config, std::uint64_t seed) {
  expects(config.budget_m > 0.0, "run_uniform: budget must be positive");
  const geo::Path full = uav::zigzag(world.area().inflated(-5.0), config.zigzag_spacing_m);
  const geo::Path track = uav::truncate_to_budget(full, config.budget_m);
  const uav::FlightPlan plan = uav::FlightPlan::at_altitude(track, config.altitude_m);

  std::vector<rem::Rem> rems;
  rems.reserve(world.ue_positions().size());
  for (const geo::Vec3& ue : world.ue_positions())
    rems.emplace_back(world.area(), config.rem_cell_m, config.altitude_m, ue);

  std::mt19937_64 rng(seed);
  run_measurement_flight(world, plan, rems, config.measurement, rng);

  std::vector<geo::Grid2D<double>> estimates;
  estimates.reserve(rems.size());
  for (const rem::Rem& r : rems) estimates.push_back(r.estimate(config.idw));
  const rem::Placement placement = rem::choose_placement_feasible(
      estimates, world.terrain(), config.altitude_m, config.objective);

  SchemeResult out;
  out.position = placement.position;
  out.altitude_m = config.altitude_m;
  out.flight_length_m = track.length();
  out.rems = std::move(rems);
  return out;
}

SchemeResult run_centroid(std::span<const geo::Vec2> ue_positions, double altitude_m,
                          geo::Rect area) {
  expects(!ue_positions.empty(), "run_centroid: need at least one UE");
  geo::Vec2 centroid{};
  for (geo::Vec2 p : ue_positions) centroid += p;
  centroid = centroid / static_cast<double>(ue_positions.size());

  SchemeResult out;
  out.position = area.clamp(centroid);
  out.altitude_m = altitude_m;
  out.flight_length_m = 0.0;
  return out;
}

SchemeResult run_random(const World& world, double altitude_m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(world.area().min.x, world.area().max.x);
  std::uniform_real_distribution<double> uy(world.area().min.y, world.area().max.y);
  SchemeResult out;
  out.position = {ux(rng), uy(rng)};
  out.altitude_m = altitude_m;
  return out;
}

}  // namespace skyran::sim
