#include "lte/zadoff_chu.hpp"

#include <cmath>
#include <numbers>
#include <numeric>

#include "geo/contract.hpp"

namespace skyran::lte {

namespace {

bool is_prime(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

}  // namespace

std::uint32_t largest_prime_not_above(std::uint32_t n) {
  expects(n >= 2, "largest_prime_not_above: need n >= 2");
  for (std::uint32_t p = n;; --p)
    if (is_prime(p)) return p;
}

CplxVec zadoff_chu(std::uint32_t root, std::uint32_t n_zc) {
  expects(n_zc >= 3 && is_prime(n_zc), "zadoff_chu: length must be an odd prime");
  expects(root >= 1 && root < n_zc, "zadoff_chu: root must be in [1, n_zc)");
  expects(std::gcd(root, n_zc) == 1, "zadoff_chu: root must be coprime with length");
  CplxVec seq(n_zc);
  for (std::uint32_t k = 0; k < n_zc; ++k) {
    // k*(k+1) mod 2*Nzc keeps the phase argument in range for large lengths.
    const std::uint64_t q =
        (static_cast<std::uint64_t>(k) * (k + 1)) % (2ULL * n_zc);
    const double phase = -std::numbers::pi * static_cast<double>(root) *
                         static_cast<double>(q) / static_cast<double>(n_zc);
    seq[k] = Cplx(std::cos(phase), std::sin(phase));
  }
  return seq;
}

CplxVec base_sequence(std::uint32_t root, std::uint32_t length) {
  expects(length >= 3, "base_sequence: length must be >= 3");
  const std::uint32_t n_zc = largest_prime_not_above(length);
  expects(root >= 1 && root < n_zc, "base_sequence: root must be in [1, n_zc)");
  const CplxVec zc = zadoff_chu(root, n_zc);
  CplxVec out(length);
  for (std::uint32_t k = 0; k < length; ++k) out[k] = zc[k % n_zc];
  return out;
}

}  // namespace skyran::lte
