#include "lte/fft.hpp"

#include <cmath>
#include <numbers>

#include "geo/contract.hpp"
#include "kernels/kernels.hpp"

namespace skyran::lte {

namespace {

/// Radix-2 iterative Cooley-Tukey; `invert` flips the transform direction.
/// Caller guarantees a power-of-two size.
void fft_radix2(CplxVec& a, bool invert) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * std::numbers::pi / static_cast<double>(len) * (invert ? 1.0 : -1.0);
    const Cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Cplx u = a[i + j];
        const Cplx v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z transform: expresses an arbitrary-size DFT as a
/// convolution, evaluated with power-of-two FFTs.
void fft_bluestein(CplxVec& a, bool invert) {
  const std::size_t n = a.size();
  const std::size_t m = next_power_of_two(2 * n + 1);
  const double sign = invert ? 1.0 : -1.0;

  // Chirp c_k = exp(sign * i * pi * k^2 / n).
  CplxVec chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument small for big k.
    const double phase =
        std::numbers::pi * static_cast<double>((k * k) % (2 * n)) / static_cast<double>(n);
    chirp[k] = Cplx(std::cos(phase), sign * std::sin(phase));
  }

  CplxVec x(m, Cplx{});
  CplxVec y(m, Cplx{});
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * chirp[k];
  y[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) y[k] = y[m - k] = std::conj(chirp[k]);

  fft_radix2(x, false);
  fft_radix2(y, false);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  fft_radix2(x, true);
  const double scale = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * scale * chirp[k];
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(CplxVec& data) {
  expects(!data.empty(), "fft: empty input");
  if (is_power_of_two(data.size()))
    fft_radix2(data, false);
  else
    fft_bluestein(data, false);
}

void ifft_inplace(CplxVec& data) {
  expects(!data.empty(), "ifft: empty input");
  if (is_power_of_two(data.size()))
    fft_radix2(data, true);
  else
    fft_bluestein(data, true);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (Cplx& v : data) v *= scale;
}

CplxVec fft(CplxVec data) {
  fft_inplace(data);
  return data;
}

CplxVec ifft(CplxVec data) {
  ifft_inplace(data);
  return data;
}

CplxVec multiply_conjugate(const CplxVec& a, const CplxVec& b) {
  expects(a.size() == b.size(), "multiply_conjugate: size mismatch");
  CplxVec out(a.size());
  kernels::multiply_conjugate(a.data(), b.data(), out.data(), a.size());
  return out;
}

std::size_t max_abs_index(const CplxVec& v) {
  expects(!v.empty(), "max_abs_index: empty input");
  return kernels::power_peak_scan(v.data(), v.size()).argmax;
}

}  // namespace skyran::lte
