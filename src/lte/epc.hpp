// Minimal Evolved Packet Core. The real SkyRAN flies an OpenAirInterface EPC
// on a second SBC (Sec 4.1); functionally the RAN needs UE identity
// management, an attach/detach state machine and default-bearer bookkeeping,
// which is what this module provides (in the spirit of SkyCore's
// single-entity, on-UAV EPC).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace skyran::lte {

enum class UeEmmState {
  kDeregistered,
  kRegistered,
};

struct EpsBearer {
  int bearer_id = 5;  ///< default bearer; dedicated bearers count up from 6
  int qci = 9;        ///< best-effort default
};

struct EpcUeContext {
  std::string imsi;
  std::uint64_t ue_id = 0;  ///< EPC-local identifier (stands in for GUTI)
  UeEmmState state = UeEmmState::kDeregistered;
  std::vector<EpsBearer> bearers;
};

/// Lightweight co-located EPC (MME + SGW/PGW folded together).
class Epc {
 public:
  /// NAS attach: registers the IMSI (idempotent) and sets up the default
  /// bearer. Returns the UE context.
  const EpcUeContext& attach(const std::string& imsi);

  /// NAS detach: tears down bearers. Returns false if the IMSI is unknown
  /// or already deregistered.
  bool detach(const std::string& imsi);

  /// Adds a dedicated bearer with the given QCI; returns its id.
  /// Throws ContractViolation when the UE is not registered.
  int add_dedicated_bearer(const std::string& imsi, int qci);

  std::optional<EpcUeContext> find(const std::string& imsi) const;
  std::size_t registered_count() const;
  const std::vector<EpcUeContext>& contexts() const { return ues_; }

 private:
  EpcUeContext* find_mutable(const std::string& imsi);

  std::vector<EpcUeContext> ues_;
  std::uint64_t next_ue_id_ = 1;
};

}  // namespace skyran::lte
