// Backhaul link from the UAV to the ground gateway. The paper's prototype
// tethers through a commercial LTE phone and points to mmWave/WiFi/LTE-U as
// drop-in alternatives (Sec 4.1); SkyHAUL (Sec 7) optimizes it in the
// multi-UAV setting. End-to-end UE throughput is capped by this link, so the
// UAV placement objective can be backhaul-aware.
#pragma once

#include <span>

#include "geo/vec.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"
#include "lte/amc.hpp"

namespace skyran::lte {

enum class BackhaulTech {
  kLteTether,  ///< commercial LTE modem (the paper's prototype)
  kMmWave,     ///< 60 GHz point-to-point: huge capacity, hard LOS requirement
  kWifi,       ///< 5 GHz long-range link
};

struct BackhaulConfig {
  BackhaulTech tech = BackhaulTech::kLteTether;
  geo::Vec3 gateway{0.0, 0.0, 10.0};  ///< ground station / donor site
  /// LTE tether: achievable rate of a commercial subscription.
  double lte_rate_bps = 80e6;
  /// mmWave: peak rate and usable range (rain/oxygen-limited).
  double mmwave_peak_bps = 1.2e9;
  double mmwave_range_m = 800.0;
  /// WiFi: peak rate and half-rate distance of the rate-vs-range curve.
  double wifi_peak_bps = 300e6;
  double wifi_half_range_m = 250.0;
};

class Backhaul {
 public:
  /// `channel` supplies LOS checks and path loss for the RF technologies.
  Backhaul(const rf::RayTraceChannel& channel, BackhaulConfig config);

  /// Instantaneous backhaul capacity from a UAV position, bit/s.
  double capacity_bps(geo::Vec3 uav) const;

  /// End-to-end mean per-UE throughput: access-side per-UE rates squeezed
  /// proportionally through the backhaul pipe when it is the bottleneck.
  double end_to_end_mean_bps(std::span<const double> access_rates_bps,
                             geo::Vec3 uav) const;

  const BackhaulConfig& config() const { return config_; }

 private:
  const rf::RayTraceChannel& channel_;
  BackhaulConfig config_;
};

}  // namespace skyran::lte
