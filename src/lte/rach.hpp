// Random-access (RACH) contention model. When a SkyRAN UAV arrives on
// station, every UE in the area tries to attach at once - an attach storm.
// This module simulates the slotted PRACH contention (preamble choice,
// collision, backoff) so deployments can size the attach transient, i.e.
// how long after placement the cell is actually serving everyone.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace skyran::lte {

struct RachConfig {
  int n_preambles = 54;        ///< contention preambles per PRACH occasion
  double prach_period_ms = 5.0;  ///< PRACH occasion spacing
  int max_attempts = 10;       ///< before the UE declares failure
  double backoff_max_ms = 20.0;  ///< uniform backoff window after collision
  /// Probability that a (collision-free) preamble is missed for RF reasons;
  /// feed per-UE values derived from SNR for realism.
  double base_miss_probability = 0.02;
};

struct RachUeOutcome {
  bool attached = false;
  int attempts = 0;
  double attach_time_ms = 0.0;  ///< time of successful msg4 (or last failure)
};

struct RachReport {
  std::vector<RachUeOutcome> per_ue;
  double last_attach_ms = 0.0;  ///< when the final successful UE got in
  int failed = 0;
  double mean_attempts = 0.0;
};

/// Simulate an attach storm of `n_ues` UEs all wanting in at t = 0.
/// `miss_probability` may be empty (use the base value) or hold one value
/// per UE (e.g. SNR-derived msg1 miss rates).
RachReport simulate_attach_storm(int n_ues, const RachConfig& config,
                                 std::mt19937_64& rng,
                                 const std::vector<double>& miss_probability = {});

}  // namespace skyran::lte
