// Uplink Sounding Reference Signal (SRS) symbols. The UE transmits a known
// Zadoff-Chu-based symbol on a comb of subcarriers; the eNodeB receives the
// frequency-domain symbol once every 10 ms and uses it both for channel
// sounding and - in SkyRAN - for time-of-flight ranging (Sec 3.2).
#pragma once

#include <cstdint>

#include "lte/fft.hpp"
#include "lte/sampling.hpp"

namespace skyran::lte {

struct SrsConfig {
  BandwidthConfig carrier = bandwidth_config(10.0);
  /// PRBs sounded by the SRS (B_SRS); must fit into the carrier.
  int sounding_prb = 48;
  /// Transmission comb: SRS occupies every `comb`-th subcarrier.
  int comb = 2;
  /// Offset of the comb within [0, comb).
  int comb_offset = 0;
  /// Zadoff-Chu root used for the base sequence (per-UE).
  std::uint32_t zc_root = 1;

  /// Number of resource elements the SRS actually occupies.
  int occupied_res() const { return sounding_prb * 12 / comb; }
};

/// A frequency-domain SRS symbol laid out in FFT order (DC at index 0,
/// negative frequencies in the upper half).
struct SrsSymbol {
  SrsConfig config;
  CplxVec freq;  ///< size config.carrier.fft_size
};

/// Build the known transmitted SRS symbol for `config`. Occupied REs carry
/// unit-magnitude ZC values; all other bins are zero.
SrsSymbol make_srs_symbol(const SrsConfig& config);

/// Signed subcarrier index (…,-2,-1,1,2,…; DC excluded) of each occupied RE,
/// in the same order the RE values appear when scanning FFT-order bins from
/// the most negative frequency upward.
std::vector<int> occupied_subcarriers(const SrsConfig& config);

/// FFT-order bin for a signed subcarrier index.
std::size_t fft_bin(int signed_subcarrier, std::size_t fft_size);

/// Zero-pad `freq` (FFT order, size N) in the middle to size K*N, implementing
/// the paper's eq. (2) upsampling: time-domain resolution improves K-fold.
CplxVec upsample_zero_pad(const CplxVec& freq, int k_factor);

}  // namespace skyran::lte
