#include "lte/enodeb.hpp"

#include <algorithm>

#include "geo/contract.hpp"

namespace skyran::lte {

EnodeB::EnodeB(BandwidthConfig carrier, rf::LinkBudget budget, Epc& epc,
               SchedulerPolicy policy)
    : carrier_(carrier), budget_(budget), epc_(epc), scheduler_(carrier, policy) {}

RanUeContext* EnodeB::find_ue_mutable(std::uint32_t rnti) {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const RanUeContext& u) { return u.rnti == rnti; });
  return it == ues_.end() ? nullptr : &*it;
}

const RanUeContext* EnodeB::find_ue(std::uint32_t rnti) const {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const RanUeContext& u) { return u.rnti == rnti; });
  return it == ues_.end() ? nullptr : &*it;
}

std::uint32_t EnodeB::attach_ue(const std::string& imsi) {
  for (const RanUeContext& u : ues_)
    if (u.imsi == imsi) return u.rnti;
  epc_.attach(imsi);
  RanUeContext ctx;
  ctx.rnti = next_rnti_++;
  ctx.imsi = imsi;
  ctx.srs.carrier = carrier_;
  // Give each UE its own ZC root so simultaneous SRS stay separable.
  ctx.srs.zc_root = 1 + (ctx.rnti % 20);
  ues_.push_back(std::move(ctx));
  return ues_.back().rnti;
}

bool EnodeB::detach_ue(std::uint32_t rnti) {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const RanUeContext& u) { return u.rnti == rnti; });
  if (it == ues_.end()) return false;
  epc_.detach(it->imsi);
  ues_.erase(it);
  return true;
}

double EnodeB::snr_from_path_loss_db(double path_loss_db) const {
  return budget_.snr_db(path_loss_db);
}

void EnodeB::report_snr(std::uint32_t rnti, double snr_db) {
  RanUeContext* ue = find_ue_mutable(rnti);
  expects(ue != nullptr, "EnodeB::report_snr: unknown RNTI");
  ue->last_snr_db = snr_db;
  ue->last_cqi = snr_to_cqi(snr_db);
}

std::vector<UeAllocation> EnodeB::serve_tti() {
  std::vector<UeChannelState> states;
  states.reserve(ues_.size());
  for (const RanUeContext& u : ues_) states.push_back({u.rnti, u.last_snr_db, true});
  return scheduler_.schedule_tti(states);
}

TofEstimator EnodeB::make_tof_estimator(std::uint32_t rnti, int k_factor) const {
  const RanUeContext* ue = find_ue(rnti);
  expects(ue != nullptr, "EnodeB::make_tof_estimator: unknown RNTI");
  return TofEstimator(ue->srs, k_factor);
}

}  // namespace skyran::lte
