// Adaptive modulation & coding: maps SNR to CQI (36.213 Table 7.2.3-1
// efficiencies with conventional BLER-10% switching thresholds) and on to
// achievable throughput. This is how SkyRAN converts REM SNR values into the
// throughput numbers its placement objective and the paper's figures report.
#pragma once

#include "lte/sampling.hpp"

namespace skyran::lte {

struct CqiEntry {
  int cqi = 0;
  double snr_threshold_db = 0.0;  ///< minimum SNR at which this CQI is used
  double efficiency_bps_per_hz = 0.0;
};

/// The 15-entry CQI table (index 0 = CQI 1).
const CqiEntry* cqi_table();
int cqi_table_size();

/// CQI selected for `snr_db` (0 = out of range / no service).
int snr_to_cqi(double snr_db);

/// Spectral efficiency for a CQI in [0, 15]; 0 for CQI 0.
double cqi_efficiency(int cqi);

/// Fraction of physical resources lost to control/reference overhead
/// (PDCCH, CRS, PBCH/PSS/SSS): a conventional ~25%.
inline constexpr double kL1OverheadFraction = 0.25;

/// Full-bandwidth MAC throughput a single UE achieves at `snr_db`, bit/s.
/// This is the per-UE "average throughput" metric used in the paper's maps
/// (each UE measured at full allocation, not capacity-shared).
double throughput_bps(double snr_db, const BandwidthConfig& carrier);

/// Throughput when the channel is changing under the UAV's motion and CQI
/// feedback lags: `staleness_db` is the typical SNR change within one CQI
/// feedback interval; the link must back off by that margin to keep BLER
/// acceptable (this is the probing-time degradation of Sec 2.5).
double throughput_with_staleness_bps(double snr_db, double staleness_db,
                                     const BandwidthConfig& carrier);

}  // namespace skyran::lte
