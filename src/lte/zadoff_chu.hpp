// Zadoff-Chu sequences: the constant-amplitude zero-autocorrelation family
// underlying LTE uplink reference signals (36.211 Sec 5.5). SRS base
// sequences are ZC sequences of the largest prime length below the allocated
// subcarrier count, cyclically extended.
#pragma once

#include <cstdint>

#include "lte/fft.hpp"

namespace skyran::lte {

/// Largest prime <= n (n >= 2).
std::uint32_t largest_prime_not_above(std::uint32_t n);

/// Zadoff-Chu sequence x_u[k] = exp(-i*pi*u*k*(k+1)/Nzc) of odd prime length
/// `n_zc` with root `u` in [1, n_zc-1], gcd(u, n_zc) = 1.
CplxVec zadoff_chu(std::uint32_t root, std::uint32_t n_zc);

/// LTE-style base sequence of length `length`: ZC of the largest prime not
/// above `length`, cyclically extended.
CplxVec base_sequence(std::uint32_t root, std::uint32_t length);

}  // namespace skyran::lte
