// Batched per-TTI downlink traffic plane: the massive-UE successor to the
// per-epoch lte::Scheduler. All per-UE state lives in flat structure-of-
// arrays slabs (rnti/snr/backlog/ewma/HARQ), so one TTI is a handful of
// linear passes instead of 10^5 small-object updates:
//
//   phase 1 (parallel over UEs)  traffic arrivals, eligibility, PF metric
//   phase 2 (serial, O(N))       PRB allocation: HARQ retransmissions first,
//                                then round-robin / proportional-fair top-K
//   phase 3 (serial, O(n_prb))   transmission outcomes, HARQ state machine
//   phase 4 (parallel over UEs)  EWMA decay + queue statistics
//
// The parallel passes run on core::ThreadPool under the repo-wide
// determinism contract: all randomness is counter-based (hashed from
// (seed, stream, ue, tti), never a shared generator), so serial and
// N-worker runs are bit-for-bit identical for any worker count.
//
// Modeled MAC features:
//  - traffic models per UE: full-buffer, CBR, bursty on/off, video (GOP
//    frame pattern with jittered frame sizes);
//  - an 8-process stop-and-wait HARQ state machine (synchronous: process
//    id = tti % 8) with chase-combining gain per retransmission and
//    max-retx drop accounting;
//  - an adaptive multicast/unicast subframe split in the MBSFN style: per
//    10 ms frame, up to 6 subframes flip to multicast when broadcast
//    backlog demands it, sized by the worst subscriber's CQI.
#pragma once

#include <cstdint>
#include <vector>

#include "lte/amc.hpp"
#include "lte/sampling.hpp"
#include "lte/scheduler.hpp"

namespace skyran::lte {

/// Per-UE downlink traffic model.
enum class TrafficModel : std::uint8_t {
  kFullBuffer,  ///< always backlogged
  kCbr,         ///< constant-bit-rate arrivals, exact per TTI
  kBurstyOnOff, ///< two-state Markov on/off; arrives at rate_bps while on
  kVideo,       ///< periodic frames, I-frames every GOP, jittered sizes
};

struct TrafficSpec {
  TrafficModel model = TrafficModel::kFullBuffer;
  double rate_bps = 2e6;        ///< CBR rate / on-state rate / video mean rate
  double mean_on_ttis = 200.0;  ///< bursty: mean on-burst length (TTIs)
  double mean_off_ttis = 800.0; ///< bursty: mean silence length (TTIs)
  int frame_interval_ttis = 33; ///< video: ~30 fps at 1 ms TTIs
  int gop_frames = 12;          ///< video: I-frame period in frames
  bool multicast_subscriber = false;  ///< receives the MBSFN broadcast
};

struct TrafficPlaneConfig {
  BandwidthConfig carrier = bandwidth_config(10.0);
  SchedulerPolicy policy = SchedulerPolicy::kProportionalFair;
  std::uint64_t seed = 1;
  double ewma_alpha = 0.01;  ///< PF long-term rate horizon (~100 ms)

  // HARQ: synchronous stop-and-wait, `harq_processes` parallel processes.
  int harq_processes = 8;
  int harq_max_retx = 4;                ///< retransmissions before drop
  double harq_combining_gain_db = 3.0;  ///< chase-combining SNR gain / retx
  /// First-transmission BLER when the channel sits exactly on the chosen
  /// CQI's switching threshold; halves per `bler_halving_db` of margin.
  double target_bler = 0.1;
  double bler_halving_db = 1.0;

  // Adaptive multicast/unicast subframe split (MBSFN style).
  bool adaptive_mbsfn = false;
  double multicast_rate_bps = 0.0;  ///< offered broadcast load
  int max_mbsfn_per_frame = 6;      ///< 3GPP cap: 6 of 10 subframes
};

/// Aggregate outcome of a run_ttis window. Every field is a deterministic
/// function of (config, UE population, TTI count) — bit-identical across
/// worker counts.
struct TrafficPlaneReport {
  std::int64_t ttis = 0;
  std::size_t ues = 0;
  std::uint64_t scheduled_ue_ttis = 0;  ///< (UE, TTI) pairs given PRBs

  double offered_bits = 0.0;  ///< arrivals (full-buffer UEs excluded)
  double served_bits = 0.0;   ///< delivered past HARQ
  double dropped_bits = 0.0;  ///< lost to max-retx drops
  double aggregate_throughput_bps = 0.0;
  double fairness_jain = 1.0;  ///< Jain's index over per-UE throughput

  // Percentiles over per-UE served throughput / mean queue delay.
  double p50_throughput_bps = 0.0;
  double p90_throughput_bps = 0.0;
  double p99_throughput_bps = 0.0;
  double p50_delay_ms = 0.0;
  double p90_delay_ms = 0.0;
  double p99_delay_ms = 0.0;

  std::uint64_t harq_first_tx = 0;  ///< new transport blocks transmitted
  std::uint64_t harq_retx = 0;      ///< retransmissions flown
  std::uint64_t harq_drops = 0;     ///< blocks dropped at max retx
  double harq_residual_bler = 0.0;  ///< drops / first transmissions

  int mbsfn_subframes = 0;  ///< TTIs spent on multicast
  double multicast_served_bits = 0.0;
  double multicast_backlog_bits = 0.0;
};

/// Per-TTI debug snapshot (cheap; for property tests and invariant checks).
struct TtiDebug {
  std::int64_t tti = -1;
  int prb_allocated = 0;  ///< unicast PRBs granted this TTI
  int prb_total = 0;      ///< carrier PRBs
  bool mbsfn = false;     ///< this TTI was a multicast subframe
};

class TrafficPlane {
 public:
  explicit TrafficPlane(TrafficPlaneConfig config);

  /// Register a UE. `snr_db` is the reported (CQI-loop) channel the
  /// scheduler works with; update it via set_snr. Returns the UE index.
  std::size_t add_ue(std::uint32_t rnti, double snr_db, const TrafficSpec& traffic);

  /// Update a UE's reported SNR (a fresh CQI report).
  void set_snr(std::size_t ue, double snr_db);

  /// Offset between the true channel and what the scheduler believes, dB
  /// (negative = the channel sagged below the CQI reports, e.g. a
  /// sim::FaultInjector SNR-sag window). Affects transmission outcomes
  /// only, never scheduling decisions.
  void set_snr_offset_db(double offset_db) { snr_offset_db_ = offset_db; }

  /// Advance `n` TTIs (1 ms each). Parallel passes shard over the shared
  /// thread pool; results are bit-identical for any worker count.
  void run_ttis(int n);

  std::size_t ue_count() const { return n_ues_; }
  std::int64_t ttis_run() const { return tti_; }
  const TrafficPlaneConfig& config() const { return config_; }
  const TtiDebug& last_tti() const { return last_tti_; }
  /// Unicast PRBs granted to each UE in the most recent TTI.
  const std::vector<std::uint16_t>& last_tti_prbs() const { return last_prb_; }

  // Per-UE accounting (tests and report assembly).
  double backlog_bits(std::size_t ue) const { return backlog_bits_[ue]; }
  double offered_bits(std::size_t ue) const { return offered_bits_[ue]; }
  double served_bits(std::size_t ue) const { return served_bits_[ue]; }
  double dropped_bits(std::size_t ue) const { return dropped_bits_[ue]; }
  double average_rate_bps(std::size_t ue) const { return ewma_bps_[ue]; }
  /// Bits sitting in active HARQ processes (in flight, neither served nor
  /// dropped nor queued).
  double in_flight_bits(std::size_t ue) const;
  std::int64_t last_served_tti(std::size_t ue) const { return last_served_tti_[ue]; }

  // HARQ process introspection (tests).
  bool harq_active(std::size_t ue, int process) const;
  int harq_retx_count(std::size_t ue, int process) const;

  /// FNV-1a over the full mutable state (backlogs, EWMAs, HARQ slabs,
  /// counters): two runs are bit-identical iff their hashes match.
  std::uint64_t state_hash() const;

  /// Aggregate report over everything run so far.
  TrafficPlaneReport report() const;

 private:
  struct SchedEntry {
    std::uint32_t ue = 0;
    std::uint16_t prb = 0;
    std::uint8_t process = 0;
    bool is_retx = false;
  };

  void phase1_arrivals_and_metrics(std::int64_t t);
  void phase2_allocate(std::int64_t t);
  void phase3_transmit(std::int64_t t);
  void phase4_decay();
  void refresh_mbsfn_pattern(std::int64_t t);
  double multicast_subframe_capacity_bits() const;

  TrafficPlaneConfig config_;
  std::size_t n_ues_ = 0;
  std::int64_t tti_ = 0;
  double snr_offset_db_ = 0.0;

  // Identity + channel slabs.
  std::vector<std::uint32_t> rnti_;
  std::vector<double> snr_db_;
  std::vector<int> cqi_;             ///< cached snr_to_cqi(snr_db_)
  std::vector<double> rate_1prb_;    ///< cached bits per PRB per TTI at cqi_

  // Traffic model slabs.
  std::vector<std::uint8_t> model_;
  std::vector<double> rate_bps_;
  std::vector<double> p_on_off_;     ///< bursty: P(on -> off) per TTI
  std::vector<double> p_off_on_;     ///< bursty: P(off -> on) per TTI
  std::vector<std::uint8_t> burst_on_;
  std::vector<std::int32_t> frame_interval_;
  std::vector<std::int32_t> gop_frames_;
  std::vector<std::uint8_t> subscribed_;

  // Queue + PF slabs.
  std::vector<double> backlog_bits_;
  std::vector<double> ewma_bps_;

  // HARQ slabs, n_ues x harq_processes flattened.
  std::vector<double> harq_bits_;
  std::vector<std::uint16_t> harq_prb_;
  std::vector<std::uint8_t> harq_retx_;
  std::vector<std::uint8_t> harq_active_;

  // Per-UE accounting.
  std::vector<double> offered_bits_;
  std::vector<double> served_bits_;
  std::vector<double> dropped_bits_;
  std::vector<double> backlog_sum_bits_;  ///< Little's-law integral
  std::vector<std::int64_t> last_served_tti_;

  // Per-TTI scratch (phase 1 -> phase 2).
  std::vector<std::uint8_t> eligible_;  ///< 0 none, 1 new TX, 2 retx pending
  std::vector<double> metric_;
  std::vector<double> ewma_add_;        ///< delivered bits this TTI (phase 3 -> 4)
  std::vector<SchedEntry> scheduled_;
  std::vector<std::uint16_t> last_prb_;
  TtiDebug last_tti_;
  std::size_t rr_cursor_ = 0;

  // Multicast/unicast split state.
  double mcast_backlog_bits_ = 0.0;
  double mcast_served_bits_ = 0.0;
  int mbsfn_this_frame_ = 0;   ///< subframes flipped to multicast this frame
  double mbsfn_capacity_bits_ = 0.0;  ///< per-subframe, from worst subscriber
  int mbsfn_subframes_total_ = 0;

  // Aggregate counters.
  std::uint64_t scheduled_ue_ttis_ = 0;
  std::uint64_t harq_first_tx_ = 0;
  std::uint64_t harq_retx_tx_ = 0;
  std::uint64_t harq_drops_ = 0;
};

}  // namespace skyran::lte
