// Simulated uplink channel for SRS symbols: propagation delay, multipath
// echoes and receiver noise applied in the frequency domain. This stands in
// for the USRP front end: the delay statistics it produces (sigma ~ 5 ns in
// LOS, up to ~25 ns with NLOS multipath) match the paper's measurements
// (Sec 4.3).
#pragma once

#include <random>
#include <vector>

#include "lte/srs.hpp"

namespace skyran::lte {

/// One multipath echo relative to the direct path.
struct MultipathTap {
  double excess_delay_s = 0.0;  ///< delay beyond the direct path
  double power_db = 0.0;        ///< power relative to the direct path
};

struct SrsChannelParams {
  double delay_s = 0.0;    ///< direct-path propagation + processing delay
  double snr_db = 20.0;    ///< per-occupied-subcarrier SNR at the receiver
  std::vector<MultipathTap> taps;  ///< NLOS echoes (empty for pure LOS)
};

/// Pass `tx` through the channel. Occupied subcarriers get the multi-tap
/// channel response; every bin receives white Gaussian receiver noise.
SrsSymbol apply_srs_channel(const SrsSymbol& tx, const SrsChannelParams& params,
                            std::mt19937_64& rng);

/// Standard NLOS echo profile: `n_taps` echoes with exponentially
/// distributed excess delays (mean `mean_excess_s`) and powers fading
/// `tap_decay_db` per tap below the direct path.
std::vector<MultipathTap> make_nlos_taps(int n_taps, double mean_excess_s,
                                         double first_tap_power_db, double tap_decay_db,
                                         std::mt19937_64& rng);

}  // namespace skyran::lte
