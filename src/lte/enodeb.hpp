// The airborne eNodeB: ties together RRC-level UE attachment (backed by the
// EPC), the SRS/ToF measurement plane and the MAC scheduler. Physically this
// is the OAI eNodeB + USRP B210 of the paper's payload (Sec 4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lte/amc.hpp"
#include "lte/epc.hpp"
#include "lte/ranging.hpp"
#include "lte/scheduler.hpp"
#include "lte/srs.hpp"
#include "rf/link.hpp"

namespace skyran::lte {

/// RRC-level record of a connected UE at the eNodeB.
struct RanUeContext {
  std::uint32_t rnti = 0;
  std::string imsi;
  SrsConfig srs;           ///< per-UE SRS configuration (distinct ZC root)
  double last_snr_db = 0.0;
  int last_cqi = 0;
};

class EnodeB {
 public:
  /// `budget` defines the uplink link budget used to convert path loss to
  /// SNR reports.
  EnodeB(BandwidthConfig carrier, rf::LinkBudget budget, Epc& epc,
         SchedulerPolicy policy = SchedulerPolicy::kRoundRobin);

  /// RRC connection + NAS attach via the EPC. Returns the assigned RNTI;
  /// re-attaching an already-connected IMSI returns its existing RNTI.
  std::uint32_t attach_ue(const std::string& imsi);

  /// Releases the RRC connection and detaches from the EPC.
  bool detach_ue(std::uint32_t rnti);

  const std::vector<RanUeContext>& ues() const { return ues_; }
  const RanUeContext* find_ue(std::uint32_t rnti) const;

  /// Uplink SNR (dB) implied by a path loss through this eNodeB's budget.
  double snr_from_path_loss_db(double path_loss_db) const;

  /// Record a PHY SNR report for a UE (100 Hz during flights, Sec 3.3.3);
  /// updates the stored CQI.
  void report_snr(std::uint32_t rnti, double snr_db);

  /// Serve one TTI of full-buffer traffic using the last reported SNRs.
  std::vector<UeAllocation> serve_tti();

  /// The per-UE ToF estimator for SRS ranging.
  TofEstimator make_tof_estimator(std::uint32_t rnti, int k_factor = 4) const;

  const BandwidthConfig& carrier() const { return carrier_; }
  const rf::LinkBudget& link_budget() const { return budget_; }

 private:
  RanUeContext* find_ue_mutable(std::uint32_t rnti);

  BandwidthConfig carrier_;
  rf::LinkBudget budget_;
  Epc& epc_;
  Scheduler scheduler_;
  std::vector<RanUeContext> ues_;
  std::uint32_t next_rnti_ = 61;  // C-RNTI range starts past reserved values
};

}  // namespace skyran::lte
