// FFT engine for the SRS correlation pipeline (paper Sec 3.2.2, eq. 1-3).
// Radix-2 iterative Cooley-Tukey for power-of-two sizes, with a Bluestein
// chirp-z fallback so non-power-of-two LTE FFT sizes (e.g. 1536 for 15 MHz)
// are also supported.
#pragma once

#include <complex>
#include <vector>

namespace skyran::lte {

using Cplx = std::complex<double>;
using CplxVec = std::vector<Cplx>;

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. Any size >= 1 (Bluestein used when not a power of
/// two). No normalization.
void fft_inplace(CplxVec& data);

/// In-place inverse FFT, normalized by 1/N.
void ifft_inplace(CplxVec& data);

/// Out-of-place conveniences.
CplxVec fft(CplxVec data);
CplxVec ifft(CplxVec data);

/// Element-wise a[i] * conj(b[i]); sizes must match.
CplxVec multiply_conjugate(const CplxVec& a, const CplxVec& b);

/// Index of the element with the largest magnitude.
std::size_t max_abs_index(const CplxVec& v);

}  // namespace skyran::lte
