#include "lte/sampling.hpp"

#include <cmath>

#include "geo/contract.hpp"
#include "rf/units.hpp"

namespace skyran::lte {

double BandwidthConfig::meters_per_sample() const {
  return rf::kSpeedOfLight / sample_rate_hz;
}

BandwidthConfig bandwidth_config(double bandwidth_mhz) {
  if (std::abs(bandwidth_mhz - 1.4) < 1e-9) return {1.4e6, 6, 128, 1.92e6};
  if (std::abs(bandwidth_mhz - 3.0) < 1e-9) return {3e6, 15, 256, 3.84e6};
  if (std::abs(bandwidth_mhz - 5.0) < 1e-9) return {5e6, 25, 512, 7.68e6};
  if (std::abs(bandwidth_mhz - 10.0) < 1e-9) return {10e6, 50, 1024, 15.36e6};
  if (std::abs(bandwidth_mhz - 15.0) < 1e-9) return {15e6, 75, 1536, 23.04e6};
  if (std::abs(bandwidth_mhz - 20.0) < 1e-9) return {20e6, 100, 2048, 30.72e6};
  throw ContractViolation("bandwidth_config: unsupported LTE bandwidth");
}

}  // namespace skyran::lte
