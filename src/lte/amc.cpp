#include "lte/amc.hpp"

#include <algorithm>
#include <array>

#include "geo/contract.hpp"

namespace skyran::lte {

namespace {

// Efficiencies from 36.213 Table 7.2.3-1; thresholds are the widely used
// ~10% BLER switching points for AWGN link curves.
constexpr std::array<CqiEntry, 15> kCqiTable{{
    {1, -6.7, 0.1523},
    {2, -4.7, 0.2344},
    {3, -2.3, 0.3770},
    {4, 0.2, 0.6016},
    {5, 2.4, 0.8770},
    {6, 4.3, 1.1758},
    {7, 5.9, 1.4766},
    {8, 8.1, 1.9141},
    {9, 10.3, 2.4063},
    {10, 11.7, 2.7305},
    {11, 14.1, 3.3223},
    {12, 16.3, 3.9023},
    {13, 18.7, 4.5234},
    {14, 21.0, 5.1152},
    {15, 22.7, 5.5547},
}};

}  // namespace

const CqiEntry* cqi_table() { return kCqiTable.data(); }
int cqi_table_size() { return static_cast<int>(kCqiTable.size()); }

int snr_to_cqi(double snr_db) {
  int cqi = 0;
  for (const CqiEntry& e : kCqiTable) {
    if (snr_db >= e.snr_threshold_db)
      cqi = e.cqi;
    else
      break;
  }
  return cqi;
}

double cqi_efficiency(int cqi) {
  expects(cqi >= 0 && cqi <= 15, "cqi_efficiency: CQI must be in [0, 15]");
  if (cqi == 0) return 0.0;
  return kCqiTable[static_cast<std::size_t>(cqi - 1)].efficiency_bps_per_hz;
}

double throughput_bps(double snr_db, const BandwidthConfig& carrier) {
  const double eff = cqi_efficiency(snr_to_cqi(snr_db));
  return eff * carrier.occupied_bandwidth_hz() * (1.0 - kL1OverheadFraction);
}

double throughput_with_staleness_bps(double snr_db, double staleness_db,
                                     const BandwidthConfig& carrier) {
  expects(staleness_db >= 0.0, "throughput_with_staleness_bps: staleness must be >= 0");
  return throughput_bps(snr_db - staleness_db, carrier);
}

}  // namespace skyran::lte
