#include "lte/ranging.hpp"

#include <algorithm>
#include <cmath>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "rf/units.hpp"

namespace skyran::lte {

TofEstimator::TofEstimator(SrsConfig config, int k_factor, double max_delay_samples,
                           double leading_edge_fraction, bool refine_peak,
                           double min_peak_to_side_db)
    : config_(config),
      reference_(make_srs_symbol(config)),
      k_factor_(k_factor),
      leading_edge_fraction_(leading_edge_fraction),
      refine_peak_(refine_peak),
      min_peak_to_side_db_(min_peak_to_side_db) {
  expects(k_factor >= 1, "TofEstimator: K must be >= 1");
  expects(leading_edge_fraction >= 0.0 && leading_edge_fraction <= 1.0,
          "TofEstimator: leading-edge fraction must be in [0,1]");
  expects(min_peak_to_side_db >= 0.0, "TofEstimator: quality gate must be >= 0 dB");
  const double alias_period =
      static_cast<double>(config.carrier.fft_size) / config.comb;
  if (max_delay_samples <= 0.0) max_delay_samples = alias_period / 2.0;
  expects(max_delay_samples <= alias_period,
          "TofEstimator: search window exceeds the comb alias period");
  max_delay_samples_ = max_delay_samples;
}

TofEstimate TofEstimator::estimate(const SrsSymbol& received) const {
  expects(received.freq.size() == config_.carrier.fft_size,
          "TofEstimator::estimate: FFT size mismatch");
  // y = ifft(upsample(s . h*))  (paper eq. 1-2)
  CplxVec prod = multiply_conjugate(received.freq, reference_.freq);
  CplxVec up = upsample_zero_pad(prod, k_factor_);
  ifft_inplace(up);

  // Peak search restricted to the physically plausible delay window
  // (paper eq. 3 with a window; the comb aliases the response beyond it).
  const auto window =
      static_cast<std::size_t>(max_delay_samples_ * k_factor_);
  if (window < 1 || window > up.size()) {
    // Degenerate search window (e.g. a sub-bin max_delay after clock sag):
    // there is nothing to search, so return a flagged zero estimate rather
    // than aborting the whole pipeline; callers drop !quality_ok tuples.
    SKYRAN_COUNTER_INC("lte.tof.degenerate_window");
    TofEstimate flagged;
    flagged.quality_ok = false;
    return flagged;
  }
  // Fused argmax + total-power scan over the window (kernels layer; SIMD
  // when available). argmax/peak are exact at any level; total_mag carries
  // the documented reduction tolerance, which only feeds the quality gate.
  const kernels::PowerPeak pp = kernels::power_peak_scan(up.data(), window);
  std::size_t best = pp.argmax;
  double best_mag = pp.peak;
  const double total_mag = pp.total;

  // First-arrival detection: step back from the global peak to the earliest
  // local maximum still carrying a significant fraction of the peak power.
  if (leading_edge_fraction_ > 0.0) {
    const double floor_mag =
        best_mag * leading_edge_fraction_ * leading_edge_fraction_;  // power domain
    for (std::size_t i = 0; i < best; ++i) {
      const double m = std::norm(up[i]);
      const bool local_max = m >= (i > 0 ? std::norm(up[i - 1]) : 0.0) &&
                             (i + 1 < window ? m >= std::norm(up[i + 1]) : true);
      if (local_max && m >= floor_mag) {
        best = i;
        best_mag = m;
        break;
      }
    }
  }

  // Parabolic interpolation over the log-magnitudes of the peak's neighbors
  // refines the delay below the upsampled bin width (standard correlator
  // practice; the bins are K-fold finer than a sample to begin with).
  double frac = 0.0;
  if (refine_peak_ && best > 0 && best + 1 < window) {
    const double m0 = std::sqrt(std::norm(up[best - 1]));
    const double m1 = std::sqrt(std::norm(up[best]));
    const double m2 = std::sqrt(std::norm(up[best + 1]));
    const double denom = m0 - 2.0 * m1 + m2;
    if (std::abs(denom) > 1e-12) frac = std::clamp(0.5 * (m0 - m2) / denom, -0.5, 0.5);
  }

  TofEstimate out;
  out.delay_samples = (static_cast<double>(best) + frac) / k_factor_;
  out.delay_s = out.delay_samples / config_.carrier.sample_rate_hz;
  out.distance_m = out.delay_s * rf::kSpeedOfLight;
  const double mean_off_peak =
      (total_mag - best_mag) / static_cast<double>(window > 1 ? window - 1 : 1);
  out.peak_to_side_db =
      mean_off_peak > 0.0 ? rf::linear_to_db(best_mag / mean_off_peak) : 0.0;
  if (min_peak_to_side_db_ > 0.0 && out.peak_to_side_db < min_peak_to_side_db_)
    out.quality_ok = false;
  return out;
}

std::vector<TofEstimate> TofEstimator::estimate_batch(
    std::span<const SrsSymbol> received) const {
  SKYRAN_TRACE_SPAN("lte.tof.estimate_batch");
  std::vector<TofEstimate> out(received.size());
  core::parallel_for(received.size(), [&](std::size_t i) { out[i] = estimate(received[i]); });
  SKYRAN_COUNTER_ADD("lte.tof.correlations", out.size());
  SKYRAN_HISTOGRAM_OBSERVE("lte.tof.batch_symbols", out.size());
  if (obs::enabled()) {
    // Correlation-quality telemetry, recorded after the parallel sweep so
    // the hot per-symbol kernel stays untouched.
    for (const TofEstimate& e : out) {
      SKYRAN_HISTOGRAM_OBSERVE("lte.tof.peak_to_side_db", e.peak_to_side_db);
      SKYRAN_HISTOGRAM_OBSERVE("lte.tof.distance_m", e.distance_m);
    }
  }
  return out;
}

}  // namespace skyran::lte
