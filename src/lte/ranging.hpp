// Time-of-flight estimation from SRS symbols (paper Sec 3.2.2, eq. 1-3):
// cross-correlate the received against the known symbol via an IFFT, after
// K-fold zero-pad upsampling for sub-sample delay resolution; the magnitude
// peak position is the delay estimate.
#pragma once

#include <span>
#include <vector>

#include "lte/srs.hpp"

namespace skyran::lte {

struct TofEstimate {
  double delay_samples = 0.0;  ///< in base (non-upsampled) sample units
  double delay_s = 0.0;
  double distance_m = 0.0;     ///< delay * c
  double peak_to_side_db = 0.0;  ///< peak power over mean off-peak power
  /// False when the estimate is unusable: the correlation peak failed the
  /// quality gate (peak_to_side below min_peak_to_side_db) or the search
  /// window was degenerate. Consumers must drop flagged estimates instead of
  /// feeding them to the solver.
  bool quality_ok = true;
};

class TofEstimator {
 public:
  /// `k_factor`: upsampling factor K (paper uses 4).
  /// `max_delay_samples`: correlation peaks are searched in
  /// [0, max_delay_samples) base samples; defaults to fft_size/(4*comb) to
  /// stay clear of the comb's time-domain alias.
  /// `leading_edge_fraction`: when > 0, the estimator returns the earliest
  /// local peak whose magnitude reaches this fraction of the global peak
  /// (first-arrival detection, which suppresses the positive bias multipath
  /// echoes impose on a max-peak search). 0 disables it (pure eq. 3).
  /// `refine_peak`: parabolic sub-bin interpolation around the chosen peak;
  /// disable to get the paper's raw 1/K-sample quantization.
  /// `min_peak_to_side_db`: quality gate. Estimates whose peak-to-sidelobe
  /// ratio falls below this are returned with quality_ok = false (too noisy
  /// to trust: an SNR-sagged or jammed symbol correlates to a flat response
  /// whose "peak" is arbitrary). 0 disables the gate.
  explicit TofEstimator(SrsConfig config, int k_factor = 4, double max_delay_samples = 0.0,
                        double leading_edge_fraction = 0.6, bool refine_peak = true,
                        double min_peak_to_side_db = 0.0);

  /// Estimate the delay of `received` relative to the known transmitted
  /// symbol for this config.
  TofEstimate estimate(const SrsSymbol& received) const;

  /// estimate() over a batch of received symbols, parallelized across
  /// symbols on the global thread pool. out[i] == estimate(received[i])
  /// bit-for-bit regardless of the worker count.
  std::vector<TofEstimate> estimate_batch(std::span<const SrsSymbol> received) const;

  const SrsConfig& config() const { return config_; }
  int k_factor() const { return k_factor_; }
  double max_delay_samples() const { return max_delay_samples_; }
  double min_peak_to_side_db() const { return min_peak_to_side_db_; }

 private:
  SrsConfig config_;
  SrsSymbol reference_;
  int k_factor_;
  double max_delay_samples_;
  double leading_edge_fraction_;
  bool refine_peak_;
  double min_peak_to_side_db_;
};

}  // namespace skyran::lte
