#include "lte/epc.hpp"

#include <algorithm>

#include "geo/contract.hpp"

namespace skyran::lte {

EpcUeContext* Epc::find_mutable(const std::string& imsi) {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const EpcUeContext& c) { return c.imsi == imsi; });
  return it == ues_.end() ? nullptr : &*it;
}

const EpcUeContext& Epc::attach(const std::string& imsi) {
  expects(!imsi.empty(), "Epc::attach: IMSI must not be empty");
  if (EpcUeContext* existing = find_mutable(imsi)) {
    if (existing->state == UeEmmState::kDeregistered) {
      existing->state = UeEmmState::kRegistered;
      existing->bearers = {EpsBearer{}};
    }
    return *existing;
  }
  EpcUeContext ctx;
  ctx.imsi = imsi;
  ctx.ue_id = next_ue_id_++;
  ctx.state = UeEmmState::kRegistered;
  ctx.bearers = {EpsBearer{}};
  ues_.push_back(std::move(ctx));
  return ues_.back();
}

bool Epc::detach(const std::string& imsi) {
  EpcUeContext* ctx = find_mutable(imsi);
  if (ctx == nullptr || ctx->state == UeEmmState::kDeregistered) return false;
  ctx->state = UeEmmState::kDeregistered;
  ctx->bearers.clear();
  return true;
}

int Epc::add_dedicated_bearer(const std::string& imsi, int qci) {
  EpcUeContext* ctx = find_mutable(imsi);
  expects(ctx != nullptr && ctx->state == UeEmmState::kRegistered,
          "Epc::add_dedicated_bearer: UE must be registered");
  int next_id = 5;
  for (const EpsBearer& b : ctx->bearers) next_id = std::max(next_id, b.bearer_id);
  ++next_id;
  ctx->bearers.push_back({next_id, qci});
  return next_id;
}

std::optional<EpcUeContext> Epc::find(const std::string& imsi) const {
  const auto it = std::find_if(ues_.begin(), ues_.end(),
                               [&](const EpcUeContext& c) { return c.imsi == imsi; });
  if (it == ues_.end()) return std::nullopt;
  return *it;
}

std::size_t Epc::registered_count() const {
  return static_cast<std::size_t>(
      std::count_if(ues_.begin(), ues_.end(), [](const EpcUeContext& c) {
        return c.state == UeEmmState::kRegistered;
      }));
}

}  // namespace skyran::lte
