#include "lte/backhaul.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::lte {

Backhaul::Backhaul(const rf::RayTraceChannel& channel, BackhaulConfig config)
    : channel_(channel), config_(config) {
  expects(config.lte_rate_bps > 0.0 && config.mmwave_peak_bps > 0.0 &&
              config.wifi_peak_bps > 0.0,
          "Backhaul: rates must be positive");
  expects(config.mmwave_range_m > 0.0 && config.wifi_half_range_m > 0.0,
          "Backhaul: ranges must be positive");
}

double Backhaul::capacity_bps(geo::Vec3 uav) const {
  const double d = uav.dist(config_.gateway);
  switch (config_.tech) {
    case BackhaulTech::kLteTether:
      // Macro coverage: a flat commercial rate while within ~10 km.
      return d < 10000.0 ? config_.lte_rate_bps : 0.0;
    case BackhaulTech::kMmWave: {
      // Strict LOS; linear rate decay to the range edge past half range.
      if (!channel_.line_of_sight(uav, config_.gateway)) return 0.0;
      if (d >= config_.mmwave_range_m) return 0.0;
      const double half = config_.mmwave_range_m / 2.0;
      if (d <= half) return config_.mmwave_peak_bps;
      return config_.mmwave_peak_bps * (config_.mmwave_range_m - d) /
             (config_.mmwave_range_m - half);
    }
    case BackhaulTech::kWifi: {
      // Shannon-flavored rate-vs-range: halves every half_range; NLOS
      // penalizes by an extra factor of 4.
      double rate = config_.wifi_peak_bps *
                    std::pow(0.5, d / config_.wifi_half_range_m);
      if (!channel_.line_of_sight(uav, config_.gateway)) rate /= 4.0;
      return rate;
    }
  }
  return 0.0;
}

double Backhaul::end_to_end_mean_bps(std::span<const double> access_rates_bps,
                                     geo::Vec3 uav) const {
  expects(!access_rates_bps.empty(), "Backhaul: need at least one UE rate");
  double access_total = 0.0;
  for (const double r : access_rates_bps) {
    expects(r >= 0.0, "Backhaul: access rates must be non-negative");
    access_total += r;
  }
  const double pipe = capacity_bps(uav);
  const double scale = access_total > pipe && access_total > 0.0 ? pipe / access_total : 1.0;
  return scale * access_total / static_cast<double>(access_rates_bps.size());
}

}  // namespace skyran::lte
