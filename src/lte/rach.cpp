#include "lte/rach.hpp"

#include <algorithm>
#include <map>

#include "geo/contract.hpp"

namespace skyran::lte {

RachReport simulate_attach_storm(int n_ues, const RachConfig& config, std::mt19937_64& rng,
                                 const std::vector<double>& miss_probability) {
  expects(n_ues >= 1, "simulate_attach_storm: need at least one UE");
  expects(config.n_preambles >= 1, "simulate_attach_storm: need preambles");
  expects(config.max_attempts >= 1, "simulate_attach_storm: need attempts");
  expects(miss_probability.empty() ||
              miss_probability.size() == static_cast<std::size_t>(n_ues),
          "simulate_attach_storm: one miss probability per UE (or none)");

  struct UeState {
    bool attached = false;
    int attempts = 0;
    double next_try_ms = 0.0;  ///< earliest PRACH occasion the UE may use
  };
  std::vector<UeState> ues(static_cast<std::size_t>(n_ues));

  std::uniform_int_distribution<int> preamble(0, config.n_preambles - 1);
  std::uniform_real_distribution<double> backoff(0.0, config.backoff_max_ms);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  RachReport report;
  report.per_ue.resize(static_cast<std::size_t>(n_ues));

  // Walk PRACH occasions until everyone is attached or out of attempts.
  const double horizon_ms =
      config.prach_period_ms * config.max_attempts * 20.0 + config.backoff_max_ms;
  for (double now = 0.0; now <= horizon_ms; now += config.prach_period_ms) {
    // Which UEs transmit this occasion, and on which preamble?
    std::map<int, std::vector<std::size_t>> chosen;
    for (std::size_t i = 0; i < ues.size(); ++i) {
      UeState& ue = ues[i];
      if (ue.attached || ue.attempts >= config.max_attempts || ue.next_try_ms > now)
        continue;
      ++ue.attempts;
      chosen[preamble(rng)].push_back(i);
    }
    if (chosen.empty()) {
      bool anyone_waiting = false;
      for (const UeState& ue : ues)
        anyone_waiting |= !ue.attached && ue.attempts < config.max_attempts;
      if (!anyone_waiting) break;
      continue;
    }
    for (const auto& [p, contenders] : chosen) {
      if (contenders.size() > 1) {
        // Collision: everyone backs off.
        for (const std::size_t i : contenders)
          ues[i].next_try_ms = now + config.prach_period_ms + backoff(rng);
        continue;
      }
      const std::size_t i = contenders.front();
      const double miss =
          miss_probability.empty() ? config.base_miss_probability : miss_probability[i];
      if (u01(rng) < miss) {
        ues[i].next_try_ms = now + config.prach_period_ms + backoff(rng);
        continue;
      }
      ues[i].attached = true;
      report.per_ue[i].attached = true;
      report.per_ue[i].attach_time_ms = now + config.prach_period_ms;  // msg2-4 round
      report.last_attach_ms = std::max(report.last_attach_ms, report.per_ue[i].attach_time_ms);
    }
  }

  double attempts_sum = 0.0;
  for (std::size_t i = 0; i < ues.size(); ++i) {
    report.per_ue[i].attempts = ues[i].attempts;
    attempts_sum += ues[i].attempts;
    if (!ues[i].attached) ++report.failed;
  }
  report.mean_attempts = attempts_sum / static_cast<double>(n_ues);
  return report;
}

}  // namespace skyran::lte
