#include "lte/srs.hpp"

#include "geo/contract.hpp"
#include "lte/zadoff_chu.hpp"

namespace skyran::lte {

std::vector<int> occupied_subcarriers(const SrsConfig& config) {
  expects(config.comb >= 1, "SrsConfig: comb must be >= 1");
  expects(config.comb_offset >= 0 && config.comb_offset < config.comb,
          "SrsConfig: comb offset must be in [0, comb)");
  expects(config.sounding_prb >= 1 && config.sounding_prb <= config.carrier.n_prb,
          "SrsConfig: sounding bandwidth must fit the carrier");
  const int total = config.sounding_prb * 12;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(total / config.comb));
  // Subcarriers straddle DC symmetrically; DC itself is never transmitted.
  for (int i = config.comb_offset; i < total; i += config.comb) {
    int sc = i - total / 2;
    if (sc >= 0) ++sc;  // skip DC
    out.push_back(sc);
  }
  return out;
}

std::size_t fft_bin(int signed_subcarrier, std::size_t fft_size) {
  expects(signed_subcarrier != 0, "fft_bin: DC is not a valid SRS subcarrier");
  const int n = static_cast<int>(fft_size);
  expects(signed_subcarrier > -n / 2 && signed_subcarrier < n / 2,
          "fft_bin: subcarrier outside FFT range");
  return static_cast<std::size_t>((signed_subcarrier + n) % n);
}

SrsSymbol make_srs_symbol(const SrsConfig& config) {
  const std::vector<int> res = occupied_subcarriers(config);
  const CplxVec base = base_sequence(config.zc_root, static_cast<std::uint32_t>(res.size()));
  SrsSymbol sym;
  sym.config = config;
  sym.freq.assign(config.carrier.fft_size, Cplx{});
  for (std::size_t i = 0; i < res.size(); ++i)
    sym.freq[fft_bin(res[i], config.carrier.fft_size)] = base[i];
  return sym;
}

CplxVec upsample_zero_pad(const CplxVec& freq, int k_factor) {
  expects(k_factor >= 1, "upsample_zero_pad: K must be >= 1");
  expects(freq.size() % 2 == 0, "upsample_zero_pad: FFT size must be even");
  const std::size_t n = freq.size();
  const std::size_t half = n / 2;
  CplxVec out(n * static_cast<std::size_t>(k_factor), Cplx{});
  // Positive-frequency half (including DC) stays at the front; the
  // negative-frequency half moves to the tail; zeros fill the middle.
  for (std::size_t i = 0; i < half; ++i) out[i] = freq[i];
  for (std::size_t i = half; i < n; ++i) out[out.size() - n + i] = freq[i];
  return out;
}

}  // namespace skyran::lte
