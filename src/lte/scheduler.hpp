// Downlink MAC scheduler: allocates PRBs across attached UEs per TTI (1 ms).
// Round-robin and proportional-fair policies are provided; the simulator uses
// it to turn per-UE SNRs into served throughput when the RAN is actually
// carrying traffic (examples and the service phase of an epoch).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lte/amc.hpp"
#include "lte/sampling.hpp"

namespace skyran::lte {

enum class SchedulerPolicy {
  kRoundRobin,        ///< equal PRB share regardless of channel
  kProportionalFair,  ///< weight by instantaneous rate / long-term average
};

/// Input per UE for one TTI.
struct UeChannelState {
  std::uint32_t rnti = 0;
  double snr_db = 0.0;
  bool backlogged = true;  ///< full-buffer traffic when true
};

/// Output per UE for one TTI.
struct UeAllocation {
  std::uint32_t rnti = 0;
  int prb = 0;
  double bits = 0.0;  ///< MAC bits served this TTI
};

class Scheduler {
 public:
  explicit Scheduler(BandwidthConfig carrier,
                     SchedulerPolicy policy = SchedulerPolicy::kRoundRobin);

  /// Schedule one 1 ms TTI. PRBs are integer-allocated; leftover PRBs go to
  /// the UEs with the best channels.
  std::vector<UeAllocation> schedule_tti(const std::vector<UeChannelState>& ues);

  /// Long-term served rate tracked per UE (for proportional fair), bit/s.
  double average_rate_bps(std::uint32_t rnti) const;

  SchedulerPolicy policy() const { return policy_; }
  const BandwidthConfig& carrier() const { return carrier_; }

 private:
  struct RateState {
    std::uint32_t rnti = 0;
    double ewma_bps = 1.0;  // avoid divide-by-zero in PF metric
  };
  RateState& state_for(std::uint32_t rnti);

  BandwidthConfig carrier_;
  SchedulerPolicy policy_;
  std::vector<RateState> rates_;
  /// rnti -> index into rates_: keeps state_for O(1) amortized so a TTI
  /// over N UEs stays O(N) instead of O(N^2).
  std::unordered_map<std::uint32_t, std::size_t> rate_index_;
  std::size_t rr_cursor_ = 0;
};

}  // namespace skyran::lte
