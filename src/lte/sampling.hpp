// Standard LTE bandwidth configurations (36.101 Table 5.6-1): channel
// bandwidth -> resource blocks, FFT size and sample rate. SkyRAN runs a
// 10 MHz carrier (Sec 4.3): 50 PRB, N = 1024, fs = 15.36 MHz, so one
// time-domain sample spans 19.52 m of propagation.
#pragma once

#include <cstddef>

namespace skyran::lte {

/// Subcarrier spacing, Hz.
inline constexpr double kSubcarrierSpacingHz = 15e3;

/// One PRB: 12 subcarriers of 15 kHz.
inline constexpr double kPrbBandwidthHz = 12 * kSubcarrierSpacingHz;

/// Transmission time interval (one subframe), seconds.
inline constexpr double kTtiSeconds = 1e-3;

struct BandwidthConfig {
  double bandwidth_hz = 10e6;
  int n_prb = 50;           ///< resource blocks (12 subcarriers each)
  std::size_t fft_size = 1024;
  double sample_rate_hz = 15.36e6;

  int n_subcarriers() const { return n_prb * 12; }
  /// Propagation distance covered by one time-domain sample, meters.
  double meters_per_sample() const;
  /// Occupied (useful) bandwidth, Hz.
  double occupied_bandwidth_hz() const { return n_subcarriers() * kSubcarrierSpacingHz; }
};

/// Lookup by channel bandwidth in MHz: one of {1.4, 3, 5, 10, 15, 20}.
/// Throws ContractViolation for unsupported widths.
BandwidthConfig bandwidth_config(double bandwidth_mhz);

}  // namespace skyran::lte
