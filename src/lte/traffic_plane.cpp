#include "lte/traffic_plane.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "geo/stats.hpp"
#include "obs/obs.hpp"

namespace skyran::lte {

namespace {

constexpr double kFullBufferBits = 1e12;

// Counter-based randomness: every draw is a pure function of
// (seed, stream, ue, tti), so parallel phases never share generator state
// and serial == N-worker output is bit-for-bit identical.
enum Stream : std::uint64_t {
  kStreamBurstInit = 0x1001,
  kStreamBurst = 0x1002,
  kStreamVideo = 0x1003,
  kStreamHarq = 0x1004,
};

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t seed, std::uint64_t stream, std::uint64_t ue,
           std::uint64_t tti) {
  const std::uint64_t h = mix64(seed ^ mix64(stream ^ mix64(ue ^ mix64(tti))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double cqi_threshold_db(int cqi) { return cqi_table()[cqi - 1].snr_threshold_db; }

/// MBSFN-capable subframe positions within a 10 ms frame (3GPP: all but the
/// PSS/SSS/PBCH and paging subframes 0, 4, 5, 9).
constexpr int kMbsfnPositions[6] = {1, 2, 3, 6, 7, 8};

void hash_bytes(std::uint64_t& h, const void* data, std::size_t bytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;  // FNV-1a prime
  }
}

template <typename T>
void hash_vec(std::uint64_t& h, const std::vector<T>& v) {
  if (!v.empty()) hash_bytes(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

TrafficPlane::TrafficPlane(TrafficPlaneConfig config) : config_(config) {
  expects(config_.carrier.n_prb > 0, "TrafficPlane: carrier must have PRBs");
  expects(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
          "TrafficPlane: ewma_alpha must be in (0,1]");
  expects(config_.harq_processes >= 1 && config_.harq_processes <= 16,
          "TrafficPlane: harq_processes must be in [1,16]");
  expects(config_.harq_max_retx >= 0, "TrafficPlane: harq_max_retx must be >= 0");
  expects(config_.target_bler >= 0.0 && config_.target_bler <= 1.0,
          "TrafficPlane: target_bler must be in [0,1]");
  expects(config_.bler_halving_db > 0.0, "TrafficPlane: bler_halving_db must be positive");
  expects(config_.max_mbsfn_per_frame >= 0 && config_.max_mbsfn_per_frame <= 6,
          "TrafficPlane: max_mbsfn_per_frame must be in [0,6]");
  expects(config_.multicast_rate_bps >= 0.0,
          "TrafficPlane: multicast_rate_bps must be >= 0");
}

std::size_t TrafficPlane::add_ue(std::uint32_t rnti, double snr_db,
                                 const TrafficSpec& traffic) {
  expects(std::isfinite(snr_db), "TrafficPlane::add_ue: SNR must be finite");
  expects(traffic.rate_bps >= 0.0, "TrafficPlane::add_ue: rate must be >= 0");
  expects(traffic.mean_on_ttis >= 1.0 && traffic.mean_off_ttis >= 1.0,
          "TrafficPlane::add_ue: bursty state means must be >= 1 TTI");
  expects(traffic.frame_interval_ttis >= 1 && traffic.gop_frames >= 1,
          "TrafficPlane::add_ue: video frame parameters must be >= 1");

  const std::size_t i = n_ues_++;
  rnti_.push_back(rnti);
  snr_db_.push_back(snr_db);
  const int cqi = snr_to_cqi(snr_db);
  cqi_.push_back(cqi);
  rate_1prb_.push_back(cqi_efficiency(cqi) * kPrbBandwidthHz * kTtiSeconds *
                       (1.0 - kL1OverheadFraction));

  model_.push_back(static_cast<std::uint8_t>(traffic.model));
  rate_bps_.push_back(traffic.rate_bps);
  p_on_off_.push_back(1.0 / traffic.mean_on_ttis);
  p_off_on_.push_back(1.0 / traffic.mean_off_ttis);
  const double duty =
      traffic.mean_on_ttis / (traffic.mean_on_ttis + traffic.mean_off_ttis);
  burst_on_.push_back(u01(config_.seed, kStreamBurstInit, i, 0) < duty ? 1 : 0);
  frame_interval_.push_back(traffic.frame_interval_ttis);
  gop_frames_.push_back(traffic.gop_frames);
  subscribed_.push_back(traffic.multicast_subscriber ? 1 : 0);

  backlog_bits_.push_back(traffic.model == TrafficModel::kFullBuffer ? kFullBufferBits
                                                                     : 0.0);
  ewma_bps_.push_back(1.0);  // PF floor: avoids divide-by-zero in the metric

  const std::size_t h = static_cast<std::size_t>(config_.harq_processes);
  harq_bits_.resize(harq_bits_.size() + h, 0.0);
  harq_prb_.resize(harq_prb_.size() + h, 0);
  harq_retx_.resize(harq_retx_.size() + h, 0);
  harq_active_.resize(harq_active_.size() + h, 0);

  offered_bits_.push_back(0.0);
  served_bits_.push_back(0.0);
  dropped_bits_.push_back(0.0);
  backlog_sum_bits_.push_back(0.0);
  last_served_tti_.push_back(-1);

  eligible_.push_back(0);
  metric_.push_back(0.0);
  ewma_add_.push_back(0.0);
  last_prb_.push_back(0);
  return i;
}

void TrafficPlane::set_snr(std::size_t ue, double snr_db) {
  expects(ue < n_ues_, "TrafficPlane::set_snr: UE index out of range");
  expects(std::isfinite(snr_db), "TrafficPlane::set_snr: SNR must be finite");
  snr_db_[ue] = snr_db;
  const int cqi = snr_to_cqi(snr_db);
  cqi_[ue] = cqi;
  rate_1prb_[ue] = cqi_efficiency(cqi) * kPrbBandwidthHz * kTtiSeconds *
                   (1.0 - kL1OverheadFraction);
}

double TrafficPlane::in_flight_bits(std::size_t ue) const {
  expects(ue < n_ues_, "TrafficPlane::in_flight_bits: UE index out of range");
  const std::size_t h = static_cast<std::size_t>(config_.harq_processes);
  double bits = 0.0;
  for (std::size_t p = 0; p < h; ++p)
    if (harq_active_[ue * h + p]) bits += harq_bits_[ue * h + p];
  return bits;
}

bool TrafficPlane::harq_active(std::size_t ue, int process) const {
  expects(ue < n_ues_ && process >= 0 && process < config_.harq_processes,
          "TrafficPlane::harq_active: index out of range");
  return harq_active_[ue * static_cast<std::size_t>(config_.harq_processes) +
                      static_cast<std::size_t>(process)] != 0;
}

int TrafficPlane::harq_retx_count(std::size_t ue, int process) const {
  expects(ue < n_ues_ && process >= 0 && process < config_.harq_processes,
          "TrafficPlane::harq_retx_count: index out of range");
  return harq_retx_[ue * static_cast<std::size_t>(config_.harq_processes) +
                    static_cast<std::size_t>(process)];
}

void TrafficPlane::phase1_arrivals_and_metrics(std::int64_t t) {
  const bool pf = config_.policy == SchedulerPolicy::kProportionalFair;
  const std::size_t h = static_cast<std::size_t>(config_.harq_processes);
  const std::size_t process =
      static_cast<std::size_t>(t % static_cast<std::int64_t>(h));
  core::parallel_for(n_ues_, [&](std::size_t i) {
    switch (static_cast<TrafficModel>(model_[i])) {
      case TrafficModel::kFullBuffer:
        backlog_bits_[i] = kFullBufferBits;
        break;
      case TrafficModel::kCbr: {
        const double bits = rate_bps_[i] * kTtiSeconds;
        backlog_bits_[i] += bits;
        offered_bits_[i] += bits;
        break;
      }
      case TrafficModel::kBurstyOnOff: {
        const double u = u01(config_.seed, kStreamBurst, i,
                             static_cast<std::uint64_t>(t));
        if (burst_on_[i]) {
          const double bits = rate_bps_[i] * kTtiSeconds;
          backlog_bits_[i] += bits;
          offered_bits_[i] += bits;
          if (u < p_on_off_[i]) burst_on_[i] = 0;
        } else if (u < p_off_on_[i]) {
          burst_on_[i] = 1;
        }
        break;
      }
      case TrafficModel::kVideo: {
        // Frames land every frame_interval TTIs, phase-staggered by UE
        // index so 10^5 streams do not all burst on the same TTI. I-frames
        // (one per GOP) carry 2.5x the mean; P-frames shrink to keep the
        // long-run rate at rate_bps. Sizes jitter +-25% deterministically.
        const std::int64_t interval = frame_interval_[i];
        const std::int64_t phase =
            static_cast<std::int64_t>(i) % interval;
        if (t >= phase && (t - phase) % interval == 0) {
          const std::int64_t frame = (t - phase) / interval;
          const double mean_bits = rate_bps_[i] * kTtiSeconds *
                                   static_cast<double>(interval);
          const double gop = static_cast<double>(gop_frames_[i]);
          const bool iframe = frame % gop_frames_[i] == 0;
          const double scale =
              gop > 1.5 ? (iframe ? 2.5 : (gop - 2.5) / (gop - 1.0)) : 1.0;
          const double jitter =
              0.75 + 0.5 * u01(config_.seed, kStreamVideo, i,
                               static_cast<std::uint64_t>(frame));
          const double bits = mean_bits * scale * jitter;
          backlog_bits_[i] += bits;
          offered_bits_[i] += bits;
        }
        break;
      }
    }
    if (harq_active_[i * h + process]) {
      eligible_[i] = 2;  // this TTI's process owes a retransmission
      metric_[i] = 0.0;
    } else if (backlog_bits_[i] > 0.0 && cqi_[i] > 0) {
      eligible_[i] = 1;
      metric_[i] = pf ? rate_1prb_[i] / std::max(1.0, ewma_bps_[i]) : 0.0;
    } else {
      eligible_[i] = 0;
      metric_[i] = 0.0;
    }
  });
}

double TrafficPlane::multicast_subframe_capacity_bits() const {
  int min_cqi = std::numeric_limits<int>::max();
  bool any = false;
  for (std::size_t i = 0; i < n_ues_; ++i) {
    if (!subscribed_[i]) continue;
    any = true;
    min_cqi = std::min(min_cqi, cqi_[i]);
  }
  if (!any || min_cqi <= 0) return 0.0;
  return cqi_efficiency(min_cqi) * kPrbBandwidthHz * kTtiSeconds *
         static_cast<double>(config_.carrier.n_prb) * (1.0 - kL1OverheadFraction);
}

void TrafficPlane::refresh_mbsfn_pattern(std::int64_t t) {
  (void)t;
  mbsfn_capacity_bits_ = multicast_subframe_capacity_bits();
  if (mbsfn_capacity_bits_ <= 0.0) {
    mbsfn_this_frame_ = 0;
    return;
  }
  // Subframes this frame must carry to drain the broadcast backlog plus the
  // frame's own arrivals, capped at the MBSFN maximum.
  const double frame_demand =
      mcast_backlog_bits_ + config_.multicast_rate_bps * kTtiSeconds * 10.0;
  const int needed =
      static_cast<int>(std::ceil(frame_demand / mbsfn_capacity_bits_));
  mbsfn_this_frame_ = std::clamp(needed, 0, config_.max_mbsfn_per_frame);
}

void TrafficPlane::phase2_allocate(std::int64_t t) {
  for (const SchedEntry& e : scheduled_) last_prb_[e.ue] = 0;
  scheduled_.clear();
  const int total_prb = config_.carrier.n_prb;
  last_tti_ = {t, 0, total_prb, false};

  if (config_.adaptive_mbsfn) {
    mcast_backlog_bits_ += config_.multicast_rate_bps * kTtiSeconds;
    if (t % 10 == 0) refresh_mbsfn_pattern(t);
    const int pos = static_cast<int>(t % 10);
    for (int s = 0; s < mbsfn_this_frame_; ++s) {
      if (kMbsfnPositions[s] != pos) continue;
      // Multicast subframe: the whole carrier carries the broadcast at the
      // worst subscriber's CQI; unicast (and its HARQ feedback) pauses.
      const double bits = std::min(mbsfn_capacity_bits_, mcast_backlog_bits_);
      mcast_backlog_bits_ -= bits;
      mcast_served_bits_ += bits;
      ++mbsfn_subframes_total_;
      last_tti_.mbsfn = true;
      return;
    }
  }

  const std::size_t h = static_cast<std::size_t>(config_.harq_processes);
  const std::size_t process =
      static_cast<std::size_t>(t % static_cast<std::int64_t>(h));
  int prb_left = total_prb;

  // Pending retransmissions first, in UE order: a retx reuses its original
  // grant size or waits for the process's next turn.
  const bool pf = config_.policy == SchedulerPolicy::kProportionalFair;
  // Candidate selection state for new transmissions, filled in the same
  // O(N) pass that collects retransmissions.
  struct Cand {
    double metric;
    std::uint32_t ue;
  };
  static thread_local std::vector<Cand> heap;  // PF top-K scratch
  heap.clear();
  static thread_local std::vector<std::uint32_t> rr_list;
  rr_list.clear();
  std::size_t eligible_total = 0;

  // "a worse than b" under the total order (metric desc, ue asc).
  const auto worse = [](const Cand& a, const Cand& b) {
    return a.metric < b.metric || (a.metric == b.metric && a.ue > b.ue);
  };
  // Max-heap on "worse": top() is the weakest kept candidate.
  const auto heap_cmp = [&](const Cand& a, const Cand& b) { return !worse(a, b); };

  for (std::size_t i = 0; i < n_ues_; ++i) {
    if (eligible_[i] == 2) {
      const std::size_t slot = i * h + process;
      const int need = std::max<int>(1, harq_prb_[slot]);
      if (need <= prb_left) {
        scheduled_.push_back({static_cast<std::uint32_t>(i),
                              static_cast<std::uint16_t>(need),
                              static_cast<std::uint8_t>(process), true});
        prb_left -= need;
      }
      continue;
    }
    if (eligible_[i] != 1) continue;
    ++eligible_total;
    if (pf) {
      const Cand c{metric_[i], static_cast<std::uint32_t>(i)};
      if (heap.size() < static_cast<std::size_t>(total_prb)) {
        heap.push_back(c);
        std::push_heap(heap.begin(), heap.end(), heap_cmp);
      } else if (worse(heap.front(), c)) {
        std::pop_heap(heap.begin(), heap.end(), heap_cmp);
        heap.back() = c;
        std::push_heap(heap.begin(), heap.end(), heap_cmp);
      }
    }
  }

  int allocated = total_prb - prb_left;
  if (prb_left > 0 && eligible_total > 0) {
    const std::size_t first_new = scheduled_.size();
    if (pf) {
      std::sort(heap.begin(), heap.end(),
                [&](const Cand& a, const Cand& b) { return worse(b, a); });
      if (eligible_total <= static_cast<std::size_t>(prb_left)) {
        // Few UEs, many PRBs: proportional shares, floor + leftover to the
        // highest metrics (the heap holds every eligible UE here).
        double metric_sum = 0.0;
        for (const Cand& c : heap) metric_sum += c.metric;
        int assigned = 0;
        for (const Cand& c : heap) {
          const int share = static_cast<int>(
              std::floor(prb_left * c.metric / std::max(1e-300, metric_sum)));
          scheduled_.push_back({c.ue, static_cast<std::uint16_t>(share),
                                static_cast<std::uint8_t>(process), false});
          assigned += share;
        }
        for (std::size_t j = 0; assigned < prb_left; ++j, ++assigned)
          ++scheduled_[first_new + j % heap.size()].prb;
      } else {
        // Massive-UE regime: one PRB each to the top metrics.
        const std::size_t k =
            std::min(heap.size(), static_cast<std::size_t>(prb_left));
        for (std::size_t j = 0; j < k; ++j)
          scheduled_.push_back({heap[j].ue, 1,
                                static_cast<std::uint8_t>(process), false});
      }
    } else {
      // Round robin: walk from the cursor, wrapping once; stop as soon as
      // one more candidate than the PRB budget is found (enough to know
      // which regime applies).
      const std::size_t cap = static_cast<std::size_t>(prb_left) + 1;
      for (std::size_t step = 0; step < n_ues_ && rr_list.size() < cap; ++step) {
        const std::size_t i = (rr_cursor_ + step) % n_ues_;
        if (eligible_[i] == 1) rr_list.push_back(static_cast<std::uint32_t>(i));
      }
      if (rr_list.size() > static_cast<std::size_t>(prb_left)) {
        rr_list.pop_back();  // one PRB each; the probe candidate waits
        for (std::uint32_t ue : rr_list)
          scheduled_.push_back({ue, 1, static_cast<std::uint8_t>(process), false});
        rr_cursor_ = (static_cast<std::size_t>(rr_list.back()) + 1) % n_ues_;
      } else {
        // Everyone fits: even split, remainder rotating with the TTI index
        // so short-run shares even out (mirrors the legacy scheduler).
        const int base = prb_left / static_cast<int>(rr_list.size());
        int leftover = prb_left % static_cast<int>(rr_list.size());
        const std::size_t rot =
            static_cast<std::size_t>(t) % rr_list.size();
        for (std::size_t j = 0; j < rr_list.size(); ++j)
          scheduled_.push_back({rr_list[j], static_cast<std::uint16_t>(base),
                                static_cast<std::uint8_t>(process), false});
        for (std::size_t j = 0; leftover > 0; ++j, --leftover)
          ++scheduled_[first_new + (rot + j) % rr_list.size()].prb;
        ++rr_cursor_;
      }
    }
    for (std::size_t j = first_new; j < scheduled_.size(); ++j)
      allocated += scheduled_[j].prb;
  }
  last_tti_.prb_allocated = allocated;
  for (const SchedEntry& e : scheduled_) last_prb_[e.ue] = e.prb;
}

void TrafficPlane::phase3_transmit(std::int64_t t) {
  const std::size_t h = static_cast<std::size_t>(config_.harq_processes);
  const auto p_fail = [&](double margin_db) {
    const double p =
        config_.target_bler * std::exp2(-margin_db / config_.bler_halving_db);
    return std::clamp(p, 0.0, 1.0);
  };

  for (const SchedEntry& e : scheduled_) {
    const std::size_t i = e.ue;
    const int cqi = cqi_[i];
    const double threshold = cqi_threshold_db(cqi);
    const double u =
        u01(config_.seed, kStreamHarq, i, static_cast<std::uint64_t>(t));
    ++scheduled_ue_ttis_;

    if (e.is_retx) {
      const std::size_t slot = i * h + e.process;
      const int retx_no = harq_retx_[slot] + 1;
      // Chase combining: every flown copy adds combining gain. The block is
      // re-decoded against the current CQI's threshold (the reported SNR is
      // assumed quasi-static over a HARQ round trip).
      const double margin = snr_db_[i] + snr_offset_db_ +
                            config_.harq_combining_gain_db * retx_no - threshold;
      ++harq_retx_tx_;
      if (u >= p_fail(margin)) {
        served_bits_[i] += harq_bits_[slot];
        ewma_add_[i] += harq_bits_[slot];
        last_served_tti_[i] = t;
        harq_active_[slot] = 0;
        harq_retx_[slot] = 0;
      } else if (retx_no >= config_.harq_max_retx) {
        dropped_bits_[i] += harq_bits_[slot];
        harq_active_[slot] = 0;
        harq_retx_[slot] = 0;
        ++harq_drops_;
      } else {
        harq_retx_[slot] = static_cast<std::uint8_t>(retx_no);
      }
      continue;
    }

    const bool full_buffer =
        static_cast<TrafficModel>(model_[i]) == TrafficModel::kFullBuffer;
    const double cap = rate_1prb_[i] * e.prb;
    const double tb = full_buffer ? cap : std::min(cap, backlog_bits_[i]);
    if (tb <= 0.0) continue;
    if (!full_buffer) backlog_bits_[i] -= tb;
    ++harq_first_tx_;
    const double margin = snr_db_[i] + snr_offset_db_ - threshold;
    if (u >= p_fail(margin)) {
      served_bits_[i] += tb;
      ewma_add_[i] += tb;
      last_served_tti_[i] = t;
    } else if (config_.harq_max_retx > 0) {
      const std::size_t slot = i * h + e.process;
      harq_bits_[slot] = tb;
      harq_prb_[slot] = e.prb;
      harq_retx_[slot] = 0;
      harq_active_[slot] = 1;
    } else {
      dropped_bits_[i] += tb;
      ++harq_drops_;
    }
  }
}

void TrafficPlane::phase4_decay() {
  const double alpha = config_.ewma_alpha;
  core::parallel_for(n_ues_, [&](std::size_t i) {
    ewma_bps_[i] = (1.0 - alpha) * ewma_bps_[i] +
                   alpha * (ewma_add_[i] / kTtiSeconds);
    ewma_add_[i] = 0.0;
    if (static_cast<TrafficModel>(model_[i]) != TrafficModel::kFullBuffer)
      backlog_sum_bits_[i] += backlog_bits_[i];
  });
}

void TrafficPlane::run_ttis(int n) {
  expects(n >= 0, "TrafficPlane::run_ttis: TTI count must be >= 0");
  const std::uint64_t sched0 = scheduled_ue_ttis_;
  const std::uint64_t retx0 = harq_retx_tx_;
  const std::uint64_t drops0 = harq_drops_;
  const int mbsfn0 = mbsfn_subframes_total_;
  for (int k = 0; k < n; ++k) {
    const std::int64_t t = tti_++;
    phase1_arrivals_and_metrics(t);
    phase2_allocate(t);
    if (!last_tti_.mbsfn) phase3_transmit(t);
    phase4_decay();
  }
  SKYRAN_COUNTER_ADD("traffic.ttis", n);
  SKYRAN_COUNTER_ADD("traffic.sched.ue_ttis", scheduled_ue_ttis_ - sched0);
  SKYRAN_COUNTER_ADD("traffic.harq.retx", harq_retx_tx_ - retx0);
  SKYRAN_COUNTER_ADD("traffic.harq.drops", harq_drops_ - drops0);
  SKYRAN_COUNTER_ADD("traffic.mbsfn.subframes",
                     static_cast<std::uint64_t>(mbsfn_subframes_total_ - mbsfn0));
}

std::uint64_t TrafficPlane::state_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  hash_bytes(h, &tti_, sizeof(tti_));
  hash_vec(h, backlog_bits_);
  hash_vec(h, ewma_bps_);
  hash_vec(h, burst_on_);
  hash_vec(h, harq_bits_);
  hash_vec(h, harq_prb_);
  hash_vec(h, harq_retx_);
  hash_vec(h, harq_active_);
  hash_vec(h, offered_bits_);
  hash_vec(h, served_bits_);
  hash_vec(h, dropped_bits_);
  hash_vec(h, backlog_sum_bits_);
  hash_vec(h, last_served_tti_);
  hash_bytes(h, &rr_cursor_, sizeof(rr_cursor_));
  hash_bytes(h, &mcast_backlog_bits_, sizeof(mcast_backlog_bits_));
  hash_bytes(h, &mcast_served_bits_, sizeof(mcast_served_bits_));
  hash_bytes(h, &mbsfn_this_frame_, sizeof(mbsfn_this_frame_));
  hash_bytes(h, &mbsfn_subframes_total_, sizeof(mbsfn_subframes_total_));
  hash_bytes(h, &scheduled_ue_ttis_, sizeof(scheduled_ue_ttis_));
  hash_bytes(h, &harq_first_tx_, sizeof(harq_first_tx_));
  hash_bytes(h, &harq_retx_tx_, sizeof(harq_retx_tx_));
  hash_bytes(h, &harq_drops_, sizeof(harq_drops_));
  return h;
}

TrafficPlaneReport TrafficPlane::report() const {
  TrafficPlaneReport r;
  r.ttis = tti_;
  r.ues = n_ues_;
  r.scheduled_ue_ttis = scheduled_ue_ttis_;
  r.harq_first_tx = harq_first_tx_;
  r.harq_retx = harq_retx_tx_;
  r.harq_drops = harq_drops_;
  r.harq_residual_bler =
      harq_first_tx_ > 0
          ? static_cast<double>(harq_drops_) / static_cast<double>(harq_first_tx_)
          : 0.0;
  r.mbsfn_subframes = mbsfn_subframes_total_;
  r.multicast_served_bits = mcast_served_bits_;
  r.multicast_backlog_bits = mcast_backlog_bits_;
  if (n_ues_ == 0 || tti_ == 0) return r;

  const double duration_s = static_cast<double>(tti_) * kTtiSeconds;
  std::vector<double> throughput(n_ues_);
  std::vector<double> delay(n_ues_, 0.0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < n_ues_; ++i) {
    r.offered_bits += offered_bits_[i];
    r.served_bits += served_bits_[i];
    r.dropped_bits += dropped_bits_[i];
    throughput[i] = served_bits_[i] / duration_s;
    sum += throughput[i];
    sum_sq += throughput[i] * throughput[i];
    // Little's law: mean delay = mean backlog / arrival rate.
    if (static_cast<TrafficModel>(model_[i]) != TrafficModel::kFullBuffer &&
        rate_bps_[i] > 0.0)
      delay[i] = 1e3 * (backlog_sum_bits_[i] / static_cast<double>(tti_)) /
                 rate_bps_[i];
  }
  r.aggregate_throughput_bps = sum;
  r.fairness_jain =
      sum_sq > 0.0 ? (sum * sum) / (static_cast<double>(n_ues_) * sum_sq) : 1.0;
  std::sort(throughput.begin(), throughput.end());
  std::sort(delay.begin(), delay.end());
  r.p50_throughput_bps = geo::percentile_sorted(throughput, 0.50);
  r.p90_throughput_bps = geo::percentile_sorted(throughput, 0.90);
  r.p99_throughput_bps = geo::percentile_sorted(throughput, 0.99);
  r.p50_delay_ms = geo::percentile_sorted(delay, 0.50);
  r.p90_delay_ms = geo::percentile_sorted(delay, 0.90);
  r.p99_delay_ms = geo::percentile_sorted(delay, 0.99);
  return r;
}

}  // namespace skyran::lte
