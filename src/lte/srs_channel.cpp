#include "lte/srs_channel.hpp"

#include <cmath>
#include <numbers>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "rf/units.hpp"

namespace skyran::lte {

SrsSymbol apply_srs_channel(const SrsSymbol& tx, const SrsChannelParams& params,
                            std::mt19937_64& rng) {
  expects(params.delay_s >= 0.0, "apply_srs_channel: delay must be non-negative");
  SrsSymbol rx = tx;
  const std::vector<int> res = occupied_subcarriers(tx.config);

  // Channel response per occupied subcarrier: direct ray plus echoes. Each
  // subcarrier writes its own FFT bin, so the sweep parallelizes with no
  // change in numerics (the RNG-driven noise below stays serial).
  core::parallel_for(res.size(), [&](std::size_t n) {
    const int sc = res[n];
    const double f = sc * kSubcarrierSpacingHz;
    Cplx h = std::polar(1.0, -2.0 * std::numbers::pi * f * params.delay_s);
    for (const MultipathTap& tap : params.taps) {
      const double amp = std::sqrt(rf::db_to_linear(tap.power_db));
      h += std::polar(amp,
                      -2.0 * std::numbers::pi * f * (params.delay_s + tap.excess_delay_s));
    }
    const std::size_t bin = fft_bin(sc, tx.config.carrier.fft_size);
    rx.freq[bin] *= h;
  }, /*grain=*/96);

  // Receiver noise across the whole band. Unit-magnitude REs at `snr_db`
  // imply per-complex-dimension sigma of sqrt(1 / (2 * snr_lin)).
  const double sigma = std::sqrt(0.5 / rf::db_to_linear(params.snr_db));
  std::normal_distribution<double> gauss(0.0, sigma);
  for (Cplx& v : rx.freq) v += Cplx(gauss(rng), gauss(rng));
  return rx;
}

std::vector<MultipathTap> make_nlos_taps(int n_taps, double mean_excess_s,
                                         double first_tap_power_db, double tap_decay_db,
                                         std::mt19937_64& rng) {
  expects(n_taps >= 0, "make_nlos_taps: tap count must be non-negative");
  expects(mean_excess_s > 0.0, "make_nlos_taps: mean excess delay must be positive");
  std::exponential_distribution<double> excess(1.0 / mean_excess_s);
  std::vector<MultipathTap> taps;
  taps.reserve(static_cast<std::size_t>(n_taps));
  for (int i = 0; i < n_taps; ++i)
    taps.push_back({excess(rng), first_tap_power_db - i * tap_decay_db});
  return taps;
}

}  // namespace skyran::lte
