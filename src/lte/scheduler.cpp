#include "lte/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::lte {

namespace {
constexpr double kEwmaAlpha = 0.01;  // ~100 ms horizon

double prb_bits(double snr_db, int prb) {
  const double eff = cqi_efficiency(snr_to_cqi(snr_db));
  return eff * kPrbBandwidthHz * kTtiSeconds * prb * (1.0 - kL1OverheadFraction);
}
}  // namespace

Scheduler::Scheduler(BandwidthConfig carrier, SchedulerPolicy policy)
    : carrier_(carrier), policy_(policy) {}

Scheduler::RateState& Scheduler::state_for(std::uint32_t rnti) {
  const auto [it, inserted] = rate_index_.try_emplace(rnti, rates_.size());
  if (inserted) rates_.push_back({rnti, 1.0});
  return rates_[it->second];
}

double Scheduler::average_rate_bps(std::uint32_t rnti) const {
  const auto it = rate_index_.find(rnti);
  return it != rate_index_.end() ? rates_[it->second].ewma_bps : 0.0;
}

std::vector<UeAllocation> Scheduler::schedule_tti(const std::vector<UeChannelState>& ues) {
  std::vector<UeAllocation> out;
  out.reserve(ues.size());
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < ues.size(); ++i) {
    out.push_back({ues[i].rnti, 0, 0.0});
    if (ues[i].backlogged && snr_to_cqi(ues[i].snr_db) > 0) eligible.push_back(i);
  }
  if (!eligible.empty()) {
    const int total_prb = carrier_.n_prb;
    std::vector<int> share(eligible.size(), 0);

    if (policy_ == SchedulerPolicy::kRoundRobin) {
      // Equal split; the rotating cursor spreads the remainder fairly
      // across TTIs.
      const int base = total_prb / static_cast<int>(eligible.size());
      int leftover = total_prb % static_cast<int>(eligible.size());
      for (std::size_t j = 0; j < eligible.size(); ++j) share[j] = base;
      for (int j = 0; leftover > 0; ++j, --leftover)
        ++share[(rr_cursor_ + static_cast<std::size_t>(j)) % eligible.size()];
      ++rr_cursor_;
    } else {
      // Proportional fair: PRBs proportional to instantaneous-rate /
      // average-rate metric.
      std::vector<double> metric(eligible.size());
      double metric_sum = 0.0;
      for (std::size_t j = 0; j < eligible.size(); ++j) {
        const UeChannelState& ue = ues[eligible[j]];
        const double inst = prb_bits(ue.snr_db, 1);
        metric[j] = inst / std::max(1.0, state_for(ue.rnti).ewma_bps);
        metric_sum += metric[j];
      }
      int assigned = 0;
      for (std::size_t j = 0; j < eligible.size(); ++j) {
        share[j] = static_cast<int>(std::floor(total_prb * metric[j] / metric_sum));
        assigned += share[j];
      }
      // Remaining PRBs to the highest metrics.
      std::vector<std::size_t> order(eligible.size());
      for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return metric[a] > metric[b]; });
      for (std::size_t j = 0; assigned < total_prb; ++j, ++assigned)
        ++share[order[j % order.size()]];
    }

    for (std::size_t j = 0; j < eligible.size(); ++j) {
      UeAllocation& alloc = out[eligible[j]];
      alloc.prb = share[j];
      alloc.bits = prb_bits(ues[eligible[j]].snr_db, share[j]);
    }
  }

  // Update long-term rates for every UE seen this TTI.
  for (std::size_t i = 0; i < ues.size(); ++i) {
    RateState& s = state_for(ues[i].rnti);
    s.ewma_bps = (1.0 - kEwmaAlpha) * s.ewma_bps + kEwmaAlpha * (out[i].bits / kTtiSeconds);
  }
  return out;
}

}  // namespace skyran::lte
