#include "uav/gps.hpp"

#include <algorithm>

#include "geo/contract.hpp"

namespace skyran::uav {

GpsSensor::GpsSensor(std::uint64_t seed, double horizontal_sigma_m, double vertical_sigma_m)
    : rng_(seed), horizontal_(0.0, horizontal_sigma_m), vertical_(0.0, vertical_sigma_m) {
  expects(horizontal_sigma_m >= 0.0, "GpsSensor: horizontal sigma must be >= 0");
  expects(vertical_sigma_m >= 0.0, "GpsSensor: vertical sigma must be >= 0");
}

void GpsSensor::set_outage_model(double enter_probability, double mean_length_samples) {
  expects(enter_probability >= 0.0 && enter_probability < 1.0,
          "GpsSensor: outage probability must be in [0,1)");
  expects(mean_length_samples >= 1.0 || enter_probability == 0.0,
          "GpsSensor: mean outage length must be >= 1 sample");
  outage_enter_prob_ = enter_probability;
  outage_mean_len_ = mean_length_samples;
}

GpsFix GpsSensor::sample(geo::Vec3 p, double t) {
  if (outage_left_ > 0) {
    --outage_left_;
    return {t, have_last_ ? last_valid_ : p, false};
  }
  if (outage_enter_prob_ > 0.0) {
    std::uniform_real_distribution<double> u01(0.0, 1.0);
    if (u01(rng_) < outage_enter_prob_) {
      outage_left_ = sample_outage_length();
      --outage_left_;
      return {t, have_last_ ? last_valid_ : p, false};
    }
  }
  const GpsFix fix{t, {p.x + horizontal_(rng_), p.y + horizontal_(rng_), p.z + vertical_(rng_)},
                   true};
  last_valid_ = fix.position;
  have_last_ = true;
  return fix;
}

int GpsSensor::sample_outage_length() {
  // An outage is 1 + Geometric(1/mean) samples long, which has mean
  // `outage_mean_len_`. geometric_distribution requires p strictly inside
  // (0,1): mean == 1 maps to p == 1 (undefined behavior), so outages of the
  // minimum mean length are emitted as exactly one sample instead.
  if (outage_mean_len_ <= 1.0) return 1;
  std::geometric_distribution<int> len(1.0 / outage_mean_len_);
  return 1 + len(rng_);
}

void GpsSensor::force_outage_for(int samples) {
  expects(samples >= 0, "GpsSensor::force_outage_for: sample count must be >= 0");
  outage_left_ = std::max(outage_left_, samples);
}

}  // namespace skyran::uav
