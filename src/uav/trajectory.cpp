#include "uav/trajectory.hpp"

#include <cmath>
#include <random>

#include "geo/contract.hpp"

namespace skyran::uav {

geo::Path zigzag(geo::Rect area, double spacing) {
  expects(spacing > 0.0, "zigzag: spacing must be positive");
  std::vector<geo::Vec2> pts;
  const int rows = std::max(1, static_cast<int>(std::ceil(area.height() / spacing)) + 1);
  for (int r = 0; r < rows; ++r) {
    const double y = std::min(area.min.y + r * spacing, area.max.y);
    if (r % 2 == 0) {
      pts.push_back({area.min.x, y});
      pts.push_back({area.max.x, y});
    } else {
      pts.push_back({area.max.x, y});
      pts.push_back({area.min.x, y});
    }
  }
  return geo::Path(std::move(pts));
}

geo::Path random_walk(geo::Rect area, geo::Vec2 start, double length_m, double leg_m,
                      std::uint64_t seed) {
  expects(length_m > 0.0, "random_walk: length must be positive");
  expects(leg_m > 0.0, "random_walk: leg length must be positive");
  expects(area.contains(start), "random_walk: start must lie inside the area");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> heading(0.0, 2.0 * M_PI);

  std::vector<geo::Vec2> pts{start};
  double remaining = length_m;
  geo::Vec2 cur = start;
  while (remaining > 1e-9) {
    const double step = std::min(leg_m, remaining);
    // Retry headings until the leg stays inside the area; fall back to
    // aiming at the center when the corner traps us.
    geo::Vec2 next;
    bool ok = false;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const double h = heading(rng);
      next = cur + geo::Vec2{std::cos(h), std::sin(h)} * step;
      if (area.contains(next)) {
        ok = true;
        break;
      }
    }
    if (!ok) next = cur + (area.center() - cur).normalized() * step;
    pts.push_back(next);
    cur = next;
    remaining -= step;
  }
  return geo::Path(std::move(pts));
}

geo::Path truncate_to_budget(const geo::Path& path, double budget_m) {
  expects(budget_m >= 0.0, "truncate_to_budget: budget must be >= 0");
  if (path.size() < 2 || path.length() <= budget_m) return path;
  std::vector<geo::Vec2> pts;
  pts.push_back(path.points().front());
  double used = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    const geo::Vec2 a = path.points()[i - 1];
    const geo::Vec2 b = path.points()[i];
    const double seg = a.dist(b);
    if (used + seg >= budget_m) {
      const double frac = seg > 0.0 ? (budget_m - used) / seg : 0.0;
      pts.push_back(a + (b - a) * frac);
      break;
    }
    pts.push_back(b);
    used += seg;
  }
  return geo::Path(std::move(pts));
}

}  // namespace skyran::uav
