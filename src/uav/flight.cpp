#include "uav/flight.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::uav {

double FlightPlan::length_m() const {
  double total = 0.0;
  for (std::size_t i = 1; i < waypoints.size(); ++i)
    total += waypoints[i].dist(waypoints[i - 1]);
  return total;
}

geo::Path FlightPlan::ground_track() const {
  std::vector<geo::Vec2> pts;
  pts.reserve(waypoints.size());
  for (const geo::Vec3& w : waypoints) pts.push_back(w.xy());
  return geo::Path(std::move(pts));
}

FlightPlan FlightPlan::at_altitude(const geo::Path& path, double altitude_m, double speed_mps) {
  FlightPlan plan;
  plan.speed_mps = speed_mps;
  plan.waypoints.reserve(path.size());
  for (geo::Vec2 p : path.points()) plan.waypoints.emplace_back(p, altitude_m);
  return plan;
}

geo::Vec3 plan_point_at(const FlightPlan& plan, double s) {
  expects(!plan.waypoints.empty(), "plan_point_at: empty plan");
  if (s <= 0.0) return plan.waypoints.front();
  for (std::size_t i = 1; i < plan.waypoints.size(); ++i) {
    const double seg = plan.waypoints[i].dist(plan.waypoints[i - 1]);
    if (s <= seg) {
      if (seg <= 0.0) return plan.waypoints[i];
      return plan.waypoints[i - 1] + (plan.waypoints[i] - plan.waypoints[i - 1]) * (s / seg);
    }
    s -= seg;
  }
  return plan.waypoints.back();
}

FlightPlan truncated(const FlightPlan& plan, double max_length_m) {
  expects(max_length_m >= 0.0, "truncated: max length must be >= 0");
  FlightPlan out;
  out.speed_mps = plan.speed_mps;
  if (plan.waypoints.empty()) return out;
  out.waypoints.push_back(plan.waypoints.front());
  double left = max_length_m;
  for (std::size_t i = 1; i < plan.waypoints.size() && left > 0.0; ++i) {
    const double seg = plan.waypoints[i].dist(plan.waypoints[i - 1]);
    if (seg <= left) {
      out.waypoints.push_back(plan.waypoints[i]);
      left -= seg;
    } else {
      out.waypoints.push_back(plan.waypoints[i - 1] +
                              (plan.waypoints[i] - plan.waypoints[i - 1]) * (left / seg));
      left = 0.0;
    }
  }
  return out;
}

std::vector<FlightSample> fly(const FlightPlan& plan, double dt_s, double start_time_s,
                              Battery* battery) {
  expects(dt_s > 0.0, "fly: sampling interval must be positive");
  expects(plan.speed_mps > 0.0, "fly: speed must be positive");
  expects(!plan.waypoints.empty(), "fly: plan must have waypoints");

  const double duration = plan.duration_s();
  std::vector<FlightSample> samples;
  samples.reserve(static_cast<std::size_t>(duration / dt_s) + 2);
  for (double t = 0.0; t < duration; t += dt_s) {
    samples.push_back({start_time_s + t, plan_point_at(plan, t * plan.speed_mps),
                       plan.speed_mps});
  }
  samples.push_back({start_time_s + duration, plan.waypoints.back(), plan.speed_mps});
  if (battery != nullptr) battery->drain(duration, plan.speed_mps);
  return samples;
}

}  // namespace skyran::uav
