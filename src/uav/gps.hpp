// GPS sensor model: the UAV's flight controller reports position at 50 Hz
// with 1-5 m horizontal accuracy (paper Sec 3.2.1, 3.3). Fixes carry the
// global system-clock timestamp used to align SRS reports.
#pragma once

#include <cstdint>
#include <random>

#include "geo/vec.hpp"

namespace skyran::uav {

struct GpsFix {
  double time_s = 0.0;
  geo::Vec3 position;  ///< reported (noisy) position
  bool valid = true;   ///< false during an outage (no usable fix)
};

class GpsSensor {
 public:
  /// `horizontal_sigma_m` / `vertical_sigma_m`: per-axis Gaussian error.
  explicit GpsSensor(std::uint64_t seed, double horizontal_sigma_m = 1.5,
                     double vertical_sigma_m = 2.5);

  /// Sample a fix of the true position `p` at time `t`. During an outage the
  /// fix repeats the last valid position with `valid = false`.
  GpsFix sample(geo::Vec3 p, double t);

  /// Enable a two-state (Gilbert) outage model: per-sample probability of
  /// entering an outage, and mean outage length in samples. Multirotor GPS
  /// loses lock near structures; localization must tolerate gaps.
  void set_outage_model(double enter_probability, double mean_length_samples);

  /// Force the next `samples` fixes to be outages (fault injection: a
  /// scripted outage window drives the same machinery as the random model).
  void force_outage_for(int samples);

  bool in_outage() const { return outage_left_ > 0; }

  static constexpr double kRateHz = 50.0;

 private:
  int sample_outage_length();

  std::mt19937_64 rng_;
  std::normal_distribution<double> horizontal_;
  std::normal_distribution<double> vertical_;
  double outage_enter_prob_ = 0.0;
  double outage_mean_len_ = 0.0;
  int outage_left_ = 0;
  geo::Vec3 last_valid_;
  bool have_last_ = false;
};

}  // namespace skyran::uav
