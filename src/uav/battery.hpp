// UAV energy model. The paper notes the M600Pro draws more power in forward
// motion than hovering, which is why measurement-flight length is a cost
// (Sec 2.5). We model a base hover draw plus a term growing with airspeed.
#pragma once

namespace skyran::uav {

struct BatteryParams {
  double capacity_wh = 600.0;          ///< six TB47S packs, usable energy
  double hover_power_w = 1200.0;       ///< M600Pro-class hexacopter hover draw
  double forward_power_w_per_mps = 40.0;  ///< extra draw per m/s of airspeed
};

class Battery {
 public:
  explicit Battery(BatteryParams params = {});

  /// Consume energy for `duration_s` seconds at `airspeed_mps`.
  void drain(double duration_s, double airspeed_mps);

  /// Remove `wh` watt-hours directly (cell sag / fault injection), clamped
  /// at empty.
  void deplete_wh(double wh);

  /// Set the remaining charge verbatim (checkpoint restore), clamped to
  /// [0, capacity].
  void restore_remaining_wh(double wh);

  double capacity_wh() const { return params_.capacity_wh; }
  double remaining_wh() const { return remaining_wh_; }
  double remaining_fraction() const;
  bool depleted() const { return remaining_wh_ <= 0.0; }

  /// Hover endurance remaining at current charge, seconds.
  double hover_endurance_s() const;

  /// Power draw at a given airspeed, watts.
  double power_w(double airspeed_mps) const;

 private:
  BatteryParams params_;
  double remaining_wh_;
};

}  // namespace skyran::uav
