// Autonomous flight execution: waypoint plans flown at constant cruise speed
// (the paper flies measurement trajectories at 30 km/h) with time-stamped
// position sampling and battery accounting. Plays the role of the DJI
// OnBoard-SDK flight-control core.
#pragma once

#include <vector>

#include "geo/path.hpp"
#include "geo/vec.hpp"
#include "uav/battery.hpp"

namespace skyran::uav {

/// Cruise speed used throughout the paper's experiments: 30 km/h.
inline constexpr double kDefaultCruiseMps = 30.0 / 3.6;

struct FlightPlan {
  std::vector<geo::Vec3> waypoints;
  double speed_mps = kDefaultCruiseMps;

  double length_m() const;
  double duration_s() const { return speed_mps > 0.0 ? length_m() / speed_mps : 0.0; }

  /// 2-D projection of the route (used by REM bookkeeping).
  geo::Path ground_track() const;

  /// Lift a 2-D path to a constant-altitude plan.
  static FlightPlan at_altitude(const geo::Path& path, double altitude_m,
                                double speed_mps = kDefaultCruiseMps);
};

/// A time-stamped true position along a flown plan.
struct FlightSample {
  double time_s = 0.0;
  geo::Vec3 position;
  double speed_mps = 0.0;
};

/// Fly `plan` starting at `start_time_s`, sampling the true position every
/// `dt_s` seconds (endpoints included). Optionally drains `battery`.
std::vector<FlightSample> fly(const FlightPlan& plan, double dt_s, double start_time_s = 0.0,
                              Battery* battery = nullptr);

/// Position along the plan at arc length `s` meters from the start.
geo::Vec3 plan_point_at(const FlightPlan& plan, double s);

/// Prefix of `plan` of at most `max_length_m` meters (same speed). Used by
/// the degraded epoch path to abort a tour the battery cannot finish: the
/// truncated plan ends exactly where the energy runs out.
FlightPlan truncated(const FlightPlan& plan, double max_length_m);

}  // namespace skyran::uav
