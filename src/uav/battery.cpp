#include "uav/battery.hpp"

#include <algorithm>

#include "geo/contract.hpp"

namespace skyran::uav {

Battery::Battery(BatteryParams params) : params_(params), remaining_wh_(params.capacity_wh) {
  expects(params.capacity_wh > 0.0, "Battery: capacity must be positive");
  expects(params.hover_power_w > 0.0, "Battery: hover power must be positive");
  expects(params.forward_power_w_per_mps >= 0.0, "Battery: forward power must be >= 0");
}

double Battery::power_w(double airspeed_mps) const {
  expects(airspeed_mps >= 0.0, "Battery::power_w: airspeed must be >= 0");
  return params_.hover_power_w + params_.forward_power_w_per_mps * airspeed_mps;
}

void Battery::drain(double duration_s, double airspeed_mps) {
  expects(duration_s >= 0.0, "Battery::drain: duration must be >= 0");
  remaining_wh_ = std::max(0.0, remaining_wh_ - power_w(airspeed_mps) * duration_s / 3600.0);
}

void Battery::deplete_wh(double wh) {
  expects(wh >= 0.0, "Battery::deplete_wh: energy must be >= 0");
  remaining_wh_ = std::max(0.0, remaining_wh_ - wh);
}

void Battery::restore_remaining_wh(double wh) {
  expects(wh >= 0.0, "Battery::restore_remaining_wh: energy must be >= 0");
  remaining_wh_ = std::min(wh, params_.capacity_wh);
}

double Battery::remaining_fraction() const { return remaining_wh_ / params_.capacity_wh; }

double Battery::hover_endurance_s() const {
  return remaining_wh_ * 3600.0 / params_.hover_power_w;
}

}  // namespace skyran::uav
