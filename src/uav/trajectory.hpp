// Trajectory builders: the Uniform baseline's corner-start zigzag sweep
// (paper Fig. 16), bounded random walks for the UE-localization flight
// (Sec 3.2), and budget-truncation helpers.
#pragma once

#include <cstdint>

#include "geo/path.hpp"
#include "geo/rect.hpp"

namespace skyran::geo {}

namespace skyran::uav {

/// Corner-start boustrophedon (zigzag/lawnmower) sweep of `area` with the
/// given pass `spacing`. Starts at the southwest corner, sweeps east-west
/// rows northward.
geo::Path zigzag(geo::Rect area, double spacing);

/// Random waypoint walk inside `area`, total length `length_m`, legs of
/// roughly `leg_m` meters, starting at `start`. Used for the short UE
/// localization flight.
geo::Path random_walk(geo::Rect area, geo::Vec2 start, double length_m, double leg_m,
                      std::uint64_t seed);

/// Prefix of `path` whose arc length does not exceed `budget_m` (the final
/// point is interpolated exactly at the budget).
geo::Path truncate_to_budget(const geo::Path& path, double budget_m);

}  // namespace skyran::uav
