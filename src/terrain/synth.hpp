// Procedural terrain generators standing in for the paper's real-world sites:
// the 300 m x 300 m NEC campus testbed (Sec 4.2) and the LiDAR-derived RURAL,
// NYC and LARGE scale-up terrains (Sec 5.1). Each generator is deterministic
// in its seed and reproduces the qualitative obstruction structure of its
// namesake (open lots vs. office building vs. forest; Manhattan street grid;
// semi-urban sprawl).
#pragma once

#include <cstdint>

#include "terrain/terrain.hpp"

namespace skyran::terrain {

/// Named terrain archetypes used across the evaluation.
enum class TerrainKind {
  kFlat,    ///< featureless plane (unit-test baseline)
  kCampus,  ///< 300x300 m testbed: office building, parking lot, forest
  kRural,   ///< 250x250 m: open space, scattered trees, few small buildings
  kNyc,     ///< 250x250 m: dense Manhattan-style blocks, tall buildings
  kLarge,   ///< 1000x1000 m: semi-urban township
};

const char* to_string(TerrainKind k);

/// Side length in meters that the paper associates with each archetype.
double default_extent(TerrainKind k);

/// Build a terrain of the given archetype. `cell_size` defaults to the
/// paper's 1 m raster; coarser cells are supported for large sweeps.
Terrain make_terrain(TerrainKind kind, std::uint64_t seed, double cell_size = 1.0);

/// Flat open ground of the given side length.
Terrain make_flat(double extent, double cell_size = 1.0);

/// Campus testbed: a big office building near the center, an open parking
/// lot to the west, and a forested strip (~35 m trees, Sec 4.3) to the east.
Terrain make_campus(std::uint64_t seed, double cell_size = 1.0, double extent = 300.0);

/// Mostly open rural area with tree stands and a few one/two-story buildings.
Terrain make_rural(std::uint64_t seed, double cell_size = 1.0, double extent = 250.0);

/// Downtown-Manhattan-style dense urban grid with high-rise blocks.
Terrain make_nyc(std::uint64_t seed, double cell_size = 1.0, double extent = 250.0);

/// Semi-urban township: residential streets, commercial boxes, parks.
Terrain make_large(std::uint64_t seed, double cell_size = 1.0, double extent = 1000.0);

}  // namespace skyran::terrain
