// Synthetic LiDAR pipeline. The paper pre-processes USGS LiDAR point clouds
// into a 1 m raster (Sec 5.1). We provide the inverse pair: sample a point
// cloud from a terrain (emulating an aerial LiDAR scan, with per-return range
// noise and dropouts) and rasterize a point cloud back into a Terrain. The
// round trip exercises the same pre-processing path the paper relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/rect.hpp"
#include "geo/vec.hpp"
#include "terrain/terrain.hpp"

namespace skyran::terrain {

/// One LiDAR return.
struct LidarPoint {
  geo::Vec3 position;  ///< x,y in meters; z = surface height above datum
  Clutter classification = Clutter::kOpen;  ///< LAS-style point class
};

/// A collection of LiDAR returns over a known extent.
struct PointCloud {
  geo::Rect extent;
  std::vector<LidarPoint> points;
};

/// Parameters of the simulated aerial scan.
struct LidarScanConfig {
  double pulse_density = 4.0;   ///< returns per square meter
  double range_noise_m = 0.08;  ///< vertical (range) noise sigma
  double dropout_rate = 0.02;   ///< fraction of pulses lost
};

/// Simulate an aerial LiDAR scan over `t`.
PointCloud scan_terrain(const Terrain& t, const LidarScanConfig& cfg, std::uint64_t seed);

/// Rasterize a point cloud to a Terrain at `cell_size` resolution.
/// Per cell: ground = lowest return, surface = highest return, clutter class
/// = majority class of above-ground returns. Cells with no returns are filled
/// from the nearest populated neighbor.
Terrain rasterize(const PointCloud& cloud, double cell_size);

}  // namespace skyran::terrain
