#include "terrain/synth.hpp"

#include <algorithm>
#include <cmath>
#include <random>

#include "geo/contract.hpp"
#include "geo/noise.hpp"

namespace skyran::terrain {

namespace {

using geo::Rect;
using geo::Vec2;

/// Stamp a rectangular clutter footprint onto the terrain.
void stamp_rect(Terrain& t, Rect footprint, Clutter kind, double height) {
  auto& grid = t.cells();
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    if (footprint.contains(grid.center_of(c))) {
      cell.clutter = kind;
      cell.clutter_height = static_cast<float>(height);
    }
  });
}

/// Gentle rolling ground from fractal noise, amplitude in meters.
void add_rolling_ground(Terrain& t, std::uint64_t seed, double amplitude, double scale) {
  const geo::ValueNoise noise(seed, scale, 3);
  auto& grid = t.cells();
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    const double h = (noise.sample(grid.center_of(c)) + 1.0) * 0.5 * amplitude;
    cell.ground = static_cast<float>(h);
  });
}

/// Fill cells where the noise field exceeds `threshold` with foliage whose
/// height varies smoothly around `mean_height`.
void add_forest(Terrain& t, std::uint64_t seed, double threshold, double mean_height,
                Rect within) {
  const geo::ValueNoise cover(seed, 28.0, 3);
  const geo::ValueNoise height(seed ^ 0xabcdULL, 15.0, 2);
  auto& grid = t.cells();
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    const Vec2 p = grid.center_of(c);
    if (!within.contains(p) || cell.clutter == Clutter::kBuilding) return;
    if (cover.sample(p) > threshold) {
      cell.clutter = Clutter::kFoliage;
      const double h = mean_height * (1.0 + 0.3 * height.sample(p));
      cell.clutter_height = static_cast<float>(std::max(2.0, h));
    }
  });
}

}  // namespace

const char* to_string(TerrainKind k) {
  switch (k) {
    case TerrainKind::kFlat:
      return "FLAT";
    case TerrainKind::kCampus:
      return "CAMPUS";
    case TerrainKind::kRural:
      return "RURAL";
    case TerrainKind::kNyc:
      return "NYC";
    case TerrainKind::kLarge:
      return "LARGE";
  }
  return "UNKNOWN";
}

double default_extent(TerrainKind k) {
  switch (k) {
    case TerrainKind::kFlat:
      return 250.0;
    case TerrainKind::kCampus:
      return 300.0;
    case TerrainKind::kRural:
    case TerrainKind::kNyc:
      return 250.0;
    case TerrainKind::kLarge:
      return 1000.0;
  }
  return 250.0;
}

Terrain make_terrain(TerrainKind kind, std::uint64_t seed, double cell_size) {
  switch (kind) {
    case TerrainKind::kFlat:
      return make_flat(default_extent(kind), cell_size);
    case TerrainKind::kCampus:
      return make_campus(seed, cell_size);
    case TerrainKind::kRural:
      return make_rural(seed, cell_size);
    case TerrainKind::kNyc:
      return make_nyc(seed, cell_size);
    case TerrainKind::kLarge:
      return make_large(seed, cell_size);
  }
  throw ContractViolation("make_terrain: unknown terrain kind");
}

Terrain make_flat(double extent, double cell_size) {
  return Terrain(Rect::square(extent), cell_size);
}

Terrain make_campus(std::uint64_t seed, double cell_size, double extent) {
  Terrain t(Rect::square(extent), cell_size);
  add_rolling_ground(t, seed, 3.0, 120.0);

  const double s = extent / 300.0;  // scale features with the area
  // Main office building (the paper's UE 6 sits "right beside a large office
  // building"): a 95x50 m slab, ~30 m tall, slightly north of center.
  stamp_rect(t, Rect{{108 * s, 148 * s}, {203 * s, 198 * s}}, Clutter::kBuilding, 30.0);
  // Two smaller annex buildings.
  stamp_rect(t, Rect{{70 * s, 95 * s}, {105 * s, 130 * s}}, Clutter::kBuilding, 14.0);
  stamp_rect(t, Rect{{215 * s, 120 * s}, {250 * s, 150 * s}}, Clutter::kBuilding, 10.0);
  // Heavily forested east/south strip with ~35 m trees (Sec 4.3, UE 7).
  add_forest(t, seed ^ 0x51ULL, -0.15, 35.0, Rect{{230 * s, 0.0}, {extent, extent}});
  add_forest(t, seed ^ 0x52ULL, 0.15, 30.0, Rect{{0.0, 0.0}, {extent, 70 * s}});
  // Scattered ornamental trees elsewhere.
  add_forest(t, seed ^ 0x53ULL, 0.62, 12.0, Rect{{0.0, 70 * s}, {230 * s, extent}});
  // Parking lot to the west stays open (UE 1's open space): clear it.
  stamp_rect(t, Rect{{10 * s, 160 * s}, {90 * s, 260 * s}}, Clutter::kOpen, 0.0);
  return t;
}

Terrain make_rural(std::uint64_t seed, double cell_size, double extent) {
  Terrain t(Rect::square(extent), cell_size);
  add_rolling_ground(t, seed, 6.0, 90.0);
  std::mt19937_64 rng(seed);
  // A few small farm buildings.
  std::uniform_real_distribution<double> pos(0.1 * extent, 0.9 * extent);
  std::uniform_real_distribution<double> dim(8.0, 18.0);
  std::uniform_real_distribution<double> hgt(4.0, 8.0);
  const int buildings = 5;
  for (int i = 0; i < buildings; ++i) {
    const Vec2 corner{pos(rng), pos(rng)};
    stamp_rect(t, Rect{corner, {std::min(extent, corner.x + dim(rng)),
                                std::min(extent, corner.y + dim(rng))}},
               Clutter::kBuilding, hgt(rng));
  }
  // Sparse tree stands.
  add_forest(t, seed ^ 0x61ULL, 0.45, 14.0, t.area());
  return t;
}

Terrain make_nyc(std::uint64_t seed, double cell_size, double extent) {
  Terrain t(Rect::square(extent), cell_size);
  // Manhattan grid: avenues run north-south every ~85 m, streets east-west
  // every ~65 m; blocks are filled with buildings of widely varying height.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> height_pick(0.0, 1.0);

  const double avenue_pitch = 85.0;
  const double street_pitch = 65.0;
  const double road_width = 18.0;

  auto& grid = t.cells();
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    const Vec2 p = grid.center_of(c);
    const double ax = std::fmod(p.x, avenue_pitch);
    const double sy = std::fmod(p.y, street_pitch);
    const bool on_road = ax < road_width || sy < road_width;
    if (on_road) {
      cell.clutter = Clutter::kOpen;
      cell.clutter_height = 0.0F;
    } else {
      cell.clutter = Clutter::kBuilding;  // height assigned per block below
    }
  });

  // Assign one height per block so facades are coherent; downtown mix of
  // mid-rise (20-40 m) and high-rise (60-150 m) towers.
  const int blocks_x = static_cast<int>(extent / avenue_pitch) + 1;
  const int blocks_y = static_cast<int>(extent / street_pitch) + 1;
  std::vector<double> block_height(static_cast<std::size_t>(blocks_x * blocks_y));
  for (double& h : block_height) {
    const double u = height_pick(rng);
    h = (u < 0.6) ? 20.0 + 20.0 * height_pick(rng) : 60.0 + 90.0 * height_pick(rng);
  }
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    if (cell.clutter != Clutter::kBuilding) return;
    const Vec2 p = grid.center_of(c);
    const int bx = static_cast<int>(p.x / avenue_pitch);
    const int by = static_cast<int>(p.y / street_pitch);
    cell.clutter_height =
        static_cast<float>(block_height[static_cast<std::size_t>(by * blocks_x + bx)]);
  });

  // A small park (one block cleared) for open-space contrast.
  stamp_rect(t, Rect{{avenue_pitch * 1.0 + road_width, street_pitch * 2.0 + road_width},
                     {avenue_pitch * 2.0, street_pitch * 3.0}},
             Clutter::kOpen, 0.0);
  return t;
}

Terrain make_large(std::uint64_t seed, double cell_size, double extent) {
  Terrain t(Rect::square(extent), cell_size);
  add_rolling_ground(t, seed, 10.0, 300.0);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  // Residential streets every 120 m; lots hold detached houses with yards.
  const double pitch = 120.0;
  const double road_width = 12.0;
  auto& grid = t.cells();
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    const Vec2 p = grid.center_of(c);
    const bool on_road = std::fmod(p.x, pitch) < road_width || std::fmod(p.y, pitch) < road_width;
    if (on_road) {
      cell.clutter = Clutter::kOpen;
      cell.clutter_height = 0.0F;
    }
  });
  // Houses: small boxes scattered inside lots.
  const int houses = static_cast<int>(extent * extent / 4000.0);
  std::uniform_real_distribution<double> pos(0.0, extent - 16.0);
  for (int i = 0; i < houses; ++i) {
    const Vec2 corner{pos(rng), pos(rng)};
    if (std::fmod(corner.x, pitch) < road_width + 4.0 ||
        std::fmod(corner.y, pitch) < road_width + 4.0)
      continue;  // keep roads clear
    const double w = 8.0 + 6.0 * u01(rng);
    const double d = 8.0 + 6.0 * u01(rng);
    stamp_rect(t, Rect{corner, {corner.x + w, corner.y + d}}, Clutter::kBuilding,
               5.0 + 4.0 * u01(rng));
  }
  // A commercial strip of larger boxes along the middle avenue.
  for (int i = 0; i < 8; ++i) {
    const double x = extent * 0.45 + 10.0;
    const double y = 60.0 + i * 110.0;
    if (y + 40.0 > extent) break;
    stamp_rect(t, Rect{{x, y}, {x + 35.0, y + 40.0}}, Clutter::kBuilding, 12.0 + 6.0 * u01(rng));
  }
  // Wooded parks.
  add_forest(t, seed ^ 0x71ULL, 0.55, 18.0, t.area());
  return t;
}

}  // namespace skyran::terrain
