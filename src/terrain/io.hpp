// Terrain serialization: a simple versioned binary raster format so that
// generated terrains (or externally converted LiDAR rasters) can be cached
// and shared between experiments.
#pragma once

#include <iosfwd>
#include <string>

#include "terrain/terrain.hpp"

namespace skyran::terrain {

/// Write `t` to `os` in the SKYT binary raster format.
void save_terrain(const Terrain& t, std::ostream& os);

/// Read a terrain previously written by save_terrain. Throws
/// std::runtime_error on malformed input.
Terrain load_terrain(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_terrain_file(const Terrain& t, const std::string& path);
Terrain load_terrain_file(const std::string& path);

/// ESRI ASCII grid (.asc) interchange - the format USGS DEM/DSM rasters are
/// commonly distributed in. A terrain needs two co-registered grids: a DTM
/// (bare ground) and a DSM (top of canopy/roofs). Heights above the ground
/// by more than `clutter_threshold_m` become clutter of `default_clutter`
/// (ASCII grids carry no classification).
void save_esri_dtm(const Terrain& t, std::ostream& os);
void save_esri_dsm(const Terrain& t, std::ostream& os);
Terrain load_esri_pair(std::istream& dtm, std::istream& dsm,
                       Clutter default_clutter = Clutter::kBuilding,
                       double clutter_threshold_m = 2.0);

}  // namespace skyran::terrain
