#include "terrain/terrain.hpp"

#include <algorithm>

#include "geo/contract.hpp"

namespace skyran::terrain {

Terrain::Terrain(geo::Rect area, double cell_size)
    : cells_(area, cell_size, TerrainCell{}) {}

double Terrain::ground_height(geo::Vec2 p) const {
  return cells_.value_at(cells_.area().clamp(p)).ground;
}

double Terrain::surface_height(geo::Vec2 p) const {
  const TerrainCell& c = cells_.value_at(cells_.area().clamp(p));
  return static_cast<double>(c.ground) + static_cast<double>(c.clutter_height);
}

Clutter Terrain::clutter_at(geo::Vec2 p) const {
  return cells_.value_at(cells_.area().clamp(p)).clutter;
}

bool Terrain::is_obstructed(geo::Vec2 p, double z) const {
  const TerrainCell& c = cells_.value_at(cells_.area().clamp(p));
  const double ground = c.ground;
  if (z < ground) return true;
  return c.clutter != Clutter::kOpen && c.clutter != Clutter::kWater &&
         z < ground + c.clutter_height;
}

double Terrain::max_surface_height() const {
  double best = 0.0;
  cells_.for_each([&](geo::CellIndex, const TerrainCell& c) {
    best = std::max(best, static_cast<double>(c.ground) + static_cast<double>(c.clutter_height));
  });
  return best;
}

double Terrain::clutter_fraction(Clutter kind) const {
  std::size_t n = 0;
  cells_.for_each([&](geo::CellIndex, const TerrainCell& c) {
    if (c.clutter == kind) ++n;
  });
  return static_cast<double>(n) / static_cast<double>(cells_.size());
}

double penetration_loss_db_per_meter(Clutter c) {
  switch (c) {
    case Clutter::kBuilding:
      return 1.8;  // concrete / masonry bulk loss
    case Clutter::kFoliage:
      return 0.45;  // vegetation loss (ITU-R P.833-flavored bulk value)
    case Clutter::kOpen:
    case Clutter::kWater:
      return 0.0;
  }
  return 0.0;
}

const char* to_string(Clutter c) {
  switch (c) {
    case Clutter::kOpen:
      return "open";
    case Clutter::kBuilding:
      return "building";
    case Clutter::kFoliage:
      return "foliage";
    case Clutter::kWater:
      return "water";
  }
  return "unknown";
}

}  // namespace skyran::terrain
