// Terrain substrate. The paper evaluates SkyRAN over a real campus and, for
// its scale-up study, over USGS LiDAR rasters pre-processed to 1 m spatial
// granularity (Sec 5.1). We model terrain as two co-registered rasters:
// ground elevation and clutter (buildings / foliage) with per-cell heights.
#pragma once

#include <cstdint>
#include <string>

#include "geo/grid.hpp"
#include "geo/rect.hpp"
#include "geo/vec.hpp"

namespace skyran::terrain {

/// What occupies the space above the ground surface in a cell.
enum class Clutter : std::uint8_t {
  kOpen = 0,      ///< nothing above ground (roads, lots, fields)
  kBuilding = 1,  ///< man-made structure; strong RF obstruction
  kFoliage = 2,   ///< trees / vegetation; moderate RF obstruction
  kWater = 3,     ///< open water; no vertical obstruction
};

/// One terrain raster cell.
struct TerrainCell {
  float ground = 0.0F;          ///< ground elevation above the area datum, m
  float clutter_height = 0.0F;  ///< height of clutter above ground, m
  Clutter clutter = Clutter::kOpen;
};

/// A rectangular patch of the world at fixed raster resolution.
class Terrain {
 public:
  Terrain() = default;

  /// Flat, open terrain covering `area` at `cell_size` meter resolution.
  Terrain(geo::Rect area, double cell_size);

  const geo::Grid2D<TerrainCell>& cells() const { return cells_; }
  geo::Grid2D<TerrainCell>& cells() { return cells_; }
  const geo::Rect& area() const { return cells_.area(); }
  double cell_size() const { return cells_.cell_size(); }

  /// Ground elevation at `p` (nearest cell), meters above datum.
  double ground_height(geo::Vec2 p) const;

  /// Top of the surface at `p`: ground plus any clutter, meters above datum.
  double surface_height(geo::Vec2 p) const;

  /// Clutter class at `p`.
  Clutter clutter_at(geo::Vec2 p) const;

  /// True when a point at altitude `z` (above datum) is inside clutter or
  /// below ground at `p`.
  bool is_obstructed(geo::Vec2 p, double z) const;

  /// Highest surface over the whole patch, meters above datum.
  double max_surface_height() const;

  /// Fraction of cells carrying the given clutter class.
  double clutter_fraction(Clutter c) const;

 private:
  geo::Grid2D<TerrainCell> cells_;
};

/// Per-material RF penetration loss, dB per meter traversed inside the
/// obstruction. Values follow common LTE link-budget practice: concrete
/// structures attenuate far more per meter than foliage.
double penetration_loss_db_per_meter(Clutter c);

const char* to_string(Clutter c);

}  // namespace skyran::terrain
