#include "terrain/io.hpp"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace skyran::terrain {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_terrain: truncated input");
  return v;
}

}  // namespace

void save_terrain(const Terrain& t, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  const auto& grid = t.cells();
  write_pod(os, grid.area().min.x);
  write_pod(os, grid.area().min.y);
  write_pod(os, grid.area().max.x);
  write_pod(os, grid.area().max.y);
  write_pod(os, grid.cell_size());
  write_pod(os, static_cast<std::uint32_t>(grid.nx()));
  write_pod(os, static_cast<std::uint32_t>(grid.ny()));
  for (const TerrainCell& c : grid.raw()) {
    write_pod(os, c.ground);
    write_pod(os, c.clutter_height);
    write_pod(os, static_cast<std::uint8_t>(c.clutter));
  }
  if (!os) throw std::runtime_error("save_terrain: write failed");
}

Terrain load_terrain(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("load_terrain: bad magic");
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) throw std::runtime_error("load_terrain: unsupported version");
  const double min_x = read_pod<double>(is);
  const double min_y = read_pod<double>(is);
  const double max_x = read_pod<double>(is);
  const double max_y = read_pod<double>(is);
  const double cell_size = read_pod<double>(is);
  const auto nx = read_pod<std::uint32_t>(is);
  const auto ny = read_pod<std::uint32_t>(is);

  Terrain t(geo::Rect{{min_x, min_y}, {max_x, max_y}}, cell_size);
  auto& grid = t.cells();
  if (static_cast<std::uint32_t>(grid.nx()) != nx || static_cast<std::uint32_t>(grid.ny()) != ny)
    throw std::runtime_error("load_terrain: inconsistent raster dimensions");
  for (TerrainCell& c : grid.raw()) {
    c.ground = read_pod<float>(is);
    c.clutter_height = read_pod<float>(is);
    const auto cls = read_pod<std::uint8_t>(is);
    if (cls > static_cast<std::uint8_t>(Clutter::kWater))
      throw std::runtime_error("load_terrain: bad clutter class");
    c.clutter = static_cast<Clutter>(cls);
  }
  return t;
}

namespace {

/// Emit one ESRI ASCII grid; `value` extracts the per-cell height.
template <typename F>
void save_esri(const Terrain& t, std::ostream& os, F&& value) {
  const auto& grid = t.cells();
  os << "ncols " << grid.nx() << "\n"
     << "nrows " << grid.ny() << "\n"
     << "xllcorner " << grid.area().min.x << "\n"
     << "yllcorner " << grid.area().min.y << "\n"
     << "cellsize " << grid.cell_size() << "\n"
     << "NODATA_value -9999\n";
  // ESRI rows run north to south.
  for (int iy = grid.ny() - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      if (ix > 0) os << ' ';
      os << value(grid.at(ix, iy));
    }
    os << '\n';
  }
  if (!os) throw std::runtime_error("save_esri: write failed");
}

struct EsriGrid {
  geo::Rect area;
  double cell_size = 0.0;
  int ncols = 0;
  int nrows = 0;
  std::vector<double> values;  ///< row-major, north row first (file order)
};

EsriGrid load_esri(std::istream& is) {
  EsriGrid g;
  double xll = 0.0;
  double yll = 0.0;
  double nodata = -9999.0;
  for (int line = 0; line < 6; ++line) {
    std::string key;
    if (!(is >> key)) throw std::runtime_error("load_esri: truncated header");
    double v = 0.0;
    if (!(is >> v)) throw std::runtime_error("load_esri: bad header value");
    for (char& c : key) c = static_cast<char>(std::tolower(c));
    if (key == "ncols")
      g.ncols = static_cast<int>(v);
    else if (key == "nrows")
      g.nrows = static_cast<int>(v);
    else if (key == "xllcorner")
      xll = v;
    else if (key == "yllcorner")
      yll = v;
    else if (key == "cellsize")
      g.cell_size = v;
    else if (key == "nodata_value")
      nodata = v;
    else
      throw std::runtime_error("load_esri: unknown header key " + key);
  }
  if (g.ncols <= 0 || g.nrows <= 0 || g.cell_size <= 0.0)
    throw std::runtime_error("load_esri: invalid dimensions");
  g.area = geo::Rect{{xll, yll},
                     {xll + g.ncols * g.cell_size, yll + g.nrows * g.cell_size}};
  g.values.resize(static_cast<std::size_t>(g.ncols) * static_cast<std::size_t>(g.nrows));
  for (double& v : g.values) {
    if (!(is >> v)) throw std::runtime_error("load_esri: truncated data");
    if (v == nodata) v = 0.0;
  }
  return g;
}

}  // namespace

void save_esri_dtm(const Terrain& t, std::ostream& os) {
  save_esri(t, os, [](const TerrainCell& c) { return c.ground; });
}

void save_esri_dsm(const Terrain& t, std::ostream& os) {
  save_esri(t, os,
            [](const TerrainCell& c) { return c.ground + c.clutter_height; });
}

Terrain load_esri_pair(std::istream& dtm_is, std::istream& dsm_is, Clutter default_clutter,
                       double clutter_threshold_m) {
  const EsriGrid dtm = load_esri(dtm_is);
  const EsriGrid dsm = load_esri(dsm_is);
  if (dtm.ncols != dsm.ncols || dtm.nrows != dsm.nrows ||
      std::abs(dtm.cell_size - dsm.cell_size) > 1e-9)
    throw std::runtime_error("load_esri_pair: DTM and DSM grids do not match");

  Terrain t(dtm.area, dtm.cell_size);
  auto& grid = t.cells();
  if (grid.nx() != dtm.ncols || grid.ny() != dtm.nrows)
    throw std::runtime_error("load_esri_pair: raster dimensions inconsistent");
  for (int iy = 0; iy < grid.ny(); ++iy) {
    for (int ix = 0; ix < grid.nx(); ++ix) {
      // File order is north-first; our grid is south-first.
      const std::size_t file_row = static_cast<std::size_t>(grid.ny() - 1 - iy);
      const std::size_t idx = file_row * static_cast<std::size_t>(dtm.ncols) +
                              static_cast<std::size_t>(ix);
      TerrainCell& c = grid.at(ix, iy);
      c.ground = static_cast<float>(dtm.values[idx]);
      const double clutter = dsm.values[idx] - dtm.values[idx];
      if (clutter > clutter_threshold_m) {
        c.clutter = default_clutter;
        c.clutter_height = static_cast<float>(clutter);
      }
    }
  }
  return t;
}

void save_terrain_file(const Terrain& t, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_terrain_file: cannot open " + path);
  save_terrain(t, os);
}

Terrain load_terrain_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_terrain_file: cannot open " + path);
  return load_terrain(is);
}

}  // namespace skyran::terrain
