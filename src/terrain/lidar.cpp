#include "terrain/lidar.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <random>

#include "geo/contract.hpp"
#include "geo/grid.hpp"

namespace skyran::terrain {

PointCloud scan_terrain(const Terrain& t, const LidarScanConfig& cfg, std::uint64_t seed) {
  expects(cfg.pulse_density > 0.0, "scan_terrain: pulse density must be positive");
  expects(cfg.dropout_rate >= 0.0 && cfg.dropout_rate < 1.0,
          "scan_terrain: dropout rate in [0,1)");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(t.area().min.x, t.area().max.x);
  std::uniform_real_distribution<double> uy(t.area().min.y, t.area().max.y);
  std::normal_distribution<double> range_noise(0.0, cfg.range_noise_m);
  std::uniform_real_distribution<double> u01(0.0, 1.0);

  const auto n_pulses = static_cast<std::size_t>(t.area().area() * cfg.pulse_density);
  PointCloud cloud;
  cloud.extent = t.area();
  cloud.points.reserve(n_pulses);
  for (std::size_t i = 0; i < n_pulses; ++i) {
    if (u01(rng) < cfg.dropout_rate) continue;
    const geo::Vec2 p{ux(rng), uy(rng)};
    const terrain::Clutter cls = t.clutter_at(p);
    // Vegetation is porous: a third of pulses reach the ground (the classic
    // "last return"); buildings are opaque, only roofs return.
    const bool ground_return = cls == Clutter::kFoliage && u01(rng) < 0.35;
    const double z =
        (ground_return ? t.ground_height(p) : t.surface_height(p)) + range_noise(rng);
    cloud.points.push_back({geo::Vec3{p, z}, ground_return ? Clutter::kOpen : cls});
  }
  return cloud;
}

Terrain rasterize(const PointCloud& cloud, double cell_size) {
  expects(!cloud.points.empty(), "rasterize: empty point cloud");
  Terrain out(cloud.extent, cell_size);
  auto& grid = out.cells();

  struct CellAccum {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    std::array<int, 4> class_votes{};
    int n = 0;
  };
  geo::Grid2D<CellAccum> accum(cloud.extent, cell_size);

  for (const LidarPoint& pt : cloud.points) {
    const geo::Vec2 xy = cloud.extent.clamp(pt.position.xy());
    CellAccum& a = accum.value_at(xy);
    a.lo = std::min(a.lo, pt.position.z);
    a.hi = std::max(a.hi, pt.position.z);
    ++a.class_votes[static_cast<std::size_t>(pt.classification)];
    ++a.n;
  }

  // First pass: per-cell class vote and surface height. Ground elevation is
  // only known directly where ground-classified returns exist (open cells
  // and vegetation last-returns); building roofs hide the ground beneath.
  geo::Grid2D<std::uint8_t> has_ground(cloud.extent, cell_size, std::uint8_t{0});
  geo::Grid2D<std::uint8_t> has_data(cloud.extent, cell_size, std::uint8_t{0});
  grid.for_each([&](geo::CellIndex c, TerrainCell& cell) {
    const CellAccum& a = accum.at(c);
    if (a.n == 0) return;
    has_data.at(c) = 1;
    const auto best =
        std::max_element(a.class_votes.begin(), a.class_votes.end()) - a.class_votes.begin();
    cell.clutter = static_cast<Clutter>(best);
    if (cell.clutter == Clutter::kOpen || cell.clutter == Clutter::kWater) {
      cell.ground = static_cast<float>(a.lo);
      cell.clutter_height = 0.0F;
      cell.clutter = static_cast<Clutter>(best);
      has_ground.at(c) = 1;
    } else if (cell.clutter == Clutter::kFoliage && a.class_votes[0] > 0) {
      // Mixed canopy + ground returns: both surfaces observed directly.
      cell.ground = static_cast<float>(a.lo);
      cell.clutter_height = static_cast<float>(std::max(0.0, a.hi - a.lo));
      has_ground.at(c) = 1;
    } else {
      // Opaque clutter: remember the surface; ground comes from neighbors.
      cell.clutter_height = static_cast<float>(a.hi);  // temporarily absolute
    }
  });

  // Second pass: BFS ground elevations outward from ground-observed cells,
  // then convert opaque cells' absolute surface into height-above-ground.
  std::deque<geo::CellIndex> frontier;
  has_ground.for_each([&](geo::CellIndex c, std::uint8_t& f) {
    if (f) frontier.push_back(c);
  });
  expects(!frontier.empty(), "rasterize: no ground-classified return anywhere");
  while (!frontier.empty()) {
    const geo::CellIndex c = frontier.front();
    frontier.pop_front();
    const std::array<geo::CellIndex, 4> neighbors{
        geo::CellIndex{c.ix + 1, c.iy}, geo::CellIndex{c.ix - 1, c.iy},
        geo::CellIndex{c.ix, c.iy + 1}, geo::CellIndex{c.ix, c.iy - 1}};
    for (geo::CellIndex n : neighbors) {
      if (!has_ground.in_bounds(n) || has_ground.at(n)) continue;
      const TerrainCell& src = grid.at(c);
      TerrainCell& dst = grid.at(n);
      if (has_data.at(n)) {
        // Opaque cell: absolute surface was stashed in clutter_height.
        const double surface = dst.clutter_height;
        dst.ground = src.ground;
        dst.clutter_height = static_cast<float>(std::max(0.0, surface - src.ground));
        if (dst.clutter_height < 1.0F) {
          dst.clutter = Clutter::kOpen;
          dst.clutter_height = 0.0F;
        }
      } else {
        dst = src;  // void cell: copy the neighbor wholesale
      }
      has_ground.at(n) = 1;
      frontier.push_back(n);
    }
  }
  return out;
}

}  // namespace skyran::terrain
