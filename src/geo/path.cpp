#include "geo/path.hpp"

#include <algorithm>
#include <limits>

#include "geo/contract.hpp"

namespace skyran::geo {

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 <= 0.0) return p.dist(a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return p.dist(a + ab * t);
}

double Path::length() const {
  double total = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) total += points_[i].dist(points_[i - 1]);
  return total;
}

Vec2 Path::point_at(double s) const {
  expects(!points_.empty(), "Path::point_at: empty path");
  if (s <= 0.0) return points_.front();
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double seg = points_[i].dist(points_[i - 1]);
    if (s <= seg) {
      if (seg <= 0.0) return points_[i];
      return points_[i - 1] + (points_[i] - points_[i - 1]) * (s / seg);
    }
    s -= seg;
  }
  return points_.back();
}

Path Path::resampled(double spacing) const {
  expects(spacing > 0.0, "Path::resampled: spacing must be positive");
  if (points_.size() < 2) return *this;
  const double total = length();
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(total / spacing) + 2);
  for (double s = 0.0; s < total; s += spacing) out.push_back(point_at(s));
  out.push_back(points_.back());
  return Path(std::move(out));
}

double Path::distance_to(Vec2 p) const {
  expects(!points_.empty(), "Path::distance_to: empty path");
  if (points_.size() == 1) return p.dist(points_.front());
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < points_.size(); ++i)
    best = std::min(best, point_segment_distance(p, points_[i - 1], points_[i]));
  return best;
}

double Path::mean_distance_to(const Path& other, double spacing) const {
  expects(!points_.empty() && !other.points_.empty(),
          "Path::mean_distance_to: both paths must be non-empty");
  const Path samples = resampled(spacing);
  double sum = 0.0;
  for (Vec2 p : samples.points()) sum += other.distance_to(p);
  return sum / static_cast<double>(samples.size());
}

}  // namespace skyran::geo
