// FieldView<T>: a non-owning strided view over a dense raster with Grid2D's
// geometry (area, square cells, row-major layout). The REM bank stores many
// per-UE maps in one contiguous slab and hands consumers FieldViews instead
// of copies; anything written against Grid2D's accessor vocabulary (at,
// cell_of, center_of, same_geometry) works against a view unchanged.
#pragma once

#include <cstddef>
#include <type_traits>

#include "geo/grid.hpp"

namespace skyran::geo {

template <typename T>
class FieldView {
 public:
  using value_type = std::remove_const_t<T>;

  FieldView() = default;

  /// View over `nx * ny` row-major values at `data`, covering `area` with
  /// square cells of `cell_size` meters. The caller guarantees `data`
  /// outlives the view.
  FieldView(T* data, Rect area, double cell_size, int nx, int ny)
      : data_(data), area_(area), cell_size_(cell_size), nx_(nx), ny_(ny) {
    expects(data != nullptr, "FieldView: data must not be null");
    expects(cell_size > 0.0, "FieldView: cell size must be positive");
    expects(nx >= 1 && ny >= 1, "FieldView: grid must be non-empty");
  }

  /// View of an owning grid (read-only views accept const grids).
  template <typename U>
    requires std::is_same_v<std::remove_const_t<T>, U>
  FieldView(const Grid2D<U>& g)  // NOLINT(google-explicit-constructor)
    requires std::is_const_v<T>
      : FieldView(g.raw().data(), g.area(), g.cell_size(), g.nx(), g.ny()) {}
  template <typename U>
    requires std::is_same_v<T, U>
  FieldView(Grid2D<U>& g)  // NOLINT(google-explicit-constructor)
      : FieldView(g.raw().data(), g.area(), g.cell_size(), g.nx(), g.ny()) {}

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const {
    return static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_);
  }
  double cell_size() const { return cell_size_; }
  const Rect& area() const { return area_; }
  T* data() const { return data_; }

  bool in_bounds(CellIndex c) const {
    return c.ix >= 0 && c.ix < nx_ && c.iy >= 0 && c.iy < ny_;
  }

  T& at(CellIndex c) const {
    expects(in_bounds(c), "FieldView::at: cell out of bounds");
    return data_[flat(c)];
  }
  T& at(int ix, int iy) const { return at(CellIndex{ix, iy}); }
  T& operator[](std::size_t flat_index) const { return data_[flat_index]; }

  /// Cell containing world point `p` (same clamping rule as Grid2D).
  CellIndex cell_of(Vec2 p) const {
    expects(area_.contains(p), "FieldView::cell_of: point outside view area");
    int ix = static_cast<int>((p.x - area_.min.x) / cell_size_);
    int iy = static_cast<int>((p.y - area_.min.y) / cell_size_);
    ix = ix < nx_ - 1 ? ix : nx_ - 1;
    iy = iy < ny_ - 1 ? iy : ny_ - 1;
    return {ix, iy};
  }

  Vec2 center_of(CellIndex c) const {
    expects(in_bounds(c), "FieldView::center_of: cell out of bounds");
    return {area_.min.x + (c.ix + 0.5) * cell_size_,
            area_.min.y + (c.iy + 0.5) * cell_size_};
  }

  const T& value_at(Vec2 p) const { return at(cell_of(p)); }

  /// Geometry equality against any grid-like type (Grid2D or FieldView).
  template <typename Other>
  bool same_geometry(const Other& other) const {
    return nx_ == other.nx() && ny_ == other.ny() &&
           std::abs(cell_size_ - other.cell_size()) < 1e-9 &&
           area_.min == other.area().min && area_.max == other.area().max;
  }

  /// Materialize an owning copy (row-major order preserved).
  Grid2D<value_type> to_grid() const {
    Grid2D<value_type> out(area_, cell_size_, value_type{});
    for (std::size_t i = 0; i < out.raw().size(); ++i) out.raw()[i] = data_[i];
    return out;
  }

 private:
  std::size_t flat(CellIndex c) const {
    return static_cast<std::size_t>(c.iy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(c.ix);
  }

  T* data_ = nullptr;
  Rect area_{};
  double cell_size_ = 1.0;
  int nx_ = 0;
  int ny_ = 0;
};

/// Convenience factories mirroring std::span's deduction ergonomics.
template <typename U>
FieldView<const U> view_of(const Grid2D<U>& g) {
  return FieldView<const U>(g);
}
template <typename U>
FieldView<U> view_of(Grid2D<U>& g) {
  return FieldView<U>(g);
}

}  // namespace skyran::geo
