#include "geo/noise.hpp"

#include <cmath>

#include "geo/contract.hpp"

namespace skyran::geo {

namespace {

/// SplitMix64 finalizer: decorrelates lattice coordinates into hash bits.
std::uint64_t mix(std::uint64_t v) {
  v += 0x9e3779b97f4a7c15ULL;
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return v ^ (v >> 31);
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

ValueNoise::ValueNoise(std::uint64_t seed, double scale, int octaves, double persistence)
    : seed_(seed), scale_(scale), octaves_(octaves), persistence_(persistence) {
  expects(scale > 0.0, "ValueNoise: scale must be positive");
  expects(octaves >= 1, "ValueNoise: need at least one octave");
  expects(persistence > 0.0 && persistence <= 1.0, "ValueNoise: persistence in (0,1]");
}

double ValueNoise::lattice(std::int64_t ix, std::int64_t iy) const {
  const std::uint64_t h =
      mix(seed_ ^ mix(static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL) ^
          mix(static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL));
  // Map to [-1, 1).
  return static_cast<double>(h >> 11) * (2.0 / 9007199254740992.0) - 1.0;
}

double ValueNoise::base(Vec2 p) const {
  const double fx = std::floor(p.x);
  const double fy = std::floor(p.y);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const double tx = smoothstep(p.x - fx);
  const double ty = smoothstep(p.y - fy);
  const double v00 = lattice(ix, iy);
  const double v10 = lattice(ix + 1, iy);
  const double v01 = lattice(ix, iy + 1);
  const double v11 = lattice(ix + 1, iy + 1);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * ty;
}

double ValueNoise::sample(Vec2 p) const {
  double amplitude = 1.0;
  double frequency = 1.0 / scale_;
  double sum = 0.0;
  double norm = 0.0;
  for (int o = 0; o < octaves_; ++o) {
    // Offset octaves so their lattices do not align.
    const Vec2 q{p.x * frequency + 137.13 * o, p.y * frequency + 91.7 * o};
    sum += amplitude * base(q);
    norm += amplitude;
    amplitude *= persistence_;
    frequency *= 2.0;
  }
  return sum / norm;
}

}  // namespace skyran::geo
