// Grid2D<T>: a dense raster over a rectangular ground area with a fixed cell
// size in meters. This is the backbone type for terrains, REMs, gradient maps
// and min-SNR maps (paper quantizes all space into 1 m x 1 m cells, Sec 3.3).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "geo/contract.hpp"
#include "geo/rect.hpp"
#include "geo/vec.hpp"

namespace skyran::geo {

/// Integer cell index within a Grid2D.
struct CellIndex {
  int ix = 0;
  int iy = 0;
  constexpr bool operator==(const CellIndex&) const = default;
};

template <typename T>
class Grid2D {
 public:
  Grid2D() = default;

  /// Grid covering `area` with square cells of `cell_size` meters, every cell
  /// initialized to `fill`. Partial cells at the far edges are included.
  Grid2D(Rect area, double cell_size, T fill = T{})
      : area_(area), cell_size_(cell_size) {
    expects(cell_size > 0.0, "Grid2D: cell size must be positive");
    expects(area.width() > 0.0 && area.height() > 0.0, "Grid2D: area must be non-empty");
    nx_ = static_cast<int>(std::ceil(area.width() / cell_size - 1e-9));
    ny_ = static_cast<int>(std::ceil(area.height() / cell_size - 1e-9));
    nx_ = std::max(nx_, 1);
    ny_ = std::max(ny_, 1);
    cells_.assign(static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_), fill);
  }

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  std::size_t size() const { return cells_.size(); }
  double cell_size() const { return cell_size_; }
  const Rect& area() const { return area_; }

  bool in_bounds(CellIndex c) const {
    return c.ix >= 0 && c.ix < nx_ && c.iy >= 0 && c.iy < ny_;
  }

  T& at(CellIndex c) {
    expects(in_bounds(c), "Grid2D::at: cell out of bounds");
    return cells_[flat(c)];
  }
  const T& at(CellIndex c) const {
    expects(in_bounds(c), "Grid2D::at: cell out of bounds");
    return cells_[flat(c)];
  }
  T& at(int ix, int iy) { return at(CellIndex{ix, iy}); }
  const T& at(int ix, int iy) const { return at(CellIndex{ix, iy}); }

  /// Unchecked access for hot loops; caller guarantees bounds.
  T& at_unchecked(CellIndex c) { return cells_[flat(c)]; }
  const T& at_unchecked(CellIndex c) const { return cells_[flat(c)]; }

  /// Cell containing the world point `p` (clamped to the grid edge so that
  /// points exactly on the max boundary map to the last cell).
  CellIndex cell_of(Vec2 p) const {
    expects(area_.contains(p), "Grid2D::cell_of: point outside grid area");
    int ix = static_cast<int>((p.x - area_.min.x) / cell_size_);
    int iy = static_cast<int>((p.y - area_.min.y) / cell_size_);
    ix = std::min(ix, nx_ - 1);
    iy = std::min(iy, ny_ - 1);
    return {ix, iy};
  }

  /// World coordinates of the center of cell `c`.
  Vec2 center_of(CellIndex c) const {
    expects(in_bounds(c), "Grid2D::center_of: cell out of bounds");
    return {area_.min.x + (c.ix + 0.5) * cell_size_,
            area_.min.y + (c.iy + 0.5) * cell_size_};
  }

  /// Value at the cell containing world point `p`.
  const T& value_at(Vec2 p) const { return at(cell_of(p)); }
  T& value_at(Vec2 p) { return at(cell_of(p)); }

  void fill(const T& v) { std::fill(cells_.begin(), cells_.end(), v); }

  /// Visit every cell as (index, mutable value).
  template <typename F>
  void for_each(F&& f) {
    for (int iy = 0; iy < ny_; ++iy)
      for (int ix = 0; ix < nx_; ++ix) f(CellIndex{ix, iy}, cells_[flat({ix, iy})]);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (int iy = 0; iy < ny_; ++iy)
      for (int ix = 0; ix < nx_; ++ix) f(CellIndex{ix, iy}, cells_[flat({ix, iy})]);
  }

  /// Element-wise map into a new grid of the same geometry.
  template <typename F>
  auto map(F&& f) const -> Grid2D<std::invoke_result_t<F, T>> {
    Grid2D<std::invoke_result_t<F, T>> out(area_, cell_size_);
    for (std::size_t i = 0; i < cells_.size(); ++i) out.raw()[i] = f(cells_[i]);
    return out;
  }

  std::vector<T>& raw() { return cells_; }
  const std::vector<T>& raw() const { return cells_; }

  /// True when `other` covers the same area with the same cell layout.
  template <typename U>
  bool same_geometry(const Grid2D<U>& other) const {
    return nx_ == other.nx() && ny_ == other.ny() &&
           std::abs(cell_size_ - other.cell_size()) < 1e-9 &&
           area_.min == other.area().min && area_.max == other.area().max;
  }

 private:
  std::size_t flat(CellIndex c) const {
    return static_cast<std::size_t>(c.iy) * static_cast<std::size_t>(nx_) +
           static_cast<std::size_t>(c.ix);
  }

  Rect area_;
  double cell_size_ = 1.0;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<T> cells_;
};

}  // namespace skyran::geo
