// Small statistics helpers shared by metrics and benches: median, arbitrary
// percentiles, mean, and empirical CDF extraction.
#pragma once

#include <span>
#include <vector>

namespace skyran::geo {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// p-th percentile (p in [0,1]) of an ALREADY ASCENDING-SORTED sample, by
/// linear interpolation between order statistics. This is the one percentile
/// implementation in the repo; `percentile` sorts a copy and delegates here.
///
/// Empty-input contract (explicit, pinned by tests/test_geo.cpp): an empty
/// sample yields 0.0. Aggregate-report assembly (e.g. lte::TrafficPlane
/// percentile fields) treats "no samples yet" as a zero statistic rather
/// than an error; callers for whom an empty sample is a logic bug should
/// use `percentile`, which throws. p outside [0,1] throws either way.
double percentile_sorted(std::span<const double> sorted, double p);

/// p-th percentile (p in [0,1]) by linear interpolation between order
/// statistics (sorts a copy, then percentile_sorted). Throws
/// ContractViolation for an empty input or p out of range.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};

/// Empirical CDF sampled at `resolution` evenly spaced probabilities
/// (inclusive of 0 and 1). Throws for empty input.
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs, int resolution = 20);

}  // namespace skyran::geo
