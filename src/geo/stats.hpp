// Small statistics helpers shared by metrics and benches: median, arbitrary
// percentiles, mean, and empirical CDF extraction.
#pragma once

#include <span>
#include <vector>

namespace skyran::geo {

/// Arithmetic mean; 0 for an empty input.
double mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(std::span<const double> xs);

/// p-th percentile (p in [0,1]) by linear interpolation between order
/// statistics. Throws ContractViolation for an empty input or p out of range.
double percentile(std::span<const double> xs, double p);

/// Median (50th percentile).
double median(std::span<const double> xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double probability = 0.0;
};

/// Empirical CDF sampled at `resolution` evenly spaced probabilities
/// (inclusive of 0 and 1). Throws for empty input.
std::vector<CdfPoint> empirical_cdf(std::span<const double> xs, int resolution = 20);

}  // namespace skyran::geo
