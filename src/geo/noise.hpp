// Deterministic lattice value-noise with fractal octaves. Used to synthesize
// rolling ground elevation and spatially-correlated shadow fading fields.
#pragma once

#include <cstdint>

#include "geo/vec.hpp"

namespace skyran::geo {

/// Smooth pseudo-random scalar field over the plane. Values are roughly in
/// [-1, 1] and are continuous in (x, y). The field is a pure function of
/// (seed, point): two instances with the same seed agree everywhere.
class ValueNoise {
 public:
  /// `scale` is the correlation length in meters of the base octave.
  ValueNoise(std::uint64_t seed, double scale, int octaves = 4, double persistence = 0.5);

  /// Sample the fractal field at `p`.
  double sample(Vec2 p) const;

  /// Sample a single octave lattice at unit frequency (exposed for tests).
  double base(Vec2 p) const;

 private:
  double lattice(std::int64_t ix, std::int64_t iy) const;

  std::uint64_t seed_;
  double scale_;
  int octaves_;
  double persistence_;
};

}  // namespace skyran::geo
