// Shared binary-envelope I/O for every on-disk format in the codebase
// (RemStore persistence, core::Snapshot checkpoints). One layout:
//
//   magic(4) | version(u32) | payload_size(u64) | crc32(u32) | payload
//
// The CRC covers the payload only; the writer buffers the payload so the
// header can be emitted first, and the reader slurps + verifies the payload
// before a single field is parsed. A flipped byte anywhere is rejected:
// magic -> BinCorruptError, version -> BinVersionError, size -> truncation
// or CRC mismatch, payload/crc -> BinCorruptError. All integers and doubles
// are raw little-endian host representation (the project targets a single
// ABI; doubles round-trip bit-exactly).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace skyran::geo {

/// Base class for every malformed-stream rejection. Derives from
/// std::runtime_error so pre-existing catch sites keep working.
struct BinFormatError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The stream ended before the format said it would.
struct BinTruncatedError : BinFormatError {
  using BinFormatError::BinFormatError;
};

/// Magic mismatch or CRC failure: the bytes are not (or are no longer) a
/// valid instance of the format.
struct BinCorruptError : BinFormatError {
  using BinFormatError::BinFormatError;
};

/// The envelope parsed but carries a version this build cannot read.
struct BinVersionError : BinFormatError {
  using BinFormatError::BinFormatError;
};

/// Incremental CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).
class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t s = state_;
    for (std::size_t i = 0; i < n; ++i) {
      s ^= p[i];
      for (int b = 0; b < 8; ++b) s = (s >> 1) ^ (0xEDB88320u & (~(s & 1u) + 1u));
    }
    state_ = s;
  }

  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  static std::uint32_t of(std::string_view bytes) {
    Crc32 c;
    c.update(bytes.data(), bytes.size());
    return c.value();
  }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// Payload builder: accumulates fields into a buffer so the envelope writer
/// can prepend size + CRC.
class BinWriter {
 public:
  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>, "BinWriter::pod needs a trivial type");
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// Length-prefixed (u64) byte string.
  void str(std::string_view s) {
    pod(static_cast<std::uint64_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Payload parser over an in-memory, CRC-verified buffer. Throws
/// BinTruncatedError on any read past the end — a prefix of a valid payload
/// can never parse as a shorter valid one.
class BinReader {
 public:
  explicit BinReader(std::string_view payload) : p_(payload.data()), end_(p_ + payload.size()) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>, "BinReader::pod needs a trivial type");
    if (static_cast<std::size_t>(end_ - p_) < sizeof(T))
      throw BinTruncatedError("binio: truncated payload");
    T v{};
    std::memcpy(&v, p_, sizeof(T));
    p_ += sizeof(T);
    return v;
  }

  std::string str() {
    const auto n = pod<std::uint64_t>();
    if (static_cast<std::uint64_t>(end_ - p_) < n)
      throw BinTruncatedError("binio: truncated payload string");
    std::string s(p_, static_cast<std::size_t>(n));
    p_ += n;
    return s;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool done() const { return p_ == end_; }

 private:
  const char* p_;
  const char* end_;
};

/// Emit the full envelope for `payload` under `magic` (exactly 4 bytes).
inline void write_envelope(std::ostream& os, const char magic[4], std::uint32_t version,
                           const BinWriter& payload) {
  os.write(magic, 4);
  const auto write_pod = [&os](const auto& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_pod(version);
  write_pod(static_cast<std::uint64_t>(payload.buffer().size()));
  write_pod(Crc32::of(payload.buffer()));
  os.write(payload.buffer().data(),
           static_cast<std::streamsize>(payload.buffer().size()));
}

struct Envelope {
  std::uint32_t version = 0;
  std::string payload;
};

/// Read and verify one envelope. `context` prefixes every error message
/// (e.g. "RemStore::load"). Versions outside [min_version, max_version]
/// throw BinVersionError. The stream is consumed exactly through the
/// payload; trailing bytes (e.g. an enclosing container) are left unread.
inline Envelope read_envelope(std::istream& is, const char magic[4], std::uint32_t min_version,
                              std::uint32_t max_version, const std::string& context) {
  char m[4];
  is.read(m, 4);
  if (!is) throw BinTruncatedError(context + ": truncated header");
  if (std::memcmp(m, magic, 4) != 0) throw BinCorruptError(context + ": bad magic");
  const auto read_pod = [&is, &context](auto& v) {
    is.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!is) throw BinTruncatedError(context + ": truncated header");
  };
  std::uint32_t version = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  read_pod(version);
  if (version < min_version || version > max_version)
    throw BinVersionError(context + ": unsupported version " + std::to_string(version));
  read_pod(size);
  read_pod(crc);
  Envelope e;
  e.version = version;
  // Chunked read: never pre-allocate the declared size. A corrupted size
  // field can claim exabytes; trusting it would turn a flipped byte into
  // std::bad_alloc instead of a typed truncation error. Memory grows only
  // with bytes the stream actually delivers.
  constexpr std::uint64_t kChunk = 1 << 20;
  while (static_cast<std::uint64_t>(e.payload.size()) < size) {
    const std::uint64_t want =
        std::min(kChunk, size - static_cast<std::uint64_t>(e.payload.size()));
    const std::size_t off = e.payload.size();
    e.payload.resize(off + static_cast<std::size_t>(want));
    is.read(e.payload.data() + off, static_cast<std::streamsize>(want));
    if (static_cast<std::uint64_t>(is.gcount()) != want)
      throw BinTruncatedError(context + ": truncated payload");
  }
  if (Crc32::of(e.payload) != crc) throw BinCorruptError(context + ": CRC mismatch");
  return e;
}

}  // namespace skyran::geo
