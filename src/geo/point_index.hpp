// PointIndex: a hash-bucketed 2-D point index for radius-R membership
// queries keyed by insertion id. RemStore and SkyRan's trajectory-history
// table both key entries by UE position with the paper's radius-R reuse rule
// (Sec 3.5); this index replaces their O(N) linear scans while preserving
// the legacy tie-breaking exactly: "first entry in insertion order" and
// "nearest entry, earliest on ties".
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/contract.hpp"
#include "geo/vec.hpp"

namespace skyran::geo {

class PointIndex {
 public:
  /// `bucket_m` is the hash-cell edge; pick it near the query radius so a
  /// radius-R query touches a 3x3 bucket neighborhood.
  explicit PointIndex(double bucket_m) : bucket_m_(bucket_m) {
    expects(bucket_m > 0.0, "PointIndex: bucket size must be positive");
  }

  /// Register point `p` under caller-chosen id (ids need not be dense, but
  /// the tie-breaking contract reads them as insertion order).
  void insert(Vec2 p, std::size_t id) {
    buckets_[key_of(p)].push_back({p, id});
    ++size_;
  }

  /// Re-key an entry after its position changed (e.g. a store entry replaced
  /// by a fresher REM measured for a nearby position).
  void move(std::size_t id, Vec2 from, Vec2 to) {
    auto it = buckets_.find(key_of(from));
    expects(it != buckets_.end(), "PointIndex::move: unknown source bucket");
    auto& entries = it->second;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].second != id) continue;
      entries[i] = entries.back();
      entries.pop_back();
      if (entries.empty()) buckets_.erase(it);
      buckets_[key_of(to)].push_back({to, id});
      return;
    }
    expects(false, "PointIndex::move: id not found at source position");
  }

  /// Lowest id within `radius_m` of `p` (inclusive) — the entry a legacy
  /// first-match linear scan over insertion order would return.
  std::optional<std::size_t> first_within(Vec2 p, double radius_m) const {
    std::optional<std::size_t> best;
    visit_candidates(p, radius_m, [&](Vec2 q, std::size_t id) {
      if (q.dist(p) <= radius_m && (!best || id < *best)) best = id;
    });
    return best;
  }

  /// Nearest entry within `radius_m` of `p`; ties go to the lowest id — the
  /// entry a legacy strict-`<` nearest scan over insertion order would pick.
  std::optional<std::size_t> nearest_within(Vec2 p, double radius_m) const {
    std::optional<std::size_t> best;
    double best_d = std::numeric_limits<double>::infinity();
    visit_candidates(p, radius_m, [&](Vec2 q, std::size_t id) {
      const double d = q.dist(p);
      if (d > radius_m) return;
      if (d < best_d || (d == best_d && best && id < *best)) {
        best_d = d;
        best = id;
      }
    });
    return best;
  }

  std::size_t size() const { return size_; }

 private:
  /// 2-D bucket coordinate packed into one 64-bit key.
  std::int64_t key_of(Vec2 p) const {
    const auto bx = static_cast<std::int64_t>(std::floor(p.x / bucket_m_));
    const auto by = static_cast<std::int64_t>(std::floor(p.y / bucket_m_));
    return (bx << 32) ^ (by & 0xffffffff);
  }

  template <typename Visit>
  void visit_candidates(Vec2 p, double radius_m, Visit&& visit) const {
    const auto bx0 = static_cast<std::int64_t>(std::floor((p.x - radius_m) / bucket_m_));
    const auto bx1 = static_cast<std::int64_t>(std::floor((p.x + radius_m) / bucket_m_));
    const auto by0 = static_cast<std::int64_t>(std::floor((p.y - radius_m) / bucket_m_));
    const auto by1 = static_cast<std::int64_t>(std::floor((p.y + radius_m) / bucket_m_));
    for (std::int64_t bx = bx0; bx <= bx1; ++bx) {
      for (std::int64_t by = by0; by <= by1; ++by) {
        const auto it = buckets_.find((bx << 32) ^ (by & 0xffffffff));
        if (it == buckets_.end()) continue;
        for (const auto& [q, id] : it->second) visit(q, id);
      }
    }
  }

  double bucket_m_;
  std::size_t size_ = 0;
  std::unordered_map<std::int64_t, std::vector<std::pair<Vec2, std::size_t>>> buckets_;
};

}  // namespace skyran::geo
