#include "geo/stats.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::geo {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sq = 0.0;
  for (double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size()));
}

double percentile_sorted(std::span<const double> sorted, double p) {
  expects(p >= 0.0 && p <= 1.0, "percentile_sorted: p must be in [0,1]");
  if (sorted.empty()) return 0.0;  // explicit contract: empty sample -> 0.0
  const double pos = p * static_cast<double>(sorted.size() - 1);
  // pos >= 0, so truncation and std::floor agree; hi is clamped rather than
  // ceil'd so p == 1 stays exactly the max order statistic.
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> xs, double p) {
  expects(!xs.empty(), "percentile: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

std::vector<CdfPoint> empirical_cdf(std::span<const double> xs, int resolution) {
  expects(!xs.empty(), "empirical_cdf: empty input");
  expects(resolution >= 2, "empirical_cdf: resolution must be >= 2");
  std::vector<CdfPoint> out;
  out.reserve(static_cast<std::size_t>(resolution));
  for (int i = 0; i < resolution; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(resolution - 1);
    out.push_back({percentile(xs, p), p});
  }
  return out;
}

}  // namespace skyran::geo
