// Axis-aligned rectangle describing an operating area on the ground plane.
#pragma once

#include <algorithm>

#include "geo/contract.hpp"
#include "geo/vec.hpp"

namespace skyran::geo {

/// Axis-aligned 2-D rectangle, [min, max] inclusive on both axes.
struct Rect {
  Vec2 min;
  Vec2 max;

  constexpr Rect() = default;
  Rect(Vec2 min_, Vec2 max_) : min(min_), max(max_) {
    expects(min.x <= max.x && min.y <= max.y, "Rect: min must not exceed max");
  }

  /// Square area with the southwest corner at the origin.
  static Rect square(double side) { return {{0.0, 0.0}, {side, side}}; }

  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
  double area() const { return width() * height(); }
  Vec2 center() const { return (min + max) * 0.5; }

  bool contains(Vec2 p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// Closest point inside the rectangle to `p`.
  Vec2 clamp(Vec2 p) const {
    return {std::clamp(p.x, min.x, max.x), std::clamp(p.y, min.y, max.y)};
  }

  /// Rectangle grown by `margin` on every side (shrunk when negative).
  Rect inflated(double margin) const {
    Rect r;
    r.min = {min.x - margin, min.y - margin};
    r.max = {max.x + margin, max.y + margin};
    expects(r.min.x <= r.max.x && r.min.y <= r.max.y, "Rect::inflated: margin collapses rect");
    return r;
  }
};

}  // namespace skyran::geo
