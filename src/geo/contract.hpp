// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw rather than abort so that unit
// tests can assert on misuse of the public API.
#pragma once

#include <stdexcept>
#include <string>

namespace skyran {

/// Thrown when a function precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

/// Precondition check: throws ContractViolation when `condition` is false.
inline void expects(bool condition, const char* message) {
  if (!condition) throw ContractViolation(std::string("precondition violated: ") + message);
}

/// Postcondition check: throws ContractViolation when `condition` is false.
inline void ensures(bool condition, const char* message) {
  if (!condition) throw ContractViolation(std::string("postcondition violated: ") + message);
}

}  // namespace skyran
