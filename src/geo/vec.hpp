// 2-D and 3-D vector types used throughout SkyRAN. Coordinates are in a local
// east-north-up (ENU) frame in meters, origin at the southwest corner of the
// operating area; z is altitude above the origin's ground level.
#pragma once

#include <cmath>
#include <ostream>

namespace skyran::geo {

struct Vec2 {
  double x = 0.0;  ///< east, meters
  double y = 0.0;  ///< north, meters

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(Vec2 o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2& operator-=(Vec2 o) { x -= o.x; y -= o.y; return *this; }
  constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }
  constexpr bool operator==(const Vec2&) const = default;

  constexpr double dot(Vec2 o) const { return x * o.x + y * o.y; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
  double dist(Vec2 o) const { return (*this - o).norm(); }

  /// Unit vector in the same direction; the zero vector maps to itself.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
};

constexpr Vec2 operator*(double s, Vec2 v) { return v * s; }

struct Vec3 {
  double x = 0.0;  ///< east, meters
  double y = 0.0;  ///< north, meters
  double z = 0.0;  ///< up, meters

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}
  constexpr Vec3(Vec2 xy, double z_) : x(xy.x), y(xy.y), z(z_) {}

  constexpr Vec2 xy() const { return {x, y}; }

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr bool operator==(const Vec3&) const = default;

  constexpr double dot(Vec3 o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr double norm2() const { return dot(*this); }
  double norm() const { return std::sqrt(norm2()); }
  double dist(Vec3 o) const { return (*this - o).norm(); }

  Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

constexpr Vec3 operator*(double s, Vec3 v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, Vec2 v) {
  return os << '(' << v.x << ", " << v.y << ')';
}
inline std::ostream& operator<<(std::ostream& os, Vec3 v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace skyran::geo
