// Polyline paths: UAV trajectories are polylines through waypoints, quantized
// to ~1 m spacing for measurement (paper Sec 3.3.2). Provides length,
// resampling, and point-to-path / path-to-path distances used by the
// information-gain computation.
#pragma once

#include <span>
#include <vector>

#include "geo/vec.hpp"

namespace skyran::geo {

/// A 2-D polyline through an ordered list of waypoints.
class Path {
 public:
  Path() = default;
  explicit Path(std::vector<Vec2> points) : points_(std::move(points)) {}

  const std::vector<Vec2>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  void push_back(Vec2 p) { points_.push_back(p); }

  /// Total arc length of the polyline.
  double length() const;

  /// Point at arc-length `s` from the start, clamped to [0, length()].
  Vec2 point_at(double s) const;

  /// New path with points spaced `spacing` meters apart along the arc
  /// (endpoints included). An empty or single-point path is returned as-is.
  Path resampled(double spacing) const;

  /// Shortest distance from `p` to any segment of the path.
  double distance_to(Vec2 p) const;

  /// Mean over this path's resampled points of the distance to `other`.
  /// Used as the "novelty" of this path relative to a historical one.
  double mean_distance_to(const Path& other, double spacing = 5.0) const;

 private:
  std::vector<Vec2> points_;
};

/// Shortest distance from point `p` to segment [a, b].
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

}  // namespace skyran::geo
