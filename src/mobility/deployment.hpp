// UE deployment generators: uniform-random and pocket-clustered placements
// (the paper's Topology A / Topology B, Fig. 22, and the "UEs concentrated
// in few pockets" setting of Fig. 1). UEs are placed on walkable ground
// (never inside buildings).
#pragma once

#include <cstdint>
#include <vector>

#include "geo/vec.hpp"
#include "terrain/terrain.hpp"

namespace skyran::mobility {

/// `margin_m` keeps UEs away from the area boundary.
std::vector<geo::Vec3> deploy_uniform(const terrain::Terrain& t, int count, std::uint64_t seed,
                                      double margin_m = 10.0);

/// UEs grouped into `clusters` pockets of radius `cluster_radius_m`.
std::vector<geo::Vec3> deploy_clustered(const terrain::Terrain& t, int count, int clusters,
                                        double cluster_radius_m, std::uint64_t seed,
                                        double margin_m = 10.0);

/// A walkable ground position (not inside a building), with z on the ground.
geo::Vec3 random_walkable_position(const terrain::Terrain& t, std::uint64_t seed,
                                   double margin_m = 10.0);

/// Mixed-visibility deployment mirroring the paper's testbed UE choice
/// (Sec 4.2: "UE locations are selected to ensure that all UEs experience
/// both LOS and NLOS channels"): roughly a third of the UEs go right beside
/// buildings, a third under/near foliage, the rest in the open.
std::vector<geo::Vec3> deploy_mixed_visibility(const terrain::Terrain& t, int count,
                                               std::uint64_t seed, double margin_m = 10.0);

}  // namespace skyran::mobility
