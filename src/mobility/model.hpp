// UE mobility models: static UEs (the testbed, Sec 4.2), scripted waypoint
// routes at pedestrian speed ("scripted to closely mimic human mobility",
// Fig. 12), and the scale-up study's per-epoch random relocation of a
// fraction of UEs (Sec 5.2).
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "geo/path.hpp"
#include "geo/vec.hpp"
#include "terrain/terrain.hpp"

namespace skyran::mobility {

/// Evolves a population of UE positions over time.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Current UE positions (z on the ground).
  virtual const std::vector<geo::Vec3>& positions() const = 0;

  /// Advance simulated time by `dt_s` seconds.
  virtual void advance(double dt_s) = 0;

  std::size_t ue_count() const { return positions().size(); }
};

/// UEs that never move.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<geo::Vec3> positions);
  const std::vector<geo::Vec3>& positions() const override { return positions_; }
  void advance(double) override {}

 private:
  std::vector<geo::Vec3> positions_;
};

/// A subset of UEs walk scripted waypoint routes at pedestrian speed; the
/// rest stay put. Routes loop (ping-pong) when exhausted.
class RouteMobility final : public MobilityModel {
 public:
  struct Route {
    std::size_t ue_index = 0;
    geo::Path waypoints;       ///< ground track to walk
    double speed_mps = 1.4;    ///< typical walking speed
    bool loop = true;          ///< ping-pong forever; false = stop at the end
  };

  /// `t` supplies ground heights; `initial` the starting positions.
  RouteMobility(const terrain::Terrain& t, std::vector<geo::Vec3> initial,
                std::vector<Route> routes);

  const std::vector<geo::Vec3>& positions() const override { return positions_; }
  void advance(double dt_s) override;

  /// Fraction of UEs that have a route.
  double mobile_fraction() const;

 private:
  const terrain::Terrain& terrain_;
  std::vector<geo::Vec3> positions_;
  std::vector<Route> routes_;
  std::vector<double> progress_m_;  ///< arc length walked per route
};

/// Scale-up mobility: each call to `relocate_epoch` teleports a random
/// fraction of UEs to fresh walkable positions (models inter-epoch churn).
class EpochRelocateMobility final : public MobilityModel {
 public:
  EpochRelocateMobility(const terrain::Terrain& t, std::vector<geo::Vec3> initial,
                        double move_fraction, std::uint64_t seed);

  const std::vector<geo::Vec3>& positions() const override { return positions_; }
  void advance(double) override {}  // movement happens at epoch boundaries

  /// Relocate `move_fraction` of the UEs; returns the indices that moved.
  std::vector<std::size_t> relocate_epoch();

 private:
  const terrain::Terrain& terrain_;
  std::vector<geo::Vec3> positions_;
  double move_fraction_;
  std::mt19937_64 rng_;
};

/// Build walking routes for the first `n_mobile` UEs, each a random walkable
/// track of roughly `route_length_m`. `loop` selects ping-pong vs walk-once.
std::vector<RouteMobility::Route> make_random_routes(const terrain::Terrain& t,
                                                     const std::vector<geo::Vec3>& initial,
                                                     std::size_t n_mobile, double route_length_m,
                                                     std::uint64_t seed, bool loop = true);

}  // namespace skyran::mobility
