#include "mobility/deployment.hpp"

#include <random>

#include "geo/contract.hpp"

namespace skyran::mobility {

namespace {

geo::Vec3 draw_walkable(const terrain::Terrain& t, std::mt19937_64& rng, double margin_m) {
  const geo::Rect inner = t.area().inflated(-margin_m);
  expects(inner.width() > 0.0 && inner.height() > 0.0,
          "draw_walkable: margin leaves no usable area");
  std::uniform_real_distribution<double> ux(inner.min.x, inner.max.x);
  std::uniform_real_distribution<double> uy(inner.min.y, inner.max.y);
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const geo::Vec2 p{ux(rng), uy(rng)};
    if (t.clutter_at(p) != terrain::Clutter::kBuilding)
      return geo::Vec3{p, t.ground_height(p) + 1.5};  // handset at chest height
  }
  throw ContractViolation("draw_walkable: could not find walkable ground");
}

}  // namespace

geo::Vec3 random_walkable_position(const terrain::Terrain& t, std::uint64_t seed,
                                   double margin_m) {
  std::mt19937_64 rng(seed);
  return draw_walkable(t, rng, margin_m);
}

namespace {

/// True when any cell within `radius_m` of `p` carries clutter `kind`.
bool near_clutter(const terrain::Terrain& t, geo::Vec2 p, terrain::Clutter kind,
                  double radius_m) {
  const double step = std::max(1.0, t.cell_size());
  for (double dy = -radius_m; dy <= radius_m; dy += step)
    for (double dx = -radius_m; dx <= radius_m; dx += step)
      if (t.clutter_at(t.area().clamp(p + geo::Vec2{dx, dy})) == kind) return true;
  return false;
}

}  // namespace

std::vector<geo::Vec3> deploy_mixed_visibility(const terrain::Terrain& t, int count,
                                               std::uint64_t seed, double margin_m) {
  expects(count >= 1, "deploy_mixed_visibility: count must be >= 1");
  std::mt19937_64 rng(seed);
  std::vector<geo::Vec3> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int flavor = i % 3;  // 0 = beside building, 1 = in foliage, 2 = open
    geo::Vec3 pick;
    bool found = false;
    for (int attempt = 0; attempt < 2048 && !found; ++attempt) {
      const geo::Vec3 cand = draw_walkable(t, rng, margin_m);
      switch (flavor) {
        case 0:
          found = near_clutter(t, cand.xy(), terrain::Clutter::kBuilding, 8.0);
          break;
        case 1:
          found = t.clutter_at(cand.xy()) == terrain::Clutter::kFoliage ||
                  near_clutter(t, cand.xy(), terrain::Clutter::kFoliage, 4.0);
          break;
        default:
          found = !near_clutter(t, cand.xy(), terrain::Clutter::kBuilding, 15.0) &&
                  t.clutter_at(cand.xy()) == terrain::Clutter::kOpen;
          break;
      }
      if (found) pick = cand;
    }
    // Terrains lacking the requested feature fall back to any walkable spot.
    if (!found) pick = draw_walkable(t, rng, margin_m);
    out.push_back(pick);
  }
  return out;
}

std::vector<geo::Vec3> deploy_uniform(const terrain::Terrain& t, int count, std::uint64_t seed,
                                      double margin_m) {
  expects(count >= 1, "deploy_uniform: count must be >= 1");
  std::mt19937_64 rng(seed);
  std::vector<geo::Vec3> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(draw_walkable(t, rng, margin_m));
  return out;
}

std::vector<geo::Vec3> deploy_clustered(const terrain::Terrain& t, int count, int clusters,
                                        double cluster_radius_m, std::uint64_t seed,
                                        double margin_m) {
  expects(count >= 1, "deploy_clustered: count must be >= 1");
  expects(clusters >= 1, "deploy_clustered: clusters must be >= 1");
  expects(cluster_radius_m > 0.0, "deploy_clustered: radius must be positive");
  std::mt19937_64 rng(seed);

  std::vector<geo::Vec3> heads;
  heads.reserve(static_cast<std::size_t>(clusters));
  for (int c = 0; c < clusters; ++c)
    heads.push_back(draw_walkable(t, rng, margin_m + cluster_radius_m));

  std::normal_distribution<double> spread(0.0, cluster_radius_m / 2.0);
  std::uniform_int_distribution<int> pick(0, clusters - 1);
  std::vector<geo::Vec3> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const geo::Vec3& head = heads[static_cast<std::size_t>(pick(rng))];
    for (int attempt = 0;; ++attempt) {
      const geo::Vec2 p = t.area().inflated(-margin_m).clamp(
          head.xy() + geo::Vec2{spread(rng), spread(rng)});
      if (t.clutter_at(p) != terrain::Clutter::kBuilding || attempt >= 64) {
        out.push_back(geo::Vec3{p, t.ground_height(p) + 1.5});
        break;
      }
    }
  }
  return out;
}

}  // namespace skyran::mobility
