// Commuter-flow mobility for day-in-the-life campaigns: a population of UEs
// that lives in residential clusters, walks L-shaped Manhattan paths to
// office clusters across a staggered morning window, and flows back across
// the evening window.
//
// Everything here is a pure function of (plan, ue, hour-of-day): there is no
// internal state, no RNG object, no history. That is deliberate — the
// scenario::Campaign resume contract requires that UE positions at any
// (hour, epoch) can be recomputed after a crash without replaying the hours
// in between, so positions must never depend on an evolving random walk.
// All randomness (cluster centers, per-UE home/office draw, departure
// stagger) is counter-based off plan.seed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/vec.hpp"

namespace skyran::mobility {

/// Parameters of one commuter population. Cluster centers and per-UE
/// assignments are derived from `seed`; the commute windows are wall-clock
/// hours of a 24 h day (fractional hours allowed).
struct CommuterPlan {
  geo::Vec2 area_min{0.0, 0.0};
  geo::Vec2 area_max{1200.0, 1200.0};
  /// Manhattan street grid the walkers snap to: avenues run north-south
  /// every pitch_x, streets east-west every pitch_y (terrain::make_nyc uses
  /// 85 m / 65 m; defaults match).
  double street_pitch_x_m = 85.0;
  double street_pitch_y_m = 65.0;
  int residential_clusters = 3;
  int office_clusters = 2;
  double cluster_radius_m = 90.0;
  /// Morning commute window [start, end): walkers depart staggered across
  /// the first 30% of the window and spend the rest walking.
  double morning_start_h = 7.0;
  double morning_end_h = 9.5;
  /// Evening window, office -> home.
  double evening_start_h = 17.0;
  double evening_end_h = 19.5;
  std::uint64_t seed = 1;
};

/// Snap `p` to the nearest street-grid line (whichever of the nearest avenue
/// or nearest street is closer), clamped into [area_min, area_max].
geo::Vec2 snap_to_street_grid(const CommuterPlan& plan, geo::Vec2 p);

/// UE's home: a counter-random point inside its residential cluster, snapped
/// to the street grid. Pure function of (plan, ue).
geo::Vec2 commuter_home(const CommuterPlan& plan, std::size_t ue);

/// UE's office: same construction over the office clusters.
geo::Vec2 commuter_office(const CommuterPlan& plan, std::size_t ue);

/// Fraction of the home->office walk completed at hour-of-day `hour`
/// (in [0, 24)): 0 before this UE departs in the morning window, 1 from
/// morning arrival until its evening departure, back to 0 after the evening
/// walk. Monotone within each window; per-UE departure stagger decorrelates
/// the flow so the population drains gradually, not as one step.
double commute_progress(const CommuterPlan& plan, std::size_t ue, double hour);

/// Position at hour-of-day `hour` in [0, 24): home / office at rest, and an
/// L-shaped Manhattan walk (east-west leg along the home street first, then
/// north-south along the office avenue) while commuting.
geo::Vec2 commuter_position(const CommuterPlan& plan, std::size_t ue, double hour);

}  // namespace skyran::mobility
