#include "mobility/model.hpp"

#include <cmath>

#include "geo/contract.hpp"
#include "mobility/deployment.hpp"
#include "uav/trajectory.hpp"

namespace skyran::mobility {

StaticMobility::StaticMobility(std::vector<geo::Vec3> positions)
    : positions_(std::move(positions)) {}

RouteMobility::RouteMobility(const terrain::Terrain& t, std::vector<geo::Vec3> initial,
                             std::vector<Route> routes)
    : terrain_(t), positions_(std::move(initial)), routes_(std::move(routes)) {
  for (const Route& r : routes_) {
    expects(r.ue_index < positions_.size(), "RouteMobility: route for unknown UE");
    expects(r.waypoints.size() >= 2, "RouteMobility: route needs at least two waypoints");
    expects(r.speed_mps > 0.0, "RouteMobility: speed must be positive");
  }
  progress_m_.assign(routes_.size(), 0.0);
}

void RouteMobility::advance(double dt_s) {
  expects(dt_s >= 0.0, "RouteMobility::advance: dt must be >= 0");
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    const Route& r = routes_[i];
    const double len = r.waypoints.length();
    if (len <= 0.0) continue;
    progress_m_[i] += r.speed_mps * dt_s;
    double s;
    if (r.loop) {
      // Ping-pong along the route: fold progress into [0, 2*len).
      s = std::fmod(progress_m_[i], 2.0 * len);
      if (s > len) s = 2.0 * len - s;
    } else {
      s = std::min(progress_m_[i], len);  // walk there once and stay
    }
    const geo::Vec2 p = r.waypoints.point_at(s);
    positions_[r.ue_index] = geo::Vec3{p, terrain_.ground_height(p) + 1.5};
  }
}

double RouteMobility::mobile_fraction() const {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(routes_.size()) / static_cast<double>(positions_.size());
}

EpochRelocateMobility::EpochRelocateMobility(const terrain::Terrain& t,
                                             std::vector<geo::Vec3> initial,
                                             double move_fraction, std::uint64_t seed)
    : terrain_(t), positions_(std::move(initial)), move_fraction_(move_fraction), rng_(seed) {
  expects(move_fraction >= 0.0 && move_fraction <= 1.0,
          "EpochRelocateMobility: fraction must be in [0,1]");
}

std::vector<std::size_t> EpochRelocateMobility::relocate_epoch() {
  const auto n_move = static_cast<std::size_t>(
      std::round(move_fraction_ * static_cast<double>(positions_.size())));
  // Choose which UEs move by partial Fisher-Yates.
  std::vector<std::size_t> order(positions_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = 0; i < n_move && i + 1 < order.size(); ++i) {
    std::uniform_int_distribution<std::size_t> pick(i, order.size() - 1);
    std::swap(order[i], order[pick(rng_)]);
  }
  std::vector<std::size_t> moved(order.begin(),
                                 order.begin() + static_cast<std::ptrdiff_t>(n_move));
  for (std::size_t idx : moved)
    positions_[idx] = random_walkable_position(terrain_, rng_());
  return moved;
}

std::vector<RouteMobility::Route> make_random_routes(const terrain::Terrain& t,
                                                     const std::vector<geo::Vec3>& initial,
                                                     std::size_t n_mobile, double route_length_m,
                                                     std::uint64_t seed, bool loop) {
  expects(n_mobile <= initial.size(), "make_random_routes: more routes than UEs");
  expects(route_length_m > 0.0, "make_random_routes: route length must be positive");
  std::vector<RouteMobility::Route> routes;
  routes.reserve(n_mobile);
  for (std::size_t i = 0; i < n_mobile; ++i) {
    RouteMobility::Route r;
    r.ue_index = i;
    r.waypoints = uav::random_walk(t.area().inflated(-10.0),
                                   t.area().inflated(-10.0).clamp(initial[i].xy()),
                                   route_length_m, 25.0, seed + i * 131ULL);
    r.loop = loop;
    routes.push_back(std::move(r));
  }
  return routes;
}

}  // namespace skyran::mobility
