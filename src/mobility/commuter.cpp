#include "mobility/commuter.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::mobility {

namespace {

// splitmix64 finalizer (same mixer as the traffic plane's counter RNG).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from a (seed, stream, ue) counter — no state, no order
// dependence.
double u01(std::uint64_t seed, std::uint64_t stream, std::uint64_t ue) {
  const std::uint64_t h = mix64(seed ^ mix64(stream ^ mix64(ue)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kStreamHomeCluster = 0x101;
constexpr std::uint64_t kStreamOfficeCluster = 0x102;
constexpr std::uint64_t kStreamHomeJitterR = 0x103;
constexpr std::uint64_t kStreamHomeJitterA = 0x104;
constexpr std::uint64_t kStreamOfficeJitterR = 0x105;
constexpr std::uint64_t kStreamOfficeJitterA = 0x106;
constexpr std::uint64_t kStreamDepart = 0x107;

geo::Vec2 clamp_to_area(const CommuterPlan& plan, geo::Vec2 p) {
  return {std::clamp(p.x, plan.area_min.x, plan.area_max.x),
          std::clamp(p.y, plan.area_min.y, plan.area_max.y)};
}

// Cluster center c of `count` clusters for the given stream: counter-random
// inside the middle 80% of the area so cluster disks stay mostly inside.
geo::Vec2 cluster_center(const CommuterPlan& plan, std::uint64_t stream, int c) {
  const geo::Vec2 span = plan.area_max - plan.area_min;
  const double fx = 0.1 + 0.8 * u01(plan.seed, stream, 2 * static_cast<std::uint64_t>(c));
  const double fy = 0.1 + 0.8 * u01(plan.seed, stream, 2 * static_cast<std::uint64_t>(c) + 1);
  return {plan.area_min.x + fx * span.x, plan.area_min.y + fy * span.y};
}

geo::Vec2 cluster_point(const CommuterPlan& plan, std::size_t ue, int clusters,
                        std::uint64_t cluster_stream, std::uint64_t r_stream,
                        std::uint64_t a_stream) {
  const int c = static_cast<int>(ue % static_cast<std::size_t>(std::max(clusters, 1)));
  const geo::Vec2 center = cluster_center(plan, cluster_stream, c);
  // sqrt(u) radius => uniform density over the cluster disk.
  const double r = plan.cluster_radius_m * std::sqrt(u01(plan.seed, r_stream, ue));
  const double a = 2.0 * M_PI * u01(plan.seed, a_stream, ue);
  const geo::Vec2 p{center.x + r * std::cos(a), center.y + r * std::sin(a)};
  return snap_to_street_grid(plan, p);
}

double snap_axis(double v, double lo, double pitch) {
  if (pitch <= 0.0) return v;
  return lo + std::round((v - lo) / pitch) * pitch;
}

}  // namespace

geo::Vec2 snap_to_street_grid(const CommuterPlan& plan, geo::Vec2 p) {
  p = clamp_to_area(plan, p);
  const double ax = snap_axis(p.x, plan.area_min.x, plan.street_pitch_x_m);
  const double sy = snap_axis(p.y, plan.area_min.y, plan.street_pitch_y_m);
  // Snap to whichever grid line is closer: the nearest avenue (fix x) or the
  // nearest street (fix y) — walkers stand on a road, not inside a block.
  if (std::abs(ax - p.x) <= std::abs(sy - p.y)) {
    return clamp_to_area(plan, {ax, p.y});
  }
  return clamp_to_area(plan, {p.x, sy});
}

geo::Vec2 commuter_home(const CommuterPlan& plan, std::size_t ue) {
  return cluster_point(plan, ue, plan.residential_clusters, kStreamHomeCluster,
                       kStreamHomeJitterR, kStreamHomeJitterA);
}

geo::Vec2 commuter_office(const CommuterPlan& plan, std::size_t ue) {
  return cluster_point(plan, ue, plan.office_clusters, kStreamOfficeCluster,
                       kStreamOfficeJitterR, kStreamOfficeJitterA);
}

double commute_progress(const CommuterPlan& plan, std::size_t ue, double hour) {
  expects(hour >= 0.0 && hour < 24.0, "commute_progress: hour must be in [0,24)");
  expects(plan.morning_start_h < plan.morning_end_h &&
                   plan.morning_end_h <= plan.evening_start_h &&
                   plan.evening_start_h < plan.evening_end_h,
               "commute_progress: windows must be ordered morning < evening");
  // Departure staggered over the first 30% of each window; the remaining 70%
  // is this UE's walk duration, so the latest departure still arrives.
  const double stagger = 0.3 * u01(plan.seed, kStreamDepart, ue);
  const auto walk = [stagger](double t, double start, double end) {
    const double w = end - start;
    const double depart = start + stagger * w;
    return std::clamp((t - depart) / (0.7 * w), 0.0, 1.0);
  };
  if (hour < plan.morning_start_h) return 0.0;
  if (hour < plan.morning_end_h) return walk(hour, plan.morning_start_h, plan.morning_end_h);
  if (hour < plan.evening_start_h) return 1.0;
  if (hour < plan.evening_end_h) {
    return 1.0 - walk(hour, plan.evening_start_h, plan.evening_end_h);
  }
  return 0.0;
}

geo::Vec2 commuter_position(const CommuterPlan& plan, std::size_t ue, double hour) {
  const geo::Vec2 home = commuter_home(plan, ue);
  const geo::Vec2 office = commuter_office(plan, ue);
  const double s = commute_progress(plan, ue, hour);
  if (s <= 0.0) return home;
  if (s >= 1.0) return office;
  // L-shaped Manhattan path: east-west along the home street to the office's
  // avenue, then north-south. Progress is measured in walked meters so speed
  // is constant along the whole L.
  const double leg_x = std::abs(office.x - home.x);
  const double leg_y = std::abs(office.y - home.y);
  const double total = leg_x + leg_y;
  if (total <= 0.0) return office;
  const double walked = s * total;
  if (walked <= leg_x) {
    const double dir = office.x >= home.x ? 1.0 : -1.0;
    return {home.x + dir * walked, home.y};
  }
  const double dir = office.y >= home.y ? 1.0 : -1.0;
  return {office.x, home.y + dir * (walked - leg_x)};
}

}  // namespace skyran::mobility
