// Umbrella header: the SkyRAN public API surface. Downstream users can
// include this one header and link against the `skyran_all` CMake target.
#pragma once

#include "core/config.hpp"        // SkyRanConfig, LocalizationMode
#include "core/multi_uav.hpp"     // MultiSkyRan (fleet operation)
#include "fleet/fleet.hpp"        // multi-cell SINR/handover/steering fleet
#include "core/skyran.hpp"        // SkyRan: the epoch state machine
#include "core/timeline.hpp"      // continuous-time mission runner
#include "localization/localizer.hpp"  // standalone UE localization
#include "lte/backhaul.hpp"       // backhaul link models
#include "mobility/deployment.hpp"     // UE deployment generators
#include "mobility/model.hpp"     // mobility models
#include "rem/kriging.hpp"        // ordinary-kriging interpolation
#include "rem/layered.hpp"        // 3-D (layered) REMs
#include "rem/placement.hpp"      // placement objectives & altitude search
#include "rem/rem.hpp"            // radio environment maps
#include "rem/store.hpp"          // REM store with positional reuse
#include "sim/baselines.hpp"      // Uniform / Centroid / Random schemes
#include "sim/ground_truth.hpp"   // evaluation against perfect REMs
#include "sim/service.hpp"        // TTI-level service simulation
#include "sim/world.hpp"          // the simulated physical world
#include "terrain/io.hpp"         // terrain serialization (incl. ESRI .asc)
#include "terrain/lidar.hpp"      // synthetic LiDAR pipeline
#include "terrain/synth.hpp"      // procedural terrains
