// scenario::Campaign — a day-in-the-life campaign driver composing the
// existing layers over a simulated 24 h horizon (ROADMAP item 5):
//
//   traffic   the DiurnalCurve modulates every UE's base rate hour by hour;
//             FlashCrowd scripts (stadium fill/drain, outage evacuation)
//             boost participants' demand while engaged
//   mobility  a commuter fraction of the population follows
//             mobility::commuter L-paths between residential and office
//             clusters; the rest sit at counter-random street corners;
//             crowds override positions while engaged
//   fleet     one fleet::Fleet runs epochs_per_hour epochs per hour with
//             inter-cell SINR, A3 handover and CIO steering
//   weather   WeatherFront rows compile into kSrsSnrSag windows on the
//             fleet's FaultPlan (fleet time base: t = epoch - 1)
//   logistics uav::Battery per cell; a cell tripping its reserve threshold
//             ferries to the depot for swap_epochs epochs (its RSRP
//             collapses, A3 drains its UEs to neighbors), returns with a
//             fresh pack
//
// Determinism contract: every hour input (specs, positions, weather) is a
// pure function of (config, hour, epoch) — counter-based streams, no wall
// clock — so the same (seed, config) campaign produces a byte-identical
// CampaignReport serially and on any worker count, and a campaign restored
// from a checkpoint at any hour boundary finishes bit-identically to the
// uninterrupted run (the only sequential state is battery/swap logistics
// plus the fleet, and both are persisted). Enforced by tests/test_scenario
// and the kill-at-hour lane of tests/test_crash_recovery.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "fleet/fleet.hpp"
#include "geo/vec.hpp"
#include "mobility/commuter.hpp"
#include "rf/channel.hpp"
#include "scenario/shapes.hpp"
#include "uav/battery.hpp"

namespace skyran::scenario {

/// Valid envelope, wrong campaign: restore() under a config whose
/// resume-relevant fingerprint differs from the saved one.
struct CampaignStateMismatch : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One weather front: a wide-area SRS SNR sag over [start_h, end_h). Fronts
/// compile into the fleet FaultPlan at construction; they are config, not
/// state.
struct WeatherFront {
  double start_h = 0.0;
  double end_h = 0.0;
  double snr_sag_db = 6.0;
};

/// Battery swap logistics. A cell whose pack falls below reserve_fraction
/// ferries to `position` (off the service area), sits out swap_epochs
/// epochs, and returns to station with a full pack.
struct DepotConfig {
  uav::BatteryParams battery{};
  double reserve_fraction = 0.25;
  int swap_epochs = 2;
  /// Ferry energy charged per swap round trip (depot side, not the pack).
  double swap_energy_wh = 30.0;
  geo::Vec3 position{-150.0, -150.0, 20.0};
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  int hours = 24;
  int epochs_per_hour = 6;
  std::size_t n_ues = 1000;
  /// UAV cells on a cells_per_side x cells_per_side grid over the area.
  int cells_per_side = 3;
  double area_m = 1200.0;
  double cell_altitude_m = 60.0;
  double carrier_hz = 2.6e9;
  /// Per-UE mean demand at the diurnal peak; individual UEs draw a base
  /// rate in [0.5, 1.5) of this.
  double base_rate_bps = 4e5;
  /// A (UE, epoch) sample counts as served when attached with SINR at or
  /// above this.
  double min_service_sinr_db = -3.0;
  /// Fraction of UEs that commute; the rest are static.
  double commuter_fraction = 0.6;
  /// Template for the fleet; seed/threads/faults and the plane seed are
  /// filled in by the campaign (weather owns the appended fault windows).
  fleet::FleetConfig fleet{};
  /// Commute windows and cluster tuning; area and seed are overridden from
  /// the campaign's own.
  mobility::CommuterPlan commute{};
  DiurnalCurve diurnal{};
  std::vector<WeatherFront> weather;
  std::vector<FlashCrowd> crowds;
  DepotConfig depot{};
  /// Worker lanes (0 = inherit process-wide resolution). Resume-neutral:
  /// excluded from the config fingerprint.
  int threads = 0;
};

/// Per-hour outcome row. Every field is a deterministic function of
/// (config, hour) — the unit of the campaign digest.
struct HourReport {
  int hour = 0;
  double diurnal_level = 0.0;
  double offered_bits = 0.0;
  double served_bits = 0.0;
  /// Fraction of (UE, epoch) samples attached with SINR >= threshold.
  double availability = 0.0;
  double mean_sinr_db = 0.0;
  /// Per-UE delivered throughput percentiles over the hour (bps).
  double p5_tput_bps = 0.0;
  double p50_tput_bps = 0.0;
  double p95_tput_bps = 0.0;
  std::uint64_t handovers = 0;
  std::uint64_t pingpongs = 0;
  std::uint64_t steering_steps = 0;
  std::uint64_t swaps_started = 0;
  std::uint64_t depot_epochs = 0;  ///< cell-epochs spent off station
  double energy_wh = 0.0;          ///< hover + ferry energy this hour
};

/// Whole-campaign rollup plus the per-hour detail rows.
struct CampaignReport {
  std::uint64_t seed = 0;
  int hours = 0;
  int epochs = 0;
  std::size_t n_ues = 0;
  std::size_t n_cells = 0;
  double offered_bits = 0.0;
  double served_bits = 0.0;
  double availability = 0.0;      ///< campaign-wide served-sample fraction
  double min_hour_availability = 0.0;
  double energy_wh = 0.0;
  /// Wh per delivered Gbit (0 when nothing was served).
  double energy_wh_per_gbit = 0.0;
  std::uint64_t handovers = 0;
  std::uint64_t pingpongs = 0;
  std::uint64_t steering_steps = 0;
  std::uint64_t swaps = 0;
  std::uint64_t depot_epochs = 0;
  std::vector<HourReport> by_hour;
};

/// Fingerprint of the resume-relevant CampaignConfig fields (everything
/// except threads). restore() under a different fingerprint throws
/// CampaignStateMismatch.
std::uint64_t config_digest(const CampaignConfig& config);

/// Order-sensitive FNV-1a over every field of one hour row (double bit
/// patterns, exact integers).
std::uint64_t hour_digest(const HourReport& hour);

/// Digest over the whole report including every hour row — the golden-replay
/// currency: two campaigns digest equal iff their reports are bit-identical.
std::uint64_t campaign_digest(const CampaignReport& report);

class Campaign {
 public:
  explicit Campaign(CampaignConfig config);

  /// Run the next hour: derive specs and positions for each epoch, advance
  /// battery/swap logistics, run epochs_per_hour fleet epochs, append the
  /// HourReport. Ends at the sim::crash_point("hour.tick") kill point.
  /// Throws ContractViolation once all config.hours have run.
  HourReport run_hour();

  /// Run all remaining hours (no checkpointing) and return the report.
  CampaignReport report() const;
  CampaignReport run();

  int hours_run() const { return hour_; }
  bool done() const { return hour_ >= config_.hours; }
  const CampaignConfig& config() const { return config_; }
  const fleet::Fleet& fleet() const { return fleet_; }
  std::size_t cell_count() const { return fleet_.cell_count(); }
  bool cell_at_depot(std::size_t cell) const { return swap_left_[cell] > 0; }
  double cell_battery_fraction(std::size_t cell) const {
    return battery_[cell].remaining_fraction();
  }

  /// FNV-1a over exactly the state save() persists (including the nested
  /// fleet hash): two campaigns resume bit-identically iff hashes match.
  std::uint64_t state_hash() const;

  /// One CRC-guarded geo::binio envelope (magic "SKYD"): config
  /// fingerprint, hour counter, logistics state, per-hour rows, and the
  /// nested fleet envelope.
  void save(std::ostream& os) const;

  /// Restore into a campaign constructed with an identical config
  /// (fingerprint-checked). Strong exception safety: on any throw —
  /// geo::binio errors, CampaignStateMismatch, fleet errors — *this is
  /// unchanged, so a checkpoint walker can fall back to an older
  /// generation.
  void restore(std::istream& is);

 private:
  fleet::Fleet make_fleet() const;
  geo::Vec3 ue_position_at(std::size_t ue, double hour_of_day) const;
  void step_logistics(double epoch_s, HourReport& hr);

  CampaignConfig config_;
  rf::FsplChannel channel_;
  fleet::Fleet fleet_;

  // Static per-UE derivations (pure functions of config; rebuilt, not
  // persisted).
  std::vector<lte::TrafficSpec> base_spec_;
  std::vector<double> base_rate_bps_;
  std::vector<std::uint8_t> commuter_;
  std::vector<geo::Vec2> static_pos_;
  std::vector<geo::Vec3> station_;  ///< per-cell hover station

  // Sequential campaign state (persisted).
  int hour_ = 0;
  std::vector<uav::Battery> battery_;
  std::vector<std::int32_t> swap_left_;  ///< swap epochs remaining; 0 = on station
  double energy_wh_ = 0.0;
  std::uint64_t swaps_ = 0;
  std::uint64_t depot_epochs_ = 0;
  std::uint64_t served_samples_ = 0;  ///< (UE, epoch) samples above threshold
  std::uint64_t total_samples_ = 0;
  std::vector<HourReport> by_hour_;

  // Hour scratch (excluded from hash/save).
  std::vector<double> hour_ue_bits_;
};

/// Generation-managed campaign checkpointing on core::GenerationStore
/// ("camp-<hour>.skyd" files, crash-safe write discipline). restore_latest
/// walks generations newest-first and falls back past corrupt or mismatched
/// files, recording each rejection in last_errors().
class CampaignCheckpointer {
 public:
  explicit CampaignCheckpointer(std::filesystem::path dir, int keep = 2);

  /// Persist `campaign` as generation hours_run(). Returns the final path.
  std::filesystem::path save(const Campaign& campaign);

  /// Restore the newest verifiable generation into `campaign`; returns the
  /// hour restored to, or nullopt when no generation verifies (campaign is
  /// left untouched thanks to Campaign::restore's strong guarantee).
  std::optional<int> restore_latest(Campaign& campaign);

  std::vector<std::filesystem::path> generations() const { return store_.generations(); }
  const std::vector<std::string>& last_errors() const { return last_errors_; }
  const std::filesystem::path& dir() const { return store_.dir(); }

 private:
  core::GenerationStore store_;
  std::vector<std::string> last_errors_;
};

/// A ready-made 24 h reference day: two weather fronts (morning drizzle,
/// evening storm), an evening stadium event in the north-east, an afternoon
/// evacuation near the center — the configuration used by bench/campaign_day
/// and examples/campaign_mini (which shrinks hours/population).
CampaignConfig example_day_config(std::uint64_t seed, std::size_t n_ues, int cells_per_side);

}  // namespace skyran::scenario
