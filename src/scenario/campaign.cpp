#include "scenario/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "geo/binio.hpp"
#include "geo/contract.hpp"
#include "geo/stats.hpp"
#include "lte/sampling.hpp"
#include "obs/obs.hpp"
#include "sim/crash_point.hpp"

namespace skyran::scenario {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'D'};
constexpr std::uint32_t kVersion = 1;

// splitmix64 finalizer (same mixer as the traffic plane's counter RNG).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t seed, std::uint64_t stream, std::uint64_t idx) {
  const std::uint64_t h = mix64(seed ^ mix64(stream ^ mix64(idx)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kStreamCommuter = 0x301;
constexpr std::uint64_t kStreamStaticX = 0x302;
constexpr std::uint64_t kStreamStaticY = 0x303;
constexpr std::uint64_t kStreamModel = 0x304;
constexpr std::uint64_t kStreamRate = 0x305;
constexpr std::uint64_t kStreamBattery = 0x306;

double wrap24(double hour) { return hour - 24.0 * std::floor(hour / 24.0); }

// FNV-1a, same byte discipline as fleet::Fleet::state_hash.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void hash_pod(std::uint64_t& h, const T& v) {
  hash_bytes(h, &v, sizeof(v));
}

void hash_hour(std::uint64_t& h, const HourReport& hr) {
  hash_pod(h, hr.hour);
  hash_pod(h, hr.diurnal_level);
  hash_pod(h, hr.offered_bits);
  hash_pod(h, hr.served_bits);
  hash_pod(h, hr.availability);
  hash_pod(h, hr.mean_sinr_db);
  hash_pod(h, hr.p5_tput_bps);
  hash_pod(h, hr.p50_tput_bps);
  hash_pod(h, hr.p95_tput_bps);
  hash_pod(h, hr.handovers);
  hash_pod(h, hr.pingpongs);
  hash_pod(h, hr.steering_steps);
  hash_pod(h, hr.swaps_started);
  hash_pod(h, hr.depot_epochs);
  hash_pod(h, hr.energy_wh);
}

void write_hour(geo::BinWriter& w, const HourReport& hr) {
  w.pod(hr.hour);
  w.pod(hr.diurnal_level);
  w.pod(hr.offered_bits);
  w.pod(hr.served_bits);
  w.pod(hr.availability);
  w.pod(hr.mean_sinr_db);
  w.pod(hr.p5_tput_bps);
  w.pod(hr.p50_tput_bps);
  w.pod(hr.p95_tput_bps);
  w.pod(hr.handovers);
  w.pod(hr.pingpongs);
  w.pod(hr.steering_steps);
  w.pod(hr.swaps_started);
  w.pod(hr.depot_epochs);
  w.pod(hr.energy_wh);
}

HourReport read_hour(geo::BinReader& r) {
  HourReport hr;
  hr.hour = r.pod<int>();
  hr.diurnal_level = r.pod<double>();
  hr.offered_bits = r.pod<double>();
  hr.served_bits = r.pod<double>();
  hr.availability = r.pod<double>();
  hr.mean_sinr_db = r.pod<double>();
  hr.p5_tput_bps = r.pod<double>();
  hr.p50_tput_bps = r.pod<double>();
  hr.p95_tput_bps = r.pod<double>();
  hr.handovers = r.pod<std::uint64_t>();
  hr.pingpongs = r.pod<std::uint64_t>();
  hr.steering_steps = r.pod<std::uint64_t>();
  hr.swaps_started = r.pod<std::uint64_t>();
  hr.depot_epochs = r.pod<std::uint64_t>();
  hr.energy_wh = r.pod<double>();
  return hr;
}

}  // namespace

std::uint64_t config_digest(const CampaignConfig& c) {
  std::uint64_t h = kFnvOffset;
  hash_pod(h, c.seed);
  hash_pod(h, c.hours);
  hash_pod(h, c.epochs_per_hour);
  hash_pod(h, static_cast<std::uint64_t>(c.n_ues));
  hash_pod(h, c.cells_per_side);
  hash_pod(h, c.area_m);
  hash_pod(h, c.cell_altitude_m);
  hash_pod(h, c.carrier_hz);
  hash_pod(h, c.base_rate_bps);
  hash_pod(h, c.min_service_sinr_db);
  hash_pod(h, c.commuter_fraction);
  // Fleet template (resume-relevant radio/mobility knobs).
  hash_pod(h, c.fleet.cell_tx_power_dbm);
  hash_pod(h, c.fleet.cell_antenna_gain_dbi);
  hash_pod(h, c.fleet.ue_antenna_gain_dbi);
  hash_pod(h, c.fleet.bandwidth_hz);
  hash_pod(h, c.fleet.ue_noise_figure_db);
  hash_pod(h, c.fleet.ttis_per_epoch);
  hash_pod(h, c.fleet.a3.offset_db);
  hash_pod(h, c.fleet.a3.hysteresis_db);
  hash_pod(h, c.fleet.a3.time_to_trigger_epochs);
  hash_pod(h, c.fleet.a3.pingpong_window_epochs);
  hash_pod(h, c.fleet.steering.enabled);
  hash_pod(h, c.fleet.steering.period_epochs);
  hash_pod(h, c.fleet.steering.step_db);
  hash_pod(h, c.fleet.steering.max_cio_db);
  hash_pod(h, c.fleet.steering.util_deadband);
  // Commute windows/clusters (area + seed are campaign-resolved).
  hash_pod(h, c.commute.street_pitch_x_m);
  hash_pod(h, c.commute.street_pitch_y_m);
  hash_pod(h, c.commute.residential_clusters);
  hash_pod(h, c.commute.office_clusters);
  hash_pod(h, c.commute.cluster_radius_m);
  hash_pod(h, c.commute.morning_start_h);
  hash_pod(h, c.commute.morning_end_h);
  hash_pod(h, c.commute.evening_start_h);
  hash_pod(h, c.commute.evening_end_h);
  hash_pod(h, c.diurnal.night_floor);
  hash_pod(h, c.diurnal.morning_peak_h);
  hash_pod(h, c.diurnal.morning_level);
  hash_pod(h, c.diurnal.morning_width_h);
  hash_pod(h, c.diurnal.evening_peak_h);
  hash_pod(h, c.diurnal.evening_level);
  hash_pod(h, c.diurnal.evening_width_h);
  hash_pod(h, static_cast<std::uint64_t>(c.weather.size()));
  for (const WeatherFront& w : c.weather) {
    hash_pod(h, w.start_h);
    hash_pod(h, w.end_h);
    hash_pod(h, w.snr_sag_db);
  }
  hash_pod(h, static_cast<std::uint64_t>(c.crowds.size()));
  for (const FlashCrowd& fc : c.crowds) {
    hash_pod(h, fc.kind);
    hash_pod(h, fc.start_h);
    hash_pod(h, fc.fill_h);
    hash_pod(h, fc.hold_h);
    hash_pod(h, fc.drain_h);
    hash_pod(h, fc.center.x);
    hash_pod(h, fc.center.y);
    hash_pod(h, fc.radius_m);
    hash_pod(h, fc.ue_fraction);
    hash_pod(h, fc.rate_boost);
  }
  hash_pod(h, c.depot.battery.capacity_wh);
  hash_pod(h, c.depot.battery.hover_power_w);
  hash_pod(h, c.depot.battery.forward_power_w_per_mps);
  hash_pod(h, c.depot.reserve_fraction);
  hash_pod(h, c.depot.swap_epochs);
  hash_pod(h, c.depot.swap_energy_wh);
  hash_pod(h, c.depot.position.x);
  hash_pod(h, c.depot.position.y);
  hash_pod(h, c.depot.position.z);
  // threads deliberately excluded: worker count is resume-neutral.
  return h;
}

std::uint64_t hour_digest(const HourReport& hour) {
  std::uint64_t h = kFnvOffset;
  hash_hour(h, hour);
  return h;
}

std::uint64_t campaign_digest(const CampaignReport& report) {
  std::uint64_t h = kFnvOffset;
  hash_pod(h, report.seed);
  hash_pod(h, report.hours);
  hash_pod(h, report.epochs);
  hash_pod(h, static_cast<std::uint64_t>(report.n_ues));
  hash_pod(h, static_cast<std::uint64_t>(report.n_cells));
  hash_pod(h, report.offered_bits);
  hash_pod(h, report.served_bits);
  hash_pod(h, report.availability);
  hash_pod(h, report.min_hour_availability);
  hash_pod(h, report.energy_wh);
  hash_pod(h, report.energy_wh_per_gbit);
  hash_pod(h, report.handovers);
  hash_pod(h, report.pingpongs);
  hash_pod(h, report.steering_steps);
  hash_pod(h, report.swaps);
  hash_pod(h, report.depot_epochs);
  for (const HourReport& hr : report.by_hour) hash_hour(h, hr);
  return h;
}

Campaign::Campaign(CampaignConfig config)
    : config_(std::move(config)), channel_(config_.carrier_hz), fleet_(make_fleet()) {
  expects(config_.hours > 0, "Campaign: hours must be positive");
  expects(config_.epochs_per_hour > 0, "Campaign: epochs_per_hour must be positive");
  expects(config_.n_ues > 0, "Campaign: need at least one UE");
  expects(config_.cells_per_side > 0, "Campaign: need at least one cell");
  expects(config_.depot.swap_epochs > 0, "Campaign: swap must take at least one epoch");

  // Resolve the commute plan onto the campaign's own area and seed; from
  // here on config_ is frozen (config_digest hashes the resolved form).
  config_.commute.area_min = {0.0, 0.0};
  config_.commute.area_max = {config_.area_m, config_.area_m};
  config_.commute.seed = config_.seed;

  // Cell stations: a cells_per_side x cells_per_side grid of hover points.
  const int side = config_.cells_per_side;
  const double pitch = config_.area_m / side;
  for (int gy = 0; gy < side; ++gy) {
    for (int gx = 0; gx < side; ++gx) {
      station_.push_back({(gx + 0.5) * pitch, (gy + 0.5) * pitch, config_.cell_altitude_m});
    }
  }
  // Staggered initial packs — comfortably above the reserve, spread out so
  // the fleet's swap trips don't all fire in the same epoch.
  battery_.reserve(station_.size());
  swap_left_.assign(station_.size(), 0);
  for (std::size_t c = 0; c < station_.size(); ++c) {
    uav::Battery b(config_.depot.battery);
    const double reserve = config_.depot.reserve_fraction;
    const double frac = std::min(
        1.0, reserve + 0.1 + (0.9 - reserve) * u01(config_.seed, kStreamBattery, c));
    b.restore_remaining_wh(frac * b.capacity_wh());
    battery_.push_back(b);
  }

  // Per-UE base derivations: commuter membership, static corner, traffic
  // model mix (55% CBR / 25% bursty / 20% video) and a heterogeneous base
  // rate in [0.5, 1.5) of the configured mean.
  base_spec_.resize(config_.n_ues);
  base_rate_bps_.resize(config_.n_ues);
  commuter_.resize(config_.n_ues);
  static_pos_.resize(config_.n_ues);
  for (std::size_t i = 0; i < config_.n_ues; ++i) {
    commuter_[i] = u01(config_.seed, kStreamCommuter, i) < config_.commuter_fraction ? 1 : 0;
    static_pos_[i] = mobility::snap_to_street_grid(
        config_.commute, {u01(config_.seed, kStreamStaticX, i) * config_.area_m,
                          u01(config_.seed, kStreamStaticY, i) * config_.area_m});
    lte::TrafficSpec spec;
    const double m = u01(config_.seed, kStreamModel, i);
    spec.model = m < 0.55   ? lte::TrafficModel::kCbr
                 : m < 0.80 ? lte::TrafficModel::kBurstyOnOff
                            : lte::TrafficModel::kVideo;
    base_rate_bps_[i] = config_.base_rate_bps * (0.5 + u01(config_.seed, kStreamRate, i));
    spec.rate_bps = base_rate_bps_[i];
    base_spec_[i] = spec;
  }

  for (const geo::Vec3& s : station_) fleet_.add_cell(s);
  for (std::size_t i = 0; i < config_.n_ues; ++i) {
    fleet_.add_ue(ue_position_at(i, 0.0), base_spec_[i]);
  }
  hour_ue_bits_.assign(config_.n_ues, 0.0);
}

fleet::Fleet Campaign::make_fleet() const {
  fleet::FleetConfig fc = config_.fleet;
  fc.seed = config_.seed;
  fc.threads = config_.threads;
  // Weather fronts become wide-area SRS SNR sags on the fleet fault plan.
  // Fleet fault time base is t = epoch - 1, so the campaign's global epoch
  // index (hour * epochs_per_hour + e, 0-based) is the window coordinate.
  for (const WeatherFront& w : config_.weather) {
    sim::FaultWindow win;
    win.kind = sim::FaultKind::kSrsSnrSag;
    win.start_s = w.start_h * config_.epochs_per_hour;
    win.end_s = w.end_h * config_.epochs_per_hour;
    win.magnitude = w.snr_sag_db;
    fc.faults.add(win);
  }
  return fleet::Fleet(fc, channel_);
}

geo::Vec3 Campaign::ue_position_at(std::size_t ue, double hour_of_day) const {
  const double hod = wrap24(hour_of_day);
  geo::Vec2 p = commuter_[ue] != 0 ? mobility::commuter_position(config_.commute, ue, hod)
                                   : static_pos_[ue];
  for (std::size_t k = 0; k < config_.crowds.size(); ++k) {
    const FlashCrowd& crowd = config_.crowds[k];
    const double e = crowd_engagement(crowd, hod);
    if (e <= 0.0) continue;
    if (!crowd_applies(crowd, ue, p, config_.seed, k + 1)) continue;
    p = crowd_position(crowd, p, ue, e, config_.seed, k + 1);
  }
  return {p.x, p.y, 1.5};
}

void Campaign::step_logistics(double epoch_s, HourReport& hr) {
  for (std::size_t c = 0; c < battery_.size(); ++c) {
    if (swap_left_[c] > 0) {
      // At the depot: no service, no hover draw; return with a fresh pack.
      --swap_left_[c];
      ++hr.depot_epochs;
      ++depot_epochs_;
      if (swap_left_[c] == 0) {
        battery_[c].restore_remaining_wh(battery_[c].capacity_wh());
        fleet_.set_cell_position(c, station_[c]);
      }
      continue;
    }
    const double before = battery_[c].remaining_wh();
    battery_[c].drain(epoch_s, 0.0);
    const double spent = before - battery_[c].remaining_wh();
    hr.energy_wh += spent;
    energy_wh_ += spent;
    if (battery_[c].remaining_fraction() < config_.depot.reserve_fraction) {
      // Reserve tripped: ferry to the depot. The cell's RSRP collapses from
      // there, so the next A3 evaluations drain its UEs to the neighbors.
      swap_left_[c] = config_.depot.swap_epochs;
      ++hr.swaps_started;
      ++swaps_;
      hr.energy_wh += config_.depot.swap_energy_wh;
      energy_wh_ += config_.depot.swap_energy_wh;
      fleet_.set_cell_position(c, config_.depot.position);
    }
  }
}

HourReport Campaign::run_hour() {
  expects(hour_ < config_.hours, "Campaign::run_hour: all configured hours already run");
  SKYRAN_TRACE_SPAN("campaign.hour");
  HourReport hr;
  hr.hour = hour_;
  const double mid = wrap24(hour_ + 0.5);
  hr.diurnal_level = diurnal_level(config_.diurnal, mid);

  // Hour inputs: every UE's spec is its base model at the diurnal level,
  // boosted by any crowd it participates in at mid-hour. Pure function of
  // (config, hour) — a restored campaign re-derives identical specs.
  for (std::size_t i = 0; i < config_.n_ues; ++i) {
    const geo::Vec2 base = commuter_[i] != 0
                               ? mobility::commuter_position(config_.commute, i, mid)
                               : static_pos_[i];
    double m = hr.diurnal_level;
    for (std::size_t k = 0; k < config_.crowds.size(); ++k) {
      const FlashCrowd& crowd = config_.crowds[k];
      const double e = crowd_engagement(crowd, mid);
      if (e <= 0.0 || !crowd_applies(crowd, i, base, config_.seed, k + 1)) continue;
      m *= crowd_rate_multiplier(crowd, e);
    }
    lte::TrafficSpec spec = base_spec_[i];
    spec.rate_bps = base_rate_bps_[i] * m;
    fleet_.set_ue_traffic(i, spec);
  }

  hour_ue_bits_.assign(config_.n_ues, 0.0);
  const double epoch_s = 3600.0 / config_.epochs_per_hour;
  double sinr_sum = 0.0;
  std::uint64_t hr_served = 0;
  for (int e = 0; e < config_.epochs_per_hour; ++e) {
    const double t = hour_ + (e + 0.5) / config_.epochs_per_hour;
    step_logistics(epoch_s, hr);
    for (std::size_t i = 0; i < config_.n_ues; ++i) {
      fleet_.set_ue_position(i, ue_position_at(i, t));
    }
    const fleet::FleetEpochReport er = fleet_.run_epoch();
    hr.offered_bits += er.offered_bits;
    hr.served_bits += er.served_bits;
    hr.handovers += er.ho_successes;
    hr.pingpongs += er.ho_pingpongs;
    hr.steering_steps += static_cast<std::uint64_t>(er.steering_steps);
    sinr_sum += er.mean_sinr_db;
    for (std::size_t i = 0; i < config_.n_ues; ++i) {
      hour_ue_bits_[i] += fleet_.ue_served_bits(i);
      if (fleet_.serving_cell(i) >= 0 && fleet_.sinr_db(i) >= config_.min_service_sinr_db) {
        ++hr_served;
      }
    }
  }
  hr.mean_sinr_db = sinr_sum / config_.epochs_per_hour;

  const std::uint64_t samples =
      static_cast<std::uint64_t>(config_.n_ues) * config_.epochs_per_hour;
  hr.availability = static_cast<double>(hr_served) / static_cast<double>(samples);
  served_samples_ += hr_served;
  total_samples_ += samples;

  // Per-UE delivered throughput over the hour's simulated service time
  // (the traffic plane advances ttis_per_epoch TTIs per epoch).
  const double service_s =
      config_.epochs_per_hour * config_.fleet.ttis_per_epoch * lte::kTtiSeconds;
  std::vector<double> tput = hour_ue_bits_;
  for (double& b : tput) b /= service_s;
  std::sort(tput.begin(), tput.end());
  hr.p5_tput_bps = geo::percentile_sorted(tput, 0.05);
  hr.p50_tput_bps = geo::percentile_sorted(tput, 0.50);
  hr.p95_tput_bps = geo::percentile_sorted(tput, 0.95);

  by_hour_.push_back(hr);
  ++hour_;

  SKYRAN_COUNTER_INC("campaign.hours");
  SKYRAN_COUNTER_ADD("campaign.swaps", hr.swaps_started);
  SKYRAN_COUNTER_ADD("campaign.served_bits", static_cast<std::uint64_t>(hr.served_bits));
  SKYRAN_GAUGE_SET("campaign.availability", hr.availability);
  SKYRAN_GAUGE_SET("campaign.diurnal_level", hr.diurnal_level);
  sim::crash_point("hour.tick");
  return hr;
}

CampaignReport Campaign::report() const {
  CampaignReport rep;
  rep.seed = config_.seed;
  rep.hours = hour_;
  rep.epochs = hour_ * config_.epochs_per_hour;
  rep.n_ues = config_.n_ues;
  rep.n_cells = fleet_.cell_count();
  rep.energy_wh = energy_wh_;
  rep.swaps = swaps_;
  rep.depot_epochs = depot_epochs_;
  rep.min_hour_availability = by_hour_.empty() ? 0.0 : 1.0;
  for (const HourReport& hr : by_hour_) {
    rep.offered_bits += hr.offered_bits;
    rep.served_bits += hr.served_bits;
    rep.handovers += hr.handovers;
    rep.pingpongs += hr.pingpongs;
    rep.steering_steps += hr.steering_steps;
    rep.min_hour_availability = std::min(rep.min_hour_availability, hr.availability);
  }
  rep.availability = total_samples_ == 0
                         ? 0.0
                         : static_cast<double>(served_samples_) /
                               static_cast<double>(total_samples_);
  rep.energy_wh_per_gbit =
      rep.served_bits > 0.0 ? rep.energy_wh / (rep.served_bits / 1e9) : 0.0;
  rep.by_hour = by_hour_;
  return rep;
}

CampaignReport Campaign::run() {
  while (!done()) run_hour();
  return report();
}

std::uint64_t Campaign::state_hash() const {
  std::uint64_t h = kFnvOffset;
  hash_pod(h, hour_);
  for (std::size_t c = 0; c < battery_.size(); ++c) {
    const double wh = battery_[c].remaining_wh();
    hash_pod(h, wh);
    hash_pod(h, swap_left_[c]);
  }
  hash_pod(h, energy_wh_);
  hash_pod(h, swaps_);
  hash_pod(h, depot_epochs_);
  hash_pod(h, served_samples_);
  hash_pod(h, total_samples_);
  for (const HourReport& hr : by_hour_) hash_hour(h, hr);
  const std::uint64_t fleet_hash = fleet_.state_hash();
  hash_pod(h, fleet_hash);
  return h;
}

void Campaign::save(std::ostream& os) const {
  geo::BinWriter w;
  w.pod(config_digest(config_));
  w.pod(hour_);
  w.pod(static_cast<std::uint64_t>(battery_.size()));
  for (std::size_t c = 0; c < battery_.size(); ++c) {
    w.pod(battery_[c].remaining_wh());
    w.pod(swap_left_[c]);
  }
  w.pod(energy_wh_);
  w.pod(swaps_);
  w.pod(depot_epochs_);
  w.pod(served_samples_);
  w.pod(total_samples_);
  w.pod(static_cast<std::uint64_t>(by_hour_.size()));
  for (const HourReport& hr : by_hour_) write_hour(w, hr);
  std::ostringstream fleet_bytes;
  fleet_.save(fleet_bytes);
  w.str(fleet_bytes.str());
  geo::write_envelope(os, kMagic, kVersion, w);
}

void Campaign::restore(std::istream& is) {
  const geo::Envelope env =
      geo::read_envelope(is, kMagic, kVersion, kVersion, "Campaign::restore");
  geo::BinReader r(env.payload);
  if (r.pod<std::uint64_t>() != config_digest(config_)) {
    throw CampaignStateMismatch(
        "Campaign::restore: saved state belongs to a different campaign "
        "(config fingerprint mismatch)");
  }
  const int hour = r.pod<int>();
  if (hour < 0 || hour > config_.hours) {
    throw CampaignStateMismatch("Campaign::restore: hour counter out of range");
  }
  const auto n_cells = r.pod<std::uint64_t>();
  if (n_cells != battery_.size()) {
    throw CampaignStateMismatch("Campaign::restore: cell population mismatch");
  }
  std::vector<double> batt_wh(n_cells);
  std::vector<std::int32_t> swap(n_cells);
  for (std::uint64_t c = 0; c < n_cells; ++c) {
    batt_wh[c] = r.pod<double>();
    swap[c] = r.pod<std::int32_t>();
  }
  const double energy_wh = r.pod<double>();
  const auto swaps = r.pod<std::uint64_t>();
  const auto depot_epochs = r.pod<std::uint64_t>();
  const auto served_samples = r.pod<std::uint64_t>();
  const auto total_samples = r.pod<std::uint64_t>();
  const auto n_hours = r.pod<std::uint64_t>();
  if (n_hours != static_cast<std::uint64_t>(hour)) {
    throw CampaignStateMismatch("Campaign::restore: hour rows disagree with hour counter");
  }
  std::vector<HourReport> rows;
  rows.reserve(n_hours);
  for (std::uint64_t i = 0; i < n_hours; ++i) rows.push_back(read_hour(r));
  const std::string fleet_blob = r.str();
  if (!r.done()) {
    throw CampaignStateMismatch("Campaign::restore: trailing bytes after last field");
  }

  // Strong exception safety: rebuild the fleet into a fresh object and only
  // commit once the nested envelope verifies, so a checkpoint walker can
  // fall back to an older generation after any throw above or below.
  fleet::Fleet fresh = make_fleet();
  for (const geo::Vec3& s : station_) fresh.add_cell(s);
  for (std::size_t i = 0; i < config_.n_ues; ++i) {
    fresh.add_ue(ue_position_at(i, 0.0), base_spec_[i]);
  }
  std::istringstream fleet_in(fleet_blob);
  fresh.restore(fleet_in);

  fleet_ = std::move(fresh);
  hour_ = hour;
  for (std::size_t c = 0; c < battery_.size(); ++c) {
    battery_[c].restore_remaining_wh(batt_wh[c]);
    swap_left_[c] = swap[c];
  }
  energy_wh_ = energy_wh;
  swaps_ = swaps;
  depot_epochs_ = depot_epochs;
  served_samples_ = served_samples;
  total_samples_ = total_samples;
  by_hour_ = std::move(rows);
  hour_ue_bits_.assign(config_.n_ues, 0.0);
  SKYRAN_COUNTER_INC("campaign.restores");
}

CampaignCheckpointer::CampaignCheckpointer(std::filesystem::path dir, int keep)
    : store_(std::move(dir), "camp-", ".skyd", keep) {}

std::filesystem::path CampaignCheckpointer::save(const Campaign& campaign) {
  std::ostringstream os;
  campaign.save(os);
  const std::filesystem::path path = store_.save(campaign.hours_run(), os.str());
  SKYRAN_COUNTER_INC("campaign.ckpt.saves");
  return path;
}

std::optional<int> CampaignCheckpointer::restore_latest(Campaign& campaign) {
  last_errors_.clear();
  const std::vector<std::filesystem::path> gens = store_.generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    std::ifstream is(*it, std::ios::binary);
    if (!is) {
      last_errors_.push_back(it->filename().string() + ": cannot open");
      SKYRAN_COUNTER_INC("campaign.ckpt.rejected");
      continue;
    }
    try {
      campaign.restore(is);
      SKYRAN_COUNTER_INC("campaign.ckpt.restores");
      return store_.generation_of(*it);
    } catch (const std::exception& e) {
      last_errors_.push_back(it->filename().string() + ": " + e.what());
      SKYRAN_COUNTER_INC("campaign.ckpt.rejected");
    }
  }
  return std::nullopt;
}

CampaignConfig example_day_config(std::uint64_t seed, std::size_t n_ues, int cells_per_side) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.n_ues = n_ues;
  cfg.cells_per_side = cells_per_side;
  // A station-side battery pool (several pack sets) rather than one flight
  // pack: a cell trips its reserve roughly every 1.5 h and sits out one
  // epoch at the depot, so swaps stay a visible but non-crippling rhythm.
  cfg.depot.battery.capacity_wh = 2400.0;
  cfg.depot.swap_epochs = 1;
  cfg.weather.push_back({7.5, 9.0, 4.0});    // morning drizzle over the commute
  cfg.weather.push_back({19.0, 21.0, 8.0});  // evening storm into the peak
  FlashCrowd stadium;
  stadium.kind = CrowdKind::kStadium;
  stadium.start_h = 18.0;
  stadium.fill_h = 1.0;
  stadium.hold_h = 2.5;
  stadium.drain_h = 1.0;
  stadium.center = {0.75 * cfg.area_m, 0.75 * cfg.area_m};
  stadium.radius_m = 90.0;
  stadium.ue_fraction = 0.3;
  stadium.rate_boost = 3.0;
  cfg.crowds.push_back(stadium);
  FlashCrowd evac;
  evac.kind = CrowdKind::kEvacuation;
  evac.start_h = 13.5;
  evac.fill_h = 0.25;
  evac.hold_h = 1.0;
  evac.drain_h = 0.75;
  evac.center = {0.4 * cfg.area_m, 0.45 * cfg.area_m};
  evac.radius_m = 150.0;
  evac.rate_boost = 2.0;
  cfg.crowds.push_back(evac);
  return cfg;
}

}  // namespace skyran::scenario
