// Deterministic demand shapes for day-in-the-life campaigns: the diurnal
// traffic curve that modulates every UE's offered load across the 24 h
// horizon, and scripted flash crowds (stadium fill/drain, outage
// evacuation) that pull UEs toward a hotspot and boost their demand while
// engaged.
//
// Like mobility::commuter, everything is a pure function of its arguments —
// no internal state, no wall clock — so a campaign resumed from a checkpoint
// recomputes identical shapes at any (hour, epoch).
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/vec.hpp"

namespace skyran::scenario {

/// Two-bump diurnal demand curve: an overnight floor plus Gaussian morning
/// and evening bumps, clamped to 1.0 at the evening peak. Values are
/// multipliers on each UE's base rate, in (0, 1].
struct DiurnalCurve {
  double night_floor = 0.15;
  double morning_peak_h = 9.0;
  double morning_level = 0.7;
  double morning_width_h = 1.8;
  double evening_peak_h = 20.5;
  double evening_level = 1.0;
  double evening_width_h = 2.2;
};

/// Demand multiplier at fractional hour-of-day `hour` (wraps mod 24, so the
/// evening bump's tail reaches past midnight).
double diurnal_level(const DiurnalCurve& curve, double hour);

enum class CrowdKind : std::uint8_t {
  kStadium,     ///< a fraction of UEs converge on a venue, then drain home
  kEvacuation,  ///< UEs inside the radius flee outward (e.g. a ground outage)
};

/// One scripted flash crowd: trapezoidal engagement (fill, hold, drain)
/// anchored at a venue. Stadium crowds pull a counter-random `ue_fraction`
/// of the population toward `center`; evacuations push every UE inside
/// `radius_m` away from it.
struct FlashCrowd {
  CrowdKind kind = CrowdKind::kStadium;
  double start_h = 18.0;
  double fill_h = 1.0;
  double hold_h = 2.0;
  double drain_h = 1.0;
  geo::Vec2 center{};
  double radius_m = 80.0;
  double ue_fraction = 0.25;  ///< stadium: fraction of UEs attending
  double rate_boost = 3.0;    ///< traffic multiplier at full engagement
};

/// Engagement in [0, 1] at hour-of-day `hour`: 0 outside the event, ramping
/// linearly over fill_h, 1 through hold_h, ramping down over drain_h.
double crowd_engagement(const FlashCrowd& crowd, double hour);

/// Whether `ue` takes part in `crowd`. Stadium: a counter-random draw from
/// (seed, salt, ue) against ue_fraction. Evacuation: membership depends on
/// position, not identity — true when `base` (the UE's crowd-free position)
/// is inside the crowd radius. `salt` distinguishes crowds sharing a seed.
bool crowd_applies(const FlashCrowd& crowd, std::size_t ue, geo::Vec2 base,
                   std::uint64_t seed, std::uint64_t salt);

/// Position override at engagement `e` for a participating UE: linear blend
/// from `base` toward the UE's counter-random spot in the venue (stadium) or
/// toward a point 2.5 radii out along the flee direction (evacuation).
geo::Vec2 crowd_position(const FlashCrowd& crowd, geo::Vec2 base, std::size_t ue,
                         double engagement, std::uint64_t seed, std::uint64_t salt);

/// Traffic multiplier for a participating UE at engagement `e`:
/// 1 + e * (rate_boost - 1).
double crowd_rate_multiplier(const FlashCrowd& crowd, double engagement);

}  // namespace skyran::scenario
