#include "scenario/shapes.hpp"

#include <algorithm>
#include <cmath>

#include "geo/contract.hpp"

namespace skyran::scenario {

namespace {

// splitmix64 finalizer (same mixer as the traffic plane's counter RNG).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t seed, std::uint64_t stream, std::uint64_t ue) {
  const std::uint64_t h = mix64(seed ^ mix64(stream ^ mix64(ue)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t kStreamAttend = 0x201;
constexpr std::uint64_t kStreamSpotR = 0x202;
constexpr std::uint64_t kStreamSpotA = 0x203;

// Gaussian bump centered at peak, evaluated on the 24 h circle (the nearest
// wrapped distance, so a 20:30 evening bump's tail reaches 00:30).
double bump(double hour, double peak, double level, double width) {
  double d = std::abs(hour - peak);
  d = std::min(d, 24.0 - d);
  return level * std::exp(-(d * d) / (2.0 * width * width));
}

}  // namespace

double diurnal_level(const DiurnalCurve& curve, double hour) {
  hour = hour - 24.0 * std::floor(hour / 24.0);
  const double level =
      curve.night_floor +
      bump(hour, curve.morning_peak_h, curve.morning_level, curve.morning_width_h) +
      bump(hour, curve.evening_peak_h, curve.evening_level, curve.evening_width_h);
  return std::clamp(level, 0.0, 1.0);
}

double crowd_engagement(const FlashCrowd& crowd, double hour) {
  expects(crowd.fill_h > 0.0 && crowd.drain_h > 0.0,
          "crowd_engagement: fill and drain ramps must be positive");
  hour = hour - 24.0 * std::floor(hour / 24.0);
  const double t = hour - crowd.start_h;
  if (t <= 0.0) return 0.0;
  if (t < crowd.fill_h) return t / crowd.fill_h;
  const double hold_end = crowd.fill_h + crowd.hold_h;
  if (t < hold_end) return 1.0;
  const double drain_end = hold_end + crowd.drain_h;
  if (t < drain_end) return (drain_end - t) / crowd.drain_h;
  return 0.0;
}

bool crowd_applies(const FlashCrowd& crowd, std::size_t ue, geo::Vec2 base,
                   std::uint64_t seed, std::uint64_t salt) {
  if (crowd.kind == CrowdKind::kEvacuation) {
    return base.dist(crowd.center) < crowd.radius_m;
  }
  return u01(seed ^ mix64(salt), kStreamAttend, ue) < crowd.ue_fraction;
}

geo::Vec2 crowd_position(const FlashCrowd& crowd, geo::Vec2 base, std::size_t ue,
                         double engagement, std::uint64_t seed, std::uint64_t salt) {
  const double e = std::clamp(engagement, 0.0, 1.0);
  if (e <= 0.0) return base;
  geo::Vec2 target{};
  if (crowd.kind == CrowdKind::kStadium) {
    // The UE's seat: uniform over the venue disk, fixed per (crowd, ue).
    const std::uint64_t s = seed ^ mix64(salt);
    const double r = crowd.radius_m * std::sqrt(u01(s, kStreamSpotR, ue));
    const double a = 2.0 * M_PI * u01(s, kStreamSpotA, ue);
    target = {crowd.center.x + r * std::cos(a), crowd.center.y + r * std::sin(a)};
  } else {
    // Flee radially to 2.5 radii out; a UE exactly at the center picks a
    // counter-random direction.
    geo::Vec2 dir = base - crowd.center;
    if (dir.norm() <= 1e-9) {
      const double a = 2.0 * M_PI * u01(seed ^ mix64(salt), kStreamSpotA, ue);
      dir = {std::cos(a), std::sin(a)};
    } else {
      dir = dir.normalized();
    }
    target = crowd.center + dir * (2.5 * crowd.radius_m);
  }
  return base + (target - base) * e;
}

double crowd_rate_multiplier(const FlashCrowd& crowd, double engagement) {
  const double e = std::clamp(engagement, 0.0, 1.0);
  return 1.0 + e * (crowd.rate_boost - 1.0);
}

}  // namespace skyran::scenario
