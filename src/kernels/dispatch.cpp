// Runtime dispatch: resolve the SIMD level once per process (config override
// > SKYRAN_SIMD env > CPU feature probe) and route each public kernel to the
// best variant that implements it. The level is a process-wide atomic, not
// thread-local, so pool workers always agree with the thread that launched
// them — that keeps the serial==parallel bit-identity contract intact at any
// level, because every thread of a process runs the same variant.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "kernels/detail.hpp"
#include "obs/obs.hpp"

namespace skyran::kernels {
namespace {

constexpr int kUnresolved = -1;
std::atomic<int> g_level{kUnresolved};

SimdLevel best_supported() {
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
#if defined(SKYRAN_KERNELS_HAVE_NEON)
  return SimdLevel::kNeon;
#endif
  return SimdLevel::kScalar;
}

SimdLevel level_from_env() {
  const char* env = std::getenv("SKYRAN_SIMD");
  if (env == nullptr || *env == '\0') return best_supported();
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    return SimdLevel::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) return resolve_mode(SimdMode::kAvx2);
  if (std::strcmp(env, "neon") == 0) return resolve_mode(SimdMode::kNeon);
  // "auto", "on", or anything unrecognized: probe the CPU.
  return best_supported();
}

void publish(SimdLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  SKYRAN_GAUGE_SET("kernel.simd_level", static_cast<int>(level));
}

}  // namespace

bool level_available(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(SKYRAN_KERNELS_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdLevel resolve_mode(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff:
      return SimdLevel::kScalar;
    case SimdMode::kAvx2:
      return level_available(SimdLevel::kAvx2) ? SimdLevel::kAvx2 : best_supported();
    case SimdMode::kNeon:
      return level_available(SimdLevel::kNeon) ? SimdLevel::kNeon : best_supported();
    case SimdMode::kAuto:
      break;
  }
  return best_supported();
}

SimdLevel active_level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl == kUnresolved) {
    const SimdLevel resolved = level_from_env();
    // First resolver wins; a concurrent set_mode() published a real level
    // already and must not be overwritten by the env default.
    int expected = kUnresolved;
    if (g_level.compare_exchange_strong(expected, static_cast<int>(resolved),
                                        std::memory_order_relaxed)) {
      SKYRAN_GAUGE_SET("kernel.simd_level", static_cast<int>(resolved));
      lvl = static_cast<int>(resolved);
    } else {
      lvl = expected;
    }
  }
  return static_cast<SimdLevel>(lvl);
}

void set_mode(SimdMode mode) { publish(resolve_mode(mode)); }

const char* level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

ScopedSimdMode::ScopedSimdMode(SimdMode mode) : saved_(active_level()) { set_mode(mode); }

ScopedSimdMode::~ScopedSimdMode() { publish(saved_); }

// ---------------------------------------------------------------------------
// Public wrappers. Batch-level kernels record throughput counters; per-call
// overhead stays one relaxed load + branch when obs is disabled.
// ---------------------------------------------------------------------------

void multiply_conjugate(const Cplx* a, const Cplx* b, Cplx* out, std::size_t n) {
  SKYRAN_COUNTER_INC("kernel.mul_conj.calls");
  SKYRAN_COUNTER_ADD("kernel.mul_conj.elems", n);
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
  if (active_level() == SimdLevel::kAvx2) return avx2::multiply_conjugate(a, b, out, n);
#endif
  scalar::multiply_conjugate(a, b, out, n);
}

PowerPeak power_peak_scan(const Cplx* v, std::size_t n) {
  SKYRAN_COUNTER_INC("kernel.peak_scan.calls");
  SKYRAN_COUNTER_ADD("kernel.peak_scan.elems", n);
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
  if (active_level() == SimdLevel::kAvx2) return avx2::power_peak_scan(v, n);
#endif
  return scalar::power_peak_scan(v, n);
}

IdwAccum idw_weigh(const double* dist_m, const double* value, std::size_t n, double power) {
  // No per-call counters: this runs per grid cell with n ~ 8 and a counter
  // pair per call would dominate the kernel itself.
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
  if ((power == 2.0 || power == 1.0) && active_level() == SimdLevel::kAvx2) {
    return avx2::idw_weigh(dist_m, value, n, power);
  }
#endif
  return scalar::idw_weigh(dist_m, value, n, power);
}

int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment) {
  SKYRAN_COUNTER_INC("kernel.kmeans_assign.calls");
  SKYRAN_COUNTER_ADD("kernel.kmeans_assign.elems", n_points);
  switch (active_level()) {
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return avx2::kmeans_assign(px, py, n_points, cx, cy, n_centers, assignment);
#endif
#if defined(SKYRAN_KERNELS_HAVE_NEON)
    case SimdLevel::kNeon:
      return neon::kmeans_assign(px, py, n_points, cx, cy, n_centers, assignment);
#endif
    default:
      return scalar::kmeans_assign(px, py, n_points, cx, cy, n_centers, assignment);
  }
}

void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2) {
  switch (active_level()) {
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return avx2::min_dist2(px, py, n_points, cx, cy, n_centers, best_d2);
#endif
#if defined(SKYRAN_KERNELS_HAVE_NEON)
    case SimdLevel::kNeon:
      return neon::min_dist2(px, py, n_points, cx, cy, n_centers, best_d2);
#endif
    default:
      return scalar::min_dist2(px, py, n_points, cx, cy, n_centers, best_d2);
  }
}

void fspl_db(const double* dist_m, double* out, std::size_t n, double frequency_hz) {
  SKYRAN_COUNTER_INC("kernel.pathloss.calls");
  SKYRAN_COUNTER_ADD("kernel.pathloss.elems", n);
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
  if (active_level() == SimdLevel::kAvx2) return avx2::fspl_db(dist_m, out, n, frequency_hz);
#endif
  scalar::fspl_db(dist_m, out, n, frequency_hz);
}

void log_distance_db(const double* dist_m, double* out, std::size_t n, double frequency_hz,
                     double exponent, double reference_m) {
  SKYRAN_COUNTER_INC("kernel.pathloss.calls");
  SKYRAN_COUNTER_ADD("kernel.pathloss.elems", n);
#if defined(SKYRAN_KERNELS_HAVE_AVX2)
  if (active_level() == SimdLevel::kAvx2) {
    return avx2::log_distance_db(dist_m, out, n, frequency_hz, exponent, reference_m);
  }
#endif
  scalar::log_distance_db(dist_m, out, n, frequency_hz, exponent, reference_m);
}

}  // namespace skyran::kernels
