// Scalar reference kernels. These bodies are the pre-kernel-layer inner
// loops verbatim: SKYRAN_SIMD=off must reproduce historical outputs
// byte-for-byte (the golden-replay test pins this).
#include <cmath>
#include <limits>
#include <numbers>

#include "kernels/detail.hpp"

namespace skyran::kernels {

double fspl_db_one(double distance_m, double frequency_hz) {
  const double d = std::max(distance_m, 1.0);
  return 20.0 * std::log10(4.0 * std::numbers::pi * d * frequency_hz / kSpeedOfLightMps);
}

namespace scalar {

void multiply_conjugate(const Cplx* a, const Cplx* b, Cplx* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = a[i] * std::conj(b[i]);
  }
}

PowerPeak power_peak_scan(const Cplx* v, std::size_t n) {
  PowerPeak out;
  if (n == 0) return out;
  out.peak = std::norm(v[0]);
  for (std::size_t i = 0; i < n; ++i) {
    const double m = std::norm(v[i]);
    out.total += m;
    if (m > out.peak) {
      out.peak = m;
      out.argmax = i;
    }
  }
  return out;
}

IdwAccum idw_weigh(const double* dist_m, const double* value, std::size_t n, double power) {
  IdwAccum acc;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 1.0 / std::pow(dist_m[i], power);
    acc.wsum += w;
    acc.vsum += w * value[i];
  }
  return acc;
}

int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment) {
  int changed = 0;
  for (std::size_t i = 0; i < n_points; ++i) {
    int best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < n_centers; ++c) {
      const double dx = px[i] - cx[c];
      const double dy = py[i] - cy[c];
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<int>(c);
      }
    }
    if (assignment[i] != best) {
      assignment[i] = best;
      changed = 1;
    }
  }
  return changed;
}

void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2) {
  for (std::size_t i = 0; i < n_points; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < n_centers; ++c) {
      const double dx = px[i] - cx[c];
      const double dy = py[i] - cy[c];
      best = std::min(best, dx * dx + dy * dy);
    }
    best_d2[i] = best;
  }
}

void fspl_db(const double* dist_m, double* out, std::size_t n, double frequency_hz) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = fspl_db_one(dist_m[i], frequency_hz);
  }
}

void log_distance_db(const double* dist_m, double* out, std::size_t n, double frequency_hz,
                     double exponent, double reference_m) {
  const double ref_db = fspl_db_one(reference_m, frequency_hz);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = std::max(dist_m[i], reference_m);
    out[i] = ref_db + 10.0 * exponent * std::log10(d / reference_m);
  }
}

}  // namespace scalar
}  // namespace skyran::kernels
