// AVX2 kernel variants (x86-64 only). This translation unit is compiled with
// -mavx2 and must only be entered after the runtime CPU-feature check in
// dispatch.cpp. No FMA anywhere: contraction would break the EXACT contracts
// and -mavx2 alone does not enable it, so the compiler cannot fuse either.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "kernels/detail.hpp"

namespace skyran::kernels::avx2 {
namespace {

// log10 on four positive, finite lanes. Range reduction x = m * 2^e with
// m in [sqrt(2)/2, sqrt(2)), then ln(m) = 2*artanh(s), s = (m-1)/(m+1),
// via an odd atanh series in z = s^2 (|s| <= 0.1716 -> z <= 0.0295, so the
// z^7/15 tail bounds truncation at ~4e-14 relative). Measured error vs
// std::log10 is < 1e-12; the public contract allows 1e-9 dB after the
// 20x scale.
inline __m256d log10_pd(__m256d x) {
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256i bits = _mm256_castpd_si256(x);

  // Biased exponent -> integer e, converted int64->double with the
  // 1.5*2^52 magic-constant trick (valid for |e| < 2^51).
  __m256i expi = _mm256_and_si256(_mm256_srli_epi64(bits, 52), _mm256_set1_epi64x(0x7ff));
  expi = _mm256_sub_epi64(expi, _mm256_set1_epi64x(1023));
  const __m256i magic = _mm256_set1_epi64x(0x4338000000000000LL);
  __m256d e = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(expi, magic)),
                            _mm256_castsi256_pd(magic));

  // Mantissa in [1, 2); fold (sqrt(2), 2) down so s stays small.
  __m256d m = _mm256_castsi256_pd(
      _mm256_or_si256(_mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL)),
                      _mm256_set1_epi64x(0x3ff0000000000000LL)));
  const __m256d fold = _mm256_cmp_pd(m, _mm256_set1_pd(std::numbers::sqrt2), _CMP_GT_OQ);
  m = _mm256_blendv_pd(m, _mm256_mul_pd(m, _mm256_set1_pd(0.5)), fold);
  e = _mm256_add_pd(e, _mm256_and_pd(fold, one));

  const __m256d s = _mm256_div_pd(_mm256_sub_pd(m, one), _mm256_add_pd(m, one));
  const __m256d z = _mm256_mul_pd(s, s);
  __m256d p = _mm256_set1_pd(1.0 / 15.0);
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(1.0 / 13.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(1.0 / 11.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(1.0 / 9.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(1.0 / 7.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(1.0 / 5.0));
  p = _mm256_add_pd(_mm256_mul_pd(p, z), _mm256_set1_pd(1.0 / 3.0));
  const __m256d artanh = _mm256_add_pd(s, _mm256_mul_pd(_mm256_mul_pd(s, z), p));
  const __m256d ln_m = _mm256_add_pd(artanh, artanh);

  const __m256d log10_2 = _mm256_set1_pd(0.30102999566398119521);  // log10(2)
  const __m256d inv_ln10 = _mm256_set1_pd(0.43429448190325182765); // 1/ln(10)
  return _mm256_add_pd(_mm256_mul_pd(e, log10_2), _mm256_mul_pd(ln_m, inv_ln10));
}

inline void store4(__m256d v, double* out) { _mm256_storeu_pd(out, v); }

}  // namespace

void multiply_conjugate(const Cplx* a, const Cplx* b, Cplx* out, std::size_t n) {
  const double* ap = reinterpret_cast<const double*>(a);
  const double* bp = reinterpret_cast<const double*>(b);
  double* op = reinterpret_cast<double*>(out);
  std::size_t i = 0;
  // Two interleaved complexes per vector: [re0 im0 re1 im1].
  // (ar + i*ai)(br - i*bi) = (ar*br + ai*bi) + i*(ai*br - ar*bi).
  // addsub(mul(a, b_dup_re), mul(a_swapped, b_dup_im)) yields exactly one
  // mul and one add/sub per output component, matching std::complex.
  for (; i + 2 <= n; i += 2) {
    const __m256d av = _mm256_loadu_pd(ap + 2 * i);
    const __m256d bv = _mm256_loadu_pd(bp + 2 * i);
    const __m256d br = _mm256_movedup_pd(bv);            // [br0 br0 br1 br1]
    const __m256d bi = _mm256_permute_pd(bv, 0xF);       // [bi0 bi0 bi1 bi1]
    const __m256d asw = _mm256_permute_pd(av, 0x5);      // [ai0 ar0 ai1 ar1]
    const __m256d x = _mm256_mul_pd(av, br);             // [ar*br, ai*br]
    const __m256d y = _mm256_mul_pd(asw, bi);            // [ai*bi, ar*bi]
    const __m256d re = _mm256_add_pd(x, y);              // lane0: ar*br+ai*bi
    const __m256d im = _mm256_sub_pd(x, y);              // lane1: ai*br-ar*bi
    // blend even lanes from re, odd lanes from im: 0b1010.
    _mm256_storeu_pd(op + 2 * i, _mm256_blend_pd(re, im, 0xA));
  }
  for (; i < n; ++i) {
    out[i] = a[i] * std::conj(b[i]);
  }
}

PowerPeak power_peak_scan(const Cplx* v, std::size_t n) {
  PowerPeak out;
  if (n == 0) return out;
  const double* d = reinterpret_cast<const double*>(v);
  std::size_t i = 0;
  double head_total = 0.0;
  double head_peak = -1.0;
  std::size_t head_arg = 0;
  if (n >= 4) {
    __m256d best = _mm256_set1_pd(-1.0);
    __m256d best_idx = _mm256_setzero_pd();
    // hadd_pd(lo, hi) lane order is [m0, m2, m1, m3], so the running index
    // vector must carry [i, i+2, i+1, i+3] (set_pd takes hi..lo).
    __m256d idx = _mm256_set_pd(3.0, 1.0, 2.0, 0.0);
    const __m256d four = _mm256_set1_pd(4.0);
    __m256d tot = _mm256_setzero_pd();
    for (; i + 4 <= n; i += 4) {
      const __m256d lo = _mm256_loadu_pd(d + 2 * i);      // re0 im0 re1 im1
      const __m256d hi = _mm256_loadu_pd(d + 2 * i + 4);  // re2 im2 re3 im3
      const __m256d mags =
          _mm256_hadd_pd(_mm256_mul_pd(lo, lo), _mm256_mul_pd(hi, hi));
      tot = _mm256_add_pd(tot, mags);
      const __m256d gt = _mm256_cmp_pd(mags, best, _CMP_GT_OQ);
      best = _mm256_blendv_pd(best, mags, gt);
      best_idx = _mm256_blendv_pd(best_idx, idx, gt);
      idx = _mm256_add_pd(idx, four);
    }
    double bl[4], il[4], tl[4];
    store4(best, bl);
    store4(best_idx, il);
    store4(tot, tl);
    head_total = ((tl[0] + tl[1]) + tl[2]) + tl[3];
    for (int k = 0; k < 4; ++k) {
      // Strictly-greater keeps the earliest lane hit; across lanes pick the
      // max value, breaking ties toward the lowest element index.
      if (bl[k] > head_peak ||
          (bl[k] == head_peak && static_cast<std::size_t>(il[k]) < head_arg)) {
        head_peak = bl[k];
        head_arg = static_cast<std::size_t>(il[k]);
      }
    }
  }
  out.peak = head_peak >= 0.0 ? head_peak : std::norm(v[0]);
  out.argmax = head_peak >= 0.0 ? head_arg : 0;
  out.total = head_total;
  for (; i < n; ++i) {
    const double m = std::norm(v[i]);
    out.total += m;
    if (m > out.peak) {
      out.peak = m;
      out.argmax = i;
    }
  }
  return out;
}

IdwAccum idw_weigh(const double* dist_m, const double* value, std::size_t n, double power) {
  // Dispatch guarantees power is 1.0 or 2.0 here; anything else runs scalar.
  const bool square = power == 2.0;
  const __m256d one = _mm256_set1_pd(1.0);
  __m256d wsum = _mm256_setzero_pd();
  __m256d vsum = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dv = _mm256_loadu_pd(dist_m + i);
    const __m256d w = _mm256_div_pd(one, square ? _mm256_mul_pd(dv, dv) : dv);
    wsum = _mm256_add_pd(wsum, w);
    vsum = _mm256_add_pd(vsum, _mm256_mul_pd(w, _mm256_loadu_pd(value + i)));
  }
  double wl[4], vl[4];
  store4(wsum, wl);
  store4(vsum, vl);
  IdwAccum acc;
  acc.wsum = ((wl[0] + wl[1]) + wl[2]) + wl[3];
  acc.vsum = ((vl[0] + vl[1]) + vl[2]) + vl[3];
  for (; i < n; ++i) {
    const double w = square ? 1.0 / (dist_m[i] * dist_m[i]) : 1.0 / dist_m[i];
    acc.wsum += w;
    acc.vsum += w * value[i];
  }
  return acc;
}

int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment) {
  int changed = 0;
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 4 <= n_points; i += 4) {
    const __m256d pxv = _mm256_loadu_pd(px + i);
    const __m256d pyv = _mm256_loadu_pd(py + i);
    __m256d best_d2 = inf;
    __m256d best_c = _mm256_setzero_pd();
    for (std::size_t c = 0; c < n_centers; ++c) {
      const __m256d dx = _mm256_sub_pd(pxv, _mm256_set1_pd(cx[c]));
      const __m256d dy = _mm256_sub_pd(pyv, _mm256_set1_pd(cy[c]));
      const __m256d d2 = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
      const __m256d lt = _mm256_cmp_pd(d2, best_d2, _CMP_LT_OQ);
      best_d2 = _mm256_blendv_pd(best_d2, d2, lt);
      best_c = _mm256_blendv_pd(best_c, _mm256_set1_pd(static_cast<double>(c)), lt);
    }
    double cl[4];
    store4(best_c, cl);
    for (int k = 0; k < 4; ++k) {
      const int best = static_cast<int>(cl[k]);
      if (assignment[i + static_cast<std::size_t>(k)] != best) {
        assignment[i + static_cast<std::size_t>(k)] = best;
        changed = 1;
      }
    }
  }
  if (i < n_points) {
    changed |= scalar::kmeans_assign(px + i, py + i, n_points - i, cx, cy, n_centers,
                                     assignment + i);
  }
  return changed;
}

void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2) {
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  std::size_t i = 0;
  for (; i + 4 <= n_points; i += 4) {
    const __m256d pxv = _mm256_loadu_pd(px + i);
    const __m256d pyv = _mm256_loadu_pd(py + i);
    __m256d best = inf;
    for (std::size_t c = 0; c < n_centers; ++c) {
      const __m256d dx = _mm256_sub_pd(pxv, _mm256_set1_pd(cx[c]));
      const __m256d dy = _mm256_sub_pd(pyv, _mm256_set1_pd(cy[c]));
      best = _mm256_min_pd(best, _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    }
    _mm256_storeu_pd(best_d2 + i, best);
  }
  if (i < n_points) {
    scalar::min_dist2(px + i, py + i, n_points - i, cx, cy, n_centers, best_d2 + i);
  }
}

void fspl_db(const double* dist_m, double* out, std::size_t n, double frequency_hz) {
  const __m256d four_pi = _mm256_set1_pd(4.0 * std::numbers::pi);
  const __m256d freq = _mm256_set1_pd(frequency_hz);
  const __m256d c = _mm256_set1_pd(kSpeedOfLightMps);
  const __m256d floor_m = _mm256_set1_pd(1.0);
  const __m256d twenty = _mm256_set1_pd(20.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d d = _mm256_max_pd(_mm256_loadu_pd(dist_m + i), floor_m);
    // Same op order as the scalar formula: ((4*pi*d)*f)/c.
    const __m256d arg =
        _mm256_div_pd(_mm256_mul_pd(_mm256_mul_pd(four_pi, d), freq), c);
    _mm256_storeu_pd(out + i, _mm256_mul_pd(twenty, log10_pd(arg)));
  }
  for (; i < n; ++i) {
    out[i] = fspl_db_one(dist_m[i], frequency_hz);
  }
}

void log_distance_db(const double* dist_m, double* out, std::size_t n, double frequency_hz,
                     double exponent, double reference_m) {
  const double ref_db_s = fspl_db_one(reference_m, frequency_hz);
  const __m256d ref_db = _mm256_set1_pd(ref_db_s);
  const __m256d ref = _mm256_set1_pd(reference_m);
  const __m256d scale = _mm256_set1_pd(10.0 * exponent);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_max_pd(_mm256_loadu_pd(dist_m + i), ref);
    const __m256d lg = log10_pd(_mm256_div_pd(d, ref));
    _mm256_storeu_pd(out + i, _mm256_add_pd(ref_db, _mm256_mul_pd(scale, lg)));
  }
  for (; i < n; ++i) {
    const double d = std::max(dist_m[i], reference_m);
    out[i] = ref_db_s + 10.0 * exponent * std::log10(d / reference_m);
  }
}

}  // namespace skyran::kernels::avx2

#endif  // x86-64
