// Internal: per-level kernel variants behind the public dispatch wrappers.
// scalar:: is always compiled; avx2:: only on x86-64 (compiled with -mavx2,
// invoked only after the runtime CPU check); neon:: only on aarch64.
#pragma once

#include "kernels/kernels.hpp"

namespace skyran::kernels::scalar {

void multiply_conjugate(const Cplx* a, const Cplx* b, Cplx* out, std::size_t n);
PowerPeak power_peak_scan(const Cplx* v, std::size_t n);
IdwAccum idw_weigh(const double* dist_m, const double* value, std::size_t n, double power);
int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment);
void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2);
void fspl_db(const double* dist_m, double* out, std::size_t n, double frequency_hz);
void log_distance_db(const double* dist_m, double* out, std::size_t n, double frequency_hz,
                     double exponent, double reference_m);

}  // namespace skyran::kernels::scalar

#if defined(__x86_64__) || defined(_M_X64)
#define SKYRAN_KERNELS_HAVE_AVX2 1
namespace skyran::kernels::avx2 {

void multiply_conjugate(const Cplx* a, const Cplx* b, Cplx* out, std::size_t n);
PowerPeak power_peak_scan(const Cplx* v, std::size_t n);
IdwAccum idw_weigh(const double* dist_m, const double* value, std::size_t n, double power);
int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment);
void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2);
void fspl_db(const double* dist_m, double* out, std::size_t n, double frequency_hz);
void log_distance_db(const double* dist_m, double* out, std::size_t n, double frequency_hz,
                     double exponent, double reference_m);

}  // namespace skyran::kernels::avx2
#endif

#if defined(__aarch64__)
#define SKYRAN_KERNELS_HAVE_NEON 1
namespace skyran::kernels::neon {

// NEON covers the two exact 2-wide-friendly kernels; the rest dispatch to
// scalar on aarch64 (documented in docs/ARCHITECTURE.md).
int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment);
void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2);

}  // namespace skyran::kernels::neon
#endif
