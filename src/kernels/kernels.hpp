// Runtime-dispatched SIMD kernel layer (lowest compute layer, below geo/).
//
// Each kernel is a small SoA math primitive with a scalar reference
// implementation and, where the hardware supports it, an AVX2 (x86-64) or
// NEON (aarch64) variant. The variant is selected once per process from CPU
// features, overridable with SKYRAN_SIMD=off|avx2|neon|auto or
// SkyRanConfig::simd / kernels::set_mode().
//
// Exactness contract (documented per kernel, asserted in tests/test_kernels
// and in-bench by micro_dsp):
//  - EXACT kernels produce bit-identical results at every SIMD level: the
//    vector variant performs the same per-element operation sequence (no FMA
//    contraction, no reassociation of any value the caller observes).
//  - TOLERANCE kernels reassociate a reduction (lane partial sums) or use a
//    polynomial log10; scalar and SIMD results agree within the stated
//    bound. Their scalar path is always the pre-kernel-layer loop verbatim,
//    so SKYRAN_SIMD=off reproduces historical outputs byte-for-byte.
//
// | kernel              | contract  | bound (scalar vs SIMD)                 |
// |---------------------|-----------|----------------------------------------|
// | multiply_conjugate  | EXACT     | bit-identical (finite inputs)          |
// | power_peak_scan     | mixed     | argmax/peak EXACT; total rel <= 1e-12  |
// | idw_weigh           | TOLERANCE | wsum/vsum rel <= 1e-12 (power 1 or 2;  |
// |                     |           | other powers run scalar: EXACT)        |
// | kmeans_assign       | EXACT     | bit-identical assignment               |
// | min_dist2           | EXACT     | bit-identical distances                |
// | fspl_db             | TOLERANCE | abs <= 1e-9 dB (polynomial log10)      |
// | log_distance_db     | TOLERANCE | abs <= 1e-9 dB (polynomial log10)      |
//
// The layer has no dependencies other than obs (dispatch gauge + throughput
// counters); geo/rf/lte/rem all sit above it.
#pragma once

#include <complex>
#include <cstddef>

namespace skyran::kernels {

using Cplx = std::complex<double>;

/// Speed of light, m/s. rf/units.hpp re-exports the same value; the copy
/// here keeps the kernel layer dependency-free (rf static_asserts equality).
inline constexpr double kSpeedOfLightMps = 299'792'458.0;

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// Instruction-set variant a kernel call executes.
enum class SimdLevel : int { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Operator-facing selection policy (SKYRAN_SIMD / SkyRanConfig::simd).
enum class SimdMode : int { kAuto = 0, kOff = 1, kAvx2 = 2, kNeon = 3 };

/// The level kernels currently dispatch to. Resolved once, on first use:
/// an explicit set_mode() wins, else the SKYRAN_SIMD environment variable
/// (off|scalar|avx2|neon|auto), else the best level the CPU supports.
SimdLevel active_level();

/// True when the CPU (and build) can execute `level`.
bool level_available(SimdLevel level);

/// Process-wide override; requests the CPU cannot execute clamp down to the
/// best available level (kAvx2 on a non-AVX2 machine -> kScalar). Unlike the
/// thread-count override this is deliberately NOT thread-local: kernels run
/// on pool worker threads, which must observe the same level as the caller.
/// Call between parallel regions, not concurrently with kernel execution.
void set_mode(SimdMode mode);

/// Resolve `mode` to the level it would dispatch to on this machine.
SimdLevel resolve_mode(SimdMode mode);

const char* level_name(SimdLevel level);

/// RAII override for tests and benches: forces a mode, restores the previous
/// level on destruction. Same process-wide caveat as set_mode().
class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SimdMode mode);
  ~ScopedSimdMode();
  ScopedSimdMode(const ScopedSimdMode&) = delete;
  ScopedSimdMode& operator=(const ScopedSimdMode&) = delete;

 private:
  SimdLevel saved_;
};

// ---------------------------------------------------------------------------
// Complex correlation / magnitude (SRS ToF pipeline)
// ---------------------------------------------------------------------------

/// out[i] = a[i] * conj(b[i]). EXACT: the SIMD variant issues the same
/// mul/add/sub sequence per element as std::complex multiplication (no FMA),
/// so results are bit-identical for finite, non-overflowing inputs.
void multiply_conjugate(const Cplx* a, const Cplx* b, Cplx* out, std::size_t n);

struct PowerPeak {
  std::size_t argmax = 0;  ///< index of the largest |v[i]|^2; ties -> lowest
  double peak = 0.0;       ///< |v[argmax]|^2
  double total = 0.0;      ///< sum of |v[i]|^2 over the scan
};

/// One fused pass over |v[i]|^2: argmax (lowest index wins ties), the peak
/// power, and the total power. argmax/peak are EXACT (per-element powers are
/// identical at every level); total is a TOLERANCE reduction: SIMD sums four
/// interleaved lanes, so it can differ from the serial sum by <= 1e-12
/// relative. n == 0 returns a zeroed result.
PowerPeak power_peak_scan(const Cplx* v, std::size_t n);

// ---------------------------------------------------------------------------
// Weighted accumulate (IDW interpolation)
// ---------------------------------------------------------------------------

struct IdwAccum {
  double wsum = 0.0;  ///< sum of 1/dist^power
  double vsum = 0.0;  ///< sum of value/dist^power
};

/// IDW accumulator over `n` (distance, value) pairs: w_i = dist_i^-power.
/// Scalar accumulates in index order with w_i = 1/std::pow(dist_i, power)
/// (the historical loop). SIMD specializes power == 2.0 and power == 1.0
/// (w = 1/(d*d), 1/d) with lane-partial sums: TOLERANCE, rel <= 1e-12 on
/// wsum/vsum. Any other power falls back to scalar (EXACT). Distances must
/// be positive (callers handle the exact-hit shortcut first).
IdwAccum idw_weigh(const double* dist_m, const double* value, std::size_t n, double power);

// ---------------------------------------------------------------------------
// Squared-distance argmin (k-means assignment)
// ---------------------------------------------------------------------------

/// assignment[i] = argmin_c (px[i]-cx[c])^2 + (py[i]-cy[c])^2, lowest center
/// index winning ties. EXACT: SIMD vectorizes across points, iterating
/// centers in index order with a strict-less update, the same per-element
/// arithmetic as the scalar loop. Returns 1 when any assignment[i] changed
/// from its previous content, else 0 (the k-means convergence flag).
int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers,
                  int* assignment);

/// best_d2[i] = min_c (px[i]-cx[c])^2 + (py[i]-cy[c])^2. EXACT (min is
/// order-insensitive for finite doubles). Used by k-means++ seeding.
void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers,
               double* best_d2);

// ---------------------------------------------------------------------------
// Fused log-distance / path-loss evaluation (channel sampling)
// ---------------------------------------------------------------------------

/// Scalar reference for one distance: free-space path loss, dB. This is the
/// single definition of the formula; rf::fspl_db delegates here.
double fspl_db_one(double distance_m, double frequency_hz);

/// out[i] = free-space path loss of dist_m[i] (clamped below at 1 m), dB.
/// Scalar calls std::log10 per element (the historical rf::fspl_db loop);
/// SIMD evaluates the whole chain — product, range reduction, polynomial
/// log10, scale — four lanes at a time. TOLERANCE: abs <= 1e-9 dB (measured
/// error is ~1e-12 dB; the bound leaves headroom for future polynomials).
void fspl_db(const double* dist_m, double* out, std::size_t n, double frequency_hz);

/// out[i] = fspl_db(reference_m) + 10*exponent*log10(max(d, ref)/ref), the
/// log-distance path-loss model over a batch. Same TOLERANCE as fspl_db.
void log_distance_db(const double* dist_m, double* out, std::size_t n, double frequency_hz,
                     double exponent, double reference_m);

}  // namespace skyran::kernels
