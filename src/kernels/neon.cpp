// NEON kernel variants (aarch64 only). float64x2 is 2-wide, so only the two
// kernels where the win is free of horizontal work — both EXACT — get NEON
// bodies; the rest dispatch to scalar on aarch64.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <limits>

#include "kernels/detail.hpp"

namespace skyran::kernels::neon {

int kmeans_assign(const double* px, const double* py, std::size_t n_points,
                  const double* cx, const double* cy, std::size_t n_centers, int* assignment) {
  int changed = 0;
  std::size_t i = 0;
  for (; i + 2 <= n_points; i += 2) {
    const float64x2_t pxv = vld1q_f64(px + i);
    const float64x2_t pyv = vld1q_f64(py + i);
    float64x2_t best_d2 = vdupq_n_f64(std::numeric_limits<double>::infinity());
    float64x2_t best_c = vdupq_n_f64(0.0);
    for (std::size_t c = 0; c < n_centers; ++c) {
      const float64x2_t dx = vsubq_f64(pxv, vdupq_n_f64(cx[c]));
      const float64x2_t dy = vsubq_f64(pyv, vdupq_n_f64(cy[c]));
      const float64x2_t d2 = vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy));
      const uint64x2_t lt = vcltq_f64(d2, best_d2);
      best_d2 = vbslq_f64(lt, d2, best_d2);
      best_c = vbslq_f64(lt, vdupq_n_f64(static_cast<double>(c)), best_c);
    }
    double cl[2];
    vst1q_f64(cl, best_c);
    for (int k = 0; k < 2; ++k) {
      const int best = static_cast<int>(cl[k]);
      if (assignment[i + static_cast<std::size_t>(k)] != best) {
        assignment[i + static_cast<std::size_t>(k)] = best;
        changed = 1;
      }
    }
  }
  if (i < n_points) {
    changed |= scalar::kmeans_assign(px + i, py + i, n_points - i, cx, cy, n_centers,
                                     assignment + i);
  }
  return changed;
}

void min_dist2(const double* px, const double* py, std::size_t n_points,
               const double* cx, const double* cy, std::size_t n_centers, double* best_d2) {
  std::size_t i = 0;
  for (; i + 2 <= n_points; i += 2) {
    const float64x2_t pxv = vld1q_f64(px + i);
    const float64x2_t pyv = vld1q_f64(py + i);
    float64x2_t best = vdupq_n_f64(std::numeric_limits<double>::infinity());
    for (std::size_t c = 0; c < n_centers; ++c) {
      const float64x2_t dx = vsubq_f64(pxv, vdupq_n_f64(cx[c]));
      const float64x2_t dy = vsubq_f64(pyv, vdupq_n_f64(cy[c]));
      best = vminq_f64(best, vaddq_f64(vmulq_f64(dx, dx), vmulq_f64(dy, dy)));
    }
    vst1q_f64(best_d2 + i, best);
  }
  if (i < n_points) {
    scalar::min_dist2(px + i, py + i, n_points - i, cx, cy, n_centers, best_d2 + i);
  }
}

}  // namespace skyran::kernels::neon

#endif  // __aarch64__
