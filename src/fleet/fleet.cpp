#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/thread_pool.hpp"
#include "geo/binio.hpp"
#include "geo/contract.hpp"
#include "lte/amc.hpp"
#include "lte/sampling.hpp"
#include "obs/obs.hpp"
#include "rem/bank.hpp"
#include "rem/placement.hpp"
#include "rf/units.hpp"
#include "sim/crash_point.hpp"

namespace skyran::fleet {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'F'};
constexpr std::uint32_t kVersion = 1;

// splitmix64 finalizer (same mixer as the traffic plane's counter RNG).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void hash_bytes(std::uint64_t& h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void hash_pod(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  hash_bytes(h, &v, sizeof(T));
}

template <typename T>
void hash_vec(std::uint64_t& h, const std::vector<T>& v) {
  hash_pod(h, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) hash_bytes(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

Fleet::Fleet(FleetConfig config, const rf::ChannelModel& channel)
    : config_(std::move(config)), channel_(&channel) {
  expects(config_.ttis_per_epoch > 0, "Fleet: ttis_per_epoch must be positive");
  expects(config_.a3.time_to_trigger_epochs >= 1,
          "Fleet: A3 time_to_trigger_epochs must be >= 1");
  expects(config_.a3.offset_db >= 0.0 && config_.a3.hysteresis_db >= 0.0,
          "Fleet: A3 offset/hysteresis must be >= 0");
  expects(config_.a3.pingpong_window_epochs >= 1,
          "Fleet: A3 pingpong_window_epochs must be >= 1");
  expects(config_.steering.period_epochs >= 1,
          "Fleet: steering period_epochs must be >= 1");
  expects(config_.steering.step_db >= 0.0 && config_.steering.max_cio_db >= 0.0,
          "Fleet: steering step/max_cio must be >= 0");
  expects(config_.steering.util_deadband >= 0.0,
          "Fleet: steering util_deadband must be >= 0");
  expects(config_.bandwidth_hz > 0.0, "Fleet: bandwidth_hz must be positive");
  // Validate the fault plan eagerly (same contract as the epoch pipeline).
  sim::FaultInjector probe(config_.faults, 0);
  (void)probe;
}

std::size_t Fleet::add_cell(geo::Vec3 position) {
  cell_pos_.push_back(position);
  cio_db_.push_back(0.0);
  util_.push_back(0.0);
  sag_db_.push_back(0.0);
  return cell_pos_.size() - 1;
}

std::size_t Fleet::add_ue(geo::Vec3 position, const lte::TrafficSpec& traffic) {
  ue_pos_.push_back(position);
  ue_spec_.push_back(traffic);
  serving_.push_back(-1);
  a3_target_.push_back(-1);
  a3_count_.push_back(0);
  last_cell_.push_back(-1);
  last_ho_epoch_.push_back(std::numeric_limits<std::int32_t>::min() / 2);
  ue_load_bits_.push_back(0.0);
  sinr_db_.push_back(0.0);
  ue_served_bits_.push_back(0.0);
  return ue_pos_.size() - 1;
}

void Fleet::set_ue_traffic(std::size_t ue, const lte::TrafficSpec& traffic) {
  expects(ue < ue_spec_.size(), "Fleet::set_ue_traffic: ue out of range");
  ue_spec_[ue] = traffic;
}

void Fleet::set_ue_position(std::size_t ue, geo::Vec3 position) {
  expects(ue < ue_pos_.size(), "Fleet::set_ue_position: ue out of range");
  ue_pos_[ue] = position;
}

void Fleet::set_cell_position(std::size_t cell, geo::Vec3 position) {
  expects(cell < cell_pos_.size(), "Fleet::set_cell_position: cell out of range");
  cell_pos_[cell] = position;
}

void Fleet::phase_measure(double fault_t) {
  SKYRAN_TRACE_SPAN("fleet.measure");
  const std::size_t n = ue_pos_.size();
  const std::size_t c_count = cell_pos_.size();
  const sim::FaultInjector injector(config_.faults, static_cast<std::uint64_t>(epoch_));
  for (std::size_t c = 0; c < c_count; ++c)
    sag_db_[c] = injector.active()
                     ? injector.cell_snr_sag_db(fault_t, static_cast<std::int32_t>(c))
                     : 0.0;
  const double eirp_dbm =
      config_.cell_tx_power_dbm + config_.cell_antenna_gain_dbi + config_.ue_antenna_gain_dbi;
  rsrp_dbm_.resize(n * c_count);
  core::parallel_for(n, [&](std::size_t i) {
    const geo::Vec3 ue = ue_pos_[i];
    double* row = rsrp_dbm_.data() + i * c_count;
    for (std::size_t c = 0; c < c_count; ++c)
      row[c] = eirp_dbm - channel_->path_loss_db(cell_pos_[c], ue) - sag_db_[c];
  });
}

void Fleet::phase_decide() {
  SKYRAN_TRACE_SPAN("fleet.decide");
  const std::size_t n = ue_pos_.size();
  const std::size_t c_count = cell_pos_.size();
  const double enter_db = config_.a3.offset_db + config_.a3.hysteresis_db;
  const int ttt = config_.a3.time_to_trigger_epochs;
  pending_.assign(n, 0);
  core::parallel_for(n, [&](std::size_t i) {
    const double* row = rsrp_dbm_.data() + i * c_count;
    const std::int32_t s = serving_[i];
    if (s < 0) {
      // Unattached: pick the strongest CIO-biased cell (ties -> lowest index).
      std::int32_t best = 0;
      double best_m = row[0] + cio_db_[0];
      for (std::size_t c = 1; c < c_count; ++c) {
        const double m = row[c] + cio_db_[c];
        if (m > best_m) {
          best = static_cast<std::int32_t>(c);
          best_m = m;
        }
      }
      a3_target_[i] = best;
      pending_[i] = 3;
      return;
    }
    std::int32_t best = -1;
    double best_m = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < c_count; ++c) {
      if (static_cast<std::int32_t>(c) == s) continue;
      const double m = row[c] + cio_db_[c];
      if (m > best_m) {
        best = static_cast<std::int32_t>(c);
        best_m = m;
      }
    }
    const double serving_m = row[s] + cio_db_[s];
    if (best < 0 || best_m <= serving_m + enter_db) {
      a3_target_[i] = -1;
      a3_count_[i] = 0;
      return;
    }
    // A3 condition holds toward `best`: advance (or restart) time-to-trigger.
    a3_count_[i] = (a3_target_[i] == best) ? a3_count_[i] + 1 : 1;
    a3_target_[i] = best;
    pending_[i] = (a3_count_[i] >= ttt) ? 2 : 1;
  });
}

void Fleet::phase_apply(FleetEpochReport& report) {
  SKYRAN_TRACE_SPAN("fleet.apply");
  const std::size_t n = ue_pos_.size();
  const int window = config_.a3.pingpong_window_epochs;
  for (std::size_t i = 0; i < n; ++i) {
    switch (pending_[i]) {
      case 3: {
        serving_[i] = a3_target_[i];
        a3_target_[i] = -1;
        a3_count_[i] = 0;
        ++report.attach_events;
        break;
      }
      case 1:
        ++report.ho_attempts;
        break;
      case 2: {
        ++report.ho_attempts;
        ++report.ho_successes;
        const std::int32_t from = serving_[i];
        const std::int32_t to = a3_target_[i];
        const bool pingpong =
            to == last_cell_[i] && epoch_ - last_ho_epoch_[i] <= window;
        if (pingpong) ++report.ho_pingpongs;
        if (ho_log_.size() < kMaxHandoverLog)
          ho_log_.push_back({epoch_, static_cast<std::uint32_t>(i), from, to, pingpong});
        else
          ++ho_log_dropped_;
        last_cell_[i] = from;
        last_ho_epoch_[i] = epoch_;
        serving_[i] = to;
        a3_target_[i] = -1;
        a3_count_[i] = 0;
        break;
      }
      default:
        break;
    }
  }
  total_attaches_ += report.attach_events;
  total_attempts_ += report.ho_attempts;
  total_successes_ += report.ho_successes;
  total_pingpongs_ += report.ho_pingpongs;
}

void Fleet::phase_sinr() {
  SKYRAN_TRACE_SPAN("fleet.sinr");
  const std::size_t n = ue_pos_.size();
  const std::size_t c_count = cell_pos_.size();
  const double noise_mw =
      rf::dbm_to_milliwatt(rf::noise_floor_dbm(config_.bandwidth_hz, config_.ue_noise_figure_db));
  core::parallel_for(n, [&](std::size_t i) {
    const double* row = rsrp_dbm_.data() + i * c_count;
    const std::int32_t s = serving_[i];
    const double signal_mw = rf::dbm_to_milliwatt(row[s]);
    double interference_mw = 0.0;
    for (std::size_t c = 0; c < c_count; ++c)
      if (static_cast<std::int32_t>(c) != s) interference_mw += rf::dbm_to_milliwatt(row[c]);
    sinr_db_[i] = 10.0 * std::log10(signal_mw / (noise_mw + interference_mw));
  });
}

void Fleet::phase_serve(FleetEpochReport& report) {
  SKYRAN_TRACE_SPAN("fleet.serve");
  const std::size_t n = ue_pos_.size();
  const std::size_t c_count = cell_pos_.size();

  // Group UEs by serving cell (counting sort -> ascending UE order per cell).
  cell_begin_.assign(c_count + 1, 0);
  for (std::size_t i = 0; i < n; ++i) ++cell_begin_[static_cast<std::size_t>(serving_[i]) + 1];
  for (std::size_t c = 0; c < c_count; ++c) cell_begin_[c + 1] += cell_begin_[c];
  members_.resize(n);
  std::vector<std::uint32_t> cursor(cell_begin_.begin(), cell_begin_.end() - 1);
  for (std::size_t i = 0; i < n; ++i)
    members_[cursor[static_cast<std::size_t>(serving_[i])]++] = static_cast<std::uint32_t>(i);

  report.cell_prb_util.assign(c_count, 0.0);
  report.cell_ues.assign(c_count, 0);
  ue_served_bits_.assign(n, 0.0);
  const double epoch_seconds = config_.ttis_per_epoch * lte::kTtiSeconds;
  for (std::size_t c = 0; c < c_count; ++c) {
    const std::uint32_t begin = cell_begin_[c];
    const std::uint32_t end = cell_begin_[c + 1];
    report.cell_ues[c] = end - begin;
    if (begin == end) {
      util_[c] = 0.0;
      continue;
    }
    lte::TrafficPlaneConfig plane_cfg = config_.plane;
    plane_cfg.seed = mix64(config_.seed ^ mix64(static_cast<std::uint64_t>(epoch_) ^
                                                mix64(0x5eedULL + c)));
    lte::TrafficPlane plane(plane_cfg);
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t ue = members_[k];
      plane.add_ue(ue + 1, sinr_db_[ue], ue_spec_[ue]);
    }
    plane.run_ttis(config_.ttis_per_epoch);
    const int prb_total = plane.last_tti().prb_total;
    const lte::TrafficPlaneReport cell_report = plane.report();
    // Demand-based PRB utilization: the fraction of the grid the members'
    // offered traffic NEEDS at their channel quality. Granted-PRB counting
    // is useless as a load signal here — the proportional-fair scheduler
    // spreads the whole grid over any backlogged UE, so grants read ~100%
    // on a nearly idle cell. Demand/capacity is what a RIC steers on.
    const double grid_prbs =
        static_cast<double>(config_.ttis_per_epoch) * std::max(prb_total, 1);
    double needed_prbs = 0.0;
    for (std::uint32_t k = begin; k < end; ++k) {
      const std::uint32_t ue = members_[k];
      if (ue_spec_[ue].model == lte::TrafficModel::kFullBuffer) {
        needed_prbs = grid_prbs;  // infinite demand: the cell is saturated
        break;
      }
      const double rate_1prb = lte::cqi_efficiency(lte::snr_to_cqi(sinr_db_[ue])) *
                               lte::kPrbBandwidthHz * lte::kTtiSeconds *
                               (1.0 - lte::kL1OverheadFraction);
      if (rate_1prb <= 0.0) {
        needed_prbs = grid_prbs;  // out of CQI range: no rate, pure backlog
        break;
      }
      needed_prbs += plane.offered_bits(k - begin) / rate_1prb;
    }
    util_[c] = std::min(1.0, needed_prbs / grid_prbs);
    report.offered_bits += cell_report.offered_bits;
    report.served_bits += cell_report.served_bits;
    for (std::uint32_t k = begin; k < end; ++k) {
      ue_load_bits_[members_[k]] = plane.offered_bits(k - begin) + plane.served_bits(k - begin);
      ue_served_bits_[members_[k]] = plane.served_bits(k - begin);
    }
  }
  report.aggregate_throughput_bps = report.served_bits / epoch_seconds;
  total_served_bits_ += report.served_bits;

  double max_util = 0.0;
  double sum_util = 0.0;
  for (std::size_t c = 0; c < c_count; ++c) {
    report.cell_prb_util[c] = util_[c];
    max_util = std::max(max_util, util_[c]);
    sum_util += util_[c];
  }
  report.max_prb_util = max_util;
  report.mean_prb_util = c_count > 0 ? sum_util / static_cast<double>(c_count) : 0.0;
}

void Fleet::phase_steer(FleetEpochReport& report) {
  const SteeringConfig& s = config_.steering;
  if (!s.enabled || cell_pos_.size() < 2 || epoch_ % s.period_epochs != 0) return;
  // One gradient step on per-cell PRB utilization: the hottest cell sheds
  // (CIO down), the coolest attracts (CIO up). Ties break to the lowest
  // index; the deadband keeps a balanced fleet from oscillating.
  std::size_t hot = 0, cool = 0;
  for (std::size_t c = 1; c < util_.size(); ++c) {
    if (util_[c] > util_[hot]) hot = c;
    if (util_[c] < util_[cool]) cool = c;
  }
  if (util_[hot] - util_[cool] <= s.util_deadband) return;
  const double new_hot = std::max(cio_db_[hot] - s.step_db, -s.max_cio_db);
  const double new_cool = std::min(cio_db_[cool] + s.step_db, s.max_cio_db);
  int steps = 0;
  if (new_hot != cio_db_[hot]) {
    cio_db_[hot] = new_hot;
    ++steps;
  }
  if (new_cool != cio_db_[cool]) {
    cio_db_[cool] = new_cool;
    ++steps;
  }
  report.steering_steps = steps;
  total_steer_steps_ += static_cast<std::uint64_t>(steps);
}

FleetEpochReport Fleet::run_epoch() {
  SKYRAN_TRACE_SPAN("fleet.epoch");
  expects(!cell_pos_.empty(), "Fleet::run_epoch: add at least one cell first");
  core::ScopedWorkers scoped(config_.threads);
  ++epoch_;
  FleetEpochReport report;
  report.epoch = epoch_;

  phase_measure(/*fault_t=*/static_cast<double>(epoch_ - 1));
  phase_decide();
  phase_apply(report);
  phase_sinr();
  phase_serve(report);
  phase_steer(report);
  sim::crash_point("epoch.steer");

  const std::size_t n = ue_pos_.size();
  if (n > 0) {
    double min_sinr = sinr_db_[0];
    double sum_sinr = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_sinr = std::min(min_sinr, sinr_db_[i]);
      sum_sinr += sinr_db_[i];
    }
    report.min_sinr_db = min_sinr;
    report.mean_sinr_db = sum_sinr / static_cast<double>(n);
  }

  SKYRAN_GAUGE_SET("fleet.cells", static_cast<double>(cell_pos_.size()));
  SKYRAN_GAUGE_SET("fleet.ues", static_cast<double>(n));
  SKYRAN_GAUGE_SET("fleet.prb_util_max", report.max_prb_util);
  SKYRAN_COUNTER_INC("fleet.epochs");
  SKYRAN_COUNTER_ADD("fleet.attaches", report.attach_events);
  SKYRAN_COUNTER_ADD("fleet.steer.steps", static_cast<std::uint64_t>(report.steering_steps));
  SKYRAN_COUNTER_ADD("ho.attempts", report.ho_attempts);
  SKYRAN_COUNTER_ADD("ho.successes", report.ho_successes);
  SKYRAN_COUNTER_ADD("ho.pingpongs", report.ho_pingpongs);
  for (std::size_t c = 0; c < cell_pos_.size(); ++c)
    SKYRAN_HISTOGRAM_OBSERVE("fleet.prb_util", util_[c]);
  return report;
}

PlacementRefresh Fleet::refresh_placement(const rem::RemBank& bank,
                                          const terrain::Terrain& terrain) {
  SKYRAN_TRACE_SPAN("fleet.place");
  expects(epoch_ >= 1, "Fleet::refresh_placement: run at least one epoch first");
  expects(!cell_pos_.empty(), "Fleet::refresh_placement: fleet has no cells");
  expects(bank.estimates_current(),
          "Fleet::refresh_placement: bank estimates are stale (call estimate_all)");

  const std::size_t c_count = cell_pos_.size();
  const int cell = (epoch_ - 1) % static_cast<int>(c_count);
  PlacementRefresh out;
  out.cell = cell;
  out.position = {cell_pos_[cell].x, cell_pos_[cell].y};

  // Assign every REM pseudo-UE to its strongest cell (unbiased RSRP: the
  // geometric association, independent of the steering CIOs).
  const double eirp_dbm =
      config_.cell_tx_power_dbm + config_.cell_antenna_gain_dbi + config_.ue_antenna_gain_dbi;
  std::vector<std::size_t> points;
  for (std::size_t p = 0; p < bank.ue_count(); ++p) {
    const geo::Vec3 pos = bank.ue_position(p);
    std::size_t best = 0;
    double best_dbm = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < c_count; ++c) {
      const double dbm = eirp_dbm - channel_->path_loss_db(cell_pos_[c], pos);
      if (dbm > best_dbm) {
        best = c;
        best_dbm = dbm;
      }
    }
    if (best == static_cast<std::size_t>(cell)) points.push_back(p);
  }
  if (points.empty()) return out;
  out.points = static_cast<int>(points.size());

  // Per-point load: each of this cell's UEs contributes its last-epoch
  // offered+served bits to the nearest of the cell's points.
  std::vector<double> point_load(points.size(), 0.0);
  for (std::size_t i = 0; i < ue_pos_.size(); ++i) {
    if (serving_[i] != cell) continue;
    std::size_t nearest = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < points.size(); ++k) {
      const geo::Vec3 pp = bank.ue_position(points[k]);
      const double dx = pp.x - ue_pos_[i].x;
      const double dy = pp.y - ue_pos_[i].y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < best_d2) {
        nearest = k;
        best_d2 = d2;
      }
    }
    point_load[nearest] += ue_load_bits_[i];
  }
  double mean_load = 0.0;
  for (const double l : point_load) mean_load += l;
  mean_load /= static_cast<double>(point_load.size());

  // Max-min SINR-under-load: copy each point's REM with a penalty of
  // 10*log10(relative load) subtracted, then reuse the max-min scorer — a
  // point carrying 10x the mean load needs 10 dB more headroom to tie.
  std::vector<geo::Grid2D<double>> grids;
  grids.reserve(points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    geo::Grid2D<double> g = bank.estimate_grid(points[k]);
    if (mean_load > 0.0) {
      const double penalty_db = 10.0 * std::log10(std::max(1.0, point_load[k] / mean_load));
      if (penalty_db > 0.0)
        for (double& v : g.raw()) v -= penalty_db;
    }
    grids.push_back(std::move(g));
  }
  const rem::Placement placement = rem::choose_placement_feasible(
      std::span<const geo::Grid2D<double>>(grids), terrain, bank.altitude_m(),
      rem::PlacementObjective::kMaxMin);
  cell_pos_[cell] = {placement.position.x, placement.position.y, bank.altitude_m()};
  out.position = placement.position;
  out.objective_db = placement.objective_snr_db;
  ++total_refreshes_;
  SKYRAN_COUNTER_INC("fleet.placement.refreshes");
  return out;
}

std::uint64_t Fleet::state_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  hash_pod(h, config_.seed);
  hash_pod(h, static_cast<std::uint64_t>(cell_pos_.size()));
  hash_pod(h, static_cast<std::uint64_t>(ue_pos_.size()));
  hash_pod(h, epoch_);
  hash_vec(h, cell_pos_);
  hash_vec(h, cio_db_);
  hash_vec(h, util_);
  hash_vec(h, ue_pos_);
  hash_vec(h, serving_);
  hash_vec(h, a3_target_);
  hash_vec(h, a3_count_);
  hash_vec(h, last_cell_);
  hash_vec(h, last_ho_epoch_);
  hash_vec(h, ue_load_bits_);
  hash_pod(h, total_attaches_);
  hash_pod(h, total_attempts_);
  hash_pod(h, total_successes_);
  hash_pod(h, total_pingpongs_);
  hash_pod(h, total_steer_steps_);
  hash_pod(h, total_refreshes_);
  hash_pod(h, ho_log_dropped_);
  hash_pod(h, total_served_bits_);
  return h;
}

void Fleet::save(std::ostream& os) const {
  geo::BinWriter w;
  w.pod(config_.seed);
  w.pod(static_cast<std::uint64_t>(cell_pos_.size()));
  w.pod(static_cast<std::uint64_t>(ue_pos_.size()));
  w.pod(epoch_);
  for (std::size_t c = 0; c < cell_pos_.size(); ++c) {
    w.pod(cell_pos_[c]);
    w.pod(cio_db_[c]);
    w.pod(util_[c]);
  }
  for (std::size_t i = 0; i < ue_pos_.size(); ++i) {
    w.pod(ue_pos_[i]);
    w.pod(serving_[i]);
    w.pod(a3_target_[i]);
    w.pod(a3_count_[i]);
    w.pod(last_cell_[i]);
    w.pod(last_ho_epoch_[i]);
    w.pod(ue_load_bits_[i]);
  }
  w.pod(total_attaches_);
  w.pod(total_attempts_);
  w.pod(total_successes_);
  w.pod(total_pingpongs_);
  w.pod(total_steer_steps_);
  w.pod(total_refreshes_);
  w.pod(ho_log_dropped_);
  w.pod(total_served_bits_);
  geo::write_envelope(os, kMagic, kVersion, w);
}

void Fleet::restore(std::istream& is) {
  const geo::Envelope env = geo::read_envelope(is, kMagic, kVersion, kVersion, "Fleet::restore");
  geo::BinReader r(env.payload);
  const auto seed = r.pod<std::uint64_t>();
  const auto n_cells = r.pod<std::uint64_t>();
  const auto n_ues = r.pod<std::uint64_t>();
  if (seed != config_.seed || n_cells != cell_pos_.size() || n_ues != ue_pos_.size())
    throw FleetStateMismatch(
        "Fleet::restore: saved state belongs to a different fleet "
        "(seed or cell/UE population mismatch)");
  epoch_ = r.pod<int>();
  for (std::size_t c = 0; c < cell_pos_.size(); ++c) {
    cell_pos_[c] = r.pod<geo::Vec3>();
    cio_db_[c] = r.pod<double>();
    util_[c] = r.pod<double>();
  }
  for (std::size_t i = 0; i < ue_pos_.size(); ++i) {
    ue_pos_[i] = r.pod<geo::Vec3>();
    serving_[i] = r.pod<std::int32_t>();
    a3_target_[i] = r.pod<std::int32_t>();
    a3_count_[i] = r.pod<std::int32_t>();
    last_cell_[i] = r.pod<std::int32_t>();
    last_ho_epoch_[i] = r.pod<std::int32_t>();
    ue_load_bits_[i] = r.pod<double>();
  }
  total_attaches_ = r.pod<std::uint64_t>();
  total_attempts_ = r.pod<std::uint64_t>();
  total_successes_ = r.pod<std::uint64_t>();
  total_pingpongs_ = r.pod<std::uint64_t>();
  total_steer_steps_ = r.pod<std::uint64_t>();
  total_refreshes_ = r.pod<std::uint64_t>();
  ho_log_dropped_ = r.pod<std::uint64_t>();
  total_served_bits_ = r.pod<double>();
  if (!r.done()) throw FleetStateMismatch("Fleet::restore: trailing bytes after last field");
}

}  // namespace skyran::fleet
