// fleet::Fleet — a multi-cell UAV RAN over one shared ground area: tens of
// UAV cells sharing a co-channel carrier, each serving its attached UEs
// through an lte::TrafficPlane, with inter-cell interference (SINR, not
// per-cell SNR), A3-style handover and a RIC-flavored closed control loop
// that steers traffic between cells by biasing cell-individual offsets
// (CIO) toward the least-loaded cell.
//
// One fleet epoch (run_epoch) is five phases:
//
//   measure  (parallel over UEs)  DL RSRP from every cell into an
//                                 n_ues x n_cells SoA slab (path loss via
//                                 the shared ChannelModel + per-cell fault
//                                 sag from the FaultPlan)
//   decide   (parallel over UEs)  A3 entry check + time-to-trigger state
//                                 per UE (disjoint per-UE slabs)
//   apply    (serial, UE order)   attachment + handover execution, event
//                                 log, ping-pong detection
//   sinr     (parallel over UEs)  serving power over noise + sum of
//                                 non-serving co-channel powers
//   serve    (serial over cells)  per-cell TrafficPlane rebuilt from the
//                                 epoch's membership, run ttis_per_epoch
//                                 TTIs; per-cell PRB utilization is
//                                 demand-based (PRBs the offered traffic
//                                 needs at the members' CQI over the grid),
//                                 not granted PRBs — the PF scheduler
//                                 spreads the whole grid over any backlog
//
// plus, every steering.period_epochs epochs, one gradient step on the
// per-cell PRB utilization: the most-loaded cell's CIO steps down and the
// least-loaded cell's CIO steps up (clamped to +-max_cio_db), so boundary
// UEs drain from hot cells at the next A3 evaluation. The epoch ends at the
// sim::crash_point("epoch.steer") kill point.
//
// Determinism contract (same as the rest of the repo): all parallel phases
// write disjoint per-UE slots, chunk boundaries depend only on the range
// length, all randomness is counter-based — serial and N-worker runs are
// bit-for-bit identical, enforced by state_hash() in tests/test_fleet.cpp
// and in-bench by bench/ablation_fleet. state_hash() covers exactly the
// state save() persists; restore() into an identically constructed fleet
// resumes bit-identically (tests/test_fleet.cpp round-trip + kill-at-phase
// harness).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <vector>

#include "geo/vec.hpp"
#include "lte/traffic_plane.hpp"
#include "rf/channel.hpp"
#include "sim/faults.hpp"
#include "terrain/terrain.hpp"

namespace skyran::rem {
class RemBank;
}

namespace skyran::fleet {

/// Stream ended early / bad magic / CRC mismatch map to geo::binio's typed
/// errors; this one is for "valid envelope, wrong fleet": restore() into a
/// fleet whose cell/UE population does not match the saved state.
struct FleetStateMismatch : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// A3 handover event (3GPP 36.331 A3: neighbor becomes offset-better than
/// serving): the neighbor's biased RSRP must exceed the serving cell's by
/// offset + hysteresis for time_to_trigger consecutive epochs.
struct A3Config {
  double offset_db = 2.0;
  double hysteresis_db = 1.0;
  /// Consecutive epochs the A3 condition must hold before the handover
  /// executes (>= 1; 1 = execute in the epoch the condition first holds).
  int time_to_trigger_epochs = 2;
  /// A handover back to the previous serving cell within this many epochs
  /// of the last handover counts as a ping-pong.
  int pingpong_window_epochs = 4;
};

/// Closed-loop traffic steering: every period_epochs epochs, one gradient
/// step on per-cell PRB utilization — the most-loaded cell sheds (CIO down)
/// and the least-loaded cell attracts (CIO up), both clamped to
/// +-max_cio_db. No step fires while the utilization spread is inside
/// util_deadband (stability: see docs/FLEET.md, "Steering control law").
struct SteeringConfig {
  bool enabled = true;
  int period_epochs = 2;
  double step_db = 1.0;
  double max_cio_db = 6.0;
  double util_deadband = 0.05;
};

struct FleetConfig {
  /// Template for every cell's per-epoch TrafficPlane; `seed` inside it is
  /// ignored (the fleet derives a per-(cell, epoch) plane seed).
  lte::TrafficPlaneConfig plane{};
  /// Downlink budget: cell EIRP and the UE-side noise floor.
  double cell_tx_power_dbm = 36.0;
  double cell_antenna_gain_dbi = 5.0;
  double ue_antenna_gain_dbi = 0.0;
  double bandwidth_hz = 10e6;
  double ue_noise_figure_db = 9.0;
  /// TTIs each cell's traffic plane advances per fleet epoch.
  int ttis_per_epoch = 200;
  A3Config a3{};
  SteeringConfig steering{};
  /// Per-cell fault scoping: kSrsSnrSag windows with FaultWindow::cell set
  /// sag only that cell's DL RSRP (time base: t = epoch - 1).
  sim::FaultPlan faults{};
  std::uint64_t seed = 1;
  /// Worker lanes for the parallel phases (0 = inherit the process-wide
  /// resolution; 1 = fully serial). Bit-identical either way.
  int threads = 0;
};

/// One executed handover (or logged event), emitted in UE order within an
/// epoch. The in-memory log is bounded (kMaxHandoverLog); overflow is
/// counted, never silently dropped.
struct HandoverEvent {
  std::int32_t epoch = 0;
  std::uint32_t ue = 0;
  std::int32_t from = -1;
  std::int32_t to = -1;
  bool pingpong = false;
};

/// Per-epoch outcome. Every field is a deterministic function of
/// (config, population, epoch) — bit-identical across worker counts.
struct FleetEpochReport {
  int epoch = 0;

  // Mobility-plane events, this epoch.
  std::uint64_t attach_events = 0;  ///< initial attachments executed
  std::uint64_t ho_attempts = 0;    ///< UE-epochs with the A3 condition true
  std::uint64_t ho_successes = 0;   ///< handovers executed (TTT expired)
  std::uint64_t ho_pingpongs = 0;   ///< successes bouncing back within the window
  int steering_steps = 0;           ///< CIO adjustments applied this epoch

  // Radio plane.
  double min_sinr_db = 0.0;
  double mean_sinr_db = 0.0;

  // Traffic plane, aggregated over cells.
  double offered_bits = 0.0;  ///< arrivals (full-buffer UEs excluded)
  double served_bits = 0.0;
  double aggregate_throughput_bps = 0.0;
  double max_prb_util = 0.0;   ///< hottest cell's PRB utilization in [0, 1]
  double mean_prb_util = 0.0;
  std::vector<double> cell_prb_util;     ///< per cell, [0, 1]
  std::vector<std::uint32_t> cell_ues;   ///< members per cell after apply
};

/// Outcome of one staggered placement refresh (see refresh_placement).
struct PlacementRefresh {
  int cell = -1;          ///< cell refreshed; -1 when the fleet is empty
  geo::Vec2 position{};   ///< chosen hover position (== old xy when points == 0)
  double objective_db = 0.0;  ///< max-min load-penalized SNR at the choice
  int points = 0;         ///< REM pseudo-UEs scored for this cell
};

class Fleet {
 public:
  /// `channel` is the shared path-loss oracle (borrowed; must outlive the
  /// fleet). A cheap model (rf::FsplChannel) keeps the n_ues x n_cells
  /// measure phase in budget at 10^5 UEs.
  Fleet(FleetConfig config, const rf::ChannelModel& channel);

  /// Add a UAV cell hovering at `position`. Returns the cell index.
  std::size_t add_cell(geo::Vec3 position);

  /// Add a UE at `position` with its traffic model. Returns the UE index.
  /// UEs start unattached; the next run_epoch attaches them to the
  /// strongest (CIO-biased) cell.
  std::size_t add_ue(geo::Vec3 position, const lte::TrafficSpec& traffic);

  /// Move a UE (mobility driver hook). Takes effect at the next epoch's
  /// measure phase.
  void set_ue_position(std::size_t ue, geo::Vec3 position);

  /// Replace a UE's traffic model (scenario driver hook: diurnal load
  /// scaling, flash crowds). Takes effect at the next epoch's serve phase.
  /// Specs are NOT persisted by save(): a restoring driver that mutates
  /// specs must re-apply them deterministically before resuming (the
  /// scenario::Campaign derives them from (config, hour)).
  void set_ue_traffic(std::size_t ue, const lte::TrafficSpec& traffic);

  /// Move a cell (external placement driver hook).
  void set_cell_position(std::size_t cell, geo::Vec3 position);

  /// Run one fleet epoch (all phases, then the steering step when due).
  FleetEpochReport run_epoch();

  /// Staggered joint placement: epoch e refreshed cell (e-1) % cell_count.
  /// Each REM pseudo-UE in `bank` is assigned to its strongest cell; the
  /// refreshed cell's assigned maps are copied with a per-point load penalty
  /// subtracted (10*log10 of the point's relative served+offered load, so a
  /// point carrying 10x the mean load needs 10 dB more SNR to score equal)
  /// and scored by the existing max-min placement scorer — max-min
  /// SINR-under-load over the shared RemBank. Requires
  /// bank.estimates_current() and at least one completed epoch.
  PlacementRefresh refresh_placement(const rem::RemBank& bank,
                                     const terrain::Terrain& terrain);

  std::size_t cell_count() const { return cell_pos_.size(); }
  std::size_t ue_count() const { return ue_pos_.size(); }
  int epochs_run() const { return epoch_; }
  geo::Vec3 cell_position(std::size_t cell) const { return cell_pos_[cell]; }
  geo::Vec3 ue_position(std::size_t ue) const { return ue_pos_[ue]; }
  /// Serving cell index, or -1 before the UE's first attachment.
  std::int32_t serving_cell(std::size_t ue) const { return serving_[ue]; }
  /// Last epoch's SINR (dB) for `ue`; meaningless before the first epoch.
  double sinr_db(std::size_t ue) const { return sinr_db_[ue]; }
  double cio_db(std::size_t cell) const { return cio_db_[cell]; }
  /// Last epoch's demand-based PRB utilization for `cell` in [0, 1]: the
  /// fraction of the TTI x PRB grid the members' offered traffic needs at
  /// their channel quality (1.0 = saturated; full-buffer members pin it).
  double prb_utilization(std::size_t cell) const { return util_[cell]; }
  /// Bits delivered to `ue` by the last epoch's serve phase (per-epoch
  /// scratch, not cumulative); meaningless before the first epoch.
  double ue_served_bits(std::size_t ue) const { return ue_served_bits_[ue]; }

  // Cumulative counters (monotonic across epochs; persisted).
  std::uint64_t total_attaches() const { return total_attaches_; }
  std::uint64_t total_ho_attempts() const { return total_attempts_; }
  std::uint64_t total_handovers() const { return total_successes_; }
  std::uint64_t total_pingpongs() const { return total_pingpongs_; }
  std::uint64_t total_steering_steps() const { return total_steer_steps_; }
  std::uint64_t total_placement_refreshes() const { return total_refreshes_; }

  /// Bounded in-memory handover log (not persisted; the slab state that
  /// drives future decisions — last_cell/last_ho_epoch — is).
  static constexpr std::size_t kMaxHandoverLog = 1u << 16;
  const std::vector<HandoverEvent>& handover_log() const { return ho_log_; }
  std::uint64_t handover_log_dropped() const { return ho_log_dropped_; }

  /// FNV-1a over exactly the state save() persists: two fleets resume
  /// bit-identically iff their hashes match.
  std::uint64_t state_hash() const;

  /// Serialize the dynamic state (positions, attachments, A3/TTT state,
  /// CIOs, utilizations, per-UE load, counters) as one CRC-guarded
  /// geo::binio envelope (magic "SKYF").
  void save(std::ostream& os) const;

  /// Restore into a fleet constructed with the same config and the same
  /// add_cell/add_ue sequence. Throws geo::BinTruncatedError /
  /// BinCorruptError / BinVersionError on a bad stream and
  /// FleetStateMismatch when the populations disagree.
  void restore(std::istream& is);

 private:
  void phase_measure(double fault_t);
  void phase_decide();
  void phase_apply(FleetEpochReport& report);
  void phase_sinr();
  void phase_serve(FleetEpochReport& report);
  void phase_steer(FleetEpochReport& report);

  FleetConfig config_;
  const rf::ChannelModel* channel_;
  int epoch_ = 0;

  // Cell slabs.
  std::vector<geo::Vec3> cell_pos_;
  std::vector<double> cio_db_;
  std::vector<double> util_;    ///< last epoch's demand-based PRB utilization
  std::vector<double> sag_db_;  ///< scratch: this epoch's per-cell fault sag

  // UE slabs (persistent).
  std::vector<geo::Vec3> ue_pos_;
  std::vector<lte::TrafficSpec> ue_spec_;
  std::vector<std::int32_t> serving_;
  std::vector<std::int32_t> a3_target_;   ///< TTT candidate, -1 when idle
  std::vector<std::int32_t> a3_count_;    ///< consecutive epochs condition held
  std::vector<std::int32_t> last_cell_;   ///< previous serving cell, -1 never
  std::vector<std::int32_t> last_ho_epoch_;
  std::vector<double> ue_load_bits_;      ///< served+offered bits, last epoch

  // UE slabs (scratch, rebuilt every epoch; excluded from hash/save).
  std::vector<double> rsrp_dbm_;          ///< n_ues x n_cells, UE-major
  std::vector<double> sinr_db_;
  std::vector<double> ue_served_bits_;    ///< last serve phase, per UE
  std::vector<std::uint8_t> pending_;     ///< 0 none, 1 in-TTT, 2 execute, 3 attach

  // Serve-phase scratch.
  std::vector<std::uint32_t> members_;        ///< UE indices grouped by cell
  std::vector<std::uint32_t> cell_begin_;     ///< n_cells + 1 offsets into members_

  // Cumulative counters (persisted).
  std::uint64_t total_attaches_ = 0;
  std::uint64_t total_attempts_ = 0;
  std::uint64_t total_successes_ = 0;
  std::uint64_t total_pingpongs_ = 0;
  std::uint64_t total_steer_steps_ = 0;
  std::uint64_t total_refreshes_ = 0;
  double total_served_bits_ = 0.0;

  std::vector<HandoverEvent> ho_log_;
  std::uint64_t ho_log_dropped_ = 0;
};

}  // namespace skyran::fleet
