// Continuous-time mission timeline: the paper's Fig. 10 loop run as an
// ongoing operation. UEs move continuously; SkyRAN serves from its placement
// and re-runs an epoch whenever the Sec 3.5 trigger fires; service during
// measurement flights is degraded by the probing penalty (Sec 2.5). The
// result is an event log plus time-weighted service statistics - the number
// an operator actually cares about.
#pragma once

#include <string>
#include <vector>

#include "core/skyran.hpp"
#include "mobility/model.hpp"
#include "sim/world.hpp"

namespace skyran::core {

struct TimelineConfig {
  double duration_s = 1800.0;    ///< mission length
  double check_period_s = 10.0;  ///< trigger evaluation cadence
  /// Served fraction of hover throughput while the UAV is flying a
  /// localization/measurement trajectory (Sec 2.5; the ablation measures
  /// ~0.6 at the default CQI loop).
  double probing_service_factor = 0.6;
  /// Stop triggering epochs once the battery reserve is reached.
  double battery_floor_fraction = 0.25;
};

struct TimelineEvent {
  enum class Kind { kEpoch, kTrigger, kBatteryHold };
  Kind kind = Kind::kEpoch;
  double time_s = 0.0;
  std::string detail;
};

struct TimelineResult {
  std::vector<TimelineEvent> events;
  int epochs_run = 0;
  double total_flight_m = 0.0;
  /// Time-weighted mean of served/at-placement throughput (probing windows
  /// count at the degraded factor).
  double mean_service_ratio = 0.0;
  /// (time, instantaneous ratio) samples at the check cadence.
  std::vector<std::pair<double, double>> ratio_series;
  double battery_remaining_fraction = 1.0;
};

/// Run a mission: `skyran` must not have run any epoch yet (the timeline
/// owns the first one). `mobility` advances the world's UEs.
TimelineResult run_timeline(SkyRan& skyran, sim::World& world,
                            mobility::MobilityModel& mobility, const TimelineConfig& config);

}  // namespace skyran::core
