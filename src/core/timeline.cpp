#include "core/timeline.hpp"

#include <algorithm>

#include "geo/contract.hpp"
#include "obs/obs.hpp"
#include "sim/table.hpp"

namespace skyran::core {

TimelineResult run_timeline(SkyRan& skyran, sim::World& world,
                            mobility::MobilityModel& mobility, const TimelineConfig& config) {
  expects(config.duration_s > 0.0, "run_timeline: duration must be positive");
  expects(config.check_period_s > 0.0, "run_timeline: check period must be positive");
  expects(config.probing_service_factor >= 0.0 && config.probing_service_factor <= 1.0,
          "run_timeline: probing factor must be in [0,1]");
  expects(skyran.epochs_run() == 0, "run_timeline: SkyRan must start fresh");

  TimelineResult result;
  double now = 0.0;
  double ratio_time_integral = 0.0;

  const auto run_epoch = [&] {
    const EpochReport r = skyran.run_epoch();
    result.events.push_back({TimelineEvent::Kind::kEpoch, now,
                             "epoch " + std::to_string(r.epoch) + ": flew " +
                                 sim::Table::num(r.total_flight_m, 0) + " m in " +
                                 sim::Table::num(r.flight_time_s, 0) + " s"});
    ++result.epochs_run;
    result.total_flight_m += r.total_flight_m;
    // Time passes while flying; UEs keep moving and service is degraded.
    mobility.advance(r.flight_time_s);
    world.ue_positions() = mobility.positions();
    ratio_time_integral += config.probing_service_factor * r.flight_time_s;
    now += r.flight_time_s;
  };

  run_epoch();  // initial placement

  bool battery_hold = false;
  while (now < config.duration_s) {
    const double step = std::min(config.check_period_s, config.duration_s - now);
    mobility.advance(step);
    world.ue_positions() = mobility.positions();
    now += step;

    const double ratio = std::min(1.0, skyran.served_performance_ratio());
    ratio_time_integral += ratio * step;
    result.ratio_series.emplace_back(now, ratio);

    if (skyran.should_trigger_epoch()) {
      if (skyran.battery().remaining_fraction() <= config.battery_floor_fraction) {
        if (!battery_hold) {
          SKYRAN_COUNTER_INC("timeline.battery_holds");
          result.events.push_back({TimelineEvent::Kind::kBatteryHold, now,
                                   "trigger suppressed: battery at " +
                                       sim::Table::num(100.0 * skyran.battery().remaining_fraction(),
                                                  0) +
                                       " %"});
          battery_hold = true;
        }
        continue;
      }
      SKYRAN_COUNTER_INC("timeline.triggered_epochs");
      result.events.push_back({TimelineEvent::Kind::kTrigger, now,
                               "performance ratio " + sim::Table::num(ratio, 2) +
                                   " below threshold"});
      run_epoch();
    }
  }

  result.mean_service_ratio = now > 0.0 ? ratio_time_integral / now : 0.0;
  result.battery_remaining_fraction = skyran.battery().remaining_fraction();
  return result;
}

}  // namespace skyran::core
