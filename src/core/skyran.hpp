// SkyRan: the public facade running the paper's full epoch state machine
// (Fig. 10): (1) UE localization flight -> (2) optimal altitude (first epoch)
// -> (3) gradient/cluster/TSP measurement tour -> (4) REM update -> (5)
// max-min placement -> (6) serve until aggregate performance degrades past
// the trigger threshold, with REM and trajectory-history reuse across epochs.
#pragma once

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "core/config.hpp"
#include "geo/point_index.hpp"
#include "rem/bank.hpp"
#include "rem/store.hpp"
#include "sim/faults.hpp"
#include "sim/world.hpp"
#include "uav/battery.hpp"

namespace skyran::core {

struct Snapshot;

/// Everything that happened in one epoch.
struct EpochReport {
  int epoch = 0;
  std::vector<geo::Vec2> estimated_ue_positions;
  std::vector<bool> reused_rem;          ///< per UE: background came from the store
  double localization_flight_m = 0.0;
  double altitude_flight_m = 0.0;        ///< vertical descent during Step 5
  double measurement_flight_m = 0.0;
  double total_flight_m = 0.0;
  double flight_time_s = 0.0;            ///< all flying this epoch, at cruise speed
  double altitude_m = 0.0;
  geo::Vec2 position;                    ///< chosen operating position
  double predicted_objective_snr_db = 0.0;
  double served_mean_throughput_bps = 0.0;  ///< true mean throughput at placement
  int planned_k = 0;
  double info_to_cost = 0.0;
  int measurement_rounds = 0;            ///< tours actually flown this epoch
  /// Service-phase outcome: per-TTI traffic served from the placement
  /// (throughput/fairness/latency percentiles, HARQ accounting).
  lte::TrafficPlaneReport traffic;
  /// True when the epoch took a degraded path: a UE could not be localized
  /// (position fell back to the previous epoch's estimate or the area
  /// center), a tour was aborted mid-flight on battery, or the measurement
  /// loop stopped on the battery reserve before the budget was spent.
  bool degraded = false;
};

class SkyRan {
 public:
  /// `world` is the physical reality; SkyRan only senses it through
  /// simulated flights and PHY reports. UE positions inside the world may
  /// change between epochs (mobility); SkyRan re-localizes each epoch.
  SkyRan(sim::World& world, SkyRanConfig config, std::uint64_t seed);

  /// Run one full epoch. The UAV ends hovering at the chosen placement.
  EpochReport run_epoch();

  /// True mean throughput the UEs currently receive from the UAV's position.
  double current_mean_throughput_bps() const;

  /// Served throughput relative to the value recorded at placement time.
  double served_performance_ratio() const;

  /// Epoch trigger (Sec 3.5): performance dropped below (1 - threshold).
  bool should_trigger_epoch() const;

  geo::Vec2 position() const { return position_; }
  double altitude_m() const { return altitude_; }
  int epochs_run() const { return epoch_; }
  double total_flight_m() const { return total_flight_m_; }
  const rem::RemStore& rem_store() const { return store_; }
  /// The current epoch's REMs, bank-resident (one shared-geometry slab per
  /// UE). Valid after the first run_epoch().
  const rem::RemBank& rem_bank() const;
  const uav::Battery& battery() const { return battery_; }
  const SkyRanConfig& config() const { return config_; }

  /// Current per-UE REM estimates (interpolated full maps).
  std::vector<geo::Grid2D<double>> current_estimates() const;

  /// Capture the full between-epoch session state (epoch counter, RNG, REM
  /// store, trajectory histories, UAV pose/battery, last estimates, world UE
  /// positions). Only meaningful between run_epoch() calls.
  Snapshot snapshot() const;

  /// Restore state captured by snapshot(): run_epoch() then continues the
  /// session bit-identically to the uninterrupted run (see core/snapshot.hpp
  /// for the resume contract). The world's UE positions are restored too.
  /// Throws SnapshotMismatch when the snapshot's seed or resume-relevant
  /// config fingerprint differs from this instance's.
  void restore(const Snapshot& snapshot);

 private:
  std::vector<geo::Vec2> localize_ues(EpochReport& report);
  double ensure_altitude(const std::vector<geo::Vec2>& ue_estimates, EpochReport& report);
  /// Apply any battery-sag fault windows opened by epoch flight time `t`
  /// (each window fires once per epoch).
  void apply_battery_sag(double t);

  sim::World& world_;
  SkyRanConfig config_;
  std::uint64_t seed_;  ///< construction seed (service-phase derivation)
  std::mt19937_64 rng_;
  rf::FsplChannel fspl_;

  rem::RemStore store_;
  /// Trajectory history keyed by UE position (same radius-R reuse rule).
  struct HistoryEntry {
    geo::Vec2 position;
    rem::TrajectoryHistory trajectories;
  };
  std::vector<HistoryEntry> history_;
  /// history_ entries bucketed by position; ids are indices into history_.
  /// first_within matches the historical "first entry in insertion order
  /// within R" rule without the linear scan.
  geo::PointIndex history_index_;
  rem::TrajectoryHistory& history_for(geo::Vec2 ue_position);
  const rem::TrajectoryHistory* find_history(geo::Vec2 ue_position) const;

  /// Rebuilt at the top of every epoch (geometry can change with altitude).
  std::optional<rem::RemBank> bank_;
  geo::Vec2 position_;
  double altitude_ = 0.0;
  bool altitude_known_ = false;
  int epoch_ = 0;
  double total_flight_m_ = 0.0;
  double throughput_at_placement_bps_ = 0.0;
  uav::Battery battery_;

  /// Fault injection state, rebuilt at the top of every epoch from
  /// config_.faults (deterministic per epoch number).
  sim::FaultInjector faults_;
  /// Capacity fraction already sagged this epoch (battery windows fire once).
  double battery_sag_applied_ = 0.0;
  /// Set by the degraded paths while an epoch runs; copied into the report.
  bool epoch_degraded_ = false;
  /// Last epoch's final position estimates: the fallback for a UE whose
  /// localization fails this epoch (positional REM reuse then still works).
  std::vector<geo::Vec2> last_estimates_;
  /// Per-UE offered+served bits from the last service phase; feeds the
  /// load-weighted placement objective when
  /// ServicePhaseConfig::load_weighted_placement is set. Empty until the
  /// first service phase runs (the first placement is then pure-SNR).
  std::vector<double> last_ue_load_;
};

}  // namespace skyran::core
