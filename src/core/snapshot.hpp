// Crash-safe checkpoint/restore for the epoch state machine. A Snapshot is
// the full between-epoch session state — epoch counter, RNG, REM store,
// trajectory histories, UAV pose/battery, last UE estimates, the world's UE
// positions — serialized into one versioned, CRC-guarded binary envelope
// (shared geo::binio format). SnapshotManager persists generations of that
// envelope double-buffered: write-tmp -> fsync -> atomic-rename -> fsync
// directory, retaining the previous generation, so a SIGKILL at any byte of
// a write can never corrupt the last good checkpoint.
//
// Resume contract (verified by tests/test_snapshot.cpp and the kill-at-phase
// harness in tests/test_crash_recovery.cpp): a SkyRan restored from the
// checkpoint taken after epoch k, driven by the same deterministic campaign,
// produces bit-identical EpochReports for epochs k+1..N to the uninterrupted
// run — on any worker count. Stateful drivers (e.g. mobility models with
// internal RNG) must persist their own state alongside; the snapshot covers
// everything inside SkyRan plus the world's UE positions.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "geo/path.hpp"
#include "geo/vec.hpp"
#include "rem/store.hpp"

namespace skyran::core {

struct EpochReport;
struct SkyRanConfig;

/// Base of the typed rejection taxonomy. Every reason a checkpoint cannot
/// be used gets its own type so callers can distinguish "disk garbage" from
/// "wrong build" from "wrong session".
struct SnapshotError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// Stream ended early (torn write that escaped the rename discipline).
struct SnapshotTruncated : SnapshotError {
  using SnapshotError::SnapshotError;
};
/// Bad magic, CRC mismatch, or an embedded section that fails to parse.
struct SnapshotCorrupt : SnapshotError {
  using SnapshotError::SnapshotError;
};
/// Envelope is intact but written by an incompatible format version.
struct SnapshotVersionSkew : SnapshotError {
  using SnapshotError::SnapshotError;
};
/// Filesystem-level failure (open/write/fsync/rename).
struct SnapshotIoError : SnapshotError {
  using SnapshotError::SnapshotError;
};
/// Checkpoint is valid but belongs to a different session (seed or
/// resume-relevant config differs from the restoring SkyRan's).
struct SnapshotMismatch : SnapshotError {
  using SnapshotError::SnapshotError;
};

/// Fingerprint of the resume-relevant SkyRanConfig fields. Restoring under
/// a config with a different fingerprint would silently diverge from the
/// uninterrupted run, so restore() rejects it with SnapshotMismatch.
/// `threads` is deliberately excluded: serial == N-worker bit-identity makes
/// the worker count resume-neutral.
std::uint64_t config_digest(const SkyRanConfig& config);

/// Order-sensitive 64-bit digest over every field of an EpochReport (bit
/// patterns of doubles, exact integers, the full traffic report). Two
/// reports digest equal iff they are bit-identical — the golden-replay
/// currency of the resume contract.
std::uint64_t report_digest(const EpochReport& report);

/// The full between-epoch session state of one SkyRan.
struct Snapshot {
  /// v2 appended ue_service_load (load-weighted placement); v1 streams
  /// still load, with the new field empty.
  static constexpr std::uint32_t kVersion = 2;

  std::uint64_t seed = 0;            ///< SkyRan construction seed
  std::uint64_t config_fingerprint = 0;  ///< config_digest at capture time
  int epoch = 0;                     ///< epochs completed when captured
  geo::Vec2 position{};              ///< UAV operating position
  double altitude_m = 0.0;
  bool altitude_known = false;
  double total_flight_m = 0.0;
  double throughput_at_placement_bps = 0.0;
  double battery_remaining_wh = 0.0;
  std::string rng_state;             ///< mt19937_64 stream serialization
  std::vector<geo::Vec2> last_estimates;  ///< localization fallback family
  std::vector<geo::Vec3> ue_positions;    ///< world UE truth at capture
  rem::RemStore store;               ///< positional-reuse REM store
  struct HistoryEntry {
    geo::Vec2 position;
    std::vector<geo::Path> trajectories;
  };
  std::vector<HistoryEntry> history;  ///< per-position trajectory history
  /// Per-UE offered+served bits from the last service phase (v2+); drives
  /// the load-weighted placement objective across a resume.
  std::vector<double> ue_service_load;

  /// Serialize as one CRC-guarded envelope.
  void save(std::ostream& os) const;

  /// Parse + verify. Throws SnapshotTruncated / SnapshotCorrupt /
  /// SnapshotVersionSkew; never returns a partially-filled snapshot.
  static Snapshot load(std::istream& is);
};

/// Generation-managed, crash-safe byte-blob persistence in one directory:
/// the atomic-write/retention machinery shared by SnapshotManager (SkyRan
/// sessions) and scenario::CampaignCheckpointer (day-in-the-life campaigns).
/// It knows nothing about payload formats — callers serialize, validate and
/// fall back themselves (walk generations() newest-first, try each).
///
/// save() writes `<prefix><generation><extension>.tmp`, fsyncs it (visiting
/// the ckpt.mid_write crash point halfway through), visits ckpt.pre_rename,
/// atomically renames, fsyncs the directory, then prunes to the newest
/// `keep` generations plus stray temp files. A SIGKILL at any byte leaves
/// either the previous generations untouched or the new one fully durable —
/// never a half-written visible file.
class GenerationStore {
 public:
  /// Creates `dir` when missing. `prefix`/`extension` name the generation
  /// files (e.g. "ckpt-" / ".skyc"); generation numbers are zero-padded to
  /// eight digits so lexicographic file order equals numeric order.
  /// Throws SnapshotIoError when the directory cannot be created.
  GenerationStore(std::filesystem::path dir, std::string prefix, std::string extension,
                  int keep = 2);

  /// Persist `bytes` as generation `generation` (>= 0). Returns the final
  /// path. Throws SnapshotIoError on filesystem failure.
  std::filesystem::path save(int generation, const std::string& bytes);

  /// Generation files present, oldest first.
  std::vector<std::filesystem::path> generations() const;

  /// Generation number encoded in `path`'s filename, or -1 when the name
  /// does not match this store's prefix/extension scheme.
  int generation_of(const std::filesystem::path& path) const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::string prefix_;
  std::string extension_;
  int keep_;
};

/// Generation-managed, crash-safe checkpoint persistence in one directory.
///
/// save() writes `ckpt-<epoch>.skyc.tmp`, fsyncs it, atomically renames to
/// `ckpt-<epoch>.skyc`, fsyncs the directory, then prunes to the newest
/// `keep` generations (GenerationStore discipline). A crash at any point
/// leaves either the previous generations untouched (tmp never renamed) or
/// the new generation fully durable — never a half-written visible file.
///
/// load_latest() walks generations newest-first, returning the first one
/// that verifies; rejected generations are recorded in last_errors() and
/// counted under ckpt.* metrics, and the walk falls back to the previous
/// generation.
class SnapshotManager {
 public:
  explicit SnapshotManager(std::filesystem::path dir, int keep = 2);

  /// Persist `snapshot` as generation `snapshot.epoch`. Returns the final
  /// path. Throws SnapshotIoError on filesystem failure.
  std::filesystem::path save(const Snapshot& snapshot);

  /// Newest generation that loads + verifies, or nullopt when none does.
  std::optional<Snapshot> load_latest();

  /// Generation files present, oldest first.
  std::vector<std::filesystem::path> generations() const;

  /// Human-readable reasons every generation rejected by the last
  /// load_latest() walk was skipped.
  const std::vector<std::string>& last_errors() const { return last_errors_; }

  const std::filesystem::path& dir() const { return store_.dir(); }

 private:
  GenerationStore store_;
  std::vector<std::string> last_errors_;
};

}  // namespace skyran::core
