// Multi-UAV SkyRAN (the paper's Sec 7-8 extension): several SkyRAN UAVs
// cover one operating area cooperatively. UEs are spatially partitioned
// (k-means on the localized positions, one cluster per UAV); the UAVs share
// a single REM store and trajectory history (the paper: "REMs are
// cooperatively constructed and shared amongst multiple SkyRAN UAVs"), and
// each UAV probes, maps and serves its own cluster.
//
// Carriers are assumed orthogonal across UAVs (distinct EARFCNs), so no
// inter-UAV interference is modeled.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "core/config.hpp"
#include "rem/store.hpp"
#include "sim/world.hpp"

namespace skyran::core {

/// How UEs are attached to UAVs after placement.
enum class Association {
  kPartition,  ///< keep the k-means planning partition
  kStrongest,  ///< each UE re-attaches to the UAV with the best SNR (RSRP
               ///< handover, as real UEs would)
};

struct MultiSkyRanConfig {
  SkyRanConfig per_uav{};
  int n_uavs = 2;
  Association association = Association::kStrongest;
};

struct MultiEpochReport {
  int epoch = 0;
  std::vector<int> assignment;            ///< UE index -> UAV index
  std::vector<geo::Vec2> uav_positions;   ///< chosen operating positions
  std::vector<double> uav_altitudes_m;
  std::vector<geo::Vec2> estimated_ue_positions;
  double total_flight_m = 0.0;
  double total_flight_time_s = 0.0;
};

class MultiSkyRan {
 public:
  MultiSkyRan(sim::World& world, MultiSkyRanConfig config, std::uint64_t seed);

  /// One cooperative epoch: localize -> partition -> per-UAV
  /// (altitude, tour, REM, placement).
  MultiEpochReport run_epoch();

  /// True mean per-UE throughput with every UE served by its assigned UAV.
  double mean_throughput_bps() const;

  /// Worst per-UE SNR across the fleet's assignments.
  double min_snr_db() const;

  const std::vector<geo::Vec2>& positions() const { return positions_; }
  const std::vector<double>& altitudes_m() const { return altitudes_; }
  const std::vector<int>& assignment() const { return assignment_; }
  const rem::RemStore& rem_store() const { return store_; }
  int epochs_run() const { return epoch_; }

 private:
  std::vector<geo::Vec2> localize_ues(MultiEpochReport& report);

  sim::World& world_;
  MultiSkyRanConfig config_;
  std::mt19937_64 rng_;
  rf::FsplChannel fspl_;

  rem::RemStore store_;  ///< shared across the fleet
  struct HistoryEntry {
    geo::Vec2 position;
    rem::TrajectoryHistory trajectories;
  };
  std::vector<HistoryEntry> history_;  ///< shared across the fleet
  rem::TrajectoryHistory& history_for(geo::Vec2 ue_position);

  std::vector<geo::Vec2> positions_;
  std::vector<double> altitudes_;
  std::vector<int> assignment_;
  int epoch_ = 0;
};

}  // namespace skyran::core
