#include "core/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "geo/contract.hpp"
#include "obs/obs.hpp"

namespace skyran::core {

ThreadPool::ThreadPool(int workers) : workers_(workers) {
  expects(workers >= 1, "ThreadPool: worker count must be >= 1");
  threads_.reserve(static_cast<std::size_t>(workers - 1));
  for (int i = 1; i < workers; ++i) threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

std::size_t ThreadPool::default_grain(std::size_t n) {
  // At most 64 chunks regardless of worker count: the determinism contract
  // requires chunk boundaries to be a function of n alone.
  return n == 0 ? 1 : (n + 63) / 64;
}

void ThreadPool::run_chunks(std::size_t n, std::size_t grain, const ChunkBody& body,
                            int max_lanes) {
  if (n == 0) return;
  if (grain == 0) grain = default_grain(n);
  const std::size_t chunks = (n + grain - 1) / grain;

  const auto run_one = [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    body(c, begin, end);
  };

  const std::size_t lanes =
      max_lanes >= 1 ? std::min<std::size_t>(static_cast<std::size_t>(max_lanes),
                                             static_cast<std::size_t>(workers_))
                     : static_cast<std::size_t>(workers_);
  if (threads_.empty() || chunks == 1 || lanes == 1) {
    SKYRAN_COUNTER_INC("core.pool.runs_inline");
    SKYRAN_COUNTER_ADD("core.pool.chunks", chunks);
    for (std::size_t c = 0; c < chunks; ++c) run_one(c);
    return;
  }
  SKYRAN_COUNTER_INC("core.pool.runs_parallel");
  SKYRAN_COUNTER_ADD("core.pool.chunks", chunks);

  // Work claiming is dynamic (atomic counter) but the chunks themselves are
  // fixed, so which thread runs a chunk never changes its result.
  struct Shared {
    std::atomic<std::size_t> next{0};
    std::size_t chunks = 0;
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->chunks = chunks;

  // Drivers claim chunks until none remain. A driver that arrives after the
  // range is exhausted touches only `shared` (kept alive by the shared_ptr),
  // never the caller's body reference, so the caller may return as soon as
  // every chunk is done even if queued drivers have not started.
  const auto drive = [shared, run_one]() {
    for (;;) {
      const std::size_t c = shared->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= shared->chunks) return;
      try {
        run_one(c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(shared->mu);
        if (!shared->error) shared->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(shared->mu);
        if (++shared->done == shared->chunks) shared->done_cv.notify_all();
      }
    }
  };

  // Capture the drive lambda by value in the queued jobs; run_one/body are
  // referenced only while chunks remain unclaimed, which the caller outlives
  // (it blocks below until done == chunks, and done only reaches chunks
  // after every claimable chunk was claimed).
  const std::size_t helpers =
      std::min({threads_.size(), chunks - 1, lanes - 1});
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < helpers; ++i) queue_.emplace_back(drive);
    // Queue depth after enqueue: >`helpers` means earlier loops' drivers are
    // still waiting for a worker — the pool is oversubscribed.
    SKYRAN_HISTOGRAM_OBSERVE("core.pool.queue_depth", queue_.size());
    SKYRAN_HISTOGRAM_OBSERVE("core.pool.helpers", helpers);
  }
  cv_.notify_all();

  drive();  // caller participates

  std::unique_lock<std::mutex> lk(shared->mu);
  shared->done_cv.wait(lk, [&] { return shared->done == shared->chunks; });
  if (shared->error) std::rethrow_exception(shared->error);
}

namespace {

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;
int g_explicit_workers = 0;
thread_local int tl_workers = 0;

}  // namespace

int hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int configured_workers() {
  if (tl_workers > 0) return tl_workers;
  {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    if (g_explicit_workers > 0) return g_explicit_workers;
  }
  if (const char* env = std::getenv("SKYRAN_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024) return static_cast<int>(v);
  }
  return hardware_workers();
}

void set_global_workers(int workers) {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  g_explicit_workers = workers > 0 ? workers : 0;
  // The pool is deliberately NOT reset here: loops in flight on other threads
  // hold a shared_ptr to it, and acquire_global_pool() only ever grows the
  // pool. A smaller count is enforced per call via the run_chunks lane cap.
}

ScopedWorkers::ScopedWorkers(int workers) : previous_(tl_workers) {
  if (workers > 0) tl_workers = workers;
}

ScopedWorkers::~ScopedWorkers() { tl_workers = previous_; }

std::shared_ptr<ThreadPool> acquire_global_pool() {
  const int want = configured_workers();
  std::lock_guard<std::mutex> lk(g_pool_mu);
  // Grow-only: replacing g_pool is safe because concurrent loops keep the old
  // pool alive through their own shared_ptr until they finish, and a pool
  // with more lanes than needed is capped per call, never shrunk.
  if (!g_pool || g_pool->worker_count() < want)
    g_pool = std::make_shared<ThreadPool>(want);
  return g_pool;
}

void parallel_for_chunks(std::size_t n, std::size_t grain, const ChunkBody& body) {
  const int lanes = configured_workers();
  acquire_global_pool()->run_chunks(n, grain, body, lanes);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for_chunks(n, grain,
                      [&fn](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) fn(i);
                      });
}

}  // namespace skyran::core
