#include "core/skyran.hpp"

#include <cmath>
#include <numbers>

#include <sstream>

#include "core/snapshot.hpp"
#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "obs/obs.hpp"
#include "sim/crash_point.hpp"
#include "sim/measurement.hpp"

namespace skyran::core {

SkyRan::SkyRan(sim::World& world, SkyRanConfig config, std::uint64_t seed)
    : world_(world),
      config_(config),
      seed_(seed),
      rng_(seed),
      fspl_(world.channel().frequency_hz()),
      store_(config.reuse_radius_m),
      history_index_(std::max(config.reuse_radius_m, 1e-9)),
      position_(world.area().center()),
      battery_(config.battery) {
  expects(config.epoch_drop_threshold > 0.0 && config.epoch_drop_threshold < 1.0,
          "SkyRan: epoch trigger threshold must be in (0,1)");
  expects(config.rem_cell_m > 0.0, "SkyRan: REM cell size must be positive");
  expects(config.threads >= 0, "SkyRan: thread count must be >= 0 (0 = auto)");
  // config.threads is applied per entry point via ScopedWorkers (see
  // run_epoch / current_estimates) rather than set_global_workers: a
  // constructor mutating the process-wide count would race with parallel
  // work in flight elsewhere and let instances override each other.
  // config.simd, by contrast, IS process-wide by design: kernels run on
  // pool workers, which must dispatch at the same level as the submitting
  // thread. kAuto leaves the SKYRAN_SIMD / CPU-probe resolution untouched.
  if (config.simd != kernels::SimdMode::kAuto) kernels::set_mode(config.simd);
}

rem::TrajectoryHistory& SkyRan::history_for(geo::Vec2 ue_position) {
  // first_within returns the earliest-inserted entry within R, matching the
  // historical linear scan over history_.
  if (const std::optional<std::size_t> hit =
          history_index_.first_within(ue_position, config_.reuse_radius_m))
    return history_[*hit].trajectories;
  history_index_.insert(ue_position, history_.size());
  history_.push_back({ue_position, {}});
  return history_.back().trajectories;
}

const rem::TrajectoryHistory* SkyRan::find_history(geo::Vec2 ue_position) const {
  const std::optional<std::size_t> hit =
      history_index_.first_within(ue_position, config_.reuse_radius_m);
  return hit ? &history_[*hit].trajectories : nullptr;
}

const rem::RemBank& SkyRan::rem_bank() const {
  expects(bank_.has_value(), "SkyRan::rem_bank: no epoch has run yet");
  return *bank_;
}

std::vector<geo::Vec2> SkyRan::localize_ues(EpochReport& report) {
  const std::vector<geo::Vec3>& truth = world_.ue_positions();
  std::vector<geo::Vec2> estimates;
  estimates.reserve(truth.size());

  switch (config_.localization_mode) {
    case LocalizationMode::kPhy: {
      localization::UeLocalizer localizer(world_.channel(), world_.budget(),
                                          config_.localizer);
      const localization::LocalizationRun run =
          localizer.localize(world_.area().inflated(-6.0).clamp(position_), truth, rng_(),
                             faults_.active() ? &faults_ : nullptr);
      report.localization_flight_m = run.flight_length_m;
      for (std::size_t i = 0; i < truth.size(); ++i) {
        if (run.estimates[i].valid) {
          estimates.push_back(run.estimates[i].position);
          continue;
        }
        // A UE whose SRS could not be decoded (loss/sag/outage or too few
        // decodable symbols) falls back to the last known position family.
        // Under an active fault plan that is the previous epoch's estimate
        // when one exists — which keeps the REM store's positional reuse
        // working through an outage — else (and always on the zero-fault
        // path, which must stay bit-identical to the legacy pipeline) the
        // area center as a conservative guess.
        epoch_degraded_ = true;
        if (faults_.active() && i < last_estimates_.size()) {
          SKYRAN_COUNTER_INC("fault.loc.fallback_reuse");
          estimates.push_back(last_estimates_[i]);
        } else {
          SKYRAN_COUNTER_INC("fault.loc.fallback_center");
          estimates.push_back(world_.area().center());
        }
      }
      break;
    }
    case LocalizationMode::kPerfect: {
      for (const geo::Vec3& p : truth) estimates.push_back(p.xy());
      break;
    }
    case LocalizationMode::kGaussianError: {
      // Mean radial error e for a 2-D Gaussian needs per-axis sigma
      // e / sqrt(pi/2).
      const double sigma =
          config_.injected_error_m / std::sqrt(std::numbers::pi / 2.0);
      std::normal_distribution<double> noise(0.0, sigma);
      for (const geo::Vec3& p : truth)
        estimates.push_back(
            world_.area().clamp(p.xy() + geo::Vec2{noise(rng_), noise(rng_)}));
      break;
    }
  }
  return estimates;
}

double SkyRan::ensure_altitude(const std::vector<geo::Vec2>& ue_estimates,
                               EpochReport& report) {
  if (altitude_known_) return altitude_;
  // Step 5: hover above the estimated centroid at 120 m and descend while
  // path loss keeps dropping.
  geo::Vec2 centroid{};
  for (geo::Vec2 p : ue_estimates) centroid += p;
  centroid = centroid / static_cast<double>(ue_estimates.size());
  centroid = world_.area().clamp(centroid);

  std::vector<geo::Vec3> ue3;
  ue3.reserve(ue_estimates.size());
  for (geo::Vec2 p : ue_estimates)
    ue3.emplace_back(p, world_.terrain().ground_height(p) + 1.5);

  const rem::AltitudeSearchResult found = rem::find_optimal_altitude(
      world_.channel(), centroid, ue3, config_.start_altitude_m, config_.min_altitude_m,
      config_.altitude_step_m);
  altitude_ = found.altitude_m;
  altitude_known_ = true;
  report.altitude_flight_m =
      (config_.start_altitude_m - altitude_) + found.probes * 2.0;  // descent + hover settling
  position_ = centroid;
  return altitude_;
}

void SkyRan::apply_battery_sag(double t) {
  const double target = faults_.battery_sag_fraction(t);
  if (target <= battery_sag_applied_) return;
  battery_.deplete_wh((target - battery_sag_applied_) * battery_.capacity_wh());
  battery_sag_applied_ = target;
  epoch_degraded_ = true;
  SKYRAN_COUNTER_INC("fault.battery.sag_events");
}

EpochReport SkyRan::run_epoch() {
  expects(!world_.ue_positions().empty(), "SkyRan::run_epoch: no UEs in the world");
  const ScopedWorkers workers(config_.threads);  // no-op when threads == 0 (auto)
  EpochReport report;
  report.epoch = ++epoch_;
  obs::set_current_epoch(report.epoch);
  SKYRAN_TRACE_SPAN("epoch.run");
  SKYRAN_COUNTER_INC("epoch.runs");

  // Fresh fault state: the same plan replays deterministically per epoch.
  faults_ = sim::FaultInjector(config_.faults, static_cast<std::uint64_t>(epoch_));
  battery_sag_applied_ = 0.0;
  epoch_degraded_ = false;
  sim::FaultInjector* const faults = faults_.active() ? &faults_ : nullptr;
  apply_battery_sag(0.0);

  // Steps 1-4: localize the UEs.
  {
    SKYRAN_TRACE_SPAN("epoch.localize");
    report.estimated_ue_positions = localize_ues(report);
  }
  sim::crash_point("epoch.localize");

  // Step 5: operating altitude (first epoch only, Sec 3.3.1).
  const double altitude = [&] {
    SKYRAN_TRACE_SPAN("epoch.altitude");
    return ensure_altitude(report.estimated_ue_positions, report);
  }();
  report.altitude_m = altitude;

  // The localization and altitude-search flights have been flown by this
  // point, so their energy leaves the battery now — before the measurement
  // loop's reserve check reads the remaining charge. (Draining them after
  // the loop let the check see a charge excluding this epoch's own flights,
  // and the altitude descent was never drained at all.)
  battery_.drain((report.localization_flight_m + report.altitude_flight_m) / config_.cruise_mps,
                 config_.cruise_mps);
  // Epoch flight-time cursor: where measurement tours land on the fault
  // plan's time axis.
  double epoch_time_s =
      (report.localization_flight_m + report.altitude_flight_m) / config_.cruise_mps;

  // REM setup with positional reuse (Sec 3.5): one shared-geometry bank for
  // the whole epoch instead of independent per-UE grids.
  SKYRAN_TRACE_SPAN("epoch.measure_and_place");
  bank_.emplace(world_.area(), config_.rem_cell_m, altitude);
  report.reused_rem.clear();
  std::vector<rem::TrajectoryHistory> histories;
  for (geo::Vec2 est : report.estimated_ue_positions) {
    const geo::Vec3 ue{est, world_.terrain().ground_height(est) + 1.5};
    const bool reused = store_.find_near(est) != nullptr;
    report.reused_rem.push_back(reused);
    if (reused)
      SKYRAN_COUNTER_INC("epoch.rem_cache.hit");
    else
      SKYRAN_COUNTER_INC("epoch.rem_cache.miss");
    const std::size_t ue_idx = bank_->add_ue(ue);
    store_.seed_bank_ue(*bank_, ue_idx, fspl_, world_.budget(), config_.idw);
    const rem::TrajectoryHistory* h = find_history(est);
    histories.push_back(h != nullptr ? *h : rem::TrajectoryHistory{});
  }

  // Steps 6-7: plan and fly measurement tours until the epoch budget is
  // spent. Each round replans from the previous tour's endpoint with that
  // tour added to the history, so successive rounds explore new regions
  // (the info-gain term steers them away from what was just flown).
  rem::PlannerConfig planner = config_.planner;
  planner.idw = config_.idw;
  const double budget = config_.measurement_budget_m;
  double remaining = budget > 0.0 ? budget : 0.0;
  geo::Vec2 tour_start = world_.area().clamp(position_);
  std::vector<geo::Path> flown;
  bool first_round = true;
  while (first_round || remaining > std::max(60.0, 0.1 * budget)) {
    apply_battery_sag(epoch_time_s);
    if (battery_.remaining_fraction() <= config_.battery_reserve_fraction) {
      SKYRAN_COUNTER_INC("epoch.measurement.battery_stops");
      if (budget > 0.0 && remaining > std::max(60.0, 0.1 * budget)) {
        // Budget left unspent: the epoch serves from whatever REM content
        // the rounds so far deposited (possibly background only).
        epoch_degraded_ = true;
      }
      break;
    }
    SKYRAN_TRACE_SPAN("epoch.measure_round");
    planner.budget_m = budget > 0.0 ? remaining : 0.0;
    planner.seed = rng_();
    // Incremental refresh: only cells invalidated by the previous round's
    // deposits are re-interpolated (all cells on the first round).
    bank_->estimate_all(planner.idw);
    const rem::PlannedTrajectory plan =
        rem::plan_measurement_trajectory(*bank_, histories, tour_start, planner);
    if (plan.cost_m < 1.0) break;
    if (first_round) {
      report.planned_k = plan.k;
      report.info_to_cost = plan.info_to_cost;
    }
    SKYRAN_COUNTER_INC("epoch.measurement.rounds");

    uav::FlightPlan flight =
        uav::FlightPlan::at_altitude(plan.path, altitude, config_.cruise_mps);
    // Mid-flight abort (degraded path): a tour the remaining charge cannot
    // finish is flown only to where the energy runs out. Whatever the
    // partial tour deposited stays in the bank — a short tour's REM beats
    // an unflown one.
    const double max_flight_s =
        battery_.remaining_wh() * 3600.0 / battery_.power_w(config_.cruise_mps);
    const bool aborted = flight.duration_s() > max_flight_s;
    if (aborted) {
      flight = uav::truncated(flight, max_flight_s * config_.cruise_mps);
      epoch_degraded_ = true;
      SKYRAN_COUNTER_INC("fault.battery.mid_flight_aborts");
    }
    sim::run_measurement_flight(world_, flight, *bank_, config_.measurement, rng_, faults,
                                epoch_time_s);
    battery_.drain(flight.duration_s(), config_.cruise_mps);
    epoch_time_s += flight.duration_s();
    ++report.measurement_rounds;

    const geo::Path track = aborted ? flight.ground_track() : plan.path;
    report.measurement_flight_m += aborted ? flight.length_m() : plan.cost_m;
    remaining -= aborted ? flight.length_m() : plan.cost_m;
    tour_start = track.points().back();
    for (rem::TrajectoryHistory& h : histories) h.push_back(track);
    flown.push_back(track);
    if (aborted) break;       // out of energy: no further rounds this epoch
    if (budget <= 0.0) break;  // unconstrained mode: single best tour
    first_round = false;
  }

  sim::crash_point("epoch.estimate");

  // Record the flown tours into each UE's history and refresh the store.
  for (std::size_t i = 0; i < report.estimated_ue_positions.size(); ++i) {
    rem::TrajectoryHistory& h = history_for(report.estimated_ue_positions[i]);
    h.insert(h.end(), flown.begin(), flown.end());
    store_.put_from_bank(*bank_, i);
  }

  // Placement (Sec 3.4), restricted to cells the UAV can hover in. The
  // final incremental refresh folds in the last round's deposits; placement
  // then reads the cached slabs directly as views (no per-UE copies).
  SKYRAN_TRACE_SPAN("epoch.placement");
  bank_->estimate_all(config_.idw);
  const std::vector<geo::FieldView<const double>> estimates = bank_->estimate_views();
  rem::Placement placement;
  if (config_.service.load_weighted_placement && !last_ue_load_.empty() &&
      last_ue_load_.size() == estimates.size()) {
    // Load-weighted placement (ROADMAP item 1): penalize each UE's REM by
    // 10*log10 of its relative offered+served load from the previous service
    // phase before scoring, so the objective is max-min SNR *under load*.
    double mean_load = 0.0;
    for (const double l : last_ue_load_) mean_load += l;
    mean_load /= static_cast<double>(last_ue_load_.size());
    std::vector<geo::Grid2D<double>> weighted;
    weighted.reserve(estimates.size());
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      geo::Grid2D<double> g = bank_->estimate_grid(i);
      if (mean_load > 0.0) {
        const double penalty_db =
            10.0 * std::log10(std::max(1.0, last_ue_load_[i] / mean_load));
        if (penalty_db > 0.0)
          for (double& v : g.raw()) v -= penalty_db;
      }
      weighted.push_back(std::move(g));
    }
    placement = rem::choose_placement_feasible(
        std::span<const geo::Grid2D<double>>(weighted), world_.terrain(), altitude,
        config_.objective);
  } else {
    placement = rem::choose_placement_feasible(estimates, world_.terrain(), altitude,
                                               config_.objective);
  }
  const double reposition_m = position_.dist(placement.position);
  position_ = placement.position;
  report.position = position_;
  report.predicted_objective_snr_db = placement.objective_snr_db;

  report.total_flight_m = report.localization_flight_m + report.altitude_flight_m +
                          report.measurement_flight_m + reposition_m;
  report.flight_time_s = report.total_flight_m / config_.cruise_mps;
  total_flight_m_ += report.total_flight_m;
  // Localization and altitude flights were drained before the measurement
  // loop; only the reposition hop remains.
  battery_.drain(reposition_m / config_.cruise_mps, config_.cruise_mps);

  throughput_at_placement_bps_ = current_mean_throughput_bps();
  report.served_mean_throughput_bps = throughput_at_placement_bps_;
  report.degraded = report.degraded || epoch_degraded_;
  last_estimates_ = report.estimated_ue_positions;
  epoch_time_s += reposition_m / config_.cruise_mps;
  sim::crash_point("epoch.place");

  // Service phase: carry per-TTI MAC-level traffic from the placement so the
  // epoch is scored under load, not just on SNR. The plane's seed derives
  // from the construction seed and epoch number only — never from rng_ — so
  // every pre-existing report field stays byte-identical to builds without a
  // service phase (and under the empty-FaultPlan no-op contract).
  if (config_.service.ttis > 0) {
    SKYRAN_TRACE_SPAN("epoch.serve");
    lte::TrafficPlaneConfig plane_config = config_.service.plane;
    plane_config.carrier = world_.carrier();
    plane_config.seed = seed_ ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(epoch_));
    lte::TrafficPlane plane(plane_config);
    const geo::Vec3 uav{position_, altitude};
    const std::vector<geo::Vec3>& ues = world_.ue_positions();
    for (std::size_t i = 0; i < ues.size(); ++i)
      plane.add_ue(static_cast<std::uint32_t>(61 + i), world_.snr_db(uav, ues[i]),
                   config_.service.ue_traffic);
    // An SRS SNR-sag window still open when service starts sags the true
    // channel below the CQI reports the scheduler works from.
    if (faults != nullptr) plane.set_snr_offset_db(-faults->srs_snr_sag_db(epoch_time_s));
    plane.run_ttis(config_.service.ttis);
    report.traffic = plane.report();
    if (config_.service.load_weighted_placement) {
      last_ue_load_.assign(ues.size(), 0.0);
      for (std::size_t i = 0; i < ues.size(); ++i)
        last_ue_load_[i] = plane.offered_bits(i) + plane.served_bits(i);
    }
    SKYRAN_GAUGE_SET("traffic.throughput_bps", report.traffic.aggregate_throughput_bps);
    SKYRAN_GAUGE_SET("traffic.fairness_jain", report.traffic.fairness_jain);
    SKYRAN_HISTOGRAM_OBSERVE("traffic.p50_throughput_bps", report.traffic.p50_throughput_bps);
    SKYRAN_HISTOGRAM_OBSERVE("traffic.p99_delay_ms", report.traffic.p99_delay_ms);
  }
  sim::crash_point("epoch.serve");

  SKYRAN_HISTOGRAM_OBSERVE("epoch.total_flight_m", report.total_flight_m);
  SKYRAN_HISTOGRAM_OBSERVE("epoch.measurement_flight_m", report.measurement_flight_m);
  SKYRAN_HISTOGRAM_OBSERVE("epoch.info_to_cost", report.info_to_cost);
  SKYRAN_HISTOGRAM_OBSERVE("epoch.planned_k", report.planned_k);
  SKYRAN_GAUGE_SET("epoch.battery_fraction", battery_.remaining_fraction());
  SKYRAN_GAUGE_SET("epoch.altitude_m", report.altitude_m);
  SKYRAN_GAUGE_SET("epoch.degraded", report.degraded ? 1.0 : 0.0);
  return report;
}

std::vector<geo::Grid2D<double>> SkyRan::current_estimates() const {
  std::vector<geo::Grid2D<double>> out;
  if (!bank_) return out;
  // run_epoch leaves the bank freshly estimated with config_.idw, so this is
  // a copy of the cached slabs, not a re-estimation.
  expects(bank_->estimates_current(), "SkyRan::current_estimates: bank estimates are stale");
  out.reserve(bank_->ue_count());
  for (std::size_t i = 0; i < bank_->ue_count(); ++i) out.push_back(bank_->estimate_grid(i));
  return out;
}

double SkyRan::current_mean_throughput_bps() const {
  return world_.mean_throughput_bps(geo::Vec3{position_, altitude_});
}

double SkyRan::served_performance_ratio() const {
  if (throughput_at_placement_bps_ <= 0.0) return 1.0;
  return current_mean_throughput_bps() / throughput_at_placement_bps_;
}

Snapshot SkyRan::snapshot() const {
  SKYRAN_TRACE_SPAN("ckpt.capture");
  Snapshot s;
  s.seed = seed_;
  s.config_fingerprint = config_digest(config_);
  s.epoch = epoch_;
  s.position = position_;
  s.altitude_m = altitude_;
  s.altitude_known = altitude_known_;
  s.total_flight_m = total_flight_m_;
  s.throughput_at_placement_bps = throughput_at_placement_bps_;
  s.battery_remaining_wh = battery_.remaining_wh();
  std::ostringstream rng_bytes;
  rng_bytes << rng_;  // standard text round-trip is bit-exact
  s.rng_state = rng_bytes.str();
  s.last_estimates = last_estimates_;
  s.ue_service_load = last_ue_load_;
  s.ue_positions = world_.ue_positions();
  s.store = store_;
  s.history.reserve(history_.size());
  for (const HistoryEntry& e : history_) s.history.push_back({e.position, e.trajectories});
  return s;
}

void SkyRan::restore(const Snapshot& s) {
  SKYRAN_TRACE_SPAN("ckpt.apply");
  if (s.seed != seed_)
    throw SnapshotMismatch("SkyRan::restore: snapshot seed " + std::to_string(s.seed) +
                           " != session seed " + std::to_string(seed_));
  if (s.config_fingerprint != config_digest(config_))
    throw SnapshotMismatch(
        "SkyRan::restore: snapshot was taken under a different resume-relevant config");
  epoch_ = s.epoch;
  position_ = s.position;
  altitude_ = s.altitude_m;
  altitude_known_ = s.altitude_known;
  total_flight_m_ = s.total_flight_m;
  throughput_at_placement_bps_ = s.throughput_at_placement_bps;
  battery_ = uav::Battery(config_.battery);
  battery_.restore_remaining_wh(s.battery_remaining_wh);
  {
    std::istringstream rng_bytes(s.rng_state);
    rng_bytes >> rng_;
    if (rng_bytes.fail()) throw SnapshotCorrupt("SkyRan::restore: bad RNG state");
  }
  last_estimates_ = s.last_estimates;
  last_ue_load_ = s.ue_service_load;
  world_.ue_positions() = s.ue_positions;
  store_ = s.store;
  history_.clear();
  history_index_ = geo::PointIndex(std::max(config_.reuse_radius_m, 1e-9));
  for (const Snapshot::HistoryEntry& e : s.history) {
    history_index_.insert(e.position, history_.size());
    history_.push_back({e.position, e.trajectories});
  }
  // Per-epoch scratch state is rebuilt at the top of the next run_epoch.
  bank_.reset();
  faults_ = sim::FaultInjector();
  battery_sag_applied_ = 0.0;
  epoch_degraded_ = false;
  SKYRAN_COUNTER_INC("ckpt.applied");
  SKYRAN_GAUGE_SET("ckpt.resume_epoch", static_cast<double>(epoch_));
}

bool SkyRan::should_trigger_epoch() const {
  const double ratio = served_performance_ratio();
  const bool fire = ratio < (1.0 - config_.epoch_drop_threshold);
  SKYRAN_COUNTER_INC("epoch.trigger.checks");
  if (fire) SKYRAN_COUNTER_INC("epoch.trigger.fired");
  SKYRAN_GAUGE_SET("epoch.trigger.service_ratio", ratio);
  SKYRAN_HISTOGRAM_OBSERVE("epoch.trigger.service_ratio", ratio);
  return fire;
}

}  // namespace skyran::core
