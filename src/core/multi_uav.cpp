#include "core/multi_uav.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "geo/contract.hpp"
#include "localization/localizer.hpp"
#include "rem/kmeans.hpp"
#include "rem/placement.hpp"
#include "rem/planner.hpp"
#include "sim/measurement.hpp"

namespace skyran::core {

MultiSkyRan::MultiSkyRan(sim::World& world, MultiSkyRanConfig config, std::uint64_t seed)
    : world_(world),
      config_(config),
      rng_(seed),
      fspl_(world.channel().frequency_hz()),
      store_(config.per_uav.reuse_radius_m) {
  expects(config.n_uavs >= 1, "MultiSkyRan: need at least one UAV");
  positions_.assign(static_cast<std::size_t>(config.n_uavs), world.area().center());
  altitudes_.assign(static_cast<std::size_t>(config.n_uavs), config.per_uav.start_altitude_m);
}

rem::TrajectoryHistory& MultiSkyRan::history_for(geo::Vec2 ue_position) {
  for (HistoryEntry& e : history_)
    if (e.position.dist(ue_position) <= config_.per_uav.reuse_radius_m) return e.trajectories;
  history_.push_back({ue_position, {}});
  return history_.back().trajectories;
}

std::vector<geo::Vec2> MultiSkyRan::localize_ues(MultiEpochReport& report) {
  const std::vector<geo::Vec3>& truth = world_.ue_positions();
  std::vector<geo::Vec2> estimates;
  estimates.reserve(truth.size());
  switch (config_.per_uav.localization_mode) {
    case LocalizationMode::kPhy: {
      // One UAV flies the localization pattern on behalf of the fleet (all
      // UEs attach to it during the flight).
      localization::UeLocalizer localizer(world_.channel(), world_.budget(),
                                          config_.per_uav.localizer);
      const localization::LocalizationRun run = localizer.localize(
          world_.area().inflated(-6.0).clamp(positions_.front()), truth, rng_());
      report.total_flight_m += run.flight_length_m;
      for (std::size_t i = 0; i < truth.size(); ++i)
        estimates.push_back(run.estimates[i].valid ? run.estimates[i].position
                                                   : world_.area().center());
      break;
    }
    case LocalizationMode::kPerfect:
      for (const geo::Vec3& p : truth) estimates.push_back(p.xy());
      break;
    case LocalizationMode::kGaussianError: {
      const double sigma =
          config_.per_uav.injected_error_m / std::sqrt(std::numbers::pi / 2.0);
      std::normal_distribution<double> noise(0.0, sigma);
      for (const geo::Vec3& p : truth)
        estimates.push_back(world_.area().clamp(p.xy() + geo::Vec2{noise(rng_), noise(rng_)}));
      break;
    }
  }
  return estimates;
}

MultiEpochReport MultiSkyRan::run_epoch() {
  expects(!world_.ue_positions().empty(), "MultiSkyRan::run_epoch: no UEs in the world");
  MultiEpochReport report;
  report.epoch = ++epoch_;
  report.estimated_ue_positions = localize_ues(report);

  // Partition UEs spatially, one cluster per UAV.
  const int k =
      std::min<int>(config_.n_uavs, static_cast<int>(report.estimated_ue_positions.size()));
  std::vector<rem::WeightedPoint> pts;
  for (geo::Vec2 p : report.estimated_ue_positions) pts.push_back({p, 1.0});
  const rem::KMeansResult clusters = rem::kmeans(pts, k, rng_());
  report.assignment.assign(report.estimated_ue_positions.size(), 0);
  for (std::size_t i = 0; i < pts.size(); ++i) report.assignment[i] = clusters.assignment[i];
  assignment_ = report.assignment;

  const SkyRanConfig& cfg = config_.per_uav;
  for (int u = 0; u < config_.n_uavs; ++u) {
    // Collect this UAV's UEs (true positions drive physics; estimates drive
    // the algorithms).
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < assignment_.size(); ++i)
      if (assignment_[i] == u && u < k) members.push_back(i);
    if (members.empty()) {
      // Idle UAV: park at the area center at the start altitude.
      positions_[static_cast<std::size_t>(u)] = world_.area().center();
      altitudes_[static_cast<std::size_t>(u)] = cfg.start_altitude_m;
      continue;
    }

    std::vector<geo::Vec3> member_true;
    std::vector<geo::Vec3> member_est3;
    std::vector<geo::Vec2> member_est;
    for (const std::size_t i : members) {
      member_true.push_back(world_.ue_positions()[i]);
      const geo::Vec2 e = report.estimated_ue_positions[i];
      member_est.push_back(e);
      member_est3.emplace_back(e, world_.terrain().ground_height(e) + 1.5);
    }

    // Altitude above the cluster centroid (fresh each epoch per UAV).
    geo::Vec2 centroid{};
    for (geo::Vec2 p : member_est) centroid += p;
    centroid = world_.area().clamp(centroid / static_cast<double>(member_est.size()));
    const rem::AltitudeSearchResult alt = rem::find_optimal_altitude(
        world_.channel(), centroid, member_est3, cfg.start_altitude_m, cfg.min_altitude_m,
        cfg.altitude_step_m);
    altitudes_[static_cast<std::size_t>(u)] = alt.altitude_m;

    // Shared-store REMs + shared-history tours for this cluster.
    std::vector<rem::Rem> rems;
    std::vector<rem::TrajectoryHistory> histories;
    for (std::size_t m = 0; m < members.size(); ++m) {
      rems.push_back(store_.make_for_ue(world_.area(), cfg.rem_cell_m, alt.altitude_m,
                                        member_est3[m], fspl_, world_.budget(), cfg.idw));
      histories.push_back(history_for(member_est[m]));
    }

    rem::PlannerConfig planner = cfg.planner;
    planner.idw = cfg.idw;
    const double budget = cfg.measurement_budget_m;
    double remaining = budget > 0.0 ? budget : 0.0;
    geo::Vec2 start = world_.area().clamp(positions_[static_cast<std::size_t>(u)]);
    std::vector<geo::Path> flown;
    bool first = true;
    while (first || remaining > std::max(60.0, 0.1 * budget)) {
      planner.budget_m = budget > 0.0 ? remaining : 0.0;
      planner.seed = rng_();
      const rem::PlannedTrajectory plan =
          rem::plan_measurement_trajectory(rems, histories, start, planner);
      if (plan.cost_m < 1.0) break;
      const uav::FlightPlan flight =
          uav::FlightPlan::at_altitude(plan.path, alt.altitude_m, cfg.cruise_mps);
      sim::run_measurement_flight(world_, flight, rems, member_true, cfg.measurement, rng_);
      report.total_flight_m += plan.cost_m;
      remaining -= plan.cost_m;
      start = plan.path.points().back();
      for (rem::TrajectoryHistory& h : histories) h.push_back(plan.path);
      flown.push_back(plan.path);
      if (budget <= 0.0) break;
      first = false;
    }
    for (std::size_t m = 0; m < members.size(); ++m) {
      rem::TrajectoryHistory& h = history_for(member_est[m]);
      h.insert(h.end(), flown.begin(), flown.end());
      store_.put(rems[m]);
    }

    std::vector<geo::Grid2D<double>> estimates;
    for (const rem::Rem& r : rems) estimates.push_back(r.estimate(cfg.idw));
    const rem::Placement placement = rem::choose_placement_feasible(
        estimates, world_.terrain(), alt.altitude_m, cfg.objective);
    positions_[static_cast<std::size_t>(u)] = placement.position;
  }

  // RSRP handover: once every UAV is placed, UEs camp on the strongest cell
  // regardless of the planning partition.
  if (config_.association == Association::kStrongest) {
    for (std::size_t i = 0; i < assignment_.size(); ++i) {
      double best = -std::numeric_limits<double>::infinity();
      for (int u = 0; u < config_.n_uavs; ++u) {
        const auto ui = static_cast<std::size_t>(u);
        const double snr = world_.snr_db(geo::Vec3{positions_[ui], altitudes_[ui]},
                                         world_.ue_positions()[i]);
        if (snr > best) {
          best = snr;
          assignment_[i] = u;
        }
      }
    }
    report.assignment = assignment_;
  }

  report.uav_positions = positions_;
  report.uav_altitudes_m = altitudes_;
  report.total_flight_time_s = report.total_flight_m / cfg.cruise_mps;
  return report;
}

double MultiSkyRan::mean_throughput_bps() const {
  expects(assignment_.size() == world_.ue_positions().size(),
          "MultiSkyRan: run an epoch before querying service metrics");
  double sum = 0.0;
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    const auto u = static_cast<std::size_t>(assignment_[i]);
    sum += world_.link_throughput_bps(geo::Vec3{positions_[u], altitudes_[u]},
                                      world_.ue_positions()[i]);
  }
  return sum / static_cast<double>(assignment_.size());
}

double MultiSkyRan::min_snr_db() const {
  expects(assignment_.size() == world_.ue_positions().size(),
          "MultiSkyRan: run an epoch before querying service metrics");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    const auto u = static_cast<std::size_t>(assignment_[i]);
    best = std::min(best, world_.snr_db(geo::Vec3{positions_[u], altitudes_[u]},
                                        world_.ue_positions()[i]));
  }
  return best;
}

}  // namespace skyran::core
