// Configuration for the SkyRAN epoch state machine: all operator-settable
// knobs the paper names (epoch trigger threshold ~10%, REM reuse radius R =
// 10 m, measurement budget, K range, placement objective).
#pragma once

#include <cstdint>

#include "kernels/kernels.hpp"
#include "localization/localizer.hpp"
#include "lte/traffic_plane.hpp"
#include "rem/placement.hpp"
#include "rem/planner.hpp"
#include "rem/rem.hpp"
#include "sim/faults.hpp"
#include "sim/measurement.hpp"
#include "uav/battery.hpp"

namespace skyran::core {

/// How the epoch obtains UE positions (the PHY pipeline is the real system;
/// the other modes support ablations like Fig. 9 and fast scale-up sweeps).
enum class LocalizationMode {
  kPhy,            ///< full SRS/ToF/multilateration pipeline
  kPerfect,        ///< oracle positions (upper bound)
  kGaussianError,  ///< oracle + injected error of a configured magnitude
};

/// Service phase (epoch step "serve"): after placement, a per-TTI traffic
/// plane carries MAC-level load from the chosen position so the epoch report
/// scores what the RAN actually delivers, not just SNR.
struct ServicePhaseConfig {
  /// TTIs (1 ms each) of traffic served per epoch; 0 disables the phase.
  int ttis = 256;
  /// Traffic-plane knobs. carrier and seed are overwritten per epoch (the
  /// world's carrier; a seed derived from the SkyRan seed and epoch number).
  lte::TrafficPlaneConfig plane{};
  /// Traffic model every served UE runs (CBR keeps queue-delay percentiles
  /// meaningful; switch to kFullBuffer for pure capacity numbers).
  lte::TrafficSpec ue_traffic{.model = lte::TrafficModel::kCbr, .rate_bps = 2e6};
  /// Score candidate positions under load, not only SNR: the next epoch's
  /// placement subtracts 10*log10 of each UE's relative offered+served load
  /// (measured by this service phase) from that UE's REM before the
  /// objective is evaluated, so a UE carrying 10x the mean load needs 10 dB
  /// more headroom to tie. Off by default: the pure-SNR placement path and
  /// all its outputs stay bit-identical.
  bool load_weighted_placement = false;
};

struct SkyRanConfig {
  /// Working REM raster (the paper uses 1 m on the testbed; coarser cells
  /// keep large-area sweeps tractable and are reported as such).
  double rem_cell_m = 4.0;

  /// New epoch when served performance drops below (1 - threshold) of the
  /// value at placement time (Sec 3.5; operator default 10%).
  double epoch_drop_threshold = 0.10;

  /// REM positional reuse radius R (Sec 3.5).
  double reuse_radius_m = 10.0;

  /// Per-epoch measurement tour budget in meters (0 = planner unconstrained).
  double measurement_budget_m = 800.0;

  rem::PlannerConfig planner{};
  rem::IdwParams idw{};
  localization::LocalizerConfig localizer{};
  sim::MeasurementConfig measurement{};
  rem::PlacementObjective objective = rem::PlacementObjective::kMaxMin;

  LocalizationMode localization_mode = LocalizationMode::kPhy;
  /// Mean localization error injected in kGaussianError mode, meters.
  double injected_error_m = 0.0;

  /// Optimal-altitude search parameters (Step 5).
  double start_altitude_m = 120.0;
  double min_altitude_m = 40.0;
  double altitude_step_m = 10.0;

  double cruise_mps = uav::kDefaultCruiseMps;

  /// Measurement tours stop once the battery falls to this fraction: the
  /// remainder is reserved for serving and returning home (Sec 2.5: "the
  /// shorter the measurement flight, the longer the LTE endurance").
  double battery_reserve_fraction = 0.3;

  /// Energy model of the airframe's battery (capacity, hover/forward draw).
  uav::BatteryParams battery{};

  /// Per-epoch service phase (traffic served after placement).
  ServicePhaseConfig service{};

  /// Scripted fault schedule applied to every epoch (times are epoch
  /// flight-time seconds, t = 0 at the localization flight's start). An
  /// empty plan — the default — is a strict no-op: the zero-fault pipeline
  /// is bit-identical to one built without fault injection.
  sim::FaultPlan faults{};

  /// Worker threads for the per-epoch hot paths (SRS correlation, REM
  /// interpolation, k-means, placement scoring). 0 = auto: the
  /// SKYRAN_THREADS environment variable if set, else hardware concurrency.
  /// 1 forces fully serial execution. Scoped to this instance (applied as a
  /// thread-local override inside each SkyRan entry point, never as
  /// process-wide state). Parallel results are bit-for-bit identical to
  /// serial (see DESIGN.md, "Concurrency model").
  int threads = 0;

  /// SIMD level for the kernels layer (SRS peak scan, IDW accumulate,
  /// k-means argmin, path-loss batches). kAuto defers to the SKYRAN_SIMD
  /// environment variable, else the best level the CPU supports. Unlike
  /// `threads` this is applied process-wide at construction (kernels run on
  /// pool workers, which must agree with the submitting thread), and like
  /// `threads` it is resume-neutral: it is not part of the snapshot config
  /// digest. EXACT kernels are bit-identical at every level; TOLERANCE
  /// kernels are documented in src/kernels/kernels.hpp.
  kernels::SimdMode simd = kernels::SimdMode::kAuto;
};

}  // namespace skyran::core
