#include "core/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/config.hpp"
#include "core/skyran.hpp"
#include "geo/binio.hpp"
#include "obs/obs.hpp"
#include "sim/crash_point.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace skyran::core {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'Y', 'S'};

// FNV-1a-style byte mixer shared by the config and report digests.
void mix_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
}

template <typename T>
void mix(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>, "digest fields must be trivial");
  mix_bytes(h, &v, sizeof(T));
}

template <typename T>
void mix_vec(std::uint64_t& h, const std::vector<T>& v) {
  mix(h, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) mix_bytes(h, v.data(), v.size() * sizeof(T));
}

}  // namespace

std::uint64_t config_digest(const SkyRanConfig& c) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, c.rem_cell_m);
  mix(h, c.epoch_drop_threshold);
  mix(h, c.reuse_radius_m);
  mix(h, c.measurement_budget_m);
  mix(h, static_cast<std::int32_t>(c.localization_mode));
  mix(h, c.injected_error_m);
  mix(h, c.start_altitude_m);
  mix(h, c.min_altitude_m);
  mix(h, c.altitude_step_m);
  mix(h, c.cruise_mps);
  mix(h, c.battery_reserve_fraction);
  mix(h, c.battery.capacity_wh);
  mix(h, c.battery.hover_power_w);
  mix(h, c.battery.forward_power_w_per_mps);
  mix(h, c.planner.k_min);
  mix(h, c.planner.k_max);
  mix(h, c.idw.k_neighbors);
  mix(h, c.idw.power);
  mix(h, c.idw.max_radius_m);
  mix(h, c.idw.background_blend_m);
  mix(h, c.localizer.flight_length_m);
  mix(h, c.localizer.flight_leg_m);
  mix(h, c.localizer.flight_altitude_m);
  mix(h, c.localizer.cruise_mps);
  mix(h, c.localizer.gps_sigma_m);
  mix(h, c.measurement.report_rate_hz);
  mix(h, c.measurement.fading_sigma_db);
  mix(h, static_cast<std::int32_t>(c.objective));
  mix(h, c.service.ttis);
  mix(h, static_cast<std::int32_t>(c.service.ue_traffic.model));
  mix(h, c.service.ue_traffic.rate_bps);
  mix(h, static_cast<std::uint8_t>(c.service.load_weighted_placement));
  mix(h, c.faults.seed);
  mix(h, static_cast<std::uint64_t>(c.faults.windows.size()));
  for (const sim::FaultWindow& w : c.faults.windows) {
    mix(h, static_cast<std::int32_t>(w.kind));
    mix(h, w.start_s);
    mix(h, w.end_s);
    mix(h, w.magnitude);
    mix(h, w.heading_rad);
    mix(h, w.cell);
  }
  // threads intentionally excluded: serial == N-worker bit-identity makes
  // the worker count resume-neutral.
  return h;
}

std::uint64_t report_digest(const EpochReport& r) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  mix(h, r.epoch);
  mix_vec(h, r.estimated_ue_positions);
  mix(h, static_cast<std::uint64_t>(r.reused_rem.size()));
  for (const bool b : r.reused_rem) mix(h, static_cast<std::uint8_t>(b));
  mix(h, r.localization_flight_m);
  mix(h, r.altitude_flight_m);
  mix(h, r.measurement_flight_m);
  mix(h, r.total_flight_m);
  mix(h, r.flight_time_s);
  mix(h, r.altitude_m);
  mix(h, r.position);
  mix(h, r.predicted_objective_snr_db);
  mix(h, r.served_mean_throughput_bps);
  mix(h, r.planned_k);
  mix(h, r.info_to_cost);
  mix(h, r.measurement_rounds);
  const lte::TrafficPlaneReport& t = r.traffic;
  mix(h, t.ttis);
  mix(h, static_cast<std::uint64_t>(t.ues));
  mix(h, t.scheduled_ue_ttis);
  mix(h, t.offered_bits);
  mix(h, t.served_bits);
  mix(h, t.dropped_bits);
  mix(h, t.aggregate_throughput_bps);
  mix(h, t.fairness_jain);
  mix(h, t.p50_throughput_bps);
  mix(h, t.p90_throughput_bps);
  mix(h, t.p99_throughput_bps);
  mix(h, t.p50_delay_ms);
  mix(h, t.p90_delay_ms);
  mix(h, t.p99_delay_ms);
  mix(h, t.harq_first_tx);
  mix(h, t.harq_retx);
  mix(h, t.harq_drops);
  mix(h, t.harq_residual_bler);
  mix(h, t.mbsfn_subframes);
  mix(h, t.multicast_served_bits);
  mix(h, t.multicast_backlog_bits);
  mix(h, static_cast<std::uint8_t>(r.degraded));
  return h;
}

void Snapshot::save(std::ostream& os) const {
  geo::BinWriter w;
  w.pod(seed);
  w.pod(config_fingerprint);
  w.pod(static_cast<std::int32_t>(epoch));
  w.pod(position);
  w.pod(altitude_m);
  w.pod(static_cast<std::uint8_t>(altitude_known));
  w.pod(total_flight_m);
  w.pod(throughput_at_placement_bps);
  w.pod(battery_remaining_wh);
  w.str(rng_state);
  w.pod(static_cast<std::uint64_t>(last_estimates.size()));
  w.bytes(last_estimates.data(), last_estimates.size() * sizeof(geo::Vec2));
  w.pod(static_cast<std::uint64_t>(ue_positions.size()));
  w.bytes(ue_positions.data(), ue_positions.size() * sizeof(geo::Vec3));
  {
    std::ostringstream store_bytes;
    store.save(store_bytes);
    w.str(store_bytes.str());
  }
  w.pod(static_cast<std::uint64_t>(history.size()));
  for (const HistoryEntry& e : history) {
    w.pod(e.position);
    w.pod(static_cast<std::uint64_t>(e.trajectories.size()));
    for (const geo::Path& p : e.trajectories) {
      w.pod(static_cast<std::uint64_t>(p.points().size()));
      w.bytes(p.points().data(), p.points().size() * sizeof(geo::Vec2));
    }
  }
  w.pod(static_cast<std::uint64_t>(ue_service_load.size()));
  w.bytes(ue_service_load.data(), ue_service_load.size() * sizeof(double));
  geo::write_envelope(os, kMagic, kVersion, w);
  if (!os) throw SnapshotIoError("Snapshot::save: write failed");
}

Snapshot Snapshot::load(std::istream& is) {
  geo::Envelope env;
  try {
    env = geo::read_envelope(is, kMagic, /*min_version=*/1, kVersion, "Snapshot::load");
  } catch (const geo::BinVersionError& e) {
    throw SnapshotVersionSkew(e.what());
  } catch (const geo::BinTruncatedError& e) {
    throw SnapshotTruncated(e.what());
  } catch (const geo::BinFormatError& e) {
    throw SnapshotCorrupt(e.what());
  }
  try {
    geo::BinReader r(env.payload);
    Snapshot s;
    s.seed = r.pod<std::uint64_t>();
    s.config_fingerprint = r.pod<std::uint64_t>();
    s.epoch = r.pod<std::int32_t>();
    s.position = r.pod<geo::Vec2>();
    s.altitude_m = r.pod<double>();
    s.altitude_known = r.pod<std::uint8_t>() != 0;
    s.total_flight_m = r.pod<double>();
    s.throughput_at_placement_bps = r.pod<double>();
    s.battery_remaining_wh = r.pod<double>();
    s.rng_state = r.str();
    s.last_estimates.resize(r.pod<std::uint64_t>());
    for (geo::Vec2& v : s.last_estimates) v = r.pod<geo::Vec2>();
    s.ue_positions.resize(r.pod<std::uint64_t>());
    for (geo::Vec3& v : s.ue_positions) v = r.pod<geo::Vec3>();
    {
      std::istringstream store_bytes(r.str());
      s.store = rem::RemStore::load(store_bytes);
    }
    const auto n_history = r.pod<std::uint64_t>();
    s.history.reserve(n_history);
    for (std::uint64_t i = 0; i < n_history; ++i) {
      HistoryEntry e;
      e.position = r.pod<geo::Vec2>();
      const auto n_paths = r.pod<std::uint64_t>();
      e.trajectories.reserve(n_paths);
      for (std::uint64_t p = 0; p < n_paths; ++p) {
        std::vector<geo::Vec2> pts(r.pod<std::uint64_t>());
        for (geo::Vec2& v : pts) v = r.pod<geo::Vec2>();
        e.trajectories.emplace_back(std::move(pts));
      }
      s.history.push_back(std::move(e));
    }
    if (env.version >= 2) {
      s.ue_service_load.resize(r.pod<std::uint64_t>());
      for (double& v : s.ue_service_load) v = r.pod<double>();
    }
    if (!r.done())
      throw SnapshotCorrupt("Snapshot::load: trailing bytes after last field");
    return s;
  } catch (const geo::BinFormatError& e) {
    // The CRC passed, so an overrun here means the payload was assembled by
    // an incompatible writer, not flipped on disk — still a corrupt reject.
    throw SnapshotCorrupt(e.what());
  }
}

// ---------------------------------------------------------- SnapshotManager

GenerationStore::GenerationStore(std::filesystem::path dir, std::string prefix,
                                 std::string extension, int keep)
    : dir_(std::move(dir)),
      prefix_(std::move(prefix)),
      extension_(std::move(extension)),
      keep_(std::max(keep, 2)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw SnapshotIoError("GenerationStore: cannot create " + dir_.string());
}

namespace {

#if !defined(_WIN32)
/// Write `bytes` to `path` with fsync, visiting the mid-write crash point
/// halfway through so the harness can tear the file at a byte boundary.
void write_file_synced(const std::filesystem::path& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw SnapshotIoError("GenerationStore: cannot open " + path.string());
  const auto write_all = [fd, &path](const char* p, std::size_t n) {
    while (n > 0) {
      const ssize_t w = ::write(fd, p, n);
      if (w < 0) {
        ::close(fd);
        throw SnapshotIoError("GenerationStore: write failed on " + path.string());
      }
      p += w;
      n -= static_cast<std::size_t>(w);
    }
  };
  const std::size_t half = bytes.size() / 2;
  write_all(bytes.data(), half);
  sim::crash_point("ckpt.mid_write");
  write_all(bytes.data() + half, bytes.size() - half);
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw SnapshotIoError("GenerationStore: fsync failed on " + path.string());
  }
  ::close(fd);
}

void sync_directory(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse directory fds
  ::fsync(fd);
  ::close(fd);
}
#else
void write_file_synced(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  const std::size_t half = bytes.size() / 2;
  os.write(bytes.data(), static_cast<std::streamsize>(half));
  sim::crash_point("ckpt.mid_write");
  os.write(bytes.data() + half, static_cast<std::streamsize>(bytes.size() - half));
  os.flush();
  if (!os) throw SnapshotIoError("GenerationStore: write failed on " + path.string());
}

void sync_directory(const std::filesystem::path&) {}
#endif

}  // namespace

std::filesystem::path GenerationStore::save(int generation, const std::string& bytes) {
  char num[16];
  std::snprintf(num, sizeof(num), "%08d", generation);
  const std::filesystem::path final_path = dir_ / (prefix_ + num + extension_);
  const std::filesystem::path tmp_path = final_path.string() + ".tmp";
  write_file_synced(tmp_path, bytes);
  sim::crash_point("ckpt.pre_rename");
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec)
    throw SnapshotIoError("GenerationStore: rename to " + final_path.string() + " failed: " +
                          ec.message());
  sync_directory(dir_);

  // Prune to the newest keep_ generations plus any stray temp files from
  // older torn writes (never the temp we just renamed away).
  std::vector<std::filesystem::path> gens = generations();
  while (gens.size() > static_cast<std::size_t>(keep_)) {
    std::filesystem::remove(gens.front(), ec);
    gens.erase(gens.begin());
    SKYRAN_COUNTER_INC("ckpt.pruned");
  }
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".tmp" && entry.path() != tmp_path)
      std::filesystem::remove(entry.path(), ec);
  }
  return final_path;
}

std::vector<std::filesystem::path> GenerationStore::generations() const {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (generation_of(entry.path()) >= 0) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());  // zero-padded generation: lexicographic == numeric
  return out;
}

int GenerationStore::generation_of(const std::filesystem::path& path) const {
  const std::string name = path.filename().string();
  if (name.size() != prefix_.size() + 8 + extension_.size()) return -1;
  if (name.rfind(prefix_, 0) != 0) return -1;
  if (name.compare(name.size() - extension_.size(), extension_.size(), extension_) != 0)
    return -1;
  int value = 0;
  for (std::size_t i = prefix_.size(); i < prefix_.size() + 8; ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    value = value * 10 + (name[i] - '0');
  }
  return value;
}

SnapshotManager::SnapshotManager(std::filesystem::path dir, int keep)
    : store_(std::move(dir), "ckpt-", ".skyc", keep) {}

std::filesystem::path SnapshotManager::save(const Snapshot& snapshot) {
  SKYRAN_TRACE_SPAN("ckpt.save");
  std::ostringstream buf;
  snapshot.save(buf);
  const std::string bytes = buf.str();
  const std::filesystem::path final_path = store_.save(snapshot.epoch, bytes);
  SKYRAN_COUNTER_INC("ckpt.saves");
  SKYRAN_GAUGE_SET("ckpt.bytes", static_cast<double>(bytes.size()));
  SKYRAN_GAUGE_SET("ckpt.generation", static_cast<double>(snapshot.epoch));
  return final_path;
}

std::vector<std::filesystem::path> SnapshotManager::generations() const {
  return store_.generations();
}

std::optional<Snapshot> SnapshotManager::load_latest() {
  SKYRAN_TRACE_SPAN("ckpt.restore");
  last_errors_.clear();
  std::vector<std::filesystem::path> gens = store_.generations();
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    std::ifstream is(*it, std::ios::binary);
    if (!is) {
      last_errors_.push_back(it->string() + ": cannot open");
      SKYRAN_COUNTER_INC("ckpt.load_rejects");
      continue;
    }
    try {
      Snapshot s = Snapshot::load(is);
      SKYRAN_COUNTER_INC("ckpt.restores");
      if (it != gens.rbegin()) SKYRAN_COUNTER_INC("ckpt.fallbacks");
      return s;
    } catch (const SnapshotError& e) {
      last_errors_.push_back(it->string() + ": " + e.what());
      SKYRAN_COUNTER_INC("ckpt.load_rejects");
    }
  }
  return std::nullopt;
}

}  // namespace skyran::core
