// Reusable concurrency layer for the per-epoch hot paths (SRS correlation,
// REM interpolation, k-means sweeps, placement scoring). A fixed pool of
// worker threads executes index-chunked parallel loops with a determinism
// contract: chunk boundaries are a function of the range length only (never
// of the worker count), so a chunked reduction combines partial results in
// the same order no matter how many threads ran, and parallel output is
// bit-for-bit identical to serial output. Worker count resolves as
// ScopedWorkers (thread-local) > set_global_workers() > SKYRAN_THREADS env
// var > hardware concurrency; a count of 1 forces fully inline serial
// execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace skyran::core {

/// Body of a chunked loop: receives (chunk_index, begin, end) with
/// begin/end indices into the caller's range. Chunks are disjoint and cover
/// the range; chunk_index orders them (chunk c covers [c*grain, ...)).
using ChunkBody = std::function<void(std::size_t, std::size_t, std::size_t)>;

class ThreadPool {
 public:
  /// Pool with `workers` total execution lanes (the calling thread counts as
  /// one: `workers - 1` threads are spawned). workers == 1 spawns nothing
  /// and every run_chunks call executes inline, in chunk order.
  explicit ThreadPool(int workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return workers_; }

  /// Split [0, n) into ceil(n / grain) chunks and run `body` once per chunk.
  /// Blocks until every chunk completed; the calling thread participates.
  /// The first exception thrown by any chunk is rethrown here. grain == 0
  /// picks default_grain(n). `max_lanes` caps how many execution lanes this
  /// call may use (0 = all of the pool's lanes; 1 = inline serial) without
  /// resizing the pool — chunk boundaries never depend on it, so results are
  /// identical for any cap. Nested calls from inside a body are safe (the
  /// inner call degrades toward inline execution when workers are busy).
  void run_chunks(std::size_t n, std::size_t grain, const ChunkBody& body,
                  int max_lanes = 0);

  /// Deterministic chunking used when the caller does not pick a grain:
  /// at most 64 chunks, independent of the worker count.
  static std::size_t default_grain(std::size_t n);

 private:
  void worker_loop();

  int workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

/// std::thread::hardware_concurrency with a floor of 1.
int hardware_workers();

/// Worker count the next parallel_* call on the current thread will use:
/// ScopedWorkers (thread-local) override if alive, else the explicit global
/// override, else a positive integer SKYRAN_THREADS environment variable,
/// else hardware concurrency.
int configured_workers();

/// Override the process-wide worker count (tests, CLI plumbing). workers <= 0
/// clears the override back to auto. Safe to call at any time, even while
/// parallel work is in flight on other threads: the shared pool is never
/// destroyed from here (in-flight loops keep it alive via shared_ptr and it
/// only ever grows); the new count takes effect on the next parallel_* call.
void set_global_workers(int workers);

/// RAII thread-local worker-count override: parallel_* calls made from the
/// constructing thread while this object is alive use `workers` lanes
/// (1 forces inline serial execution). workers <= 0 leaves the resolution
/// chain untouched. Restores the previous thread-local value on destruction.
/// Lets a component (e.g. one SkyRan instance) honor its configured thread
/// count without mutating process-wide state out from under other instances.
class ScopedWorkers {
 public:
  explicit ScopedWorkers(int workers);
  ~ScopedWorkers();
  ScopedWorkers(const ScopedWorkers&) = delete;
  ScopedWorkers& operator=(const ScopedWorkers&) = delete;

 private:
  int previous_;
};

/// Process-wide pool, (re)built lazily so its lane count is at least
/// configured_workers(). The pool only grows — a request for fewer lanes is
/// served by the existing pool with a per-call cap — so a rebuild never
/// invalidates the pool another thread is running on; callers hold the
/// returned shared_ptr for the duration of their loop.
std::shared_ptr<ThreadPool> acquire_global_pool();

/// Chunked parallel loop over [0, n) on the global pool, using
/// configured_workers() lanes.
void parallel_for_chunks(std::size_t n, std::size_t grain, const ChunkBody& body);

/// Element-wise parallel loop over [0, n) on the global pool. `fn` must be
/// safe to run concurrently for distinct indices; iteration order within a
/// chunk is ascending.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

/// Deterministic parallel reduction: per_chunk(begin, end) -> T runs per
/// chunk in parallel, then partials are combined serially in chunk order
/// starting from `identity`. Because chunk boundaries depend only on n and
/// grain, the result is bit-for-bit independent of the worker count.
template <typename T, typename PerChunk, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T identity, PerChunk&& per_chunk,
                  Combine&& combine) {
  static_assert(!std::is_same_v<T, bool>,
                "parallel_reduce<bool> is unsafe: std::vector<bool> packs bits, so "
                "concurrent per-chunk partial writes race on the shared word. "
                "Reduce over int (0/1) and compare to 0 instead.");
  if (n == 0) return identity;
  if (grain == 0) grain = ThreadPool::default_grain(n);
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<T> partial(chunks, identity);
  parallel_for_chunks(n, grain,
                      [&](std::size_t c, std::size_t begin, std::size_t end) {
                        partial[c] = per_chunk(begin, end);
                      });
  T acc = identity;
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(acc, partial[c]);
  return acc;
}

}  // namespace skyran::core
