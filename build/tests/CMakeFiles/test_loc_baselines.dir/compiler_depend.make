# Empty compiler generated dependencies file for test_loc_baselines.
# This may be replaced when dependencies are built.
