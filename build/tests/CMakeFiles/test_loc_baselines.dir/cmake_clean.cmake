file(REMOVE_RECURSE
  "CMakeFiles/test_loc_baselines.dir/test_loc_baselines.cpp.o"
  "CMakeFiles/test_loc_baselines.dir/test_loc_baselines.cpp.o.d"
  "test_loc_baselines"
  "test_loc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
