file(REMOVE_RECURSE
  "CMakeFiles/test_localization.dir/test_localization.cpp.o"
  "CMakeFiles/test_localization.dir/test_localization.cpp.o.d"
  "test_localization"
  "test_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
