# Empty dependencies file for test_kriging.
# This may be replaced when dependencies are built.
