file(REMOVE_RECURSE
  "CMakeFiles/test_kriging.dir/test_kriging.cpp.o"
  "CMakeFiles/test_kriging.dir/test_kriging.cpp.o.d"
  "test_kriging"
  "test_kriging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kriging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
