# Empty compiler generated dependencies file for test_rem_aggregation.
# This may be replaced when dependencies are built.
