file(REMOVE_RECURSE
  "CMakeFiles/test_rem_aggregation.dir/test_rem_aggregation.cpp.o"
  "CMakeFiles/test_rem_aggregation.dir/test_rem_aggregation.cpp.o.d"
  "test_rem_aggregation"
  "test_rem_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rem_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
