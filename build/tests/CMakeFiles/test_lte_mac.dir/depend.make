# Empty dependencies file for test_lte_mac.
# This may be replaced when dependencies are built.
