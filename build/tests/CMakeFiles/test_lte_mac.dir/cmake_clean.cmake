file(REMOVE_RECURSE
  "CMakeFiles/test_lte_mac.dir/test_lte_mac.cpp.o"
  "CMakeFiles/test_lte_mac.dir/test_lte_mac.cpp.o.d"
  "test_lte_mac"
  "test_lte_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
