file(REMOVE_RECURSE
  "CMakeFiles/test_layered.dir/test_layered.cpp.o"
  "CMakeFiles/test_layered.dir/test_layered.cpp.o.d"
  "test_layered"
  "test_layered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
