# Empty compiler generated dependencies file for test_layered.
# This may be replaced when dependencies are built.
