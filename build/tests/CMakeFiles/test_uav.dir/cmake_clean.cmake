file(REMOVE_RECURSE
  "CMakeFiles/test_uav.dir/test_uav.cpp.o"
  "CMakeFiles/test_uav.dir/test_uav.cpp.o.d"
  "test_uav"
  "test_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
