file(REMOVE_RECURSE
  "CMakeFiles/test_terrain.dir/test_terrain.cpp.o"
  "CMakeFiles/test_terrain.dir/test_terrain.cpp.o.d"
  "test_terrain"
  "test_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
