# Empty compiler generated dependencies file for test_terrain.
# This may be replaced when dependencies are built.
