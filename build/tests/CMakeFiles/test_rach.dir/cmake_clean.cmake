file(REMOVE_RECURSE
  "CMakeFiles/test_rach.dir/test_rach.cpp.o"
  "CMakeFiles/test_rach.dir/test_rach.cpp.o.d"
  "test_rach"
  "test_rach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
