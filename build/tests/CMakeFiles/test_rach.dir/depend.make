# Empty dependencies file for test_rach.
# This may be replaced when dependencies are built.
