file(REMOVE_RECURSE
  "CMakeFiles/test_rem.dir/test_rem.cpp.o"
  "CMakeFiles/test_rem.dir/test_rem.cpp.o.d"
  "test_rem"
  "test_rem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
