# Empty compiler generated dependencies file for test_rem.
# This may be replaced when dependencies are built.
