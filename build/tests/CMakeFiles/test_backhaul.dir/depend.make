# Empty dependencies file for test_backhaul.
# This may be replaced when dependencies are built.
