file(REMOVE_RECURSE
  "CMakeFiles/test_backhaul.dir/test_backhaul.cpp.o"
  "CMakeFiles/test_backhaul.dir/test_backhaul.cpp.o.d"
  "test_backhaul"
  "test_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
