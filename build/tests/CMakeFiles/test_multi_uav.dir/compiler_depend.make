# Empty compiler generated dependencies file for test_multi_uav.
# This may be replaced when dependencies are built.
