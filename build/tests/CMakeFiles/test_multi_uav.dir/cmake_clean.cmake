file(REMOVE_RECURSE
  "CMakeFiles/test_multi_uav.dir/test_multi_uav.cpp.o"
  "CMakeFiles/test_multi_uav.dir/test_multi_uav.cpp.o.d"
  "test_multi_uav"
  "test_multi_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
