# Empty compiler generated dependencies file for test_lte_phy.
# This may be replaced when dependencies are built.
