file(REMOVE_RECURSE
  "CMakeFiles/test_lte_phy.dir/test_lte_phy.cpp.o"
  "CMakeFiles/test_lte_phy.dir/test_lte_phy.cpp.o.d"
  "test_lte_phy"
  "test_lte_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lte_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
