file(REMOVE_RECURSE
  "CMakeFiles/skyran_cli.dir/skyran_cli.cpp.o"
  "CMakeFiles/skyran_cli.dir/skyran_cli.cpp.o.d"
  "skyran_cli"
  "skyran_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
