# Empty dependencies file for skyran_cli.
# This may be replaced when dependencies are built.
