file(REMOVE_RECURSE
  "CMakeFiles/example_disaster_recovery.dir/disaster_recovery.cpp.o"
  "CMakeFiles/example_disaster_recovery.dir/disaster_recovery.cpp.o.d"
  "example_disaster_recovery"
  "example_disaster_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_disaster_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
