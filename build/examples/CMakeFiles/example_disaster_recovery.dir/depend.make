# Empty dependencies file for example_disaster_recovery.
# This may be replaced when dependencies are built.
