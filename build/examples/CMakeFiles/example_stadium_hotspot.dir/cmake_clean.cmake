file(REMOVE_RECURSE
  "CMakeFiles/example_stadium_hotspot.dir/stadium_hotspot.cpp.o"
  "CMakeFiles/example_stadium_hotspot.dir/stadium_hotspot.cpp.o.d"
  "example_stadium_hotspot"
  "example_stadium_hotspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stadium_hotspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
