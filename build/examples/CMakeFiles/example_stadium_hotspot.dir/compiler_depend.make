# Empty compiler generated dependencies file for example_stadium_hotspot.
# This may be replaced when dependencies are built.
