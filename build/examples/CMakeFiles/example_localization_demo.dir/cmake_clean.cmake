file(REMOVE_RECURSE
  "CMakeFiles/example_localization_demo.dir/localization_demo.cpp.o"
  "CMakeFiles/example_localization_demo.dir/localization_demo.cpp.o.d"
  "example_localization_demo"
  "example_localization_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_localization_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
