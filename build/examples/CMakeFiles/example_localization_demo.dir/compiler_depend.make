# Empty compiler generated dependencies file for example_localization_demo.
# This may be replaced when dependencies are built.
