# Empty compiler generated dependencies file for example_urban_coverage.
# This may be replaced when dependencies are built.
