file(REMOVE_RECURSE
  "CMakeFiles/example_urban_coverage.dir/urban_coverage.cpp.o"
  "CMakeFiles/example_urban_coverage.dir/urban_coverage.cpp.o.d"
  "example_urban_coverage"
  "example_urban_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_urban_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
