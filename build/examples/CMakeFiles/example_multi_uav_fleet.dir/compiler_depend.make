# Empty compiler generated dependencies file for example_multi_uav_fleet.
# This may be replaced when dependencies are built.
