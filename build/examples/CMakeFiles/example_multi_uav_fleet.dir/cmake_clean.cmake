file(REMOVE_RECURSE
  "CMakeFiles/example_multi_uav_fleet.dir/multi_uav_fleet.cpp.o"
  "CMakeFiles/example_multi_uav_fleet.dir/multi_uav_fleet.cpp.o.d"
  "example_multi_uav_fleet"
  "example_multi_uav_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_uav_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
