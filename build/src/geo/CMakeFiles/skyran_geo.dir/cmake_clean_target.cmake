file(REMOVE_RECURSE
  "libskyran_geo.a"
)
