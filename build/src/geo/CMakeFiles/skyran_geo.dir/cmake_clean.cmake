file(REMOVE_RECURSE
  "CMakeFiles/skyran_geo.dir/noise.cpp.o"
  "CMakeFiles/skyran_geo.dir/noise.cpp.o.d"
  "CMakeFiles/skyran_geo.dir/path.cpp.o"
  "CMakeFiles/skyran_geo.dir/path.cpp.o.d"
  "CMakeFiles/skyran_geo.dir/stats.cpp.o"
  "CMakeFiles/skyran_geo.dir/stats.cpp.o.d"
  "libskyran_geo.a"
  "libskyran_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
