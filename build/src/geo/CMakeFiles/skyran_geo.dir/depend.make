# Empty dependencies file for skyran_geo.
# This may be replaced when dependencies are built.
