
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/noise.cpp" "src/geo/CMakeFiles/skyran_geo.dir/noise.cpp.o" "gcc" "src/geo/CMakeFiles/skyran_geo.dir/noise.cpp.o.d"
  "/root/repo/src/geo/path.cpp" "src/geo/CMakeFiles/skyran_geo.dir/path.cpp.o" "gcc" "src/geo/CMakeFiles/skyran_geo.dir/path.cpp.o.d"
  "/root/repo/src/geo/stats.cpp" "src/geo/CMakeFiles/skyran_geo.dir/stats.cpp.o" "gcc" "src/geo/CMakeFiles/skyran_geo.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
