
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lte/amc.cpp" "src/lte/CMakeFiles/skyran_lte.dir/amc.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/amc.cpp.o.d"
  "/root/repo/src/lte/backhaul.cpp" "src/lte/CMakeFiles/skyran_lte.dir/backhaul.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/backhaul.cpp.o.d"
  "/root/repo/src/lte/enodeb.cpp" "src/lte/CMakeFiles/skyran_lte.dir/enodeb.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/enodeb.cpp.o.d"
  "/root/repo/src/lte/epc.cpp" "src/lte/CMakeFiles/skyran_lte.dir/epc.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/epc.cpp.o.d"
  "/root/repo/src/lte/fft.cpp" "src/lte/CMakeFiles/skyran_lte.dir/fft.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/fft.cpp.o.d"
  "/root/repo/src/lte/rach.cpp" "src/lte/CMakeFiles/skyran_lte.dir/rach.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/rach.cpp.o.d"
  "/root/repo/src/lte/ranging.cpp" "src/lte/CMakeFiles/skyran_lte.dir/ranging.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/ranging.cpp.o.d"
  "/root/repo/src/lte/sampling.cpp" "src/lte/CMakeFiles/skyran_lte.dir/sampling.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/sampling.cpp.o.d"
  "/root/repo/src/lte/scheduler.cpp" "src/lte/CMakeFiles/skyran_lte.dir/scheduler.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/scheduler.cpp.o.d"
  "/root/repo/src/lte/srs.cpp" "src/lte/CMakeFiles/skyran_lte.dir/srs.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/srs.cpp.o.d"
  "/root/repo/src/lte/srs_channel.cpp" "src/lte/CMakeFiles/skyran_lte.dir/srs_channel.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/srs_channel.cpp.o.d"
  "/root/repo/src/lte/zadoff_chu.cpp" "src/lte/CMakeFiles/skyran_lte.dir/zadoff_chu.cpp.o" "gcc" "src/lte/CMakeFiles/skyran_lte.dir/zadoff_chu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/skyran_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/skyran_terrain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
