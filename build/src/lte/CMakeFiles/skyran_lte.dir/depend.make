# Empty dependencies file for skyran_lte.
# This may be replaced when dependencies are built.
