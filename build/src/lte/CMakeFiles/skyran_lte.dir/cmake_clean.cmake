file(REMOVE_RECURSE
  "CMakeFiles/skyran_lte.dir/amc.cpp.o"
  "CMakeFiles/skyran_lte.dir/amc.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/backhaul.cpp.o"
  "CMakeFiles/skyran_lte.dir/backhaul.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/enodeb.cpp.o"
  "CMakeFiles/skyran_lte.dir/enodeb.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/epc.cpp.o"
  "CMakeFiles/skyran_lte.dir/epc.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/fft.cpp.o"
  "CMakeFiles/skyran_lte.dir/fft.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/rach.cpp.o"
  "CMakeFiles/skyran_lte.dir/rach.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/ranging.cpp.o"
  "CMakeFiles/skyran_lte.dir/ranging.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/sampling.cpp.o"
  "CMakeFiles/skyran_lte.dir/sampling.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/scheduler.cpp.o"
  "CMakeFiles/skyran_lte.dir/scheduler.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/srs.cpp.o"
  "CMakeFiles/skyran_lte.dir/srs.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/srs_channel.cpp.o"
  "CMakeFiles/skyran_lte.dir/srs_channel.cpp.o.d"
  "CMakeFiles/skyran_lte.dir/zadoff_chu.cpp.o"
  "CMakeFiles/skyran_lte.dir/zadoff_chu.cpp.o.d"
  "libskyran_lte.a"
  "libskyran_lte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_lte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
