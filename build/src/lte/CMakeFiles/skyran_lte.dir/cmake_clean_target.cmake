file(REMOVE_RECURSE
  "libskyran_lte.a"
)
