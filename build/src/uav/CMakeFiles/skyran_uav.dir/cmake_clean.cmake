file(REMOVE_RECURSE
  "CMakeFiles/skyran_uav.dir/battery.cpp.o"
  "CMakeFiles/skyran_uav.dir/battery.cpp.o.d"
  "CMakeFiles/skyran_uav.dir/flight.cpp.o"
  "CMakeFiles/skyran_uav.dir/flight.cpp.o.d"
  "CMakeFiles/skyran_uav.dir/gps.cpp.o"
  "CMakeFiles/skyran_uav.dir/gps.cpp.o.d"
  "CMakeFiles/skyran_uav.dir/trajectory.cpp.o"
  "CMakeFiles/skyran_uav.dir/trajectory.cpp.o.d"
  "libskyran_uav.a"
  "libskyran_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
