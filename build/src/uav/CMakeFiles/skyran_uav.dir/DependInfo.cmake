
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uav/battery.cpp" "src/uav/CMakeFiles/skyran_uav.dir/battery.cpp.o" "gcc" "src/uav/CMakeFiles/skyran_uav.dir/battery.cpp.o.d"
  "/root/repo/src/uav/flight.cpp" "src/uav/CMakeFiles/skyran_uav.dir/flight.cpp.o" "gcc" "src/uav/CMakeFiles/skyran_uav.dir/flight.cpp.o.d"
  "/root/repo/src/uav/gps.cpp" "src/uav/CMakeFiles/skyran_uav.dir/gps.cpp.o" "gcc" "src/uav/CMakeFiles/skyran_uav.dir/gps.cpp.o.d"
  "/root/repo/src/uav/trajectory.cpp" "src/uav/CMakeFiles/skyran_uav.dir/trajectory.cpp.o" "gcc" "src/uav/CMakeFiles/skyran_uav.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
