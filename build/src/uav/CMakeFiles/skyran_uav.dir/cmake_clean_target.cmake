file(REMOVE_RECURSE
  "libskyran_uav.a"
)
