# Empty dependencies file for skyran_uav.
# This may be replaced when dependencies are built.
