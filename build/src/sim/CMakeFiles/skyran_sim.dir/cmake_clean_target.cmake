file(REMOVE_RECURSE
  "libskyran_sim.a"
)
