# Empty compiler generated dependencies file for skyran_sim.
# This may be replaced when dependencies are built.
