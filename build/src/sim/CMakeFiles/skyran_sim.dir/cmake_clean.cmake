file(REMOVE_RECURSE
  "CMakeFiles/skyran_sim.dir/baselines.cpp.o"
  "CMakeFiles/skyran_sim.dir/baselines.cpp.o.d"
  "CMakeFiles/skyran_sim.dir/ground_truth.cpp.o"
  "CMakeFiles/skyran_sim.dir/ground_truth.cpp.o.d"
  "CMakeFiles/skyran_sim.dir/measurement.cpp.o"
  "CMakeFiles/skyran_sim.dir/measurement.cpp.o.d"
  "CMakeFiles/skyran_sim.dir/service.cpp.o"
  "CMakeFiles/skyran_sim.dir/service.cpp.o.d"
  "CMakeFiles/skyran_sim.dir/table.cpp.o"
  "CMakeFiles/skyran_sim.dir/table.cpp.o.d"
  "CMakeFiles/skyran_sim.dir/world.cpp.o"
  "CMakeFiles/skyran_sim.dir/world.cpp.o.d"
  "libskyran_sim.a"
  "libskyran_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
