file(REMOVE_RECURSE
  "CMakeFiles/skyran_localization.dir/baselines.cpp.o"
  "CMakeFiles/skyran_localization.dir/baselines.cpp.o.d"
  "CMakeFiles/skyran_localization.dir/localizer.cpp.o"
  "CMakeFiles/skyran_localization.dir/localizer.cpp.o.d"
  "CMakeFiles/skyran_localization.dir/multilateration.cpp.o"
  "CMakeFiles/skyran_localization.dir/multilateration.cpp.o.d"
  "CMakeFiles/skyran_localization.dir/pipeline.cpp.o"
  "CMakeFiles/skyran_localization.dir/pipeline.cpp.o.d"
  "libskyran_localization.a"
  "libskyran_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
