
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/localization/baselines.cpp" "src/localization/CMakeFiles/skyran_localization.dir/baselines.cpp.o" "gcc" "src/localization/CMakeFiles/skyran_localization.dir/baselines.cpp.o.d"
  "/root/repo/src/localization/localizer.cpp" "src/localization/CMakeFiles/skyran_localization.dir/localizer.cpp.o" "gcc" "src/localization/CMakeFiles/skyran_localization.dir/localizer.cpp.o.d"
  "/root/repo/src/localization/multilateration.cpp" "src/localization/CMakeFiles/skyran_localization.dir/multilateration.cpp.o" "gcc" "src/localization/CMakeFiles/skyran_localization.dir/multilateration.cpp.o.d"
  "/root/repo/src/localization/pipeline.cpp" "src/localization/CMakeFiles/skyran_localization.dir/pipeline.cpp.o" "gcc" "src/localization/CMakeFiles/skyran_localization.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/skyran_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/skyran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/skyran_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/skyran_terrain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
