file(REMOVE_RECURSE
  "libskyran_localization.a"
)
