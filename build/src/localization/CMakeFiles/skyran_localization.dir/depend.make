# Empty dependencies file for skyran_localization.
# This may be replaced when dependencies are built.
