# Empty compiler generated dependencies file for skyran_core.
# This may be replaced when dependencies are built.
