file(REMOVE_RECURSE
  "libskyran_core.a"
)
