file(REMOVE_RECURSE
  "CMakeFiles/skyran_core.dir/multi_uav.cpp.o"
  "CMakeFiles/skyran_core.dir/multi_uav.cpp.o.d"
  "CMakeFiles/skyran_core.dir/skyran.cpp.o"
  "CMakeFiles/skyran_core.dir/skyran.cpp.o.d"
  "CMakeFiles/skyran_core.dir/timeline.cpp.o"
  "CMakeFiles/skyran_core.dir/timeline.cpp.o.d"
  "libskyran_core.a"
  "libskyran_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
