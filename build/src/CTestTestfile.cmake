# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geo")
subdirs("terrain")
subdirs("rf")
subdirs("lte")
subdirs("uav")
subdirs("localization")
subdirs("rem")
subdirs("mobility")
subdirs("sim")
subdirs("core")
