# Empty compiler generated dependencies file for skyran_rf.
# This may be replaced when dependencies are built.
