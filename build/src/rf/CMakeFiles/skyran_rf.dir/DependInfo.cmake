
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/antenna.cpp" "src/rf/CMakeFiles/skyran_rf.dir/antenna.cpp.o" "gcc" "src/rf/CMakeFiles/skyran_rf.dir/antenna.cpp.o.d"
  "/root/repo/src/rf/channel.cpp" "src/rf/CMakeFiles/skyran_rf.dir/channel.cpp.o" "gcc" "src/rf/CMakeFiles/skyran_rf.dir/channel.cpp.o.d"
  "/root/repo/src/rf/models.cpp" "src/rf/CMakeFiles/skyran_rf.dir/models.cpp.o" "gcc" "src/rf/CMakeFiles/skyran_rf.dir/models.cpp.o.d"
  "/root/repo/src/rf/raytrace.cpp" "src/rf/CMakeFiles/skyran_rf.dir/raytrace.cpp.o" "gcc" "src/rf/CMakeFiles/skyran_rf.dir/raytrace.cpp.o.d"
  "/root/repo/src/rf/shadowing.cpp" "src/rf/CMakeFiles/skyran_rf.dir/shadowing.cpp.o" "gcc" "src/rf/CMakeFiles/skyran_rf.dir/shadowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/skyran_terrain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
