file(REMOVE_RECURSE
  "CMakeFiles/skyran_rf.dir/antenna.cpp.o"
  "CMakeFiles/skyran_rf.dir/antenna.cpp.o.d"
  "CMakeFiles/skyran_rf.dir/channel.cpp.o"
  "CMakeFiles/skyran_rf.dir/channel.cpp.o.d"
  "CMakeFiles/skyran_rf.dir/models.cpp.o"
  "CMakeFiles/skyran_rf.dir/models.cpp.o.d"
  "CMakeFiles/skyran_rf.dir/raytrace.cpp.o"
  "CMakeFiles/skyran_rf.dir/raytrace.cpp.o.d"
  "CMakeFiles/skyran_rf.dir/shadowing.cpp.o"
  "CMakeFiles/skyran_rf.dir/shadowing.cpp.o.d"
  "libskyran_rf.a"
  "libskyran_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
