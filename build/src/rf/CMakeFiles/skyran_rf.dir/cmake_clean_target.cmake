file(REMOVE_RECURSE
  "libskyran_rf.a"
)
