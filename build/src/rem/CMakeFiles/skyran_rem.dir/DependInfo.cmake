
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rem/gradient.cpp" "src/rem/CMakeFiles/skyran_rem.dir/gradient.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/gradient.cpp.o.d"
  "/root/repo/src/rem/idw.cpp" "src/rem/CMakeFiles/skyran_rem.dir/idw.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/idw.cpp.o.d"
  "/root/repo/src/rem/info_gain.cpp" "src/rem/CMakeFiles/skyran_rem.dir/info_gain.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/info_gain.cpp.o.d"
  "/root/repo/src/rem/kmeans.cpp" "src/rem/CMakeFiles/skyran_rem.dir/kmeans.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/kmeans.cpp.o.d"
  "/root/repo/src/rem/kriging.cpp" "src/rem/CMakeFiles/skyran_rem.dir/kriging.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/kriging.cpp.o.d"
  "/root/repo/src/rem/layered.cpp" "src/rem/CMakeFiles/skyran_rem.dir/layered.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/layered.cpp.o.d"
  "/root/repo/src/rem/placement.cpp" "src/rem/CMakeFiles/skyran_rem.dir/placement.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/placement.cpp.o.d"
  "/root/repo/src/rem/planner.cpp" "src/rem/CMakeFiles/skyran_rem.dir/planner.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/planner.cpp.o.d"
  "/root/repo/src/rem/rem.cpp" "src/rem/CMakeFiles/skyran_rem.dir/rem.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/rem.cpp.o.d"
  "/root/repo/src/rem/store.cpp" "src/rem/CMakeFiles/skyran_rem.dir/store.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/store.cpp.o.d"
  "/root/repo/src/rem/tsp.cpp" "src/rem/CMakeFiles/skyran_rem.dir/tsp.cpp.o" "gcc" "src/rem/CMakeFiles/skyran_rem.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/skyran_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/skyran_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/skyran_terrain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
