file(REMOVE_RECURSE
  "libskyran_rem.a"
)
