file(REMOVE_RECURSE
  "CMakeFiles/skyran_rem.dir/gradient.cpp.o"
  "CMakeFiles/skyran_rem.dir/gradient.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/idw.cpp.o"
  "CMakeFiles/skyran_rem.dir/idw.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/info_gain.cpp.o"
  "CMakeFiles/skyran_rem.dir/info_gain.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/kmeans.cpp.o"
  "CMakeFiles/skyran_rem.dir/kmeans.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/kriging.cpp.o"
  "CMakeFiles/skyran_rem.dir/kriging.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/layered.cpp.o"
  "CMakeFiles/skyran_rem.dir/layered.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/placement.cpp.o"
  "CMakeFiles/skyran_rem.dir/placement.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/planner.cpp.o"
  "CMakeFiles/skyran_rem.dir/planner.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/rem.cpp.o"
  "CMakeFiles/skyran_rem.dir/rem.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/store.cpp.o"
  "CMakeFiles/skyran_rem.dir/store.cpp.o.d"
  "CMakeFiles/skyran_rem.dir/tsp.cpp.o"
  "CMakeFiles/skyran_rem.dir/tsp.cpp.o.d"
  "libskyran_rem.a"
  "libskyran_rem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_rem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
