# Empty compiler generated dependencies file for skyran_rem.
# This may be replaced when dependencies are built.
