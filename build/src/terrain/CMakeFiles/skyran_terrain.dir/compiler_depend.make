# Empty compiler generated dependencies file for skyran_terrain.
# This may be replaced when dependencies are built.
