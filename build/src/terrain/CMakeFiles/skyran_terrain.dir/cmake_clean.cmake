file(REMOVE_RECURSE
  "CMakeFiles/skyran_terrain.dir/io.cpp.o"
  "CMakeFiles/skyran_terrain.dir/io.cpp.o.d"
  "CMakeFiles/skyran_terrain.dir/lidar.cpp.o"
  "CMakeFiles/skyran_terrain.dir/lidar.cpp.o.d"
  "CMakeFiles/skyran_terrain.dir/synth.cpp.o"
  "CMakeFiles/skyran_terrain.dir/synth.cpp.o.d"
  "CMakeFiles/skyran_terrain.dir/terrain.cpp.o"
  "CMakeFiles/skyran_terrain.dir/terrain.cpp.o.d"
  "libskyran_terrain.a"
  "libskyran_terrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_terrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
