file(REMOVE_RECURSE
  "libskyran_terrain.a"
)
