
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/terrain/io.cpp" "src/terrain/CMakeFiles/skyran_terrain.dir/io.cpp.o" "gcc" "src/terrain/CMakeFiles/skyran_terrain.dir/io.cpp.o.d"
  "/root/repo/src/terrain/lidar.cpp" "src/terrain/CMakeFiles/skyran_terrain.dir/lidar.cpp.o" "gcc" "src/terrain/CMakeFiles/skyran_terrain.dir/lidar.cpp.o.d"
  "/root/repo/src/terrain/synth.cpp" "src/terrain/CMakeFiles/skyran_terrain.dir/synth.cpp.o" "gcc" "src/terrain/CMakeFiles/skyran_terrain.dir/synth.cpp.o.d"
  "/root/repo/src/terrain/terrain.cpp" "src/terrain/CMakeFiles/skyran_terrain.dir/terrain.cpp.o" "gcc" "src/terrain/CMakeFiles/skyran_terrain.dir/terrain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
