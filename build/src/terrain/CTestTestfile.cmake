# CMake generated Testfile for 
# Source directory: /root/repo/src/terrain
# Build directory: /root/repo/build/src/terrain
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
