file(REMOVE_RECURSE
  "libskyran_mobility.a"
)
