# Empty dependencies file for skyran_mobility.
# This may be replaced when dependencies are built.
