file(REMOVE_RECURSE
  "CMakeFiles/skyran_mobility.dir/deployment.cpp.o"
  "CMakeFiles/skyran_mobility.dir/deployment.cpp.o.d"
  "CMakeFiles/skyran_mobility.dir/model.cpp.o"
  "CMakeFiles/skyran_mobility.dir/model.cpp.o.d"
  "libskyran_mobility.a"
  "libskyran_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skyran_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
