
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/deployment.cpp" "src/mobility/CMakeFiles/skyran_mobility.dir/deployment.cpp.o" "gcc" "src/mobility/CMakeFiles/skyran_mobility.dir/deployment.cpp.o.d"
  "/root/repo/src/mobility/model.cpp" "src/mobility/CMakeFiles/skyran_mobility.dir/model.cpp.o" "gcc" "src/mobility/CMakeFiles/skyran_mobility.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/skyran_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/skyran_uav.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
