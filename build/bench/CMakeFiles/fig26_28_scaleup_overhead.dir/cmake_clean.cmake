file(REMOVE_RECURSE
  "CMakeFiles/fig26_28_scaleup_overhead.dir/fig26_28_scaleup_overhead.cpp.o"
  "CMakeFiles/fig26_28_scaleup_overhead.dir/fig26_28_scaleup_overhead.cpp.o.d"
  "fig26_28_scaleup_overhead"
  "fig26_28_scaleup_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_28_scaleup_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
