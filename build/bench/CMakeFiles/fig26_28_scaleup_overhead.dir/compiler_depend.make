# Empty compiler generated dependencies file for fig26_28_scaleup_overhead.
# This may be replaced when dependencies are built.
