# Empty dependencies file for ablation_backhaul.
# This may be replaced when dependencies are built.
