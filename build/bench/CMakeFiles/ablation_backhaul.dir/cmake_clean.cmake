file(REMOVE_RECURSE
  "CMakeFiles/ablation_backhaul.dir/ablation_backhaul.cpp.o"
  "CMakeFiles/ablation_backhaul.dir/ablation_backhaul.cpp.o.d"
  "ablation_backhaul"
  "ablation_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
