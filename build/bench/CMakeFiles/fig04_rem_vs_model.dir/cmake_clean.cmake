file(REMOVE_RECURSE
  "CMakeFiles/fig04_rem_vs_model.dir/fig04_rem_vs_model.cpp.o"
  "CMakeFiles/fig04_rem_vs_model.dir/fig04_rem_vs_model.cpp.o.d"
  "fig04_rem_vs_model"
  "fig04_rem_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rem_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
