# Empty dependencies file for fig04_rem_vs_model.
# This may be replaced when dependencies are built.
