file(REMOVE_RECURSE
  "CMakeFiles/fig09_localization_impact.dir/fig09_localization_impact.cpp.o"
  "CMakeFiles/fig09_localization_impact.dir/fig09_localization_impact.cpp.o.d"
  "fig09_localization_impact"
  "fig09_localization_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_localization_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
