# Empty compiler generated dependencies file for fig09_localization_impact.
# This may be replaced when dependencies are built.
