file(REMOVE_RECURSE
  "CMakeFiles/ablation_ranging.dir/ablation_ranging.cpp.o"
  "CMakeFiles/ablation_ranging.dir/ablation_ranging.cpp.o.d"
  "ablation_ranging"
  "ablation_ranging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ranging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
