# Empty dependencies file for ablation_ranging.
# This may be replaced when dependencies are built.
