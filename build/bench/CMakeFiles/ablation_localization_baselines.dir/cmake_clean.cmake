file(REMOVE_RECURSE
  "CMakeFiles/ablation_localization_baselines.dir/ablation_localization_baselines.cpp.o"
  "CMakeFiles/ablation_localization_baselines.dir/ablation_localization_baselines.cpp.o.d"
  "ablation_localization_baselines"
  "ablation_localization_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_localization_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
