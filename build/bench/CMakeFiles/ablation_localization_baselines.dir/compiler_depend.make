# Empty compiler generated dependencies file for ablation_localization_baselines.
# This may be replaced when dependencies are built.
