file(REMOVE_RECURSE
  "CMakeFiles/fig17_19_localization.dir/fig17_19_localization.cpp.o"
  "CMakeFiles/fig17_19_localization.dir/fig17_19_localization.cpp.o.d"
  "fig17_19_localization"
  "fig17_19_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_19_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
