# Empty compiler generated dependencies file for fig17_19_localization.
# This may be replaced when dependencies are built.
