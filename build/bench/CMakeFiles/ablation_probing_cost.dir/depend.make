# Empty dependencies file for ablation_probing_cost.
# This may be replaced when dependencies are built.
