file(REMOVE_RECURSE
  "CMakeFiles/ablation_probing_cost.dir/ablation_probing_cost.cpp.o"
  "CMakeFiles/ablation_probing_cost.dir/ablation_probing_cost.cpp.o.d"
  "ablation_probing_cost"
  "ablation_probing_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probing_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
