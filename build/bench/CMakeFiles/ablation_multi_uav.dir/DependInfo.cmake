
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_multi_uav.cpp" "bench/CMakeFiles/ablation_multi_uav.dir/ablation_multi_uav.cpp.o" "gcc" "bench/CMakeFiles/ablation_multi_uav.dir/ablation_multi_uav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/skyran_core.dir/DependInfo.cmake"
  "/root/repo/build/src/localization/CMakeFiles/skyran_localization.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skyran_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/lte/CMakeFiles/skyran_lte.dir/DependInfo.cmake"
  "/root/repo/build/src/rem/CMakeFiles/skyran_rem.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/skyran_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/skyran_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/terrain/CMakeFiles/skyran_terrain.dir/DependInfo.cmake"
  "/root/repo/build/src/uav/CMakeFiles/skyran_uav.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/skyran_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
