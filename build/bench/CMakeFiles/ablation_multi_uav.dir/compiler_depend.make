# Empty compiler generated dependencies file for ablation_multi_uav.
# This may be replaced when dependencies are built.
