file(REMOVE_RECURSE
  "CMakeFiles/ablation_multi_uav.dir/ablation_multi_uav.cpp.o"
  "CMakeFiles/ablation_multi_uav.dir/ablation_multi_uav.cpp.o.d"
  "ablation_multi_uav"
  "ablation_multi_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multi_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
