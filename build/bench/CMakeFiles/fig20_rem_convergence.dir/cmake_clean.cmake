file(REMOVE_RECURSE
  "CMakeFiles/fig20_rem_convergence.dir/fig20_rem_convergence.cpp.o"
  "CMakeFiles/fig20_rem_convergence.dir/fig20_rem_convergence.cpp.o.d"
  "fig20_rem_convergence"
  "fig20_rem_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_rem_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
