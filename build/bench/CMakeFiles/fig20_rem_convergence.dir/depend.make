# Empty dependencies file for fig20_rem_convergence.
# This may be replaced when dependencies are built.
