file(REMOVE_RECURSE
  "CMakeFiles/ablation_3d_placement.dir/ablation_3d_placement.cpp.o"
  "CMakeFiles/ablation_3d_placement.dir/ablation_3d_placement.cpp.o.d"
  "ablation_3d_placement"
  "ablation_3d_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_3d_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
