# Empty compiler generated dependencies file for ablation_3d_placement.
# This may be replaced when dependencies are built.
