# Empty compiler generated dependencies file for fig23_24_topologies.
# This may be replaced when dependencies are built.
