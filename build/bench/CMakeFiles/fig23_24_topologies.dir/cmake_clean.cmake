file(REMOVE_RECURSE
  "CMakeFiles/fig23_24_topologies.dir/fig23_24_topologies.cpp.o"
  "CMakeFiles/fig23_24_topologies.dir/fig23_24_topologies.cpp.o.d"
  "fig23_24_topologies"
  "fig23_24_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_24_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
