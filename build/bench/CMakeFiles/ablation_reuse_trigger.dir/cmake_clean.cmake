file(REMOVE_RECURSE
  "CMakeFiles/ablation_reuse_trigger.dir/ablation_reuse_trigger.cpp.o"
  "CMakeFiles/ablation_reuse_trigger.dir/ablation_reuse_trigger.cpp.o.d"
  "ablation_reuse_trigger"
  "ablation_reuse_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reuse_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
