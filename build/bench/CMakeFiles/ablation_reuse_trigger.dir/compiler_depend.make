# Empty compiler generated dependencies file for ablation_reuse_trigger.
# This may be replaced when dependencies are built.
