# Empty compiler generated dependencies file for micro_dsp.
# This may be replaced when dependencies are built.
