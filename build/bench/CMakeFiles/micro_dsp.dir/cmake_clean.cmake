file(REMOVE_RECURSE
  "CMakeFiles/micro_dsp.dir/micro_dsp.cpp.o"
  "CMakeFiles/micro_dsp.dir/micro_dsp.cpp.o.d"
  "micro_dsp"
  "micro_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
