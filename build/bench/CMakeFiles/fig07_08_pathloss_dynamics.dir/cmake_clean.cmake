file(REMOVE_RECURSE
  "CMakeFiles/fig07_08_pathloss_dynamics.dir/fig07_08_pathloss_dynamics.cpp.o"
  "CMakeFiles/fig07_08_pathloss_dynamics.dir/fig07_08_pathloss_dynamics.cpp.o.d"
  "fig07_08_pathloss_dynamics"
  "fig07_08_pathloss_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_08_pathloss_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
