# Empty compiler generated dependencies file for fig07_08_pathloss_dynamics.
# This may be replaced when dependencies are built.
