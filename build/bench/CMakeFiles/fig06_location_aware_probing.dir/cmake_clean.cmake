file(REMOVE_RECURSE
  "CMakeFiles/fig06_location_aware_probing.dir/fig06_location_aware_probing.cpp.o"
  "CMakeFiles/fig06_location_aware_probing.dir/fig06_location_aware_probing.cpp.o.d"
  "fig06_location_aware_probing"
  "fig06_location_aware_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_location_aware_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
