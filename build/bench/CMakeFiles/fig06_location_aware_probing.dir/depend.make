# Empty dependencies file for fig06_location_aware_probing.
# This may be replaced when dependencies are built.
