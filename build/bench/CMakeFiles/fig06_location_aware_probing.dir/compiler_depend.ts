# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig06_location_aware_probing.
