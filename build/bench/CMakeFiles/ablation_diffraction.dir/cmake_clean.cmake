file(REMOVE_RECURSE
  "CMakeFiles/ablation_diffraction.dir/ablation_diffraction.cpp.o"
  "CMakeFiles/ablation_diffraction.dir/ablation_diffraction.cpp.o.d"
  "ablation_diffraction"
  "ablation_diffraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_diffraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
