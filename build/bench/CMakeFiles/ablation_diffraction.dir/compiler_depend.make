# Empty compiler generated dependencies file for ablation_diffraction.
# This may be replaced when dependencies are built.
