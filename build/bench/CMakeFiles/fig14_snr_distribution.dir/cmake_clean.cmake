file(REMOVE_RECURSE
  "CMakeFiles/fig14_snr_distribution.dir/fig14_snr_distribution.cpp.o"
  "CMakeFiles/fig14_snr_distribution.dir/fig14_snr_distribution.cpp.o.d"
  "fig14_snr_distribution"
  "fig14_snr_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_snr_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
