# Empty dependencies file for fig14_snr_distribution.
# This may be replaced when dependencies are built.
