file(REMOVE_RECURSE
  "CMakeFiles/ablation_interpolation.dir/ablation_interpolation.cpp.o"
  "CMakeFiles/ablation_interpolation.dir/ablation_interpolation.cpp.o.d"
  "ablation_interpolation"
  "ablation_interpolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_interpolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
