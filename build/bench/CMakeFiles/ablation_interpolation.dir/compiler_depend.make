# Empty compiler generated dependencies file for ablation_interpolation.
# This may be replaced when dependencies are built.
