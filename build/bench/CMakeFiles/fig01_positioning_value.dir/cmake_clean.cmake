file(REMOVE_RECURSE
  "CMakeFiles/fig01_positioning_value.dir/fig01_positioning_value.cpp.o"
  "CMakeFiles/fig01_positioning_value.dir/fig01_positioning_value.cpp.o.d"
  "fig01_positioning_value"
  "fig01_positioning_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_positioning_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
