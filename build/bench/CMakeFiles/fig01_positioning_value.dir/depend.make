# Empty dependencies file for fig01_positioning_value.
# This may be replaced when dependencies are built.
