# Empty compiler generated dependencies file for fig21_centroid_gap.
# This may be replaced when dependencies are built.
