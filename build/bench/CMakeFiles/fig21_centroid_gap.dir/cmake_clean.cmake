file(REMOVE_RECURSE
  "CMakeFiles/fig21_centroid_gap.dir/fig21_centroid_gap.cpp.o"
  "CMakeFiles/fig21_centroid_gap.dir/fig21_centroid_gap.cpp.o.d"
  "fig21_centroid_gap"
  "fig21_centroid_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_centroid_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
