# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig29_31_budget5000.
