file(REMOVE_RECURSE
  "CMakeFiles/fig29_31_budget5000.dir/fig29_31_budget5000.cpp.o"
  "CMakeFiles/fig29_31_budget5000.dir/fig29_31_budget5000.cpp.o.d"
  "fig29_31_budget5000"
  "fig29_31_budget5000.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig29_31_budget5000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
