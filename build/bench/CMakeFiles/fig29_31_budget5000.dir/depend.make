# Empty dependencies file for fig29_31_budget5000.
# This may be replaced when dependencies are built.
