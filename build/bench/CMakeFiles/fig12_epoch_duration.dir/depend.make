# Empty dependencies file for fig12_epoch_duration.
# This may be replaced when dependencies are built.
