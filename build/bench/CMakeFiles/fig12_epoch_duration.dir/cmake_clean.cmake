file(REMOVE_RECURSE
  "CMakeFiles/fig12_epoch_duration.dir/fig12_epoch_duration.cpp.o"
  "CMakeFiles/fig12_epoch_duration.dir/fig12_epoch_duration.cpp.o.d"
  "fig12_epoch_duration"
  "fig12_epoch_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_epoch_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
