#!/usr/bin/env python3
"""Capture and check committed BENCH_*.json snapshots of the JSON-line
micro benches (micro_parallel / micro_rem / micro_traffic).

Usage:
    some_bench | tools/bench_snapshot.py capture --out BENCH_foo.json
    some_bench | tools/bench_snapshot.py check BENCH_foo.json
    tools/bench_snapshot.py audit [--repo DIR] [BENCH_foo.json ...]
    tools/bench_snapshot.py trend [--repo DIR] [BENCH_foo.json ...]

`capture` wraps the bench's stdout JSON lines into one committed document.
`check` re-validates a fresh run against the snapshot's *schema*, not its
timings (CI machines vary too much for absolute perf gates):

  - same bench name, same number of rows;
  - per row (matched in order): identical JSON key set and identical values
    for the identity keys (kind / scenario / round / ues / ttis);
  - every row carrying an "equal" field — the serial-vs-parallel bit-identity
    verdict computed inside the bench — must say true, in the snapshot and
    in the fresh run.

`audit` cross-checks committed snapshots against the bench sources: every
BENCH_*.json must name a bench whose bench/<name>.cpp still exists, so a
deleted or renamed bench fails CI loudly instead of leaving a stale
snapshot that "passes" because nothing runs against it anymore.

`trend` walks every committed git version of each snapshot (plus the
working-tree copy, when it differs) and prints the timing trajectory —
every *_ms field and the speedup — per bench row, so perf regressions are
visible across the snapshot history instead of only at re-capture time.
It fails loudly when any historical version is unparseable, renames the
bench, or changes a row's timing-field set (schema drift).

Exit status is non-zero on any drift, so CI fails when a bench silently
changes shape, drops a scenario, or loses bit-identity.
"""
import argparse
import glob
import json
import os
import subprocess
import sys

# Keys that name WHAT a row measures (as opposed to how fast it ran).
# "simd" and "workers" are deliberately absent: they record which dispatch
# level / pool width the host picked, and CI machines legitimately differ.
IDENTITY_KEYS = ("bench", "kind", "scenario", "round", "ues", "ttis",
                 "kernel", "n", "items", "hours", "cells")


def read_rows(stream, source):
    rows = []
    for lineno, line in enumerate(stream, 1):
        line = line.strip()
        if not line or not line.startswith("{"):
            continue  # benches may interleave human-readable chatter
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as err:
            sys.exit(f"{source}:{lineno}: invalid JSON: {err}")
    if not rows:
        sys.exit(f"{source}: no JSON rows found")
    benches = {row.get("bench") for row in rows}
    if len(benches) != 1 or None in benches:
        sys.exit(f"{source}: rows must all carry the same 'bench' name, got {benches}")
    return rows


def check_equal_flags(rows, source):
    bad = [row for row in rows if "equal" in row and row["equal"] is not True]
    if bad:
        sys.exit(f"{source}: {len(bad)} row(s) report equal != true "
                 "(serial vs parallel bit-identity broken)")


def capture(args):
    rows = read_rows(sys.stdin, "<stdin>")
    check_equal_flags(rows, "<stdin>")
    doc = {"bench": rows[0]["bench"], "schema": 1, "rows": rows}
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print(f"{args.out}: captured {len(rows)} row(s) from {doc['bench']}")
    return 0


def check(args):
    with open(args.snapshot, encoding="utf-8") as fh:
        doc = json.load(fh)
    snap_rows = doc.get("rows", [])
    if not snap_rows:
        sys.exit(f"{args.snapshot}: snapshot has no rows")
    check_equal_flags(snap_rows, args.snapshot)

    fresh = read_rows(sys.stdin, "<stdin>")
    check_equal_flags(fresh, "<stdin>")
    if fresh[0]["bench"] != doc.get("bench"):
        sys.exit(f"bench name drift: snapshot {doc.get('bench')!r}, "
                 f"fresh run {fresh[0]['bench']!r}")
    if len(fresh) != len(snap_rows):
        sys.exit(f"row count drift: snapshot has {len(snap_rows)}, "
                 f"fresh run has {len(fresh)}")
    for i, (snap, run) in enumerate(zip(snap_rows, fresh)):
        if set(snap.keys()) != set(run.keys()):
            missing = sorted(set(snap.keys()) - set(run.keys()))
            added = sorted(set(run.keys()) - set(snap.keys()))
            sys.exit(f"row {i}: key-set drift (missing {missing}, added {added})")
        for key in IDENTITY_KEYS:
            if key in snap and snap[key] != run[key]:
                sys.exit(f"row {i}: identity drift on {key!r}: "
                         f"snapshot {snap[key]!r}, fresh run {run[key]!r}")
    print(f"{args.snapshot}: OK ({len(fresh)} row(s), schema matches, "
          "bit-identity holds)")
    return 0


def audit(args):
    repo = args.repo
    snapshots = args.snapshots or sorted(glob.glob(os.path.join(repo, "BENCH_*.json")))
    if not snapshots:
        sys.exit(f"audit: no BENCH_*.json snapshots found under {repo!r}")
    failures = []
    for path in snapshots:
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"{path}: unreadable snapshot: {err}")
            continue
        bench = doc.get("bench")
        if not bench:
            failures.append(f"{path}: snapshot carries no 'bench' name")
            continue
        source = os.path.join(repo, "bench", f"{bench}.cpp")
        if not os.path.exists(source):
            failures.append(
                f"{path}: names bench {bench!r} but {source} does not exist — "
                "the bench was deleted or renamed; delete the stale snapshot "
                "or re-capture it from the renamed bench")
    if failures:
        sys.exit("\n".join(failures))
    print(f"audit: {len(snapshots)} snapshot(s) all map to existing bench sources")
    return 0


def row_identity(row):
    return tuple((k, row[k]) for k in IDENTITY_KEYS if k in row)


def timing_fields(row):
    return {k: v for k, v in row.items()
            if k == "speedup" or k.endswith("_ms")}


def trend(args):
    repo = args.repo
    snapshots = args.snapshots or sorted(glob.glob(os.path.join(repo, "BENCH_*.json")))
    if not snapshots:
        sys.exit(f"trend: no BENCH_*.json snapshots found under {repo!r}")
    failures = []
    for path in snapshots:
        rel = os.path.relpath(path, repo)
        log = subprocess.run(
            ["git", "log", "--format=%h", "--reverse", "--", rel],
            cwd=repo, capture_output=True, text=True)
        if log.returncode != 0:
            failures.append(f"{rel}: git log failed: {log.stderr.strip()}")
            continue
        history = []  # (label, parsed snapshot document)
        for rev in log.stdout.split():
            show = subprocess.run(["git", "show", f"{rev}:{rel}"],
                                  cwd=repo, capture_output=True, text=True)
            if show.returncode != 0:
                # `git log -- path` also lists the commit that deleted the
                # file; a missing blob there is history, not drift.
                continue
            try:
                history.append((rev, json.loads(show.stdout)))
            except json.JSONDecodeError as err:
                failures.append(f"{rel}@{rev}: unparseable snapshot: {err}")
        try:
            with open(path, encoding="utf-8") as fh:
                worktree = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"{rel}: unreadable working-tree snapshot: {err}")
            worktree = None
        if worktree is not None and (not history or worktree != history[-1][1]):
            history.append(("worktree", worktree))
        if not history:
            failures.append(f"{rel}: no readable snapshot versions")
            continue

        bench = history[-1][1].get("bench")
        print(f"{rel}: {bench} across {len(history)} version(s)")
        series = {}  # identity tuple -> [(version label, timing fields)]
        order = []
        for label, doc in history:
            if doc.get("bench") != bench:
                failures.append(f"{rel}@{label}: bench name drift: "
                                f"{doc.get('bench')!r} vs {bench!r}")
                continue
            for row in doc.get("rows", []):
                ident = row_identity(row)
                if ident not in series:
                    series[ident] = []
                    order.append(ident)
                series[ident].append((label, timing_fields(row)))
        for ident in order:
            points = series[ident]
            if len({frozenset(fields) for _, fields in points}) != 1:
                failures.append(
                    f"{rel}: timing-field drift across versions for row "
                    + " ".join(f"{k}={v}" for k, v in ident))
                continue
            name = " ".join(f"{k}={v}" for k, v in ident if k != "bench")
            print(f"  {name or bench}")
            for label, fields in points:
                vals = "  ".join(f"{k}={fields[k]:.3f}" for k in sorted(fields))
                print(f"    {label:>9}  {vals}")
    if failures:
        sys.exit("\n".join(failures))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    cap = sub.add_parser("capture", help="write a snapshot from stdin")
    cap.add_argument("--out", required=True)
    chk = sub.add_parser("check", help="validate stdin against a snapshot")
    chk.add_argument("snapshot")
    aud = sub.add_parser("audit", help="verify snapshots name existing benches")
    aud.add_argument("--repo", default=".", help="repository root (default: cwd)")
    aud.add_argument("snapshots", nargs="*", help="explicit snapshot paths")
    trd = sub.add_parser("trend", help="print timing history of snapshots")
    trd.add_argument("--repo", default=".", help="repository root (default: cwd)")
    trd.add_argument("snapshots", nargs="*", help="explicit snapshot paths")
    args = parser.parse_args(argv[1:])
    if args.command == "capture":
        return capture(args)
    if args.command == "audit":
        return audit(args)
    if args.command == "trend":
        return trend(args)
    return check(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
