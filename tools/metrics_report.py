#!/usr/bin/env python3
"""Read and validate a SkyRAN telemetry JSON-lines file (docs/OBSERVABILITY.md).

Usage:
    tools/metrics_report.py metrics.jsonl            # validate + summary
    tools/metrics_report.py metrics.jsonl --spans    # also list span totals

Exits non-zero if any line is not valid JSON or violates the schema, so it
doubles as the checked-in parser for the exporter's output (used by CI and
by hand after `skyran_cli --metrics-out`).
"""
import json
import sys
from collections import defaultdict

REQUIRED_FIELDS = {
    "meta": {"schema", "spans", "spans_dropped"},
    "counter": {"name", "value"},
    "gauge": {"name", "value"},
    "histogram": {"name", "count", "sum", "min", "max", "mean", "p50", "p90", "p99"},
    "span": {"name", "epoch", "depth", "thread", "start_us", "dur_us"},
}


def load(path):
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                sys.exit(f"{path}:{lineno}: invalid JSON: {err}")
            kind = rec.get("type")
            if kind not in REQUIRED_FIELDS:
                sys.exit(f"{path}:{lineno}: unknown record type {kind!r}")
            missing = REQUIRED_FIELDS[kind] - rec.keys()
            if missing:
                sys.exit(f"{path}:{lineno}: {kind} record missing {sorted(missing)}")
            records.append(rec)
    if not records or records[0]["type"] != "meta":
        sys.exit(f"{path}: first line must be the meta record")
    return records


def main(argv):
    if len(argv) < 2 or argv[1].startswith("-"):
        sys.exit(__doc__)
    path = argv[1]
    show_spans = "--spans" in argv[2:]
    records = load(path)

    by_type = defaultdict(list)
    for rec in records:
        by_type[rec["type"]].append(rec)

    meta = by_type["meta"][0]
    print(f"schema v{meta['schema']}: "
          f"{len(by_type['counter'])} counters, {len(by_type['gauge'])} gauges, "
          f"{len(by_type['histogram'])} histograms, {len(by_type['span'])} spans"
          + (f" ({meta['spans_dropped']} dropped)" if meta["spans_dropped"] else ""))

    for rec in by_type["counter"]:
        print(f"  counter   {rec['name']:<40} {rec['value']}")
    for rec in by_type["gauge"]:
        print(f"  gauge     {rec['name']:<40} {rec['value']:.4g}")
    for rec in by_type["histogram"]:
        print(f"  histogram {rec['name']:<40} n={rec['count']} mean={rec['mean']:.4g} "
              f"p50={rec['p50']:.4g} p90={rec['p90']:.4g} max={rec['max']:.4g}")

    # Fault-injection roll-up: every fault.* counter plus the degraded-path
    # quality gates, grouped so a chaos run's injected-vs-degraded story is
    # readable at a glance (names: docs/OBSERVABILITY.md).
    fault_counters = [rec for rec in by_type["counter"]
                      if rec["name"].startswith("fault.")
                      or rec["name"] in ("loc.tof.gated_low_quality",
                                         "lte.tof.degenerate_window")]
    if fault_counters:
        total = sum(rec["value"] for rec in fault_counters)
        print(f"fault injection summary ({total} events):")
        for rec in sorted(fault_counters, key=lambda r: (-r["value"], r["name"])):
            print(f"  fault     {rec['name']:<40} {rec['value']}")
        degraded = [rec for rec in by_type["gauge"] if rec["name"] == "epoch.degraded"]
        if degraded:
            state = "degraded" if degraded[-1]["value"] else "clean"
            print(f"  fault     {'epoch.degraded (last epoch)':<40} {state}")

    if show_spans:
        totals = defaultdict(lambda: [0, 0.0])
        for rec in by_type["span"]:
            totals[rec["name"]][0] += 1
            totals[rec["name"]][1] += rec["dur_us"]
        print("span totals (by total time):")
        for name, (count, us) in sorted(totals.items(), key=lambda kv: -kv[1][1]):
            print(f"  span      {name:<40} n={count} total={us / 1e3:.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
