// skyran_cli: run a configurable SkyRAN scenario from the command line and
// print (or export as CSV) per-epoch results. The one-stop way to poke at
// the system without writing code.
//
//   skyran_cli --terrain nyc --ues 6 --epochs 4 --budget 800 --move 0.5
//              --scheme skyran --seed 7 [--csv out.csv] [--phy-localization]
//              [--metrics-out metrics.jsonl] [--trace]
//
// Schemes: skyran | uniform | centroid | random.
// --metrics-out / --trace enable the observability layer (docs/OBSERVABILITY.md):
// the former dumps counters/histograms/trace spans as JSON lines, the latter
// prints a human-readable telemetry summary after the run.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "mobility/model.hpp"
#include "obs/obs.hpp"
#include "skyran.hpp"
#include "sim/table.hpp"

namespace {

using namespace skyran;

struct CliOptions {
  terrain::TerrainKind terrain = terrain::TerrainKind::kCampus;
  int ues = 6;
  int epochs = 1;
  double budget_m = 800.0;
  double move_fraction = 0.5;
  std::string scheme = "skyran";
  std::uint64_t seed = 1;
  std::optional<std::string> csv_path;
  bool phy_localization = false;
  bool clustered = false;
  double timeline_min = 0.0;  ///< > 0: continuous-mission mode
  std::optional<std::string> metrics_path;  ///< JSON-lines telemetry dump
  bool trace = false;                       ///< print telemetry summary
};

[[noreturn]] void usage(const char* argv0, const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: " << argv0
            << " [--terrain flat|campus|rural|nyc|large] [--ues N] [--epochs N]\n"
               "       [--budget METERS] [--move FRACTION] [--scheme skyran|uniform|"
               "centroid|random]\n"
               "       [--seed N] [--csv PATH] [--phy-localization] [--clustered]\n"
               "       [--timeline MINUTES]   continuous mission with walking UEs\n"
               "                              (skyran scheme only; overrides --epochs)\n"
               "       [--metrics-out PATH]   enable instrumentation; dump telemetry\n"
               "                              as JSON lines (docs/OBSERVABILITY.md)\n"
               "       [--trace]              enable instrumentation; print a\n"
               "                              telemetry summary after the run\n";
  std::exit(error.empty() ? 0 : 2);
}

terrain::TerrainKind parse_terrain(const std::string& s, const char* argv0) {
  if (s == "flat") return terrain::TerrainKind::kFlat;
  if (s == "campus") return terrain::TerrainKind::kCampus;
  if (s == "rural") return terrain::TerrainKind::kRural;
  if (s == "nyc") return terrain::TerrainKind::kNyc;
  if (s == "large") return terrain::TerrainKind::kLarge;
  usage(argv0, "unknown terrain '" + s + "'");
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  const auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") usage(argv[0]);
    else if (a == "--terrain") opt.terrain = parse_terrain(next(i), argv[0]);
    else if (a == "--ues") opt.ues = std::stoi(next(i));
    else if (a == "--epochs") opt.epochs = std::stoi(next(i));
    else if (a == "--budget") opt.budget_m = std::stod(next(i));
    else if (a == "--move") opt.move_fraction = std::stod(next(i));
    else if (a == "--scheme") opt.scheme = next(i);
    else if (a == "--seed") opt.seed = std::stoull(next(i));
    else if (a == "--csv") opt.csv_path = next(i);
    else if (a == "--phy-localization") opt.phy_localization = true;
    else if (a == "--clustered") opt.clustered = true;
    else if (a == "--timeline") opt.timeline_min = std::stod(next(i));
    else if (a == "--metrics-out") opt.metrics_path = next(i);
    else if (a == "--trace") opt.trace = true;
    else usage(argv[0], "unknown flag '" + a + "'");
  }
  if (opt.ues < 1) usage(argv[0], "--ues must be >= 1");
  if (opt.epochs < 1) usage(argv[0], "--epochs must be >= 1");
  if (opt.move_fraction < 0.0 || opt.move_fraction > 1.0)
    usage(argv[0], "--move must be in [0, 1]");
  if (opt.scheme != "skyran" && opt.scheme != "uniform" && opt.scheme != "centroid" &&
      opt.scheme != "random")
    usage(argv[0], "unknown scheme '" + opt.scheme + "'");
  return opt;
}

/// Dump telemetry per the CLI flags. Returns false when the metrics file
/// could not be written.
bool finish_telemetry(const CliOptions& opt) {
  if (opt.trace) {
    std::cout << "\n-- telemetry (--trace) --\n";
    obs::write_summary(std::cout);
  }
  if (opt.metrics_path) {
    std::ofstream os(*opt.metrics_path);
    if (!os) {
      std::cerr << "error: cannot open " << *opt.metrics_path << "\n";
      return false;
    }
    obs::write_json_lines(os);
    std::cout << "wrote " << *opt.metrics_path << "\n";
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);
  if (opt.metrics_path || opt.trace) obs::set_enabled(true);

  sim::WorldConfig wc;
  wc.terrain_kind = opt.terrain;
  wc.seed = opt.seed;
  wc.cell_size_m = opt.terrain == terrain::TerrainKind::kLarge ? 4.0 : 1.0;
  sim::World world(wc);
  world.ue_positions() =
      opt.clustered
          ? mobility::deploy_clustered(world.terrain(), opt.ues, 2, 30.0, opt.seed + 1)
          : mobility::deploy_uniform(world.terrain(), opt.ues, opt.seed + 1);
  mobility::EpochRelocateMobility mob(world.terrain(), world.ue_positions(),
                                      opt.move_fraction, opt.seed + 2);

  const double rem_cell = opt.terrain == terrain::TerrainKind::kLarge ? 12.0 : 4.0;
  const double eval_cell = opt.terrain == terrain::TerrainKind::kLarge ? 15.0 : 5.0;

  core::SkyRanConfig cfg;
  cfg.measurement_budget_m = opt.budget_m;
  cfg.rem_cell_m = rem_cell;
  if (opt.phy_localization) {
    cfg.localization_mode = core::LocalizationMode::kPhy;
  } else {
    cfg.localization_mode = core::LocalizationMode::kGaussianError;
    cfg.injected_error_m = 8.0;
  }
  core::SkyRan skyran(world, cfg, opt.seed + 3);

  std::cout << "scheme=" << opt.scheme << " terrain=" << terrain::to_string(opt.terrain)
            << " ues=" << opt.ues << " epochs=" << opt.epochs << " budget=" << opt.budget_m
            << "m move=" << opt.move_fraction << " seed=" << opt.seed << "\n";

  if (opt.timeline_min > 0.0) {
    if (opt.scheme != "skyran") {
      std::cerr << "error: --timeline requires --scheme skyran\n";
      return 2;
    }
    // Continuous mission: a share of UEs walks; the trigger drives epochs.
    const auto n_mobile = static_cast<std::size_t>(
        opt.move_fraction * static_cast<double>(world.ue_positions().size()));
    mobility::RouteMobility walkers(
        world.terrain(), world.ue_positions(),
        mobility::make_random_routes(world.terrain(), world.ue_positions(), n_mobile, 400.0,
                                     opt.seed + 4));
    core::TimelineConfig tc;
    tc.duration_s = opt.timeline_min * 60.0;
    const core::TimelineResult r = core::run_timeline(skyran, world, walkers, tc);
    for (const core::TimelineEvent& e : r.events)
      std::cout << "  [" << sim::Table::num(e.time_s / 60.0, 1) << " min] " << e.detail
                << "\n";
    std::cout << "epochs=" << r.epochs_run
              << " mean_service_ratio=" << sim::Table::num(r.mean_service_ratio, 3)
              << " flight=" << sim::Table::num(r.total_flight_m, 0) << " m battery="
              << sim::Table::num(100.0 * r.battery_remaining_fraction, 0) << " %\n";
    return finish_telemetry(opt) ? 0 : 1;
  }

  sim::Table table({"epoch", "position", "altitude_m", "flight_m", "rel_throughput",
                    "mean_tput_mbps", "min_snr_db"});
  for (int e = 0; e < opt.epochs; ++e) {
    if (e > 0) {
      mob.relocate_epoch();
      world.ue_positions() = mob.positions();
    }

    geo::Vec2 position;
    double altitude = 0.0;
    double flight = 0.0;
    if (opt.scheme == "skyran") {
      const core::EpochReport r = skyran.run_epoch();
      position = r.position;
      altitude = r.altitude_m;
      flight = r.total_flight_m;
    } else {
      altitude = 60.0;
      if (opt.scheme == "uniform") {
        sim::UniformConfig uc;
        uc.altitude_m = altitude;
        uc.budget_m = opt.budget_m;
        uc.rem_cell_m = rem_cell;
        const sim::SchemeResult r = sim::run_uniform(world, uc, opt.seed + 10 + e);
        position = r.position;
        flight = r.flight_length_m;
      } else if (opt.scheme == "centroid") {
        std::vector<geo::Vec2> xy;
        for (const geo::Vec3& u : world.ue_positions()) xy.push_back(u.xy());
        position = sim::run_centroid(xy, altitude, world.area()).position;
      } else {
        position = sim::run_random(world, altitude, opt.seed + 10 + e).position;
      }
    }

    const sim::GroundTruth truth = sim::compute_ground_truth(world, altitude, eval_cell);
    const double rel = sim::relative_throughput(world, truth, position);
    table.add_row({std::to_string(e + 1),
                   "(" + sim::Table::num(position.x, 0) + ";" +
                       sim::Table::num(position.y, 0) + ")",
                   sim::Table::num(altitude, 0), sim::Table::num(flight, 0),
                   sim::Table::num(std::min(rel, 1.0), 3),
                   sim::Table::num(
                       world.mean_throughput_bps({position, altitude}) / 1e6, 1),
                   sim::Table::num(world.min_snr_db({position, altitude}), 1)});
  }
  table.print(std::cout);

  if (opt.csv_path) {
    std::ofstream os(*opt.csv_path);
    if (!os) {
      std::cerr << "error: cannot open " << *opt.csv_path << "\n";
      return 1;
    }
    table.write_csv(os);
    std::cout << "wrote " << *opt.csv_path << "\n";
  }
  return finish_telemetry(opt) ? 0 : 1;
}
