#!/usr/bin/env python3
"""Markdown link checker for intra-repo links (CI docs job).

Scans every *.md at the repo root and under docs/ for inline markdown links
and images, and fails (exit 1) when a relative link points at a file that
does not exist. External links (http/https/mailto) and pure in-page anchors
(#...) are not fetched or validated; anchors on existing files are stripped.

Usage: tools/check_links.py [repo_root]
"""
import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions ([id]: target) are rare in this repo but cheap to cover.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path):
    yield from sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.rglob("*.md"))


def strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks and inline code so `[i](x)`-shaped code
    fragments are not mistaken for links."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check(root: Path) -> int:
    dead = []
    for md in markdown_files(root):
        text = strip_code_blocks(md.read_text(encoding="utf-8"))
        targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
        for target in targets:
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                dead.append(f"{md.relative_to(root)}: dead link -> {target}")
    if dead:
        print(f"{len(dead)} dead intra-repo link(s):")
        for line in dead:
            print(f"  {line}")
        return 1
    count = len(list(markdown_files(root)))
    print(f"checked {count} markdown files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    sys.exit(check(root.resolve()))
