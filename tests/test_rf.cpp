// Tests for the RF propagation substrate: unit conversions, closed-form
// models, ray marching, shadowing, antennas, channels and the link budget.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geo/contract.hpp"
#include "rf/antenna.hpp"
#include "rf/channel.hpp"
#include "rf/link.hpp"
#include "rf/models.hpp"
#include "rf/raytrace.hpp"
#include "rf/shadowing.hpp"
#include "rf/units.hpp"
#include "terrain/synth.hpp"

namespace skyran::rf {
namespace {

TEST(UnitsTest, DbLinearRoundTrip) {
  EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
  EXPECT_DOUBLE_EQ(db_to_linear(10.0), 10.0);
  EXPECT_DOUBLE_EQ(db_to_linear(3.0), std::pow(10.0, 0.3));
  EXPECT_NEAR(linear_to_db(db_to_linear(-17.3)), -17.3, 1e-12);
}

TEST(UnitsTest, NoiseFloorTenMegahertz) {
  // -174 + 10log10(10e6) + 7 = -97 dBm: the textbook LTE-10MHz floor.
  EXPECT_NEAR(noise_floor_dbm(10e6, 7.0), -97.0, 0.01);
}

TEST(ModelsTest, FsplMatchesTextbookValues) {
  // 2.6 GHz at 100 m: 32.45 + 20log10(2600) + 20log10(0.1) = 80.75 dB.
  EXPECT_NEAR(fspl_db(100.0, 2.6e9), 80.75, 0.05);
  // Doubling distance adds 6.02 dB.
  EXPECT_NEAR(fspl_db(200.0, 2.6e9) - fspl_db(100.0, 2.6e9), 6.02, 0.01);
  // Doubling frequency adds 6.02 dB.
  EXPECT_NEAR(fspl_db(100.0, 5.2e9) - fspl_db(100.0, 2.6e9), 6.02, 0.01);
}

TEST(ModelsTest, FsplClampsBelowOneMeter) {
  EXPECT_DOUBLE_EQ(fspl_db(0.0, 2.6e9), fspl_db(1.0, 2.6e9));
  EXPECT_DOUBLE_EQ(fspl_db(0.5, 2.6e9), fspl_db(1.0, 2.6e9));
}

TEST(ModelsTest, LogDistanceReducesToFsplForExponentTwo) {
  EXPECT_NEAR(log_distance_db(150.0, 2.6e9, 2.0), fspl_db(150.0, 2.6e9), 1e-9);
  // Exponent 3.5 loses more with distance.
  EXPECT_GT(log_distance_db(150.0, 2.6e9, 3.5), fspl_db(150.0, 2.6e9));
}

TEST(ModelsTest, ContractsOnBadInputs) {
  EXPECT_THROW(fspl_db(10.0, 0.0), ContractViolation);
  EXPECT_THROW(log_distance_db(10.0, 2.6e9, 0.0), ContractViolation);
  EXPECT_THROW(log_distance_db(10.0, 2.6e9, 2.0, 0.0), ContractViolation);
}

TEST(RayTraceTest, ClearRayOverFlatGround) {
  const terrain::Terrain t = terrain::make_flat(100.0);
  const RayObstruction r = trace_ray(t, {10.0, 10.0, 50.0}, {90.0, 90.0, 2.0});
  EXPECT_TRUE(r.line_of_sight());
  EXPECT_NEAR(r.total_length_m, std::sqrt(80.0 * 80.0 * 2 + 48.0 * 48.0), 1e-9);
}

TEST(RayTraceTest, BuildingBlocksLowRay) {
  terrain::Terrain t = terrain::make_flat(100.0);
  for (int ix = 40; ix < 60; ++ix) {
    for (int iy = 0; iy < 100; ++iy) {
      t.cells().at(ix, iy).clutter = terrain::Clutter::kBuilding;
      t.cells().at(ix, iy).clutter_height = 30.0F;
    }
  }
  // Horizontal ray at 10 m crosses the 20 m-thick slab.
  const RayObstruction low = trace_ray(t, {0.0, 50.0, 10.0}, {100.0, 50.0, 10.0});
  EXPECT_FALSE(low.line_of_sight());
  EXPECT_NEAR(low.building_length_m, 20.0, 1.5);
  // Ray above the roof is clear.
  const RayObstruction high = trace_ray(t, {0.0, 50.0, 35.0}, {100.0, 50.0, 35.0});
  EXPECT_TRUE(high.line_of_sight());
}

TEST(RayTraceTest, SlantedRayPartialObstruction) {
  terrain::Terrain t = terrain::make_flat(100.0);
  for (int ix = 40; ix < 60; ++ix)
    for (int iy = 40; iy < 60; ++iy) {
      t.cells().at(ix, iy).clutter = terrain::Clutter::kFoliage;
      t.cells().at(ix, iy).clutter_height = 20.0F;
    }
  // Descending ray clears the canopy early on and dips into it later.
  const RayObstruction r = trace_ray(t, {0.0, 50.0, 40.0}, {100.0, 50.0, 2.0});
  EXPECT_GT(r.foliage_length_m, 0.0);
  EXPECT_DOUBLE_EQ(r.building_length_m, 0.0);
}

TEST(RayTraceTest, BelowGroundDetected) {
  terrain::Terrain t = terrain::make_flat(100.0);
  for (auto& c : t.cells().raw()) c.ground = 10.0F;
  const RayObstruction r = trace_ray(t, {0.0, 0.0, 5.0}, {100.0, 100.0, 5.0});
  EXPECT_TRUE(r.below_ground);
  EXPECT_FALSE(r.line_of_sight());
}

TEST(RayTraceTest, ZeroLengthRay) {
  const terrain::Terrain t = terrain::make_flat(10.0);
  const RayObstruction r = trace_ray(t, {5.0, 5.0, 5.0}, {5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(r.total_length_m, 0.0);
  EXPECT_TRUE(r.line_of_sight());
}

TEST(RayTraceTest, ObstructionLossCapsAtMax) {
  ObstructionLossParams p;
  RayObstruction r;
  r.building_length_m = 1000.0;
  EXPECT_DOUBLE_EQ(obstruction_loss_db(r, p), p.max_excess_db);
  r.building_length_m = 10.0;
  EXPECT_DOUBLE_EQ(obstruction_loss_db(r, p), 10.0 * p.building_db_per_m);
}

TEST(RayTraceTest, BelowGroundGetsFloorPenalty) {
  ObstructionLossParams p;
  RayObstruction r;
  r.below_ground = true;
  EXPECT_DOUBLE_EQ(obstruction_loss_db(r, p), p.below_ground_db);
}

TEST(KnifeEdgeTest, ClearPathNoLoss) {
  const terrain::Terrain t = terrain::make_flat(200.0);
  EXPECT_DOUBLE_EQ(knife_edge_loss_db(t, {0, 100, 50}, {200, 100, 50}, 2.6e9), 0.0);
}

TEST(KnifeEdgeTest, GrazingEdgeCostsSixDb) {
  // An edge exactly at the ray height (v = 0) costs ~6 dB (textbook value).
  terrain::Terrain t = terrain::make_flat(200.0);
  for (int iy = 0; iy < 200; ++iy) {
    t.cells().at(100, iy).clutter = terrain::Clutter::kBuilding;
    t.cells().at(100, iy).clutter_height = 30.0F;
  }
  const double loss = knife_edge_loss_db(t, {0, 100, 30.0}, {200, 100, 30.0}, 2.6e9);
  EXPECT_NEAR(loss, 6.0, 1.5);
}

TEST(KnifeEdgeTest, LossGrowsWithPenetrationDepth) {
  terrain::Terrain t = terrain::make_flat(200.0);
  for (int iy = 0; iy < 200; ++iy) {
    t.cells().at(100, iy).clutter = terrain::Clutter::kBuilding;
    t.cells().at(100, iy).clutter_height = 60.0F;
  }
  const double shallow = knife_edge_loss_db(t, {0, 100, 55.0}, {200, 100, 55.0}, 2.6e9);
  const double deep = knife_edge_loss_db(t, {0, 100, 20.0}, {200, 100, 20.0}, 2.6e9);
  EXPECT_GT(shallow, 6.0);
  EXPECT_GT(deep, shallow + 5.0);
}

TEST(KnifeEdgeTest, ChannelUsesMinOfPenetrationAndDiffraction) {
  // Deep canyon: the knife-edge field beats the capped through-building one,
  // so enabling it strictly lowers path loss there.
  auto blocked = std::make_shared<terrain::Terrain>(terrain::make_flat(200.0));
  for (int ix = 80; ix < 120; ++ix)
    for (int iy = 0; iy < 200; ++iy) {
      blocked->cells().at(ix, iy).clutter = terrain::Clutter::kBuilding;
      blocked->cells().at(ix, iy).clutter_height = 80.0F;
    }
  const auto terrain_ptr = std::shared_ptr<const terrain::Terrain>(blocked);
  RayTraceChannelParams hard;
  hard.shadowing_sigma_db = 0.0;
  hard.nlos_extra_sigma_db = 0.0;
  RayTraceChannelParams soft = hard;
  soft.use_knife_edge = true;
  const RayTraceChannel ch_hard(terrain_ptr, hard, 5);
  const RayTraceChannel ch_soft(terrain_ptr, soft, 5);
  const geo::Vec3 a{10.0, 100.0, 20.0};
  const geo::Vec3 b{190.0, 100.0, 1.5};
  EXPECT_LT(ch_soft.path_loss_db(a, b), ch_hard.path_loss_db(a, b));
  // LOS links (above the roof line end to end) are untouched by the flag.
  const geo::Vec3 c{10.0, 100.0, 120.0};
  const geo::Vec3 d{190.0, 100.0, 95.0};
  EXPECT_DOUBLE_EQ(ch_soft.path_loss_db(c, d), ch_hard.path_loss_db(c, d));
}

TEST(ShadowingTest, DeterministicAndBounded) {
  const ShadowingField f(3, 4.0, 30.0);
  const geo::Vec3 a{10.0, 20.0, 60.0};
  const geo::Vec3 b{200.0, 150.0, 1.5};
  EXPECT_DOUBLE_EQ(f.loss_db(a, b), f.loss_db(a, b));
  double max_abs = 0.0;
  for (int i = 0; i < 200; ++i) {
    const geo::Vec3 p{i * 3.1, i * 2.7, 50.0};
    max_abs = std::max(max_abs, std::abs(f.loss_db(p, b)));
  }
  EXPECT_LT(max_abs, 4.0 * 4.0);  // few-sigma bound
  EXPECT_GT(max_abs, 1.0);        // but not degenerate
}

TEST(ShadowingTest, ZeroSigmaIsZeroLoss) {
  const ShadowingField f(3, 0.0, 30.0);
  EXPECT_DOUBLE_EQ(f.loss_db({0, 0, 10}, {50, 50, 1}), 0.0);
}

TEST(AntennaTest, HorizonVersusNadir) {
  const Antenna a(5.0, 8.0);
  // Horizontal link: full gain.
  EXPECT_NEAR(a.gain_dbi({0, 0, 50}, {100, 0, 50}), 5.0, 1e-9);
  // Straight down: rolled off.
  EXPECT_NEAR(a.gain_dbi({0, 0, 50}, {0, 0, 0}), -3.0, 1e-9);
  // Degenerate zero-distance: peak.
  EXPECT_DOUBLE_EQ(a.gain_dbi({1, 2, 3}, {1, 2, 3}), 5.0);
}

TEST(ChannelTest, FsplChannelMatchesModel) {
  const FsplChannel ch(2.6e9);
  EXPECT_DOUBLE_EQ(ch.path_loss_db({0, 0, 0}, {100, 0, 0}), fspl_db(100.0, 2.6e9));
  EXPECT_DOUBLE_EQ(ch.frequency_hz(), 2.6e9);
  EXPECT_THROW(FsplChannel(0.0), ContractViolation);
}

TEST(ChannelTest, RayTraceChannelSymmetricAndDeterministic) {
  auto terrain = std::make_shared<const terrain::Terrain>(terrain::make_campus(5, 2.0));
  const RayTraceChannel ch(terrain, {}, 9);
  const geo::Vec3 a{50.0, 60.0, 45.0};
  const geo::Vec3 b{220.0, 180.0, 1.5};
  EXPECT_DOUBLE_EQ(ch.path_loss_db(a, b), ch.path_loss_db(b, a));
  const RayTraceChannel ch2(terrain, {}, 9);
  EXPECT_DOUBLE_EQ(ch.path_loss_db(a, b), ch2.path_loss_db(a, b));
}

TEST(ChannelTest, ObstructionIncreasesLoss) {
  auto terrain = std::make_shared<const terrain::Terrain>(terrain::make_flat(200.0));
  // Insert a slab between two fixed points.
  auto blocked = std::make_shared<terrain::Terrain>(terrain::make_flat(200.0));
  for (int ix = 45; ix < 55; ++ix)
    for (int iy = 0; iy < 200; ++iy) {
      blocked->cells().at(ix, iy).clutter = terrain::Clutter::kBuilding;
      blocked->cells().at(ix, iy).clutter_height = 50.0F;
    }
  RayTraceChannelParams params;
  params.shadowing_sigma_db = 0.0;  // isolate the obstruction term
  params.nlos_extra_sigma_db = 0.0;
  const RayTraceChannel clear_ch(terrain, params, 3);
  const RayTraceChannel blocked_ch(std::shared_ptr<const terrain::Terrain>(blocked), params, 3);
  const geo::Vec3 a{10.0, 100.0, 10.0};
  const geo::Vec3 b{190.0, 100.0, 10.0};
  EXPECT_GT(blocked_ch.path_loss_db(a, b), clear_ch.path_loss_db(a, b) + 10.0);
  EXPECT_TRUE(clear_ch.line_of_sight(a, b));
  EXPECT_FALSE(blocked_ch.line_of_sight(a, b));
}

TEST(ChannelTest, NullTerrainRejected) {
  EXPECT_THROW(RayTraceChannel(nullptr, {}, 1), ContractViolation);
}

TEST(LinkBudgetTest, SnrFollowsPathLoss) {
  const LinkBudget lb;
  const double snr100 = lb.snr_db(100.0);
  EXPECT_DOUBLE_EQ(lb.snr_db(110.0), snr100 - 10.0);
  // Inverse is consistent.
  EXPECT_NEAR(lb.path_loss_for_snr_db(snr100), 100.0, 1e-9);
}

TEST(LinkBudgetTest, RssIndependentOfNoise) {
  LinkBudget lb;
  const double rss = lb.rss_dbm(95.0);
  lb.noise_figure_db += 10.0;
  EXPECT_DOUBLE_EQ(lb.rss_dbm(95.0), rss);
  EXPECT_LT(lb.snr_db(95.0), rss - lb.effective_floor_dbm() + 1e-9);
}

/// Path-loss monotonicity property over open terrain: farther is weaker.
class FsplMonotone : public ::testing::TestWithParam<double> {};

TEST_P(FsplMonotone, LossIncreasesWithDistance) {
  const double f = GetParam();
  double prev = 0.0;
  for (double d = 10.0; d < 2000.0; d *= 1.7) {
    const double loss = fspl_db(d, f);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, FsplMonotone,
                         ::testing::Values(700e6, 1.8e9, 2.6e9, 3.5e9, 5.9e9));

/// Fig. 7-style property: path loss along a flight segment over complex
/// terrain varies by tens of dB (the reason probing time hurts, Sec 2.5).
TEST(ChannelTest, PathLossVariesAlongFlightSegment) {
  // Some 50 m segment near the campus building must show a large path-loss
  // swing (the paper's Fig. 7: ~18 dB). Search candidate rows like an
  // operator picking an illustrative segment would.
  auto terrain = std::make_shared<const terrain::Terrain>(terrain::make_campus(5, 2.0));
  const RayTraceChannel ch(terrain, {}, 9);
  const geo::Vec3 ue{150.0, 210.0, 1.5};  // north of the office block
  double best_span = 0.0;
  for (double y = 80.0; y <= 140.0; y += 10.0) {
    double lo = 1e9;
    double hi = -1e9;
    for (double x = 100.0; x <= 200.0; x += 2.0) {
      const double pl = ch.path_loss_db({x, y, 45.0}, ue);
      lo = std::min(lo, pl);
      hi = std::max(hi, pl);
    }
    best_span = std::max(best_span, hi - lo);
  }
  EXPECT_GT(best_span, 8.0);  // tens of dB in the paper; at least several here
}

}  // namespace
}  // namespace skyran::rf
