// Tests for the SkyRan facade: configuration contracts, single-epoch
// behavior, REM/history reuse across epochs, the epoch trigger and the
// localization-mode ablations.
#include <gtest/gtest.h>

#include "core/skyran.hpp"
#include "geo/contract.hpp"
#include "mobility/deployment.hpp"
#include "mobility/model.hpp"
#include "sim/ground_truth.hpp"

namespace skyran::core {
namespace {

sim::World make_world(std::uint64_t seed, int ues = 4,
                      terrain::TerrainKind kind = terrain::TerrainKind::kCampus) {
  sim::WorldConfig wc;
  wc.terrain_kind = kind;
  wc.seed = seed;
  sim::World world(wc);
  world.ue_positions() = mobility::deploy_mixed_visibility(world.terrain(), ues, seed + 1);
  return world;
}

SkyRanConfig fast_config() {
  SkyRanConfig cfg;
  cfg.measurement_budget_m = 500.0;
  cfg.localization_mode = LocalizationMode::kPerfect;  // keep unit tests fast
  return cfg;
}

TEST(SkyRanConfigTest, ContractsOnConstruction) {
  sim::World world = make_world(3);
  SkyRanConfig bad = fast_config();
  bad.epoch_drop_threshold = 0.0;
  EXPECT_THROW(SkyRan(world, bad, 1), ContractViolation);
  bad = fast_config();
  bad.rem_cell_m = 0.0;
  EXPECT_THROW(SkyRan(world, bad, 1), ContractViolation);
}

TEST(SkyRanTest, EpochProducesCompleteReport) {
  sim::World world = make_world(3);
  SkyRan skyran(world, fast_config(), 7);
  const EpochReport r = skyran.run_epoch();
  EXPECT_EQ(r.epoch, 1);
  EXPECT_EQ(r.estimated_ue_positions.size(), 4u);
  EXPECT_GT(r.altitude_m, 0.0);
  EXPECT_GT(r.measurement_flight_m, 0.0);
  EXPECT_LE(r.measurement_flight_m, 500.0 + 1e-6);
  EXPECT_GT(r.total_flight_m, r.measurement_flight_m - 1e-9);
  EXPECT_GT(r.flight_time_s, 0.0);
  EXPECT_TRUE(world.area().contains(r.position));
  EXPECT_GT(r.served_mean_throughput_bps, 0.0);
  EXPECT_EQ(skyran.epochs_run(), 1);
  EXPECT_EQ(skyran.rem_bank().ue_count(), 4u);
  EXPECT_TRUE(skyran.rem_bank().estimates_current());
  EXPECT_LT(skyran.battery().remaining_fraction(), 1.0);
}

TEST(SkyRanTest, NoUesRejected) {
  sim::World world = make_world(3);
  world.ue_positions().clear();
  SkyRan skyran(world, fast_config(), 7);
  EXPECT_THROW(skyran.run_epoch(), ContractViolation);
}

TEST(SkyRanTest, PerfectLocalizationReturnsTruth) {
  sim::World world = make_world(4);
  SkyRan skyran(world, fast_config(), 8);
  const EpochReport r = skyran.run_epoch();
  for (std::size_t i = 0; i < r.estimated_ue_positions.size(); ++i)
    EXPECT_LT(r.estimated_ue_positions[i].dist(world.ue_positions()[i].xy()), 1e-9);
}

TEST(SkyRanTest, GaussianErrorModeInjectsConfiguredError) {
  sim::World world = make_world(4, 8);
  SkyRanConfig cfg = fast_config();
  cfg.localization_mode = LocalizationMode::kGaussianError;
  cfg.injected_error_m = 15.0;
  SkyRan skyran(world, cfg, 8);
  const EpochReport r = skyran.run_epoch();
  double total = 0.0;
  for (std::size_t i = 0; i < r.estimated_ue_positions.size(); ++i)
    total += r.estimated_ue_positions[i].dist(world.ue_positions()[i].xy());
  const double mean_err = total / 8.0;
  EXPECT_GT(mean_err, 4.0);
  EXPECT_LT(mean_err, 40.0);
}

TEST(SkyRanTest, AltitudeLockedAfterFirstEpoch) {
  sim::World world = make_world(5);
  SkyRan skyran(world, fast_config(), 9);
  const EpochReport r1 = skyran.run_epoch();
  const EpochReport r2 = skyran.run_epoch();
  EXPECT_DOUBLE_EQ(r1.altitude_m, r2.altitude_m);
  EXPECT_GT(r1.altitude_flight_m, 0.0);
  EXPECT_DOUBLE_EQ(r2.altitude_flight_m, 0.0);  // no second search
}

TEST(SkyRanTest, RemsReusedWhenUesStay) {
  sim::World world = make_world(5);
  SkyRan skyran(world, fast_config(), 9);
  const EpochReport r1 = skyran.run_epoch();
  for (const bool reused : r1.reused_rem) EXPECT_FALSE(reused);  // fresh world
  const EpochReport r2 = skyran.run_epoch();  // UEs unchanged
  for (const bool reused : r2.reused_rem) EXPECT_TRUE(reused);
  EXPECT_GE(skyran.rem_store().size(), 1u);
}

TEST(SkyRanTest, MovedUeGetsFreshRem) {
  sim::World world = make_world(5);
  SkyRan skyran(world, fast_config(), 9);
  skyran.run_epoch();
  // Teleport UE 0 far away (> reuse radius from anything mapped).
  world.ue_positions()[0] =
      mobility::random_walkable_position(world.terrain(), 999);
  const EpochReport r2 = skyran.run_epoch();
  // Most stationary UEs reuse; at least the stationary ones do.
  int reused = 0;
  for (std::size_t i = 1; i < r2.reused_rem.size(); ++i) reused += r2.reused_rem[i];
  EXPECT_GE(reused, 2);
}

TEST(SkyRanTest, SecondEpochCheaperThroughHistory) {
  sim::World world = make_world(6);
  SkyRanConfig cfg = fast_config();
  cfg.measurement_budget_m = 0.0;  // let the planner choose freely
  SkyRan skyran(world, cfg, 10);
  const EpochReport r1 = skyran.run_epoch();
  const EpochReport r2 = skyran.run_epoch();
  // With full history and unchanged UEs, the info-to-cost of the chosen tour
  // drops (everything nearby is explored): expect a different, usually
  // cheaper tour. We assert the planner at least responds to history.
  EXPECT_NE(r1.info_to_cost, r2.info_to_cost);
}

TEST(SkyRanTest, TriggerFiresWhenUesScatter) {
  sim::World world = make_world(7, 5);
  SkyRan skyran(world, fast_config(), 11);
  skyran.run_epoch();
  EXPECT_FALSE(skyran.should_trigger_epoch());  // nothing changed yet
  EXPECT_NEAR(skyran.served_performance_ratio(), 1.0, 1e-9);
  // Scatter every UE across the area: served throughput collapses.
  mobility::EpochRelocateMobility mob(world.terrain(), world.ue_positions(), 1.0, 12);
  for (int i = 0; i < 8 && !skyran.should_trigger_epoch(); ++i) {
    mob.relocate_epoch();
    world.ue_positions() = mob.positions();
  }
  EXPECT_TRUE(skyran.should_trigger_epoch());
  // Running a new epoch restores performance tracking.
  skyran.run_epoch();
  EXPECT_NEAR(skyran.served_performance_ratio(), 1.0, 1e-9);
}

TEST(SkyRanTest, PhyLocalizationModeRunsEndToEnd) {
  sim::World world = make_world(8, 3);
  SkyRanConfig cfg = fast_config();
  cfg.localization_mode = LocalizationMode::kPhy;
  SkyRan skyran(world, cfg, 13);
  const EpochReport r = skyran.run_epoch();
  EXPECT_GT(r.localization_flight_m, 10.0);
  // PHY estimates are imperfect but bounded.
  for (std::size_t i = 0; i < r.estimated_ue_positions.size(); ++i)
    EXPECT_LT(r.estimated_ue_positions[i].dist(world.ue_positions()[i].xy()), 120.0);
}

TEST(SkyRanTest, FlightAccumulatesAcrossEpochs) {
  sim::World world = make_world(9);
  SkyRan skyran(world, fast_config(), 14);
  const EpochReport r1 = skyran.run_epoch();
  const EpochReport r2 = skyran.run_epoch();
  EXPECT_NEAR(skyran.total_flight_m(), r1.total_flight_m + r2.total_flight_m, 1e-9);
}

TEST(SkyRanTest, PlacementIsFeasible) {
  sim::World world = make_world(10, 5, terrain::TerrainKind::kNyc);
  SkyRan skyran(world, fast_config(), 15);
  const EpochReport r = skyran.run_epoch();
  EXPECT_LT(world.terrain().surface_height(r.position) + 10.0, r.altitude_m + 1e-6);
}

/// Objective sweep: every placement objective runs the full loop.
class ObjectiveSweep : public ::testing::TestWithParam<rem::PlacementObjective> {};

TEST_P(ObjectiveSweep, EpochCompletes) {
  sim::World world = make_world(11);
  SkyRanConfig cfg = fast_config();
  cfg.objective = GetParam();
  SkyRan skyran(world, cfg, 16);
  const EpochReport r = skyran.run_epoch();
  EXPECT_TRUE(world.area().contains(r.position));
}

INSTANTIATE_TEST_SUITE_P(Objectives, ObjectiveSweep,
                         ::testing::Values(rem::PlacementObjective::kMaxMin,
                                           rem::PlacementObjective::kMaxMean,
                                           rem::PlacementObjective::kMaxWeighted,
                                           rem::PlacementObjective::kMaxCoverage));

}  // namespace
}  // namespace skyran::core
