// Odds-and-ends coverage: weighted placement, coverage thresholds, WiFi
// backhaul NLOS penalty, REM UE-position updates and table formatting.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "lte/backhaul.hpp"
#include "rem/placement.hpp"
#include "rem/rem.hpp"
#include "sim/table.hpp"
#include "terrain/synth.hpp"

namespace skyran {
namespace {

TEST(WeightedPlacementTest, WeightsSteerTheArgmax) {
  // UE a likes the left, UE b likes the right; weighting b 10x must pull
  // the placement right.
  geo::Grid2D<double> a(geo::Rect::square(100.0), 10.0, 0.0);
  geo::Grid2D<double> b(geo::Rect::square(100.0), 10.0, 0.0);
  a.for_each([&](geo::CellIndex c, double& v) { v = 20.0 - c.ix * 2.0; });
  b.for_each([&](geo::CellIndex c, double& v) { v = c.ix * 2.0; });
  const std::vector<geo::Grid2D<double>> maps{a, b};
  const std::vector<double> favor_b{1.0, 10.0};
  const rem::Placement p = rem::choose_placement(
      maps, rem::PlacementObjective::kMaxWeighted, favor_b);
  EXPECT_GT(p.position.x, 70.0);
  const std::vector<double> favor_a{10.0, 1.0};
  const rem::Placement q = rem::choose_placement(
      maps, rem::PlacementObjective::kMaxWeighted, favor_a);
  EXPECT_LT(q.position.x, 30.0);
}

TEST(CoverageMapTest, ThresholdParameterRespected) {
  geo::Grid2D<double> m(geo::Rect::square(50.0), 10.0, 5.0);
  const std::vector<geo::Grid2D<double>> maps{m};
  EXPECT_DOUBLE_EQ(rem::coverage_map(maps, 0.0).at(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(rem::coverage_map(maps, 10.0).at(2, 2), 0.0);
  EXPECT_DOUBLE_EQ(rem::coverage_map(maps, 5.0).at(2, 2), 1.0);  // inclusive
}

TEST(BackhaulTest, WifiNlosPenalty) {
  auto blocked = std::make_shared<terrain::Terrain>(terrain::make_flat(400.0));
  for (int ix = 40; ix < 50; ++ix)
    for (int iy = 0; iy < 400; ++iy) {
      blocked->cells().at(ix, iy).clutter = terrain::Clutter::kBuilding;
      blocked->cells().at(ix, iy).clutter_height = 150.0F;
    }
  const rf::RayTraceChannel ch(std::shared_ptr<const terrain::Terrain>(blocked), {}, 3);
  lte::BackhaulConfig cfg;
  cfg.tech = lte::BackhaulTech::kWifi;
  cfg.gateway = {10.0, 10.0, 10.0};
  const lte::Backhaul bh(ch, cfg);
  // Same distance, LOS (high) vs NLOS (low, behind the slab): factor ~4.
  const double los = bh.capacity_bps({10.0, 210.0, 60.0});
  const double nlos = bh.capacity_bps({210.0, 10.0, 60.0});
  EXPECT_NEAR(los / nlos, 4.0, 0.5);
}

TEST(RemTest, UePositionUpdatable) {
  rem::Rem r(geo::Rect::square(50.0), 10.0, 40.0, {10.0, 10.0, 1.5});
  EXPECT_EQ(r.ue_position(), (geo::Vec3{10.0, 10.0, 1.5}));
  r.set_ue_position({20.0, 30.0, 1.5});
  EXPECT_EQ(r.ue_position(), (geo::Vec3{20.0, 30.0, 1.5}));
}

TEST(RemTest, RestoreMeasurementContracts) {
  rem::Rem r(geo::Rect::square(50.0), 10.0, 40.0, {10.0, 10.0, 1.5});
  EXPECT_THROW(r.restore_measurement({0, 0}, 5.0, 0), ContractViolation);
  r.restore_measurement({0, 0}, 6.0, 2);
  EXPECT_DOUBLE_EQ(*r.measured_snr({0, 0}), 3.0);
  EXPECT_EQ(r.measured_cells(), 1u);
  // Restoring over an existing cell replaces, not double-counts.
  r.restore_measurement({0, 0}, 10.0, 5);
  EXPECT_DOUBLE_EQ(*r.measured_snr({0, 0}), 2.0);
  EXPECT_EQ(r.measured_cells(), 1u);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(sim::Table::num(3.14159, 3), "3.142");
  EXPECT_EQ(sim::Table::num(-0.5, 1), "-0.5");
  EXPECT_EQ(sim::Table::num(1e6, 0), "1000000");
}

}  // namespace
}  // namespace skyran
