// Randomized property tests: invariants that must hold for arbitrary seeds,
// exercised across a seed sweep (TEST_P). These complement the per-module
// example-based tests with broader input coverage.
#include <gtest/gtest.h>

#include <random>

#include "localization/multilateration.hpp"
#include "lte/ranging.hpp"
#include "lte/scheduler.hpp"
#include "lte/srs_channel.hpp"
#include "mobility/deployment.hpp"
#include "rem/gradient.hpp"
#include "rem/kriging.hpp"
#include "rem/placement.hpp"
#include "rem/planner.hpp"
#include "rem/tsp.hpp"
#include "rf/units.hpp"
#include "sim/measurement.hpp"
#include "sim/world.hpp"
#include "uav/trajectory.hpp"

namespace skyran {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::uint64_t seed() const { return GetParam(); }
};

TEST_P(SeedSweep, PlannerToursStayInsideAreaAndBudget) {
  std::mt19937_64 rng(seed());
  std::uniform_real_distribution<double> u(5.0, 195.0);
  rem::Rem map(geo::Rect::square(200.0), 5.0, 60.0, {100.0, 100.0, 1.5});
  const rf::FsplChannel fspl(2.6e9);
  map.seed_from_model(fspl, rf::LinkBudget{});
  std::normal_distribution<double> g(10.0, 8.0);
  for (int i = 0; i < 300; ++i) map.add_measurement({u(rng), u(rng)}, g(rng));

  rem::PlannerConfig cfg;
  cfg.budget_m = 100.0 + 50.0 * (seed() % 7);
  cfg.seed = seed();
  const std::vector<rem::Rem> rems{map};
  const rem::PlannedTrajectory plan =
      rem::plan_measurement_trajectory(rems, {{}}, {100.0, 100.0}, cfg);
  EXPECT_LE(plan.cost_m, cfg.budget_m + 1e-6);
  for (const geo::Vec2 p : plan.path.points())
    EXPECT_TRUE(map.area().contains(p)) << p;
}

TEST_P(SeedSweep, SchedulerConservesPrbs) {
  std::mt19937_64 rng(seed());
  std::uniform_real_distribution<double> snr(-20.0, 35.0);
  std::uniform_int_distribution<int> n_ues(1, 12);
  lte::Scheduler sched(lte::bandwidth_config(10.0));
  for (int round = 0; round < 30; ++round) {
    std::vector<lte::UeChannelState> ues;
    const int n = n_ues(rng);
    for (int i = 0; i < n; ++i)
      ues.push_back({static_cast<std::uint32_t>(i + 1), snr(rng), (rng() & 1) != 0});
    const auto alloc = sched.schedule_tti(ues);
    int total = 0;
    for (const auto& a : alloc) {
      EXPECT_GE(a.prb, 0);
      EXPECT_GE(a.bits, 0.0);
      total += a.prb;
    }
    EXPECT_LE(total, 50);
  }
}

TEST_P(SeedSweep, IdwEstimateBoundedBySamples) {
  std::mt19937_64 rng(seed());
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::uniform_real_distribution<double> val(-30.0, 40.0);
  std::vector<rem::IdwSample> samples;
  double lo = 1e18;
  double hi = -1e18;
  for (int i = 0; i < 40; ++i) {
    const double v = val(rng);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
    samples.push_back({{u(rng), u(rng)}, v});
  }
  const rem::IdwInterpolator idw(samples, geo::Rect::square(100.0));
  for (int q = 0; q < 50; ++q) {
    const double e = *idw.estimate({u(rng), u(rng)}, 8, 2.0, 1e9);
    EXPECT_GE(e, lo - 1e-9);
    EXPECT_LE(e, hi + 1e-9);
  }
}

TEST_P(SeedSweep, KrigingExactAtEverySample) {
  std::mt19937_64 rng(seed());
  std::uniform_real_distribution<double> u(0.0, 100.0);
  std::uniform_real_distribution<double> val(-10.0, 10.0);
  std::vector<rem::IdwSample> samples;
  for (int i = 0; i < 25; ++i) samples.push_back({{u(rng), u(rng)}, val(rng)});
  const rem::KrigingInterpolator k(samples, geo::Rect::square(100.0), rem::Variogram{});
  for (const rem::IdwSample& s : samples)
    EXPECT_NEAR(*k.estimate(s.position), s.value, 1e-6);
}

TEST_P(SeedSweep, MinMapDominatedByEveryInput) {
  std::mt19937_64 rng(seed());
  std::normal_distribution<double> g(5.0, 10.0);
  std::vector<geo::Grid2D<double>> maps;
  for (int m = 0; m < 4; ++m) {
    geo::Grid2D<double> grid(geo::Rect::square(60.0), 10.0, 0.0);
    for (double& v : grid.raw()) v = g(rng);
    maps.push_back(std::move(grid));
  }
  const geo::Grid2D<double> mn = rem::min_snr_map(maps);
  const geo::Grid2D<double> mean = rem::mean_snr_map(maps);
  for (std::size_t j = 0; j < mn.raw().size(); ++j) {
    for (const auto& m : maps) EXPECT_LE(mn.raw()[j], m.raw()[j] + 1e-12);
    EXPECT_GE(mean.raw()[j], mn.raw()[j] - 1e-12);
  }
}

TEST_P(SeedSweep, TspVisitsEveryNodeOnce) {
  std::mt19937_64 rng(seed());
  std::uniform_real_distribution<double> u(0.0, 300.0);
  std::vector<geo::Vec2> nodes;
  for (int i = 0; i < 14; ++i) nodes.push_back({u(rng), u(rng)});
  const geo::Path tour = rem::plan_tour({u(rng), u(rng)}, nodes);
  ASSERT_EQ(tour.size(), nodes.size() + 1);
  for (const geo::Vec2 n : nodes) {
    bool found = false;
    for (std::size_t i = 1; i < tour.size(); ++i)
      found = found || tour.points()[i] == n;
    EXPECT_TRUE(found);
  }
  // 2-opt never does worse than visiting in the given order.
  EXPECT_LE(tour.length(), rem::tour_length(tour.points()[0], nodes) + 1e-9);
}

TEST_P(SeedSweep, ChannelIsSymmetricAndFinite) {
  sim::WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kNyc;
  wc.seed = seed();
  const sim::World world(wc);
  std::mt19937_64 rng(seed() ^ 0x77);
  std::uniform_real_distribution<double> u(5.0, 245.0);
  std::uniform_real_distribution<double> z(1.5, 120.0);
  for (int i = 0; i < 40; ++i) {
    const geo::Vec3 a{u(rng), u(rng), z(rng)};
    const geo::Vec3 b{u(rng), u(rng), z(rng)};
    const double ab = world.channel().path_loss_db(a, b);
    EXPECT_DOUBLE_EQ(ab, world.channel().path_loss_db(b, a));
    EXPECT_TRUE(std::isfinite(ab));
    EXPECT_GT(ab, 30.0);   // at least near-field FSPL
    EXPECT_LT(ab, 250.0);  // capped obstruction keeps losses bounded
  }
}

TEST_P(SeedSweep, TofInvertsRandomDelays) {
  lte::SrsConfig cfg;
  const lte::SrsSymbol tx = lte::make_srs_symbol(cfg);
  const lte::TofEstimator est(cfg, 4);
  std::mt19937_64 rng(seed());
  std::uniform_real_distribution<double> dist(20.0, 400.0);
  for (int i = 0; i < 10; ++i) {
    const double d = dist(rng);
    lte::SrsChannelParams ch;
    ch.delay_s = d / rf::kSpeedOfLight;
    ch.snr_db = 12.0;
    const lte::TofEstimate e = est.estimate(lte::apply_srs_channel(tx, ch, rng));
    EXPECT_NEAR(e.distance_m, d, 6.0) << "d=" << d;
  }
}

TEST_P(SeedSweep, MeasurementsLandOnTheTrack) {
  sim::WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kFlat;
  wc.seed = seed();
  sim::World world(wc);
  world.ue_positions() = {{120.0, 120.0, 1.5}};
  std::vector<rem::Rem> rems;
  rems.emplace_back(world.area(), 5.0, 60.0, world.ue_positions()[0]);
  const geo::Path track = uav::random_walk(world.area().inflated(-10.0), {100.0, 100.0},
                                           150.0, 25.0, seed());
  std::mt19937_64 rng(seed() ^ 0x99);
  sim::run_measurement_flight(world, uav::FlightPlan::at_altitude(track, 60.0), rems, {}, rng);
  EXPECT_GT(rems[0].measured_cells(), 10u);
  // Every measured cell center sits within one cell diagonal of the track.
  rems[0].estimate();  // force no-throw
  const auto& grid = rems[0];
  geo::Grid2D<int> probe(world.area(), 5.0, 0);
  probe.for_each([&](geo::CellIndex c, int&) {
    if (grid.is_measured(c)) {
      EXPECT_LT(track.distance_to(probe.center_of(c)), 5.0 * 1.5) << c.ix << "," << c.iy;
    }
  });
}

TEST_P(SeedSweep, DeploymentsAreWalkableEverywhere) {
  const terrain::Terrain t = terrain::make_nyc(seed(), 2.0);
  for (const auto& ues :
       {mobility::deploy_uniform(t, 10, seed() + 1),
        mobility::deploy_clustered(t, 10, 3, 30.0, seed() + 2),
        mobility::deploy_mixed_visibility(t, 9, seed() + 3)}) {
    for (const geo::Vec3& u : ues) {
      EXPECT_NE(t.clutter_at(u.xy()), terrain::Clutter::kBuilding);
      EXPECT_TRUE(t.area().contains(u.xy()));
    }
  }
}

TEST_P(SeedSweep, GradientMapNonNegativeAndZeroOnFlat) {
  std::mt19937_64 rng(seed());
  std::normal_distribution<double> g(0.0, 5.0);
  geo::Grid2D<double> snr(geo::Rect::square(80.0), 8.0, 0.0);
  for (double& v : snr.raw()) v = g(rng);
  const geo::Grid2D<double> grad = rem::gradient_map(snr);
  for (const double v : grad.raw()) EXPECT_GE(v, 0.0);
  snr.fill(7.0);
  const geo::Grid2D<double> flat_grad = rem::gradient_map(snr);
  for (const double v : flat_grad.raw()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_P(SeedSweep, MultilaterationRoundTripRecoversPositionAndOffset) {
  // Sample a UE position and a constant processing-delay offset, synthesize
  // ToF ranges from waypoints spread across the area (wide aperture, so
  // (x, y, b) is identifiable), and require the solver to invert both.
  std::mt19937_64 rng(seed());
  const geo::Rect area = geo::Rect::square(300.0);
  std::uniform_real_distribution<double> u(30.0, 270.0);
  std::uniform_real_distribution<double> off(5.0, 60.0);
  std::normal_distribution<double> noise(0.0, 0.3);
  const geo::Vec3 ue{u(rng), u(rng), 1.5};
  const double offset_m = off(rng);

  localization::GpsTofSeries tuples;
  for (int i = 0; i < 40; ++i) {
    const geo::Vec3 wp{u(rng), u(rng), 60.0};
    tuples.push_back({static_cast<double>(i) / 50.0, wp,
                      wp.dist(ue) + offset_m + noise(rng)});
  }

  localization::MultilaterationOptions opts;
  opts.seed = seed();
  const localization::MultilaterationResult fit =
      localization::multilaterate(tuples, area, ue.z, opts);
  EXPECT_NEAR(fit.position.dist(ue.xy()), 0.0, 5.0);
  EXPECT_NEAR(fit.offset_m, offset_m, 5.0);
  EXPECT_LT(fit.rms_residual_m, 3.0);
}

TEST_P(SeedSweep, MultilaterationCollinearWaypointsDoNotCrash) {
  // Waypoints on a straight line leave a mirror ambiguity across the line:
  // the solve must stay finite and fit the ranges, and the estimate must
  // land on the UE or its mirror image.
  std::mt19937_64 rng(seed());
  const geo::Rect area = geo::Rect::square(300.0);
  std::uniform_real_distribution<double> u(40.0, 260.0);
  const geo::Vec3 ue{u(rng), u(rng), 1.5};
  const double line_y = 150.0;
  const double offset_m = 20.0;

  localization::GpsTofSeries tuples;
  for (int i = 0; i < 30; ++i) {
    const geo::Vec3 wp{30.0 + 8.0 * i, line_y, 60.0};  // strictly collinear
    tuples.push_back({static_cast<double>(i) / 50.0, wp, wp.dist(ue) + offset_m});
  }

  localization::MultilaterationOptions opts;
  opts.seed = seed();
  localization::MultilaterationResult fit;
  ASSERT_NO_THROW(fit = localization::multilaterate(tuples, area, ue.z, opts));
  EXPECT_TRUE(std::isfinite(fit.position.x));
  EXPECT_TRUE(std::isfinite(fit.position.y));
  EXPECT_TRUE(std::isfinite(fit.offset_m));
  EXPECT_TRUE(std::isfinite(fit.rms_residual_m));
  const geo::Vec2 mirror{ue.x, 2.0 * line_y - ue.y};
  const double to_truth = std::min(fit.position.dist(ue.xy()), fit.position.dist(mirror));
  EXPECT_LT(to_truth, 10.0);

  // Degenerate extreme: all waypoints identical must also not crash.
  localization::GpsTofSeries same(10, {0.0, {100.0, 100.0, 60.0},
                                       geo::Vec3{100.0, 100.0, 60.0}.dist(ue) + offset_m});
  ASSERT_NO_THROW(localization::multilaterate(same, area, ue.z, opts));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 42u, 1337u));

}  // namespace
}  // namespace skyran
