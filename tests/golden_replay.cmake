# ctest driver for the golden-replay checks: run an example binary with
# SKYRAN_SIMD=off and require its stdout to be byte-identical to the
# committed tests/golden/<name>.stdout. The scalar kernel variants are the
# pre-kernel-layer loops verbatim, so any diff here means the refactor (or a
# later change) silently moved numeric behavior instead of routing through
# the dispatch layer.
#
# Expected -D definitions: EXE (example binary), GOLDEN (committed stdout).
if(NOT EXE OR NOT GOLDEN)
  message(FATAL_ERROR "golden_replay.cmake needs -DEXE=... and -DGOLDEN=...")
endif()

set(ENV{SKYRAN_SIMD} "off")
execute_process(
  COMMAND ${EXE}
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE errout
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${EXE} exited with ${rc}:\n${errout}")
endif()

file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
  file(WRITE ${GOLDEN}.actual "${actual}")
  message(FATAL_ERROR
    "SKYRAN_SIMD=off stdout of ${EXE} is not byte-identical to ${GOLDEN}. "
    "Fresh output written next to it as .actual; diff the two. If the "
    "change is intentional, re-capture the golden with SKYRAN_SIMD=off.")
endif()
