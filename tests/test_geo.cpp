// Unit tests for the geo foundation module: vectors, rectangles, grids,
// paths, statistics and the value-noise field.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "geo/contract.hpp"
#include "geo/grid.hpp"
#include "geo/noise.hpp"
#include "geo/path.hpp"
#include "geo/rect.hpp"
#include "geo/stats.hpp"
#include "geo/vec.hpp"

namespace skyran::geo {
namespace {

TEST(Vec2Test, ArithmeticWorks) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2Test, NormAndDistance) {
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(1.0, 1.0).dist({4.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Vec2(2.0, 3.0).dot({4.0, 5.0}), 23.0);
}

TEST(Vec2Test, NormalizedHandlesZero) {
  EXPECT_EQ(Vec2().normalized(), Vec2());
  const Vec2 u = Vec2(0.0, 5.0).normalized();
  EXPECT_DOUBLE_EQ(u.norm(), 1.0);
  EXPECT_DOUBLE_EQ(u.y, 1.0);
}

TEST(Vec3Test, ArithmeticAndProjection) {
  const Vec3 a{1.0, 2.0, 3.0};
  EXPECT_EQ(a.xy(), Vec2(1.0, 2.0));
  EXPECT_DOUBLE_EQ(Vec3(2.0, 3.0, 6.0).norm(), 7.0);
  EXPECT_EQ(Vec3(Vec2{4.0, 5.0}, 6.0), Vec3(4.0, 5.0, 6.0));
}

TEST(RectTest, ContainsAndClamp) {
  const Rect r = Rect::square(100.0);
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({100.0, 100.0}));
  EXPECT_FALSE(r.contains({-0.1, 50.0}));
  EXPECT_EQ(r.clamp({-5.0, 120.0}), Vec2(0.0, 100.0));
  EXPECT_EQ(r.center(), Vec2(50.0, 50.0));
  EXPECT_DOUBLE_EQ(r.area(), 10000.0);
}

TEST(RectTest, InflatedGrowsAndShrinks) {
  const Rect r = Rect::square(100.0);
  EXPECT_DOUBLE_EQ(r.inflated(10.0).width(), 120.0);
  EXPECT_DOUBLE_EQ(r.inflated(-10.0).width(), 80.0);
  EXPECT_THROW(r.inflated(-60.0), ContractViolation);
}

TEST(RectTest, RejectsInvertedBounds) {
  EXPECT_THROW(Rect({10.0, 0.0}, {0.0, 10.0}), ContractViolation);
}

TEST(Grid2DTest, DimensionsFromAreaAndCellSize) {
  const Grid2D<int> g(Rect::square(100.0), 10.0);
  EXPECT_EQ(g.nx(), 10);
  EXPECT_EQ(g.ny(), 10);
  EXPECT_EQ(g.size(), 100u);
}

TEST(Grid2DTest, PartialEdgeCellsIncluded) {
  const Grid2D<int> g(Rect::square(95.0), 10.0);
  EXPECT_EQ(g.nx(), 10);  // 9 full cells + 1 partial
}

TEST(Grid2DTest, CellOfAndCenterRoundTrip) {
  const Grid2D<int> g(Rect::square(100.0), 10.0);
  const CellIndex c = g.cell_of({37.0, 92.0});
  EXPECT_EQ(c, (CellIndex{3, 9}));
  EXPECT_EQ(g.center_of(c), Vec2(35.0, 95.0));
  // Boundary point maps to the last cell, not out of range.
  EXPECT_EQ(g.cell_of({100.0, 100.0}), (CellIndex{9, 9}));
}

TEST(Grid2DTest, OutOfBoundsThrows) {
  Grid2D<int> g(Rect::square(10.0), 1.0);
  EXPECT_THROW(g.at(10, 0), ContractViolation);
  EXPECT_THROW(g.at(0, -1), ContractViolation);
  EXPECT_THROW(g.cell_of({11.0, 0.0}), ContractViolation);
}

TEST(Grid2DTest, ValueMutationThroughAt) {
  Grid2D<double> g(Rect::square(10.0), 1.0, 1.5);
  g.at(3, 4) = 7.0;
  EXPECT_DOUBLE_EQ(g.at(3, 4), 7.0);
  EXPECT_DOUBLE_EQ(g.value_at({3.5, 4.5}), 7.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 1.5);
}

TEST(Grid2DTest, MapTransformsEveryCell) {
  Grid2D<int> g(Rect::square(4.0), 1.0, 2);
  const Grid2D<double> h = g.map([](int v) { return v * 1.5; });
  EXPECT_TRUE(g.same_geometry(h));
  EXPECT_DOUBLE_EQ(h.at(2, 2), 3.0);
}

TEST(Grid2DTest, SameGeometryDetectsMismatch) {
  const Grid2D<int> a(Rect::square(10.0), 1.0);
  const Grid2D<int> b(Rect::square(10.0), 2.0);
  const Grid2D<int> c(Rect::square(20.0), 1.0);
  EXPECT_FALSE(a.same_geometry(b));
  EXPECT_FALSE(a.same_geometry(c));
  EXPECT_TRUE(a.same_geometry(Grid2D<int>(Rect::square(10.0), 1.0)));
}

TEST(Grid2DTest, ForEachVisitsAllCellsOnce) {
  Grid2D<int> g(Rect::square(6.0), 2.0);
  int count = 0;
  g.for_each([&](CellIndex, int& v) {
    v = ++count;
  });
  EXPECT_EQ(count, 9);
  EXPECT_EQ(g.at(2, 2), 9);
}

TEST(PathTest, LengthOfPolyline) {
  const Path p({{0.0, 0.0}, {3.0, 0.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(p.length(), 7.0);
  EXPECT_DOUBLE_EQ(Path().length(), 0.0);
  EXPECT_DOUBLE_EQ(Path({{1.0, 1.0}}).length(), 0.0);
}

TEST(PathTest, PointAtWalksTheArc) {
  const Path p({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}});
  EXPECT_EQ(p.point_at(0.0), Vec2(0.0, 0.0));
  EXPECT_EQ(p.point_at(5.0), Vec2(5.0, 0.0));
  EXPECT_EQ(p.point_at(15.0), Vec2(10.0, 5.0));
  EXPECT_EQ(p.point_at(100.0), Vec2(10.0, 10.0));  // clamped
}

TEST(PathTest, ResampledPreservesEndpointsAndSpacing) {
  const Path p({{0.0, 0.0}, {10.0, 0.0}});
  const Path r = p.resampled(3.0);
  ASSERT_GE(r.size(), 2u);
  EXPECT_EQ(r.points().front(), Vec2(0.0, 0.0));
  EXPECT_EQ(r.points().back(), Vec2(10.0, 0.0));
  for (std::size_t i = 1; i + 1 < r.size(); ++i)
    EXPECT_NEAR(r.points()[i].dist(r.points()[i - 1]), 3.0, 1e-9);
}

TEST(PathTest, DistanceToSegments) {
  const Path p({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_DOUBLE_EQ(p.distance_to({5.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(p.distance_to({-3.0, 4.0}), 5.0);  // beyond endpoint
  EXPECT_DOUBLE_EQ(Path({{2.0, 2.0}}).distance_to({2.0, 5.0}), 3.0);
}

TEST(PathTest, MeanDistanceBetweenParallelLines) {
  const Path a({{0.0, 0.0}, {100.0, 0.0}});
  const Path b({{0.0, 10.0}, {100.0, 10.0}});
  EXPECT_NEAR(a.mean_distance_to(b, 5.0), 10.0, 1e-9);
  EXPECT_NEAR(a.mean_distance_to(a, 5.0), 0.0, 1e-9);
}

TEST(PathTest, PointSegmentDistanceEdgeCases) {
  EXPECT_DOUBLE_EQ(point_segment_distance({0.0, 1.0}, {0.0, 0.0}, {0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 5.0}, {0.0, 0.0}, {10.0, 0.0}), 5.0);
}

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(StatsTest, PercentileUnsortedInput) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(StatsTest, PercentileSortedEmptyContractAndParity) {
  // The explicit empty-input contract: percentile_sorted yields 0.0 where
  // percentile (sort-copy + delegate) throws. Aggregate-report assembly
  // (lte::TrafficPlane percentile fields) depends on the 0.0 branch.
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_THROW(percentile_sorted({}, 1.5), ContractViolation);
  // Randomized parity: on any sorted sample the two entry points agree
  // bit-for-bit at arbitrary probabilities (one shared implementation).
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> value(-1e6, 1e6);
  std::uniform_real_distribution<double> prob(0.0, 1.0);
  std::uniform_int_distribution<int> size(1, 64);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> xs(static_cast<std::size_t>(size(rng)));
    for (double& x : xs) x = value(rng);
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const double p = prob(rng);
    EXPECT_DOUBLE_EQ(percentile(xs, p), percentile_sorted(sorted, p));
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), sorted.back());
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), sorted.front());
  }
}

TEST(StatsTest, PercentileContractViolations) {
  EXPECT_THROW(percentile({}, 0.5), ContractViolation);
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, 1.5), ContractViolation);
  EXPECT_THROW(percentile(xs, -0.1), ContractViolation);
}

TEST(StatsTest, EmpiricalCdfIsMonotone) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(xs, 11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
}

TEST(NoiseTest, DeterministicInSeed) {
  const ValueNoise a(42, 30.0);
  const ValueNoise b(42, 30.0);
  const ValueNoise c(43, 30.0);
  EXPECT_DOUBLE_EQ(a.sample({12.3, 45.6}), b.sample({12.3, 45.6}));
  EXPECT_NE(a.sample({12.3, 45.6}), c.sample({12.3, 45.6}));
}

TEST(NoiseTest, BoundedRoughlyUnit) {
  const ValueNoise n(7, 20.0);
  for (int i = 0; i < 200; ++i) {
    const double v = n.sample({i * 3.7, i * 1.3});
    EXPECT_GE(v, -1.5);
    EXPECT_LE(v, 1.5);
  }
}

TEST(NoiseTest, SpatiallyContinuous) {
  const ValueNoise n(7, 30.0);
  // Adjacent samples (10 cm apart vs 30 m correlation) stay close.
  const double a = n.sample({100.0, 100.0});
  const double b = n.sample({100.1, 100.0});
  EXPECT_LT(std::abs(a - b), 0.05);
}

TEST(NoiseTest, RejectsBadParameters) {
  EXPECT_THROW(ValueNoise(1, 0.0), ContractViolation);
  EXPECT_THROW(ValueNoise(1, 10.0, 0), ContractViolation);
  EXPECT_THROW(ValueNoise(1, 10.0, 4, 0.0), ContractViolation);
}

/// Property sweep: grid round-trips hold across cell sizes.
class GridRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(GridRoundTrip, CenterOfCellOfIsIdentityOnCenters) {
  const double cell = GetParam();
  const Grid2D<int> g(Rect::square(50.0), cell);
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix < g.nx(); ix += 3) {
      const CellIndex c{ix, iy};
      const Vec2 center = g.center_of(c);
      if (!g.area().contains(center)) continue;  // partial edge cell
      EXPECT_EQ(g.cell_of(center), c) << "cell=" << cell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, GridRoundTrip,
                         ::testing::Values(0.5, 1.0, 2.5, 4.0, 7.0, 10.0));

/// Property sweep: resampling never changes total path endpoints and the
/// resampled length converges to the original.
class PathResample : public ::testing::TestWithParam<double> {};

TEST_P(PathResample, LengthPreservedWithinSpacing) {
  const Path p({{0.0, 0.0}, {20.0, 5.0}, {40.0, 0.0}, {40.0, 30.0}});
  const Path r = p.resampled(GetParam());
  EXPECT_NEAR(r.length(), p.length(), GetParam());
  EXPECT_EQ(r.points().front(), p.points().front());
  EXPECT_EQ(r.points().back(), p.points().back());
}

INSTANTIATE_TEST_SUITE_P(Spacings, PathResample, ::testing::Values(0.5, 1.0, 3.0, 10.0));

}  // namespace
}  // namespace skyran::geo
