// Tests for the localization module: the GPS-ToF pipeline, single- and
// fixed-offset multilateration, the joint shared-offset solver and the
// end-to-end UeLocalizer.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>

#include "geo/contract.hpp"
#include "localization/localizer.hpp"
#include "localization/multilateration.hpp"
#include "localization/pipeline.hpp"
#include "mobility/deployment.hpp"
#include "sim/world.hpp"
#include "uav/trajectory.hpp"

namespace skyran::localization {
namespace {

/// Synthetic tuples: perfect ranges plus a known offset and Gaussian noise.
GpsTofSeries synthetic_tuples(geo::Vec3 ue, double offset_m, double noise_sigma,
                              std::uint64_t seed, int n = 80, double aperture_m = 40.0) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, noise_sigma);
  GpsTofSeries out;
  for (int i = 0; i < n; ++i) {
    // L-shaped flight around the area center at 60 m altitude.
    const double s = aperture_m * i / n;
    const geo::Vec3 p = i < n / 2 ? geo::Vec3{150.0 + s, 150.0, 60.0}
                                  : geo::Vec3{150.0 + aperture_m / 2.0, 150.0 + s / 2.0, 60.0};
    out.push_back({i * 0.02, p, p.dist(ue) + offset_m + noise(rng)});
  }
  return out;
}

TEST(MultilaterationTest, FixedOffsetExactRecovery) {
  const geo::Vec3 ue{80.0, 220.0, 1.5};
  const GpsTofSeries tuples = synthetic_tuples(ue, 40.0, 0.0, 1);
  const MultilaterationResult fit =
      multilaterate_fixed_offset(tuples, geo::Rect::square(300.0), 1.5, 40.0);
  EXPECT_LT(fit.position.dist(ue.xy()), 0.5);
  EXPECT_LT(fit.rms_residual_m, 0.1);
}

TEST(MultilaterationTest, FixedOffsetRobustToNoise) {
  const geo::Vec3 ue{230.0, 60.0, 1.5};
  const GpsTofSeries tuples = synthetic_tuples(ue, 40.0, 2.0, 2);
  const MultilaterationResult fit =
      multilaterate_fixed_offset(tuples, geo::Rect::square(300.0), 1.5, 40.0);
  EXPECT_LT(fit.position.dist(ue.xy()), 15.0);
}

TEST(MultilaterationTest, FixedOffsetRobustToOutliers) {
  const geo::Vec3 ue{100.0, 100.0, 1.5};
  GpsTofSeries tuples = synthetic_tuples(ue, 40.0, 1.0, 3);
  // 15% gross outliers (NLOS bursts): +60 m.
  for (std::size_t i = 0; i < tuples.size(); i += 7) tuples[i].range_m += 60.0;
  const MultilaterationResult fit =
      multilaterate_fixed_offset(tuples, geo::Rect::square(300.0), 1.5, 40.0);
  EXPECT_LT(fit.position.dist(ue.xy()), 15.0);
}

TEST(MultilaterationTest, FreeOffsetSolvableWithWideAperture) {
  // With an aperture comparable to the range, (x, y, b) is identifiable.
  const geo::Vec3 ue{160.0, 170.0, 1.5};
  const GpsTofSeries tuples = synthetic_tuples(ue, 40.0, 0.5, 4, 120, 200.0);
  const MultilaterationResult fit = multilaterate(tuples, geo::Rect::square(300.0), 1.5);
  EXPECT_LT(fit.position.dist(ue.xy()), 10.0);
  EXPECT_NEAR(fit.offset_m, 40.0, 10.0);
}

TEST(MultilaterationTest, TooFewTuplesRejected) {
  GpsTofSeries three(3);
  EXPECT_THROW(multilaterate(three, geo::Rect::square(100.0), 1.5), ContractViolation);
}

TEST(JointTest, SharedOffsetBreaksDegeneracy) {
  // Several UEs in different directions, short aperture each: the shared
  // offset plus the calibration prior pins b, then per-UE fits are accurate.
  const std::vector<geo::Vec3> ues{
      {60.0, 60.0, 1.5}, {240.0, 70.0, 1.5}, {150.0, 260.0, 1.5}, {40.0, 220.0, 1.5}};
  std::vector<GpsTofSeries> tuples;
  std::vector<double> zs;
  for (std::size_t i = 0; i < ues.size(); ++i) {
    tuples.push_back(synthetic_tuples(ues[i], 40.0, 1.5, 10 + i, 80, 30.0));
    zs.push_back(1.5);
  }
  const JointMultilaterationResult fit =
      multilaterate_joint(tuples, geo::Rect::square(300.0), zs);
  EXPECT_NEAR(fit.shared_offset_m, 40.0, 8.0);
  for (std::size_t i = 0; i < ues.size(); ++i)
    EXPECT_LT(fit.per_ue[i].position.dist(ues[i].xy()), 15.0) << "ue " << i;
}

TEST(JointTest, SkipsUesWithoutData) {
  const geo::Vec3 ue{60.0, 60.0, 1.5};
  std::vector<GpsTofSeries> tuples{synthetic_tuples(ue, 40.0, 1.0, 20), GpsTofSeries{}};
  const std::vector<double> zs{1.5, 1.5};
  const JointMultilaterationResult fit =
      multilaterate_joint(tuples, geo::Rect::square(300.0), zs);
  ASSERT_EQ(fit.per_ue.size(), 2u);
  EXPECT_LT(fit.per_ue[0].position.dist(ue.xy()), 15.0);
  EXPECT_EQ(fit.per_ue[1].iterations, 0);  // untouched default
}

TEST(JointTest, Contracts) {
  const std::vector<GpsTofSeries> none;
  const std::vector<double> zs;
  EXPECT_THROW(multilaterate_joint(none, geo::Rect::square(10.0), zs), ContractViolation);
  const std::vector<GpsTofSeries> empty_only{GpsTofSeries{}};
  const std::vector<double> z1{1.5};
  EXPECT_THROW(multilaterate_joint(empty_only, geo::Rect::square(10.0), z1),
               ContractViolation);
  const std::vector<GpsTofSeries> mismatch{GpsTofSeries(5)};
  EXPECT_THROW(multilaterate_joint(mismatch, geo::Rect::square(10.0), zs), ContractViolation);
}

class PipelineFixture : public ::testing::Test {
 protected:
  PipelineFixture() {
    sim::WorldConfig wc;
    wc.terrain_kind = terrain::TerrainKind::kCampus;
    wc.seed = 77;
    world_ = std::make_unique<sim::World>(wc);
    world_->ue_positions() = mobility::deploy_mixed_visibility(world_->terrain(), 4, 78);
  }
  std::unique_ptr<sim::World> world_;
};

TEST_F(PipelineFixture, TuplesTrackTrueRangePlusOffset) {
  RangingConfig rc;
  const geo::Path track =
      uav::random_walk(world_->area().inflated(-10.0), {150.0, 150.0}, 30.0, 9.0, 5);
  const auto samples = uav::fly(uav::FlightPlan::at_altitude(track, 60.0), 1.0 / rc.gps_rate_hz);
  const ChannelLosOracle los(world_->channel());
  uav::GpsSensor gps(6);
  std::mt19937_64 rng(7);
  const geo::Vec3 ue = world_->ue_positions()[0];
  const GpsTofSeries tuples =
      collect_gps_tof(samples, ue, world_->channel(), los, world_->budget(), gps, rc, rng);
  ASSERT_GE(tuples.size(), 20u);
  std::vector<double> errors;
  for (const GpsTofTuple& t : tuples)
    errors.push_back(t.range_m - (t.uav_position.dist(ue) + rc.processing_offset_m));
  std::sort(errors.begin(), errors.end());
  const double med = errors[errors.size() / 2];
  EXPECT_LT(std::abs(med), 8.0);  // small bias (LOS ~0, NLOS up to ~6 m)
}

TEST_F(PipelineFixture, LowSnrReportsDropped) {
  RangingConfig rc;
  rc.min_snr_db = 1e9;  // absurd threshold: everything dropped
  const geo::Path track =
      uav::random_walk(world_->area().inflated(-10.0), {150.0, 150.0}, 20.0, 9.0, 5);
  const auto samples = uav::fly(uav::FlightPlan::at_altitude(track, 60.0), 1.0 / rc.gps_rate_hz);
  const ChannelLosOracle los(world_->channel());
  uav::GpsSensor gps(6);
  std::mt19937_64 rng(7);
  const GpsTofSeries tuples = collect_gps_tof(samples, world_->ue_positions()[0],
                                              world_->channel(), los, world_->budget(), gps,
                                              rc, rng);
  EXPECT_TRUE(tuples.empty());
}

TEST_F(PipelineFixture, EmptyOrSinglePointFlightYieldsEmptySeries) {
  // Regression: `flight.size() - 1` on a std::size_t underflowed an empty
  // flight to ~2^64 intervals. A UAV that spent the whole epoch at the depot
  // (battery swap) legitimately hands the pipeline a zero-length flight.
  RangingConfig rc;
  const ChannelLosOracle los(world_->channel());
  uav::GpsSensor gps(6);
  std::mt19937_64 rng(7);
  const geo::Vec3 ue = world_->ue_positions()[0];
  const std::vector<uav::FlightSample> empty;
  EXPECT_TRUE(
      collect_gps_tof(empty, ue, world_->channel(), los, world_->budget(), gps, rc, rng)
          .empty());
  const std::vector<uav::FlightSample> single{{0.0, {150.0, 150.0, 60.0}, 0.0}};
  EXPECT_TRUE(
      collect_gps_tof(single, ue, world_->channel(), los, world_->budget(), gps, rc, rng)
          .empty());
}

TEST_F(PipelineFixture, LocalizerEndToEndAccuracy) {
  LocalizerConfig lc;
  const UeLocalizer localizer(world_->channel(), world_->budget(), lc);
  const LocalizationRun run =
      localizer.localize({150.0, 150.0}, world_->ue_positions(), 42);
  EXPECT_GT(run.flight_length_m, lc.flight_length_m - 1.0);
  ASSERT_EQ(run.estimates.size(), world_->ue_positions().size());
  std::vector<double> errs;
  for (std::size_t i = 0; i < run.estimates.size(); ++i) {
    if (!run.estimates[i].valid) continue;
    errs.push_back(run.estimates[i].position.dist(world_->ue_positions()[i].xy()));
  }
  ASSERT_GE(errs.size(), 3u);
  std::sort(errs.begin(), errs.end());
  // Median well under the macro-cell 50-100 m state of the art (Sec 6).
  EXPECT_LT(errs[errs.size() / 2], 25.0);
}

TEST_F(PipelineFixture, LocalizerToleratesGpsOutages) {
  LocalizerConfig lc;
  lc.gps_outage_probability = 0.05;  // frequent short outages
  lc.gps_outage_mean_samples = 6.0;
  const UeLocalizer localizer(world_->channel(), world_->budget(), lc);
  const LocalizationRun run =
      localizer.localize({150.0, 150.0}, world_->ue_positions(), 77);
  std::vector<double> errs;
  for (std::size_t i = 0; i < run.estimates.size(); ++i)
    if (run.estimates[i].valid)
      errs.push_back(run.estimates[i].position.dist(world_->ue_positions()[i].xy()));
  ASSERT_GE(errs.size(), 3u);
  std::sort(errs.begin(), errs.end());
  // Fewer tuples, same ballpark accuracy: outages degrade gracefully.
  EXPECT_LT(errs[errs.size() / 2], 40.0);
}

TEST_F(PipelineFixture, LocalizerDeterministicInSeed) {
  LocalizerConfig lc;
  lc.flight_length_m = 20.0;
  const UeLocalizer localizer(world_->channel(), world_->budget(), lc);
  const LocalizationRun a = localizer.localize({150.0, 150.0}, world_->ue_positions(), 9);
  const LocalizationRun b = localizer.localize({150.0, 150.0}, world_->ue_positions(), 9);
  for (std::size_t i = 0; i < a.estimates.size(); ++i)
    EXPECT_EQ(a.estimates[i].position, b.estimates[i].position);
}

/// Property: localization error decreases (weakly) as tuple noise shrinks.
class NoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(NoiseSweep, FixedOffsetErrorScalesWithNoise) {
  const geo::Vec3 ue{90.0, 210.0, 1.5};
  double total = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    const GpsTofSeries tuples =
        synthetic_tuples(ue, 40.0, GetParam(), 100 + trial, 100, 40.0);
    const MultilaterationResult fit =
        multilaterate_fixed_offset(tuples, geo::Rect::square(300.0), 1.5, 40.0);
    total += fit.position.dist(ue.xy());
  }
  // Loose linear-ish bound: ~8 m of position error per meter of range noise
  // at this range/aperture ratio, plus a small floor.
  EXPECT_LT(total / 5.0, 3.0 + 9.0 * GetParam());
}

INSTANTIATE_TEST_SUITE_P(Noises, NoiseSweep, ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

}  // namespace
}  // namespace skyran::localization
