// Verification harness for the per-TTI traffic plane (lte::TrafficPlane):
// conservation ledgers, the serial == 8-worker bit-identity contract over
// 10k TTIs (TSan target), golden replay, the HARQ state machine (combining,
// max-retx drops, process-id round trips, SNR-sag windows from
// sim::FaultInjector), the adaptive MBSFN split, and the traffic models.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "lte/amc.hpp"
#include "lte/traffic_plane.hpp"
#include "sim/faults.hpp"

namespace skyran::lte {
namespace {

using core::ScopedWorkers;

/// Pinned end state of the GoldenReplayHash scenario (seed 2026, mixed
/// 64-UE population with MBSFN, 500 TTIs). Regenerate by running the test
/// and copying the reported actual value after any intentional change to
/// the plane's arithmetic.
constexpr std::uint64_t kGoldenStateHash = 8861055878732182726ULL;

/// A heterogeneous 64-UE population exercising every traffic model, both
/// policies' hot paths, HARQ and (optionally) the MBSFN split.
TrafficPlane make_mixed_plane(TrafficPlaneConfig cfg, bool mbsfn = false) {
  if (mbsfn) {
    cfg.adaptive_mbsfn = true;
    cfg.multicast_rate_bps = 2e6;
  }
  TrafficPlane plane(cfg);
  const TrafficModel models[] = {TrafficModel::kFullBuffer, TrafficModel::kCbr,
                                 TrafficModel::kBurstyOnOff, TrafficModel::kVideo};
  for (std::uint32_t i = 0; i < 64; ++i) {
    TrafficSpec spec;
    spec.model = models[i % 4];
    spec.rate_bps = 4e5 + 1e5 * static_cast<double>(i % 5);
    spec.multicast_subscriber = mbsfn && i % 8 == 0;
    plane.add_ue(61 + i, -5.0 + static_cast<double>(i % 36), spec);
  }
  return plane;
}

/// Per-UE conservation ledger for queue-fed models: every offered bit is
/// served, dropped, queued, or in flight inside a HARQ process.
void expect_ledger_holds(const TrafficPlane& plane) {
  for (std::size_t i = 0; i < plane.ue_count(); ++i) {
    const double offered = plane.offered_bits(i);
    if (offered == 0.0) continue;  // full-buffer UEs: no arrivals tracked
    const double accounted = plane.served_bits(i) + plane.dropped_bits(i) +
                             plane.backlog_bits(i) + plane.in_flight_bits(i);
    EXPECT_NEAR(accounted, offered, 1e-6 * std::max(1.0, offered)) << "UE " << i;
  }
}

// ------------------------------------------------------------- ledgers ----

TEST(TrafficPlaneLedger, ConservationAcrossModelsAndPolicies) {
  for (const SchedulerPolicy policy :
       {SchedulerPolicy::kRoundRobin, SchedulerPolicy::kProportionalFair}) {
    TrafficPlaneConfig cfg;
    cfg.policy = policy;
    cfg.seed = 31;
    TrafficPlane plane = make_mixed_plane(cfg);
    plane.run_ttis(2000);
    expect_ledger_holds(plane);
    const TrafficPlaneReport r = plane.report();
    EXPECT_GT(r.served_bits, 0.0);
    EXPECT_EQ(r.ttis, 2000);
    EXPECT_EQ(r.ues, 64u);
  }
}

TEST(TrafficPlaneLedger, LedgerHoldsUnderHeavyHarqLoss) {
  TrafficPlaneConfig cfg;
  cfg.seed = 33;
  TrafficPlane plane = make_mixed_plane(cfg);
  plane.set_snr_offset_db(-12.0);  // deep in the retransmission regime
  plane.run_ttis(2000);
  expect_ledger_holds(plane);
  EXPECT_GT(plane.report().harq_retx, 0u);
}

TEST(TrafficPlaneLedger, FullBufferCapacityMatchesAmc) {
  TrafficPlaneConfig cfg;
  cfg.seed = 35;
  cfg.target_bler = 0.0;  // no HARQ losses: pure capacity
  TrafficPlane plane(cfg);
  plane.add_ue(61, 30.0, {TrafficModel::kFullBuffer});
  plane.run_ttis(100);
  // One saturated UE owns all 50 PRBs; its rate must equal the AMC-layer
  // full-bandwidth throughput at the same SNR (~37.5 Mbit/s at CQI 15).
  const double expected = throughput_bps(30.0, cfg.carrier);
  EXPECT_NEAR(plane.report().aggregate_throughput_bps, expected, 1e-9 * expected);
}

// --------------------------------------------------------- determinism ----

TEST(TrafficPlaneDeterminism, SerialEqualsEightWorkersOver10kTtis) {
  TrafficPlaneConfig cfg;
  cfg.seed = 41;
  std::uint64_t serial_hash = 0;
  {
    const ScopedWorkers workers(1);
    TrafficPlane plane = make_mixed_plane(cfg, /*mbsfn=*/true);
    plane.run_ttis(10000);
    serial_hash = plane.state_hash();
  }
  std::uint64_t parallel_hash = 0;
  {
    const ScopedWorkers workers(8);
    TrafficPlane plane = make_mixed_plane(cfg, /*mbsfn=*/true);
    plane.run_ttis(10000);
    parallel_hash = plane.state_hash();
  }
  EXPECT_EQ(serial_hash, parallel_hash);
}

TEST(TrafficPlaneDeterminism, SameSeedReplaysIdentically) {
  TrafficPlaneConfig cfg;
  cfg.seed = 43;
  TrafficPlane a = make_mixed_plane(cfg);
  TrafficPlane b = make_mixed_plane(cfg);
  a.run_ttis(777);
  b.run_ttis(777);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  cfg.seed = 44;
  TrafficPlane c = make_mixed_plane(cfg);
  c.run_ttis(777);
  EXPECT_NE(a.state_hash(), c.state_hash());
}

TEST(TrafficPlaneDeterminism, RunIsChunkingInvariant) {
  // 1x1000 TTIs == 10x100 TTIs == 1000x1: run_ttis windows are not a
  // statefulness boundary.
  TrafficPlaneConfig cfg;
  cfg.seed = 45;
  TrafficPlane a = make_mixed_plane(cfg);
  TrafficPlane b = make_mixed_plane(cfg);
  TrafficPlane c = make_mixed_plane(cfg);
  a.run_ttis(1000);
  for (int i = 0; i < 10; ++i) b.run_ttis(100);
  for (int i = 0; i < 1000; ++i) c.run_ttis(1);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  EXPECT_EQ(a.state_hash(), c.state_hash());
}

// The golden hash pins the exact end-to-end arithmetic (arrival draws, PF
// ordering, HARQ bookkeeping, MBSFN pattern). target_bler stays at its
// default: the BLER draw path is part of what the replay protects.
TEST(TrafficPlaneDeterminism, GoldenReplayHash) {
  TrafficPlaneConfig cfg;
  cfg.seed = 2026;
  TrafficPlane plane = make_mixed_plane(cfg, /*mbsfn=*/true);
  plane.run_ttis(500);
  EXPECT_EQ(plane.state_hash(), kGoldenStateHash);
}

// ---------------------------------------------------------------- HARQ ----

/// SNR offset that pins the first-transmission decode margin to exactly
/// `margin_db` for a UE whose reported SNR is `snr_db`.
double offset_for_margin(double snr_db, double margin_db) {
  const int cqi = snr_to_cqi(snr_db);
  const double threshold = cqi_table()[cqi - 1].snr_threshold_db;
  return threshold - snr_db + margin_db;
}

TEST(TrafficPlaneHarq, FirstTxFailureActivatesProcess) {
  TrafficPlaneConfig cfg;
  cfg.seed = 51;
  TrafficPlane plane(cfg);
  plane.add_ue(61, 20.0, {TrafficModel::kFullBuffer});
  plane.set_snr_offset_db(-60.0);  // every transmission fails
  plane.run_ttis(1);
  EXPECT_TRUE(plane.harq_active(0, 0));
  EXPECT_EQ(plane.harq_retx_count(0, 0), 0);
  EXPECT_GT(plane.in_flight_bits(0), 0.0);
  EXPECT_EQ(plane.served_bits(0), 0.0);
}

TEST(TrafficPlaneHarq, ProcessIdRoundTripsAcrossTtis) {
  TrafficPlaneConfig cfg;
  cfg.seed = 53;
  TrafficPlane plane(cfg);
  plane.add_ue(61, 20.0, {TrafficModel::kFullBuffer});
  plane.set_snr_offset_db(-60.0);
  // TTIs 0..7 open all 8 processes (synchronous HARQ: process = tti % 8).
  plane.run_ttis(8);
  for (int p = 0; p < 8; ++p) {
    EXPECT_TRUE(plane.harq_active(0, p)) << "process " << p;
    EXPECT_EQ(plane.harq_retx_count(0, p), 0) << "process " << p;
  }
  // TTI 8 is process 0's turn again: exactly one retransmission flies.
  plane.run_ttis(1);
  EXPECT_EQ(plane.harq_retx_count(0, 0), 1);
  for (int p = 1; p < 8; ++p) EXPECT_EQ(plane.harq_retx_count(0, p), 0);
}

TEST(TrafficPlaneHarq, CombiningGainTurnsFailureIntoSuccess) {
  TrafficPlaneConfig cfg;
  cfg.seed = 55;
  cfg.harq_combining_gain_db = 50.0;  // one retransmission decodes for sure
  TrafficPlane plane(cfg);
  plane.add_ue(61, 20.0, {TrafficModel::kFullBuffer});
  // Margin -5 dB: p_fail = min(1, 0.1 * 2^5) = 1, the first copy always
  // fails. The retransmission sees -5 + 50 dB and always decodes.
  plane.set_snr_offset_db(offset_for_margin(20.0, -5.0));
  plane.run_ttis(8);
  const double in_flight = plane.in_flight_bits(0);
  EXPECT_GT(in_flight, 0.0);
  EXPECT_EQ(plane.served_bits(0), 0.0);
  plane.run_ttis(1);  // process 0 retransmits and succeeds
  EXPECT_FALSE(plane.harq_active(0, 0));
  EXPECT_GT(plane.served_bits(0), 0.0);
  const TrafficPlaneReport r = plane.report();
  EXPECT_EQ(r.harq_retx, 1u);
  EXPECT_EQ(r.harq_drops, 0u);
}

TEST(TrafficPlaneHarq, MaxRetxDropAccounting) {
  TrafficPlaneConfig cfg;
  cfg.seed = 57;
  cfg.harq_max_retx = 4;
  TrafficPlane plane(cfg);
  plane.add_ue(61, 20.0, {TrafficModel::kFullBuffer});
  plane.set_snr_offset_db(-60.0);  // combining never rescues anything
  // Process 0: first TX at t=0, retx at t=8,16,24,32 — dropped at the 4th
  // retransmission. By t=40 every process has dropped exactly one block.
  plane.run_ttis(33);
  TrafficPlaneReport r = plane.report();
  EXPECT_EQ(r.harq_drops, 1u);
  EXPECT_GT(plane.dropped_bits(0), 0.0);
  plane.run_ttis(7);
  r = plane.report();
  EXPECT_EQ(r.harq_drops, 8u);
  EXPECT_EQ(r.harq_residual_bler, static_cast<double>(r.harq_drops) /
                                      static_cast<double>(r.harq_first_tx));
  EXPECT_EQ(plane.served_bits(0), 0.0);
}

TEST(TrafficPlaneHarq, RetxDeferredWhenPrbsExhausted) {
  // 60 backlogged UEs on 50 PRBs with everything failing: pending
  // retransmissions outnumber the carrier, so some defer to the process's
  // next turn without burning a retx attempt — none may be silently lost.
  TrafficPlaneConfig cfg;
  cfg.seed = 59;
  TrafficPlane plane(cfg);
  for (std::uint32_t i = 0; i < 60; ++i)
    plane.add_ue(61 + i, 20.0, {TrafficModel::kCbr, 5e6});
  plane.set_snr_offset_db(-60.0);
  plane.run_ttis(200);
  expect_ledger_holds(plane);
  const TrafficPlaneReport r = plane.report();
  EXPECT_GT(r.harq_retx, 0u);
  EXPECT_EQ(r.served_bits, 0.0);
}

TEST(TrafficPlaneHarq, FaultInjectorSnrSagWindowDrivesRetx) {
  sim::FaultPlan plan;
  plan.add({sim::FaultKind::kSrsSnrSag, 0.0, 100.0, 40.0, 0.0});
  const sim::FaultInjector injector(plan);
  ASSERT_TRUE(injector.active());

  TrafficPlaneConfig cfg;
  cfg.seed = 61;
  cfg.target_bler = 1e-4;  // clean channel: effectively loss-free

  TrafficPlane clean(cfg);
  clean.add_ue(61, 30.0, {TrafficModel::kFullBuffer});
  clean.run_ttis(200);
  EXPECT_EQ(clean.report().harq_retx, 0u);
  EXPECT_EQ(clean.report().harq_drops, 0u);

  TrafficPlane sagged(cfg);
  sagged.add_ue(61, 30.0, {TrafficModel::kFullBuffer});
  // Inside the window the true channel sits 40 dB below the CQI reports.
  sagged.set_snr_offset_db(-injector.srs_snr_sag_db(50.0));
  sagged.run_ttis(200);
  EXPECT_GT(sagged.report().harq_retx, 0u);
  EXPECT_GT(sagged.report().harq_drops, 0u);
  EXPECT_LT(sagged.report().served_bits, clean.report().served_bits);

  // Outside the window the injector passes through: identical to clean.
  TrafficPlane after(cfg);
  after.add_ue(61, 30.0, {TrafficModel::kFullBuffer});
  after.set_snr_offset_db(-injector.srs_snr_sag_db(150.0));
  after.run_ttis(200);
  EXPECT_EQ(after.state_hash(), clean.state_hash());
}

// --------------------------------------------------------------- MBSFN ----

TrafficPlane make_mbsfn_plane(double multicast_rate_bps, int subscribers,
                              std::uint64_t seed = 71) {
  TrafficPlaneConfig cfg;
  cfg.seed = seed;
  cfg.adaptive_mbsfn = true;
  cfg.multicast_rate_bps = multicast_rate_bps;
  TrafficPlane plane(cfg);
  for (int i = 0; i < 8; ++i) {
    TrafficSpec spec;
    spec.model = TrafficModel::kCbr;
    spec.rate_bps = 1e6;
    spec.multicast_subscriber = i < subscribers;
    plane.add_ue(static_cast<std::uint32_t>(61 + i), 10.0, spec);
  }
  return plane;
}

TEST(TrafficPlaneMbsfn, SplitGrowsWithBroadcastLoad) {
  TrafficPlane light = make_mbsfn_plane(1e6, 4);
  TrafficPlane heavy = make_mbsfn_plane(6e6, 4);
  light.run_ttis(500);
  heavy.run_ttis(500);
  EXPECT_GT(light.report().mbsfn_subframes, 0);
  EXPECT_GT(heavy.report().mbsfn_subframes, light.report().mbsfn_subframes);
}

TEST(TrafficPlaneMbsfn, CappedAtSixSubframesPerFrame) {
  TrafficPlane plane = make_mbsfn_plane(5e7, 4);  // far beyond capacity
  plane.run_ttis(500);
  const TrafficPlaneReport r = plane.report();
  EXPECT_EQ(r.mbsfn_subframes, 6 * 50);  // every frame maxed out
  // Unicast still owns the 4 protected subframes per frame.
  EXPECT_GT(r.scheduled_ue_ttis, 0u);
  EXPECT_GT(r.served_bits, 0.0);
}

TEST(TrafficPlaneMbsfn, DrainsWhenCapacityExceedsLoad) {
  TrafficPlane plane = make_mbsfn_plane(1e6, 4);
  plane.run_ttis(1000);
  const TrafficPlaneReport r = plane.report();
  // Offered broadcast ~ rate * time; nearly all of it must have been served,
  // with at most ~one frame of arrivals still queued.
  const double offered = 1e6 * 1.0;
  EXPECT_NEAR(r.multicast_served_bits + r.multicast_backlog_bits, offered,
              1e-6 * offered);
  EXPECT_LT(r.multicast_backlog_bits, 1e6 * 0.02);
}

TEST(TrafficPlaneMbsfn, NoSubscribersMeansNoMulticastSubframes) {
  TrafficPlane plane = make_mbsfn_plane(5e6, 0);
  plane.run_ttis(300);
  const TrafficPlaneReport r = plane.report();
  EXPECT_EQ(r.mbsfn_subframes, 0);
  EXPECT_EQ(r.multicast_served_bits, 0.0);
  EXPECT_GT(r.multicast_backlog_bits, 0.0);  // load accrues, nothing can carry it
}

TEST(TrafficPlaneMbsfn, CapacityFollowsWorstSubscriber) {
  // Same load, but one subscriber at cell edge: the broadcast MCS drops to
  // what the worst subscriber decodes, so more subframes are needed.
  TrafficPlane good = make_mbsfn_plane(2e6, 4);
  TrafficPlaneConfig cfg;
  cfg.seed = 71;
  cfg.adaptive_mbsfn = true;
  cfg.multicast_rate_bps = 2e6;
  TrafficPlane edge(cfg);
  for (int i = 0; i < 8; ++i) {
    TrafficSpec spec;
    spec.model = TrafficModel::kCbr;
    spec.rate_bps = 1e6;
    spec.multicast_subscriber = i < 4;
    edge.add_ue(static_cast<std::uint32_t>(61 + i), i == 0 ? -4.0 : 10.0, spec);
  }
  good.run_ttis(500);
  edge.run_ttis(500);
  EXPECT_GT(edge.report().mbsfn_subframes, good.report().mbsfn_subframes);
}

// ------------------------------------------------------- traffic models ----

TEST(TrafficPlaneModels, CbrArrivalsAreExact) {
  TrafficPlaneConfig cfg;
  cfg.seed = 81;
  TrafficPlane plane(cfg);
  plane.add_ue(61, 15.0, {TrafficModel::kCbr, 3e6});
  plane.run_ttis(400);
  EXPECT_DOUBLE_EQ(plane.offered_bits(0), 3e6 * 1e-3 * 400);
}

TEST(TrafficPlaneModels, BurstyDutyCycleMatchesConfig) {
  TrafficPlaneConfig cfg;
  cfg.seed = 83;
  TrafficPlane plane(cfg);
  TrafficSpec spec;
  spec.model = TrafficModel::kBurstyOnOff;
  spec.rate_bps = 4e6;
  spec.mean_on_ttis = 100.0;
  spec.mean_off_ttis = 300.0;
  for (std::uint32_t i = 0; i < 32; ++i) plane.add_ue(61 + i, 15.0, spec);
  plane.run_ttis(20000);
  // Duty cycle 25%: long-run offered rate ~ 1 Mbit/s per UE (population
  // average tightens the bound).
  double offered = 0.0;
  for (std::size_t i = 0; i < plane.ue_count(); ++i) offered += plane.offered_bits(i);
  const double mean_rate = offered / 32.0 / 20.0;  // bits / UE / s
  EXPECT_NEAR(mean_rate, 1e6, 0.15e6);
}

TEST(TrafficPlaneModels, VideoFramesArrivePeriodically) {
  TrafficPlaneConfig cfg;
  cfg.seed = 85;
  TrafficPlane plane(cfg);
  TrafficSpec spec;
  spec.model = TrafficModel::kVideo;
  spec.rate_bps = 2e6;
  spec.frame_interval_ttis = 33;
  plane.add_ue(61, 15.0, spec);  // UE 0: frame phase 0
  double last_offered = 0.0;
  int arrival_ttis = 0;
  for (int t = 0; t < 132; ++t) {
    plane.run_ttis(1);
    if (plane.offered_bits(0) > last_offered) ++arrival_ttis;
    last_offered = plane.offered_bits(0);
  }
  EXPECT_EQ(arrival_ttis, 4);  // t = 0, 33, 66, 99
}

TEST(TrafficPlaneModels, VideoLongRunRateMatchesMean) {
  TrafficPlaneConfig cfg;
  cfg.seed = 87;
  TrafficPlane plane(cfg);
  TrafficSpec spec;
  spec.model = TrafficModel::kVideo;
  spec.rate_bps = 2e6;
  for (std::uint32_t i = 0; i < 16; ++i) plane.add_ue(61 + i, 15.0, spec);
  plane.run_ttis(10000);
  double offered = 0.0;
  for (std::size_t i = 0; i < plane.ue_count(); ++i) offered += plane.offered_bits(i);
  const double mean_rate = offered / 16.0 / 10.0;
  EXPECT_NEAR(mean_rate, 2e6, 0.2e6);
}

// -------------------------------------------------------------- reports ----

TEST(TrafficPlaneReportTest, PercentilesOrderedAndJainBounded) {
  TrafficPlaneConfig cfg;
  cfg.seed = 91;
  TrafficPlane plane = make_mixed_plane(cfg);
  plane.run_ttis(1000);
  const TrafficPlaneReport r = plane.report();
  EXPECT_LE(r.p50_throughput_bps, r.p90_throughput_bps);
  EXPECT_LE(r.p90_throughput_bps, r.p99_throughput_bps);
  EXPECT_LE(r.p50_delay_ms, r.p90_delay_ms);
  EXPECT_LE(r.p90_delay_ms, r.p99_delay_ms);
  EXPECT_GT(r.fairness_jain, 0.0);
  EXPECT_LE(r.fairness_jain, 1.0 + 1e-12);
  EXPECT_GT(r.aggregate_throughput_bps, 0.0);
}

TEST(TrafficPlaneReportTest, EmptyPlaneIsWellFormed) {
  TrafficPlane plane(TrafficPlaneConfig{});
  plane.run_ttis(50);
  const TrafficPlaneReport r = plane.report();
  EXPECT_EQ(r.ues, 0u);
  EXPECT_EQ(r.ttis, 50);
  EXPECT_EQ(r.served_bits, 0.0);
  EXPECT_EQ(r.scheduled_ue_ttis, 0u);
  EXPECT_DOUBLE_EQ(r.fairness_jain, 1.0);
}

TEST(TrafficPlaneReportTest, ContractsRejectBadInputs) {
  TrafficPlaneConfig bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(TrafficPlane{bad}, ContractViolation);
  bad = TrafficPlaneConfig{};
  bad.harq_processes = 0;
  EXPECT_THROW(TrafficPlane{bad}, ContractViolation);
  bad = TrafficPlaneConfig{};
  bad.max_mbsfn_per_frame = 7;
  EXPECT_THROW(TrafficPlane{bad}, ContractViolation);

  TrafficPlane plane(TrafficPlaneConfig{});
  EXPECT_THROW(plane.add_ue(61, std::nan(""), {}), ContractViolation);
  TrafficSpec spec;
  spec.rate_bps = -1.0;
  EXPECT_THROW(plane.add_ue(61, 10.0, spec), ContractViolation);
  EXPECT_THROW(plane.set_snr(5, 10.0), ContractViolation);
  EXPECT_THROW(plane.run_ttis(-1), ContractViolation);
}

}  // namespace
}  // namespace skyran::lte
