// Tests for UE deployment generators and mobility models.
#include <gtest/gtest.h>

#include <algorithm>

#include "geo/contract.hpp"
#include "mobility/deployment.hpp"
#include "mobility/model.hpp"
#include "terrain/synth.hpp"

namespace skyran::mobility {
namespace {

TEST(DeploymentTest, UniformStaysWalkableAndInBounds) {
  const terrain::Terrain t = terrain::make_nyc(3, 2.0);
  const auto ues = deploy_uniform(t, 20, 4);
  ASSERT_EQ(ues.size(), 20u);
  for (const geo::Vec3& u : ues) {
    EXPECT_TRUE(t.area().inflated(-9.9).contains(u.xy()));
    EXPECT_NE(t.clutter_at(u.xy()), terrain::Clutter::kBuilding);
    EXPECT_NEAR(u.z, t.ground_height(u.xy()) + 1.5, 1e-9);
  }
}

TEST(DeploymentTest, DeterministicInSeed) {
  const terrain::Terrain t = terrain::make_campus(3, 2.0);
  const auto a = deploy_uniform(t, 5, 7);
  const auto b = deploy_uniform(t, 5, 7);
  const auto c = deploy_uniform(t, 5, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DeploymentTest, ClusteredFormsPockets) {
  const terrain::Terrain t = terrain::make_flat(300.0);
  const auto ues = deploy_clustered(t, 12, 2, 20.0, 5);
  ASSERT_EQ(ues.size(), 12u);
  // Mean nearest-neighbor distance is much smaller than for uniform spread.
  double cluster_nn = 0.0;
  for (const geo::Vec3& u : ues) {
    double best = 1e9;
    for (const geo::Vec3& v : ues)
      if (&u != &v) best = std::min(best, u.xy().dist(v.xy()));
    cluster_nn += best;
  }
  cluster_nn /= static_cast<double>(ues.size());
  EXPECT_LT(cluster_nn, 25.0);
}

TEST(DeploymentTest, MixedVisibilityHitsAllFlavors) {
  const terrain::Terrain t = terrain::make_campus(3, 2.0);
  const auto ues = deploy_mixed_visibility(t, 6, 9);
  ASSERT_EQ(ues.size(), 6u);
  // Flavor 1 (indices 1, 4) near foliage.
  bool any_foliage = false;
  for (const std::size_t i : {1u, 4u}) {
    const auto c = t.clutter_at(ues[i].xy());
    any_foliage = any_foliage || c == terrain::Clutter::kFoliage;
  }
  EXPECT_TRUE(any_foliage);
  for (const geo::Vec3& u : ues)
    EXPECT_NE(t.clutter_at(u.xy()), terrain::Clutter::kBuilding);
}

TEST(DeploymentTest, Contracts) {
  const terrain::Terrain t = terrain::make_flat(100.0);
  EXPECT_THROW(deploy_uniform(t, 0, 1), ContractViolation);
  EXPECT_THROW(deploy_clustered(t, 5, 0, 10.0, 1), ContractViolation);
  EXPECT_THROW(deploy_clustered(t, 5, 2, 0.0, 1), ContractViolation);
}

TEST(StaticMobilityTest, NeverMoves) {
  StaticMobility m({{1.0, 2.0, 1.5}, {3.0, 4.0, 1.5}});
  const auto before = m.positions();
  m.advance(1000.0);
  EXPECT_EQ(m.positions(), before);
  EXPECT_EQ(m.ue_count(), 2u);
}

TEST(RouteMobilityTest, WalksAtConfiguredSpeed) {
  const terrain::Terrain t = terrain::make_flat(200.0);
  std::vector<geo::Vec3> initial{{10.0, 10.0, 1.5}, {50.0, 50.0, 1.5}};
  RouteMobility::Route route;
  route.ue_index = 0;
  route.waypoints = geo::Path({{10.0, 10.0}, {110.0, 10.0}});
  route.speed_mps = 2.0;
  RouteMobility m(t, initial, {route});
  m.advance(10.0);  // 20 m along the route
  EXPECT_NEAR(m.positions()[0].x, 30.0, 1e-9);
  EXPECT_NEAR(m.positions()[0].y, 10.0, 1e-9);
  // UE 1 has no route: stays.
  EXPECT_EQ(m.positions()[1], initial[1]);
  EXPECT_NEAR(m.mobile_fraction(), 0.5, 1e-9);
}

TEST(RouteMobilityTest, PingPongsAtRouteEnd) {
  const terrain::Terrain t = terrain::make_flat(200.0);
  RouteMobility::Route route;
  route.ue_index = 0;
  route.waypoints = geo::Path({{0.0, 10.0}, {100.0, 10.0}});
  route.speed_mps = 1.0;
  RouteMobility m(t, {{0.0, 10.0, 1.5}}, {route});
  m.advance(150.0);  // 100 out + 50 back
  EXPECT_NEAR(m.positions()[0].x, 50.0, 1e-9);
  m.advance(100.0);  // 50 back to start + 50 out again
  EXPECT_NEAR(m.positions()[0].x, 50.0, 1e-9);
}

TEST(RouteMobilityTest, Contracts) {
  const terrain::Terrain t = terrain::make_flat(100.0);
  RouteMobility::Route bad;
  bad.ue_index = 5;  // out of range
  bad.waypoints = geo::Path({{0.0, 0.0}, {10.0, 0.0}});
  EXPECT_THROW(RouteMobility(t, {{0.0, 0.0, 1.5}}, {bad}), ContractViolation);
}

TEST(EpochRelocateTest, MovesConfiguredFraction) {
  const terrain::Terrain t = terrain::make_flat(300.0);
  const auto initial = deploy_uniform(t, 8, 3);
  EpochRelocateMobility m(t, initial, 0.5, 4);
  const auto moved = m.relocate_epoch();
  EXPECT_EQ(moved.size(), 4u);
  int changed = 0;
  for (std::size_t i = 0; i < 8; ++i)
    if (!(m.positions()[i] == initial[i])) ++changed;
  EXPECT_EQ(changed, 4);
}

TEST(EpochRelocateTest, ZeroFractionMovesNobody) {
  const terrain::Terrain t = terrain::make_flat(300.0);
  const auto initial = deploy_uniform(t, 5, 3);
  EpochRelocateMobility m(t, initial, 0.0, 4);
  EXPECT_TRUE(m.relocate_epoch().empty());
  EXPECT_EQ(m.positions(), initial);
}

TEST(EpochRelocateTest, FullFractionMovesEverybody) {
  const terrain::Terrain t = terrain::make_flat(300.0);
  const auto initial = deploy_uniform(t, 5, 3);
  EpochRelocateMobility m(t, initial, 1.0, 4);
  EXPECT_EQ(m.relocate_epoch().size(), 5u);
}

TEST(MakeRandomRoutesTest, BuildsRequestedRoutes) {
  const terrain::Terrain t = terrain::make_flat(300.0);
  const auto initial = deploy_uniform(t, 6, 3);
  const auto routes = make_random_routes(t, initial, 3, 120.0, 5);
  ASSERT_EQ(routes.size(), 3u);
  for (std::size_t i = 0; i < routes.size(); ++i) {
    EXPECT_EQ(routes[i].ue_index, i);
    EXPECT_NEAR(routes[i].waypoints.length(), 120.0, 1.0);
  }
  EXPECT_THROW(make_random_routes(t, initial, 10, 120.0, 5), ContractViolation);
}

/// Fraction sweep property for the relocation model.
class RelocateFraction : public ::testing::TestWithParam<double> {};

TEST_P(RelocateFraction, MovesRoundedShare) {
  const terrain::Terrain t = terrain::make_flat(300.0);
  const auto initial = deploy_uniform(t, 10, 3);
  EpochRelocateMobility m(t, initial, GetParam(), 4);
  EXPECT_EQ(m.relocate_epoch().size(),
            static_cast<std::size_t>(std::lround(GetParam() * 10.0)));
}

INSTANTIATE_TEST_SUITE_P(Fractions, RelocateFraction,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace skyran::mobility
