// Tests for the UAV substrate: battery model, GPS sensor, waypoint flight
// simulation and trajectory builders.
#include <gtest/gtest.h>

#include <cmath>

#include "geo/contract.hpp"
#include "uav/battery.hpp"
#include "uav/flight.hpp"
#include "uav/gps.hpp"
#include "uav/trajectory.hpp"

namespace skyran::uav {
namespace {

TEST(BatteryTest, HoverDrain) {
  Battery b({.capacity_wh = 600.0, .hover_power_w = 1200.0, .forward_power_w_per_mps = 40.0});
  b.drain(900.0, 0.0);  // 15 minutes of hover at 1200 W = 300 Wh
  EXPECT_NEAR(b.remaining_wh(), 300.0, 1e-9);
  EXPECT_FALSE(b.depleted());
  b.drain(3600.0, 0.0);  // drains past empty, clamped at zero
  EXPECT_DOUBLE_EQ(b.remaining_wh(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(BatteryTest, ForwardFlightCostsMore) {
  Battery hover;
  Battery cruise;
  hover.drain(600.0, 0.0);
  cruise.drain(600.0, kDefaultCruiseMps);
  EXPECT_LT(cruise.remaining_wh(), hover.remaining_wh());
  EXPECT_GT(cruise.power_w(kDefaultCruiseMps), cruise.power_w(0.0));
}

TEST(BatteryTest, EnduranceMatchesCapacity) {
  Battery b({.capacity_wh = 100.0, .hover_power_w = 200.0, .forward_power_w_per_mps = 0.0});
  EXPECT_NEAR(b.hover_endurance_s(), 1800.0, 1e-6);
  b.drain(900.0, 0.0);
  EXPECT_NEAR(b.hover_endurance_s(), 900.0, 1e-6);
  EXPECT_NEAR(b.remaining_fraction(), 0.5, 1e-9);
}

TEST(BatteryTest, NeverGoesNegative) {
  Battery b({.capacity_wh = 1.0, .hover_power_w = 3600.0, .forward_power_w_per_mps = 0.0});
  b.drain(7200.0, 0.0);
  EXPECT_DOUBLE_EQ(b.remaining_wh(), 0.0);
}

TEST(BatteryTest, Contracts) {
  EXPECT_THROW(Battery({.capacity_wh = 0.0}), ContractViolation);
  Battery b;
  EXPECT_THROW(b.drain(-1.0, 0.0), ContractViolation);
  EXPECT_THROW(b.power_w(-1.0), ContractViolation);
}

TEST(GpsTest, NoiseStatistics) {
  GpsSensor gps(7, 2.0, 3.0);
  const geo::Vec3 truth{100.0, 200.0, 60.0};
  double sum_h2 = 0.0;
  double sum_v2 = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const GpsFix fix = gps.sample(truth, i * 0.02);
    sum_h2 += (fix.position.x - truth.x) * (fix.position.x - truth.x);
    sum_v2 += (fix.position.z - truth.z) * (fix.position.z - truth.z);
    EXPECT_DOUBLE_EQ(fix.time_s, i * 0.02);
  }
  EXPECT_NEAR(std::sqrt(sum_h2 / n), 2.0, 0.2);
  EXPECT_NEAR(std::sqrt(sum_v2 / n), 3.0, 0.3);
}

TEST(GpsTest, OutageModelDropsFixes) {
  GpsSensor gps(5);
  gps.set_outage_model(0.1, 8.0);
  int invalid = 0;
  for (int i = 0; i < 2000; ++i) {
    const GpsFix fix = gps.sample({1.0 * i, 0.0, 60.0}, i * 0.02);
    if (!fix.valid) ++invalid;
  }
  // ~10% entry chance x mean 8 samples: a large share of fixes drop, but
  // not all of them.
  EXPECT_GT(invalid, 300);
  EXPECT_LT(invalid, 1950);
}

TEST(GpsTest, OutageRepeatsLastValidPosition) {
  GpsSensor gps(6);
  const GpsFix good = gps.sample({10.0, 20.0, 60.0}, 0.0);
  ASSERT_TRUE(good.valid);
  gps.set_outage_model(0.999, 5.0);  // essentially always in outage now
  const GpsFix bad = gps.sample({99.0, 99.0, 60.0}, 0.02);
  EXPECT_FALSE(bad.valid);
  EXPECT_EQ(bad.position, good.position);
}

TEST(GpsTest, OutageContracts) {
  GpsSensor gps(7);
  EXPECT_THROW(gps.set_outage_model(1.5, 5.0), skyran::ContractViolation);
  EXPECT_THROW(gps.set_outage_model(0.1, 0.5), skyran::ContractViolation);
  EXPECT_NO_THROW(gps.set_outage_model(0.0, 0.0));
}

TEST(GpsTest, DeterministicInSeed) {
  GpsSensor a(9);
  GpsSensor b(9);
  const GpsFix fa = a.sample({1, 2, 3}, 0.0);
  const GpsFix fb = b.sample({1, 2, 3}, 0.0);
  EXPECT_EQ(fa.position, fb.position);
}

TEST(FlightTest, PlanLengthAndDuration) {
  FlightPlan plan;
  plan.waypoints = {{0, 0, 50}, {30, 40, 50}};
  plan.speed_mps = 10.0;
  EXPECT_DOUBLE_EQ(plan.length_m(), 50.0);
  EXPECT_DOUBLE_EQ(plan.duration_s(), 5.0);
}

TEST(FlightTest, AtAltitudeLiftsGroundTrack) {
  const geo::Path track({{0, 0}, {10, 0}, {10, 10}});
  const FlightPlan plan = FlightPlan::at_altitude(track, 45.0, 8.0);
  ASSERT_EQ(plan.waypoints.size(), 3u);
  for (const geo::Vec3& w : plan.waypoints) EXPECT_DOUBLE_EQ(w.z, 45.0);
  EXPECT_DOUBLE_EQ(plan.ground_track().length(), track.length());
}

TEST(FlightTest, SamplesAreEquispacedInTime) {
  FlightPlan plan;
  plan.waypoints = {{0, 0, 50}, {100, 0, 50}};
  plan.speed_mps = 10.0;
  const auto samples = fly(plan, 0.5, 100.0);
  ASSERT_GE(samples.size(), 21u);
  EXPECT_DOUBLE_EQ(samples.front().time_s, 100.0);
  EXPECT_DOUBLE_EQ(samples.back().time_s, 110.0);
  EXPECT_EQ(samples.back().position, (geo::Vec3{100, 0, 50}));
  // Constant speed: consecutive positions 5 m apart.
  for (std::size_t i = 2; i + 1 < samples.size(); ++i)
    EXPECT_NEAR(samples[i].position.dist(samples[i - 1].position), 5.0, 1e-9);
}

TEST(FlightTest, FlyDrainsBattery) {
  FlightPlan plan;
  plan.waypoints = {{0, 0, 50}, {100, 0, 50}};
  Battery battery;
  const double before = battery.remaining_wh();
  fly(plan, 0.1, 0.0, &battery);
  EXPECT_LT(battery.remaining_wh(), before);
}

TEST(FlightTest, PlanPointAtHandlesDuplicates) {
  FlightPlan plan;
  plan.waypoints = {{0, 0, 10}, {0, 0, 10}, {10, 0, 10}};
  EXPECT_EQ(plan_point_at(plan, 5.0), (geo::Vec3{5, 0, 10}));
  EXPECT_EQ(plan_point_at(plan, -1.0), (geo::Vec3{0, 0, 10}));
  EXPECT_EQ(plan_point_at(plan, 999.0), (geo::Vec3{10, 0, 10}));
}

TEST(FlightTest, Contracts) {
  FlightPlan empty;
  EXPECT_THROW(fly(empty, 0.1), ContractViolation);
  FlightPlan plan;
  plan.waypoints = {{0, 0, 0}, {1, 0, 0}};
  EXPECT_THROW(fly(plan, 0.0), ContractViolation);
  plan.speed_mps = 0.0;
  EXPECT_THROW(fly(plan, 0.1), ContractViolation);
}

TEST(TrajectoryTest, ZigzagCoversArea) {
  const geo::Rect area = geo::Rect::square(100.0);
  const geo::Path z = zigzag(area, 20.0);
  ASSERT_GE(z.size(), 10u);
  EXPECT_EQ(z.points().front(), (geo::Vec2{0.0, 0.0}));
  // Alternating rows hit both x extremes.
  bool hit_left = false;
  bool hit_right = false;
  for (const geo::Vec2 p : z.points()) {
    hit_left = hit_left || p.x == area.min.x;
    hit_right = hit_right || p.x == area.max.x;
    EXPECT_TRUE(area.contains(p));
  }
  EXPECT_TRUE(hit_left);
  EXPECT_TRUE(hit_right);
  // Last row reaches the top.
  EXPECT_DOUBLE_EQ(z.points().back().y, area.max.y);
}

TEST(TrajectoryTest, ZigzagLengthScalesWithSpacing) {
  const geo::Rect area = geo::Rect::square(100.0);
  EXPECT_GT(zigzag(area, 10.0).length(), zigzag(area, 40.0).length());
}

TEST(TrajectoryTest, RandomWalkRespectsLengthAndBounds) {
  const geo::Rect area = geo::Rect::square(200.0);
  const geo::Path w = random_walk(area, {100.0, 100.0}, 60.0, 10.0, 5);
  EXPECT_NEAR(w.length(), 60.0, 1e-6);
  for (const geo::Vec2 p : w.points()) EXPECT_TRUE(area.contains(p));
  EXPECT_EQ(w.points().front(), (geo::Vec2{100.0, 100.0}));
}

TEST(TrajectoryTest, RandomWalkDeterministicInSeed) {
  const geo::Rect area = geo::Rect::square(200.0);
  const geo::Path a = random_walk(area, {100, 100}, 50.0, 10.0, 5);
  const geo::Path b = random_walk(area, {100, 100}, 50.0, 10.0, 5);
  const geo::Path c = random_walk(area, {100, 100}, 50.0, 10.0, 6);
  EXPECT_EQ(a.points(), b.points());
  EXPECT_NE(a.points(), c.points());
}

TEST(TrajectoryTest, RandomWalkEscapesCorners) {
  const geo::Rect area = geo::Rect::square(100.0);
  // Start at the very corner: fallback heading must keep the walk inside.
  const geo::Path w = random_walk(area, {0.0, 0.0}, 40.0, 15.0, 1);
  for (const geo::Vec2 p : w.points()) EXPECT_TRUE(area.contains(p));
}

TEST(TrajectoryTest, TruncateToBudget) {
  const geo::Path p({{0, 0}, {10, 0}, {10, 10}});
  const geo::Path cut = truncate_to_budget(p, 15.0);
  EXPECT_NEAR(cut.length(), 15.0, 1e-9);
  EXPECT_EQ(cut.points().back(), (geo::Vec2{10.0, 5.0}));
  // Budget beyond length returns the full path.
  EXPECT_EQ(truncate_to_budget(p, 100.0).points(), p.points());
  EXPECT_THROW(truncate_to_budget(p, -1.0), ContractViolation);
}

/// Property: zigzag with spacing s covers every point of the area within
/// s/2 + epsilon of some path segment (full coverage guarantee).
class ZigzagCoverage : public ::testing::TestWithParam<double> {};

TEST_P(ZigzagCoverage, EveryPointNearPath) {
  const double spacing = GetParam();
  const geo::Rect area = geo::Rect::square(100.0);
  const geo::Path z = zigzag(area, spacing);
  for (double x = 0.0; x <= 100.0; x += 13.0) {
    for (double y = 0.0; y <= 100.0; y += 13.0) {
      EXPECT_LE(z.distance_to({x, y}), spacing / 2.0 + 1e-9)
          << "(" << x << "," << y << ") spacing " << spacing;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Spacings, ZigzagCoverage, ::testing::Values(10.0, 25.0, 40.0, 70.0));

}  // namespace
}  // namespace skyran::uav
