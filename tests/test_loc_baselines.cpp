// Tests for the macro-cell localization baselines (E-CID, fingerprinting,
// UL-TDoA) and their relative accuracy ordering vs SkyRAN's approach.
#include <gtest/gtest.h>

#include <random>

#include "geo/contract.hpp"
#include "geo/stats.hpp"
#include "localization/baselines.hpp"
#include "mobility/deployment.hpp"
#include "sim/world.hpp"

namespace skyran::localization {
namespace {

sim::World flat_world(std::uint64_t seed) {
  sim::WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kFlat;
  wc.seed = seed;
  return sim::World(wc);
}

TEST(MacroSitesTest, RingAroundArea) {
  const geo::Rect area = geo::Rect::square(300.0);
  const auto sites = default_macro_sites(area, 3);
  ASSERT_EQ(sites.size(), 3u);
  for (const geo::Vec3& s : sites) {
    EXPECT_FALSE(area.contains(s.xy()));  // towers sit outside the hotspot
    EXPECT_DOUBLE_EQ(s.z, 30.0);
  }
  EXPECT_THROW(default_macro_sites(area, 0), ContractViolation);
}

TEST(EcidTest, ErrorScalesWithRange) {
  // With an unknown azimuth, the expected error grows with UE-site range.
  const geo::Rect area = geo::Rect::square(300.0);
  const geo::Vec3 site{-75.0, 150.0, 30.0};
  std::mt19937_64 rng(1);
  std::vector<double> errs;
  const geo::Vec3 ue{250.0, 150.0, 1.5};
  for (int i = 0; i < 200; ++i)
    errs.push_back(ecid_localize(site, ue, area, {}, rng).dist(ue.xy()));
  // Ring radius ~325 m: typical error is large (tens to hundreds of m).
  EXPECT_GT(geo::median(errs), 50.0);
}

TEST(EcidTest, QuantizationFloorsError) {
  // Even a UE right next to the tower suffers the 78 m TA quantization.
  const geo::Rect area({-300.0, -300.0}, {300.0, 300.0});
  const geo::Vec3 site{0.0, 0.0, 30.0};
  const geo::Vec3 ue{35.0, 0.0, 1.5};
  std::mt19937_64 rng(2);
  EcidConfig cfg;
  cfg.ta_noise_m = 0.0;
  std::vector<double> errs;
  for (int i = 0; i < 100; ++i)
    errs.push_back(ecid_localize(site, ue, area, cfg, rng).dist(ue.xy()));
  // Range quantizes to 0 or 78 m; either way the error is tens of meters.
  EXPECT_GT(geo::median(errs), 20.0);
}

TEST(FingerprintTest, CleanDatabaseLocalizesToGrid) {
  const sim::World world = flat_world(3);
  const auto sites = default_macro_sites(world.area());
  FingerprintConfig cfg;
  cfg.grid_m = 20.0;
  cfg.train_noise_db = 0.0;
  cfg.query_noise_db = 0.0;
  const FingerprintDatabase db(world.channel(), world.budget(), sites, world.area(), cfg, 4);
  EXPECT_GT(db.size(), 100u);
  std::mt19937_64 rng(5);
  const geo::Vec3 ue{123.0, 87.0, 1.5};
  const geo::Vec2 est = db.localize(ue, rng);
  // Noise-free matching lands within ~a grid cell.
  EXPECT_LT(est.dist(ue.xy()), 1.5 * cfg.grid_m);
}

TEST(FingerprintTest, NoiseDegradesAccuracy) {
  const sim::World world = flat_world(3);
  const auto sites = default_macro_sites(world.area());
  FingerprintConfig noisy;
  noisy.train_noise_db = 6.0;
  noisy.query_noise_db = 6.0;
  const FingerprintDatabase db(world.channel(), world.budget(), sites, world.area(), noisy, 4);
  std::mt19937_64 rng(6);
  std::vector<double> errs;
  for (int i = 0; i < 30; ++i) {
    const geo::Vec3 ue{40.0 + i * 7.0, 260.0 - i * 6.0, 1.5};
    errs.push_back(db.localize(ue, rng).dist(ue.xy()));
  }
  EXPECT_GT(geo::median(errs), 15.0);  // flat-earth RSS is ambiguous under noise
}

TEST(TdoaTest, PerfectSyncIsAccurate) {
  const sim::World world = flat_world(7);
  const auto sites = default_macro_sites(world.area(), 4);
  TdoaConfig cfg;
  cfg.sync_error_ns = 0.0;
  cfg.toa_noise_ns = 0.0;
  cfg.grid = 80;
  std::mt19937_64 rng(8);
  const geo::Vec3 ue{200.0, 110.0, 1.5};
  const geo::Vec2 est = tdoa_localize(sites, ue, world.area(), cfg, rng);
  EXPECT_LT(est.dist(ue.xy()), 2.0 * world.area().width() / cfg.grid);
}

TEST(TdoaTest, SyncErrorDominates) {
  const sim::World world = flat_world(7);
  const auto sites = default_macro_sites(world.area(), 3);
  std::mt19937_64 rng(9);
  TdoaConfig loose;
  loose.sync_error_ns = 200.0;  // 60 m of range error per site
  std::vector<double> errs;
  for (int i = 0; i < 30; ++i) {
    const geo::Vec3 ue{60.0 + i * 6.0, 90.0 + i * 5.0, 1.5};
    errs.push_back(tdoa_localize(sites, ue, world.area(), loose, rng).dist(ue.xy()));
  }
  EXPECT_GT(geo::median(errs), 20.0);
  EXPECT_THROW(tdoa_localize({sites[0], sites[1]}, {0, 0, 1.5}, world.area(), loose, rng),
               ContractViolation);
}

TEST(OrderingTest, TdoaBeatsEcid) {
  // The classic ordering on the same world: TDoA < fingerprint/E-CID error.
  const sim::World world = flat_world(11);
  const auto sites = default_macro_sites(world.area(), 3);
  std::mt19937_64 rng(12);
  std::vector<double> tdoa_errs, ecid_errs;
  for (int i = 0; i < 40; ++i) {
    const geo::Vec3 ue{30.0 + i * 6.0, 250.0 - i * 5.0, 1.5};
    tdoa_errs.push_back(tdoa_localize(sites, ue, world.area(), {}, rng).dist(ue.xy()));
    ecid_errs.push_back(ecid_localize(sites[0], ue, world.area(), {}, rng).dist(ue.xy()));
  }
  EXPECT_LT(geo::median(tdoa_errs), geo::median(ecid_errs));
}

}  // namespace
}  // namespace skyran::localization
