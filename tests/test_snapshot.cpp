// Checkpoint/restore suite: envelope round-trips, every-prefix truncation +
// whole-stream byte-flip rejection with typed errors, version-skew and
// session-mismatch rejection, SnapshotManager generation fallback, and the
// headline resume contract — a campaign resumed from the checkpoint taken
// after epoch k produces bit-identical EpochReports for epochs k+1..N to
// the uninterrupted run, serial and 8-worker. The SIGKILL side of the
// contract lives in tests/test_crash_recovery.cpp.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/skyran.hpp"
#include "core/snapshot.hpp"
#include "sim/crash_point.hpp"
#include "sim/shutdown.hpp"
#include "snapshot_campaign.hpp"

namespace {

using namespace skyran;
namespace fs = std::filesystem;

constexpr int kEpochs = 8;

/// Serialize a snapshot to bytes.
std::string to_bytes(const core::Snapshot& s) {
  std::ostringstream os;
  s.save(os);
  return os.str();
}

core::Snapshot from_bytes(const std::string& bytes) {
  std::istringstream is(bytes);
  return core::Snapshot::load(is);
}

/// A short campaign (3 epochs) whose snapshot exercises every section:
/// non-empty store, multi-entry history, drained battery, advanced RNG.
core::Snapshot sample_snapshot() {
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(1), testcampaign::kCampaignSeed);
  testcampaign::run_epochs(skyran, world, 3);
  return skyran.snapshot();
}

/// Unique scratch directory removed at scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() / ("skyran_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

// ------------------------------------------------------------- round trip --

TEST(SnapshotFormatTest, RoundTripPreservesEveryField) {
  const core::Snapshot s = sample_snapshot();
  const core::Snapshot r = from_bytes(to_bytes(s));
  EXPECT_EQ(r.seed, s.seed);
  EXPECT_EQ(r.config_fingerprint, s.config_fingerprint);
  EXPECT_EQ(r.epoch, s.epoch);
  EXPECT_EQ(r.position.x, s.position.x);
  EXPECT_EQ(r.position.y, s.position.y);
  EXPECT_EQ(r.altitude_m, s.altitude_m);
  EXPECT_EQ(r.altitude_known, s.altitude_known);
  EXPECT_EQ(r.total_flight_m, s.total_flight_m);
  EXPECT_EQ(r.throughput_at_placement_bps, s.throughput_at_placement_bps);
  EXPECT_EQ(r.battery_remaining_wh, s.battery_remaining_wh);
  EXPECT_EQ(r.rng_state, s.rng_state);
  ASSERT_EQ(r.last_estimates.size(), s.last_estimates.size());
  for (std::size_t i = 0; i < s.last_estimates.size(); ++i) {
    EXPECT_EQ(r.last_estimates[i].x, s.last_estimates[i].x);
    EXPECT_EQ(r.last_estimates[i].y, s.last_estimates[i].y);
  }
  ASSERT_EQ(r.ue_positions.size(), s.ue_positions.size());
  ASSERT_EQ(r.store.size(), s.store.size());
  ASSERT_EQ(r.history.size(), s.history.size());
  for (std::size_t i = 0; i < s.history.size(); ++i) {
    EXPECT_EQ(r.history[i].position.x, s.history[i].position.x);
    ASSERT_EQ(r.history[i].trajectories.size(), s.history[i].trajectories.size());
    for (std::size_t p = 0; p < s.history[i].trajectories.size(); ++p)
      EXPECT_EQ(r.history[i].trajectories[p].points(), s.history[i].trajectories[p].points());
  }
  // Snapshot content is non-trivial: a 3-epoch campaign has stored REMs,
  // flown tours, and a drained battery.
  EXPECT_EQ(s.epoch, 3);
  EXPECT_GT(s.store.size(), 0u);
  EXPECT_GT(s.history.size(), 0u);
  EXPECT_LT(s.battery_remaining_wh, testcampaign::skyran_config(1).battery.capacity_wh);
  EXPECT_FALSE(s.rng_state.empty());
}

// ------------------------------------------------- corrupt-input rejection --

TEST(SnapshotFormatTest, EveryPrefixRejected) {
  const std::string bytes = to_bytes(sample_snapshot());
  ASSERT_GT(bytes.size(), 20u);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::istringstream cut(bytes.substr(0, len));
    EXPECT_THROW(core::Snapshot::load(cut), core::SnapshotError) << "prefix length " << len;
  }
}

TEST(SnapshotFormatTest, EveryByteFlipRejected) {
  const std::string bytes = to_bytes(sample_snapshot());
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x5a);
    std::istringstream is(bad);
    EXPECT_THROW(core::Snapshot::load(is), core::SnapshotError) << "flip at " << pos;
  }
}

TEST(SnapshotFormatTest, TypedErrorsDistinguishFailureModes) {
  const std::string bytes = to_bytes(sample_snapshot());
  {
    // Magic flip -> corrupt.
    std::string bad = bytes;
    bad[0] = static_cast<char>(bad[0] ^ 0x5a);
    std::istringstream is(bad);
    EXPECT_THROW(core::Snapshot::load(is), core::SnapshotCorrupt);
  }
  {
    // Version field (bytes 4..7) -> version skew, not a generic failure.
    std::string bad = bytes;
    bad[4] = static_cast<char>(bad[4] ^ 0x40);
    std::istringstream is(bad);
    EXPECT_THROW(core::Snapshot::load(is), core::SnapshotVersionSkew);
  }
  {
    // Hard truncation inside the payload -> truncated.
    std::istringstream is(bytes.substr(0, bytes.size() - 7));
    EXPECT_THROW(core::Snapshot::load(is), core::SnapshotTruncated);
  }
  {
    // Payload byte flip (CRC catches it) -> corrupt.
    std::string bad = bytes;
    bad[bytes.size() - 3] = static_cast<char>(bad[bytes.size() - 3] ^ 0x5a);
    std::istringstream is(bad);
    EXPECT_THROW(core::Snapshot::load(is), core::SnapshotCorrupt);
  }
}

TEST(SnapshotFormatTest, RestoreRejectsWrongSession) {
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(1), testcampaign::kCampaignSeed);
  testcampaign::run_epochs(skyran, world, 1);
  const core::Snapshot snap = skyran.snapshot();

  // Different seed: a different session entirely.
  core::SkyRan other_seed(world, testcampaign::skyran_config(1), testcampaign::kCampaignSeed + 1);
  EXPECT_THROW(other_seed.restore(snap), core::SnapshotMismatch);

  // Different resume-relevant config: the run would silently diverge.
  core::SkyRanConfig skewed = testcampaign::skyran_config(1);
  skewed.measurement_budget_m += 50.0;
  core::SkyRan other_config(world, skewed, testcampaign::kCampaignSeed);
  EXPECT_THROW(other_config.restore(snap), core::SnapshotMismatch);

  // The worker count is resume-neutral by contract: not a mismatch.
  core::SkyRan other_threads(world, testcampaign::skyran_config(8), testcampaign::kCampaignSeed);
  EXPECT_NO_THROW(other_threads.restore(snap));
}

// --------------------------------------------------------- generation files --

TEST(SnapshotManagerTest, KeepsNewestGenerationsAndPrunesRest) {
  TempDir dir("mgr_prune");
  core::SnapshotManager mgr(dir.path, 2);
  core::Snapshot s = sample_snapshot();
  for (int e = 1; e <= 4; ++e) {
    s.epoch = e;
    mgr.save(s);
  }
  const auto gens = mgr.generations();
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens.back().filename().string(), "ckpt-00000004.skyc");
  const auto latest = mgr.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 4);
  EXPECT_TRUE(mgr.last_errors().empty());
}

TEST(SnapshotManagerTest, CorruptNewestFallsBackToPreviousGeneration) {
  TempDir dir("mgr_fallback");
  core::SnapshotManager mgr(dir.path, 2);
  core::Snapshot s = sample_snapshot();
  s.epoch = 1;
  mgr.save(s);
  s.epoch = 2;
  const fs::path newest = mgr.save(s);

  // Flip one payload byte of the newest generation.
  std::string bytes;
  {
    std::ifstream is(newest, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    bytes = os.str();
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5a);
  std::ofstream(newest, std::ios::binary | std::ios::trunc).write(bytes.data(), bytes.size());

  const auto latest = mgr.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 1);  // previous good generation
  ASSERT_EQ(mgr.last_errors().size(), 1u);
  EXPECT_NE(mgr.last_errors()[0].find("CRC"), std::string::npos);
}

TEST(SnapshotManagerTest, AllGenerationsCorruptYieldsNothing) {
  TempDir dir("mgr_all_bad");
  core::SnapshotManager mgr(dir.path, 2);
  std::ofstream(dir.path / "ckpt-00000001.skyc", std::ios::binary) << "garbage";
  std::ofstream(dir.path / "ckpt-00000002.skyc", std::ios::binary) << "more garbage";
  EXPECT_FALSE(mgr.load_latest().has_value());
  EXPECT_EQ(mgr.last_errors().size(), 2u);
}

TEST(SnapshotManagerTest, StrayTempFilesAreIgnoredAndCleaned) {
  TempDir dir("mgr_tmp");
  core::SnapshotManager mgr(dir.path, 2);
  std::ofstream(dir.path / "ckpt-00000009.skyc.tmp", std::ios::binary) << "torn write";
  core::Snapshot s = sample_snapshot();
  s.epoch = 1;
  mgr.save(s);
  EXPECT_EQ(mgr.generations().size(), 1u);
  EXPECT_FALSE(fs::exists(dir.path / "ckpt-00000009.skyc.tmp"));
  const auto latest = mgr.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->epoch, 1);
}

// -------------------------------------------------------------- crash hooks --

TEST(CrashPointTest, DisarmedHookIsANoOpAndArmingCounts) {
  sim::disarm_crash_points();
  sim::crash_point("epoch.localize");  // disarmed: nothing happens
  EXPECT_EQ(sim::crash_point_visits(), 0);
  sim::arm_crash_point("some.point", 5);
  sim::crash_point("other.point");  // wrong name: not counted
  EXPECT_EQ(sim::crash_point_visits(), 0);
  sim::crash_point("some.point");
  sim::crash_point("some.point");
  EXPECT_EQ(sim::crash_point_visits(), 2);  // fires at 5; safe below that
  sim::disarm_crash_points();
  EXPECT_EQ(sim::crash_point_visits(), 0);
}

TEST(ShutdownFlagTest, SignalSetsFlagOnce) {
  sim::reset_shutdown_flag();
  sim::install_shutdown_handlers();
  EXPECT_FALSE(sim::shutdown_requested());
  std::raise(SIGINT);
  EXPECT_TRUE(sim::shutdown_requested());
  sim::reset_shutdown_flag();
  EXPECT_FALSE(sim::shutdown_requested());
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
}

// -------------------------------------------------- deterministic resume --

/// Reference digests + per-epoch snapshot bytes for the uninterrupted run.
struct ReferenceRun {
  std::vector<std::uint64_t> digests;
  std::vector<std::string> snapshots;  // snapshots[k]: taken after epoch k+1
};

ReferenceRun reference_run(int threads) {
  ReferenceRun ref;
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(threads), testcampaign::kCampaignSeed);
  ref.digests = testcampaign::run_epochs(
      skyran, world, kEpochs, nullptr,
      [&](int, std::uint64_t) { ref.snapshots.push_back(to_bytes(skyran.snapshot())); });
  return ref;
}

void expect_resume_matches(const ReferenceRun& ref, int resume_after, int threads) {
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(threads), testcampaign::kCampaignSeed);
  skyran.restore(from_bytes(ref.snapshots[static_cast<std::size_t>(resume_after) - 1]));
  ASSERT_EQ(skyran.epochs_run(), resume_after);
  const std::vector<std::uint64_t> resumed =
      testcampaign::run_epochs(skyran, world, kEpochs);
  ASSERT_EQ(resumed.size(), static_cast<std::size_t>(kEpochs - resume_after));
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i], ref.digests[static_cast<std::size_t>(resume_after) + i])
        << "epoch " << resume_after + 1 + static_cast<int>(i) << " diverged after resume at "
        << resume_after << " (threads=" << threads << ")";
}

TEST(DeterministicResumeTest, ResumeAtEveryEpochMatchesUninterruptedSerial) {
  const ReferenceRun ref = reference_run(1);
  ASSERT_EQ(ref.digests.size(), static_cast<std::size_t>(kEpochs));
  for (int k = 1; k < kEpochs; ++k) expect_resume_matches(ref, k, 1);
}

TEST(DeterministicResumeTest, ResumeAtEveryEpochMatchesUninterruptedEightWorkers) {
  const ReferenceRun ref = reference_run(8);
  ASSERT_EQ(ref.digests.size(), static_cast<std::size_t>(kEpochs));
  for (int k = 1; k < kEpochs; ++k) expect_resume_matches(ref, k, 8);
}

TEST(DeterministicResumeTest, SerialAndEightWorkerRunsAreBitIdentical) {
  const ReferenceRun serial = reference_run(1);
  const ReferenceRun parallel = reference_run(8);
  EXPECT_EQ(serial.digests, parallel.digests);
  // Snapshots are bit-identical too: the entire session state — store,
  // histories, RNG, battery — is worker-count-neutral, so a serial run can
  // be resumed on 8 workers and vice versa.
  EXPECT_EQ(serial.snapshots, parallel.snapshots);
}

TEST(DeterministicResumeTest, CrossWorkerResumeMatches) {
  // Checkpoint under serial execution, resume under 8 workers (and reverse).
  const ReferenceRun serial = reference_run(1);
  expect_resume_matches(serial, 4, 8);
  const ReferenceRun parallel = reference_run(8);
  expect_resume_matches(parallel, 4, 1);
}

}  // namespace
