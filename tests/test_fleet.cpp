// fleet::Fleet property suite: attachment determinism and the serial ==
// 8-worker bit-identity contract; the A3 handover state machine (offset +
// hysteresis entry condition, time-to-trigger accumulation and reset,
// ping-pong detection window); closed-loop traffic steering draining a
// constructed hot spot; the save/restore round-trip (bit-identical resume,
// population mismatch and corruption rejection); staggered load-weighted
// placement over a shared RemBank; and the SkyRan-side load_weighted_placement
// flag with its Snapshot v2 field. No fork-based tests live here — this
// binary runs under TSan in CI; the kill-at-epoch.steer crash case is in
// tests/test_crash_recovery.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/skyran.hpp"
#include "core/snapshot.hpp"
#include "fleet/fleet.hpp"
#include "geo/binio.hpp"
#include "mobility/deployment.hpp"
#include "rem/bank.hpp"
#include "rf/channel.hpp"
#include "sim/world.hpp"
#include "terrain/terrain.hpp"

namespace {

using namespace skyran;

constexpr double kAlt = 60.0;

const rf::FsplChannel& channel() {
  static const rf::FsplChannel fspl(2.6e9);
  return fspl;
}

lte::TrafficSpec cbr(double rate_bps) {
  lte::TrafficSpec spec;
  spec.model = lte::TrafficModel::kCbr;
  spec.rate_bps = rate_bps;
  return spec;
}

fleet::FleetConfig tiny_config(int threads = 1) {
  fleet::FleetConfig cfg;
  cfg.seed = 0xF1EE7;
  cfg.threads = threads;
  cfg.ttis_per_epoch = 20;
  cfg.steering.enabled = false;  // handover tests want static CIOs
  return cfg;
}

/// Two co-channel cells 400 m apart at 60 m. With FSPL the RSRP delta at a
/// ground UE is 20*log10(d_serving/d_neighbor): x = 260 gives 4.87 dB in
/// cell 1's favor (beats the 3 dB offset+hysteresis), x = 220 gives 1.62 dB
/// (does not).
fleet::Fleet two_cell_fleet(const fleet::FleetConfig& cfg) {
  fleet::Fleet f(cfg, channel());
  f.add_cell({0.0, 0.0, kAlt});
  f.add_cell({400.0, 0.0, kAlt});
  return f;
}

/// Deterministic pseudo-position stream for bulk populations (the tests'
/// stand-in for a mobility driver; splitmix64-style).
double unit_noise(std::uint64_t i, std::uint64_t salt) {
  std::uint64_t x = i * 0x9E3779B97F4A7C15ULL + salt;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) / 9007199254740992.0;  // [0, 1)
}

/// 3x3 cell grid over a 600 m square with `n_ues` pseudo-random UEs.
fleet::Fleet grid_fleet(const fleet::FleetConfig& cfg, std::size_t n_ues) {
  fleet::Fleet f(cfg, channel());
  for (int iy = 0; iy < 3; ++iy)
    for (int ix = 0; ix < 3; ++ix)
      f.add_cell({100.0 + 200.0 * ix, 100.0 + 200.0 * iy, kAlt});
  for (std::size_t i = 0; i < n_ues; ++i)
    f.add_ue({600.0 * unit_noise(i, 11), 600.0 * unit_noise(i, 23), 1.5}, cbr(2e5));
  return f;
}

/// Deterministic per-epoch mobility: every 7th UE drifts.
void drift_ues(fleet::Fleet& f, int epoch) {
  for (std::size_t i = 0; i < f.ue_count(); i += 7) {
    geo::Vec3 p = f.ue_position(i);
    p.x = std::fmod(p.x + 40.0 * unit_noise(i, 100 + epoch) + 600.0, 600.0);
    p.y = std::fmod(p.y + 40.0 * unit_noise(i, 200 + epoch) + 600.0, 600.0);
    f.set_ue_position(i, p);
  }
}

// ---------------------------------------------------------------------------
// Attachment + determinism
// ---------------------------------------------------------------------------

TEST(FleetAttachment, FirstEpochAttachesEveryUeToStrongestCell) {
  fleet::Fleet f = two_cell_fleet(tiny_config());
  f.add_ue({50.0, 0.0, 1.5}, cbr(1e5));    // clearly cell 0
  f.add_ue({350.0, 10.0, 1.5}, cbr(1e5));  // clearly cell 1
  f.add_ue({260.0, 0.0, 1.5}, cbr(1e5));   // nearer cell 1
  f.add_ue({140.0, -5.0, 1.5}, cbr(1e5));  // nearer cell 0

  EXPECT_EQ(f.serving_cell(0), -1);  // unattached until the first epoch
  const fleet::FleetEpochReport r = f.run_epoch();

  EXPECT_EQ(r.attach_events, 4u);
  EXPECT_EQ(f.total_attaches(), 4u);
  EXPECT_EQ(f.serving_cell(0), 0);
  EXPECT_EQ(f.serving_cell(1), 1);
  EXPECT_EQ(f.serving_cell(2), 1);
  EXPECT_EQ(f.serving_cell(3), 0);
  ASSERT_EQ(r.cell_ues.size(), 2u);
  EXPECT_EQ(r.cell_ues[0] + r.cell_ues[1], 4u);
  EXPECT_EQ(r.ho_successes, 0u);  // attachment is not a handover
  for (std::size_t u = 0; u < f.ue_count(); ++u) {
    EXPECT_TRUE(std::isfinite(f.sinr_db(u)));
  }
  EXPECT_GT(r.served_bits, 0.0);
}

TEST(FleetAttachment, RepeatedRunsAreBitIdentical) {
  std::vector<std::uint64_t> first;
  for (int rep = 0; rep < 2; ++rep) {
    fleet::Fleet f = grid_fleet(tiny_config(), 200);
    std::vector<std::uint64_t> hashes;
    for (int e = 1; e <= 3; ++e) {
      f.run_epoch();
      drift_ues(f, e);
      hashes.push_back(f.state_hash());
    }
    if (rep == 0) {
      first = hashes;
    } else {
      EXPECT_EQ(first, hashes);
    }
  }
}

TEST(FleetDeterminism, SerialMatchesEightWorkersBitIdentical) {
  fleet::FleetConfig serial_cfg = tiny_config(/*threads=*/1);
  fleet::FleetConfig pool_cfg = tiny_config(/*threads=*/8);
  serial_cfg.steering.enabled = pool_cfg.steering.enabled = true;
  fleet::Fleet serial = grid_fleet(serial_cfg, 500);
  fleet::Fleet pool = grid_fleet(pool_cfg, 500);

  for (int e = 1; e <= 4; ++e) {
    const fleet::FleetEpochReport rs = serial.run_epoch();
    const fleet::FleetEpochReport rp = pool.run_epoch();
    ASSERT_EQ(serial.state_hash(), pool.state_hash()) << "epoch " << e;
    EXPECT_EQ(rs.attach_events, rp.attach_events);
    EXPECT_EQ(rs.ho_attempts, rp.ho_attempts);
    EXPECT_EQ(rs.ho_successes, rp.ho_successes);
    EXPECT_EQ(rs.ho_pingpongs, rp.ho_pingpongs);
    EXPECT_EQ(rs.steering_steps, rp.steering_steps);
    EXPECT_EQ(rs.min_sinr_db, rp.min_sinr_db);        // bit-equal, not approx
    EXPECT_EQ(rs.mean_sinr_db, rp.mean_sinr_db);
    EXPECT_EQ(rs.served_bits, rp.served_bits);
    EXPECT_EQ(rs.cell_prb_util, rp.cell_prb_util);
    EXPECT_EQ(rs.cell_ues, rp.cell_ues);
    drift_ues(serial, e);
    drift_ues(pool, e);
  }
}

// ---------------------------------------------------------------------------
// A3 handover state machine
// ---------------------------------------------------------------------------

TEST(FleetHandover, A3RequiresOffsetPlusHysteresis) {
  fleet::FleetConfig cfg = tiny_config();
  cfg.a3.offset_db = 2.0;
  cfg.a3.hysteresis_db = 1.0;
  cfg.a3.time_to_trigger_epochs = 2;
  fleet::Fleet f = two_cell_fleet(cfg);
  const std::size_t ue = f.add_ue({100.0, 0.0, 1.5}, cbr(1e5));

  f.run_epoch();  // epoch 1: attach to cell 0
  ASSERT_EQ(f.serving_cell(ue), 0);

  // 1.62 dB in cell 1's favor: below offset + hysteresis, never triggers.
  f.set_ue_position(ue, {220.0, 0.0, 1.5});
  for (int e = 0; e < 4; ++e) {
    const fleet::FleetEpochReport r = f.run_epoch();
    EXPECT_EQ(r.ho_attempts, 0u);
    EXPECT_EQ(f.serving_cell(ue), 0);
  }

  // 4.87 dB: above the 3 dB bar. TTT = 2 means one attempt epoch, then the
  // execute epoch.
  f.set_ue_position(ue, {260.0, 0.0, 1.5});
  const fleet::FleetEpochReport attempt = f.run_epoch();
  EXPECT_EQ(attempt.ho_attempts, 1u);
  EXPECT_EQ(attempt.ho_successes, 0u);
  EXPECT_EQ(f.serving_cell(ue), 0);  // still in TTT

  const fleet::FleetEpochReport execute = f.run_epoch();
  EXPECT_EQ(execute.ho_attempts, 1u);
  EXPECT_EQ(execute.ho_successes, 1u);
  EXPECT_EQ(f.serving_cell(ue), 1);

  ASSERT_EQ(f.handover_log().size(), 1u);
  const fleet::HandoverEvent& ev = f.handover_log()[0];
  EXPECT_EQ(ev.ue, ue);
  EXPECT_EQ(ev.from, 0);
  EXPECT_EQ(ev.to, 1);
  EXPECT_FALSE(ev.pingpong);
  EXPECT_EQ(f.handover_log_dropped(), 0u);
}

TEST(FleetHandover, TimeToTriggerResetsWhenConditionBreaks) {
  fleet::FleetConfig cfg = tiny_config();
  cfg.a3.time_to_trigger_epochs = 3;
  fleet::Fleet f = two_cell_fleet(cfg);
  const std::size_t ue = f.add_ue({100.0, 0.0, 1.5}, cbr(1e5));
  f.run_epoch();  // attach to cell 0

  f.set_ue_position(ue, {260.0, 0.0, 1.5});
  f.run_epoch();  // TTT count 1
  f.run_epoch();  // TTT count 2
  EXPECT_EQ(f.serving_cell(ue), 0);

  f.set_ue_position(ue, {220.0, 0.0, 1.5});
  f.run_epoch();  // condition breaks: count resets
  EXPECT_EQ(f.serving_cell(ue), 0);

  f.set_ue_position(ue, {260.0, 0.0, 1.5});
  f.run_epoch();  // count 1 again
  f.run_epoch();  // count 2
  EXPECT_EQ(f.serving_cell(ue), 0) << "TTT must restart from zero after a break";
  f.run_epoch();  // count 3: execute
  EXPECT_EQ(f.serving_cell(ue), 1);
  EXPECT_EQ(f.total_handovers(), 1u);
}

TEST(FleetHandover, StaticUesNeverHandOver) {
  // Attachment picks the strongest cell; with static RSRP and zero CIO no
  // neighbor can later become offset-better, so a static population
  // generates zero A3 attempts after epoch 1.
  fleet::Fleet f = grid_fleet(tiny_config(), 120);
  for (int e = 1; e <= 6; ++e) f.run_epoch();
  EXPECT_EQ(f.total_attaches(), 120u);
  EXPECT_EQ(f.total_ho_attempts(), 0u);
  EXPECT_EQ(f.total_handovers(), 0u);
  EXPECT_EQ(f.total_pingpongs(), 0u);
}

TEST(FleetHandover, PingPongDetectedOnlyInsideWindow) {
  fleet::FleetConfig cfg = tiny_config();
  cfg.a3.time_to_trigger_epochs = 1;  // execute the epoch the condition holds
  cfg.a3.pingpong_window_epochs = 4;
  fleet::Fleet f = two_cell_fleet(cfg);
  const std::size_t ue = f.add_ue({140.0, 0.0, 1.5}, cbr(1e5));
  f.run_epoch();  // epoch 1: attach cell 0

  f.set_ue_position(ue, {260.0, 0.0, 1.5});
  f.run_epoch();  // epoch 2: HO 0 -> 1
  ASSERT_EQ(f.serving_cell(ue), 1);

  f.set_ue_position(ue, {140.0, 0.0, 1.5});
  f.run_epoch();  // epoch 3: HO 1 -> 0, one epoch after the last — ping-pong
  ASSERT_EQ(f.serving_cell(ue), 0);
  EXPECT_EQ(f.total_pingpongs(), 1u);
  ASSERT_EQ(f.handover_log().size(), 2u);
  EXPECT_TRUE(f.handover_log()[1].pingpong);

  for (int e = 4; e <= 8; ++e) f.run_epoch();  // sit out the window
  f.set_ue_position(ue, {260.0, 0.0, 1.5});
  f.run_epoch();  // epoch 9: HO 0 -> 1, five epochs after the last — clean
  ASSERT_EQ(f.serving_cell(ue), 1);
  EXPECT_EQ(f.total_handovers(), 3u);
  EXPECT_EQ(f.total_pingpongs(), 1u);
  ASSERT_EQ(f.handover_log().size(), 3u);
  EXPECT_FALSE(f.handover_log()[2].pingpong);
}

// ---------------------------------------------------------------------------
// Closed-loop traffic steering
// ---------------------------------------------------------------------------

/// Hot-spot scenario: 24 CBR UEs clustered inside cell 0's coverage while
/// cell 1 idles with 4 light UEs. Without steering cell 0 saturates; with
/// it, 0.25 dB CIO steps walk the A3 boundary toward the hot spot until
/// boundary UEs drain to cell 1 and the utilization gap closes.
fleet::Fleet hotspot_fleet(bool steering_on) {
  fleet::FleetConfig cfg = tiny_config();
  cfg.ttis_per_epoch = 40;
  cfg.steering.enabled = steering_on;
  cfg.steering.period_epochs = 1;
  cfg.steering.step_db = 0.25;
  cfg.steering.max_cio_db = 6.0;
  cfg.a3.time_to_trigger_epochs = 1;
  fleet::Fleet f(cfg, channel());
  f.add_cell({0.0, 0.0, kAlt});
  f.add_cell({300.0, 0.0, kAlt});
  for (int i = 0; i < 24; ++i) {
    f.add_ue({60.0 + 3.3 * i, -40.0 + 3.5 * i, 1.5}, cbr(3e5));
  }
  for (int i = 0; i < 4; ++i) {
    f.add_ue({280.0 + 5.0 * i, 10.0 * i, 1.5}, cbr(1e5));
  }
  return f;
}

TEST(FleetSteering, ReducesHotspotMaxUtilization) {
  fleet::Fleet off = hotspot_fleet(false);
  fleet::Fleet on = hotspot_fleet(true);
  fleet::FleetEpochReport r_off;
  fleet::FleetEpochReport r_on;
  for (int e = 1; e <= 20; ++e) {
    r_off = off.run_epoch();
    r_on = on.run_epoch();
  }

  EXPECT_EQ(off.total_handovers(), 0u);  // static UEs, no CIO motion
  EXPECT_GT(on.total_handovers(), 0u) << "steering must move boundary UEs";
  EXPECT_GT(on.total_steering_steps(), 0u);
  EXPECT_LT(r_on.max_prb_util, r_off.max_prb_util - 0.05)
      << "steering must relieve the hot cell";
  // Documented ping-pong bound (docs/FLEET.md, "Steering control law"):
  // a bounce needs the net CIO bias to reverse by 2*(offset + hysteresis)
  // = 6 dB inside the ping-pong window, but 0.25 dB steps can only swing
  // 2 * 0.25 * 4 = 2 dB in 4 epochs — ping-pongs are structurally impossible.
  EXPECT_EQ(on.total_pingpongs(), 0u);
  // The drained UEs really moved: cell 1 gained members.
  ASSERT_EQ(r_on.cell_ues.size(), 2u);
  EXPECT_GT(r_on.cell_ues[1], r_off.cell_ues[1]);
}

TEST(FleetSteering, DeadbandFreezesBalancedFleet) {
  fleet::FleetConfig cfg = tiny_config();
  cfg.steering.enabled = true;
  cfg.steering.period_epochs = 1;
  cfg.steering.util_deadband = 1.0;  // any spread is inside the deadband
  fleet::Fleet f = two_cell_fleet(cfg);
  f.add_ue({50.0, 0.0, 1.5}, cbr(1e6));
  f.add_ue({350.0, 0.0, 1.5}, cbr(1e6));
  for (int e = 1; e <= 4; ++e) f.run_epoch();
  EXPECT_EQ(f.total_steering_steps(), 0u);
  EXPECT_EQ(f.cio_db(0), 0.0);
  EXPECT_EQ(f.cio_db(1), 0.0);
}

// ---------------------------------------------------------------------------
// Save / restore
// ---------------------------------------------------------------------------

TEST(FleetSnapshot, RoundTripResumesBitIdentically) {
  fleet::Fleet a = hotspot_fleet(true);
  for (int e = 1; e <= 3; ++e) a.run_epoch();

  std::stringstream stream;
  a.save(stream);

  fleet::Fleet b = hotspot_fleet(true);
  b.restore(stream);
  ASSERT_EQ(a.state_hash(), b.state_hash());
  EXPECT_EQ(b.epochs_run(), 3);
  EXPECT_EQ(a.total_handovers(), b.total_handovers());

  for (int e = 4; e <= 6; ++e) {
    const fleet::FleetEpochReport ra = a.run_epoch();
    const fleet::FleetEpochReport rb = b.run_epoch();
    ASSERT_EQ(a.state_hash(), b.state_hash()) << "epoch " << e;
    EXPECT_EQ(ra.served_bits, rb.served_bits);
    EXPECT_EQ(ra.cell_prb_util, rb.cell_prb_util);
    EXPECT_EQ(ra.ho_successes, rb.ho_successes);
  }
}

TEST(FleetSnapshot, RestoreRejectsWrongPopulation) {
  fleet::Fleet a = two_cell_fleet(tiny_config());
  a.add_ue({50.0, 0.0, 1.5}, cbr(1e5));
  a.add_ue({350.0, 0.0, 1.5}, cbr(1e5));
  a.run_epoch();
  std::stringstream stream;
  a.save(stream);

  fleet::Fleet b = two_cell_fleet(tiny_config());
  b.add_ue({50.0, 0.0, 1.5}, cbr(1e5));  // one UE short
  EXPECT_THROW(b.restore(stream), fleet::FleetStateMismatch);
}

TEST(FleetSnapshot, RestoreRejectsCorruptStream) {
  fleet::Fleet a = two_cell_fleet(tiny_config());
  a.add_ue({50.0, 0.0, 1.5}, cbr(1e5));
  a.run_epoch();
  std::stringstream stream;
  a.save(stream);
  std::string bytes = stream.str();
  bytes[bytes.size() / 2] ^= 0x40;  // flip one payload bit

  fleet::Fleet b = two_cell_fleet(tiny_config());
  b.add_ue({50.0, 0.0, 1.5}, cbr(1e5));
  std::istringstream corrupt(bytes);
  EXPECT_THROW(b.restore(corrupt), geo::BinCorruptError);
}

// ---------------------------------------------------------------------------
// Staggered placement refresh over a shared RemBank
// ---------------------------------------------------------------------------

TEST(FleetPlacement, RefreshStaggersAcrossCellsAndScoresUnderLoad) {
  const geo::Rect area{{0.0, 0.0}, {400.0, 300.0}};
  const terrain::Terrain terrain(area, 10.0);

  rem::RemBank bank(area, 20.0, kAlt);
  for (int i = 0; i < 6; ++i) {
    bank.add_ue({50.0 + 60.0 * i, 80.0 + 20.0 * (i % 3), 1.5});
    bank.seed_from_model(i, channel(), rf::LinkBudget{});
  }
  bank.estimate_all();
  ASSERT_TRUE(bank.estimates_current());

  fleet::Fleet f(tiny_config(), channel());
  f.add_cell({100.0, 150.0, kAlt});
  f.add_cell({300.0, 150.0, kAlt});
  for (int i = 0; i < 8; ++i) {
    f.add_ue({60.0 + 15.0 * i, 100.0, 1.5}, cbr(5e5));
  }

  f.run_epoch();
  const fleet::PlacementRefresh first = f.refresh_placement(bank, terrain);
  EXPECT_EQ(first.cell, 0);  // epoch 1 refreshes cell 0
  EXPECT_GT(first.points, 0);
  EXPECT_TRUE(std::isfinite(first.objective_db));
  EXPECT_TRUE(area.contains(first.position));
  EXPECT_EQ(f.cell_position(0).x, first.position.x);
  EXPECT_EQ(f.cell_position(0).z, kAlt);

  f.run_epoch();
  const fleet::PlacementRefresh second = f.refresh_placement(bank, terrain);
  EXPECT_EQ(second.cell, 1);  // epoch 2 refreshes cell 1
  EXPECT_EQ(f.total_placement_refreshes(), 2u);
}

// ---------------------------------------------------------------------------
// SkyRan load-weighted placement (ROADMAP item 1 remainder)
// ---------------------------------------------------------------------------

TEST(LoadWeightedPlacement, FlagRunsAndSurvivesSnapshotRoundTrip) {
  sim::WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kCampus;
  wc.seed = 7;
  wc.cell_size_m = 2.0;
  sim::World world(wc);
  world.ue_positions() = mobility::deploy_uniform(world.terrain(), 5, 8);

  core::SkyRanConfig cfg;
  cfg.rem_cell_m = 8.0;
  cfg.measurement_budget_m = 400.0;
  cfg.localization_mode = core::LocalizationMode::kPerfect;
  cfg.service.load_weighted_placement = true;

  core::SkyRan skyran(world, cfg, /*seed=*/99);
  skyran.run_epoch();
  const core::Snapshot snap = skyran.snapshot();
  EXPECT_EQ(snap.ue_service_load.size(), 5u);

  // Resume contract still holds with the flag on: the restored run's next
  // epoch is bit-identical to the uninterrupted one.
  const core::EpochReport straight = skyran.run_epoch();

  sim::World world2(wc);
  world2.ue_positions() = mobility::deploy_uniform(world2.terrain(), 5, 8);
  core::SkyRan resumed(world2, cfg, /*seed=*/99);
  resumed.restore(snap);
  const core::EpochReport replayed = resumed.run_epoch();
  EXPECT_EQ(core::report_digest(straight), core::report_digest(replayed));
}

}  // namespace
