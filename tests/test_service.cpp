// Tests for the TTI-level service simulator: traffic models, CQI staleness,
// HARQ behavior and the hover-vs-fly throughput gap.
#include <gtest/gtest.h>

#include <random>

#include "geo/contract.hpp"
#include "mobility/deployment.hpp"
#include "sim/service.hpp"
#include "uav/trajectory.hpp"

namespace skyran::sim {
namespace {

World flat_world_with_ues(std::uint64_t seed, int n_ues) {
  WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kFlat;
  wc.seed = seed;
  World world(wc);
  for (int i = 0; i < n_ues; ++i)
    world.ue_positions().push_back({60.0 + 30.0 * i, 120.0, 1.5});
  return world;
}

TEST(ServiceTest, FullBufferApproachesAmcBound) {
  World world = flat_world_with_ues(1, 1);
  const geo::Vec3 uav{80.0, 120.0, 60.0};
  ServiceConfig cfg;
  cfg.duration_s = 2.0;
  cfg.fading_sigma_db = 0.0;  // static channel: no staleness possible
  std::mt19937_64 rng(2);
  const ServiceReport r =
      run_service_hovering(world, uav, {Traffic{}}, cfg, rng);
  const double bound = lte::throughput_bps(world.snr_db(uav, world.ue_positions()[0]),
                                           world.carrier());
  EXPECT_NEAR(r.aggregate_throughput_bps, bound, bound * 0.05);
  EXPECT_DOUBLE_EQ(r.per_ue[0].harq_failure_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_cqi_staleness_db, 0.0);
}

TEST(ServiceTest, CellSharedAcrossUes) {
  World world = flat_world_with_ues(3, 4);
  const geo::Vec3 uav{100.0, 120.0, 60.0};
  ServiceConfig cfg;
  cfg.duration_s = 1.0;
  cfg.fading_sigma_db = 0.0;
  std::mt19937_64 rng(4);
  const std::vector<Traffic> traffic(4, Traffic{});
  const ServiceReport r = run_service_hovering(world, uav, traffic, cfg, rng);
  // Equal-ish split under round robin on a flat world.
  for (const UeServiceStats& u : r.per_ue)
    EXPECT_NEAR(u.throughput_bps, r.aggregate_throughput_bps / 4.0,
                r.aggregate_throughput_bps * 0.15);
}

TEST(ServiceTest, CbrUnderloadServedWithLowDelay) {
  World world = flat_world_with_ues(5, 1);
  const geo::Vec3 uav{70.0, 120.0, 60.0};
  Traffic cbr;
  cbr.kind = Traffic::Kind::kCbr;
  cbr.rate_bps = 1e6;  // far below capacity
  ServiceConfig cfg;
  cfg.duration_s = 2.0;
  cfg.fading_sigma_db = 0.0;
  std::mt19937_64 rng(6);
  const ServiceReport r = run_service_hovering(world, uav, {cbr}, cfg, rng);
  EXPECT_NEAR(r.per_ue[0].served_bits, r.per_ue[0].offered_bits,
              r.per_ue[0].offered_bits * 0.05);
  EXPECT_LT(r.per_ue[0].mean_queue_delay_ms, 5.0);
}

TEST(ServiceTest, CbrOverloadQueuesAndDrops) {
  World world = flat_world_with_ues(7, 1);
  // Put the UE far away: capacity is low.
  world.ue_positions()[0] = {290.0, 290.0, 1.5};
  const geo::Vec3 uav{10.0, 10.0, 60.0};
  Traffic cbr;
  cbr.kind = Traffic::Kind::kCbr;
  cbr.rate_bps = 60e6;  // far above any LTE-10MHz capacity
  ServiceConfig cfg;
  cfg.duration_s = 1.0;
  std::mt19937_64 rng(8);
  const ServiceReport r = run_service_hovering(world, uav, {cbr}, cfg, rng);
  EXPECT_LT(r.per_ue[0].served_bits, r.per_ue[0].offered_bits * 0.9);
  EXPECT_GT(r.per_ue[0].mean_queue_delay_ms, 10.0);
}

TEST(ServiceTest, PoissonOffersRoughlyConfiguredLoad) {
  World world = flat_world_with_ues(9, 1);
  const geo::Vec3 uav{70.0, 120.0, 60.0};
  Traffic pois;
  pois.kind = Traffic::Kind::kPoisson;
  pois.rate_bps = 3e6;
  ServiceConfig cfg;
  cfg.duration_s = 3.0;
  std::mt19937_64 rng(10);
  const ServiceReport r = run_service_hovering(world, uav, {pois}, cfg, rng);
  EXPECT_NEAR(r.per_ue[0].offered_bits, 3e6 * 3.0, 3e6 * 3.0 * 0.2);
}

TEST(ServiceTest, FlyingCostsThroughputOnRoughTerrain) {
  // Same neighborhood, motion as the only difference: hover at a point vs
  // orbit a 30 m circle around it at cruise speed.
  WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kCampus;
  wc.seed = 11;
  World world(wc);
  world.ue_positions() = mobility::deploy_mixed_visibility(world.terrain(), 5, 12);
  const std::vector<Traffic> traffic(5, Traffic{});
  ServiceConfig cfg;
  cfg.duration_s = 3.0;
  cfg.cqi_period_ms = 10.0;
  std::mt19937_64 rng(13);

  const geo::Vec2 anchor = world.area().center() + geo::Vec2{40.0, -30.0};
  const ServiceReport hover =
      run_service_hovering(world, {anchor, 60.0}, traffic, cfg, rng);

  std::vector<geo::Vec2> circle;
  for (int i = 0; i <= 24; ++i) {
    const double a = 2.0 * M_PI * i / 24.0;
    circle.push_back(anchor + geo::Vec2{30.0 * std::cos(a), 30.0 * std::sin(a)});
  }
  const ServiceReport fly = run_service_flying(
      world, uav::FlightPlan::at_altitude(geo::Path(circle), 60.0), traffic, cfg, rng);
  // Motion decorrelates fading inside the CQI loop: the flying cell's
  // channel knowledge is measurably staler and HARQ failures appear.
  EXPECT_GT(fly.mean_cqi_staleness_db, hover.mean_cqi_staleness_db * 1.5);
  double fly_fail = 0.0;
  double hover_fail = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    fly_fail += fly.per_ue[i].harq_failure_rate;
    hover_fail += hover.per_ue[i].harq_failure_rate;
  }
  EXPECT_GT(fly_fail, hover_fail);
}

TEST(ServiceTest, BlerMarginTradesFailuresForRate) {
  WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kCampus;
  wc.seed = 14;
  World world(wc);
  world.ue_positions() = mobility::deploy_mixed_visibility(world.terrain(), 5, 15);
  const std::vector<Traffic> traffic(5, Traffic{});
  ServiceConfig aggressive;
  aggressive.duration_s = 3.0;
  aggressive.cqi_period_ms = 20.0;  // long loop: staleness bites
  ServiceConfig safe = aggressive;
  safe.bler_margin_db = 5.0;
  const geo::Path track = uav::truncate_to_budget(
      uav::zigzag(world.area().inflated(-20.0), 60.0), 3.0 * uav::kDefaultCruiseMps);
  const uav::FlightPlan plan = uav::FlightPlan::at_altitude(track, 60.0);
  std::mt19937_64 rng_a(16), rng_b(16);  // identical channel draws
  const ServiceReport agg = run_service_flying(world, plan, traffic, aggressive, rng_a);
  const ServiceReport sfe = run_service_flying(world, plan, traffic, safe, rng_b);
  double agg_fail = 0.0;
  double safe_fail = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    agg_fail += agg.per_ue[i].harq_failure_rate;
    safe_fail += sfe.per_ue[i].harq_failure_rate;
  }
  EXPECT_GT(agg_fail, 0.0);        // motion + slow CQI must cost something
  EXPECT_LT(safe_fail, agg_fail);  // backoff reduces HARQ losses
}

TEST(ServiceTest, Contracts) {
  World world = flat_world_with_ues(17, 2);
  ServiceConfig cfg;
  std::mt19937_64 rng(18);
  EXPECT_THROW(run_service_hovering(world, {0, 0, 60}, {Traffic{}}, cfg, rng),
               ContractViolation);  // traffic count mismatch
  cfg.cqi_period_ms = 0.5;
  EXPECT_THROW(
      run_service_hovering(world, {0, 0, 60}, {Traffic{}, Traffic{}}, cfg, rng),
      ContractViolation);
}

}  // namespace
}  // namespace skyran::sim
