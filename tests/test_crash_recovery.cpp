// Kill-at-phase crash-recovery harness. For every crash point — the four
// SkyRan run_epoch phase boundaries, mid-checkpoint-write, pre-rename, and
// the fleet's epoch.steer — a forked child runs the checkpointed campaign
// and SIGKILLs itself at the armed point; a second forked child restores
// from whatever generation survived and finishes the campaign. The parent
// stitches the pre-crash digests (up to the resumed epoch) with the
// post-resume digests and requires bit-identity with an uninterrupted
// reference run.
//
// Fork discipline: the parent is a pure orchestrator — it never runs an
// epoch, so no thread-pool threads exist at fork time. All campaign work
// happens in children, which build their own pools and leave via _exit()
// (or SIGKILL). This binary is intentionally separate from test_snapshot:
// fork+threads is off-limits under TSan, so CI runs it under ASan/UBSan
// only (see .github/workflows/ci.yml).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/skyran.hpp"
#include "core/snapshot.hpp"
#include "fleet/fleet.hpp"
#include "rf/channel.hpp"
#include "scenario/campaign.hpp"
#include "sim/crash_point.hpp"
#include "snapshot_campaign.hpp"

namespace {

using namespace skyran;
namespace fs = std::filesystem;

constexpr int kEpochs = 4;
constexpr int kThreads = 2;  // children exercise fork -> fresh pool
constexpr int kCrashHit = 3; // third visit: mid-campaign, not the first epoch

// Child exit codes (children cannot use gtest assertions meaningfully).
constexpr int kChildOk = 0;
constexpr int kChildNoCheckpoint = 11;
constexpr int kChildSurvivedCrash = 12;

struct CrashCase {
  const char* point;
  bool mid_epoch;  // true: the crashed epoch's digest is NOT in crash.txt
};

std::string case_name(const testing::TestParamInfo<CrashCase>& info) {
  std::string n = info.param.point;
  for (char& c : n)
    if (c == '.') c = '_';
  return n;
}

/// Append one digest line and push it to the kernel: the writer may be
/// SIGKILLed at any later instant, and the parent must still see the line.
void write_digest_line(std::ofstream& os, std::uint64_t digest) {
  os << digest << '\n';
  os.flush();
}

std::vector<std::uint64_t> read_digest_file(const fs::path& p) {
  std::vector<std::uint64_t> out;
  std::ifstream is(p);
  std::uint64_t d = 0;
  while (is >> d) out.push_back(d);
  return out;
}

/// Uninterrupted reference campaign; digests to `out`, exits 0.
[[noreturn]] void child_reference(const fs::path& out) {
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(kThreads), testcampaign::kCampaignSeed);
  std::ofstream os(out);
  testcampaign::run_epochs(skyran, world, kEpochs, nullptr,
                           [&](int, std::uint64_t d) { write_digest_line(os, d); });
  _exit(kChildOk);
}

/// Checkpointed campaign with an armed crash point. Never returns normally:
/// either SIGKILL fires at the armed point (expected) or the campaign
/// finishes, which means the crash point never triggered — report that.
[[noreturn]] void child_crasher(const fs::path& ckpt_dir, const fs::path& out,
                                const char* point) {
  sim::arm_crash_point(point, kCrashHit);
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(kThreads), testcampaign::kCampaignSeed);
  core::SnapshotManager manager(ckpt_dir, 2);
  std::ofstream os(out);
  testcampaign::run_epochs(skyran, world, kEpochs, &manager,
                           [&](int, std::uint64_t d) { write_digest_line(os, d); });
  _exit(kChildSurvivedCrash);
}

/// Restore from the surviving generation and finish the campaign. First
/// line of `out` is the epoch resumed from; the rest are resume digests.
[[noreturn]] void child_resumer(const fs::path& ckpt_dir, const fs::path& out) {
  core::SnapshotManager manager(ckpt_dir, 2);
  const auto snap = manager.load_latest();
  if (!snap.has_value()) _exit(kChildNoCheckpoint);
  sim::World world(testcampaign::world_config());
  core::SkyRan skyran(world, testcampaign::skyran_config(kThreads), testcampaign::kCampaignSeed);
  skyran.restore(*snap);
  std::ofstream os(out);
  os << "resumed_from " << snap->epoch << '\n';
  os.flush();
  testcampaign::run_epochs(skyran, world, kEpochs, &manager,
                           [&](int, std::uint64_t d) { write_digest_line(os, d); });
  _exit(kChildOk);
}

/// Fork `body`; return the raw waitpid status.
template <typename Body>
int run_child(Body&& body) {
  const pid_t pid = fork();
  if (pid == 0) {
    body();            // [[noreturn]] paths only
    _exit(kChildOk);   // unreachable; silences -Wreturn-type style concerns
  }
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

class CrashRecoveryTest : public testing::TestWithParam<CrashCase> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("skyran_crash_" + case_name({GetParam(), 0}) + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "ckpt");
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_P(CrashRecoveryTest, KillAtPointResumesBitIdentical) {
  const CrashCase c = GetParam();
  const fs::path ref_file = dir_ / "ref.txt";
  const fs::path crash_file = dir_ / "crash.txt";
  const fs::path resume_file = dir_ / "resume.txt";
  const fs::path ckpt_dir = dir_ / "ckpt";

  // Reference: uninterrupted run.
  const int ref_status = run_child([&] { child_reference(ref_file); });
  ASSERT_TRUE(WIFEXITED(ref_status)) << "reference child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(ref_status), kChildOk);
  const std::vector<std::uint64_t> ref = read_digest_file(ref_file);
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kEpochs));

  // Crash: the armed point must SIGKILL the child, not let it finish.
  const int crash_status = run_child([&] { child_crasher(ckpt_dir, crash_file, c.point); });
  ASSERT_TRUE(WIFSIGNALED(crash_status))
      << "crash child exited with status "
      << (WIFEXITED(crash_status) ? WEXITSTATUS(crash_status) : -1)
      << " instead of dying at " << c.point;
  ASSERT_EQ(WTERMSIG(crash_status), SIGKILL);

  // The crashed run made real progress before dying: with hit=3, a
  // mid-epoch kill leaves digests 1..2 behind; a checkpoint-write kill
  // leaves 1..3 (epoch 3 completed, its checkpoint did not).
  const std::vector<std::uint64_t> pre_crash = read_digest_file(crash_file);
  ASSERT_EQ(pre_crash.size(), static_cast<std::size_t>(c.mid_epoch ? kCrashHit - 1 : kCrashHit));

  // Resume: fall back to the newest *valid* generation and finish.
  const int resume_status = run_child([&] { child_resumer(ckpt_dir, resume_file); });
  ASSERT_TRUE(WIFEXITED(resume_status)) << "resume child crashed";
  ASSERT_EQ(WEXITSTATUS(resume_status), kChildOk)
      << (WEXITSTATUS(resume_status) == kChildNoCheckpoint
              ? "no valid checkpoint generation survived the crash"
              : "resume child failed");

  std::ifstream rs(resume_file);
  std::string tag;
  int resumed_from = -1;
  ASSERT_TRUE(rs >> tag >> resumed_from);
  ASSERT_EQ(tag, "resumed_from");
  // Every case kills at the third visit, after epoch 2's checkpoint landed
  // and before epoch 3's did — the surviving generation is always epoch 2.
  ASSERT_EQ(resumed_from, 2);

  std::vector<std::uint64_t> resumed;
  std::uint64_t d = 0;
  while (rs >> d) resumed.push_back(d);
  ASSERT_EQ(resumed.size(), static_cast<std::size_t>(kEpochs - resumed_from));

  // Stitch: pre-crash digests up to the resumed epoch, then the resume run.
  // (After a checkpoint-write kill, crash.txt holds one MORE digest than
  // the surviving checkpoint covers — stitching must honor resumed_from.)
  std::vector<std::uint64_t> stitched(pre_crash.begin(),
                                      pre_crash.begin() + resumed_from);
  stitched.insert(stitched.end(), resumed.begin(), resumed.end());
  EXPECT_EQ(stitched, ref) << "resumed campaign diverged from the uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(
    AllPhases, CrashRecoveryTest,
    testing::Values(CrashCase{"epoch.localize", true}, CrashCase{"epoch.estimate", true},
                    CrashCase{"epoch.place", true}, CrashCase{"epoch.serve", true},
                    CrashCase{"ckpt.mid_write", false}, CrashCase{"ckpt.pre_rename", false}),
    case_name);

// ---------------------------------------------------------------------------
// fleet::Fleet kill-at-epoch.steer recovery. Same fork discipline: the
// parent never builds a fleet (Fleet::run_epoch spins up pool threads), so
// no threads exist at fork time. The fleet has no SnapshotManager; the
// campaign persists one save() file per completed epoch and the resume
// child restores the newest one that exists.
// ---------------------------------------------------------------------------

constexpr int kFleetEpochs = 5;

fs::path fleet_ckpt_path(const fs::path& dir, int epoch) {
  return dir / ("fleet-" + std::to_string(epoch) + ".bin");
}

/// Deterministic campaign fleet: a hot-spot pair with steering armed and a
/// marching UE that hands over mid-campaign, so the resumed epochs replay
/// CIO motion, A3 state and handovers — not just static membership.
fleet::Fleet make_campaign_fleet() {
  static const rf::FsplChannel fspl(2.6e9);
  fleet::FleetConfig cfg;
  cfg.seed = 0xF1EE7;
  cfg.threads = kThreads;
  cfg.ttis_per_epoch = 20;
  cfg.steering.period_epochs = 1;
  cfg.steering.step_db = 0.25;
  cfg.a3.time_to_trigger_epochs = 1;
  fleet::Fleet f(cfg, fspl);
  f.add_cell({0.0, 0.0, 60.0});
  f.add_cell({400.0, 0.0, 60.0});
  lte::TrafficSpec spec;
  spec.model = lte::TrafficModel::kCbr;
  spec.rate_bps = 3e5;
  for (int i = 0; i < 10; ++i) f.add_ue({40.0 + 12.0 * i, -30.0 + 6.0 * i, 1.5}, spec);
  f.add_ue({360.0, 20.0, 1.5}, spec);
  return f;
}

/// Mobility for epoch `e` as an absolute function of the epoch number, so a
/// resumed campaign replays positions identically: UE 0 marches across the
/// A3 boundary (handover around epoch 4).
void fleet_mobility(fleet::Fleet& f, int e) {
  f.set_ue_position(0, {40.0 + 60.0 * e, -30.0, 1.5});
}

/// One campaign epoch: mobility, epoch, digest line.
void fleet_epoch(fleet::Fleet& f, int e, std::ofstream& os) {
  fleet_mobility(f, e);
  f.run_epoch();  // SIGKILL fires here when epoch.steer is armed
  write_digest_line(os, f.state_hash());
}

[[noreturn]] void fleet_child_reference(const fs::path& out) {
  fleet::Fleet f = make_campaign_fleet();
  std::ofstream os(out);
  for (int e = 1; e <= kFleetEpochs; ++e) fleet_epoch(f, e, os);
  _exit(kChildOk);
}

[[noreturn]] void fleet_child_crasher(const fs::path& ckpt_dir, const fs::path& out,
                                      const char* point) {
  sim::arm_crash_point(point, kCrashHit);
  fleet::Fleet f = make_campaign_fleet();
  std::ofstream os(out);
  for (int e = 1; e <= kFleetEpochs; ++e) {
    fleet_epoch(f, e, os);
    const fs::path tmp = fleet_ckpt_path(ckpt_dir, e).concat(".tmp");
    {
      std::ofstream ck(tmp, std::ios::binary);
      f.save(ck);
    }
    fs::rename(tmp, fleet_ckpt_path(ckpt_dir, e));
  }
  _exit(kChildSurvivedCrash);
}

[[noreturn]] void fleet_child_resumer(const fs::path& ckpt_dir, const fs::path& out) {
  int latest = 0;
  for (int e = 1; e <= kFleetEpochs; ++e)
    if (fs::exists(fleet_ckpt_path(ckpt_dir, e))) latest = e;
  if (latest == 0) _exit(kChildNoCheckpoint);
  fleet::Fleet f = make_campaign_fleet();
  std::ifstream ck(fleet_ckpt_path(ckpt_dir, latest), std::ios::binary);
  f.restore(ck);
  std::ofstream os(out);
  os << "resumed_from " << latest << '\n';
  os.flush();
  for (int e = latest + 1; e <= kFleetEpochs; ++e) fleet_epoch(f, e, os);
  _exit(kChildOk);
}

class FleetCrashRecoveryTest : public testing::TestWithParam<CrashCase> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("skyran_fleet_crash_" + case_name({GetParam(), 0}) + "_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "ckpt");
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_P(FleetCrashRecoveryTest, KillAtPointResumesBitIdentical) {
  const CrashCase c = GetParam();
  const fs::path ref_file = dir_ / "ref.txt";
  const fs::path crash_file = dir_ / "crash.txt";
  const fs::path resume_file = dir_ / "resume.txt";
  const fs::path ckpt_dir = dir_ / "ckpt";

  const int ref_status = run_child([&] { fleet_child_reference(ref_file); });
  ASSERT_TRUE(WIFEXITED(ref_status)) << "reference child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(ref_status), kChildOk);
  const std::vector<std::uint64_t> ref = read_digest_file(ref_file);
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kFleetEpochs));

  const int crash_status =
      run_child([&] { fleet_child_crasher(ckpt_dir, crash_file, c.point); });
  ASSERT_TRUE(WIFSIGNALED(crash_status))
      << "crash child exited with status "
      << (WIFEXITED(crash_status) ? WEXITSTATUS(crash_status) : -1)
      << " instead of dying at " << c.point;
  ASSERT_EQ(WTERMSIG(crash_status), SIGKILL);

  // epoch.steer is inside run_epoch: the kill at visit 3 leaves digests and
  // saves for epochs 1..2 only.
  const std::vector<std::uint64_t> pre_crash = read_digest_file(crash_file);
  ASSERT_EQ(pre_crash.size(), static_cast<std::size_t>(kCrashHit - 1));

  const int resume_status = run_child([&] { fleet_child_resumer(ckpt_dir, resume_file); });
  ASSERT_TRUE(WIFEXITED(resume_status)) << "resume child crashed";
  ASSERT_EQ(WEXITSTATUS(resume_status), kChildOk)
      << (WEXITSTATUS(resume_status) == kChildNoCheckpoint
              ? "no fleet checkpoint survived the crash"
              : "fleet resume child failed");

  std::ifstream rs(resume_file);
  std::string tag;
  int resumed_from = -1;
  ASSERT_TRUE(rs >> tag >> resumed_from);
  ASSERT_EQ(tag, "resumed_from");
  ASSERT_EQ(resumed_from, kCrashHit - 1);

  std::vector<std::uint64_t> resumed;
  std::uint64_t d = 0;
  while (rs >> d) resumed.push_back(d);
  ASSERT_EQ(resumed.size(), static_cast<std::size_t>(kFleetEpochs - resumed_from));

  std::vector<std::uint64_t> stitched(pre_crash.begin(), pre_crash.begin() + resumed_from);
  stitched.insert(stitched.end(), resumed.begin(), resumed.end());
  EXPECT_EQ(stitched, ref) << "resumed fleet campaign diverged from the uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(FleetPhases, FleetCrashRecoveryTest,
                         testing::Values(CrashCase{"epoch.steer", true}), case_name);

// ---------------------------------------------------------------------------
// scenario::Campaign kill-at-hour.tick recovery. The reference child always
// runs serial; the crash/resume children run at the parameterized worker
// count (1 and 8), so the stitched per-hour digests and the final campaign
// digest prove both the resume contract and the serial == N-worker identity
// in one pass. Same fork discipline: only children construct campaigns
// (Campaign::run_hour spins up fleet pool threads).
// ---------------------------------------------------------------------------

constexpr int kCampaignHours = 4;

scenario::CampaignConfig crash_campaign_config(int threads) {
  scenario::CampaignConfig cfg = scenario::example_day_config(0xCA54ULL, 30, 2);
  cfg.hours = kCampaignHours;
  cfg.epochs_per_hour = 2;
  cfg.threads = threads;
  cfg.fleet.ttis_per_epoch = 20;
  cfg.base_rate_bps = 2e5;
  return cfg;
}

/// Uninterrupted serial reference: one hour_digest line per hour, then the
/// whole-campaign digest.
[[noreturn]] void campaign_child_reference(const fs::path& out) {
  scenario::Campaign campaign(crash_campaign_config(1));
  std::ofstream os(out);
  while (!campaign.done()) {
    write_digest_line(os, scenario::hour_digest(campaign.run_hour()));
  }
  write_digest_line(os, scenario::campaign_digest(campaign.report()));
  _exit(kChildOk);
}

[[noreturn]] void campaign_child_crasher(const fs::path& ckpt_dir, const fs::path& out,
                                         int threads) {
  sim::arm_crash_point("hour.tick", kCrashHit);
  scenario::Campaign campaign(crash_campaign_config(threads));
  scenario::CampaignCheckpointer ckpt(ckpt_dir, 2);
  std::ofstream os(out);
  while (!campaign.done()) {
    const scenario::HourReport hr = campaign.run_hour();
    write_digest_line(os, scenario::hour_digest(hr));
    ckpt.save(campaign);
  }
  _exit(kChildSurvivedCrash);
}

[[noreturn]] void campaign_child_resumer(const fs::path& ckpt_dir, const fs::path& out,
                                         int threads) {
  scenario::Campaign campaign(crash_campaign_config(threads));
  scenario::CampaignCheckpointer ckpt(ckpt_dir, 2);
  const std::optional<int> hour = ckpt.restore_latest(campaign);
  if (!hour.has_value()) _exit(kChildNoCheckpoint);
  std::ofstream os(out);
  os << "resumed_from " << *hour << '\n';
  os.flush();
  while (!campaign.done()) {
    write_digest_line(os, scenario::hour_digest(campaign.run_hour()));
  }
  write_digest_line(os, scenario::campaign_digest(campaign.report()));
  _exit(kChildOk);
}

class CampaignCrashRecoveryTest : public testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("skyran_campaign_crash_" + std::to_string(GetParam()) + "_" +
            std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_ / "ckpt");
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_P(CampaignCrashRecoveryTest, KillAtHourTickResumesBitIdentical) {
  const int workers = GetParam();
  const fs::path ref_file = dir_ / "ref.txt";
  const fs::path crash_file = dir_ / "crash.txt";
  const fs::path resume_file = dir_ / "resume.txt";
  const fs::path ckpt_dir = dir_ / "ckpt";

  const int ref_status = run_child([&] { campaign_child_reference(ref_file); });
  ASSERT_TRUE(WIFEXITED(ref_status)) << "reference child did not exit cleanly";
  ASSERT_EQ(WEXITSTATUS(ref_status), kChildOk);
  // kCampaignHours hour digests plus the final campaign digest.
  const std::vector<std::uint64_t> ref = read_digest_file(ref_file);
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kCampaignHours + 1));

  const int crash_status =
      run_child([&] { campaign_child_crasher(ckpt_dir, crash_file, workers); });
  ASSERT_TRUE(WIFSIGNALED(crash_status))
      << "crash child exited with status "
      << (WIFEXITED(crash_status) ? WEXITSTATUS(crash_status) : -1)
      << " instead of dying at hour.tick";
  ASSERT_EQ(WTERMSIG(crash_status), SIGKILL);

  // hour.tick is the last statement of run_hour: the kill at visit 3 fires
  // inside hour 3, so digests and checkpoints exist for hours 1..2 only.
  const std::vector<std::uint64_t> pre_crash = read_digest_file(crash_file);
  ASSERT_EQ(pre_crash.size(), static_cast<std::size_t>(kCrashHit - 1));

  const int resume_status =
      run_child([&] { campaign_child_resumer(ckpt_dir, resume_file, workers); });
  ASSERT_TRUE(WIFEXITED(resume_status)) << "resume child crashed";
  ASSERT_EQ(WEXITSTATUS(resume_status), kChildOk)
      << (WEXITSTATUS(resume_status) == kChildNoCheckpoint
              ? "no campaign checkpoint survived the crash"
              : "campaign resume child failed");

  std::ifstream rs(resume_file);
  std::string tag;
  int resumed_from = -1;
  ASSERT_TRUE(rs >> tag >> resumed_from);
  ASSERT_EQ(tag, "resumed_from");
  ASSERT_EQ(resumed_from, kCrashHit - 1);

  std::vector<std::uint64_t> resumed;
  std::uint64_t d = 0;
  while (rs >> d) resumed.push_back(d);
  ASSERT_EQ(resumed.size(), static_cast<std::size_t>(kCampaignHours - resumed_from + 1));

  // Stitch pre-crash hour digests with the resumed hours and final digest;
  // the whole line must match the uninterrupted serial reference.
  std::vector<std::uint64_t> stitched(pre_crash.begin(), pre_crash.begin() + resumed_from);
  stitched.insert(stitched.end(), resumed.begin(), resumed.end());
  EXPECT_EQ(stitched, ref) << "resumed campaign diverged from the uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CampaignCrashRecoveryTest, testing::Values(1, 8),
                         [](const testing::TestParamInfo<int>& info) {
                           return info.param == 1 ? std::string("serial")
                                                  : "workers" + std::to_string(info.param);
                         });

}  // namespace
