// Tests for the LTE PHY substrate: FFT engine, Zadoff-Chu sequences, SRS
// symbol construction, the zero-pad upsampler and the ToF estimator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "geo/contract.hpp"
#include "lte/fft.hpp"
#include "lte/ranging.hpp"
#include "lte/sampling.hpp"
#include "lte/srs.hpp"
#include "lte/srs_channel.hpp"
#include "lte/zadoff_chu.hpp"
#include "rf/units.hpp"

namespace skyran::lte {
namespace {

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(1536));
  EXPECT_EQ(next_power_of_two(1000), 1024u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1), 1u);
}

TEST(FftTest, DeltaTransformsToConstant) {
  CplxVec x(8, Cplx{});
  x[0] = 1.0;
  const CplxVec y = fft(x);
  for (const Cplx& v : y) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  CplxVec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::polar(1.0, 2.0 * std::numbers::pi * 5.0 * i / n);
  const CplxVec y = fft(x);
  EXPECT_EQ(max_abs_index(y), 5u);
  EXPECT_NEAR(std::abs(y[5]), static_cast<double>(n), 1e-9);
}

TEST(FftTest, ForwardInverseRoundTrip) {
  std::mt19937_64 rng(1);
  std::normal_distribution<double> g(0.0, 1.0);
  for (const std::size_t n : {std::size_t{16}, std::size_t{1024}}) {
    CplxVec x(n);
    for (Cplx& v : x) v = Cplx(g(rng), g(rng));
    const CplxVec y = ifft(fft(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y[i].real(), x[i].real(), 1e-9);
      EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-9);
    }
  }
}

TEST(FftTest, BluesteinMatchesDirectDft) {
  // Size 12 (not a power of two) exercises the chirp-z path.
  const std::size_t n = 12;
  std::mt19937_64 rng(2);
  std::normal_distribution<double> g(0.0, 1.0);
  CplxVec x(n);
  for (Cplx& v : x) v = Cplx(g(rng), g(rng));
  const CplxVec y = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    Cplx direct{};
    for (std::size_t i = 0; i < n; ++i)
      direct += x[i] * std::polar(1.0, -2.0 * std::numbers::pi * k * i / n);
    EXPECT_NEAR(y[k].real(), direct.real(), 1e-9);
    EXPECT_NEAR(y[k].imag(), direct.imag(), 1e-9);
  }
}

TEST(FftTest, BluesteinRoundTripSize1536) {
  // The 15 MHz LTE FFT size.
  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(0.0, 1.0);
  CplxVec x(1536);
  for (Cplx& v : x) v = Cplx(g(rng), g(rng));
  const CplxVec y = ifft(fft(x));
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) worst = std::max(worst, std::abs(y[i] - x[i]));
  EXPECT_LT(worst, 1e-8);
}

TEST(FftTest, ParsevalHolds) {
  std::mt19937_64 rng(4);
  std::normal_distribution<double> g(0.0, 1.0);
  CplxVec x(256);
  for (Cplx& v : x) v = Cplx(g(rng), g(rng));
  double time_energy = 0.0;
  for (const Cplx& v : x) time_energy += std::norm(v);
  const CplxVec y = fft(x);
  double freq_energy = 0.0;
  for (const Cplx& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / x.size(), time_energy, 1e-6);
}

TEST(FftTest, EmptyInputThrows) {
  CplxVec empty;
  EXPECT_THROW(fft_inplace(empty), ContractViolation);
  EXPECT_THROW(max_abs_index(empty), ContractViolation);
}

TEST(FftTest, MultiplyConjugateSizeMismatch) {
  CplxVec a(4), b(5);
  EXPECT_THROW(multiply_conjugate(a, b), ContractViolation);
}

TEST(ZadoffChuTest, PrimeHelper) {
  EXPECT_EQ(largest_prime_not_above(288), 283u);
  EXPECT_EQ(largest_prime_not_above(13), 13u);
  EXPECT_EQ(largest_prime_not_above(2), 2u);
  EXPECT_THROW(largest_prime_not_above(1), ContractViolation);
}

TEST(ZadoffChuTest, ConstantAmplitude) {
  const CplxVec zc = zadoff_chu(5, 139);
  for (const Cplx& v : zc) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(ZadoffChuTest, ZeroAutocorrelation) {
  // CAZAC property: cyclic autocorrelation is zero at all nonzero lags.
  const std::uint32_t n = 139;
  const CplxVec zc = zadoff_chu(7, n);
  for (const std::uint32_t lag : {1u, 5u, 60u}) {
    Cplx acc{};
    for (std::uint32_t i = 0; i < n; ++i) acc += zc[i] * std::conj(zc[(i + lag) % n]);
    EXPECT_NEAR(std::abs(acc), 0.0, 1e-9) << "lag " << lag;
  }
}

TEST(ZadoffChuTest, DifferentRootsLowCrossCorrelation) {
  const std::uint32_t n = 139;
  const CplxVec a = zadoff_chu(3, n);
  const CplxVec b = zadoff_chu(4, n);
  Cplx acc{};
  for (std::uint32_t i = 0; i < n; ++i) acc += a[i] * std::conj(b[i]);
  // Prime-length ZC cross-correlation is 1/sqrt(N) of the peak.
  EXPECT_NEAR(std::abs(acc), std::sqrt(static_cast<double>(n)), 1.0);
}

TEST(ZadoffChuTest, RejectsBadParameters) {
  EXPECT_THROW(zadoff_chu(0, 139), ContractViolation);
  EXPECT_THROW(zadoff_chu(139, 139), ContractViolation);
  EXPECT_THROW(zadoff_chu(5, 140), ContractViolation);  // not prime
}

TEST(ZadoffChuTest, BaseSequenceCyclicExtension) {
  const CplxVec seq = base_sequence(2, 144);
  ASSERT_EQ(seq.size(), 144u);
  // Extension repeats the first elements (Nzc = 139).
  EXPECT_EQ(seq[139], seq[0]);
  EXPECT_EQ(seq[143], seq[4]);
}

TEST(SamplingTest, StandardBandwidthTable) {
  const BandwidthConfig c10 = bandwidth_config(10.0);
  EXPECT_EQ(c10.n_prb, 50);
  EXPECT_EQ(c10.fft_size, 1024u);
  EXPECT_DOUBLE_EQ(c10.sample_rate_hz, 15.36e6);
  EXPECT_NEAR(c10.meters_per_sample(), 19.52, 0.01);
  EXPECT_EQ(bandwidth_config(20.0).fft_size, 2048u);
  EXPECT_EQ(bandwidth_config(1.4).n_prb, 6);
  EXPECT_THROW(bandwidth_config(7.0), ContractViolation);
}

TEST(SrsTest, OccupiedSubcarriersCombAndDc) {
  SrsConfig cfg;
  cfg.sounding_prb = 4;
  cfg.comb = 2;
  const std::vector<int> res = occupied_subcarriers(cfg);
  EXPECT_EQ(res.size(), 24u);
  for (int sc : res) {
    EXPECT_NE(sc, 0);  // DC never transmitted
    EXPECT_EQ(((sc < 0 ? -sc : sc) + 24) % 1, 0);
  }
  // Comb spacing: consecutive entries differ by the comb.
  EXPECT_EQ(res[1] - res[0], 2);
}

TEST(SrsTest, SymbolEnergyOnOccupiedBinsOnly) {
  SrsConfig cfg;
  const SrsSymbol sym = make_srs_symbol(cfg);
  ASSERT_EQ(sym.freq.size(), cfg.carrier.fft_size);
  std::size_t nonzero = 0;
  for (const Cplx& v : sym.freq)
    if (std::abs(v) > 1e-12) {
      ++nonzero;
      EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
    }
  EXPECT_EQ(nonzero, static_cast<std::size_t>(cfg.occupied_res()));
}

TEST(SrsTest, FftBinMapsSignedIndices) {
  EXPECT_EQ(fft_bin(1, 1024), 1u);
  EXPECT_EQ(fft_bin(-1, 1024), 1023u);
  EXPECT_EQ(fft_bin(-288, 1024), 736u);
  EXPECT_THROW(fft_bin(0, 1024), ContractViolation);
  EXPECT_THROW(fft_bin(512, 1024), ContractViolation);
}

TEST(SrsTest, UpsampleZeroPadPreservesHalves) {
  CplxVec freq(8);
  for (std::size_t i = 0; i < 8; ++i) freq[i] = Cplx(static_cast<double>(i + 1), 0.0);
  const CplxVec up = upsample_zero_pad(freq, 2);
  ASSERT_EQ(up.size(), 16u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(up[i], freq[i]);            // positive half
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(up[12 + i], freq[4 + i]);   // negative half
  for (std::size_t i = 4; i < 12; ++i) EXPECT_EQ(up[i], Cplx{});            // zeros inserted
}

TEST(SrsTest, UpsampleFactorOneIsIdentity) {
  CplxVec freq(8, Cplx(1.0, -2.0));
  EXPECT_EQ(upsample_zero_pad(freq, 1), freq);
}

TEST(SrsChannelTest, NoiselessDelayOnly) {
  SrsConfig cfg;
  const SrsSymbol tx = make_srs_symbol(cfg);
  SrsChannelParams ch;
  ch.delay_s = 0.0;
  ch.snr_db = 200.0;  // effectively noiseless
  std::mt19937_64 rng(5);
  const SrsSymbol rx = apply_srs_channel(tx, ch, rng);
  for (std::size_t i = 0; i < rx.freq.size(); ++i)
    EXPECT_NEAR(std::abs(rx.freq[i] - tx.freq[i]), 0.0, 1e-6);
}

TEST(SrsChannelTest, NlosTapsHaveConfiguredShape) {
  std::mt19937_64 rng(6);
  const auto taps = make_nlos_taps(4, 50e-9, -3.0, 2.0, rng);
  ASSERT_EQ(taps.size(), 4u);
  for (std::size_t i = 0; i < taps.size(); ++i) {
    EXPECT_GE(taps[i].excess_delay_s, 0.0);
    EXPECT_DOUBLE_EQ(taps[i].power_db, -3.0 - 2.0 * static_cast<double>(i));
  }
  EXPECT_TRUE(make_nlos_taps(0, 50e-9, -3.0, 2.0, rng).empty());
}

TEST(TofTest, ExactSampleDelays) {
  SrsConfig cfg;
  const SrsSymbol tx = make_srs_symbol(cfg);
  const TofEstimator est(cfg, 4);
  std::mt19937_64 rng(7);
  for (const double delay_samples : {0.0, 3.0, 10.0, 40.0}) {
    SrsChannelParams ch;
    ch.delay_s = delay_samples / cfg.carrier.sample_rate_hz;
    ch.snr_db = 30.0;
    const TofEstimate e = est.estimate(apply_srs_channel(tx, ch, rng));
    EXPECT_NEAR(e.delay_samples, delay_samples, 0.3) << delay_samples;
  }
}

TEST(TofTest, SubSampleResolution) {
  SrsConfig cfg;
  const SrsSymbol tx = make_srs_symbol(cfg);
  const TofEstimator est(cfg, 4);
  std::mt19937_64 rng(8);
  // 7.3 samples: between grid points even after 4x upsampling.
  const double want = 7.3;
  SrsChannelParams ch;
  ch.delay_s = want / cfg.carrier.sample_rate_hz;
  ch.snr_db = 25.0;
  const TofEstimate e = est.estimate(apply_srs_channel(tx, ch, rng));
  EXPECT_NEAR(e.delay_samples, want, 0.15);
  EXPECT_NEAR(e.distance_m, want * cfg.carrier.meters_per_sample(), 3.0);
}

TEST(TofTest, PeakRemainsDetectableAtLowSnr) {
  // The correlator's processing gain (~25 dB for 288 REs) keeps the peak
  // usable well below the data-decode threshold; delay estimates stay sane
  // even at -10 dB subcarrier SNR.
  SrsConfig cfg;
  const SrsSymbol tx = make_srs_symbol(cfg);
  const TofEstimator est(cfg, 4);
  std::mt19937_64 rng(9);
  for (const double snr : {20.0, 0.0, -10.0}) {
    SrsChannelParams ch;
    ch.delay_s = 5e-7;
    ch.snr_db = snr;
    const TofEstimate e = est.estimate(apply_srs_channel(tx, ch, rng));
    EXPECT_GT(e.peak_to_side_db, 10.0) << "snr " << snr;
    EXPECT_NEAR(e.delay_s, 5e-7, 5e-8) << "snr " << snr;
  }
}

TEST(TofTest, WindowContractEnforced) {
  SrsConfig cfg;
  // Window beyond the comb alias period is rejected.
  EXPECT_THROW(TofEstimator(cfg, 4, 1024.0), ContractViolation);
  EXPECT_NO_THROW(TofEstimator(cfg, 4, 256.0));
  EXPECT_THROW(TofEstimator(cfg, 0), ContractViolation);
}

TEST(TofTest, MismatchedSymbolSizeRejected) {
  const TofEstimator est(SrsConfig{}, 4);
  SrsSymbol wrong;
  wrong.config = SrsConfig{};
  wrong.freq.assign(512, Cplx{});
  EXPECT_THROW(est.estimate(wrong), ContractViolation);
}

// ---------------------------------------------------------------------------
// Golden vectors. The constants below were computed once with this repo's
// reference implementation and hardcoded; they pin the exact numerics of the
// DSP chain so that later rewrites (SIMD, parallel, alternative FFTs) cannot
// silently change results. The ZC values also match the analytic formula
// exp(-i*pi*u*k*(k+1)/N) for odd N.
// ---------------------------------------------------------------------------

void expect_cplx_near(const Cplx& got, double re, double im, double tol) {
  EXPECT_NEAR(got.real(), re, tol);
  EXPECT_NEAR(got.imag(), im, tol);
}

TEST(GoldenVectorTest, ZadoffChuRoot25Length139) {
  const CplxVec zc = zadoff_chu(25, 139);
  ASSERT_EQ(zc.size(), 139u);
  constexpr double kTol = 1e-12;
  expect_cplx_near(zc[0], 1.0, 0.0, kTol);
  expect_cplx_near(zc[1], 0.426597131274425, -0.90444175466882937, kTol);
  expect_cplx_near(zc[2], -0.96925408626555865, 0.24606201709633482, kTol);
  expect_cplx_near(zc[69], -0.60051059140004859, -0.79961680173465832, kTol);
  // Symmetry of ZC sequences with odd N: zc[N-1-k] == zc[k].
  expect_cplx_near(zc[137], 0.426597131274425, -0.90444175466882937, kTol);
  expect_cplx_near(zc[138], 1.0, 0.0, kTol);
}

TEST(GoldenVectorTest, DefaultSrsSymbolOccupiedBins) {
  const SrsConfig cfg;
  const SrsSymbol sym = make_srs_symbol(cfg);
  ASSERT_EQ(sym.freq.size(), 1024u);
  ASSERT_EQ(cfg.occupied_res(), 288);
  const std::vector<int> res = occupied_subcarriers(cfg);
  ASSERT_EQ(res.front(), -288);
  ASSERT_EQ(res.back(), 287);
  constexpr double kTol = 1e-12;
  // bin = fft_bin(subcarrier, 1024) for the first, second, middle and last
  // occupied subcarriers.
  expect_cplx_near(sym.freq[736], 1.0, 0.0, kTol);                                    // sc -288
  expect_cplx_near(sym.freq[738], 0.99975354420738005, -0.022200244250505659, kTol);  // sc -286
  expect_cplx_near(sym.freq[1], 0.77234980784283547, 0.63519742940690105, kTol);      // sc 1
  expect_cplx_near(sym.freq[287], 0.97545448453831651, -0.22020115484276487, kTol);   // sc 287
}

TEST(GoldenVectorTest, Fft16FixedInput) {
  CplxVec x(16);
  for (int i = 0; i < 16; ++i)
    x[i] = Cplx(std::cos(0.7 * i) + 0.1 * i, std::sin(0.4 * i) - 0.05 * i);
  const CplxVec y = fft(x);
  ASSERT_EQ(y.size(), 16u);
  constexpr double kTol = 1e-12;
  // All 16 bins of the radix-2 path for a fixed deterministic input.
  expect_cplx_near(y[0], 11.057262920633585, -6.0414646767974762, kTol);
  expect_cplx_near(y[1], 7.5383990289373699, 5.7932780823997296, kTol);
  expect_cplx_near(y[2], 5.8344723217076826, -2.6136522961303599, kTol);
  expect_cplx_near(y[3], 0.92245428286883402, 0.57316619858292506, kTol);
  expect_cplx_near(y[4], 0.34760358601145352, 0.61926537712625551, kTol);
  expect_cplx_near(y[5], 0.099327398672243689, 0.55441779844798833, kTol);
  expect_cplx_near(y[6], -0.046850474944800879, 0.48084775310473171, kTol);
  expect_cplx_near(y[7], -0.14725543222088255, 0.40983199555696004, kTol);
  expect_cplx_near(y[8], -0.22278854558758709, 0.34103465489449247, kTol);
  expect_cplx_near(y[9], -0.28221031933678953, 0.27218031547788524, kTol);
  expect_cplx_near(y[10], -0.3276044692909692, 0.2009730394858722, kTol);
  expect_cplx_near(y[11], -0.35262461216320218, 0.12699738482375419, kTol);
  expect_cplx_near(y[12], -0.32585842615782173, 0.061304047889064572, kTol);
  expect_cplx_near(y[13], -0.074826774804440305, 0.1053551235926149, kTol);
  expect_cplx_near(y[14], 4.2882901157104536, 3.2846989530067785, kTol);
  expect_cplx_near(y[15], -12.30779060003513, -4.1682337514612167, kTol);
}

TEST(GoldenVectorTest, TofChainFixedFractionalDelay) {
  // End-to-end chain (SRS synthesis -> channel -> correlator) with a fixed
  // fractional delay of 17.37 samples, near-infinite SNR and a fixed seed.
  const SrsConfig cfg;
  const SrsSymbol tx = make_srs_symbol(cfg);
  SrsChannelParams ch;
  ch.delay_s = 17.37 / cfg.carrier.sample_rate_hz;
  ch.snr_db = 300.0;
  std::mt19937_64 rng(123);
  const TofEstimate e = TofEstimator(cfg, 4).estimate(apply_srs_channel(tx, ch, rng));
  EXPECT_NEAR(e.delay_samples, 17.369906871660298, 1e-9);
  EXPECT_NEAR(e.peak_to_side_db, 22.193243916033317, 1e-6);
}

/// Ranging accuracy sweep over bandwidth: wider carriers range better.
class TofBandwidth : public ::testing::TestWithParam<double> {};

TEST_P(TofBandwidth, MedianErrorWithinTwoSamples) {
  SrsConfig cfg;
  cfg.carrier = bandwidth_config(GetParam());
  cfg.sounding_prb = std::min(cfg.carrier.n_prb, 48);
  const SrsSymbol tx = make_srs_symbol(cfg);
  const TofEstimator est(cfg, 4);
  std::mt19937_64 rng(10);
  const double true_dist = 180.0;
  double worst = 0.0;
  for (int i = 0; i < 10; ++i) {
    SrsChannelParams ch;
    ch.delay_s = true_dist / rf::kSpeedOfLight;
    ch.snr_db = 15.0;
    const TofEstimate e = est.estimate(apply_srs_channel(tx, ch, rng));
    worst = std::max(worst, std::abs(e.distance_m - true_dist));
  }
  EXPECT_LT(worst, 2.0 * cfg.carrier.meters_per_sample());
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, TofBandwidth, ::testing::Values(5.0, 10.0, 20.0));

/// Upsampling-factor sweep (paper's K, eq. 2-3): resolution improves with K.
class TofUpsampling : public ::testing::TestWithParam<int> {};

TEST_P(TofUpsampling, QuantizationShrinksWithK) {
  SrsConfig cfg;
  const SrsSymbol tx = make_srs_symbol(cfg);
  const TofEstimator est(cfg, GetParam(), 0.0, 0.0, false);  // pure eq. 3, no refinement
  std::mt19937_64 rng(11);
  double worst = 0.0;
  for (double frac = 0.05; frac < 1.0; frac += 0.13) {
    SrsChannelParams ch;
    ch.delay_s = (20.0 + frac) / cfg.carrier.sample_rate_hz;
    ch.snr_db = 40.0;
    const TofEstimate e = est.estimate(apply_srs_channel(tx, ch, rng));
    worst = std::max(worst, std::abs(e.delay_samples - (20.0 + frac)));
  }
  // Pure maxpos quantizes to 1/K sample.
  EXPECT_LE(worst, 0.5 / GetParam() + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Factors, TofUpsampling, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace skyran::lte
