// Tests for the simulation harness: world, ground truth, measurement-flight
// execution, the baseline schemes and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "geo/contract.hpp"
#include "mobility/deployment.hpp"
#include "sim/baselines.hpp"
#include "sim/ground_truth.hpp"
#include "sim/measurement.hpp"
#include "sim/table.hpp"
#include "sim/world.hpp"
#include "uav/trajectory.hpp"

namespace skyran::sim {
namespace {

World make_campus_world(std::uint64_t seed, int ues = 4) {
  WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kCampus;
  wc.seed = seed;
  World world(wc);
  world.ue_positions() = mobility::deploy_mixed_visibility(world.terrain(), ues, seed + 1);
  return world;
}

TEST(WorldTest, SnrConsistentWithChannelAndBudget) {
  const World world = make_campus_world(5);
  const geo::Vec3 uav{150.0, 150.0, 60.0};
  const geo::Vec3 ue = world.ue_positions()[0];
  const double pl = world.channel().path_loss_db(uav, ue);
  EXPECT_DOUBLE_EQ(world.snr_db(uav, ue), world.budget().snr_db(pl));
  EXPECT_DOUBLE_EQ(world.link_throughput_bps(uav, ue),
                   lte::throughput_bps(world.snr_db(uav, ue), world.carrier()));
}

TEST(WorldTest, MeanAndMinAggregates) {
  World world = make_campus_world(5, 3);
  const geo::Vec3 uav{150.0, 150.0, 60.0};
  double sum = 0.0;
  double mn = 1e18;
  for (const geo::Vec3& ue : world.ue_positions()) {
    sum += world.link_throughput_bps(uav, ue);
    mn = std::min(mn, world.snr_db(uav, ue));
  }
  EXPECT_DOUBLE_EQ(world.mean_throughput_bps(uav), sum / 3.0);
  EXPECT_DOUBLE_EQ(world.min_snr_db(uav), mn);
  world.ue_positions().clear();
  EXPECT_THROW(world.mean_throughput_bps(uav), ContractViolation);
}

TEST(WorldTest, ExternalTerrainConstructor) {
  auto t = std::make_shared<const terrain::Terrain>(terrain::make_flat(100.0));
  WorldConfig wc;
  const World world(t, wc);
  EXPECT_DOUBLE_EQ(world.area().width(), 100.0);
  EXPECT_THROW(World(nullptr, wc), ContractViolation);
}

TEST(GroundTruthTest, RemMatchesDirectQuery) {
  const World world = make_campus_world(6);
  const geo::Vec3 ue = world.ue_positions()[0];
  const geo::Grid2D<double> rem = ground_truth_rem(world, ue, 60.0, 10.0);
  const geo::CellIndex c{7, 11};
  EXPECT_DOUBLE_EQ(rem.at(c), world.snr_db(geo::Vec3{rem.center_of(c), 60.0}, ue));
}

TEST(GroundTruthTest, OptimalBeatsRandomPositions) {
  const World world = make_campus_world(6);
  const GroundTruth truth = compute_ground_truth(world, 60.0, 10.0);
  // The max-min optimum's min-SNR beats arbitrary positions' min-SNR.
  for (const geo::Vec2 p : {geo::Vec2{20.0, 20.0}, geo::Vec2{280.0, 280.0}}) {
    EXPECT_GE(truth.optimal.objective_snr_db + 1e-9,
              world.min_snr_db(geo::Vec3{p, 60.0}) - 1.0);
  }
  // Max-mean throughput bound dominates the max-min position's throughput.
  EXPECT_GE(truth.max_mean_throughput_bps + 1e-6, truth.optimal_mean_throughput_bps);
  EXPECT_DOUBLE_EQ(truth.altitude_m, 60.0);
}

TEST(GroundTruthTest, RelativeThroughputAtOptimumIsOne) {
  const World world = make_campus_world(7);
  const GroundTruth truth = compute_ground_truth(world, 60.0, 10.0);
  EXPECT_NEAR(relative_throughput(world, truth, truth.optimal.position), 1.0, 1e-9);
}

TEST(MeasurementTest, ReportsLandInRems) {
  const World world = make_campus_world(8);
  std::vector<rem::Rem> rems;
  for (const geo::Vec3& ue : world.ue_positions())
    rems.emplace_back(world.area(), 5.0, 60.0, ue);
  const geo::Path track({{50.0, 50.0}, {250.0, 50.0}});
  const uav::FlightPlan plan = uav::FlightPlan::at_altitude(track, 60.0);
  std::mt19937_64 rng(9);
  const std::size_t reports = run_measurement_flight(world, plan, rems, {}, rng);
  EXPECT_GT(reports, 100u);  // 200 m at 30 km/h and 100 Hz -> ~2400 reports
  for (const rem::Rem& r : rems) {
    EXPECT_GT(r.measured_cells(), 30u);
    // Measured cells hug the flown row (y = 50 +- cell).
    r.estimate();  // must not throw
  }
}

TEST(MeasurementTest, MeasuredSnrNearTruth) {
  // Flat terrain: no obstruction edges, so a cell's center and the flight
  // line through it see near-identical channels.
  WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kFlat;
  wc.seed = 8;
  World world(wc);
  world.ue_positions() = {geo::Vec3{120.0, 120.0, 1.5}};
  std::vector<rem::Rem> rems;
  rems.emplace_back(world.area(), 5.0, 60.0, world.ue_positions()[0]);
  const geo::Path track({{50.0, 150.0}, {250.0, 150.0}});
  std::mt19937_64 rng(10);
  MeasurementConfig cfg;
  cfg.fading_sigma_db = 0.5;
  run_measurement_flight(world, uav::FlightPlan::at_altitude(track, 60.0), rems, cfg, rng);
  // Compare a measured cell with the direct channel query.
  const geo::Vec2 probe{150.0, 150.0};
  const auto cell = rems[0].estimate().cell_of(probe);
  const double measured = rems[0].estimate().at(cell);
  const double truth =
      world.snr_db(geo::Vec3{rems[0].estimate().center_of(cell), 60.0},
                   world.ue_positions()[0]);
  EXPECT_NEAR(measured, truth, 2.0);
}

TEST(MeasurementTest, Contracts) {
  const World world = make_campus_world(8);
  std::vector<rem::Rem> none;
  const uav::FlightPlan plan =
      uav::FlightPlan::at_altitude(geo::Path({{0.0, 0.0}, {10.0, 0.0}}), 60.0);
  std::mt19937_64 rng(1);
  EXPECT_THROW(run_measurement_flight(world, plan, none, {}, rng), ContractViolation);
  std::vector<rem::Rem> wrong_count;
  wrong_count.emplace_back(world.area(), 5.0, 60.0, world.ue_positions()[0]);
  wrong_count.emplace_back(world.area(), 5.0, 60.0, world.ue_positions()[1]);
  wrong_count.emplace_back(world.area(), 5.0, 60.0, world.ue_positions()[1]);
  if (world.ue_positions().size() != 3) {
    EXPECT_THROW(run_measurement_flight(world, plan, wrong_count, {}, rng), ContractViolation);
  }
}

TEST(BaselineTest, UniformSpendsItsBudget) {
  const World world = make_campus_world(11);
  UniformConfig cfg;
  cfg.budget_m = 500.0;
  const SchemeResult r = run_uniform(world, cfg, 12);
  EXPECT_NEAR(r.flight_length_m, 500.0, 1.0);
  EXPECT_EQ(r.rems.size(), world.ue_positions().size());
  EXPECT_TRUE(world.area().contains(r.position));
  // Placement is feasible (not on the office roof).
  EXPECT_LT(world.terrain().surface_height(r.position) + 10.0, cfg.altitude_m + 1e-9);
}

TEST(BaselineTest, UniformDeterministicInSeed) {
  const World world = make_campus_world(11);
  UniformConfig cfg;
  const SchemeResult a = run_uniform(world, cfg, 12);
  const SchemeResult b = run_uniform(world, cfg, 12);
  EXPECT_EQ(a.position, b.position);
}

TEST(BaselineTest, CentroidIsGeometricMean) {
  const std::vector<geo::Vec2> ues{{0.0, 0.0}, {100.0, 0.0}, {50.0, 90.0}};
  const SchemeResult r = run_centroid(ues, 60.0, geo::Rect::square(300.0));
  EXPECT_NEAR(r.position.x, 50.0, 1e-9);
  EXPECT_NEAR(r.position.y, 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.flight_length_m, 0.0);
  EXPECT_THROW(run_centroid({}, 60.0, geo::Rect::square(10.0)), ContractViolation);
}

TEST(BaselineTest, CentroidClampedToArea) {
  const std::vector<geo::Vec2> ues{{-50.0, -50.0}, {-60.0, -40.0}};
  const SchemeResult r = run_centroid(ues, 60.0, geo::Rect::square(100.0));
  EXPECT_TRUE(geo::Rect::square(100.0).contains(r.position));
}

TEST(BaselineTest, RandomInsideArea) {
  const World world = make_campus_world(11);
  for (int s = 0; s < 5; ++s)
    EXPECT_TRUE(world.area().contains(run_random(world, 60.0, s).position));
}

TEST(TableTest, AlignsAndFormats) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(1.234, 2)});
  t.add_row({"very-long-name", Table::num(10.0, 0)});
  t.add_row({"short"});  // missing cell prints empty
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("very-long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(Table::num(2.5, 0), "2");  // bankers-free fixed formatting
  std::ostringstream banner;
  print_banner(banner, "Figure 1");
  EXPECT_NE(banner.str().find("== Figure 1 =="), std::string::npos);
}

/// Uniform baseline budget sweep: more budget never hurts REM coverage.
class UniformBudget : public ::testing::TestWithParam<double> {};

TEST_P(UniformBudget, MeasuredCellsGrowWithBudget) {
  const World world = make_campus_world(13, 2);
  UniformConfig small;
  small.budget_m = GetParam();
  UniformConfig big;
  big.budget_m = GetParam() * 2.0;
  const SchemeResult a = run_uniform(world, small, 3);
  const SchemeResult b = run_uniform(world, big, 3);
  EXPECT_GE(b.rems[0].measured_cells() + 5, a.rems[0].measured_cells());
}

INSTANTIATE_TEST_SUITE_P(Budgets, UniformBudget, ::testing::Values(200.0, 400.0, 800.0));

}  // namespace
}  // namespace skyran::sim
