// Tests for the observability subsystem (src/obs): registry semantics,
// histogram bucketing/quantiles, TraceSpan nesting and epoch tagging, JSON
// exporter round-trip through a test-side parser, thread-safety of
// recording from inside parallel_for bodies (run under TSan in CI), and the
// disabled-mode contract — instrumentation on or off, simulation outputs
// are bit-identical.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/skyran.hpp"
#include "core/thread_pool.hpp"
#include "mobility/deployment.hpp"
#include "obs/obs.hpp"

namespace skyran::obs {
namespace {

/// Every test starts from a clean, disabled state and leaves it that way:
/// the registry/journal are process-wide, so leaked state would couple tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    MetricsRegistry::instance().reset_values();
    TraceJournal::instance().clear();
    set_current_epoch(0);
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::instance().reset_values();
    TraceJournal::instance().clear();
    set_current_epoch(0);
  }
};

TEST_F(ObsTest, CounterSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(ObsTest, HistogramMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Log buckets are a factor of two wide: the quantile is bucket-accurate.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 100.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 50.0);
  EXPECT_LE(p99, 100.0);
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST_F(ObsTest, HistogramBucketLayout) {
  // Zero and negatives land in the underflow bucket; positives in the
  // bucket whose [2^k, 2^k+1) range contains them; bounds are monotone.
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-5.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1.0), Histogram::kExponentOffset);
  EXPECT_EQ(Histogram::bucket_of(1.5), Histogram::kExponentOffset);
  EXPECT_EQ(Histogram::bucket_of(2.0), Histogram::kExponentOffset + 1);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
  for (int b = 1; b < Histogram::kBuckets; ++b)
    EXPECT_GT(Histogram::bucket_lower_bound(b), Histogram::bucket_lower_bound(b - 1));
  Histogram h;
  h.observe(3.0);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[static_cast<std::size_t>(Histogram::bucket_of(3.0))], 1u);
}

TEST_F(ObsTest, RegistryPointerStabilityAndReset) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  Counter& a = reg.counter("test.registry.counter");
  Counter& b = reg.counter("test.registry.counter");
  EXPECT_EQ(&a, &b);  // same name -> same metric
  a.add(7);
  Histogram& h = reg.histogram("test.registry.histogram");
  h.observe(1.0);
  reg.reset_values();
  // References stay valid after reset (macros cache them in statics).
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.counter("test.registry.counter"), &a);
}

TEST_F(ObsTest, MacrosAreInertWhenDisabled) {
  ASSERT_FALSE(enabled());
  SKYRAN_COUNTER_INC("test.macro.counter");
  SKYRAN_GAUGE_SET("test.macro.gauge", 3.0);
  SKYRAN_HISTOGRAM_OBSERVE("test.macro.histogram", 3.0);
  { SKYRAN_TRACE_SPAN("test.macro.span"); }
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  for (const auto& c : snap.counters) EXPECT_EQ(c.value, 0u) << c.name;
  for (const auto& h : snap.histograms) EXPECT_EQ(h.count, 0u) << h.name;
  EXPECT_EQ(TraceJournal::instance().size(), 0u);
}

TEST_F(ObsTest, MacrosRecordWhenEnabled) {
#ifdef SKYRAN_OBS_DISABLED
  GTEST_SKIP() << "obs macros compiled out (-DSKYRAN_OBS_DISABLED)";
#endif
  set_enabled(true);
  SKYRAN_COUNTER_ADD("test.macro.counter", 3);
  SKYRAN_COUNTER_ADD("test.macro.counter", 4);
  SKYRAN_GAUGE_SET("test.macro.gauge", 2.5);
  SKYRAN_HISTOGRAM_OBSERVE("test.macro.histogram", 10.0);
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("test.macro.counter").value(), 7u);
  EXPECT_DOUBLE_EQ(reg.gauge("test.macro.gauge").value(), 2.5);
  EXPECT_EQ(reg.histogram("test.macro.histogram").count(), 1u);
}

TEST_F(ObsTest, TraceSpanNestingDepthsAndEpochTag) {
#ifdef SKYRAN_OBS_DISABLED
  GTEST_SKIP() << "obs macros compiled out (-DSKYRAN_OBS_DISABLED)";
#endif
  set_enabled(true);
  set_current_epoch(5);
  {
    SKYRAN_TRACE_SPAN("outer");
    {
      SKYRAN_TRACE_SPAN("inner");
    }
  }
  const std::vector<TraceEvent> events = TraceJournal::instance().events();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes first, so it is recorded first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.epoch, 5);
    EXPECT_GE(e.duration_us, 0.0);
  }
  // The outer span contains the inner one in time.
  EXPECT_LE(events[1].start_us, events[0].start_us);
  EXPECT_GE(events[1].duration_us, events[0].duration_us);
  // Span durations also feed the span.<name>.us histograms.
  EXPECT_EQ(MetricsRegistry::instance().histogram("span.outer.us").count(), 1u);
}

TEST_F(ObsTest, SpanConstructedWhileDisabledStaysInert) {
  {
    SKYRAN_TRACE_SPAN("test.toggled.span");
    set_enabled(true);  // toggled mid-span: must not record a half-timed event
  }
  EXPECT_EQ(TraceJournal::instance().size(), 0u);
}

// ---------------------------------------------------------------------------
// JSON exporter round-trip through a minimal test-side parser. The exporter
// emits flat one-line objects with string and number values only, which is
// exactly what this parser accepts.

struct JsonRecord {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
};

/// Parse one flat JSON object ({"k":"v","k2":123,...}). Returns false on
/// malformed input — the test fails rather than tolerating bad output.
bool parse_flat_json(const std::string& line, JsonRecord& out) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  };
  const auto parse_string = [&](std::string& s) {
    if (line[i] != '"') return false;
    ++i;
    s.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        if (++i >= line.size()) return false;
        switch (line[i]) {
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          default: s += line[i];
        }
      } else {
        s += line[i];
      }
      ++i;
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  for (;;) {
    skip_ws();
    if (i < line.size() && line[i] == '}') return true;
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws();
    if (i < line.size() && line[i] == '"') {
      std::string value;
      if (!parse_string(value)) return false;
      out.strings[key] = value;
    } else {
      std::size_t consumed = 0;
      try {
        out.numbers[key] = std::stod(line.substr(i), &consumed);
      } catch (...) {
        return false;
      }
      if (consumed == 0) return false;
      i += consumed;
    }
    skip_ws();
    if (i < line.size() && line[i] == ',') {
      ++i;
      continue;
    }
    if (i < line.size() && line[i] == '}') return true;
    return false;
  }
}

TEST_F(ObsTest, JsonExporterRoundTrip) {
#ifdef SKYRAN_OBS_DISABLED
  GTEST_SKIP() << "obs macros compiled out (-DSKYRAN_OBS_DISABLED)";
#endif
  set_enabled(true);
  set_current_epoch(2);
  SKYRAN_COUNTER_ADD("test.json.counter", 42);
  SKYRAN_GAUGE_SET("test.json.gauge", 1.25);
  for (int i = 1; i <= 8; ++i) SKYRAN_HISTOGRAM_OBSERVE("test.json.histogram", i);
  { SKYRAN_TRACE_SPAN("test.json.span"); }

  std::ostringstream os;
  write_json_lines(os);
  std::istringstream is(os.str());

  std::string line;
  std::vector<JsonRecord> records;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    JsonRecord rec;
    ASSERT_TRUE(parse_flat_json(line, rec)) << "unparseable line: " << line;
    ASSERT_TRUE(rec.strings.count("type")) << line;
    records.push_back(std::move(rec));
  }
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.front().strings.at("type"), "meta");
  EXPECT_DOUBLE_EQ(records.front().numbers.at("schema"), kJsonSchemaVersion);

  bool saw_counter = false, saw_gauge = false, saw_histogram = false, saw_span = false;
  for (const JsonRecord& rec : records) {
    const std::string& type = rec.strings.at("type");
    if (type == "counter" && rec.strings.at("name") == "test.json.counter") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(rec.numbers.at("value"), 42.0);
    } else if (type == "gauge" && rec.strings.at("name") == "test.json.gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(rec.numbers.at("value"), 1.25);
    } else if (type == "histogram" && rec.strings.at("name") == "test.json.histogram") {
      saw_histogram = true;
      EXPECT_DOUBLE_EQ(rec.numbers.at("count"), 8.0);
      EXPECT_DOUBLE_EQ(rec.numbers.at("sum"), 36.0);
      EXPECT_DOUBLE_EQ(rec.numbers.at("min"), 1.0);
      EXPECT_DOUBLE_EQ(rec.numbers.at("max"), 8.0);
      EXPECT_GT(rec.numbers.at("p90"), 0.0);
    } else if (type == "span" && rec.strings.at("name") == "test.json.span") {
      saw_span = true;
      EXPECT_DOUBLE_EQ(rec.numbers.at("epoch"), 2.0);
      EXPECT_DOUBLE_EQ(rec.numbers.at("depth"), 0.0);
      EXPECT_GE(rec.numbers.at("dur_us"), 0.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_histogram);
  EXPECT_TRUE(saw_span);
}

TEST_F(ObsTest, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
}

TEST_F(ObsTest, SummaryExporterMentionsEveryMetric) {
#ifdef SKYRAN_OBS_DISABLED
  GTEST_SKIP() << "obs macros compiled out (-DSKYRAN_OBS_DISABLED)";
#endif
  set_enabled(true);
  SKYRAN_COUNTER_INC("test.summary.counter");
  SKYRAN_GAUGE_SET("test.summary.gauge", 9.0);
  SKYRAN_HISTOGRAM_OBSERVE("test.summary.histogram", 4.0);
  { SKYRAN_TRACE_SPAN("test.summary.span"); }
  std::ostringstream os;
  write_summary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("test.summary.counter"), std::string::npos);
  EXPECT_NE(text.find("test.summary.gauge"), std::string::npos);
  EXPECT_NE(text.find("test.summary.histogram"), std::string::npos);
  EXPECT_NE(text.find("test.summary.span"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Thread safety: recording from inside parallel_for bodies must neither race
// (TSan-clean; CI runs this binary under -DSKYRAN_SANITIZE=thread) nor lose
// events.

TEST_F(ObsTest, RecordingFromParallelForIsExactAndRaceFree) {
#ifdef SKYRAN_OBS_DISABLED
  GTEST_SKIP() << "obs macros compiled out (-DSKYRAN_OBS_DISABLED)";
#endif
  set_enabled(true);
  constexpr std::size_t kN = 20000;
  const core::ScopedWorkers workers(8);
  core::parallel_for(kN, [&](std::size_t i) {
    SKYRAN_COUNTER_INC("test.parallel.counter");
    SKYRAN_HISTOGRAM_OBSERVE("test.parallel.histogram", static_cast<double>(i % 97) + 1.0);
    if (i % 1000 == 0) {
      SKYRAN_TRACE_SPAN("test.parallel.span");
    }
  });
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("test.parallel.counter").value(), kN);
  EXPECT_EQ(reg.histogram("test.parallel.histogram").count(), kN);
  EXPECT_EQ(reg.histogram("span.test.parallel.span.us").count(), kN / 1000);
  EXPECT_EQ(TraceJournal::instance().size(), kN / 1000);
  EXPECT_EQ(TraceJournal::instance().dropped(), 0u);
}

TEST_F(ObsTest, JournalDropsBeyondCapacityWithoutGrowing) {
  set_enabled(true);
  TraceEvent e;
  e.name = "bulk";
  for (std::size_t i = 0; i < 100; ++i) TraceJournal::instance().record(e);
  EXPECT_EQ(TraceJournal::instance().size(), 100u);
  TraceJournal::instance().clear();
  EXPECT_EQ(TraceJournal::instance().size(), 0u);
  EXPECT_EQ(TraceJournal::instance().dropped(), 0u);
}

// ---------------------------------------------------------------------------
// The disabled-mode contract, end to end: a full SkyRan epoch produces
// bit-identical outputs with instrumentation off and on (recording never
// feeds back into simulation state), and the off-mode run records nothing.

sim::World make_world(std::uint64_t seed) {
  sim::WorldConfig wc;
  wc.terrain_kind = terrain::TerrainKind::kCampus;
  wc.seed = seed;
  sim::World world(wc);
  world.ue_positions() = mobility::deploy_mixed_visibility(world.terrain(), 4, seed + 1);
  return world;
}

core::EpochReport run_one_epoch() {
  sim::World world = make_world(11);
  core::SkyRanConfig cfg;
  cfg.measurement_budget_m = 400.0;
  cfg.localization_mode = core::LocalizationMode::kGaussianError;
  cfg.injected_error_m = 8.0;
  core::SkyRan skyran(world, cfg, 7);
  return skyran.run_epoch();
}

void expect_bit_identical(const core::EpochReport& a, const core::EpochReport& b) {
  const auto same_bits = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  EXPECT_EQ(a.epoch, b.epoch);
  ASSERT_EQ(a.estimated_ue_positions.size(), b.estimated_ue_positions.size());
  for (std::size_t i = 0; i < a.estimated_ue_positions.size(); ++i) {
    EXPECT_TRUE(same_bits(a.estimated_ue_positions[i].x, b.estimated_ue_positions[i].x));
    EXPECT_TRUE(same_bits(a.estimated_ue_positions[i].y, b.estimated_ue_positions[i].y));
  }
  EXPECT_EQ(a.reused_rem, b.reused_rem);
  EXPECT_TRUE(same_bits(a.localization_flight_m, b.localization_flight_m));
  EXPECT_TRUE(same_bits(a.altitude_flight_m, b.altitude_flight_m));
  EXPECT_TRUE(same_bits(a.measurement_flight_m, b.measurement_flight_m));
  EXPECT_TRUE(same_bits(a.total_flight_m, b.total_flight_m));
  EXPECT_TRUE(same_bits(a.flight_time_s, b.flight_time_s));
  EXPECT_TRUE(same_bits(a.altitude_m, b.altitude_m));
  EXPECT_TRUE(same_bits(a.position.x, b.position.x));
  EXPECT_TRUE(same_bits(a.position.y, b.position.y));
  EXPECT_TRUE(same_bits(a.predicted_objective_snr_db, b.predicted_objective_snr_db));
  EXPECT_TRUE(same_bits(a.served_mean_throughput_bps, b.served_mean_throughput_bps));
  EXPECT_EQ(a.planned_k, b.planned_k);
  EXPECT_TRUE(same_bits(a.info_to_cost, b.info_to_cost));
}

TEST_F(ObsTest, DisabledModeIsBitIdenticalToInstrumentedRun) {
  ASSERT_FALSE(enabled());
  const core::EpochReport baseline = run_one_epoch();
  // Nothing was recorded while disabled.
  {
    const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
    for (const auto& c : snap.counters) EXPECT_EQ(c.value, 0u) << c.name;
    for (const auto& h : snap.histograms) EXPECT_EQ(h.count, 0u) << h.name;
    EXPECT_EQ(TraceJournal::instance().size(), 0u);
  }

  set_enabled(true);
  const core::EpochReport instrumented = run_one_epoch();
#ifndef SKYRAN_OBS_DISABLED
  // The instrumented run actually recorded the pipeline's key signals...
  MetricsRegistry& reg = MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("epoch.runs").value(), 1u);
  EXPECT_EQ(reg.counter("epoch.rem_cache.hit").value() +
                reg.counter("epoch.rem_cache.miss").value(),
            4u);
  EXPECT_GT(reg.counter("rem.planner.plans").value(), 0u);
  EXPECT_GT(reg.counter("rem.bank.cells_reestimated").value(), 0u);
  EXPECT_GT(reg.histogram("rem.fill.measured_fraction").count(), 0u);
  EXPECT_GT(reg.histogram("span.epoch.run.us").count(), 0u);
  EXPECT_GT(TraceJournal::instance().size(), 0u);
#endif

  // ...and still produced bit-identical outputs.
  expect_bit_identical(baseline, instrumented);
}

}  // namespace
}  // namespace skyran::obs
