// Serial/parallel equivalence suite for the thread-pool epoch engine: every
// converted kernel must produce bit-for-bit identical output with 1 worker
// (forced serial) and N workers, including empty and single-element inputs.
// Also exercises the pool primitives themselves (coverage, chunk layout,
// exception propagation, nesting). Run under TSan in CI to catch races.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "geo/contract.hpp"
#include "localization/pipeline.hpp"
#include "lte/ranging.hpp"
#include "lte/srs_channel.hpp"
#include "rem/idw.hpp"
#include "rem/kmeans.hpp"
#include "rem/kriging.hpp"
#include "rem/placement.hpp"
#include "rem/rem.hpp"
#include "rf/channel.hpp"
#include "sim/world.hpp"
#include "uav/flight.hpp"
#include "uav/gps.hpp"

namespace skyran {
namespace {

constexpr int kParallelWorkers = 8;

/// Run `fn` once per worker count and return the results for comparison.
template <typename F>
auto serial_and_parallel(F&& fn) {
  core::set_global_workers(1);
  auto serial = fn();
  core::set_global_workers(kParallelWorkers);
  auto parallel = fn();
  core::set_global_workers(0);
  return std::pair{std::move(serial), std::move(parallel)};
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  core::ThreadPool pool(kParallelWorkers);
  const std::size_t n = 10007;
  std::vector<int> hits(n, 0);
  pool.run_chunks(n, 0, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ThreadPoolTest, ChunkLayoutIndependentOfWorkerCount) {
  const std::size_t n = 5000;
  const auto layout_with = [&](int workers) {
    core::ThreadPool pool(workers);
    std::mutex mu;
    std::vector<std::array<std::size_t, 3>> chunks;
    pool.run_chunks(n, 0, [&](std::size_t c, std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lk(mu);
      chunks.push_back({c, b, e});
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto one = layout_with(1);
  const auto many = layout_with(kParallelWorkers);
  EXPECT_EQ(one, many);
  // Chunks are contiguous, ordered, and cover [0, n).
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one.front()[1], 0u);
  EXPECT_EQ(one.back()[2], n);
  for (std::size_t c = 1; c < one.size(); ++c) EXPECT_EQ(one[c][1], one[c - 1][2]);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  core::ThreadPool pool(kParallelWorkers);
  int calls = 0;
  pool.run_chunks(0, 0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  core::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.run_chunks(100, 10, [&](std::size_t, std::size_t, std::size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 10u);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  core::ThreadPool pool(kParallelWorkers);
  const auto boom = [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      if (i == 777) throw std::runtime_error("boom");
  };
  EXPECT_THROW(pool.run_chunks(1000, 10, boom), std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<int> count{0};
  pool.run_chunks(1000, 10, [&](std::size_t, std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  core::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.run_chunks(8, 1, [&](std::size_t, std::size_t, std::size_t) {
    core::parallel_for(10, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, ReduceBitwiseEqualAcrossWorkerCounts) {
  std::vector<double> values(12345);
  std::mt19937_64 rng(42);
  std::normal_distribution<double> g(0.0, 3.0);
  for (double& v : values) v = g(rng);
  const auto sum = [&]() {
    return core::parallel_reduce(
        values.size(), 0, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const auto [serial, parallel] = serial_and_parallel(sum);
  EXPECT_EQ(serial, parallel);  // bitwise, not approximate
}

TEST(ThreadPoolTest, EnvironmentOverrideRespected) {
  core::set_global_workers(0);
  ASSERT_EQ(setenv("SKYRAN_THREADS", "3", 1), 0);
  EXPECT_EQ(core::configured_workers(), 3);
  ASSERT_EQ(setenv("SKYRAN_THREADS", "not-a-number", 1), 0);
  EXPECT_EQ(core::configured_workers(), core::hardware_workers());
  ASSERT_EQ(unsetenv("SKYRAN_THREADS"), 0);
  // Explicit override beats the environment.
  ASSERT_EQ(setenv("SKYRAN_THREADS", "3", 1), 0);
  core::set_global_workers(5);
  EXPECT_EQ(core::configured_workers(), 5);
  core::set_global_workers(0);
  ASSERT_EQ(unsetenv("SKYRAN_THREADS"), 0);
}

TEST(ThreadPoolTest, ScopedWorkersOverridesAndRestores) {
  core::set_global_workers(0);
  const int base = core::configured_workers();
  {
    core::ScopedWorkers two(2);
    EXPECT_EQ(core::configured_workers(), 2);
    {
      core::ScopedWorkers one(1);
      EXPECT_EQ(core::configured_workers(), 1);
      core::ScopedWorkers noop(0);  // <= 0 leaves the resolution chain alone
      EXPECT_EQ(core::configured_workers(), 1);
    }
    EXPECT_EQ(core::configured_workers(), 2);
    // The scoped override beats the explicit global one...
    core::set_global_workers(5);
    EXPECT_EQ(core::configured_workers(), 2);
    core::set_global_workers(0);
    // ...and is thread-local: another thread never sees it.
    int other = 0;
    std::thread([&] { other = core::configured_workers(); }).join();
    EXPECT_EQ(other, base);
  }
  EXPECT_EQ(core::configured_workers(), base);
}

TEST(ThreadPoolTest, ScopedWorkersOneForcesInline) {
  // Build a multi-lane pool first: the cap must win over the pool's size.
  core::set_global_workers(kParallelWorkers);
  core::parallel_for(64, [](std::size_t) {});
  const core::ScopedWorkers serial(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;  // unsynchronized on purpose
  core::parallel_for_chunks(100, 10, [&](std::size_t, std::size_t, std::size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 10u);
  for (const auto& id : seen) EXPECT_EQ(id, caller);
  core::set_global_workers(0);
}

TEST(ThreadPoolTest, WorkerCountChangeWhileLoopsInFlight) {
  // Growing the pool must never invalidate a loop already running on it:
  // in-flight calls hold the pool via shared_ptr. Run under TSan in CI.
  std::atomic<bool> stop{false};
  std::atomic<int> loops{0};
  std::vector<std::thread> runners;
  for (int t = 0; t < 3; ++t)
    runners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::atomic<long> sum{0};
        core::parallel_for(1000, [&](std::size_t i) {
          sum.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 499500L);
        loops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  // Each step requests a larger pool, forcing repeated rebuilds underneath
  // the runners; the final reset to auto is also concurrency-safe now.
  for (int want = 2; want <= 12; ++want) {
    core::set_global_workers(want);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& th : runners) th.join();
  core::set_global_workers(0);
  EXPECT_GT(loops.load(), 0);
}

TEST(ParallelEquivalenceTest, RemIdwEstimate) {
  const auto estimate = [] {
    rem::Rem prior(geo::Rect::square(150.0), 5.0, 60.0, {75.0, 75.0, 1.5});
    const rf::FsplChannel fspl(2.6e9);
    prior.seed_from_model(fspl, rf::LinkBudget{});
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> u(1.0, 149.0);
    std::normal_distribution<double> g(12.0, 6.0);
    for (int i = 0; i < 120; ++i) prior.add_measurement({u(rng), u(rng)}, g(rng));

    // A prior-seeded map exercises the blend branch too.
    rem::Rem fresh(geo::Rect::square(150.0), 5.0, 60.0, {75.0, 75.0, 1.5});
    fresh.seed_from(prior);
    for (int i = 0; i < 40; ++i) fresh.add_measurement({u(rng), u(rng)}, g(rng));
    return fresh.estimate().raw();
  };
  const auto [serial, parallel] = serial_and_parallel(estimate);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEquivalenceTest, IdwEstimateGrid) {
  const auto grid = [] {
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> u(0.0, 200.0);
    std::vector<rem::IdwSample> samples;
    for (int i = 0; i < 300; ++i) samples.push_back({{u(rng), u(rng)}, u(rng) / 10.0});
    const rem::IdwInterpolator idw(samples, geo::Rect::square(200.0));
    return idw.estimate_grid(4.0, 8, 2.0, 1e9).raw();
  };
  const auto [serial, parallel] = serial_and_parallel(grid);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEquivalenceTest, IdwEstimateGridEdgeCases) {
  const auto run = [] {
    const rem::IdwInterpolator empty({}, geo::Rect::square(50.0));
    const rem::IdwInterpolator single({{{25.0, 25.0}, 7.5}}, geo::Rect::square(50.0));
    auto a = empty.estimate_grid(5.0, 8, 2.0, 1e9, -99.0).raw();
    auto b = single.estimate_grid(5.0, 8, 2.0, 1e9).raw();
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };
  const auto [serial, parallel] = serial_and_parallel(run);
  EXPECT_EQ(serial, parallel);
  // Empty interpolator: every cell takes the fallback; single sample: every
  // cell takes the sample's value.
  EXPECT_DOUBLE_EQ(serial.front(), -99.0);
  EXPECT_DOUBLE_EQ(serial.back(), 7.5);
}

TEST(ParallelEquivalenceTest, KrigingEstimateGrid) {
  const auto grid = [] {
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<double> u(0.0, 120.0);
    std::uniform_real_distribution<double> val(-10.0, 25.0);
    std::vector<rem::IdwSample> samples;
    for (int i = 0; i < 150; ++i) samples.push_back({{u(rng), u(rng)}, val(rng)});
    const rem::Variogram v = rem::fit_variogram(samples);
    const rem::KrigingInterpolator k(samples, geo::Rect::square(120.0), v);
    return k.estimate_grid(4.0, 8, 1e9).raw();
  };
  const auto [serial, parallel] = serial_and_parallel(grid);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelEquivalenceTest, KrigingEstimateGridEdgeCases) {
  const auto run = [] {
    const rem::KrigingInterpolator none({}, geo::Rect::square(30.0), rem::Variogram{});
    const rem::KrigingInterpolator one({{{15.0, 15.0}, 3.25}}, geo::Rect::square(30.0),
                                       rem::Variogram{});
    auto a = none.estimate_grid(5.0, 8, 1e9, 1.0).raw();
    auto b = one.estimate_grid(5.0, 8, 1e9).raw();
    a.insert(a.end(), b.begin(), b.end());
    return a;
  };
  const auto [serial, parallel] = serial_and_parallel(run);
  EXPECT_EQ(serial, parallel);
  EXPECT_DOUBLE_EQ(serial.front(), 1.0);   // no samples -> fallback
  EXPECT_DOUBLE_EQ(serial.back(), 3.25);   // one sample -> its value
}

TEST(ParallelEquivalenceTest, KMeans) {
  std::vector<rem::WeightedPoint> points;
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(0.0, 400.0);
  for (int i = 0; i < 1500; ++i) points.push_back({{u(rng), u(rng)}, 0.5 + u(rng) / 400.0});
  const auto run = [&] { return rem::kmeans(points, 12, 23); };
  const auto [serial, parallel] = serial_and_parallel(run);
  EXPECT_EQ(serial.assignment, parallel.assignment);
  EXPECT_EQ(serial.inertia, parallel.inertia);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  ASSERT_EQ(serial.centroids.size(), parallel.centroids.size());
  for (std::size_t c = 0; c < serial.centroids.size(); ++c) {
    EXPECT_EQ(serial.centroids[c].x, parallel.centroids[c].x);
    EXPECT_EQ(serial.centroids[c].y, parallel.centroids[c].y);
  }
}

TEST(ParallelEquivalenceTest, KMeansEdgeCases) {
  const std::vector<rem::WeightedPoint> one{{{5.0, 5.0}, 2.0}};
  const auto run = [&] { return rem::kmeans(one, 3, 1); };
  const auto [serial, parallel] = serial_and_parallel(run);
  EXPECT_EQ(serial.centroids.size(), 1u);  // k clamps to the point count
  EXPECT_EQ(serial.assignment, parallel.assignment);
  EXPECT_EQ(serial.inertia, parallel.inertia);
  core::set_global_workers(kParallelWorkers);
  EXPECT_THROW(rem::kmeans({}, 2, 1), ContractViolation);
  core::set_global_workers(0);
}

TEST(ParallelEquivalenceTest, PlacementScoring) {
  std::vector<geo::Grid2D<double>> maps;
  std::mt19937_64 rng(19);
  std::normal_distribution<double> g(8.0, 9.0);
  for (int m = 0; m < 6; ++m) {
    geo::Grid2D<double> grid(geo::Rect::square(180.0), 4.0, 0.0);
    for (double& v : grid.raw()) v = g(rng);
    maps.push_back(std::move(grid));
  }
  const std::vector<double> weights{1.0, 0.5, 2.0, 0.1, 1.5, 0.9};
  for (const auto objective :
       {rem::PlacementObjective::kMaxMin, rem::PlacementObjective::kMaxMean,
        rem::PlacementObjective::kMaxWeighted, rem::PlacementObjective::kMaxCoverage}) {
    const auto place = [&] { return rem::choose_placement(maps, objective, weights); };
    const auto [serial, parallel] = serial_and_parallel(place);
    EXPECT_EQ(serial.position.x, parallel.position.x);
    EXPECT_EQ(serial.position.y, parallel.position.y);
    EXPECT_EQ(serial.objective_snr_db, parallel.objective_snr_db);
  }
}

TEST(ParallelEquivalenceTest, PlacementSingleMapSingleCell) {
  std::vector<geo::Grid2D<double>> maps;
  maps.emplace_back(geo::Rect::square(3.0), 4.0, 5.5);  // one cell covers the area
  const auto place = [&] { return rem::choose_placement(maps); };
  const auto [serial, parallel] = serial_and_parallel(place);
  EXPECT_EQ(serial.position.x, parallel.position.x);
  EXPECT_EQ(serial.objective_snr_db, 5.5);
  EXPECT_EQ(parallel.objective_snr_db, 5.5);
}

TEST(ParallelEquivalenceTest, TofEstimateBatch) {
  lte::SrsConfig cfg;
  const lte::SrsSymbol tx = lte::make_srs_symbol(cfg);
  const lte::TofEstimator est(cfg, 4);
  std::mt19937_64 rng(29);
  std::vector<lte::SrsSymbol> received;
  for (int i = 0; i < 24; ++i) {
    lte::SrsChannelParams ch;
    ch.delay_s = (30.0 + 15.0 * i) / 3e8;
    ch.snr_db = 12.0;
    received.push_back(lte::apply_srs_channel(tx, ch, rng));
  }
  const auto run = [&] { return est.estimate_batch(received); };
  const auto [serial, parallel] = serial_and_parallel(run);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].delay_samples, parallel[i].delay_samples);
    EXPECT_EQ(serial[i].distance_m, parallel[i].distance_m);
    EXPECT_EQ(serial[i].peak_to_side_db, parallel[i].peak_to_side_db);
    // The batch path must agree with the one-shot path.
    const lte::TofEstimate one = est.estimate(received[i]);
    EXPECT_EQ(serial[i].delay_samples, one.delay_samples);
  }
  EXPECT_TRUE(est.estimate_batch({}).empty());
  EXPECT_EQ(est.estimate_batch(std::span<const lte::SrsSymbol>(received.data(), 1)).size(), 1u);
}

/// LOS decided by a pure function of geometry so the oracle needs no channel.
class StripedLosOracle final : public localization::LosOracle {
 public:
  bool line_of_sight(geo::Vec3 uav, geo::Vec3 ue) const override {
    return static_cast<int>(uav.dist(ue) / 40.0) % 2 == 0;
  }
};

TEST(ParallelEquivalenceTest, CollectGpsTofRanging) {
  const auto run = [] {
    geo::Path track({{20.0, 20.0}, {80.0, 30.0}, {60.0, 90.0}});
    const uav::FlightPlan plan = uav::FlightPlan::at_altitude(track, 60.0);
    const std::vector<uav::FlightSample> flight = uav::fly(plan, 1.0 / 50.0);
    const rf::FsplChannel fspl(2.6e9);
    const StripedLosOracle los;
    uav::GpsSensor gps(99, 1.5);
    std::mt19937_64 rng(31);
    return localization::collect_gps_tof(flight, {120.0, 40.0, 1.5}, fspl, los,
                                         rf::LinkBudget{}, gps, {}, rng);
  };
  const auto [serial, parallel] = serial_and_parallel(run);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_GT(serial.size(), 10u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].time_s, parallel[i].time_s);
    EXPECT_EQ(serial[i].range_m, parallel[i].range_m);
    EXPECT_EQ(serial[i].uav_position.x, parallel[i].uav_position.x);
    EXPECT_EQ(serial[i].uav_position.y, parallel[i].uav_position.y);
    EXPECT_EQ(serial[i].uav_position.z, parallel[i].uav_position.z);
  }
}

TEST(ParallelEquivalenceTest, SrsChannelDeterministicAcrossWorkerCounts) {
  lte::SrsConfig cfg;
  const lte::SrsSymbol tx = lte::make_srs_symbol(cfg);
  const auto run = [&] {
    std::mt19937_64 rng(37);
    lte::SrsChannelParams ch;
    ch.delay_s = 4e-7;
    ch.snr_db = 10.0;
    ch.taps = lte::make_nlos_taps(3, 50e-9, -4.0, 4.0, rng);
    return lte::apply_srs_channel(tx, ch, rng).freq;
  };
  const auto [serial, parallel] = serial_and_parallel(run);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace skyran
