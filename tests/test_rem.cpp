// Tests for the REM module: the map itself, IDW interpolation, gradient
// maps, k-means, TSP tours, information gain, the trajectory planner, the
// REM store and placement (including the altitude search).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geo/contract.hpp"
#include "rem/gradient.hpp"
#include "rem/idw.hpp"
#include "rem/info_gain.hpp"
#include "rem/kmeans.hpp"
#include "rem/placement.hpp"
#include "rem/planner.hpp"
#include "rem/rem.hpp"
#include "rem/store.hpp"
#include "rem/tsp.hpp"
#include "terrain/synth.hpp"

namespace skyran::rem {
namespace {

geo::Rect area100() { return geo::Rect::square(100.0); }

TEST(RemTest, MeasurementsAverageWithinCell) {
  Rem rem(area100(), 10.0, 50.0, {50.0, 50.0, 1.5});
  rem.add_measurement({15.0, 15.0}, 10.0);
  rem.add_measurement({16.0, 14.0}, 20.0);  // same 10 m cell
  EXPECT_EQ(rem.measured_cells(), 1u);
  const geo::CellIndex c{1, 1};
  ASSERT_TRUE(rem.is_measured(c));
  EXPECT_DOUBLE_EQ(*rem.measured_snr(c), 15.0);
  EXPECT_FALSE(rem.measured_snr({0, 0}).has_value());
  EXPECT_NEAR(rem.measured_fraction(), 0.01, 1e-9);
}

TEST(RemTest, EstimateUsesMeasurementEverywhereByDefault) {
  Rem rem(area100(), 10.0, 50.0, {50.0, 50.0, 1.5});
  rem.add_measurement({5.0, 5.0}, 12.0);
  const geo::Grid2D<double> est = rem.estimate();
  // One sample: IDW returns it for every cell.
  EXPECT_DOUBLE_EQ(est.at(0, 0), 12.0);
  EXPECT_DOUBLE_EQ(est.at(9, 9), 12.0);
}

TEST(RemTest, BackgroundUsedBeyondRadius) {
  Rem rem(area100(), 10.0, 50.0, {50.0, 50.0, 1.5});
  const rf::FsplChannel fspl(2.6e9);
  rem.seed_from_model(fspl, rf::LinkBudget{});
  rem.add_measurement({5.0, 5.0}, -7.0);
  IdwParams params;
  params.max_radius_m = 20.0;
  const geo::Grid2D<double> est = rem.estimate(params);
  EXPECT_DOUBLE_EQ(est.at(0, 0), -7.0);  // measured cell
  // Far cell beyond the radius: background (FSPL-derived, much higher).
  EXPECT_GT(est.at(9, 9), 0.0);
  EXPECT_DOUBLE_EQ(est.at(9, 9), rem.background().at(9, 9));
}

TEST(RemTest, SeedFromPriorCopiesEstimate) {
  Rem prior(area100(), 10.0, 50.0, {50.0, 50.0, 1.5});
  prior.add_measurement({55.0, 55.0}, 33.0);
  Rem fresh(area100(), 10.0, 50.0, {52.0, 50.0, 1.5});
  fresh.seed_from(prior);
  EXPECT_TRUE(fresh.has_background());
  EXPECT_DOUBLE_EQ(fresh.background().at(3, 3), 33.0);
  // Geometry mismatch rejected.
  Rem other(geo::Rect::square(50.0), 10.0, 50.0, {10.0, 10.0, 1.5});
  EXPECT_THROW(fresh.seed_from(other), ContractViolation);
}

TEST(RemTest, MedianErrorMetric) {
  geo::Grid2D<double> a(area100(), 10.0, 10.0);
  geo::Grid2D<double> b(area100(), 10.0, 13.0);
  EXPECT_DOUBLE_EQ(median_abs_error_db(a, b), 3.0);
  geo::Grid2D<double> c(geo::Rect::square(50.0), 10.0, 0.0);
  EXPECT_THROW(median_abs_error_db(a, c), ContractViolation);
}

TEST(IdwTest, ExactHitReturnsSampleValue) {
  IdwInterpolator idw({{{10.0, 10.0}, 5.0}, {{90.0, 90.0}, 25.0}}, area100());
  EXPECT_DOUBLE_EQ(*idw.estimate({10.0, 10.0}, 4, 2.0, 1e9), 5.0);
}

TEST(IdwTest, InterpolatesBetweenSamples) {
  IdwInterpolator idw({{{0.0, 50.0}, 0.0}, {{100.0, 50.0}, 10.0}}, area100());
  const double mid = *idw.estimate({50.0, 50.0}, 4, 2.0, 1e9);
  EXPECT_NEAR(mid, 5.0, 1e-9);  // equidistant: plain average
  const double near_left = *idw.estimate({10.0, 50.0}, 4, 2.0, 1e9);
  EXPECT_LT(near_left, 2.0);  // inverse-square heavily favors the near one
}

TEST(IdwTest, RadiusLimitsReach) {
  IdwInterpolator idw({{{0.0, 0.0}, 7.0}}, area100());
  EXPECT_TRUE(idw.estimate({5.0, 5.0}, 4, 2.0, 20.0).has_value());
  EXPECT_FALSE(idw.estimate({90.0, 90.0}, 4, 2.0, 20.0).has_value());
}

TEST(IdwTest, EmptySamplesReturnNothing) {
  IdwInterpolator idw({}, area100());
  EXPECT_FALSE(idw.estimate({50.0, 50.0}, 4, 2.0, 1e9).has_value());
}

TEST(IdwTest, KNearestSelectsClosest) {
  // Three samples; k=2 must ignore the far outlier.
  IdwInterpolator idw({{{48.0, 50.0}, 10.0}, {{52.0, 50.0}, 12.0}, {{95.0, 95.0}, 1000.0}},
                      area100());
  const double v = *idw.estimate({50.0, 50.0}, 2, 2.0, 1e9);
  EXPECT_GT(v, 9.9);
  EXPECT_LT(v, 12.1);
}

TEST(GradientTest, FlatMapHasZeroGradient) {
  geo::Grid2D<double> snr(area100(), 10.0, 5.0);
  const geo::Grid2D<double> g = gradient_map(snr);
  for (const double v : g.raw()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_DOUBLE_EQ(gradient_median(g), 0.0);
  EXPECT_TRUE(high_gradient_cells(g).empty());
}

TEST(GradientTest, StepEdgeDetected) {
  geo::Grid2D<double> snr(area100(), 10.0, 0.0);
  // Right half 20 dB hotter.
  snr.for_each([&](geo::CellIndex c, double& v) {
    if (c.ix >= 5) v = 20.0;
  });
  const geo::Grid2D<double> g = gradient_map(snr);
  EXPECT_DOUBLE_EQ(g.at(4, 5), 20.0);  // at the edge
  EXPECT_DOUBLE_EQ(g.at(5, 5), 20.0);
  EXPECT_DOUBLE_EQ(g.at(0, 5), 0.0);   // far from it
  const auto hot = high_gradient_cells(g);
  EXPECT_FALSE(hot.empty());
  for (const geo::CellIndex c : hot) EXPECT_TRUE(c.ix == 4 || c.ix == 5);
}

TEST(KMeansTest, SeparatesTwoClusters) {
  std::vector<WeightedPoint> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({{10.0 + i * 0.1, 10.0}, 1.0});
    pts.push_back({{90.0 + i * 0.1, 90.0}, 1.0});
  }
  const KMeansResult r = kmeans(pts, 2, 3);
  ASSERT_EQ(r.centroids.size(), 2u);
  const double d0 = r.centroids[0].dist({11.0, 10.0});
  const double d1 = r.centroids[1].dist({11.0, 10.0});
  const geo::Vec2 near = d0 < d1 ? r.centroids[0] : r.centroids[1];
  const geo::Vec2 far = d0 < d1 ? r.centroids[1] : r.centroids[0];
  EXPECT_LT(near.dist({11.0, 10.0}), 2.0);
  EXPECT_LT(far.dist({91.0, 90.0}), 2.0);
  EXPECT_LT(r.inertia, 100.0);
}

TEST(KMeansTest, WeightsPullCentroids) {
  const std::vector<WeightedPoint> pts{{{0.0, 0.0}, 1.0}, {{10.0, 0.0}, 9.0}};
  const KMeansResult r = kmeans(pts, 1, 3);
  ASSERT_EQ(r.centroids.size(), 1u);
  EXPECT_NEAR(r.centroids[0].x, 9.0, 1e-9);  // weighted mean
}

TEST(KMeansTest, KClampedToPointCount) {
  const std::vector<WeightedPoint> pts{{{1.0, 1.0}, 1.0}, {{2.0, 2.0}, 1.0}};
  const KMeansResult r = kmeans(pts, 10, 3);
  EXPECT_EQ(r.centroids.size(), 2u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicInSeed) {
  std::vector<WeightedPoint> pts;
  for (int i = 0; i < 50; ++i)
    pts.push_back({{std::fmod(i * 37.3, 100.0), std::fmod(i * 17.9, 100.0)}, 1.0});
  const KMeansResult a = kmeans(pts, 5, 11);
  const KMeansResult b = kmeans(pts, 5, 11);
  EXPECT_EQ(a.centroids.size(), b.centroids.size());
  for (std::size_t i = 0; i < a.centroids.size(); ++i)
    EXPECT_EQ(a.centroids[i], b.centroids[i]);
}

TEST(KMeansTest, Contracts) {
  EXPECT_THROW(kmeans({}, 2, 1), ContractViolation);
  EXPECT_THROW(kmeans({{{1.0, 1.0}, 1.0}}, 0, 1), ContractViolation);
}

TEST(TspTest, EmptyAndSingleNode) {
  const geo::Path empty = plan_tour({5.0, 5.0}, {});
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.points()[0], (geo::Vec2{5.0, 5.0}));
  const geo::Path one = plan_tour({0.0, 0.0}, {{10.0, 0.0}});
  EXPECT_DOUBLE_EQ(one.length(), 10.0);
}

TEST(TspTest, FindsObviousOrdering) {
  // Collinear nodes: optimal open tour visits them in order.
  const geo::Path tour =
      plan_tour({0.0, 0.0}, {{30.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}, {40.0, 0.0}});
  EXPECT_DOUBLE_EQ(tour.length(), 40.0);
}

TEST(TspTest, TwoOptBeatsGreedyTrap) {
  // A layout where nearest-neighbor alone is suboptimal; 2-opt must improve
  // the tour to within 15% of the straight sweep.
  std::vector<geo::Vec2> nodes;
  for (int i = 0; i < 8; ++i) nodes.push_back({i * 10.0, (i % 2) * 50.0});
  const geo::Path tour = plan_tour({0.0, 25.0}, nodes);
  double best_possible = tour_length({0.0, 25.0}, nodes);  // given order
  EXPECT_LE(tour.length(), best_possible * 1.15 + 50.0);
}

TEST(TspTest, TourLengthHelper) {
  EXPECT_DOUBLE_EQ(tour_length({0.0, 0.0}, {{3.0, 4.0}, {3.0, 8.0}}), 9.0);
  EXPECT_DOUBLE_EQ(tour_length({1.0, 1.0}, {}), 0.0);
}

TEST(InfoGainTest, NewUeGetsImax) {
  const geo::Path candidate({{0.0, 0.0}, {50.0, 0.0}});
  InfoGainParams params;
  EXPECT_DOUBLE_EQ(info_gain_for_ue(candidate, {}, params), params.i_max);
}

TEST(InfoGainTest, RepeatedTrajectoryHasNoGain) {
  const geo::Path candidate({{0.0, 0.0}, {50.0, 0.0}});
  EXPECT_NEAR(info_gain_for_ue(candidate, {candidate}), 0.0, 1e-9);
}

TEST(InfoGainTest, MinOverHistory) {
  const geo::Path candidate({{0.0, 0.0}, {50.0, 0.0}});
  const geo::Path near({{0.0, 5.0}, {50.0, 5.0}});
  const geo::Path far({{0.0, 80.0}, {50.0, 80.0}});
  EXPECT_NEAR(info_gain_for_ue(candidate, {far, near}), 5.0, 1e-9);
}

TEST(InfoGainTest, AverageAndRatio) {
  const geo::Path candidate({{0.0, 0.0}, {100.0, 0.0}});
  const std::vector<TrajectoryHistory> history{
      {},                                       // new UE: Imax = 250
      {geo::Path({{0.0, 10.0}, {100.0, 10.0}})}  // existing: gain 10
  };
  EXPECT_NEAR(average_info_gain(candidate, history), 130.0, 1e-9);
  EXPECT_NEAR(info_to_cost_ratio(candidate, history), 1.3, 1e-9);
}

TEST(PlannerTest, ProducesTourWithinBudget) {
  Rem rem(area100(), 5.0, 50.0, {50.0, 50.0, 1.5});
  const rf::FsplChannel fspl(2.6e9);
  rem.seed_from_model(fspl, rf::LinkBudget{});
  // Paint an artificial SNR edge so the gradient map has structure.
  for (double x = 5.0; x < 95.0; x += 5.0) rem.add_measurement({x, 50.0}, x < 50.0 ? 0.0 : 25.0);

  PlannerConfig cfg;
  cfg.budget_m = 150.0;
  const std::vector<Rem> rems{rem};
  const std::vector<TrajectoryHistory> history{{}};
  const PlannedTrajectory plan =
      plan_measurement_trajectory(rems, history, {0.0, 0.0}, cfg);
  EXPECT_LE(plan.cost_m, 150.0 + 1e-6);
  EXPECT_GT(plan.cost_m, 0.0);
  EXPECT_GE(plan.k, cfg.k_min);
  EXPECT_LE(plan.k, cfg.k_max);
  EXPECT_GT(plan.info_to_cost, 0.0);
  EXPECT_GT(plan.high_gradient_cells, 0u);
}

TEST(PlannerTest, AvoidsRepeatingHistory) {
  Rem rem(area100(), 5.0, 50.0, {50.0, 50.0, 1.5});
  const rf::FsplChannel fspl(2.6e9);
  rem.seed_from_model(fspl, rf::LinkBudget{});
  for (double x = 5.0; x < 95.0; x += 5.0)
    for (double y = 5.0; y < 95.0; y += 25.0) rem.add_measurement({x, y}, x + y);

  const std::vector<Rem> rems{rem};
  PlannerConfig cfg;
  // First plan with no history, then replan with that tour as history: the
  // second tour must differ (higher info gain elsewhere).
  const PlannedTrajectory first =
      plan_measurement_trajectory(rems, {{}}, {0.0, 0.0}, cfg);
  const std::vector<TrajectoryHistory> history{{first.path}};
  const PlannedTrajectory second =
      plan_measurement_trajectory(rems, history, {0.0, 0.0}, cfg);
  EXPECT_GT(second.path.mean_distance_to(first.path, 5.0), 1.0);
}

TEST(PlannerTest, HistorySizeMismatchRejected) {
  Rem rem(area100(), 5.0, 50.0, {50.0, 50.0, 1.5});
  const std::vector<Rem> rems{rem};
  EXPECT_THROW(
      plan_measurement_trajectory(rems, {{}, {}}, {0.0, 0.0}, PlannerConfig{}),
      ContractViolation);
}

TEST(StoreTest, PutAndFindWithinRadius) {
  RemStore store(10.0);
  Rem rem(area100(), 5.0, 50.0, {50.0, 50.0, 1.5});
  rem.add_measurement({50.0, 50.0}, 9.0);
  store.put(rem);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_NE(store.find_near({55.0, 50.0}), nullptr);
  EXPECT_EQ(store.find_near({70.0, 50.0}), nullptr);
}

TEST(StoreTest, NearbyPutReplacesEntry) {
  RemStore store(10.0);
  Rem a(area100(), 5.0, 50.0, {50.0, 50.0, 1.5});
  a.add_measurement({10.0, 10.0}, 1.0);
  store.put(a);
  Rem b(area100(), 5.0, 50.0, {53.0, 50.0, 1.5});
  b.add_measurement({10.0, 10.0}, 2.0);
  store.put(b);  // within 10 m of a: replaces it
  EXPECT_EQ(store.size(), 1u);
  EXPECT_DOUBLE_EQ(*store.entries()[0].measured_snr(store.entries()[0].background().cell_of(
                       geo::Vec2{10.0, 10.0})),
                   2.0);
}

TEST(StoreTest, MakeForUeSeedsFromPriorOrModel) {
  RemStore store(10.0);
  const rf::FsplChannel fspl(2.6e9);
  const rf::LinkBudget budget;
  Rem prior(area100(), 5.0, 50.0, {30.0, 30.0, 1.5});
  prior.add_measurement({30.0, 30.0}, -123.0);  // recognizable value
  store.put(prior);
  // Near the prior: background carries the -123 measurement.
  const Rem near = store.make_for_ue(area100(), 5.0, 50.0, {32.0, 30.0, 1.5}, fspl, budget);
  EXPECT_NEAR(near.background().value_at({30.0, 30.0}), -123.0, 1e-9);
  // Far away: FSPL seed, nothing like -123.
  const Rem far = store.make_for_ue(area100(), 5.0, 50.0, {90.0, 90.0, 1.5}, fspl, budget);
  EXPECT_GT(far.background().value_at({30.0, 30.0}), -60.0);
}

TEST(PlacementTest, MinAndMeanMaps) {
  geo::Grid2D<double> a(area100(), 10.0, 10.0);
  geo::Grid2D<double> b(area100(), 10.0, 4.0);
  const std::vector<geo::Grid2D<double>> maps{a, b};
  const geo::Grid2D<double> mn = min_snr_map(maps);
  EXPECT_DOUBLE_EQ(mn.at(3, 3), 4.0);
  const geo::Grid2D<double> mean = mean_snr_map(maps);
  EXPECT_DOUBLE_EQ(mean.at(3, 3), 7.0);
  const std::vector<double> w{3.0, 1.0};
  const geo::Grid2D<double> weighted = mean_snr_map(maps, w);
  EXPECT_DOUBLE_EQ(weighted.at(3, 3), 8.5);
}

TEST(PlacementTest, MaxMinPicksBalancedCell) {
  geo::Grid2D<double> a(area100(), 10.0, 0.0);
  geo::Grid2D<double> b(area100(), 10.0, 0.0);
  // UE a strong on the left, UE b strong on the right, both OK in the middle.
  a.for_each([&](geo::CellIndex c, double& v) { v = 20.0 - c.ix * 2.0; });
  b.for_each([&](geo::CellIndex c, double& v) { v = c.ix * 2.0; });
  const Placement p = choose_placement(std::vector<geo::Grid2D<double>>{a, b});
  EXPECT_NEAR(p.position.x, 50.0, 10.0);
  EXPECT_NEAR(p.objective_snr_db, 10.0, 1.0);
}

TEST(PlacementTest, FeasibilityMaskExcludesBuildings) {
  const auto t = terrain::make_nyc(5, 2.0);
  geo::Grid2D<double> snr(t.area(), 5.0, 10.0);
  geo::Grid2D<double> masked = snr;
  mask_infeasible_cells(masked, t, 60.0);
  std::size_t excluded = 0;
  masked.for_each([&](geo::CellIndex, const double& v) {
    if (v < -1e8) ++excluded;
  });
  // NYC has plenty of > 50 m buildings: a fair share of cells must drop out.
  EXPECT_GT(excluded, masked.size() / 10);
  EXPECT_LT(excluded, masked.size());
  const Placement p = choose_placement_feasible(std::vector<geo::Grid2D<double>>{snr}, t, 60.0);
  EXPECT_LT(t.surface_height(p.position) + 10.0, 60.0 + 1e-9);
}

TEST(PlacementTest, WeightContractViolations) {
  geo::Grid2D<double> a(area100(), 10.0, 1.0);
  const std::vector<geo::Grid2D<double>> maps{a};
  const std::vector<double> bad{-1.0};
  EXPECT_THROW(mean_snr_map(maps, bad), ContractViolation);
  const std::vector<double> wrong_count{1.0, 2.0};
  EXPECT_THROW(mean_snr_map(maps, wrong_count), ContractViolation);
  EXPECT_THROW(min_snr_map(std::span<const geo::Grid2D<double>>{}), ContractViolation);
  EXPECT_THROW(min_snr_map(std::span<const geo::FieldView<const double>>{}), ContractViolation);
}

TEST(AltitudeSearchTest, FindsLossMinimum) {
  // Synthetic channel with a V-shaped loss curve: minimum at 60 m.
  class VChannel final : public rf::ChannelModel {
   public:
    double path_loss_db(geo::Vec3 a, geo::Vec3) const override {
      return 80.0 + std::abs(a.z - 60.0);
    }
    double frequency_hz() const override { return 2.6e9; }
  };
  const VChannel ch;
  const std::vector<geo::Vec3> ues{{50.0, 50.0, 1.5}};
  const AltitudeSearchResult r = find_optimal_altitude(ch, {50.0, 50.0}, ues, 120.0, 20.0, 10.0);
  EXPECT_DOUBLE_EQ(r.altitude_m, 60.0);
  EXPECT_NEAR(r.mean_path_loss_db, 80.0, 1e-9);
}

TEST(AltitudeSearchTest, MonotoneLossStaysHigh) {
  // Loss grows as you descend: the search must stay at the start altitude.
  class InvChannel final : public rf::ChannelModel {
   public:
    double path_loss_db(geo::Vec3 a, geo::Vec3) const override { return 200.0 - a.z; }
    double frequency_hz() const override { return 2.6e9; }
  };
  const InvChannel ch;
  const std::vector<geo::Vec3> ues{{0.0, 0.0, 1.5}};
  const AltitudeSearchResult r = find_optimal_altitude(ch, {0.0, 0.0}, ues, 120.0, 20.0, 10.0);
  EXPECT_DOUBLE_EQ(r.altitude_m, 120.0);
  EXPECT_LE(r.probes, 4);  // gave up after `patience` worse steps
}

TEST(AltitudeSearchTest, Contracts) {
  const rf::FsplChannel ch(2.6e9);
  const std::vector<geo::Vec3> ues{{0.0, 0.0, 1.5}};
  EXPECT_THROW(find_optimal_altitude(ch, {0, 0}, {}, 120.0, 20.0, 10.0), ContractViolation);
  EXPECT_THROW(find_optimal_altitude(ch, {0, 0}, ues, 20.0, 120.0, 10.0), ContractViolation);
  EXPECT_THROW(find_optimal_altitude(ch, {0, 0}, ues, 120.0, 20.0, 0.0), ContractViolation);
}

/// K-sweep property: planner cost grows (weakly) with available K range.
class PlannerKSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlannerKSweep, TourVisitsRoughlyKClusters) {
  Rem rem(area100(), 5.0, 50.0, {50.0, 50.0, 1.5});
  const rf::FsplChannel fspl(2.6e9);
  rem.seed_from_model(fspl, rf::LinkBudget{});
  for (double x = 5.0; x < 95.0; x += 7.0)
    for (double y = 5.0; y < 95.0; y += 23.0) rem.add_measurement({x, y}, std::fmod(x * y, 29.0));
  PlannerConfig cfg;
  cfg.k_min = GetParam();
  cfg.k_max = GetParam();  // pin K
  const std::vector<Rem> rems{rem};
  const PlannedTrajectory plan = plan_measurement_trajectory(rems, {{}}, {0.0, 0.0}, cfg);
  EXPECT_EQ(plan.k, GetParam());
  // Tour has start + K nodes.
  EXPECT_EQ(plan.path.size(), static_cast<std::size_t>(GetParam()) + 1);
}

INSTANTIATE_TEST_SUITE_P(Ks, PlannerKSweep, ::testing::Values(2, 4, 8, 12));

}  // namespace
}  // namespace skyran::rem
