// Tests for the terrain substrate: raster semantics, procedural generators,
// the synthetic LiDAR scan/rasterize pipeline and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "geo/contract.hpp"
#include "terrain/io.hpp"
#include "terrain/lidar.hpp"
#include "terrain/synth.hpp"
#include "terrain/terrain.hpp"

namespace skyran::terrain {
namespace {

TEST(TerrainTest, FlatTerrainIsOpenEverywhere) {
  const Terrain t = make_flat(100.0);
  EXPECT_DOUBLE_EQ(t.ground_height({50.0, 50.0}), 0.0);
  EXPECT_DOUBLE_EQ(t.surface_height({50.0, 50.0}), 0.0);
  EXPECT_EQ(t.clutter_at({50.0, 50.0}), Clutter::kOpen);
  EXPECT_FALSE(t.is_obstructed({50.0, 50.0}, 10.0));
  EXPECT_DOUBLE_EQ(t.clutter_fraction(Clutter::kOpen), 1.0);
}

TEST(TerrainTest, ObstructionInsideClutter) {
  Terrain t = make_flat(20.0);
  TerrainCell& c = t.cells().at(5, 5);
  c.clutter = Clutter::kBuilding;
  c.clutter_height = 15.0F;
  const geo::Vec2 p = t.cells().center_of({5, 5});
  EXPECT_TRUE(t.is_obstructed(p, 10.0));   // inside the building
  EXPECT_FALSE(t.is_obstructed(p, 16.0));  // above the roof
  EXPECT_TRUE(t.is_obstructed(p, -1.0));   // below ground
  EXPECT_DOUBLE_EQ(t.surface_height(p), 15.0);
}

TEST(TerrainTest, WaterDoesNotObstructAboveGround) {
  Terrain t = make_flat(20.0);
  TerrainCell& c = t.cells().at(2, 2);
  c.clutter = Clutter::kWater;
  c.clutter_height = 5.0F;  // meaningless for water
  EXPECT_FALSE(t.is_obstructed(t.cells().center_of({2, 2}), 1.0));
}

TEST(TerrainTest, QueriesClampOutsidePoints) {
  const Terrain t = make_flat(50.0);
  EXPECT_NO_THROW(t.ground_height({-10.0, 200.0}));
  EXPECT_NO_THROW(t.clutter_at({1000.0, 1000.0}));
}

TEST(TerrainTest, PenetrationLossOrdering) {
  EXPECT_GT(penetration_loss_db_per_meter(Clutter::kBuilding),
            penetration_loss_db_per_meter(Clutter::kFoliage));
  EXPECT_DOUBLE_EQ(penetration_loss_db_per_meter(Clutter::kOpen), 0.0);
  EXPECT_DOUBLE_EQ(penetration_loss_db_per_meter(Clutter::kWater), 0.0);
}

TEST(TerrainTest, ClutterNames) {
  EXPECT_STREQ(to_string(Clutter::kOpen), "open");
  EXPECT_STREQ(to_string(Clutter::kBuilding), "building");
  EXPECT_STREQ(to_string(Clutter::kFoliage), "foliage");
  EXPECT_STREQ(to_string(Clutter::kWater), "water");
}

TEST(SynthTest, CampusHasBuildingAndForest) {
  const Terrain t = make_campus(7);
  EXPECT_GT(t.clutter_fraction(Clutter::kBuilding), 0.03);
  EXPECT_GT(t.clutter_fraction(Clutter::kFoliage), 0.05);
  EXPECT_GT(t.clutter_fraction(Clutter::kOpen), 0.3);
  // The main office building stands ~22 m tall somewhere.
  EXPECT_GT(t.max_surface_height(), 22.0);
  EXPECT_DOUBLE_EQ(t.area().width(), 300.0);
}

TEST(SynthTest, NycIsDenseAndTall) {
  const Terrain t = make_nyc(7);
  EXPECT_GT(t.clutter_fraction(Clutter::kBuilding), 0.4);
  EXPECT_GT(t.max_surface_height(), 60.0);
  EXPECT_DOUBLE_EQ(t.area().width(), 250.0);
}

TEST(SynthTest, RuralIsMostlyOpen) {
  const Terrain t = make_rural(7);
  EXPECT_GT(t.clutter_fraction(Clutter::kOpen), 0.5);
  EXPECT_LT(t.clutter_fraction(Clutter::kBuilding), 0.05);
}

TEST(SynthTest, LargeCoversOneKilometer) {
  const Terrain t = make_large(7, 4.0);  // coarse cells keep this test fast
  EXPECT_DOUBLE_EQ(t.area().width(), 1000.0);
  EXPECT_GT(t.clutter_fraction(Clutter::kBuilding), 0.01);
}

TEST(SynthTest, DeterministicInSeed) {
  const Terrain a = make_nyc(11);
  const Terrain b = make_nyc(11);
  const Terrain c = make_nyc(12);
  EXPECT_EQ(a.cells().at(100, 100).clutter_height, b.cells().at(100, 100).clutter_height);
  bool any_diff = false;
  for (int i = 0; i < 250 && !any_diff; i += 5)
    any_diff = a.cells().at(i, i).clutter_height != c.cells().at(i, i).clutter_height;
  EXPECT_TRUE(any_diff);
}

TEST(SynthTest, MakeTerrainDispatchesAllKinds) {
  for (const TerrainKind k : {TerrainKind::kFlat, TerrainKind::kCampus, TerrainKind::kRural,
                              TerrainKind::kNyc, TerrainKind::kLarge}) {
    const Terrain t = make_terrain(k, 3, 5.0);
    EXPECT_DOUBLE_EQ(t.area().width(), default_extent(k)) << to_string(k);
  }
}

TEST(LidarTest, ScanProducesExpectedDensity) {
  const Terrain t = make_flat(50.0);
  const PointCloud cloud = scan_terrain(t, {.pulse_density = 4.0, .dropout_rate = 0.0}, 5);
  EXPECT_NEAR(static_cast<double>(cloud.points.size()), 4.0 * 50.0 * 50.0, 200.0);
}

TEST(LidarTest, DropoutReducesReturns) {
  const Terrain t = make_flat(50.0);
  const auto full = scan_terrain(t, {.pulse_density = 2.0, .dropout_rate = 0.0}, 5);
  const auto holey = scan_terrain(t, {.pulse_density = 2.0, .dropout_rate = 0.5}, 5);
  EXPECT_LT(holey.points.size(), full.points.size() * 0.6);
}

TEST(LidarTest, RoundTripRecoversBuildingHeights) {
  Terrain t = make_flat(60.0);
  // Stamp a synthetic 20 m building block by hand.
  for (int iy = 20; iy < 40; ++iy) {
    for (int ix = 20; ix < 40; ++ix) {
      TerrainCell& c = t.cells().at(ix, iy);
      c.clutter = Clutter::kBuilding;
      c.clutter_height = 20.0F;
    }
  }
  const PointCloud cloud = scan_terrain(t, {.pulse_density = 6.0}, 9);
  const Terrain r = rasterize(cloud, 2.0);
  EXPECT_EQ(r.clutter_at({30.0, 30.0}), Clutter::kBuilding);
  EXPECT_NEAR(r.surface_height({30.0, 30.0}), 20.0, 1.5);
  EXPECT_EQ(r.clutter_at({5.0, 5.0}), Clutter::kOpen);
  EXPECT_NEAR(r.surface_height({5.0, 5.0}), 0.0, 1.0);
}

TEST(LidarTest, RasterizeFillsVoids) {
  // A tiny cloud with one point still yields a fully populated raster.
  PointCloud cloud;
  cloud.extent = geo::Rect::square(20.0);
  cloud.points.push_back({{10.0, 10.0, 3.0}, Clutter::kOpen});
  const Terrain t = rasterize(cloud, 2.0);
  EXPECT_NEAR(t.ground_height({1.0, 1.0}), 3.0, 1e-6);
  EXPECT_NEAR(t.ground_height({19.0, 19.0}), 3.0, 1e-6);
}

TEST(LidarTest, RejectsBadInputs) {
  const Terrain t = make_flat(10.0);
  EXPECT_THROW(scan_terrain(t, {.pulse_density = 0.0}, 1), ContractViolation);
  EXPECT_THROW(scan_terrain(t, {.dropout_rate = 1.0}, 1), ContractViolation);
  EXPECT_THROW(rasterize(PointCloud{geo::Rect::square(10.0), {}}, 1.0), ContractViolation);
}

TEST(IoTest, SaveLoadRoundTrip) {
  const Terrain t = make_campus(13, 4.0);
  std::stringstream ss;
  save_terrain(t, ss);
  const Terrain r = load_terrain(ss);
  EXPECT_TRUE(t.cells().same_geometry(r.cells()));
  for (int i = 0; i < t.cells().nx(); i += 7) {
    EXPECT_EQ(t.cells().at(i, i).clutter, r.cells().at(i, i).clutter);
    EXPECT_EQ(t.cells().at(i, i).clutter_height, r.cells().at(i, i).clutter_height);
    EXPECT_EQ(t.cells().at(i, i).ground, r.cells().at(i, i).ground);
  }
}

TEST(IoTest, RejectsCorruptStreams) {
  std::stringstream bad("not a terrain file at all");
  EXPECT_THROW(load_terrain(bad), std::runtime_error);
  std::stringstream empty;
  EXPECT_THROW(load_terrain(empty), std::runtime_error);
}

TEST(IoTest, RejectsTruncatedStream) {
  const Terrain t = make_flat(20.0);
  std::stringstream ss;
  save_terrain(t, ss);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(load_terrain(cut), std::runtime_error);
}

/// LiDAR round-trip accuracy across raster resolutions.
class LidarResolution : public ::testing::TestWithParam<double> {};

TEST_P(LidarResolution, GroundRecoveredWithinNoise) {
  const Terrain t = make_rural(21, 2.0, 100.0);
  const PointCloud cloud = scan_terrain(t, {.pulse_density = 5.0}, 22);
  const Terrain r = rasterize(cloud, GetParam());
  double worst = 0.0;
  for (double x = 10.0; x < 90.0; x += 17.0) {
    for (double y = 10.0; y < 90.0; y += 17.0) {
      if (t.clutter_at({x, y}) != Clutter::kOpen) continue;
      worst = std::max(worst, std::abs(r.ground_height({x, y}) - t.ground_height({x, y})));
    }
  }
  // Ground differs by at most raster quantization + range noise.
  EXPECT_LT(worst, GetParam() * 1.5 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, LidarResolution, ::testing::Values(1.0, 2.0, 4.0));

}  // namespace
}  // namespace skyran::terrain
